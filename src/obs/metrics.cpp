#include "obs/metrics.hpp"

#include <iomanip>
#include <sstream>

namespace dpc::obs {

std::string tenant_metric(unsigned tenant, std::string_view metric) {
  std::string name = "qos/t";
  name += std::to_string(tenant);
  name += '/';
  name.append(metric);
  return name;
}

namespace {

/// Minimal JSON string escape — metric names are ASCII identifiers, but be
/// safe against quotes/backslashes in user-supplied names.
void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

template <typename Map, typename Emit>
void json_object(std::ostream& os, const Map& m, Emit emit) {
  os << '{';
  bool first = true;
  for (const auto& [name, inst] : m) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':';
    emit(*inst);
  }
  os << '}';
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  {
    sim::SharedLockGuard lock(mu_);
    if (const auto it = counters_.find(name); it != counters_.end())
      return *it->second;
  }
  sim::LockGuard lock(mu_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  {
    sim::SharedLockGuard lock(mu_);
    if (const auto it = gauges_.find(name); it != gauges_.end())
      return *it->second;
  }
  sim::LockGuard lock(mu_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

sim::Histogram& Registry::histogram(std::string_view name) {
  {
    sim::SharedLockGuard lock(mu_);
    if (const auto it = hists_.find(name); it != hists_.end())
      return *it->second;
  }
  sim::LockGuard lock(mu_);
  auto& slot = hists_[std::string(name)];
  if (!slot) slot = std::make_unique<sim::Histogram>();
  return *slot;
}

void Registry::reset() {
  sim::LockGuard lock(mu_);
  for (auto& [name, c] : counters_) *c = 0;
  for (auto& [name, g] : gauges_) g->set(0);
  for (auto& [name, h] : hists_) h->reset();
}

void Registry::to_json(std::ostream& os) const {
  sim::SharedLockGuard lock(mu_);
  os << "{\"counters\":";
  json_object(os, counters_,
              [&os](const Counter& c) { os << c.load(); });
  os << ",\"gauges\":";
  json_object(os, gauges_, [&os](const Gauge& g) { os << g.load(); });
  os << ",\"histograms\":";
  json_object(os, hists_, [&os](const sim::Histogram& h) {
    os << "{\"count\":" << h.count() << ",\"min_ns\":" << h.min().ns
       << ",\"mean_ns\":" << h.mean().ns
       << ",\"p50_ns\":" << h.percentile(50).ns
       << ",\"p95_ns\":" << h.percentile(95).ns
       << ",\"p99_ns\":" << h.percentile(99).ns
       << ",\"max_ns\":" << h.max().ns << '}';
  });
  os << '}';
}

std::string Registry::to_json() const {
  std::ostringstream os;
  to_json(os);
  return os.str();
}

}  // namespace dpc::obs
