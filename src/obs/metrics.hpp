// Unified observability substrate: a lock-cheap registry of named counters,
// gauges, and latency histograms shared by every layer of the DPC stack.
//
// Hot paths resolve their instruments once (get-or-create under a shared
// lock) and then touch plain relaxed atomics; the registry lock is only
// taken exclusively when a new name is first registered. A JSON snapshot
// (`Registry::to_json`) is what the figure benches emit as BENCH_*.json so
// per-stage latency trajectories accumulate across PRs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/thread_annotations.hpp"
#include "sim/histogram.hpp"
#include "sim/time.hpp"

namespace dpc::obs {

/// Monotonic counter. API is a drop-in for the std::atomic<uint64_t> members
/// it replaces in the per-module stats structs (fetch_add/load), so the
/// migration onto the registry does not disturb existing call sites.
/// Cache-line sized: counters are individually heap-allocated by the
/// registry and hammered from many threads; without the padding, allocator
/// neighbours (often two hot counters registered back-to-back) share a line
/// and every add() ping-pongs it.
class alignas(64) Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t fetch_add(
      std::uint64_t n, std::memory_order = std::memory_order_relaxed) {
    return v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t load(std::memory_order = std::memory_order_relaxed) const {
    return v_.load(std::memory_order_relaxed);
  }
  std::uint64_t value() const { return load(); }
  operator std::uint64_t() const { return load(); }
  Counter& operator++() {
    add(1);
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    add(n);
    return *this;
  }
  /// Reset-style assignment (stats().reset() in the cache planes).
  Counter& operator=(std::uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Signed instantaneous value (queue depths, free-page counts).
/// Cache-line sized for the same false-sharing reason as Counter.
class alignas(64) Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

static_assert(sizeof(Counter) == 64 && alignof(Counter) == 64);
static_assert(sizeof(Gauge) == 64 && alignof(Gauge) == 64);

/// Per-tenant instrument naming: "qos/t<id>/<metric>". The one spelling of
/// the tenant scope, so dashboards (and the BENCH_qos.json readers in
/// EXPERIMENTS.md) can key on the prefix instead of guessing each module's
/// convention. Resolve-once rules apply as everywhere: call at construction,
/// cache the instrument pointer.
std::string tenant_metric(unsigned tenant, std::string_view metric);

/// Named-instrument registry. Instrument references are stable for the
/// registry's lifetime; names use "scope/metric" convention (e.g.
/// "nvme.ini/submits", "trace/submit_to_reap_ns").
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  sim::Histogram& histogram(std::string_view name);

  /// Zeroes every registered instrument (names stay registered).
  void reset();

  /// Snapshot as JSON: {"counters":{...},"gauges":{...},"histograms":
  /// {"name":{"count","min_ns","mean_ns","p50_ns","p95_ns","p99_ns",
  /// "max_ns"},...}}. Keys are sorted, so diffs are stable.
  void to_json(std::ostream& os) const;
  std::string to_json() const;

 private:
  mutable sim::AnnotatedSharedMutex mu_{"obs.registry",
                                        sim::LockRank::kLeaf};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<sim::Histogram>, std::less<>> hists_
      GUARDED_BY(mu_);
};

}  // namespace dpc::obs
