#include "obs/trace.hpp"

#include <chrono>

#include "sim/check.hpp"

namespace dpc::obs {

QueueTraces::QueueTraces(Registry& registry, std::uint16_t depth)
    : registry_(&registry),
      slots_(depth),
      submit_to_reap_(&registry.histogram("trace/submit_to_reap_ns")),
      submit_to_fetch_(&registry.histogram("trace/submit_to_fetch_ns")),
      fetch_to_dispatch_(&registry.histogram("trace/fetch_to_dispatch_ns")),
      dispatch_to_backend_(
          &registry.histogram("trace/dispatch_to_backend_ns")),
      backend_to_cqe_(&registry.histogram("trace/backend_to_cqe_ns")),
      cqe_to_reap_(&registry.histogram("trace/cqe_to_reap_ns")) {
  DPC_CHECK(depth >= 1);
}

std::int64_t QueueTraces::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void QueueTraces::stamp(std::uint16_t cid, Stage s) {
  if (cid >= slots_.size()) return;  // malformed cid: drop, don't trace
  slots_[cid].at[static_cast<std::size_t>(s)].store(
      now_ns(), std::memory_order_relaxed);
}

void QueueTraces::finish(std::uint16_t cid) {
  if (cid >= slots_.size()) return;
  auto& at = slots_[cid].at;
  std::array<std::int64_t, static_cast<std::size_t>(Stage::kCount_)> t;
  for (std::size_t s = 0; s < t.size(); ++s)
    t[s] = at[s].exchange(0, std::memory_order_relaxed);

  const auto rec = [&t](sim::Histogram* h, Stage a, Stage b) {
    const std::int64_t ta = t[static_cast<std::size_t>(a)];
    const std::int64_t tb = t[static_cast<std::size_t>(b)];
    // A stage may be missing (e.g. no TGT tracing attached, or an op
    // rejected before dispatch); record only spans with both endpoints.
    if (ta != 0 && tb != 0 && tb >= ta) h->record(sim::Nanos{tb - ta});
  };
  rec(submit_to_reap_, Stage::kHostSubmit, Stage::kHostReap);
  rec(submit_to_fetch_, Stage::kHostSubmit, Stage::kTgtFetch);
  rec(fetch_to_dispatch_, Stage::kTgtFetch, Stage::kDispatch);
  rec(dispatch_to_backend_, Stage::kDispatch, Stage::kBackendDone);
  rec(backend_to_cqe_, Stage::kBackendDone, Stage::kCqePost);
  rec(cqe_to_reap_, Stage::kCqePost, Stage::kHostReap);
}

}  // namespace dpc::obs
