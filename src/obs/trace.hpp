// Per-op latency tracing for the nvme-fs path.
//
// One QueueTraces rides with each queue pair and is shared by that queue's
// INI (host) and TGT (DPU) drivers: the slot for a cid collects wall-clock
// timestamps at each stage of the op's life —
//
//   host submit → TGT SQE fetch → dispatch entry → backend done → CQE post
//   → host reap
//
// — and on reap folds the stage deltas into registry histograms, answering
// "where did the nanoseconds go" for the real (executed, not modelled)
// pipeline. Stamping is two relaxed atomic ops; the CQE phase-tag
// release/acquire pair that already orders the completion also orders the
// cross-side stamps, so reading them at reap is race-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace dpc::obs {

/// Trace stages in pipeline order. kHostSubmit..kHostReap are stamped by
/// the INI (host side) and TGT (DPU side) drivers.
enum class Stage : std::uint8_t {
  kHostSubmit = 0,  ///< INI allocated the cid and is about to ring the SQ
  kTgtFetch,        ///< TGT pulled the SQE off the ring
  kDispatch,        ///< TGT is handing the command to IO_Dispatch
  kBackendDone,     ///< the handler (KVFS/DFS/cache) returned
  kCqePost,         ///< TGT published the CQE (phase-tag store)
  kHostReap,        ///< INI consumed the CQE
  kCount_,
};

class QueueTraces {
 public:
  /// `depth` = queue depth (one slot per cid). All QueueTraces built over
  /// the same registry share histograms, so multi-queue systems aggregate.
  QueueTraces(Registry& registry, std::uint16_t depth);

  /// Monotonic wall-clock nanoseconds.
  static std::int64_t now_ns();

  void stamp(std::uint16_t cid, Stage s);

  /// Called at host reap: records every stage delta with both endpoints
  /// present into the trace histograms, then clears the slot for cid reuse.
  void finish(std::uint16_t cid);

  Registry& registry() { return *registry_; }

 private:
  struct Slot {
    std::array<std::atomic<std::int64_t>,
               static_cast<std::size_t>(Stage::kCount_)>
        at{};  // 0 = not stamped
  };

  Registry* registry_;
  std::vector<Slot> slots_;
  // Pre-resolved stage-delta histograms (shared names across queues).
  sim::Histogram* submit_to_reap_;
  sim::Histogram* submit_to_fetch_;
  sim::Histogram* fetch_to_dispatch_;
  sim::Histogram* dispatch_to_backend_;
  sim::Histogram* backend_to_cqe_;
  sim::Histogram* cqe_to_reap_;
};

}  // namespace dpc::obs
