#include "pcie/memory.hpp"

namespace dpc::pcie {

MemoryRegion::MemoryRegion(std::string name, std::size_t size)
    : name_(std::move(name)), storage_((size + 63) / 64 + 1) {
  mem_ = std::span<std::byte>(storage_.front().b, size);
}

std::span<std::byte> MemoryRegion::bytes(std::uint64_t offset, std::size_t n) {
  DPC_CHECK_MSG(offset + n <= mem_.size(),
                name_ << ": access [" << offset << ", " << offset + n
                      << ") beyond size " << mem_.size());
  return mem_.subspan(offset, n);
}

std::span<const std::byte> MemoryRegion::bytes(std::uint64_t offset,
                                               std::size_t n) const {
  DPC_CHECK_MSG(offset + n <= mem_.size(),
                name_ << ": access [" << offset << ", " << offset + n
                      << ") beyond size " << mem_.size());
  return std::span<const std::byte>(mem_).subspan(offset, n);
}

void MemoryRegion::write(std::uint64_t offset, std::span<const std::byte> src) {
  auto dst = bytes(offset, src.size());
  std::memcpy(dst.data(), src.data(), src.size());
}

void MemoryRegion::read(std::uint64_t offset, std::span<std::byte> dst) const {
  auto src = bytes(offset, dst.size());
  std::memcpy(dst.data(), src.data(), dst.size());
}

std::atomic_ref<std::uint32_t> MemoryRegion::atomic_u32(std::uint64_t offset) {
  DPC_CHECK_MSG(offset % alignof(std::uint32_t) == 0,
                name_ << ": unaligned atomic_u32 at " << offset);
  auto s = bytes(offset, sizeof(std::uint32_t));
  return std::atomic_ref<std::uint32_t>(
      *reinterpret_cast<std::uint32_t*>(s.data()));
}

std::atomic_ref<std::uint64_t> MemoryRegion::atomic_u64(std::uint64_t offset) {
  DPC_CHECK_MSG(offset % alignof(std::uint64_t) == 0,
                name_ << ": unaligned atomic_u64 at " << offset);
  auto s = bytes(offset, sizeof(std::uint64_t));
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(s.data()));
}

void MemoryRegion::fill(std::byte v) {
  std::memset(mem_.data(), static_cast<int>(v), mem_.size());
}

RegionAllocator::RegionAllocator(MemoryRegion& region, std::uint64_t start)
    : region_(&region), cursor_(start) {
  DPC_CHECK(start <= region.size());
}

std::uint64_t RegionAllocator::alloc(std::size_t size, std::size_t align) {
  DPC_CHECK(align != 0 && (align & (align - 1)) == 0);
  const std::uint64_t aligned = (cursor_ + align - 1) & ~(align - 1);
  DPC_CHECK_MSG(aligned + size <= region_->size(),
                region_->name() << ": allocator exhausted (want " << size
                                << " at " << aligned << ", size "
                                << region_->size() << ")");
  cursor_ = aligned + size;
  return aligned;
}

}  // namespace dpc::pcie
