#include "pcie/memory.hpp"

#if defined(__SANITIZE_THREAD__)
#define DPC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPC_TSAN 1
#endif
#endif

namespace dpc::pcie {

namespace {

// Bulk copies model DMA bursts: real devices may legally overlap a burst
// with live CPU stores to the same range (the device observes some word
// interleaving — callers own overlap discipline). memcpy racing a store is
// nonetheless UB to ThreadSanitizer, so under TSan the burst degrades to
// byte-wise relaxed atomics: same observable semantics, race-free copy.
#ifdef DPC_TSAN
void dma_copy(std::byte* dst, const std::byte* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // atomic_ref<const T> is C++26; the cast only relaxes qualification.
    const std::byte b =
        std::atomic_ref<std::byte>(const_cast<std::byte&>(src[i]))
            .load(std::memory_order_relaxed);
    std::atomic_ref<std::byte>(dst[i]).store(b, std::memory_order_relaxed);
  }
}
#else
void dma_copy(std::byte* dst, const std::byte* src, std::size_t n) {
  std::memcpy(dst, src, n);
}
#endif

}  // namespace

MemoryRegion::MemoryRegion(std::string name, std::size_t size)
    : name_(std::move(name)), storage_((size + 63) / 64 + 1) {
  mem_ = std::span<std::byte>(storage_.front().b, size);
}

std::span<std::byte> MemoryRegion::bytes(std::uint64_t offset, std::size_t n) {
  DPC_CHECK_MSG(offset + n <= mem_.size(),
                name_ << ": access [" << offset << ", " << offset + n
                      << ") beyond size " << mem_.size());
  return mem_.subspan(offset, n);
}

std::span<const std::byte> MemoryRegion::bytes(std::uint64_t offset,
                                               std::size_t n) const {
  DPC_CHECK_MSG(offset + n <= mem_.size(),
                name_ << ": access [" << offset << ", " << offset + n
                      << ") beyond size " << mem_.size());
  return std::span<const std::byte>(mem_).subspan(offset, n);
}

void MemoryRegion::write(std::uint64_t offset, std::span<const std::byte> src) {
  auto dst = bytes(offset, src.size());
  dma_copy(dst.data(), src.data(), src.size());
}

void MemoryRegion::read(std::uint64_t offset, std::span<std::byte> dst) const {
  auto src = bytes(offset, dst.size());
  dma_copy(dst.data(), src.data(), dst.size());
}

std::atomic_ref<std::uint32_t> MemoryRegion::atomic_u32(std::uint64_t offset) {
  DPC_CHECK_MSG(offset % alignof(std::uint32_t) == 0,
                name_ << ": unaligned atomic_u32 at " << offset);
  auto s = bytes(offset, sizeof(std::uint32_t));
  return std::atomic_ref<std::uint32_t>(
      *reinterpret_cast<std::uint32_t*>(s.data()));
}

std::atomic_ref<std::uint64_t> MemoryRegion::atomic_u64(std::uint64_t offset) {
  DPC_CHECK_MSG(offset % alignof(std::uint64_t) == 0,
                name_ << ": unaligned atomic_u64 at " << offset);
  auto s = bytes(offset, sizeof(std::uint64_t));
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(s.data()));
}

void MemoryRegion::fill(std::byte v) {
  std::memset(mem_.data(), static_cast<int>(v), mem_.size());
}

void MemoryRegion::fill_bytes(std::uint64_t offset, std::size_t n,
                              std::byte v) {
  auto dst = bytes(offset, n);
#ifdef DPC_TSAN
  for (std::size_t i = 0; i < n; ++i)
    std::atomic_ref<std::byte>(dst[i]).store(v, std::memory_order_relaxed);
#else
  std::memset(dst.data(), static_cast<int>(v), n);
#endif
}

RegionAllocator::RegionAllocator(MemoryRegion& region, std::uint64_t start)
    : region_(&region), cursor_(start) {
  DPC_CHECK(start <= region.size());
}

std::uint64_t RegionAllocator::alloc(std::size_t size, std::size_t align) {
  DPC_CHECK(align != 0 && (align & (align - 1)) == 0);
  const std::uint64_t aligned = (cursor_ + align - 1) & ~(align - 1);
  DPC_CHECK_MSG(aligned + size <= region_->size(),
                region_->name() << ": allocator exhausted (want " << size
                                << " at " << aligned << ", size "
                                << region_->size() << ")");
  cursor_ = aligned + size;
  return aligned;
}

}  // namespace dpc::pcie
