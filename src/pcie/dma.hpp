// Counting DMA engine + PCIe atomics for the simulated host↔DPU link.
//
// Every transfer between the host MemoryRegion and the DPU MemoryRegion goes
// through DmaEngine, which (a) actually moves the bytes, (b) counts the
// operation per class, and (c) returns the modelled link cost. The per-class
// counters are what back Fig. 2(b) vs Fig. 4 of the paper: virtio-fs needs
// 11 DMA operations for an 8 KB write where nvme-fs needs 4 — in this repo
// those numbers are read off these counters after running the real ring
// protocols.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "pcie/memory.hpp"
#include "sim/calib.hpp"
#include "sim/time.hpp"

namespace dpc::pcie {

enum class DmaDir : std::uint8_t {
  kHostToDpu,
  kDpuToHost,
};

/// Classification of link transactions, for per-figure accounting.
enum class DmaClass : std::uint8_t {
  kDescriptor,  ///< ring/descriptor reads and writes (SQE, CQE, virtq desc)
  kData,        ///< user payload pages
  kDoorbell,    ///< MMIO doorbell / notification writes
  kAtomic,      ///< PCIe atomic (hybrid cache lock words)
  kCount_,
};

const char* to_string(DmaClass c);

struct DmaCounters {
  struct PerClass {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> bytes{0};
  };
  std::array<PerClass, static_cast<std::size_t>(DmaClass::kCount_)> per_class;

  std::uint64_t ops(DmaClass c) const {
    return per_class[static_cast<std::size_t>(c)].ops.load(
        std::memory_order_relaxed);
  }
  std::uint64_t bytes(DmaClass c) const {
    return per_class[static_cast<std::size_t>(c)].bytes.load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_ops() const;
  std::uint64_t total_bytes() const;
  void reset();
};

/// The host↔DPU link. Owns both memory regions' traffic accounting; the
/// regions themselves are owned by the device models (host, DPU).
class DmaEngine {
 public:
  DmaEngine(MemoryRegion& host, MemoryRegion& dpu);

  MemoryRegion& host() { return *host_; }
  MemoryRegion& dpu() { return *dpu_; }

  /// Moves `n` bytes; returns the modelled transfer cost (setup + payload).
  sim::Nanos transfer(DmaDir dir, std::uint64_t src_off, std::uint64_t dst_off,
                      std::size_t n, DmaClass cls);

  /// Moves bytes between a region and a local (same-side) buffer — models a
  /// device-initiated DMA read/write of host memory where the other endpoint
  /// is device-internal SRAM/DRAM not represented as a region.
  sim::Nanos read_host(std::uint64_t host_off, std::span<std::byte> dst,
                       DmaClass cls);
  sim::Nanos write_host(std::uint64_t host_off, std::span<const std::byte> src,
                        DmaClass cls);

  /// MMIO doorbell write (host → DPU), 4 bytes, counted as kDoorbell.
  sim::Nanos doorbell(std::uint64_t dpu_off, std::uint32_t value);

  /// Accounts for a link transaction whose bytes were moved through an
  /// atomic_ref (publication words such as ring indices and CQE phase
  /// words need atomic ordering, which memcpy-based transfer() can't give).
  /// Counts one op of `cls` and returns the modelled cost.
  sim::Nanos note_transaction(DmaClass cls, std::size_t bytes);

  /// PCIe atomic CAS on a host-resident 32-bit word, as used by the hybrid
  /// cache lock protocol. Returns {success, cost}.
  struct AtomicResult {
    bool success = false;
    std::uint32_t observed = 0;
    sim::Nanos cost{};
  };
  AtomicResult atomic_cas_host(std::uint64_t host_off, std::uint32_t expected,
                               std::uint32_t desired);
  /// PCIe atomic unconditional swap (used for lock release).
  AtomicResult atomic_swap_host(std::uint64_t host_off, std::uint32_t desired);
  /// PCIe atomic fetch-add.
  std::uint32_t atomic_fadd_host(std::uint64_t host_off, std::uint32_t delta);

  const DmaCounters& counters() const { return counters_; }
  DmaCounters& counters() { return counters_; }

 private:
  void count(DmaClass cls, std::size_t bytes);
  static sim::Nanos cost_of(std::size_t bytes);

  MemoryRegion* host_;
  MemoryRegion* dpu_;
  DmaCounters counters_;
};

/// RAII snapshot for measuring the DMA ops consumed by a code section.
class DmaScope {
 public:
  explicit DmaScope(const DmaCounters& counters)
      : counters_(&counters),
        start_ops_(counters.total_ops()),
        start_bytes_(counters.total_bytes()) {}

  std::uint64_t ops() const { return counters_->total_ops() - start_ops_; }
  std::uint64_t bytes() const {
    return counters_->total_bytes() - start_bytes_;
  }

 private:
  const DmaCounters* counters_;
  std::uint64_t start_ops_;
  std::uint64_t start_bytes_;
};

}  // namespace dpc::pcie
