#include "pcie/dma.hpp"

#include "sim/schedhook.hpp"

namespace dpc::pcie {

const char* to_string(DmaClass c) {
  switch (c) {
    case DmaClass::kDescriptor:
      return "descriptor";
    case DmaClass::kData:
      return "data";
    case DmaClass::kDoorbell:
      return "doorbell";
    case DmaClass::kAtomic:
      return "atomic";
    case DmaClass::kCount_:
      break;
  }
  return "?";
}

std::uint64_t DmaCounters::total_ops() const {
  std::uint64_t sum = 0;
  for (const auto& pc : per_class)
    sum += pc.ops.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t DmaCounters::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& pc : per_class)
    sum += pc.bytes.load(std::memory_order_relaxed);
  return sum;
}

void DmaCounters::reset() {
  for (auto& pc : per_class) {
    pc.ops.store(0, std::memory_order_relaxed);
    pc.bytes.store(0, std::memory_order_relaxed);
  }
}

DmaEngine::DmaEngine(MemoryRegion& host, MemoryRegion& dpu)
    : host_(&host), dpu_(&dpu) {}

void DmaEngine::count(DmaClass cls, std::size_t bytes) {
  auto& pc = counters_.per_class[static_cast<std::size_t>(cls)];
  pc.ops.fetch_add(1, std::memory_order_relaxed);
  pc.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

sim::Nanos DmaEngine::cost_of(std::size_t bytes) {
  return sim::calib::kDmaSetup + sim::calib::pcie_transfer(bytes);
}

sim::Nanos DmaEngine::transfer(DmaDir dir, std::uint64_t src_off,
                               std::uint64_t dst_off, std::size_t n,
                               DmaClass cls) {
  sim::schedhook::point("pcie.dma");
  if (dir == DmaDir::kHostToDpu) {
    auto src = host_->bytes(src_off, n);
    dpu_->write(dst_off, src);
  } else {
    auto src = dpu_->bytes(src_off, n);
    host_->write(dst_off, src);
  }
  count(cls, n);
  return cost_of(n);
}

sim::Nanos DmaEngine::read_host(std::uint64_t host_off,
                                std::span<std::byte> dst, DmaClass cls) {
  sim::schedhook::point("pcie.dma_read");
  host_->read(host_off, dst);
  count(cls, dst.size());
  return cost_of(dst.size());
}

sim::Nanos DmaEngine::write_host(std::uint64_t host_off,
                                 std::span<const std::byte> src,
                                 DmaClass cls) {
  sim::schedhook::point("pcie.dma_write");
  host_->write(host_off, src);
  count(cls, src.size());
  return cost_of(src.size());
}

sim::Nanos DmaEngine::doorbell(std::uint64_t dpu_off, std::uint32_t value) {
  sim::schedhook::point("pcie.doorbell");
  dpu_->atomic_u32(dpu_off).store(value, std::memory_order_release);
  count(DmaClass::kDoorbell, sizeof(value));
  return sim::calib::kDmaSetup;  // posted MMIO write: setup cost only
}

sim::Nanos DmaEngine::note_transaction(DmaClass cls, std::size_t bytes) {
  count(cls, bytes);
  return cost_of(bytes);
}

DmaEngine::AtomicResult DmaEngine::atomic_cas_host(std::uint64_t host_off,
                                                   std::uint32_t expected,
                                                   std::uint32_t desired) {
  auto word = host_->atomic_u32(host_off);
  std::uint32_t exp = expected;
  const bool ok =
      word.compare_exchange_strong(exp, desired, std::memory_order_acq_rel);
  count(DmaClass::kAtomic, sizeof(std::uint32_t));
  return {ok, exp, sim::calib::kPcieAtomic};
}

DmaEngine::AtomicResult DmaEngine::atomic_swap_host(std::uint64_t host_off,
                                                    std::uint32_t desired) {
  auto word = host_->atomic_u32(host_off);
  const std::uint32_t old =
      word.exchange(desired, std::memory_order_acq_rel);
  count(DmaClass::kAtomic, sizeof(std::uint32_t));
  return {true, old, sim::calib::kPcieAtomic};
}

std::uint32_t DmaEngine::atomic_fadd_host(std::uint64_t host_off,
                                          std::uint32_t delta) {
  auto word = host_->atomic_u32(host_off);
  const std::uint32_t old =
      word.fetch_add(delta, std::memory_order_acq_rel);
  count(DmaClass::kAtomic, sizeof(std::uint32_t));
  return old;
}

}  // namespace dpc::pcie
