// Byte-addressable memory regions standing in for host DRAM and DPU DRAM.
//
// All host↔DPU state in the reproduction (NVMe rings, virtio rings, the
// hybrid-cache header/meta/data areas, data buffers) lives inside a
// MemoryRegion so that every cross-device access is forced through the
// counting DmaEngine or the PcieAtomic wrappers — that is how the paper's
// DMA-count claims become measurable instead of asserted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "sim/check.hpp"

namespace dpc::pcie {

/// A contiguous, bounds-checked byte region. Offsets are region-local
/// "physical" addresses; the region hands out std::atomic_ref views for
/// lock words (the PCIe-atomic targets of §3.3).
class MemoryRegion {
 public:
  MemoryRegion(std::string name, std::size_t size);

  const std::string& name() const { return name_; }
  std::size_t size() const { return mem_.size(); }

  /// Raw bounded views. Concurrent access to disjoint ranges is allowed;
  /// callers own overlap discipline (as real DMA engines do).
  std::span<std::byte> bytes(std::uint64_t offset, std::size_t n);
  std::span<const std::byte> bytes(std::uint64_t offset, std::size_t n) const;

  void write(std::uint64_t offset, std::span<const std::byte> src);
  void read(std::uint64_t offset, std::span<std::byte> dst) const;

  /// Typed plain (non-atomic) access for ring bookkeeping local to one side.
  template <typename T>
  T load(std::uint64_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read(offset, std::as_writable_bytes(std::span{&v, 1}));
    return v;
  }
  template <typename T>
  void store(std::uint64_t offset, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(offset, std::as_bytes(std::span{&v, 1}));
  }

  /// Atomic view of a naturally-aligned 32-bit word (lock words, ring
  /// indices shared across the link).
  std::atomic_ref<std::uint32_t> atomic_u32(std::uint64_t offset);
  std::atomic_ref<std::uint64_t> atomic_u64(std::uint64_t offset);

  void fill(std::byte v);

  /// Fills [offset, offset+n) with `v` through the DMA-burst copy path —
  /// under TSan this degrades to byte-wise relaxed atomics like write(), so
  /// it may legally overlap seqlock-validated lock-free readers.
  void fill_bytes(std::uint64_t offset, std::size_t n, std::byte v);

 private:
  std::string name_;
  // 64-byte alignment so atomic_ref targets never straddle cache lines.
  struct alignas(64) Chunk {
    std::byte b[64];
  };
  std::vector<Chunk> storage_;
  std::span<std::byte> mem_;
};

/// A simple bump allocator over a MemoryRegion — used when laying out ring
/// structures and the hybrid-cache areas inside a region.
class RegionAllocator {
 public:
  explicit RegionAllocator(MemoryRegion& region, std::uint64_t start = 0);

  /// Returns the offset of a fresh `size`-byte block aligned to `align`.
  std::uint64_t alloc(std::size_t size, std::size_t align = 64);

  std::uint64_t used() const { return cursor_; }
  MemoryRegion& region() { return *region_; }

 private:
  MemoryRegion* region_;
  std::uint64_t cursor_;
};

}  // namespace dpc::pcie
