// Ext4like — the local file system baseline of Figs. 7/8 and Table 2.
//
// A classic block file system over the simulated NVMe SSD: on-disk
// superblock, block bitmap, inode table, 12 direct + single + double
// indirect block mapping, directory files of fixed dirents, a journal-lite
// write-ahead region for metadata mutations, and the host page cache in
// front (buffered mode) or bypassed (DIRECT_IO mode).
//
// Every touch of the device is counted and costed with the SSD model's
// service times; each operation returns its modelled latency plus the host
// CPU demand the calibrated Ext4 constants assign. This is the "huge amount
// of host CPU cycles" side of the Fig. 7(c) comparison.
//
// Concurrency: a single filesystem-wide mutex. The baseline's performance
// curves come from the analytic model (SSD channels + host contention), not
// from this code's scaling, so correctness-simple locking is the right
// trade-off here (and is also, not coincidentally, why real local file
// systems burn CPU on lock contention at 256 threads).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cache/page_cache.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"
#include "ssd/ssd.hpp"

namespace dpc::hostfs {

using Ino = std::uint32_t;
inline constexpr Ino kRootIno = 1;  // 0 = invalid, Ext tradition
inline constexpr std::uint32_t kBlockSize = ssd::kBlockSize;
inline constexpr std::size_t kMaxName = 254;

enum class FileType : std::uint16_t { kRegular = 1, kDirectory = 2 };

struct Stat {
  Ino ino = 0;
  FileType type = FileType::kRegular;
  std::uint16_t mode = 0644;
  std::uint32_t nlink = 1;
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;
};

struct DirEntry {
  std::string name;
  Ino ino = 0;
};

struct Ext4likeOptions {
  std::uint64_t total_blocks = 1 << 20;  ///< 4 GiB device by default
  std::uint32_t max_inodes = 1 << 16;
  std::uint32_t journal_blocks = 256;
  std::uint32_t page_cache_pages = 16384;
  bool journal_enabled = true;
};

/// Modelled cost + device-op accounting for one FS call.
struct OpCost {
  sim::Nanos total{};          ///< modelled latency of the call
  std::uint32_t dev_reads = 0;
  std::uint32_t dev_writes = 0;
};

template <typename T>
struct FsResult {
  int err = 0;  ///< 0 or positive errno
  T value{};
  OpCost cost;
  bool ok() const { return err == 0; }
};

struct FsUnit {};

class Ext4like {
 public:
  /// mkfs + mount on a fresh SSD model.
  explicit Ext4like(ssd::SsdModel& disk, const Ext4likeOptions& opts = {});
  ~Ext4like();
  Ext4like(const Ext4like&) = delete;
  Ext4like& operator=(const Ext4like&) = delete;

  // ---- namespace ----
  FsResult<Ino> create(Ino parent, std::string_view name, std::uint16_t mode);
  FsResult<Ino> mkdir(Ino parent, std::string_view name, std::uint16_t mode);
  FsResult<Ino> lookup(Ino parent, std::string_view name);
  FsResult<Ino> resolve(std::string_view path);
  FsResult<FsUnit> unlink(Ino parent, std::string_view name);
  FsResult<FsUnit> rmdir(Ino parent, std::string_view name);
  FsResult<FsUnit> rename(Ino old_parent, std::string_view old_name,
                          Ino new_parent, std::string_view new_name);
  FsResult<std::vector<DirEntry>> readdir(Ino dir);
  FsResult<Stat> getattr(Ino ino);

  // ---- data ----
  /// `direct` bypasses the page cache (the DIRECT_IO mode of Fig. 7).
  FsResult<std::uint32_t> read(Ino ino, std::uint64_t offset,
                               std::span<std::byte> dst, bool direct = false);
  FsResult<std::uint32_t> write(Ino ino, std::uint64_t offset,
                                std::span<const std::byte> src,
                                bool direct = false);
  FsResult<FsUnit> truncate(Ino ino, std::uint64_t new_size);
  FsResult<FsUnit> fsync(Ino ino);
  /// Flushes every dirty page (unmount-style sync).
  FsResult<FsUnit> sync();

  std::uint64_t free_blocks() const { return free_blocks_; }
  const cache::PageCache& page_cache() const { return pcache_; }
  /// CRC-valid WAL records found in the journal region at mount time —
  /// survivors of a previous incarnation on the same device (zero on a
  /// fresh disk). A real ext4 would replay these; the baseline only needs
  /// to count them for the crash-consistency comparison.
  std::uint32_t journal_valid_on_mount() const {
    return journal_valid_on_mount_;
  }

 private:
  // On-disk structures (block-sized serialization).
  struct DiskInode {
    std::uint16_t type = 0;     // 0 = free
    std::uint16_t mode = 0;
    std::uint32_t nlink = 0;
    std::uint64_t size = 0;
    std::uint64_t mtime = 0;
    std::uint64_t direct[12] = {};
    std::uint64_t indirect = 0;
    std::uint64_t dindirect = 0;
    std::uint8_t pad[120] = {};
  };
  static_assert(sizeof(DiskInode) == 256);
  static constexpr std::uint32_t kInodesPerBlock = kBlockSize / 256;
  static constexpr std::uint32_t kPtrsPerBlock = kBlockSize / 8;

  struct Dirent {
    std::uint32_t ino = 0;        // 0 = hole
    std::uint16_t name_len = 0;
    char name[kMaxName] = {};
    std::uint8_t pad[4] = {};
  };
  static_assert(sizeof(Dirent) == 264);

  // ---- device access with accounting ----
  void dev_read(std::uint64_t lba, std::span<std::byte> dst, OpCost& c);
  void dev_write(std::uint64_t lba, std::span<const std::byte> src, OpCost& c);
  /// Journal-lite: one WAL record write per metadata mutation batch.
  void journal(OpCost& c);

  // ---- allocation ----
  std::uint64_t alloc_block(OpCost& c);   // returns LBA; 0 on ENOSPC
  void free_block(std::uint64_t lba, OpCost& c);
  Ino alloc_inode(OpCost& c);             // 0 on exhaustion
  void free_inode(Ino ino, OpCost& c);

  // ---- inode table ----
  DiskInode read_inode(Ino ino, OpCost& c);
  void write_inode(Ino ino, const DiskInode& di, OpCost& c);

  // ---- block mapping ----
  /// Logical file block -> LBA; optionally allocating missing levels.
  std::uint64_t map_block(DiskInode& di, std::uint64_t logical, bool alloc,
                          bool& inode_dirty, OpCost& c);
  void free_file_blocks(DiskInode& di, OpCost& c);
  /// Frees every mapped block with logical index >= first_logical and
  /// clears its mapping (POSIX truncate semantics: regrown ranges read
  /// zero).
  void free_blocks_from(DiskInode& di, std::uint64_t first_logical,
                        std::uint64_t old_size, bool& inode_dirty, OpCost& c);

  // ---- directory files ----
  std::optional<std::pair<Ino, std::uint64_t>> dir_find(
      const DiskInode& dir, std::string_view name, OpCost& c);
  bool dir_insert(DiskInode& dir, Ino dir_ino, std::string_view name, Ino ino,
                  OpCost& c);
  bool dir_remove(DiskInode& dir, Ino dir_ino, std::string_view name,
                  OpCost& c);
  bool dir_is_empty(const DiskInode& dir, OpCost& c);

  /// Raw file data I/O against mapped blocks (no page cache).
  void file_read_raw(const DiskInode& di, std::uint64_t offset,
                     std::span<std::byte> dst, OpCost& c);
  void file_write_raw(DiskInode& di, std::uint64_t offset,
                      std::span<const std::byte> src, bool& inode_dirty,
                      OpCost& c);

  FsResult<Ino> make_node(Ino parent, std::string_view name, FileType type,
                          std::uint16_t mode);
  FsResult<FsUnit> remove_node(Ino parent, std::string_view name, bool dir);

  cache::PageCache::WritebackFn writeback_fn();

  ssd::SsdModel* disk_;
  Ext4likeOptions opts_;
  cache::PageCache pcache_;

  /// One big metadata lock (allocator mirrors + inode table).
  mutable sim::AnnotatedMutex mu_{"ext4like.meta", sim::LockRank::kFs};
  // In-memory mirrors of the allocator state (bitmap blocks are still
  // written through to disk for the write-amplification accounting).
  std::vector<std::uint64_t> block_bitmap_;
  std::vector<bool> inode_used_;
  std::uint64_t free_blocks_ = 0;
  std::uint64_t data_start_ = 0;
  std::uint64_t bitmap_start_ = 0;
  std::uint64_t itable_start_ = 0;
  std::uint64_t journal_start_ = 0;
  std::uint32_t journal_cursor_ = 0;
  std::uint64_t journal_seq_ = 1;
  std::uint32_t journal_valid_on_mount_ = 0;
  std::uint64_t time_ = 1;
};

}  // namespace dpc::hostfs
