#include "hostfs/ext4like.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "ec/crc32c.hpp"
#include "sim/check.hpp"

namespace dpc::hostfs {

namespace {
constexpr std::uint32_t kDirentSize = 264;

// Journal-lite WAL record: 64 bytes, magic + sequence up front, CRC32C over
// the first 60 bytes in the last 4 — the jbd2-style self-describing block
// that lets a mount distinguish live records from stale or torn ones.
constexpr char kJournalMagic[4] = {'D', 'P', 'C', 'J'};
constexpr std::size_t kJournalRecSize = 64;

void seal_journal_record(std::span<std::byte, kJournalRecSize> rec,
                         std::uint64_t seq) {
  std::memcpy(rec.data(), kJournalMagic, sizeof(kJournalMagic));
  std::memcpy(rec.data() + 4, &seq, sizeof(seq));
  const std::uint32_t crc = ec::crc32c(rec.first(kJournalRecSize - 4));
  std::memcpy(rec.data() + kJournalRecSize - 4, &crc, sizeof(crc));
}

/// Returns the record's sequence number, or nullopt if magic/CRC disagree.
std::optional<std::uint64_t> check_journal_record(
    std::span<const std::byte, kJournalRecSize> rec) {
  if (std::memcmp(rec.data(), kJournalMagic, sizeof(kJournalMagic)) != 0)
    return std::nullopt;
  std::uint32_t stored;
  std::memcpy(&stored, rec.data() + kJournalRecSize - 4, sizeof(stored));
  if (stored != ec::crc32c(rec.first(kJournalRecSize - 4)))
    return std::nullopt;
  std::uint64_t seq;
  std::memcpy(&seq, rec.data() + 4, sizeof(seq));
  return seq;
}

std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

// A small write-through cache of metadata blocks (inode table, bitmap,
// indirect, directory and journal blocks). File data does NOT come through
// here — buffered data uses the page cache, direct data goes to the device.
// It lives in the .cpp as an implementation detail keyed by LBA.
struct MetaBlockCache {
  std::unordered_map<std::uint64_t, std::vector<std::byte>> blocks;

  std::vector<std::byte>* find(std::uint64_t lba) {
    const auto it = blocks.find(lba);
    return it == blocks.end() ? nullptr : &it->second;
  }
  std::vector<std::byte>& insert(std::uint64_t lba,
                                 std::span<const std::byte> data) {
    auto& b = blocks[lba];
    b.assign(data.begin(), data.end());
    return b;
  }
};

// The cache is per-filesystem; stash it in a map keyed by `this` to avoid
// widening the header. (One Ext4like per test/bench; trivial contention.)
namespace {
// Taken under pcache shard locks on the writeback path; pure leaf
// (momentary map lookup, never acquires anything while held).
dpc::sim::AnnotatedMutex g_meta_mu{"ext4like.meta_cache",
                                  dpc::sim::LockRank::kLeaf};
std::unordered_map<const Ext4like*, MetaBlockCache> g_meta_caches;

MetaBlockCache& meta_cache_of(const Ext4like* fs) {
  dpc::sim::LockGuard lock(g_meta_mu);
  return g_meta_caches[fs];
}
}  // namespace

Ext4like::Ext4like(ssd::SsdModel& disk, const Ext4likeOptions& opts)
    : disk_(&disk),
      opts_(opts),
      pcache_(opts.page_cache_pages, kBlockSize) {
  DPC_CHECK(opts.total_blocks >= 1024);
  DPC_CHECK(opts.max_inodes >= 16);

  const std::uint64_t bitmap_blocks =
      div_ceil(opts.total_blocks, kBlockSize * 8);
  const std::uint64_t itable_blocks =
      div_ceil(opts.max_inodes, kInodesPerBlock);
  bitmap_start_ = 1;
  itable_start_ = bitmap_start_ + bitmap_blocks;
  journal_start_ = itable_start_ + itable_blocks;
  data_start_ = journal_start_ + opts.journal_blocks;
  DPC_CHECK_MSG(data_start_ < opts.total_blocks, "device too small");

  block_bitmap_.assign(div_ceil(opts.total_blocks, 64), 0);
  inode_used_.assign(opts.max_inodes, false);
  free_blocks_ = opts.total_blocks - data_start_;

  // Mount-time journal scan: count CRC-valid WAL records a previous
  // incarnation left on this device, and resume the sequence above the
  // highest survivor so new records always supersede old ones.
  if (opts.journal_enabled) {
    std::vector<std::byte> block(kBlockSize);
    for (std::uint32_t j = 0; j < opts.journal_blocks; ++j) {
      disk_->read_block(journal_start_ + j, block);
      const auto seq = check_journal_record(
          std::span<const std::byte, kJournalRecSize>{block.data(),
                                                      kJournalRecSize});
      if (!seq.has_value()) continue;
      ++journal_valid_on_mount_;
      journal_seq_ = std::max(journal_seq_, *seq + 1);
    }
  }

  // mkfs: superblock + root inode + root (empty) directory.
  OpCost c;
  std::array<std::byte, kBlockSize> sb{};
  const char magic[8] = {'D', 'P', 'C', 'E', 'X', 'T', '4', 'L'};
  std::memcpy(sb.data(), magic, sizeof(magic));
  dev_write(0, sb, c);

  inode_used_[0] = true;  // ino 0 invalid
  OpCost mkfs_cost;
  const Ino root = alloc_inode(mkfs_cost);
  DPC_CHECK(root == kRootIno);
  DiskInode ri;
  ri.type = static_cast<std::uint16_t>(FileType::kDirectory);
  ri.mode = 0755;
  ri.nlink = 2;
  ri.mtime = time_++;
  write_inode(root, ri, mkfs_cost);
}

Ext4like::~Ext4like() {
  dpc::sim::LockGuard lock(g_meta_mu);
  g_meta_caches.erase(this);
}

// ----------------------------------------------------------- device access

void Ext4like::dev_read(std::uint64_t lba, std::span<std::byte> dst,
                        OpCost& c) {
  // Metadata path: write-through cached.
  MetaBlockCache& mc = meta_cache_of(this);
  if (auto* b = mc.find(lba)) {
    std::memcpy(dst.data(), b->data(), dst.size());
    return;
  }
  std::vector<std::byte> block(kBlockSize);
  disk_->read_block(lba, block);
  std::memcpy(dst.data(), block.data(), dst.size());
  mc.insert(lba, block);
  ++c.dev_reads;
  c.total += ssd::SsdModel::random_service(true, kBlockSize);
}

void Ext4like::dev_write(std::uint64_t lba, std::span<const std::byte> src,
                         OpCost& c) {
  DPC_CHECK(src.size() <= kBlockSize);
  if (src.size() == kBlockSize) {
    disk_->write_block(lba, src);
    meta_cache_of(this).insert(lba, src);
  } else {
    // Partial metadata update: read-modify-write through the cache.
    std::vector<std::byte> block(kBlockSize);
    MetaBlockCache& mc = meta_cache_of(this);
    if (auto* b = mc.find(lba)) {
      block = *b;
    } else {
      disk_->read_block(lba, block);
      ++c.dev_reads;
      c.total += ssd::SsdModel::random_service(true, kBlockSize);
    }
    std::memcpy(block.data(), src.data(), src.size());
    disk_->write_block(lba, block);
    mc.insert(lba, block);
  }
  ++c.dev_writes;
  c.total += ssd::SsdModel::random_service(false, kBlockSize);
}

void Ext4like::journal(OpCost& c) {
  if (!opts_.journal_enabled) return;
  std::array<std::byte, kJournalRecSize> rec{};  // WAL descriptor record
  seal_journal_record(std::span<std::byte, kJournalRecSize>{rec},
                      journal_seq_++);
  const std::uint64_t lba = journal_start_ + journal_cursor_;
  journal_cursor_ = (journal_cursor_ + 1) % opts_.journal_blocks;
  dev_write(lba, rec, c);
}

// -------------------------------------------------------------- allocation

std::uint64_t Ext4like::alloc_block(OpCost& c) {
  for (std::size_t w = data_start_ / 64; w < block_bitmap_.size(); ++w) {
    if (block_bitmap_[w] == ~0ULL) continue;
    for (int bit = 0; bit < 64; ++bit) {
      const std::uint64_t lba = w * 64 + static_cast<std::uint64_t>(bit);
      if (lba < data_start_) continue;
      if (lba >= opts_.total_blocks) return 0;
      if ((block_bitmap_[w] >> bit) & 1) continue;
      block_bitmap_[w] |= 1ULL << bit;
      --free_blocks_;
      // Persist the bitmap word's block.
      const std::uint64_t bb = bitmap_start_ + lba / (kBlockSize * 8);
      dev_write(bb, std::as_bytes(std::span{&block_bitmap_[w], 1}), c);
      return lba;
    }
  }
  return 0;
}

void Ext4like::free_block(std::uint64_t lba, OpCost& c) {
  DPC_CHECK(lba >= data_start_ && lba < opts_.total_blocks);
  const std::size_t w = lba / 64;
  const int bit = static_cast<int>(lba % 64);
  DPC_CHECK((block_bitmap_[w] >> bit) & 1);
  block_bitmap_[w] &= ~(1ULL << bit);
  ++free_blocks_;
  const std::uint64_t bb = bitmap_start_ + lba / (kBlockSize * 8);
  dev_write(bb, std::as_bytes(std::span{&block_bitmap_[w], 1}), c);
  disk_->trim_block(lba);
}

Ino Ext4like::alloc_inode(OpCost& c) {
  (void)c;
  for (std::uint32_t i = 1; i < inode_used_.size(); ++i) {
    if (!inode_used_[i]) {
      inode_used_[i] = true;
      return i;
    }
  }
  return 0;
}

void Ext4like::free_inode(Ino ino, OpCost& c) {
  DPC_CHECK(ino != 0 && ino < inode_used_.size() && inode_used_[ino]);
  inode_used_[ino] = false;
  DiskInode zero;
  write_inode(ino, zero, c);
}

// ------------------------------------------------------------- inode table

Ext4like::DiskInode Ext4like::read_inode(Ino ino, OpCost& c) {
  DPC_CHECK(ino != 0 && ino < opts_.max_inodes);
  const std::uint64_t lba = itable_start_ + ino / kInodesPerBlock;
  std::array<std::byte, kBlockSize> block{};
  dev_read(lba, block, c);
  DiskInode di;
  std::memcpy(&di, block.data() + (ino % kInodesPerBlock) * sizeof(DiskInode),
              sizeof(DiskInode));
  return di;
}

void Ext4like::write_inode(Ino ino, const DiskInode& di, OpCost& c) {
  DPC_CHECK(ino != 0 && ino < opts_.max_inodes);
  const std::uint64_t lba = itable_start_ + ino / kInodesPerBlock;
  std::array<std::byte, kBlockSize> block{};
  dev_read(lba, block, c);
  std::memcpy(block.data() + (ino % kInodesPerBlock) * sizeof(DiskInode), &di,
              sizeof(DiskInode));
  dev_write(lba, block, c);
}

// ------------------------------------------------------------ block mapping

std::uint64_t Ext4like::map_block(DiskInode& di, std::uint64_t logical,
                                  bool alloc, bool& inode_dirty, OpCost& c) {
  auto get_or_alloc_ptr = [&](std::uint64_t table_lba,
                              std::uint32_t index) -> std::uint64_t {
    std::array<std::byte, kBlockSize> tbl{};
    dev_read(table_lba, tbl, c);
    std::uint64_t v;
    std::memcpy(&v, tbl.data() + index * 8, 8);
    if (v == 0 && alloc) {
      v = alloc_block(c);
      if (v == 0) return 0;
      std::memcpy(tbl.data() + index * 8, &v, 8);
      dev_write(table_lba, tbl, c);
    }
    return v;
  };

  if (logical < 12) {
    std::uint64_t v = di.direct[logical];
    if (v == 0 && alloc) {
      v = alloc_block(c);
      if (v == 0) return 0;
      di.direct[logical] = v;
      inode_dirty = true;
    }
    return v;
  }
  logical -= 12;
  if (logical < kPtrsPerBlock) {
    if (di.indirect == 0) {
      if (!alloc) return 0;
      di.indirect = alloc_block(c);
      if (di.indirect == 0) return 0;
      inode_dirty = true;
      std::array<std::byte, kBlockSize> zero{};
      dev_write(di.indirect, zero, c);
    }
    return get_or_alloc_ptr(di.indirect, static_cast<std::uint32_t>(logical));
  }
  logical -= kPtrsPerBlock;
  DPC_CHECK_MSG(logical < std::uint64_t{kPtrsPerBlock} * kPtrsPerBlock,
                "file exceeds double-indirect capacity");
  if (di.dindirect == 0) {
    if (!alloc) return 0;
    di.dindirect = alloc_block(c);
    if (di.dindirect == 0) return 0;
    inode_dirty = true;
    std::array<std::byte, kBlockSize> zero{};
    dev_write(di.dindirect, zero, c);
  }
  const auto l1 = static_cast<std::uint32_t>(logical / kPtrsPerBlock);
  const auto l2 = static_cast<std::uint32_t>(logical % kPtrsPerBlock);
  std::uint64_t mid = get_or_alloc_ptr(di.dindirect, l1);
  if (mid == 0) return 0;
  // A freshly allocated mid-level table must start zeroed.
  return get_or_alloc_ptr(mid, l2);
}

void Ext4like::free_file_blocks(DiskInode& di, OpCost& c) {
  for (auto& d : di.direct) {
    if (d != 0) {
      free_block(d, c);
      d = 0;
    }
  }
  auto free_table = [&](std::uint64_t table_lba, int depth,
                        auto&& self) -> void {
    std::array<std::byte, kBlockSize> tbl{};
    dev_read(table_lba, tbl, c);
    for (std::uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      std::uint64_t v;
      std::memcpy(&v, tbl.data() + i * 8, 8);
      if (v == 0) continue;
      if (depth > 0) self(v, depth - 1, self);
      free_block(v, c);
    }
  };
  if (di.indirect != 0) {
    free_table(di.indirect, 0, free_table);
    free_block(di.indirect, c);
    di.indirect = 0;
  }
  if (di.dindirect != 0) {
    free_table(di.dindirect, 1, free_table);
    free_block(di.dindirect, c);
    di.dindirect = 0;
  }
}

void Ext4like::free_blocks_from(DiskInode& di, std::uint64_t first_logical,
                                std::uint64_t old_size, bool& inode_dirty,
                                OpCost& c) {
  const std::uint64_t last_logical =
      old_size == 0 ? 0 : (old_size - 1) / kBlockSize + 1;
  for (std::uint64_t logical = first_logical; logical < last_logical;
       ++logical) {
    if (logical < 12) {
      if (di.direct[logical] != 0) {
        free_block(di.direct[logical], c);
        di.direct[logical] = 0;
        inode_dirty = true;
      }
      continue;
    }
    // Indirect levels: locate the table entry holding this pointer.
    std::uint64_t idx = logical - 12;
    std::uint64_t table_lba = 0;
    std::uint32_t slot = 0;
    if (idx < kPtrsPerBlock) {
      if (di.indirect == 0) continue;
      table_lba = di.indirect;
      slot = static_cast<std::uint32_t>(idx);
    } else {
      idx -= kPtrsPerBlock;
      if (di.dindirect == 0) continue;
      std::array<std::byte, kBlockSize> top{};
      dev_read(di.dindirect, top, c);
      std::uint64_t mid;
      std::memcpy(&mid, top.data() + (idx / kPtrsPerBlock) * 8, 8);
      if (mid == 0) continue;
      table_lba = mid;
      slot = static_cast<std::uint32_t>(idx % kPtrsPerBlock);
    }
    std::array<std::byte, kBlockSize> tbl{};
    dev_read(table_lba, tbl, c);
    std::uint64_t v;
    std::memcpy(&v, tbl.data() + slot * 8, 8);
    if (v == 0) continue;
    free_block(v, c);
    v = 0;
    std::memcpy(tbl.data() + slot * 8, &v, 8);
    dev_write(table_lba, tbl, c);
  }
}

// --------------------------------------------------------- raw file data IO

void Ext4like::file_read_raw(const DiskInode& di, std::uint64_t offset,
                             std::span<std::byte> dst, OpCost& c) {
  std::size_t done = 0;
  DiskInode tmp = di;  // map_block wants mutability; alloc=false won't change
  bool dirty = false;
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t logical = pos / kBlockSize;
    const auto in_block = static_cast<std::uint32_t>(pos % kBlockSize);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, kBlockSize - in_block));
    const std::uint64_t lba = map_block(tmp, logical, false, dirty, c);
    if (lba == 0) {
      std::memset(dst.data() + done, 0, chunk);  // hole
    } else {
      std::vector<std::byte> block(kBlockSize);
      disk_->read_block(lba, block);
      ++c.dev_reads;
      c.total += ssd::SsdModel::random_service(true, kBlockSize);
      std::memcpy(dst.data() + done, block.data() + in_block, chunk);
    }
    done += chunk;
  }
}

void Ext4like::file_write_raw(DiskInode& di, std::uint64_t offset,
                              std::span<const std::byte> src,
                              bool& inode_dirty, OpCost& c) {
  std::size_t done = 0;
  while (done < src.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t logical = pos / kBlockSize;
    const auto in_block = static_cast<std::uint32_t>(pos % kBlockSize);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(src.size() - done, kBlockSize - in_block));
    const std::uint64_t lba = map_block(di, logical, true, inode_dirty, c);
    DPC_CHECK_MSG(lba != 0, "ENOSPC");
    if (chunk == kBlockSize) {
      disk_->write_block(lba, src.subspan(done, chunk));
    } else {
      std::vector<std::byte> block(kBlockSize);
      disk_->read_block(lba, block);
      ++c.dev_reads;
      c.total += ssd::SsdModel::random_service(true, kBlockSize);
      std::memcpy(block.data() + in_block, src.data() + done, chunk);
      disk_->write_block(lba, block);
    }
    ++c.dev_writes;
    c.total += ssd::SsdModel::random_service(false, kBlockSize);
    done += chunk;
  }
}

// ------------------------------------------------------------- directories

std::optional<std::pair<Ino, std::uint64_t>> Ext4like::dir_find(
    const DiskInode& dir, std::string_view name, OpCost& c) {
  Dirent de;
  for (std::uint64_t off = 0; off + kDirentSize <= dir.size;
       off += kDirentSize) {
    file_read_raw(dir, off, std::as_writable_bytes(std::span{&de, 1}), c);
    if (de.ino == 0) continue;
    if (std::string_view(de.name, de.name_len) == name)
      return std::make_pair(static_cast<Ino>(de.ino), off);
  }
  return std::nullopt;
}

bool Ext4like::dir_insert(DiskInode& dir, Ino dir_ino, std::string_view name,
                          Ino ino, OpCost& c) {
  DPC_CHECK(name.size() <= kMaxName);
  Dirent de;
  std::uint64_t slot = dir.size;
  // Reuse a hole if present.
  Dirent probe;
  for (std::uint64_t off = 0; off + kDirentSize <= dir.size;
       off += kDirentSize) {
    file_read_raw(dir, off, std::as_writable_bytes(std::span{&probe, 1}), c);
    if (probe.ino == 0) {
      slot = off;
      break;
    }
  }
  de.ino = ino;
  de.name_len = static_cast<std::uint16_t>(name.size());
  std::memcpy(de.name, name.data(), name.size());
  bool inode_dirty = false;
  file_write_raw(dir, slot, std::as_bytes(std::span{&de, 1}), inode_dirty, c);
  if (slot == dir.size) {
    dir.size += kDirentSize;
    inode_dirty = true;
  }
  if (inode_dirty) write_inode(dir_ino, dir, c);
  return true;
}

bool Ext4like::dir_remove(DiskInode& dir, Ino dir_ino, std::string_view name,
                          OpCost& c) {
  const auto found = dir_find(dir, name, c);
  if (!found) return false;
  Dirent hole{};
  bool inode_dirty = false;
  file_write_raw(dir, found->second, std::as_bytes(std::span{&hole, 1}),
                 inode_dirty, c);
  if (inode_dirty) write_inode(dir_ino, dir, c);
  return true;
}

bool Ext4like::dir_is_empty(const DiskInode& dir, OpCost& c) {
  Dirent de;
  for (std::uint64_t off = 0; off + kDirentSize <= dir.size;
       off += kDirentSize) {
    file_read_raw(dir, off, std::as_writable_bytes(std::span{&de, 1}), c);
    if (de.ino != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------- public

FsResult<Ino> Ext4like::make_node(Ino parent, std::string_view name,
                                  FileType type, std::uint16_t mode) {
  FsResult<Ino> res;
  if (name.empty() || name.size() > kMaxName ||
      name.find('/') != std::string_view::npos) {
    res.err = EINVAL;
    return res;
  }
  sim::LockGuard lock(mu_);
  if (parent == 0 || parent >= opts_.max_inodes || !inode_used_[parent]) {
    res.err = ENOENT;
    return res;
  }
  DiskInode pdi = read_inode(parent, res.cost);
  if (pdi.type != static_cast<std::uint16_t>(FileType::kDirectory)) {
    res.err = ENOTDIR;
    return res;
  }
  if (dir_find(pdi, name, res.cost)) {
    res.err = EEXIST;
    return res;
  }
  const Ino ino = alloc_inode(res.cost);
  if (ino == 0) {
    res.err = ENOSPC;
    return res;
  }
  journal(res.cost);
  DiskInode di;
  di.type = static_cast<std::uint16_t>(type);
  di.mode = mode;
  di.nlink = type == FileType::kDirectory ? 2 : 1;
  di.mtime = time_++;
  write_inode(ino, di, res.cost);
  dir_insert(pdi, parent, name, ino, res.cost);
  pdi.mtime = time_++;
  if (type == FileType::kDirectory) ++pdi.nlink;
  write_inode(parent, pdi, res.cost);
  res.cost.total += sim::calib::kExt4KernelOp;
  res.value = ino;
  return res;
}

FsResult<Ino> Ext4like::create(Ino parent, std::string_view name,
                               std::uint16_t mode) {
  return make_node(parent, name, FileType::kRegular, mode);
}

FsResult<Ino> Ext4like::mkdir(Ino parent, std::string_view name,
                              std::uint16_t mode) {
  return make_node(parent, name, FileType::kDirectory, mode);
}

FsResult<Ino> Ext4like::lookup(Ino parent, std::string_view name) {
  FsResult<Ino> res;
  sim::LockGuard lock(mu_);
  if (parent == 0 || parent >= opts_.max_inodes || !inode_used_[parent]) {
    res.err = ENOENT;
    return res;
  }
  DiskInode pdi = read_inode(parent, res.cost);
  if (pdi.type != static_cast<std::uint16_t>(FileType::kDirectory)) {
    res.err = ENOTDIR;
    return res;
  }
  const auto found = dir_find(pdi, name, res.cost);
  if (!found) {
    res.err = ENOENT;
    return res;
  }
  res.value = found->first;
  return res;
}

FsResult<Ino> Ext4like::resolve(std::string_view path) {
  FsResult<Ino> res;
  if (path.empty() || path[0] != '/') {
    res.err = EINVAL;
    return res;
  }
  Ino cur = kRootIno;
  std::size_t at = 1;
  while (at < path.size()) {
    const std::size_t slash = path.find('/', at);
    const auto comp = path.substr(
        at, slash == std::string_view::npos ? std::string_view::npos
                                            : slash - at);
    if (!comp.empty()) {
      auto step = lookup(cur, comp);
      res.cost.total += step.cost.total;
      res.cost.dev_reads += step.cost.dev_reads;
      res.cost.dev_writes += step.cost.dev_writes;
      if (!step.ok()) {
        res.err = step.err;
        return res;
      }
      cur = step.value;
    }
    if (slash == std::string_view::npos) break;
    at = slash + 1;
  }
  res.value = cur;
  return res;
}

FsResult<FsUnit> Ext4like::remove_node(Ino parent, std::string_view name,
                                       bool dir) {
  FsResult<FsUnit> res;
  sim::LockGuard lock(mu_);
  if (parent == 0 || parent >= opts_.max_inodes || !inode_used_[parent]) {
    res.err = ENOENT;
    return res;
  }
  DiskInode pdi = read_inode(parent, res.cost);
  const auto found = dir_find(pdi, name, res.cost);
  if (!found) {
    res.err = ENOENT;
    return res;
  }
  const Ino ino = found->first;
  DiskInode di = read_inode(ino, res.cost);
  const bool is_dir =
      di.type == static_cast<std::uint16_t>(FileType::kDirectory);
  if (dir && !is_dir) {
    res.err = ENOTDIR;
    return res;
  }
  if (!dir && is_dir) {
    res.err = EISDIR;
    return res;
  }
  if (dir && !dir_is_empty(di, res.cost)) {
    res.err = ENOTEMPTY;
    return res;
  }
  journal(res.cost);
  dir_remove(pdi, parent, name, res.cost);
  pcache_.invalidate_inode(ino, writeback_fn());
  di = read_inode(ino, res.cost);  // writebacks may have allocated blocks
  free_file_blocks(di, res.cost);
  free_inode(ino, res.cost);
  pdi = read_inode(parent, res.cost);
  pdi.mtime = time_++;
  if (dir && pdi.nlink > 2) --pdi.nlink;
  write_inode(parent, pdi, res.cost);
  res.cost.total += sim::calib::kExt4KernelOp;
  return res;
}

FsResult<FsUnit> Ext4like::unlink(Ino parent, std::string_view name) {
  return remove_node(parent, name, false);
}

FsResult<FsUnit> Ext4like::rmdir(Ino parent, std::string_view name) {
  return remove_node(parent, name, true);
}

FsResult<FsUnit> Ext4like::rename(Ino old_parent, std::string_view old_name,
                                  Ino new_parent, std::string_view new_name) {
  FsResult<FsUnit> res;
  sim::LockGuard lock(mu_);
  DiskInode opdi = read_inode(old_parent, res.cost);
  const auto src = dir_find(opdi, old_name, res.cost);
  if (!src) {
    res.err = ENOENT;
    return res;
  }
  DiskInode npdi =
      new_parent == old_parent ? opdi : read_inode(new_parent, res.cost);
  if (const auto dst = dir_find(npdi, new_name, res.cost)) {
    if (dst->first == src->first) return res;
    DiskInode ddi = read_inode(dst->first, res.cost);
    const bool dst_dir =
        ddi.type == static_cast<std::uint16_t>(FileType::kDirectory);
    if (dst_dir && !dir_is_empty(ddi, res.cost)) {
      res.err = ENOTEMPTY;
      return res;
    }
    journal(res.cost);
    dir_remove(npdi, new_parent, new_name, res.cost);
    pcache_.invalidate_inode(dst->first, writeback_fn());
    ddi = read_inode(dst->first, res.cost);
    free_file_blocks(ddi, res.cost);
    free_inode(dst->first, res.cost);
    if (new_parent == old_parent) opdi = npdi = read_inode(new_parent, res.cost);
  }
  journal(res.cost);
  if (new_parent == old_parent) {
    dir_remove(opdi, old_parent, old_name, res.cost);
    opdi = read_inode(old_parent, res.cost);
    dir_insert(opdi, old_parent, new_name, src->first, res.cost);
  } else {
    dir_remove(opdi, old_parent, old_name, res.cost);
    dir_insert(npdi, new_parent, new_name, src->first, res.cost);
  }
  res.cost.total += sim::calib::kExt4KernelOp;
  return res;
}

FsResult<std::vector<DirEntry>> Ext4like::readdir(Ino dir) {
  FsResult<std::vector<DirEntry>> res;
  sim::LockGuard lock(mu_);
  if (dir == 0 || dir >= opts_.max_inodes || !inode_used_[dir]) {
    res.err = ENOENT;
    return res;
  }
  DiskInode di = read_inode(dir, res.cost);
  if (di.type != static_cast<std::uint16_t>(FileType::kDirectory)) {
    res.err = ENOTDIR;
    return res;
  }
  Dirent de;
  for (std::uint64_t off = 0; off + kDirentSize <= di.size;
       off += kDirentSize) {
    file_read_raw(di, off, std::as_writable_bytes(std::span{&de, 1}),
                  res.cost);
    if (de.ino == 0) continue;
    res.value.push_back(
        {std::string(de.name, de.name_len), static_cast<Ino>(de.ino)});
  }
  return res;
}

FsResult<Stat> Ext4like::getattr(Ino ino) {
  FsResult<Stat> res;
  sim::LockGuard lock(mu_);
  if (ino == 0 || ino >= opts_.max_inodes || !inode_used_[ino]) {
    res.err = ENOENT;
    return res;
  }
  const DiskInode di = read_inode(ino, res.cost);
  res.value = {ino, static_cast<FileType>(di.type), di.mode, di.nlink,
               di.size, di.mtime};
  return res;
}

cache::PageCache::WritebackFn Ext4like::writeback_fn() {
  return [this](std::uint64_t ino, std::uint64_t lpn,
                std::span<const std::byte> data) {
    // Writeback happens with mu_ held by the caller.
    OpCost c;
    DiskInode di = read_inode(static_cast<Ino>(ino), c);
    bool dirty = false;
    file_write_raw(di, lpn * kBlockSize, data, dirty, c);
    if (dirty) write_inode(static_cast<Ino>(ino), di, c);
  };
}

FsResult<std::uint32_t> Ext4like::read(Ino ino, std::uint64_t offset,
                                       std::span<std::byte> dst, bool direct) {
  FsResult<std::uint32_t> res;
  sim::LockGuard lock(mu_);
  if (ino == 0 || ino >= opts_.max_inodes || !inode_used_[ino]) {
    res.err = ENOENT;
    return res;
  }
  DiskInode di = read_inode(ino, res.cost);
  if (di.type != static_cast<std::uint16_t>(FileType::kRegular)) {
    res.err = EISDIR;
    return res;
  }
  if (offset >= di.size || dst.empty()) {
    res.value = 0;
    return res;
  }
  const auto n = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(dst.size(), di.size - offset));

  if (direct) {
    file_read_raw(di, offset, dst.first(n), res.cost);
  } else {
    // Page-cache path: per 4 KB page, hit or fill. The inode is re-read on
    // every miss: a fill-triggered eviction may have written this file
    // back and allocated blocks a stale copy would not see.
    std::uint32_t done = 0;
    std::vector<std::byte> page(kBlockSize);
    while (done < n) {
      const std::uint64_t pos = offset + done;
      const std::uint64_t lpn = pos / kBlockSize;
      const auto in_page = static_cast<std::uint32_t>(pos % kBlockSize);
      const std::uint32_t chunk =
          std::min<std::uint32_t>(n - done, kBlockSize - in_page);
      if (!pcache_.read(ino, lpn, page)) {
        DiskInode fresh = read_inode(ino, res.cost);
        file_read_raw(fresh, lpn * kBlockSize, page, res.cost);
        pcache_.fill(ino, lpn, page, writeback_fn());
      }
      std::memcpy(dst.data() + done, page.data() + in_page, chunk);
      done += chunk;
    }
  }
  res.cost.total += sim::calib::kExt4KernelOp;
  res.value = n;
  return res;
}

FsResult<std::uint32_t> Ext4like::write(Ino ino, std::uint64_t offset,
                                        std::span<const std::byte> src,
                                        bool direct) {
  FsResult<std::uint32_t> res;
  sim::LockGuard lock(mu_);
  if (ino == 0 || ino >= opts_.max_inodes || !inode_used_[ino]) {
    res.err = ENOENT;
    return res;
  }
  DiskInode di = read_inode(ino, res.cost);
  if (di.type != static_cast<std::uint16_t>(FileType::kRegular)) {
    res.err = EISDIR;
    return res;
  }
  bool inode_dirty = false;
  if (direct) {
    file_write_raw(di, offset, src, inode_dirty, res.cost);
  } else {
    std::uint32_t done = 0;
    std::vector<std::byte> page(kBlockSize);
    const auto n = static_cast<std::uint32_t>(src.size());
    while (done < n) {
      const std::uint64_t pos = offset + done;
      const std::uint64_t lpn = pos / kBlockSize;
      const auto in_page = static_cast<std::uint32_t>(pos % kBlockSize);
      const std::uint32_t chunk =
          std::min<std::uint32_t>(n - done, kBlockSize - in_page);
      if (chunk == kBlockSize) {
        pcache_.write(ino, lpn, src.subspan(done, chunk), writeback_fn());
      } else {
        // Partial page: read-merge-write through the cache. The inode is
        // re-read because a cache eviction inside pcache_.write() may have
        // written this very file back and allocated blocks — a stale copy
        // would read zeros where the writeback just put data.
        if (!pcache_.read(ino, lpn, page)) {
          DiskInode fresh = read_inode(ino, res.cost);
          file_read_raw(fresh, lpn * kBlockSize, page, res.cost);
        }
        std::memcpy(page.data() + in_page, src.data() + done, chunk);
        pcache_.write(ino, lpn, page, writeback_fn());
      }
      done += chunk;
    }
    // Same staleness hazard for the final size update: evictions during
    // the loop may have updated the on-disk inode's block pointers.
    const std::uint64_t want_size = di.size;
    di = read_inode(ino, res.cost);
    di.size = std::max(di.size, want_size);
    inode_dirty = true;
  }
  const std::uint64_t new_size =
      std::max<std::uint64_t>(di.size, offset + src.size());
  if (new_size != di.size || inode_dirty) {
    di.size = new_size;
    di.mtime = time_++;
    journal(res.cost);
    write_inode(ino, di, res.cost);
  }
  res.cost.total += sim::calib::kExt4KernelOp;
  res.value = static_cast<std::uint32_t>(src.size());
  return res;
}

FsResult<FsUnit> Ext4like::truncate(Ino ino, std::uint64_t new_size) {
  FsResult<FsUnit> res;
  sim::LockGuard lock(mu_);
  if (ino == 0 || ino >= opts_.max_inodes || !inode_used_[ino]) {
    res.err = ENOENT;
    return res;
  }
  DiskInode di = read_inode(ino, res.cost);
  if (di.type != static_cast<std::uint16_t>(FileType::kRegular)) {
    res.err = EISDIR;
    return res;
  }
  pcache_.invalidate_inode(ino, writeback_fn());
  // The writebacks above may have allocated blocks and rewritten the
  // inode; refresh our copy or the final write_inode would clobber them.
  di = read_inode(ino, res.cost);
  if (new_size < di.size) {
    bool dirty = false;
    if (new_size == 0) {
      free_file_blocks(di, res.cost);
    } else {
      // Free whole blocks past the new end and zero the tail of the
      // boundary block, so a later regrow reads zeros (POSIX).
      const std::uint64_t keep_blocks =
          (new_size + kBlockSize - 1) / kBlockSize;
      free_blocks_from(di, keep_blocks, di.size, dirty, res.cost);
      const auto tail = static_cast<std::uint32_t>(new_size % kBlockSize);
      if (tail != 0) {
        const std::uint64_t lba =
            map_block(di, new_size / kBlockSize, false, dirty, res.cost);
        if (lba != 0) {
          std::vector<std::byte> block(kBlockSize);
          disk_->read_block(lba, block);
          std::fill(block.begin() + tail, block.end(), std::byte{0});
          disk_->write_block(lba, block);
          ++res.cost.dev_reads;
          ++res.cost.dev_writes;
          res.cost.total += ssd::SsdModel::random_service(true, kBlockSize);
          res.cost.total += ssd::SsdModel::random_service(false, kBlockSize);
        }
      }
    }
  }
  journal(res.cost);
  di.size = new_size;
  di.mtime = time_++;
  write_inode(ino, di, res.cost);
  return res;
}

FsResult<FsUnit> Ext4like::fsync(Ino ino) {
  FsResult<FsUnit> res;
  sim::LockGuard lock(mu_);
  if (ino == 0 || ino >= opts_.max_inodes || !inode_used_[ino]) {
    res.err = ENOENT;
    return res;
  }
  journal(res.cost);
  const std::size_t before_writes = res.cost.dev_writes;
  pcache_.flush(writeback_fn());
  (void)before_writes;  // flush cost lands inside writeback_fn's OpCost
  res.cost.total += sim::calib::kSsdWriteLat;  // flush barrier
  return res;
}

FsResult<FsUnit> Ext4like::sync() {
  FsResult<FsUnit> res;
  sim::LockGuard lock(mu_);
  pcache_.flush(writeback_fn());
  res.cost.total += sim::calib::kSsdWriteLat;
  return res;
}

}  // namespace dpc::hostfs
