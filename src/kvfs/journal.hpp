// KVFS write-ahead intent journal (crash consistency).
//
// KVFS spreads one mutation across several KV flavors with no multi-key
// atomicity, so a DPU crash mid-operation leaves the keyspace torn (dangling
// dentries, orphan data, a promotion half done). Before its first mutating
// KV op, every multi-KV mutation appends one CRC32C-protected *intent*
// record describing the whole op; after the last mutating op the record is
// erased (committed). Replay-on-mount scans the surviving records, probes
// the keyspace to see how far each op got, and rolls it forward (completes
// it) or backward (undoes it) — either way the op ends all-or-nothing.
// `fsck_repair` runs after replay as the backstop that renormalizes what
// intent records cannot know (parent link counts, stray residue).
//
// Records live in the same disaggregated store under tag 'J' + be64 id, so
// the journal is exactly as durable as the state it protects and shared
// mounts recover each other. Record ids come from the ino counter: globally
// unique, allocated with the same increment primitive as inodes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "kv/remote.hpp"
#include "kvfs/types.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace dpc::nvm {
class WriteAheadLog;
}  // namespace dpc::nvm

namespace dpc::kvfs {

/// Crash point inside the journal itself: fires right after the intent
/// record is durable but before the op's first real mutation.
inline constexpr std::string_view kCrashAfterAppend =
    "kvfs.journal/crash_after_append";
/// Crash point inside replay: fires after a record has been rolled
/// forward/backward but before its erase — the second replay must find the
/// half-replayed log and converge (every replay_one path is idempotent).
inline constexpr std::string_view kCrashMidReplay =
    "kvfs.journal/crash_mid_replay";

enum class JournalOp : std::uint8_t {
  kCreate = 1,  ///< create / mkdir / symlink (make_node + symlink target)
  kRemove = 2,  ///< unlink / rmdir
  kRename = 3,
  kPromote = 4,  ///< small→big promotion (§3.4)
  kExtent = 5,   ///< big-file extent update: new blocks added to the object
};

/// One intent record. Field use by op:
///   kCreate : ino, parent, name, type; name2 = symlink target (if symlink)
///   kRemove : ino, parent, name, type, nlink_before, big_file
///   kRename : ino (source), parent (old), name (old), new_parent,
///             name2 (new), replaced_ino (+replaced_big) if dst was purged
///   kPromote: ino, blocks = {the single data block} (empty if file empty)
///   kExtent : ino, blocks = block ids newly allocated for this write
struct JournalRecord {
  JournalOp op = JournalOp::kCreate;
  FileType type = FileType::kRegular;
  Ino ino = 0;
  Ino parent = 0;
  Ino new_parent = 0;
  Ino replaced_ino = 0;
  std::uint32_t nlink_before = 0;
  std::uint8_t big_file = 0;
  std::uint8_t replaced_big = 0;
  std::string name;
  std::string name2;
  std::vector<std::uint64_t> blocks;
};

/// Record codec: [crc32c(4) | payload]. The CRC covers the payload, so a
/// torn/corrupt record decodes to nullopt and replay skips (counts) it.
kv::Bytes encode_journal_record(const JournalRecord& rec);
std::optional<JournalRecord> decode_journal_record(const kv::Bytes& v);

/// Rolls one decoded intent record forward or backward against the raw
/// store (idempotent — the WAL replay loop calls this for every surviving
/// uncommitted kIntent record riding the NVM spine). Returns true when the
/// op was completed, false when undone; `cost` accrues the modelled remote
/// round trips of every probe and fix.
bool replay_intent_record(kv::KvStore& raw, const JournalRecord& rec,
                          sim::Nanos& cost);

struct JournalReplayReport {
  std::uint64_t scanned = 0;         ///< records found on mount
  std::uint64_t rolled_forward = 0;  ///< ops completed by replay
  std::uint64_t rolled_back = 0;     ///< ops undone by replay
  std::uint64_t corrupt = 0;         ///< CRC-failed records dropped
  sim::Nanos cost{};                 ///< modelled remote-KV cost of replay
};

class IntentJournal {
 public:
  /// `registry` hosts the kvfs.journal/* counters (required). `fault`
  /// (optional) enables the append-side crash point.
  IntentJournal(kv::RemoteKv& store, obs::Registry& registry,
                fault::FaultInjector* fault);

  /// Routes intent records through the NVM write-ahead log instead of
  /// per-record KV puts: begin() appends kIntent, commit() appends
  /// kIntentCommit — one durability spine with the data records. When the
  /// WAL is degraded (ring full / NVM faulting) begin() falls back to the
  /// KV path record-by-record, so write-ahead semantics never lapse.
  void attach_wal(nvm::WriteAheadLog* wal) { wal_ = wal; }

  /// Appends an intent record before the op's first mutation. Returns the
  /// record id, or 0 if the append failed — the caller must abort the op
  /// (EIO) without mutating anything, preserving write-ahead semantics.
  std::uint64_t begin(const JournalRecord& rec, sim::Nanos& cost);

  /// Erases the record after the op's last mutation. A failed erase is
  /// harmless (the record survives; replay re-probes and finds the op
  /// complete) so commit never fails the op.
  void commit(std::uint64_t record_id, sim::Nanos& cost);

  /// Replays every surviving record against the raw store and erases it.
  /// Runs on the recovery path (mount / DPU restart): bypasses fault
  /// injection and retries — recovery is not itself injectable — but
  /// charges modelled remote-KV round-trip costs for every probe and fix.
  /// Callers must ensure no concurrent mutation. `fault` (optional) arms
  /// only the kCrashMidReplay crash point — the probes and fixes themselves
  /// stay non-injectable.
  static JournalReplayReport replay(kv::KvStore& raw,
                                    obs::Registry* registry = nullptr,
                                    fault::FaultInjector* fault = nullptr);

 private:
  kv::RemoteKv* store_;
  fault::FaultInjector* fault_;
  nvm::WriteAheadLog* wal_ = nullptr;
  obs::Counter& appends_;
  obs::Counter& commits_;
  obs::Counter& append_fails_;
  obs::Counter& commit_fails_;
  obs::Counter& wal_appends_;
};

}  // namespace dpc::kvfs
