#include "kvfs/types.hpp"

#include <cstring>

#include "sim/check.hpp"

namespace dpc::kvfs {

namespace {
void append_be64(std::string& s, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    s.push_back(static_cast<char>((v >> shift) & 0xFF));
}
}  // namespace

std::string inode_key(Ino p_ino, std::string_view name) {
  DPC_CHECK_MSG(!name.empty() && name.size() <= kMaxNameLen,
                "invalid name length " << name.size());
  DPC_CHECK_MSG(name.find('/') == std::string_view::npos,
                "name contains '/'");
  std::string k;
  k.reserve(1 + 8 + name.size());
  k.push_back('D');
  append_be64(k, p_ino);
  k.append(name);
  return k;
}

std::string inode_key_prefix(Ino p_ino) {
  std::string k;
  k.reserve(9);
  k.push_back('D');
  append_be64(k, p_ino);
  return k;
}

std::string_view name_of_inode_key(std::string_view key) {
  DPC_CHECK(key.size() > 9 && key[0] == 'D');
  return key.substr(9);
}

namespace {
std::uint64_t read_be64(std::string_view key, std::size_t at) {
  DPC_CHECK(key.size() >= at + 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v = (v << 8) | static_cast<std::uint8_t>(key[at + static_cast<std::size_t>(i)]);
  return v;
}
}  // namespace

std::uint64_t id_of_tagged_key(std::string_view key) {
  DPC_CHECK(key.size() >= 9);
  return read_be64(key, 1);
}

Ino parent_of_inode_key(std::string_view key) {
  DPC_CHECK(key.size() > 9 && key[0] == 'D');
  return read_be64(key, 1);
}

namespace {
std::string tagged_key(char tag, std::uint64_t v) {
  std::string k;
  k.reserve(9);
  k.push_back(tag);
  append_be64(k, v);
  return k;
}
}  // namespace

std::string ino_counter_key() { return "C.ino"; }
std::string block_counter_key() { return "C.block"; }

std::string attr_key(Ino ino) { return tagged_key('A', ino); }
std::string small_key(Ino ino) { return tagged_key('S', ino); }
std::string big_object_key(Ino ino) { return tagged_key('O', ino); }
std::string block_key(std::uint64_t block_id) {
  return tagged_key('B', block_id);
}
std::string journal_key(std::uint64_t record_id) {
  return tagged_key('J', record_id);
}
std::string journal_key_prefix() { return "J"; }

kv::Bytes encode_ino(Ino ino) {
  kv::Bytes v(sizeof(Ino));
  std::memcpy(v.data(), &ino, sizeof(Ino));
  return v;
}

Ino decode_ino(const kv::Bytes& v) {
  DPC_CHECK(v.size() == sizeof(Ino));
  Ino ino;
  std::memcpy(&ino, v.data(), sizeof(Ino));
  return ino;
}

kv::Bytes encode_attr(const Attr& a) {
  kv::Bytes v(sizeof(Attr));
  std::memcpy(v.data(), &a, sizeof(Attr));
  return v;
}

Attr decode_attr(const kv::Bytes& v) {
  DPC_CHECK_MSG(v.size() == sizeof(Attr),
                "attribute value has " << v.size() << " bytes");
  Attr a;
  std::memcpy(&a, v.data(), sizeof(Attr));
  return a;
}

void FileObject::set_block(std::uint64_t logical, std::uint64_t id) {
  if (logical >= blocks.size()) blocks.resize(logical + 1, 0);
  blocks[logical] = id;
}

kv::Bytes encode_file_object(const FileObject& obj) {
  const std::uint64_t n = obj.blocks.size();
  kv::Bytes v(sizeof(std::uint64_t) * (1 + n));
  std::memcpy(v.data(), &n, sizeof(n));
  if (n > 0)
    std::memcpy(v.data() + sizeof(n), obj.blocks.data(),
                n * sizeof(std::uint64_t));
  return v;
}

FileObject decode_file_object(const kv::Bytes& v) {
  DPC_CHECK(v.size() >= sizeof(std::uint64_t));
  std::uint64_t n;
  std::memcpy(&n, v.data(), sizeof(n));
  DPC_CHECK(v.size() == sizeof(std::uint64_t) * (1 + n));
  FileObject obj;
  obj.blocks.resize(n);
  if (n > 0)
    std::memcpy(obj.blocks.data(), v.data() + sizeof(n),
                n * sizeof(std::uint64_t));
  return obj;
}

}  // namespace dpc::kvfs
