// KVFS on-store types (§3.4): the four KV flavors and their key encodings.
//
//   Inode KV     [key: p_ino + name; value: ino]
//       — directory entries. The parent inode number is a key *prefix*, so
//         a prefix scan lists a directory.
//   Attribute KV [key: ino; value: 256-byte attribute]
//   Small-file KV[key: ino; value: ≤ 8 KB of data] — rewritten whole on
//         update; promoted to a big-file KV when the file outgrows 8 KB.
//   Big-file KV  [key: ino; value: file object] — an extent index mapping
//         the file's contiguous logical space onto discrete 8 KB physical
//         blocks, updated in place at 8 KB granularity.
//
// The store is one keyspace, so each flavor carries a one-byte tag prefix;
// integer key components are big-endian so lexicographic order matches
// numeric order (required for clean prefix scans).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "kv/kv_store.hpp"

namespace dpc::kvfs {

using Ino = std::uint64_t;

/// "In KVFS, the root directory has a unique inode number 0."
inline constexpr Ino kRootIno = 0;
/// Files up to this size live in a small-file KV (§3.4: "less than 8KB").
inline constexpr std::uint32_t kSmallFileMax = 8 * 1024;
/// In-place update granularity of big-file KVs.
inline constexpr std::uint32_t kBigBlock = 8 * 1024;
/// "we have limited the length of the file or directory name to 1024 bytes"
inline constexpr std::size_t kMaxNameLen = 1024;

enum class FileType : std::uint32_t {
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,  ///< target path stored in the small-file KV
};

/// The 256-byte attribute value (§3.4: "a 256-byte data structure that
/// describes the file or directory's privilege, size, ownership, creation
/// time, and so on").
struct Attr {
  Ino ino = 0;
  FileType type = FileType::kRegular;
  std::uint32_t mode = 0644;
  std::uint64_t size = 0;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t ctime = 0;  ///< logical timestamps (deterministic sim clock)
  std::uint64_t mtime = 0;
  std::uint64_t atime = 0;
  std::uint32_t nlink = 1;
  /// True once the file data moved to a big-file KV.
  std::uint32_t big_file = 0;
  std::uint8_t reserved[192] = {};
};
static_assert(sizeof(Attr) == 256, "attribute KV value is 256 bytes");

// ------------------------------------------------------------- key builders

/// Inode KV key: tag 'D' + big-endian parent ino + name.
std::string inode_key(Ino p_ino, std::string_view name);
/// Prefix covering all entries of a directory (for readdir scans).
std::string inode_key_prefix(Ino p_ino);
/// Extracts the entry name back out of an inode-KV key.
std::string_view name_of_inode_key(std::string_view key);

/// Attribute KV key: tag 'A' + big-endian ino.
std::string attr_key(Ino ino);
/// Small-file KV key: tag 'S' + big-endian ino.
std::string small_key(Ino ino);
/// Big-file object (extent index) key: tag 'O' + big-endian ino.
std::string big_object_key(Ino ino);
/// Physical 8 KB block key: tag 'B' + big-endian block id.
std::string block_key(std::uint64_t block_id);
/// Intent-journal record key: tag 'J' + big-endian record id. Record ids
/// come from the ino counter, so several mounts sharing one store never
/// collide and replay scans records in append order.
std::string journal_key(std::uint64_t record_id);
std::string journal_key_prefix();

/// Cluster-wide allocation counters (tag 'C'): shared mounts draw inode
/// and block ids from these via the store's atomic increment.
std::string ino_counter_key();
std::string block_counter_key();

/// Recovers the integer component of a tagged key ('A'/'S'/'O'/'B' + be64).
std::uint64_t id_of_tagged_key(std::string_view key);
/// Recovers the parent ino of an inode-KV key ('D' + be64 + name).
Ino parent_of_inode_key(std::string_view key);

/// Value codecs.
kv::Bytes encode_ino(Ino ino);
Ino decode_ino(const kv::Bytes& v);
kv::Bytes encode_attr(const Attr& a);
Attr decode_attr(const kv::Bytes& v);

/// Big-file object: dense logical-block → physical-block-id table
/// (0 = hole). Serialized as a count-prefixed array of 64-bit ids.
struct FileObject {
  std::vector<std::uint64_t> blocks;

  std::uint64_t block_id(std::uint64_t logical) const {
    return logical < blocks.size() ? blocks[logical] : 0;
  }
  void set_block(std::uint64_t logical, std::uint64_t id);
};

kv::Bytes encode_file_object(const FileObject& obj);
FileObject decode_file_object(const kv::Bytes& v);

/// One readdir result row.
struct DirEntry {
  std::string name;
  Ino ino = 0;
};

}  // namespace dpc::kvfs
