#include "kvfs/journal.hpp"

#include <cstring>

#include "ec/crc32c.hpp"
#include "nvm/wal.hpp"

namespace dpc::kvfs {

namespace {

void put_u8(kv::Bytes& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u32(kv::Bytes& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_u64(kv::Bytes& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_str(kv::Bytes& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  const std::size_t at = out.size();
  out.resize(at + s.size());
  std::memcpy(out.data() + at, s.data(), s.size());
}

/// Bounds-checked cursor over a record payload; any short read poisons the
/// whole decode (a truncated record must not half-parse).
struct Reader {
  const kv::Bytes& v;
  std::size_t at;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || v.size() - at < n) return ok = false;
    std::memcpy(dst, v.data() + at, n);
    at += n;
    return true;
  }
  std::uint8_t u8() {
    std::uint8_t x = 0;
    take(&x, sizeof(x));
    return x;
  }
  std::uint32_t u32() {
    std::uint32_t x = 0;
    take(&x, sizeof(x));
    return x;
  }
  std::uint64_t u64() {
    std::uint64_t x = 0;
    take(&x, sizeof(x));
    return x;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || v.size() - at < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(v.data() + at), n);
    at += n;
    return s;
  }
};

}  // namespace

kv::Bytes encode_journal_record(const JournalRecord& rec) {
  kv::Bytes out;
  out.resize(sizeof(std::uint32_t));  // CRC placeholder, filled last
  put_u8(out, static_cast<std::uint8_t>(rec.op));
  put_u32(out, static_cast<std::uint32_t>(rec.type));
  put_u64(out, rec.ino);
  put_u64(out, rec.parent);
  put_u64(out, rec.new_parent);
  put_u64(out, rec.replaced_ino);
  put_u32(out, rec.nlink_before);
  put_u8(out, rec.big_file);
  put_u8(out, rec.replaced_big);
  put_str(out, rec.name);
  put_str(out, rec.name2);
  put_u32(out, static_cast<std::uint32_t>(rec.blocks.size()));
  for (const std::uint64_t b : rec.blocks) put_u64(out, b);
  const std::uint32_t crc = ec::crc32c(
      std::span<const std::byte>(out).subspan(sizeof(std::uint32_t)));
  std::memcpy(out.data(), &crc, sizeof(crc));
  return out;
}

std::optional<JournalRecord> decode_journal_record(const kv::Bytes& v) {
  if (v.size() < sizeof(std::uint32_t)) return std::nullopt;
  std::uint32_t stored = 0;
  std::memcpy(&stored, v.data(), sizeof(stored));
  const std::uint32_t actual = ec::crc32c(
      std::span<const std::byte>(v).subspan(sizeof(std::uint32_t)));
  if (stored != actual) return std::nullopt;

  Reader r{v, sizeof(std::uint32_t)};
  JournalRecord rec;
  rec.op = static_cast<JournalOp>(r.u8());
  rec.type = static_cast<FileType>(r.u32());
  rec.ino = r.u64();
  rec.parent = r.u64();
  rec.new_parent = r.u64();
  rec.replaced_ino = r.u64();
  rec.nlink_before = r.u32();
  rec.big_file = r.u8();
  rec.replaced_big = r.u8();
  rec.name = r.str();
  rec.name2 = r.str();
  const std::uint32_t n = r.u32();
  if (r.ok && n <= (v.size() - r.at) / sizeof(std::uint64_t)) {
    rec.blocks.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) rec.blocks.push_back(r.u64());
  } else {
    r.ok = false;
  }
  if (!r.ok || r.at != v.size()) return std::nullopt;
  if (rec.op < JournalOp::kCreate || rec.op > JournalOp::kExtent)
    return std::nullopt;
  return rec;
}

IntentJournal::IntentJournal(kv::RemoteKv& store, obs::Registry& registry,
                             fault::FaultInjector* fault)
    : store_(&store),
      fault_(fault),
      appends_(registry.counter("kvfs.journal/appends")),
      commits_(registry.counter("kvfs.journal/commits")),
      append_fails_(registry.counter("kvfs.journal/append_fails")),
      commit_fails_(registry.counter("kvfs.journal/commit_fails")),
      wal_appends_(registry.counter("kvfs.journal/wal_appends")) {}

std::uint64_t IntentJournal::begin(const JournalRecord& rec,
                                   sim::Nanos& cost) {
  // Record ids share the ino counter: one increment primitive, globally
  // unique across mounts, no extra persistent key. A failed allocation or
  // append aborts the op before it mutates anything.
  const auto id = store_->increment(ino_counter_key(), 1);
  cost += id.cost;
  if (!id.ok()) {
    append_fails_.add();
    return 0;
  }
  const kv::Bytes payload = encode_journal_record(rec);
  if (wal_ != nullptr && !wal_->degraded()) {
    // Ride the NVM durability spine: one local persist instead of a remote
    // KV round trip. A full/faulting log falls through to the KV path — the
    // record must be durable *somewhere* before the op's first mutation.
    if (wal_->append_intent(id.value, payload, cost) ==
        nvm::AppendStatus::kOk) {
      appends_.add();
      wal_appends_.add();
      fault::crash_point(fault_, kCrashAfterAppend);
      return id.value;
    }
  }
  const auto put = store_->put(journal_key(id.value), payload);
  cost += put.cost;
  if (!put.ok()) {
    append_fails_.add();
    return 0;
  }
  appends_.add();
  fault::crash_point(fault_, kCrashAfterAppend);
  return id.value;
}

void IntentJournal::commit(std::uint64_t record_id, sim::Nanos& cost) {
  if (wal_ != nullptr && wal_->intent_open(record_id)) {
    // The intent rode the WAL; its commit marker must land in the same log
    // (a KV erase would target a key that was never written). A failed
    // marker is tolerated exactly like a failed KV erase: the intent stays
    // open, replay re-probes the complete op and finds nothing to do.
    if (wal_->append_intent_commit(record_id, cost) == nvm::AppendStatus::kOk) {
      commits_.add();
    } else {
      commit_fails_.add();
    }
    return;
  }
  const auto er = store_->erase(journal_key(record_id));
  cost += er.cost;
  if (er.ok()) {
    commits_.add();
  } else {
    // Tolerated: the record stays behind and replay re-probes the (now
    // complete) op, finding nothing left to do.
    commit_fails_.add();
  }
}

// ---------------------------------------------------------------- replay

namespace {

/// Replay-side raw-store access: recovery runs below the fault injector, so
/// probes and fixes hit the store directly but still charge modelled remote
/// round trips (the replay cost the recovery histogram reports).
struct Raw {
  kv::KvStore& kv;
  sim::Nanos cost{};

  std::optional<kv::Bytes> get(const std::string& key) {
    auto v = kv.get(key);
    cost += kv::RemoteKv::op_cost(true, v ? v->size() : 0);
    return v;
  }
  bool contains(const std::string& key) {
    cost += kv::RemoteKv::op_cost(true, 0);
    return kv.contains(key);
  }
  void put(const std::string& key, std::span<const std::byte> v) {
    cost += kv::RemoteKv::op_cost(false, v.size());
    kv.put(key, v);
  }
  void erase(const std::string& key) {
    cost += kv::RemoteKv::op_cost(false, 0);
    kv.erase(key);
  }
};

/// Drops every data KV an inode may own (small value, extent object and its
/// blocks). Used when replay must finish a half-done delete.
void purge_data(Raw& raw, Ino ino) {
  raw.erase(small_key(ino));
  if (const auto obj = raw.get(big_object_key(ino))) {
    const FileObject fo = decode_file_object(*obj);
    for (const std::uint64_t b : fo.blocks)
      if (b != 0) raw.erase(block_key(b));
    raw.erase(big_object_key(ino));
  }
}

/// True if `key` is a dentry that still resolves to `ino`.
bool dentry_is(Raw& raw, const std::string& key, Ino ino) {
  const auto v = raw.get(key);
  return v && v->size() == sizeof(Ino) && decode_ino(*v) == ino;
}

/// Roll one decoded record forward or backward. Returns true when the op was
/// completed (forward), false when undone (backward). Every path is
/// idempotent: replaying the same record twice is a no-op the second time.
bool replay_one(Raw& raw, const JournalRecord& rec) {
  switch (rec.op) {
    case JournalOp::kCreate: {
      // Mutation order was dentry → attr → (symlink target) → parent attr.
      const std::string dkey = inode_key(rec.parent, rec.name);
      if (!dentry_is(raw, dkey, rec.ino)) {
        // Never linked in (or the name belongs to someone else, meaning the
        // op lost an EEXIST race): scrub anything written for this ino.
        raw.erase(attr_key(rec.ino));
        raw.erase(small_key(rec.ino));
        return false;
      }
      const auto av = raw.get(attr_key(rec.ino));
      if (!av) {
        // Linked but attributeless — the dangerous half-state fsck flags as
        // a dangling dentry. Undo the link.
        raw.erase(dkey);
        raw.erase(small_key(rec.ino));
        return false;
      }
      // Node fully exists: finish the tail the crash may have cut off.
      Attr a = decode_attr(*av);
      if (rec.type == FileType::kSymlink) {
        const kv::Bytes target = kv::to_bytes(rec.name2);
        raw.put(small_key(rec.ino), target);
        if (a.size != target.size()) {
          a.size = target.size();
          raw.put(attr_key(rec.ino), encode_attr(a));
        }
      }
      // Parent nlink/mtime normalization is fsck_repair's job (it recomputes
      // link counts globally, which one record cannot).
      return true;
    }

    case JournalOp::kRemove: {
      // Mutation order was dentry erase → attr update/purge → parent attr.
      const std::string dkey = inode_key(rec.parent, rec.name);
      if (dentry_is(raw, dkey, rec.ino)) return false;  // never started
      if (rec.type != FileType::kDirectory && rec.nlink_before > 1) {
        // Hard link removal: only the link count drops.
        if (const auto av = raw.get(attr_key(rec.ino))) {
          Attr a = decode_attr(*av);
          if (a.nlink == rec.nlink_before) {
            a.nlink = rec.nlink_before - 1;
            raw.put(attr_key(rec.ino), encode_attr(a));
          }
        }
      } else {
        purge_data(raw, rec.ino);
        raw.erase(attr_key(rec.ino));
      }
      return true;
    }

    case JournalOp::kRename: {
      // Always forward: the destination purge may already be half done, so
      // the old world is unrecoverable — completing the move is the only
      // consistent end state.
      if (rec.replaced_ino != 0) {
        purge_data(raw, rec.replaced_ino);
        raw.erase(attr_key(rec.replaced_ino));
      }
      const std::string src = inode_key(rec.parent, rec.name);
      const std::string dst = inode_key(rec.new_parent, rec.name2);
      const kv::Bytes ino_v = encode_ino(rec.ino);
      raw.put(dst, ino_v);
      if (src != dst && dentry_is(raw, src, rec.ino)) raw.erase(src);
      return true;
    }

    case JournalOp::kPromote: {
      // Mutation order was block data → object put → small erase → flag set.
      // The object put is the commit point: present means the extent index
      // took over, absent means the small value is still authoritative.
      if (raw.contains(big_object_key(rec.ino))) {
        raw.erase(small_key(rec.ino));
        if (const auto av = raw.get(attr_key(rec.ino))) {
          Attr a = decode_attr(*av);
          if (a.big_file == 0) {
            a.big_file = 1;
            raw.put(attr_key(rec.ino), encode_attr(a));
          }
        }
        return true;
      }
      for (const std::uint64_t b : rec.blocks)
        if (b != 0) raw.erase(block_key(b));
      return false;
    }

    case JournalOp::kExtent: {
      // Pre-allocated block ids for one big-file write. The object put is
      // again the commit point; an object referencing the new ids means the
      // write landed, otherwise the ids are orphan blocks to reclaim.
      bool referenced = false;
      if (const auto ov = raw.get(big_object_key(rec.ino))) {
        const FileObject fo = decode_file_object(*ov);
        for (const std::uint64_t want : rec.blocks) {
          for (const std::uint64_t have : fo.blocks) {
            if (want != 0 && want == have) {
              referenced = true;
              break;
            }
          }
          if (referenced) break;
        }
      }
      if (referenced) return true;
      for (const std::uint64_t b : rec.blocks)
        if (b != 0) raw.erase(block_key(b));
      return false;
    }
  }
  return false;
}

}  // namespace

bool replay_intent_record(kv::KvStore& raw_store, const JournalRecord& rec,
                          sim::Nanos& cost) {
  Raw raw{raw_store};
  const bool forward = replay_one(raw, rec);
  cost += raw.cost;
  return forward;
}

JournalReplayReport IntentJournal::replay(kv::KvStore& raw_store,
                                          obs::Registry* registry,
                                          fault::FaultInjector* fault) {
  JournalReplayReport rep;
  Raw raw{raw_store};

  // Snapshot the record set first: replay mutates the store, and scan_prefix
  // holds shard locks during the visit.
  std::vector<std::pair<std::string, kv::Bytes>> records;
  raw_store.scan_prefix(
      journal_key_prefix(),
      [&](std::string_view key, const kv::Bytes& value) {
        records.emplace_back(std::string(key), value);
        raw.cost += kv::RemoteKv::op_cost(true, value.size());
        return true;
      });

  for (const auto& [key, value] : records) {
    ++rep.scanned;
    const auto rec = decode_journal_record(value);
    if (!rec) {
      ++rep.corrupt;
    } else if (replay_one(raw, *rec)) {
      ++rep.rolled_forward;
    } else {
      ++rep.rolled_back;
    }
    // Crash window between applying a record and erasing it: the second
    // replay re-scans this record and replay_one converges (idempotent).
    fault::crash_point(fault, kCrashMidReplay);
    raw.erase(key);
  }
  rep.cost = raw.cost;

  if (registry != nullptr && rep.scanned > 0) {
    // Recovery path — runs once per DPU restart, not per op.
    // dpc-lint: ok(hot-path-lookup) recovery-only
    registry->counter("kvfs.journal/replays").add(rep.rolled_forward);
    // dpc-lint: ok(hot-path-lookup) recovery-only
    registry->counter("kvfs.journal/rollbacks").add(rep.rolled_back);
    // dpc-lint: ok(hot-path-lookup) recovery-only
    registry->counter("kvfs.journal/corrupt").add(rep.corrupt);
  }
  return rep;
}

}  // namespace dpc::kvfs
