// KVFS — the POSIX-style standalone file service DPC runs on the DPU
// (§3.4). Converts file operations into operations on the disaggregated KV
// store, replacing the local-disk file system of an application server.
//
// Layout rules (paper):
//   * path resolution walks inode KVs from root inode 0 by p_ino + name;
//   * files ≤ 8 KB live in a small-file KV rewritten whole on update;
//   * larger files promote to a big-file KV: an extent-indexed file object
//     whose 8 KB blocks are updated in place;
//   * directory listing is a prefix scan over the parent's inode-KV prefix;
//   * an inode (attribute) cache and dentry cache accelerate lookups.
//
// Thread safety: operations take a striped per-inode lock; name-space
// operations (create/unlink/rename/...) additionally serialize on the
// parent directory's stripe. Errors are positive errno values.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/thread_annotations.hpp"

#include "fault/injector.hpp"
#include "kv/remote.hpp"
#include "kvfs/fsck.hpp"
#include "kvfs/journal.hpp"
#include "kvfs/types.hpp"
#include "nvme/spec.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace dpc::dpu {
class QosManager;
}

namespace dpc::nvm {
class WriteAheadLog;
}  // namespace dpc::nvm

namespace dpc::kvfs {

/// Outcome of a KVFS operation: errno (0 = ok), the value, and the modelled
/// backend cost the op accumulated (remote KV round trips).
template <typename T>
struct Result {
  int err = 0;
  T value{};
  sim::Nanos cost{};

  bool ok() const { return err == 0; }
};

struct Unit {};

struct KvfsOptions {
  bool enable_caches = true;  ///< dentry + inode(attr) caches
  std::size_t dentry_cache_entries = 8192;
  std::size_t attr_cache_entries = 8192;
  /// Write-ahead intent journaling for multi-KV mutations (crash
  /// consistency; see journal.hpp). On by default: every create/remove/
  /// rename/promote/extent-update logs an intent record first, and mount
  /// replays survivors. `truncate` and `link` are NOT journaled (documented
  /// limitation) — fsck repair normalizes what they can tear.
  bool journal = true;
  /// Crash-point injector for the DPU-side mutation paths (null = no crash
  /// points, zero overhead).
  fault::FaultInjector* fault = nullptr;
  /// NVM write-ahead log (nvm/wal.hpp): when set, intent records ride the
  /// log instead of per-record KV puts, shrinking truncates append
  /// superseding markers, and recover() replays the log (acked-but-undrained
  /// pages + uncommitted intents) before the KV-side journal replay. Null =
  /// pre-WAL behavior, bit-identical.
  nvm::WriteAheadLog* wal = nullptr;
};

/// KVFS counters, registry-backed ("kvfs/…") so cache hit rates and the
/// small/big write split show up in metrics JSON snapshots.
struct KvfsStats {
  explicit KvfsStats(obs::Registry& reg)
      : dentry_hits(reg.counter("kvfs/dentry_hits")),
        dentry_misses(reg.counter("kvfs/dentry_misses")),
        attr_hits(reg.counter("kvfs/attr_hits")),
        attr_misses(reg.counter("kvfs/attr_misses")),
        small_rewrites(reg.counter("kvfs/small_rewrites")),
        big_inplace_writes(reg.counter("kvfs/big_inplace_writes")),
        promotions(reg.counter("kvfs/promotions")) {}

  obs::Counter& dentry_hits;
  obs::Counter& dentry_misses;
  obs::Counter& attr_hits;
  obs::Counter& attr_misses;
  obs::Counter& small_rewrites;
  obs::Counter& big_inplace_writes;
  obs::Counter& promotions;
};

class Kvfs {
 public:
  /// `registry` hosts the KVFS counters; when null a private registry is
  /// created (standalone/unit-test construction).
  explicit Kvfs(kv::RemoteKv& store, const KvfsOptions& opts = {},
                obs::Registry* registry = nullptr);

  // ------------------------------------------------------------ namespace
  Result<Ino> create(Ino parent, std::string_view name, std::uint32_t mode);
  Result<Ino> mkdir(Ino parent, std::string_view name, std::uint32_t mode);
  Result<Ino> lookup(Ino parent, std::string_view name);
  /// Resolves an absolute path ("/a/b/c") from the root inode, following
  /// symlinks (bounded at kMaxSymlinkFollows).
  Result<Ino> resolve(std::string_view path);
  static constexpr int kMaxSymlinkFollows = 40;
  Result<Unit> unlink(Ino parent, std::string_view name);
  Result<Unit> rmdir(Ino parent, std::string_view name);
  Result<Unit> rename(Ino old_parent, std::string_view old_name,
                      Ino new_parent, std::string_view new_name);
  /// Hard link: a second inode-KV entry naming the same regular file.
  Result<Unit> link(Ino ino, Ino new_parent, std::string_view name);
  /// Symbolic link holding `target` (absolute or relative path text).
  Result<Ino> symlink(std::string_view target, Ino parent,
                      std::string_view name);
  Result<std::string> readlink(Ino ino);
  Result<std::vector<DirEntry>> readdir(Ino dir);

  // ------------------------------------------------------------ attributes
  Result<Attr> getattr(Ino ino);
  Result<Unit> chmod(Ino ino, std::uint32_t mode);
  Result<Unit> chown(Ino ino, std::uint32_t uid, std::uint32_t gid);

  // ------------------------------------------------------------------ data
  /// Returns bytes read (short reads at EOF; holes read as zeros).
  /// `tenant` attributes the backend bytes to a QoS tenant when a manager
  /// is attached (tenant 0 = unattributed default).
  Result<std::uint32_t> read(Ino ino, std::uint64_t offset,
                             std::span<std::byte> dst,
                             nvme::TenantId tenant = 0);
  /// Returns bytes written (always all of src on success).
  Result<std::uint32_t> write(Ino ino, std::uint64_t offset,
                              std::span<const std::byte> src,
                              nvme::TenantId tenant = 0);
  Result<Unit> truncate(Ino ino, std::uint64_t new_size);
  Result<Unit> fsync(Ino ino);

  /// Filesystem-wide usage summary (scans the keyspace).
  struct StatFs {
    std::uint64_t inodes = 0;
    std::uint64_t data_bytes = 0;
    std::uint64_t kv_count = 0;
  };
  Result<StatFs> statfs();

  // ------------------------------------------------------------- recovery
  /// Outcome of replaying the NVM write-ahead log: the data pages and
  /// intent records that were acked at NVM persistence but not yet drained
  /// to the KV path when the crash hit.
  struct WalReplayReport {
    std::uint64_t scanned = 0;  ///< commit-verified records in the log
    std::uint64_t applied = 0;  ///< pages re-written / intents rolled
    std::uint64_t skipped = 0;  ///< superseded (drained/committed/truncated)
    std::uint64_t corrupt = 0;  ///< frames dropped by CRC (rot in log)
    bool torn_tail = false;     ///< log ended in an unacked torn append
    sim::Nanos cost{};
  };

  /// Outcome of a full recovery pass (DPU restart / explicit fsck-repair).
  struct RecoveryReport {
    WalReplayReport wal;          ///< NVM log replay (when opts.wal set)
    JournalReplayReport journal;  ///< intent-log replay
    FsckRepairReport fsck;        ///< backstop repair pass
    sim::Nanos cost{};

    bool clean() const { return fsck.clean; }
  };

  /// Full recovery: drops volatile caches, replays the NVM write-ahead log
  /// (acked fsync data + intents riding the spine), then the KV-side intent
  /// journal (degraded-mode and peer records), then runs repairing fsck as
  /// the backstop. Call with no concurrent mutating traffic — the DPU
  /// restart path quiesces the queues first. Idempotent: a crash during
  /// replay (kCrashWalMidReplay / kCrashMidReplay) leaves a state a second
  /// recover() converges from.
  RecoveryReport recover();

  /// What mount-time journal replay found (every ctor replays when
  /// journaling is enabled — a crashed peer's records roll on our mount).
  const JournalReplayReport& mount_replay() const { return mount_replay_; }

  const KvfsStats& stats() const { return stats_; }
  void drop_caches();

  /// Attaches the DPU QoS manager so data-path backend bytes are scoped to
  /// the issuing tenant ("qos/t<i>/backend_bytes"). Null detaches. Set
  /// during system wiring, before traffic.
  void attach_qos(dpu::QosManager* qos) { qos_ = qos; }

 private:
  Result<std::uint32_t> read_impl(Ino ino, std::uint64_t offset,
                                  std::span<std::byte> dst);
  Result<std::uint32_t> write_impl(Ino ino, std::uint64_t offset,
                                   std::span<const std::byte> src);

  // ---- KV helpers (each adds its remote cost to `cost`) ----
  std::optional<Attr> load_attr(Ino ino, sim::Nanos& cost);
  void store_attr(const Attr& a, sim::Nanos& cost);
  std::optional<Ino> load_dentry(Ino parent, std::string_view name,
                                 sim::Nanos& cost);
  Ino alloc_ino(sim::Nanos& cost);
  std::uint64_t alloc_block(sim::Nanos& cost);
  std::uint64_t now();

  /// `symlink_target` (symlinks only) rides in the intent record and the
  /// small-file KV, making symlink creation one journaled atom.
  Result<Ino> make_node(Ino parent, std::string_view name, FileType type,
                        std::uint32_t mode, std::string_view symlink_target);
  Result<Unit> remove_node(Ino parent, std::string_view name, bool dir);
  /// Deletes all data KVs of a regular file.
  void purge_data(const Attr& a, sim::Nanos& cost);
  /// Replays the NVM write-ahead log (recover() step 1; opts_.wal != null).
  WalReplayReport replay_wal();
  /// Moves a small file's bytes into a big-file object (§3.4 promotion).
  /// Returns false if a transient KV failure aborted the promotion before
  /// the big object existed (the small KV is still authoritative). On
  /// success `journal_rec` holds the open kPromote record id (0 when
  /// journaling is off); the caller commits it after storing the attr with
  /// big_file set, so replay can finish the flag flip.
  bool promote_to_big(Attr& a, sim::Nanos& cost, std::uint64_t& journal_rec);
  bool dir_empty(Ino dir, sim::Nanos& cost);

  // ---- caches ----
  void cache_dentry(Ino parent, std::string_view name, Ino ino);
  void uncache_dentry(Ino parent, std::string_view name);
  std::optional<Ino> cached_dentry(Ino parent, std::string_view name);
  void cache_attr(const Attr& a);
  void uncache_attr(Ino ino);
  std::optional<Attr> cached_attr(Ino ino);

  // ---- locking ----
  sim::AnnotatedMutex& inode_lock(Ino ino);
  /// Locks two stripes in address order (no deadlock on rename).
  struct DualLock;

  kv::RemoteKv* store_;
  KvfsOptions opts_;
  std::unique_ptr<obs::Registry> owned_registry_;  // when none was supplied
  obs::Registry* registry_;                        // whichever is active
  KvfsStats stats_;
  dpu::QosManager* qos_ = nullptr;  ///< per-tenant byte attribution
  std::unique_ptr<IntentJournal> journal_;  // null when opts_.journal off
  JournalReplayReport mount_replay_;

  std::atomic<std::uint64_t> logical_time_{1};

  static constexpr std::size_t kLockStripes = 64;
  /// Wrapper so the annotated mutex (no default ctor) can live in an array.
  struct Stripe {
    sim::AnnotatedMutex mu{"kvfs.stripe", sim::LockRank::kShard};
  };
  std::array<Stripe, kLockStripes> stripes_;

  /// Per-core sharded metadata caches: each shard owns its slice of the
  /// dentry map (key = inode_key) and the attr map under its own shared
  /// mutex (leaf rank: taken under a stripe on every cached lookup, never
  /// holds anything itself). Cache-line aligned so hot shard locks on
  /// neighbouring shards never false-share. Capacity caps and wholesale
  /// drops apply per shard.
  struct alignas(64) CacheShard {
    mutable sim::AnnotatedSharedMutex mu{"kvfs.cache", sim::LockRank::kLeaf};
    std::unordered_map<std::string, Ino> dentry GUARDED_BY(mu);
    std::unordered_map<Ino, Attr> attr GUARDED_BY(mu);
  };
  CacheShard& dentry_shard(Ino parent, std::string_view name);
  CacheShard& attr_shard(Ino ino);
  std::size_t cache_shard_cap(std::size_t total_entries) const;

  std::vector<CacheShard> cache_shards_;
  std::size_t cache_shard_mask_ = 0;  ///< size - 1 (power-of-two count)
};

}  // namespace dpc::kvfs
