#include "kvfs/fsck.hpp"

#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "sim/check.hpp"

namespace dpc::kvfs {

const char* to_string(FsckIssueKind k) {
  switch (k) {
    case FsckIssueKind::kDanglingDentry:
      return "dangling-dentry";
    case FsckIssueKind::kUnreachableInode:
      return "unreachable-inode";
    case FsckIssueKind::kMissingSmallData:
      return "missing-small-data";
    case FsckIssueKind::kMissingObject:
      return "missing-object";
    case FsckIssueKind::kMissingBlock:
      return "missing-block";
    case FsckIssueKind::kOrphanData:
      return "orphan-data";
    case FsckIssueKind::kOrphanBlock:
      return "orphan-block";
    case FsckIssueKind::kBadSmallSize:
      return "bad-small-size";
    case FsckIssueKind::kConflictingData:
      return "conflicting-data";
    case FsckIssueKind::kDirectoryHasData:
      return "directory-has-data";
    case FsckIssueKind::kBadLinkCount:
      return "bad-link-count";
    case FsckIssueKind::kBadSymlink:
      return "bad-symlink";
  }
  return "?";
}

std::size_t FsckReport::count(FsckIssueKind k) const {
  std::size_t n = 0;
  for (const auto& i : issues) n += i.kind == k ? 1 : 0;
  return n;
}

FsckReport fsck(const kv::KvStore& store) {
  FsckReport report;
  auto add = [&](FsckIssueKind kind, Ino ino, std::string detail) {
    report.issues.push_back({kind, ino, std::move(detail)});
  };

  // ---- gather the keyspace by flavor ----
  std::map<Ino, Attr> attrs;
  struct Dentry {
    Ino parent;
    std::string name;
    Ino ino;
  };
  std::vector<Dentry> dentries;
  std::map<Ino, std::uint64_t> small_sizes;
  std::map<Ino, FileObject> objects;
  std::map<std::uint64_t, std::uint64_t> block_sizes;  // id -> bytes

  store.scan_prefix("A", [&](std::string_view key, const kv::Bytes& v) {
    attrs.emplace(id_of_tagged_key(key), decode_attr(v));
    return true;
  });
  store.scan_prefix("D", [&](std::string_view key, const kv::Bytes& v) {
    dentries.push_back({parent_of_inode_key(key),
                        std::string(name_of_inode_key(key)), decode_ino(v)});
    return true;
  });
  store.scan_prefix("S", [&](std::string_view key, const kv::Bytes& v) {
    small_sizes.emplace(id_of_tagged_key(key), v.size());
    return true;
  });
  store.scan_prefix("O", [&](std::string_view key, const kv::Bytes& v) {
    objects.emplace(id_of_tagged_key(key), decode_file_object(v));
    return true;
  });
  store.scan_prefix("B", [&](std::string_view key, const kv::Bytes& v) {
    block_sizes.emplace(id_of_tagged_key(key), v.size());
    return true;
  });

  report.inodes = attrs.size();
  report.blocks = block_sizes.size();

  // ---- dentry → attribute ----
  std::map<Ino, std::vector<const Dentry*>> children;
  std::map<Ino, std::uint32_t> subdir_count;
  std::map<Ino, std::uint32_t> ref_count;
  for (const auto& d : dentries) {
    if (!attrs.contains(d.ino)) {
      add(FsckIssueKind::kDanglingDentry, d.ino,
          "entry '" + d.name + "' in dir " + std::to_string(d.parent) +
              " names a missing inode");
      continue;
    }
    children[d.parent].push_back(&d);
    ++ref_count[d.ino];
    if (attrs.at(d.ino).type == FileType::kDirectory)
      ++subdir_count[d.parent];
  }

  // ---- reachability from the root ----
  std::set<Ino> reachable{kRootIno};
  std::deque<Ino> frontier{kRootIno};
  while (!frontier.empty()) {
    const Ino dir = frontier.front();
    frontier.pop_front();
    const auto it = children.find(dir);
    if (it == children.end()) continue;
    for (const Dentry* d : it->second) {
      if (!reachable.insert(d->ino).second) continue;
      if (attrs.contains(d->ino) &&
          attrs.at(d->ino).type == FileType::kDirectory)
        frontier.push_back(d->ino);
    }
  }
  for (const auto& [ino, attr] : attrs) {
    if (!reachable.contains(ino)) {
      add(FsckIssueKind::kUnreachableInode, ino,
          attr.type == FileType::kDirectory ? "orphan directory"
                                            : "orphan file");
    }
  }

  // ---- per-inode data invariants ----
  std::set<std::uint64_t> referenced_blocks;
  for (const auto& [ino, attr] : attrs) {
    const bool has_small = small_sizes.contains(ino);
    const bool has_object = objects.contains(ino);
    if (attr.type == FileType::kDirectory) {
      ++report.directories;
      if (has_small || has_object)
        add(FsckIssueKind::kDirectoryHasData, ino, "data KVs on a directory");
      const std::uint32_t expect =
          2 + (subdir_count.contains(ino) ? subdir_count.at(ino) : 0);
      if (attr.nlink != expect) {
        std::ostringstream os;
        os << "nlink " << attr.nlink << ", expected " << expect;
        add(FsckIssueKind::kBadLinkCount, ino, os.str());
      }
      continue;
    }
    if (attr.type == FileType::kSymlink) {
      ++report.symlinks;
      const auto it = small_sizes.find(ino);
      if (it == small_sizes.end() || it->second != attr.size ||
          attr.size == 0) {
        add(FsckIssueKind::kBadSymlink, ino,
            "symlink target data missing or size mismatch");
      }
      if (has_object)
        add(FsckIssueKind::kConflictingData, ino,
            "file object attached to a symlink");
      const std::uint32_t lrefs =
          ref_count.contains(ino) ? ref_count.at(ino) : 0;
      if (attr.nlink != lrefs) {
        std::ostringstream os;
        os << "symlink nlink " << attr.nlink << ", " << lrefs << " entries";
        add(FsckIssueKind::kBadLinkCount, ino, os.str());
      }
      continue;
    }
    ++report.regular_files;
    report.data_bytes += attr.size;
    const std::uint32_t refs =
        ref_count.contains(ino) ? ref_count.at(ino) : 0;
    if (attr.nlink != refs) {
      std::ostringstream os;
      os << "file nlink " << attr.nlink << ", " << refs
         << " directory entries reference it";
      add(FsckIssueKind::kBadLinkCount, ino, os.str());
    }
    if (has_small && has_object)
      add(FsckIssueKind::kConflictingData, ino,
          "both small-file KV and big-file object present");
    else if (has_object && !attr.big_file)
      add(FsckIssueKind::kConflictingData, ino,
          "file object present but big_file flag clear");
    else if (has_small && attr.big_file)
      add(FsckIssueKind::kConflictingData, ino,
          "small-file KV present but big_file flag set");
    if (attr.big_file) {
      ++report.big_files;
      if (!has_object) {
        add(FsckIssueKind::kMissingObject, ino,
            "big_file set but no file object");
        continue;
      }
      for (const std::uint64_t id : objects.at(ino).blocks) {
        if (id == 0) continue;  // hole
        referenced_blocks.insert(id);
        if (!block_sizes.contains(id)) {
          add(FsckIssueKind::kMissingBlock, ino,
              "block " + std::to_string(id) + " referenced but absent");
        }
      }
    } else {
      ++report.small_files;
      if (attr.size > kSmallFileMax) {
        add(FsckIssueKind::kBadSmallSize, ino,
            "small file of " + std::to_string(attr.size) + " bytes");
      }
      if (attr.size > 0 && !has_small) {
        // Legal for fully-sparse files, but worth surfacing.
        add(FsckIssueKind::kMissingSmallData, ino,
            "non-empty small file without a data KV (sparse?)");
      }
    }
  }

  // ---- orphans ----
  for (const auto& [ino, bytes] : small_sizes) {
    (void)bytes;
    if (!attrs.contains(ino))
      add(FsckIssueKind::kOrphanData, ino, "small-file KV without attribute");
  }
  for (const auto& [ino, obj] : objects) {
    (void)obj;
    if (!attrs.contains(ino))
      add(FsckIssueKind::kOrphanData, ino, "file object without attribute");
    else
      // Blocks of attribute-less objects stay unreferenced → reported below.
      (void)0;
  }
  for (const auto& [id, bytes] : block_sizes) {
    (void)bytes;
    if (!referenced_blocks.contains(id))
      add(FsckIssueKind::kOrphanBlock, id,
          "block KV no reachable file object references");
  }

  return report;
}

}  // namespace dpc::kvfs
