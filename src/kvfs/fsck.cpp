#include "kvfs/fsck.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "kv/remote.hpp"
#include "sim/check.hpp"

namespace dpc::kvfs {

const char* to_string(FsckIssueKind k) {
  switch (k) {
    case FsckIssueKind::kDanglingDentry:
      return "dangling-dentry";
    case FsckIssueKind::kUnreachableInode:
      return "unreachable-inode";
    case FsckIssueKind::kMissingSmallData:
      return "missing-small-data";
    case FsckIssueKind::kMissingObject:
      return "missing-object";
    case FsckIssueKind::kMissingBlock:
      return "missing-block";
    case FsckIssueKind::kOrphanData:
      return "orphan-data";
    case FsckIssueKind::kOrphanBlock:
      return "orphan-block";
    case FsckIssueKind::kBadSmallSize:
      return "bad-small-size";
    case FsckIssueKind::kConflictingData:
      return "conflicting-data";
    case FsckIssueKind::kDirectoryHasData:
      return "directory-has-data";
    case FsckIssueKind::kBadLinkCount:
      return "bad-link-count";
    case FsckIssueKind::kBadSymlink:
      return "bad-symlink";
  }
  return "?";
}

std::size_t FsckReport::count(FsckIssueKind k) const {
  std::size_t n = 0;
  for (const auto& i : issues) n += i.kind == k ? 1 : 0;
  return n;
}

FsckReport fsck(const kv::KvStore& store) {
  FsckReport report;
  auto add = [&](FsckIssueKind kind, Ino ino,
                 std::string detail) -> FsckIssue& {
    FsckIssue is;
    is.kind = kind;
    is.ino = ino;
    is.detail = std::move(detail);
    report.issues.push_back(std::move(is));
    return report.issues.back();
  };

  // ---- gather the keyspace by flavor ----
  std::map<Ino, Attr> attrs;
  struct Dentry {
    Ino parent;
    std::string name;
    Ino ino;
  };
  std::vector<Dentry> dentries;
  std::map<Ino, std::uint64_t> small_sizes;
  std::map<Ino, FileObject> objects;
  std::map<std::uint64_t, std::uint64_t> block_sizes;  // id -> bytes

  store.scan_prefix("A", [&](std::string_view key, const kv::Bytes& v) {
    attrs.emplace(id_of_tagged_key(key), decode_attr(v));
    return true;
  });
  store.scan_prefix("D", [&](std::string_view key, const kv::Bytes& v) {
    dentries.push_back({parent_of_inode_key(key),
                        std::string(name_of_inode_key(key)), decode_ino(v)});
    return true;
  });
  store.scan_prefix("S", [&](std::string_view key, const kv::Bytes& v) {
    small_sizes.emplace(id_of_tagged_key(key), v.size());
    return true;
  });
  store.scan_prefix("O", [&](std::string_view key, const kv::Bytes& v) {
    objects.emplace(id_of_tagged_key(key), decode_file_object(v));
    return true;
  });
  store.scan_prefix("B", [&](std::string_view key, const kv::Bytes& v) {
    block_sizes.emplace(id_of_tagged_key(key), v.size());
    return true;
  });

  report.inodes = attrs.size();
  report.blocks = block_sizes.size();

  // ---- dentry → attribute ----
  std::map<Ino, std::vector<const Dentry*>> children;
  std::map<Ino, std::uint32_t> subdir_count;
  std::map<Ino, std::uint32_t> ref_count;
  for (const auto& d : dentries) {
    if (!attrs.contains(d.ino)) {
      FsckIssue& is = add(
          FsckIssueKind::kDanglingDentry, d.ino,
          "entry '" + d.name + "' in dir " + std::to_string(d.parent) +
              " names a missing inode");
      is.parent = d.parent;
      is.name = d.name;
      continue;
    }
    children[d.parent].push_back(&d);
    ++ref_count[d.ino];
    if (attrs.at(d.ino).type == FileType::kDirectory)
      ++subdir_count[d.parent];
  }

  // ---- reachability from the root ----
  std::set<Ino> reachable{kRootIno};
  std::deque<Ino> frontier{kRootIno};
  while (!frontier.empty()) {
    const Ino dir = frontier.front();
    frontier.pop_front();
    const auto it = children.find(dir);
    if (it == children.end()) continue;
    for (const Dentry* d : it->second) {
      if (!reachable.insert(d->ino).second) continue;
      if (attrs.contains(d->ino) &&
          attrs.at(d->ino).type == FileType::kDirectory)
        frontier.push_back(d->ino);
    }
  }
  for (const auto& [ino, attr] : attrs) {
    if (!reachable.contains(ino)) {
      add(FsckIssueKind::kUnreachableInode, ino,
          attr.type == FileType::kDirectory ? "orphan directory"
                                            : "orphan file");
    }
  }

  // ---- per-inode data invariants ----
  std::set<std::uint64_t> referenced_blocks;
  for (const auto& [ino, attr] : attrs) {
    const bool has_small = small_sizes.contains(ino);
    const bool has_object = objects.contains(ino);
    if (attr.type == FileType::kDirectory) {
      ++report.directories;
      if (has_small || has_object)
        add(FsckIssueKind::kDirectoryHasData, ino, "data KVs on a directory");
      const std::uint32_t expect =
          2 + (subdir_count.contains(ino) ? subdir_count.at(ino) : 0);
      if (attr.nlink != expect) {
        std::ostringstream os;
        os << "nlink " << attr.nlink << ", expected " << expect;
        add(FsckIssueKind::kBadLinkCount, ino, os.str()).aux = expect;
      }
      continue;
    }
    if (attr.type == FileType::kSymlink) {
      ++report.symlinks;
      const auto it = small_sizes.find(ino);
      if (it == small_sizes.end() || it->second != attr.size ||
          attr.size == 0) {
        add(FsckIssueKind::kBadSymlink, ino,
            "symlink target data missing or size mismatch");
      }
      if (has_object)
        add(FsckIssueKind::kConflictingData, ino,
            "file object attached to a symlink");
      const std::uint32_t lrefs =
          ref_count.contains(ino) ? ref_count.at(ino) : 0;
      if (attr.nlink != lrefs) {
        std::ostringstream os;
        os << "symlink nlink " << attr.nlink << ", " << lrefs << " entries";
        add(FsckIssueKind::kBadLinkCount, ino, os.str()).aux = lrefs;
      }
      continue;
    }
    ++report.regular_files;
    report.data_bytes += attr.size;
    const std::uint32_t refs =
        ref_count.contains(ino) ? ref_count.at(ino) : 0;
    if (attr.nlink != refs) {
      std::ostringstream os;
      os << "file nlink " << attr.nlink << ", " << refs
         << " directory entries reference it";
      add(FsckIssueKind::kBadLinkCount, ino, os.str()).aux = refs;
    }
    if (has_small && has_object)
      add(FsckIssueKind::kConflictingData, ino,
          "both small-file KV and big-file object present");
    else if (has_object && !attr.big_file)
      add(FsckIssueKind::kConflictingData, ino,
          "file object present but big_file flag clear");
    else if (has_small && attr.big_file)
      add(FsckIssueKind::kConflictingData, ino,
          "small-file KV present but big_file flag set");
    if (attr.big_file) {
      ++report.big_files;
      if (!has_object) {
        add(FsckIssueKind::kMissingObject, ino,
            "big_file set but no file object");
        continue;
      }
      for (const std::uint64_t id : objects.at(ino).blocks) {
        if (id == 0) continue;  // hole
        referenced_blocks.insert(id);
        if (!block_sizes.contains(id)) {
          add(FsckIssueKind::kMissingBlock, ino,
              "block " + std::to_string(id) + " referenced but absent")
              .aux = id;
        }
      }
    } else {
      ++report.small_files;
      if (attr.size > kSmallFileMax) {
        add(FsckIssueKind::kBadSmallSize, ino,
            "small file of " + std::to_string(attr.size) + " bytes");
      }
      if (attr.size > 0 && !has_small) {
        // Legal for fully-sparse files, but worth surfacing.
        add(FsckIssueKind::kMissingSmallData, ino,
            "non-empty small file without a data KV (sparse?)")
            .aux = attr.size;
      }
    }
  }

  // ---- orphans ----
  for (const auto& [ino, bytes] : small_sizes) {
    (void)bytes;
    if (!attrs.contains(ino))
      add(FsckIssueKind::kOrphanData, ino, "small-file KV without attribute");
  }
  for (const auto& [ino, obj] : objects) {
    (void)obj;
    if (!attrs.contains(ino))
      add(FsckIssueKind::kOrphanData, ino, "file object without attribute");
    else
      // Blocks of attribute-less objects stay unreferenced → reported below.
      (void)0;
  }
  for (const auto& [id, bytes] : block_sizes) {
    (void)bytes;
    if (!referenced_blocks.contains(id))
      add(FsckIssueKind::kOrphanBlock, id,
          "block KV no reachable file object references");
  }

  return report;
}

// ----------------------------------------------------------------- repair

namespace {

/// Repair-side store access: fixes charge modelled remote round trips even
/// though recovery talks to the raw store (below fault injection).
struct Fixer {
  kv::KvStore& kv;
  FsckRepairReport& rep;

  std::optional<Attr> attr(Ino ino) {
    rep.cost += kv::RemoteKv::op_cost(true, sizeof(Attr));
    const auto v = kv.get(attr_key(ino));
    if (!v) return std::nullopt;
    return decode_attr(*v);
  }
  void put_attr(const Attr& a) {
    rep.cost += kv::RemoteKv::op_cost(false, sizeof(Attr));
    kv.put(attr_key(a.ino), encode_attr(a));
    ++rep.repairs;
  }
  void erase(const std::string& key) {
    rep.cost += kv::RemoteKv::op_cost(false, 0);
    if (kv.erase(key)) ++rep.repairs;
  }
  /// Drops the object KV and every block it references.
  void erase_object(Ino ino) {
    rep.cost += kv::RemoteKv::op_cost(true, 0);
    const auto v = kv.get(big_object_key(ino));
    if (!v) return;
    for (const std::uint64_t b : decode_file_object(*v).blocks)
      if (b != 0) erase(block_key(b));
    erase(big_object_key(ino));
  }
};

/// Finds or creates /lost+found for reattaching orphan subtrees. Returns 0
/// when the name is taken by a non-directory (fix skipped; the operator
/// must intervene — never overwrite live data to make room).
Ino ensure_lost_found(Fixer& fx) {
  static constexpr std::string_view kName = "lost+found";
  fx.rep.cost += kv::RemoteKv::op_cost(true, 0);
  if (const auto v = fx.kv.get(inode_key(kRootIno, kName))) {
    const Ino ino = decode_ino(*v);
    const auto a = fx.attr(ino);
    return a && a->type == FileType::kDirectory ? ino : 0;
  }
  fx.rep.cost += kv::RemoteKv::op_cost(false, 0);
  const Ino ino = fx.kv.increment(ino_counter_key(), 1);
  Attr a;
  a.ino = ino;
  a.type = FileType::kDirectory;
  a.mode = 0700;
  a.nlink = 2;  // next pass recomputes against reattached subdirs
  fx.put_attr(a);
  fx.rep.cost += kv::RemoteKv::op_cost(false, 0);
  fx.kv.put(inode_key(kRootIno, kName), encode_ino(ino));
  ++fx.rep.repairs;
  return ino;
}

/// Applies the fix for one issue. Every fix re-probes the live keyspace
/// first: fixes earlier in the same pass may have already resolved (or
/// reshaped) the problem, and a stale fix must never touch a healthy inode.
void apply_fix(Fixer& fx, const FsckIssue& is,
               const std::set<Ino>& referenced) {
  kv::KvStore& kv = fx.kv;
  switch (is.kind) {
    case FsckIssueKind::kDanglingDentry: {
      const std::string key = inode_key(is.parent, is.name);
      fx.rep.cost += kv::RemoteKv::op_cost(true, 0);
      const auto v = kv.get(key);
      if (v && decode_ino(*v) == is.ino && !kv.contains(attr_key(is.ino)))
        fx.erase(key);
      return;
    }

    case FsckIssueKind::kUnreachableInode: {
      const auto a = fx.attr(is.ino);
      if (!a) return;
      // An unreachable inode some dentry still names sits inside an orphan
      // subtree: reattaching the subtree's *root* (which nothing names)
      // restores the whole tree, so leave the interior alone.
      if (referenced.contains(is.ino)) return;
      const bool empty_file = a->type == FileType::kRegular && a->size == 0 &&
                              !kv.contains(small_key(is.ino)) &&
                              !kv.contains(big_object_key(is.ino));
      if (empty_file) {
        fx.erase(attr_key(is.ino));
        return;
      }
      const Ino lf = ensure_lost_found(fx);
      if (lf == 0) return;
      fx.rep.cost += kv::RemoteKv::op_cost(false, 0);
      if (kv.put_if_absent(inode_key(lf, "ino" + std::to_string(is.ino)),
                           encode_ino(is.ino)))
        ++fx.rep.repairs;
      return;
    }

    case FsckIssueKind::kMissingSmallData: {
      auto a = fx.attr(is.ino);
      if (!a || a->big_file || a->size == 0 || kv.contains(small_key(is.ino)))
        return;
      // The bytes are unrecoverable; materialize the zeros reads already
      // return so the state is self-describing.
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(a->size, kSmallFileMax));
      const kv::Bytes zeros(n, std::byte{0});
      fx.rep.cost += kv::RemoteKv::op_cost(false, n);
      kv.put(small_key(is.ino), zeros);
      ++fx.rep.repairs;
      return;
    }

    case FsckIssueKind::kMissingObject: {
      auto a = fx.attr(is.ino);
      if (!a || !a->big_file || kv.contains(big_object_key(is.ino))) return;
      a->big_file = 0;
      a->size = 0;  // extent index gone: the data is unreachable anyway
      fx.put_attr(*a);
      return;
    }

    case FsckIssueKind::kMissingBlock: {
      fx.rep.cost += kv::RemoteKv::op_cost(true, 0);
      const auto v = kv.get(big_object_key(is.ino));
      if (!v || kv.contains(block_key(is.aux))) return;
      FileObject obj = decode_file_object(*v);
      bool changed = false;
      for (auto& b : obj.blocks) {
        if (b == is.aux) {
          b = 0;  // dead reference becomes a hole (reads as zeros)
          changed = true;
        }
      }
      if (!changed) return;
      fx.rep.cost += kv::RemoteKv::op_cost(false, v->size());
      kv.put(big_object_key(is.ino), encode_file_object(obj));
      ++fx.rep.repairs;
      return;
    }

    case FsckIssueKind::kOrphanData: {
      if (kv.contains(attr_key(is.ino))) return;
      fx.erase(small_key(is.ino));
      fx.erase_object(is.ino);
      return;
    }

    case FsckIssueKind::kOrphanBlock: {
      // `ino` holds the block id for this kind. A same-pass fix can
      // resurrect references (the conflicting-data fix completing an
      // interrupted promotion re-arms the owner's big_file flag), so
      // re-probe the live object space before erasing.
      bool referenced = false;
      kv.scan_prefix("O", [&](std::string_view, const kv::Bytes& v) {
        const FileObject obj = decode_file_object(v);
        for (const std::uint64_t id : obj.blocks) {
          if (id == is.ino) {
            referenced = true;
            return false;
          }
        }
        return true;
      });
      fx.rep.cost += kv::RemoteKv::op_cost(true, 0);
      if (!referenced) fx.erase(block_key(is.ino));
      return;
    }

    case FsckIssueKind::kBadSmallSize: {
      auto a = fx.attr(is.ino);
      if (!a || a->big_file || a->size <= kSmallFileMax) return;
      fx.rep.cost += kv::RemoteKv::op_cost(true, 0);
      if (auto v = kv.get(small_key(is.ino));
          v && v->size() > kSmallFileMax) {
        v->resize(kSmallFileMax);
        fx.rep.cost += kv::RemoteKv::op_cost(false, v->size());
        kv.put(small_key(is.ino), *v);
        ++fx.rep.repairs;
      }
      a->size = kSmallFileMax;
      fx.put_attr(*a);
      return;
    }

    case FsckIssueKind::kConflictingData: {
      auto a = fx.attr(is.ino);
      if (!a) return;
      const bool has_small = kv.contains(small_key(is.ino));
      const bool has_object = kv.contains(big_object_key(is.ino));
      fx.rep.cost += kv::RemoteKv::op_cost(true, 0) * 2;
      if (a->type == FileType::kSymlink) {
        if (has_object) fx.erase_object(is.ino);  // never legal on symlinks
        return;
      }
      if (has_small && has_object) {
        // Both present: the big_file flag says which one readers use; the
        // other is shadowed garbage.
        if (a->big_file)
          fx.erase(small_key(is.ino));
        else
          fx.erase_object(is.ino);
      } else if (has_object && !a->big_file) {
        // Tail of an interrupted promotion: the object took over but the
        // flag flip never landed. Flip it (the small KV is already gone).
        a->big_file = 1;
        fx.put_attr(*a);
      } else if (has_small && a->big_file && !has_object) {
        // Promotion that never built its object: the small KV is still
        // the only data. Un-promote.
        a->big_file = 0;
        a->size = std::min<std::uint64_t>(a->size, kSmallFileMax);
        fx.put_attr(*a);
      }
      return;
    }

    case FsckIssueKind::kDirectoryHasData: {
      const auto a = fx.attr(is.ino);
      if (!a || a->type != FileType::kDirectory) return;
      fx.erase(small_key(is.ino));
      fx.erase_object(is.ino);
      return;
    }

    case FsckIssueKind::kBadLinkCount: {
      auto a = fx.attr(is.ino);
      if (!a || a->nlink == is.aux) return;
      a->nlink = static_cast<std::uint32_t>(is.aux);
      fx.put_attr(*a);
      return;
    }

    case FsckIssueKind::kBadSymlink: {
      auto a = fx.attr(is.ino);
      if (!a || a->type != FileType::kSymlink) return;
      fx.rep.cost += kv::RemoteKv::op_cost(true, 0);
      const auto v = kv.get(small_key(is.ino));
      if (v && !v->empty()) {
        if (a->size != v->size()) {
          a->size = v->size();
          fx.put_attr(*a);
        }
        return;
      }
      // Target text is gone — the symlink is unrecoverable. Reap it; its
      // dentries turn dangling and the next pass drops them.
      fx.erase(small_key(is.ino));
      fx.erase(attr_key(is.ino));
      return;
    }
  }
}

}  // namespace

FsckRepairReport fsck_repair(kv::KvStore& store, obs::Registry* registry) {
  FsckRepairReport rep;
  // Fixes cascade across at most a few passes (reattach → recount links →
  // verify); the budget only guards against a pathological keyspace.
  constexpr std::uint32_t kMaxPasses = 8;
  Fixer fx{store, rep};

  while (rep.passes < kMaxPasses) {
    ++rep.passes;
    const FsckReport r = fsck(store);
    rep.cost += kv::RemoteKv::op_cost(true, 0) * store.size();
    if (r.clean()) {
      rep.clean = true;
      break;
    }
    // Which inodes some dentry still names — reattachment's guard against
    // flattening orphan subtrees into /lost+found.
    std::set<Ino> referenced;
    store.scan_prefix("D", [&](std::string_view, const kv::Bytes& v) {
      referenced.insert(decode_ino(v));
      return true;
    });

    const std::uint64_t before = rep.repairs;
    for (const FsckIssue& is : r.issues) apply_fix(fx, is, referenced);
    if (rep.repairs == before) break;  // stuck: don't spin on the unfixable
  }

  if (registry != nullptr && rep.repairs > 0)
    registry->counter("fsck/repairs").add(rep.repairs);
  return rep;
}

}  // namespace dpc::kvfs
