// Offline consistency checker for a KVFS keyspace.
//
// KVFS spreads one file system across four KV flavors (inode / attribute /
// small-file / big-file-object + block KVs); a crash mid-operation or a
// buggy client can leave them disagreeing. Fsck cross-checks every
// invariant the §3.4 layout implies:
//
//   * every dentry points at an existing attribute (no dangling names);
//   * every attribute except the root is reachable from the root directory
//     (no orphaned inodes / disconnected subtrees);
//   * regular files have exactly the data KVs their `big_file` flag says
//     (small-file KV xor big-file object), and small files respect the
//     8 KB limit;
//   * every block id in a file object resolves to a block KV, and no block
//     or data KV exists without an owner;
//   * directories carry no data KVs, and their link counts match their
//     subdirectory counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kv/kv_store.hpp"
#include "kvfs/types.hpp"

namespace dpc::kvfs {

enum class FsckIssueKind : std::uint8_t {
  kDanglingDentry,   ///< inode KV names an ino with no attribute KV
  kUnreachableInode, ///< attribute exists but no path from the root
  kMissingSmallData, ///< (informational) small file > 0 bytes with no KV
  kMissingObject,    ///< big_file attr without a file-object KV
  kMissingBlock,     ///< file object references a block KV that is gone
  kOrphanData,       ///< small/object KV without a matching attribute
  kOrphanBlock,      ///< block KV no file object references
  kBadSmallSize,     ///< small file larger than the 8 KB limit
  kConflictingData,  ///< both small KV and object KV present
  kDirectoryHasData, ///< data KVs attached to a directory inode
  kBadLinkCount,     ///< directory nlink != 2 + subdirectories
  kBadSymlink,       ///< symlink without / with inconsistent target data
};

const char* to_string(FsckIssueKind k);

struct FsckIssue {
  FsckIssueKind kind;
  Ino ino = 0;
  std::string detail;
};

struct FsckReport {
  std::vector<FsckIssue> issues;
  std::uint64_t inodes = 0;
  std::uint64_t directories = 0;
  std::uint64_t regular_files = 0;
  std::uint64_t small_files = 0;
  std::uint64_t big_files = 0;
  std::uint64_t symlinks = 0;
  std::uint64_t blocks = 0;
  std::uint64_t data_bytes = 0;

  bool clean() const { return issues.empty(); }
  std::size_t count(FsckIssueKind k) const;
};

/// Runs all checks against the raw keyspace (offline: callers must ensure
/// no concurrent mutation).
FsckReport fsck(const kv::KvStore& store);

}  // namespace dpc::kvfs
