// Offline consistency checker for a KVFS keyspace.
//
// KVFS spreads one file system across four KV flavors (inode / attribute /
// small-file / big-file-object + block KVs); a crash mid-operation or a
// buggy client can leave them disagreeing. Fsck cross-checks every
// invariant the §3.4 layout implies:
//
//   * every dentry points at an existing attribute (no dangling names);
//   * every attribute except the root is reachable from the root directory
//     (no orphaned inodes / disconnected subtrees);
//   * regular files have exactly the data KVs their `big_file` flag says
//     (small-file KV xor big-file object), and small files respect the
//     8 KB limit;
//   * every block id in a file object resolves to a block KV, and no block
//     or data KV exists without an owner;
//   * directories carry no data KVs, and their link counts match their
//     subdirectory counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kv/kv_store.hpp"
#include "kvfs/types.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace dpc::kvfs {

enum class FsckIssueKind : std::uint8_t {
  kDanglingDentry,   ///< inode KV names an ino with no attribute KV
  kUnreachableInode, ///< attribute exists but no path from the root
  kMissingSmallData, ///< (informational) small file > 0 bytes with no KV
  kMissingObject,    ///< big_file attr without a file-object KV
  kMissingBlock,     ///< file object references a block KV that is gone
  kOrphanData,       ///< small/object KV without a matching attribute
  kOrphanBlock,      ///< block KV no file object references
  kBadSmallSize,     ///< small file larger than the 8 KB limit
  kConflictingData,  ///< both small KV and object KV present
  kDirectoryHasData, ///< data KVs attached to a directory inode
  kBadLinkCount,     ///< directory nlink != 2 + subdirectories
  kBadSymlink,       ///< symlink without / with inconsistent target data
};

const char* to_string(FsckIssueKind k);

struct FsckIssue {
  FsckIssueKind kind = FsckIssueKind::kDanglingDentry;
  Ino ino = 0;  ///< the affected inode (the block id for kOrphanBlock)
  std::string detail;
  // Repair-mode context — lets fsck_repair act on an issue without
  // re-deriving global state:
  Ino parent = 0;          ///< dangling dentry: directory holding the entry
  std::string name;        ///< dangling dentry: entry name
  std::uint64_t aux = 0;   ///< expected nlink / referenced block id / size
};

struct FsckReport {
  std::vector<FsckIssue> issues;
  std::uint64_t inodes = 0;
  std::uint64_t directories = 0;
  std::uint64_t regular_files = 0;
  std::uint64_t small_files = 0;
  std::uint64_t big_files = 0;
  std::uint64_t symlinks = 0;
  std::uint64_t blocks = 0;
  std::uint64_t data_bytes = 0;

  bool clean() const { return issues.empty(); }
  std::size_t count(FsckIssueKind k) const;
};

/// Runs all checks against the raw keyspace (offline: callers must ensure
/// no concurrent mutation).
FsckReport fsck(const kv::KvStore& store);

struct FsckRepairReport {
  std::uint64_t repairs = 0;  ///< individual fixes applied (all passes)
  std::uint32_t passes = 0;   ///< fsck+fix rounds run
  bool clean = false;         ///< final fsck pass found nothing
  sim::Nanos cost{};          ///< modelled remote-KV cost of scans + fixes
};

/// Repair mode: iterates fsck + fixes until the keyspace is clean (or the
/// pass budget runs out — pathological keyspaces only). Every FsckIssueKind
/// has a fix:
///   * dangling dentries are dropped;
///   * unreachable subtree roots are reattached under /lost+found (created
///     on demand); unreachable *empty* regular files are reaped;
///   * missing data is neutralized (zero-fill small files, clear big_file /
///     zero dead block ids) and orphan data/blocks are erased;
///   * conflicting data trusts the big_file flag — except an object with
///     the flag still clear, which is the tail of an interrupted promotion
///     and gets the flag set (the small KV was already superseded);
///   * link counts are recomputed, symlink sizes resynced (target-less
///     symlinks are reaped).
/// Fixes are re-guarded against the live keyspace before applying, so the
/// healthy remainder of the tree is never touched. Offline, like fsck.
/// `registry` (optional) feeds the "fsck/repairs" counter.
FsckRepairReport fsck_repair(kv::KvStore& store,
                             obs::Registry* registry = nullptr);

}  // namespace dpc::kvfs
