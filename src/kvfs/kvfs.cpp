#include "kvfs/kvfs.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "dpu/qos.hpp"
#include "nvm/wal.hpp"
#include "sim/check.hpp"

namespace dpc::kvfs {

namespace {
bool valid_name(std::string_view name) {
  return !name.empty() && name.size() <= kMaxNameLen &&
         name.find('/') == std::string_view::npos && name != "." &&
         name != "..";
}

// Per-core metadata-cache sharding: one shard per hardware thread (pow2 so
// shard selection is a mask), min 16 to keep spread on small machines.
std::size_t cache_shard_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::bit_ceil(std::max<std::size_t>(16, hw == 0 ? 16 : hw));
}
}  // namespace

Kvfs::Kvfs(kv::RemoteKv& store, const KvfsOptions& opts,
           obs::Registry* registry)
    : store_(&store),
      opts_(opts),
      owned_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                          : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      stats_(*registry_),
      cache_shards_(cache_shard_count()),
      cache_shard_mask_(cache_shards_.size() - 1) {
  if (opts_.journal) {
    journal_ = std::make_unique<IntentJournal>(store, *registry_,
                                               opts_.fault);
    if (opts_.wal != nullptr) journal_->attach_wal(opts_.wal);
    // Mount-time replay: roll any interrupted mutation (ours from a prior
    // incarnation, or a crashed peer's) forward or backward before serving.
    // The NVM log is node-local and freshly constructed at mount, so only
    // the KV-resident records (degraded-mode appends, crashed peers) exist
    // here; recover() handles the WAL after a DPU restart.
    mount_replay_ = IntentJournal::replay(store.store(), registry_);
  }
  // Install the root directory's attribute if this is a fresh store.
  sim::Nanos cost{};
  if (!load_attr(kRootIno, cost)) {
    Attr root;
    root.ino = kRootIno;
    root.type = FileType::kDirectory;
    root.mode = 0755;
    root.nlink = 2;
    root.ctime = root.mtime = root.atime = now();
    store_attr(root, cost);
  }
}

Kvfs::RecoveryReport Kvfs::recover() {
  RecoveryReport rep;
  // Volatile caches may hold state from before the crash (entries the
  // interrupted op cached but never durably completed) — drop them so every
  // post-recovery read refetches truth.
  drop_caches();
  if (opts_.wal != nullptr) rep.wal = replay_wal();
  if (journal_ != nullptr)
    rep.journal =
        IntentJournal::replay(store_->store(), registry_, opts_.fault);
  rep.fsck = fsck_repair(store_->store(), registry_);
  rep.cost = rep.wal.cost + rep.journal.cost + rep.fsck.cost;
  return rep;
}

Kvfs::WalReplayReport Kvfs::replay_wal() {
  WalReplayReport rep;
  nvm::WriteAheadLog* wal = opts_.wal;
  auto rec = wal->recover();
  rep.cost += rec.cost;
  rep.scanned = rec.report.scanned;
  rep.corrupt = rec.report.corrupt;
  rep.torn_tail = rec.report.torn_tail;

  // Pass 1: collect the markers. They sit later in the log than the
  // records they supersede (same mutex orders both), so one sweep finds
  // every committed intent, the newest drain per page, and every shrink.
  std::set<std::uint64_t> committed;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> drained;
  struct Shrink {
    std::uint64_t seq, ino, size;
  };
  std::vector<Shrink> shrinks;
  for (const auto& r : rec.records) {
    switch (r.kind) {
      case nvm::RecordKind::kIntentCommit:
        committed.insert(r.a);
        break;
      case nvm::RecordKind::kDrained: {
        auto& newest = drained[{r.a, r.b}];
        newest = std::max(newest, r.seq);
        break;
      }
      case nvm::RecordKind::kTruncate:
        shrinks.push_back({r.seq, r.a, r.b});
        break;
      default:
        break;
    }
  }

  // Pass 2: apply in seq order through the regular (journaled, idempotent)
  // KVFS paths. The crash point lets the chaos sweep kill the DPU with the
  // log half-applied; the second replay converges on the same end state.
  for (const auto& r : rec.records) {
    fault::crash_point(opts_.fault, nvm::kCrashWalMidReplay);
    switch (r.kind) {
      case nvm::RecordKind::kData: {
        const std::uint64_t page = r.data.size();
        if (page == 0) {
          ++rep.skipped;
          break;
        }
        const auto d = drained.find({r.a, r.b});
        if (d != drained.end() && d->second > r.seq) {
          ++rep.skipped;  // the flusher drained a same-or-newer copy
          break;
        }
        bool cut = false;
        for (const auto& t : shrinks)
          cut = cut || (t.seq > r.seq && t.ino == r.a && r.b * page >= t.size);
        if (cut) {
          ++rep.skipped;  // page lies wholly past a later shrink
          break;
        }
        // Clamp to the durable size: size updates are synchronous KV ops,
        // so the attr already bounds every acked byte — writing the whole
        // page would grow the file past truth.
        sim::Nanos c{};
        const auto attr = load_attr(r.a, c);
        rep.cost += c;
        if (!attr || attr->type != FileType::kRegular) {
          ++rep.skipped;  // unlinked (or replaced) since it was logged
          break;
        }
        const std::uint64_t off = r.b * page;
        if (off >= attr->size) {
          ++rep.skipped;
          break;
        }
        const std::uint64_t n =
            std::min<std::uint64_t>(page, attr->size - off);
        auto res =
            write(r.a, off, std::span<const std::byte>(r.data).first(n));
        rep.cost += res.cost;
        if (res.ok()) {
          ++rep.applied;
        } else {
          ++rep.skipped;
        }
        break;
      }
      case nvm::RecordKind::kIntent: {
        if (committed.count(r.a) != 0) {
          ++rep.skipped;  // the op finished; nothing to roll
          break;
        }
        const kv::Bytes payload(r.data.begin(), r.data.end());
        const auto decoded = decode_journal_record(payload);
        if (!decoded) {
          ++rep.corrupt;
          break;
        }
        sim::Nanos c{};
        (void)replay_intent_record(store_->store(), *decoded, c);
        rep.cost += c;
        ++rep.applied;
        break;
      }
      default:
        break;  // the markers themselves carry no state to apply
    }
  }

  // Every surviving record is now durable in the KV path: truncate the log
  // so the next crash replays nothing stale. (A crash before this line
  // replays the whole log again — idempotent by the above.)
  sim::Nanos ck{};
  wal->mark_replayed(ck);
  rep.cost += ck;

  if (rep.scanned > 0 || rep.torn_tail) {
    // Recovery path — runs once per DPU restart, not per op.
    // dpc-lint: ok(hot-path-lookup) recovery-only
    registry_->counter("kvfs.wal/replayed").add(rep.applied);
    // dpc-lint: ok(hot-path-lookup) recovery-only
    registry_->counter("kvfs.wal/skipped").add(rep.skipped);
  }
  return rep;
}

// ----------------------------------------------------------------- helpers

sim::AnnotatedMutex& Kvfs::inode_lock(Ino ino) {
  return stripes_[static_cast<std::size_t>(ino * 0x9e3779b97f4a7c15ULL >>
                                           32) %
                  kLockStripes]
      .mu;
}

/// Locks the stripes of up to two inodes without deadlocking (address
/// order; a shared stripe is locked once).
struct Kvfs::DualLock {
  // Conditional two-mutex acquisition through pointers is beyond the static
  // analysis; the runtime lock-rank detector still sees both acquisitions
  // (same rank, consistent address order -> acyclic).
  DualLock(Kvfs& fs, Ino a, Ino b) NO_THREAD_SAFETY_ANALYSIS {
    sim::AnnotatedMutex* ma = &fs.inode_lock(a);
    sim::AnnotatedMutex* mb = &fs.inode_lock(b);
    if (ma == mb) {
      ma->lock();
      first_ = ma;
    } else {
      if (ma > mb) std::swap(ma, mb);
      ma->lock();
      mb->lock();
      first_ = ma;
      second_ = mb;
    }
  }
  ~DualLock() NO_THREAD_SAFETY_ANALYSIS {
    if (second_) second_->unlock();
    if (first_) first_->unlock();
  }
  DualLock(const DualLock&) = delete;
  DualLock& operator=(const DualLock&) = delete;

 private:
  sim::AnnotatedMutex* first_ = nullptr;
  sim::AnnotatedMutex* second_ = nullptr;
};

std::uint64_t Kvfs::now() {
  return logical_time_.fetch_add(1, std::memory_order_relaxed);
}

Ino Kvfs::alloc_ino(sim::Nanos& cost) {
  // Cluster-wide counter in the KV store: several mounts sharing one
  // backend allocate collision-free ids (root stays 0; ids start at 1).
  // A transient KV failure yields 0, which callers map to EIO.
  auto r = store_->increment(ino_counter_key(), 1);
  cost += r.cost;
  return r.ok() ? r.value : 0;
}

std::uint64_t Kvfs::alloc_block(sim::Nanos& cost) {
  auto r = store_->increment(block_counter_key(), 1);
  cost += r.cost;
  return r.ok() ? r.value : 0;
}

std::optional<Attr> Kvfs::load_attr(Ino ino, sim::Nanos& cost) {
  if (auto a = cached_attr(ino)) {
    stats_.attr_hits.fetch_add(1, std::memory_order_relaxed);
    return a;
  }
  stats_.attr_misses.fetch_add(1, std::memory_order_relaxed);
  auto r = store_->get(attr_key(ino));
  cost += r.cost;
  if (!r.value) return std::nullopt;
  Attr a = decode_attr(*r.value);
  cache_attr(a);
  return a;
}

void Kvfs::store_attr(const Attr& a, sim::Nanos& cost) {
  const auto enc = encode_attr(a);
  auto r = store_->put(attr_key(a.ino), enc);
  cost += r.cost;
  if (!r.ok()) {
    // The put never reached the store: invalidate rather than cache a
    // version the backend doesn't hold, so the next load re-fetches truth.
    uncache_attr(a.ino);
    return;
  }
  cache_attr(a);
}

std::optional<Ino> Kvfs::load_dentry(Ino parent, std::string_view name,
                                     sim::Nanos& cost) {
  if (auto ino = cached_dentry(parent, name)) {
    stats_.dentry_hits.fetch_add(1, std::memory_order_relaxed);
    return ino;
  }
  stats_.dentry_misses.fetch_add(1, std::memory_order_relaxed);
  auto r = store_->get(inode_key(parent, name));
  cost += r.cost;
  if (!r.value) return std::nullopt;
  const Ino ino = decode_ino(*r.value);
  cache_dentry(parent, name, ino);
  return ino;
}

// ------------------------------------------------------------------ caches

Kvfs::CacheShard& Kvfs::dentry_shard(Ino parent, std::string_view name) {
  // Mix the parent into the name hash so hot directories still spread their
  // entries across shards.
  std::uint64_t h = std::hash<std::string_view>{}(name);
  h ^= parent * 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return cache_shards_[(h >> 32) & cache_shard_mask_];
}

Kvfs::CacheShard& Kvfs::attr_shard(Ino ino) {
  return cache_shards_[(ino * 0x9E3779B97F4A7C15ull >> 32) &
                       cache_shard_mask_];
}

std::size_t Kvfs::cache_shard_cap(std::size_t total_entries) const {
  return std::max<std::size_t>(1, total_entries / cache_shards_.size());
}

void Kvfs::cache_dentry(Ino parent, std::string_view name, Ino ino) {
  if (!opts_.enable_caches) return;
  CacheShard& sh = dentry_shard(parent, name);
  sim::LockGuard lock(sh.mu);
  if (sh.dentry.size() >= cache_shard_cap(opts_.dentry_cache_entries))
    sh.dentry.clear();  // wholesale per-shard drop: simple and rare
  sh.dentry[inode_key(parent, name)] = ino;
}

void Kvfs::uncache_dentry(Ino parent, std::string_view name) {
  if (!opts_.enable_caches) return;
  CacheShard& sh = dentry_shard(parent, name);
  sim::LockGuard lock(sh.mu);
  sh.dentry.erase(inode_key(parent, name));
}

std::optional<Ino> Kvfs::cached_dentry(Ino parent, std::string_view name) {
  if (!opts_.enable_caches) return std::nullopt;
  CacheShard& sh = dentry_shard(parent, name);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.dentry.find(inode_key(parent, name));
  if (it == sh.dentry.end()) return std::nullopt;
  return it->second;
}

void Kvfs::cache_attr(const Attr& a) {
  if (!opts_.enable_caches) return;
  CacheShard& sh = attr_shard(a.ino);
  sim::LockGuard lock(sh.mu);
  if (sh.attr.size() >= cache_shard_cap(opts_.attr_cache_entries))
    sh.attr.clear();
  sh.attr[a.ino] = a;
}

void Kvfs::uncache_attr(Ino ino) {
  if (!opts_.enable_caches) return;
  CacheShard& sh = attr_shard(ino);
  sim::LockGuard lock(sh.mu);
  sh.attr.erase(ino);
}

std::optional<Attr> Kvfs::cached_attr(Ino ino) {
  if (!opts_.enable_caches) return std::nullopt;
  CacheShard& sh = attr_shard(ino);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.attr.find(ino);
  if (it == sh.attr.end()) return std::nullopt;
  return it->second;
}

void Kvfs::drop_caches() {
  for (CacheShard& sh : cache_shards_) {
    sim::LockGuard lock(sh.mu);
    sh.dentry.clear();
    sh.attr.clear();
  }
}

// --------------------------------------------------------------- namespace

Result<Ino> Kvfs::make_node(Ino parent, std::string_view name, FileType type,
                            std::uint32_t mode,
                            std::string_view symlink_target) {
  Result<Ino> res;
  if (!valid_name(name)) {
    res.err = EINVAL;
    return res;
  }
  sim::LockGuard lock(inode_lock(parent));
  const auto pattr = load_attr(parent, res.cost);
  if (!pattr) {
    res.err = ENOENT;
    return res;
  }
  if (pattr->type != FileType::kDirectory) {
    res.err = ENOTDIR;
    return res;
  }

  const Ino ino = alloc_ino(res.cost);
  if (ino == 0) {
    res.err = EIO;
    return res;
  }

  // Write-ahead intent: if the record can't be made durable, abort before
  // anything mutates.
  std::uint64_t rec_id = 0;
  if (journal_ != nullptr) {
    JournalRecord rec;
    rec.op = JournalOp::kCreate;
    rec.type = type;
    rec.ino = ino;
    rec.parent = parent;
    rec.name = name;
    rec.name2 = symlink_target;
    rec_id = journal_->begin(rec, res.cost);
    if (rec_id == 0) {
      res.err = EIO;
      return res;
    }
  }
  const auto commit = [&] {
    if (journal_ != nullptr) journal_->commit(rec_id, res.cost);
  };

  // put_if_absent on the inode KV is the existence check and the insert in
  // one atomic step.
  auto put = store_->put_if_absent(inode_key(parent, name), encode_ino(ino));
  res.cost += put.cost;
  if (!put.ok()) {
    commit();       // nothing mutated
    res.err = EIO;  // transient KV failure, not a name collision
    return res;
  }
  if (!put.value) {
    commit();  // lost the name race; the winner's state is untouched
    res.err = EEXIST;
    return res;
  }
  fault::crash_point(opts_.fault, "kvfs.create/crash_after_dentry");

  Attr a;
  a.ino = ino;
  a.type = type;
  a.mode = mode;
  a.nlink = type == FileType::kDirectory ? 2 : 1;
  a.size = symlink_target.size();  // 0 except for symlinks
  a.ctime = a.mtime = a.atime = now();
  store_attr(a, res.cost);
  fault::crash_point(opts_.fault, "kvfs.create/crash_after_attr");
  cache_dentry(parent, name, ino);

  if (type == FileType::kSymlink) {
    // The target rides in the small-file KV, inside the journaled atom
    // (replay re-materializes it from the record's name2).
    const auto* tp = reinterpret_cast<const std::byte*>(symlink_target.data());
    auto tput = store_->put(
        small_key(ino), std::span<const std::byte>(tp, symlink_target.size()));
    res.cost += tput.cost;
    if (!tput.ok()) {
      // Leave the record open: the node dangles now (readlink EIO) but the
      // next replay completes it.
      res.err = EIO;
      return res;
    }
    fault::crash_point(opts_.fault, "kvfs.symlink/crash_after_data");
  }

  Attr p = *pattr;
  p.mtime = now();
  if (type == FileType::kDirectory) ++p.nlink;
  store_attr(p, res.cost);
  commit();

  res.value = ino;
  return res;
}

Result<Ino> Kvfs::create(Ino parent, std::string_view name,
                         std::uint32_t mode) {
  return make_node(parent, name, FileType::kRegular, mode, {});
}

Result<Ino> Kvfs::mkdir(Ino parent, std::string_view name,
                        std::uint32_t mode) {
  return make_node(parent, name, FileType::kDirectory, mode, {});
}

Result<Ino> Kvfs::lookup(Ino parent, std::string_view name) {
  Result<Ino> res;
  if (!valid_name(name)) {
    res.err = EINVAL;
    return res;
  }
  const auto ino = load_dentry(parent, name, res.cost);
  if (!ino) {
    res.err = ENOENT;
    return res;
  }
  res.value = *ino;
  return res;
}

Result<Ino> Kvfs::resolve(std::string_view path) {
  Result<Ino> res;
  if (path.empty() || path[0] != '/') {
    res.err = EINVAL;
    return res;
  }
  // "path resolution is done by recursively fetching the inode KVs from the
  // root to the target inode using p_ino+name as the key" (§3.4), following
  // symlinks with a loop bound.
  std::string work(path);
  Ino cur = kRootIno;
  std::size_t at = 1;
  int follows = 0;
  while (at < work.size()) {
    const std::size_t slash = work.find('/', at);
    const std::string_view comp =
        std::string_view(work).substr(
            at, slash == std::string::npos ? std::string_view::npos
                                           : slash - at);
    const std::size_t next_at =
        slash == std::string::npos ? work.size() : slash + 1;
    if (comp.empty()) {
      at = next_at;
      continue;
    }
    auto step = lookup(cur, comp);
    res.cost += step.cost;
    if (!step.ok()) {
      res.err = step.err;
      return res;
    }
    auto attr = load_attr(step.value, res.cost);
    if (attr && attr->type == FileType::kSymlink) {
      if (++follows > kMaxSymlinkFollows) {
        res.err = ELOOP;
        return res;
      }
      auto target = readlink(step.value);
      res.cost += target.cost;
      if (!target.ok()) {
        res.err = target.err;
        return res;
      }
      const std::string rest = work.substr(next_at);
      if (!target.value.empty() && target.value[0] == '/') {
        // Absolute target: restart from the root.
        work = target.value;
        if (!rest.empty()) work += "/" + rest;
        cur = kRootIno;
        at = 1;
      } else {
        // Relative target: resolve against the current directory.
        work = target.value;
        if (!rest.empty()) work += "/" + rest;
        at = 0;
      }
      continue;
    }
    cur = step.value;
    at = next_at;
  }
  res.value = cur;
  return res;
}

bool Kvfs::dir_empty(Ino dir, sim::Nanos& cost) {
  bool empty = true;
  auto scan = store_->scan_prefix(
      inode_key_prefix(dir), [&](std::string_view, const kv::Bytes&) {
        empty = false;
        return false;  // stop at the first entry
      });
  cost += scan.cost;
  // If the scan failed we can't prove emptiness — answer "not empty" so
  // rmdir/rename fail safe (ENOTEMPTY) instead of deleting a live tree.
  if (!scan.ok()) return false;
  return empty;
}

void Kvfs::purge_data(const Attr& a, sim::Nanos& cost) {
  if (a.big_file) {
    auto obj_v = store_->get(big_object_key(a.ino));
    cost += obj_v.cost;
    if (obj_v.value) {
      const FileObject obj = decode_file_object(*obj_v.value);
      for (const std::uint64_t id : obj.blocks) {
        if (id != 0) cost += store_->erase(block_key(id)).cost;
      }
    }
    cost += store_->erase(big_object_key(a.ino)).cost;
  } else {
    cost += store_->erase(small_key(a.ino)).cost;
  }
}

Result<Unit> Kvfs::remove_node(Ino parent, std::string_view name, bool dir) {
  Result<Unit> res;
  if (!valid_name(name)) {
    res.err = EINVAL;
    return res;
  }
  sim::LockGuard lock(inode_lock(parent));
  const auto ino = load_dentry(parent, name, res.cost);
  if (!ino) {
    res.err = ENOENT;
    return res;
  }
  // Note: *ino's stripe may equal parent's; use a plain check, data ops on
  // the victim are excluded by the namespace entry being gone first.
  const auto attr = load_attr(*ino, res.cost);
  if (!attr) {
    res.err = EIO;
    return res;
  }
  if (dir) {
    if (attr->type != FileType::kDirectory) {
      res.err = ENOTDIR;
      return res;
    }
    if (!dir_empty(*ino, res.cost)) {
      res.err = ENOTEMPTY;
      return res;
    }
  } else if (attr->type == FileType::kDirectory) {
    res.err = EISDIR;
    return res;
  }

  // Write-ahead intent: nlink_before and big_file let replay finish a
  // half-done removal (decrement exactly once, or purge the right flavor).
  std::uint64_t rec_id = 0;
  if (journal_ != nullptr) {
    JournalRecord rec;
    rec.op = JournalOp::kRemove;
    rec.type = attr->type;
    rec.ino = *ino;
    rec.parent = parent;
    rec.name = name;
    rec.nlink_before = attr->nlink;
    rec.big_file = static_cast<std::uint8_t>(attr->big_file != 0);
    rec_id = journal_->begin(rec, res.cost);
    if (rec_id == 0) {
      res.err = EIO;
      return res;
    }
  }

  // Remove the namespace entry first so concurrent lookups fail fast. If
  // the erase itself fails, abort before touching the attr/data: deleting
  // those while the dentry survives would leave a dangling name.
  auto del = store_->erase(inode_key(parent, name));
  res.cost += del.cost;
  if (!del.ok()) {
    if (journal_ != nullptr) journal_->commit(rec_id, res.cost);
    res.err = EIO;
    return res;
  }
  uncache_dentry(parent, name);
  fault::crash_point(opts_.fault, "kvfs.remove/crash_after_dentry");
  if (attr->type != FileType::kDirectory && attr->nlink > 1) {
    // Other hard links remain: drop one reference, keep the data.
    Attr a = *attr;
    --a.nlink;
    a.ctime = now();
    store_attr(a, res.cost);
  } else {
    if (attr->type != FileType::kDirectory) purge_data(*attr, res.cost);
    res.cost += store_->erase(attr_key(*ino)).cost;
    uncache_attr(*ino);
    if (opts_.wal != nullptr && attr->type == FileType::kRegular) {
      // Size-zero marker in the durability spine: logged-but-undrained
      // pages of the purged file stop blocking checkpoint, and replay
      // skips them instead of probing a dead ino.
      sim::Nanos c{};
      (void)opts_.wal->append_truncate(*ino, 0, c);
      res.cost += c;
    }
  }
  fault::crash_point(opts_.fault, "kvfs.remove/crash_after_attr");

  if (auto pattr = load_attr(parent, res.cost)) {
    Attr p = *pattr;
    p.mtime = now();
    if (dir && p.nlink > 2) --p.nlink;
    store_attr(p, res.cost);
  }
  if (journal_ != nullptr) journal_->commit(rec_id, res.cost);
  return res;
}

Result<Unit> Kvfs::unlink(Ino parent, std::string_view name) {
  return remove_node(parent, name, /*dir=*/false);
}

Result<Unit> Kvfs::rmdir(Ino parent, std::string_view name) {
  return remove_node(parent, name, /*dir=*/true);
}

Result<Unit> Kvfs::rename(Ino old_parent, std::string_view old_name,
                          Ino new_parent, std::string_view new_name) {
  Result<Unit> res;
  if (!valid_name(old_name) || !valid_name(new_name)) {
    res.err = EINVAL;
    return res;
  }
  DualLock lock(*this, old_parent, new_parent);

  const auto src = load_dentry(old_parent, old_name, res.cost);
  if (!src) {
    res.err = ENOENT;
    return res;
  }
  const auto src_attr = load_attr(*src, res.cost);
  if (!src_attr) {
    res.err = EIO;
    return res;
  }

  std::optional<Attr> dst_attr;
  if (const auto dst = load_dentry(new_parent, new_name, res.cost)) {
    if (*dst == *src) return res;  // rename onto itself: success, no-op
    dst_attr = load_attr(*dst, res.cost);
    if (!dst_attr) {
      res.err = EIO;
      return res;
    }
    // POSIX replace semantics: types must be compatible, dirs must be empty.
    if (dst_attr->type == FileType::kDirectory) {
      if (src_attr->type != FileType::kDirectory) {
        res.err = EISDIR;
        return res;
      }
      if (!dir_empty(*dst, res.cost)) {
        res.err = ENOTEMPTY;
        return res;
      }
    } else if (src_attr->type == FileType::kDirectory) {
      res.err = ENOTDIR;
      return res;
    }
  }

  // Write-ahead intent. Replay always rolls a rename *forward*: once the
  // destination purge may have started, completing the move is the only
  // consistent end state. On a mid-op transient failure below, the record
  // is deliberately left open so the next recovery finishes the move.
  std::uint64_t rec_id = 0;
  if (journal_ != nullptr) {
    JournalRecord rec;
    rec.op = JournalOp::kRename;
    rec.type = src_attr->type;
    rec.ino = *src;
    rec.parent = old_parent;
    rec.name = old_name;
    rec.new_parent = new_parent;
    rec.name2 = new_name;
    if (dst_attr) {
      rec.replaced_ino = dst_attr->ino;
      rec.replaced_big = static_cast<std::uint8_t>(dst_attr->big_file != 0);
    }
    rec_id = journal_->begin(rec, res.cost);
    if (rec_id == 0) {
      res.err = EIO;
      return res;
    }
  }

  if (dst_attr) {
    if (dst_attr->type != FileType::kDirectory)
      purge_data(*dst_attr, res.cost);
    res.cost += store_->erase(attr_key(dst_attr->ino)).cost;
    uncache_attr(dst_attr->ino);
    fault::crash_point(opts_.fault, "kvfs.rename/crash_after_purge");
  }

  auto ins = store_->put(inode_key(new_parent, new_name), encode_ino(*src));
  res.cost += ins.cost;
  if (!ins.ok()) {
    res.err = EIO;  // record stays open: recovery completes the move
    return res;
  }
  fault::crash_point(opts_.fault, "kvfs.rename/crash_after_insert");
  res.cost += store_->erase(inode_key(old_parent, old_name)).cost;
  uncache_dentry(old_parent, old_name);
  cache_dentry(new_parent, new_name, *src);

  // Moving a directory between parents shifts the ".." back-link.
  if (src_attr->type == FileType::kDirectory && old_parent != new_parent) {
    if (auto op = load_attr(old_parent, res.cost)) {
      Attr p = *op;
      if (p.nlink > 2) --p.nlink;
      p.mtime = now();
      store_attr(p, res.cost);
    }
    if (auto np = load_attr(new_parent, res.cost)) {
      Attr p = *np;
      ++p.nlink;
      p.mtime = now();
      store_attr(p, res.cost);
    }
  }
  if (journal_ != nullptr) journal_->commit(rec_id, res.cost);
  return res;
}

Result<Ino> Kvfs::symlink(std::string_view target, Ino parent,
                          std::string_view name) {
  if (target.empty() || target.size() > kMaxNameLen) {
    Result<Ino> res;
    res.err = EINVAL;
    return res;
  }
  // Target storage happens inside make_node so the whole symlink (dentry +
  // attr + target text) is one journaled atom.
  return make_node(parent, name, FileType::kSymlink, 0777, target);
}

Result<std::string> Kvfs::readlink(Ino ino) {
  Result<std::string> res;
  const auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  if (attr->type != FileType::kSymlink) {
    res.err = EINVAL;
    return res;
  }
  auto v = store_->get(small_key(ino));
  res.cost += v.cost;
  if (!v.value) {
    res.err = EIO;
    return res;
  }
  res.value.assign(reinterpret_cast<const char*>(v.value->data()),
                   v.value->size());
  return res;
}

Result<Unit> Kvfs::link(Ino ino, Ino new_parent, std::string_view name) {
  Result<Unit> res;
  if (!valid_name(name)) {
    res.err = EINVAL;
    return res;
  }
  DualLock lock(*this, ino, new_parent);
  auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  if (attr->type == FileType::kDirectory) {
    res.err = EPERM;  // no hard links to directories
    return res;
  }
  const auto pattr = load_attr(new_parent, res.cost);
  if (!pattr || pattr->type != FileType::kDirectory) {
    res.err = pattr ? ENOTDIR : ENOENT;
    return res;
  }
  auto put = store_->put_if_absent(inode_key(new_parent, name),
                                   encode_ino(ino));
  res.cost += put.cost;
  if (!put.ok()) {
    res.err = EIO;  // transient KV failure, not a name collision
    return res;
  }
  if (!put.value) {
    res.err = EEXIST;
    return res;
  }
  ++attr->nlink;
  attr->ctime = now();
  store_attr(*attr, res.cost);
  cache_dentry(new_parent, name, ino);
  Attr p = *pattr;
  p.mtime = now();
  store_attr(p, res.cost);
  return res;
}

Result<std::vector<DirEntry>> Kvfs::readdir(Ino dir) {
  Result<std::vector<DirEntry>> res;
  const auto attr = load_attr(dir, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  if (attr->type != FileType::kDirectory) {
    res.err = ENOTDIR;
    return res;
  }
  // "a prefix-based scan can return all the inode numbers belonging to a
  // directory specified by the p_ino" (§3.4).
  auto scan = store_->scan_prefix(
      inode_key_prefix(dir), [&](std::string_view key, const kv::Bytes& v) {
        res.value.push_back(
            {std::string(name_of_inode_key(key)), decode_ino(v)});
        return true;
      });
  res.cost += scan.cost;
  return res;
}

// -------------------------------------------------------------- attributes

Result<Attr> Kvfs::getattr(Ino ino) {
  Result<Attr> res;
  const auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  res.value = *attr;
  return res;
}

Result<Unit> Kvfs::chmod(Ino ino, std::uint32_t mode) {
  Result<Unit> res;
  sim::LockGuard lock(inode_lock(ino));
  auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  attr->mode = mode;
  attr->ctime = now();
  store_attr(*attr, res.cost);
  return res;
}

Result<Unit> Kvfs::chown(Ino ino, std::uint32_t uid, std::uint32_t gid) {
  Result<Unit> res;
  sim::LockGuard lock(inode_lock(ino));
  auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  attr->uid = uid;
  attr->gid = gid;
  attr->ctime = now();
  store_attr(*attr, res.cost);
  return res;
}

// -------------------------------------------------------------------- data

Result<std::uint32_t> Kvfs::read(Ino ino, std::uint64_t offset,
                                 std::span<std::byte> dst,
                                 nvme::TenantId tenant) {
  Result<std::uint32_t> res = read_impl(ino, offset, dst);
  // Tenant attribution happens outside the inode stripe lock: the QoS
  // manager's mutex is kLeaf and its counters are plain atomics.
  if (qos_ != nullptr && res.ok())
    qos_->count_backend_bytes(tenant, res.value);
  return res;
}

Result<std::uint32_t> Kvfs::read_impl(Ino ino, std::uint64_t offset,
                                      std::span<std::byte> dst) {
  Result<std::uint32_t> res;
  sim::LockGuard lock(inode_lock(ino));
  const auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  if (attr->type != FileType::kRegular) {
    res.err = EISDIR;
    return res;
  }
  if (offset >= attr->size || dst.empty()) {
    res.value = 0;
    return res;
  }
  const auto n = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(dst.size(), attr->size - offset));

  if (!attr->big_file) {
    auto r = store_->read_sub(small_key(ino), offset, dst.first(n));
    res.cost += r.cost;
    if (!r.ok()) {
      // Never return unfetched bytes as data — fail the read instead.
      res.err = EIO;
      return res;
    }
    const std::size_t got = r.value.value_or(0);
    // Small files are stored whole; a short read only means trailing
    // zeros were never materialized.
    if (got < n)
      std::memset(dst.data() + got, 0, n - got);
    res.value = n;
    return res;
  }

  auto obj_v = store_->get(big_object_key(ino));
  res.cost += obj_v.cost;
  if (!obj_v.value) {
    res.err = EIO;
    return res;
  }
  const FileObject obj = decode_file_object(*obj_v.value);

  std::uint32_t done = 0;
  while (done < n) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t logical = pos / kBigBlock;
    const std::uint32_t in_block = static_cast<std::uint32_t>(pos % kBigBlock);
    const std::uint32_t chunk =
        std::min<std::uint32_t>(n - done, kBigBlock - in_block);
    const std::uint64_t id = obj.block_id(logical);
    if (id == 0) {
      std::memset(dst.data() + done, 0, chunk);  // hole
    } else {
      auto r = store_->read_sub(block_key(id), in_block,
                                dst.subspan(done, chunk));
      res.cost += r.cost;
      if (!r.ok()) {
        res.err = EIO;
        return res;
      }
      const std::size_t got = r.value.value_or(0);
      if (got < chunk) std::memset(dst.data() + done + got, 0, chunk - got);
    }
    done += chunk;
  }
  res.value = n;
  return res;
}

bool Kvfs::promote_to_big(Attr& a, sim::Nanos& cost,
                          std::uint64_t& journal_rec) {
  // §3.4: "When the file size grows bigger than 8KB, KVFS deletes the small
  // file KV and creates a big file KV."
  journal_rec = 0;
  kv::Bytes small;
  auto r = store_->get(small_key(a.ino));
  cost += r.cost;
  if (!r.ok()) return false;  // can't read the bytes we're about to move
  if (r.value) small = std::move(*r.value);

  // Allocate the landing block first (a burned counter value is harmless),
  // then journal the intent: replay treats the object put as the commit
  // point — object present rolls forward (erase small, set the flag),
  // absent rolls back (reclaim the block).
  FileObject obj;
  std::uint64_t block_id = 0;
  if (!small.empty()) {
    block_id = alloc_block(cost);
    if (block_id == 0) return false;
    obj.set_block(0, block_id);
  }
  if (journal_ != nullptr) {
    JournalRecord rec;
    rec.op = JournalOp::kPromote;
    rec.ino = a.ino;
    if (block_id != 0) rec.blocks.push_back(block_id);
    journal_rec = journal_->begin(rec, cost);
    if (journal_rec == 0) return false;
  }
  // Failures from here on return with the record still open; the next
  // recovery rolls the half-promotion back (or forward past the object
  // put). The caller commits `journal_rec` only after storing the attr
  // with big_file set, so a crash before that still flips the flag.

  if (block_id != 0) {
    auto blk = store_->put(block_key(block_id), small);
    cost += blk.cost;
    if (!blk.ok()) return false;
    fault::crash_point(opts_.fault, "kvfs.promote/crash_after_block");
  }
  auto put = store_->put(big_object_key(a.ino), encode_file_object(obj));
  cost += put.cost;
  if (!put.ok()) return false;
  fault::crash_point(opts_.fault, "kvfs.promote/crash_after_object");
  // A failed erase only leaves the (now shadowed) small KV as garbage; the
  // big object is already authoritative, so the promotion stands.
  cost += store_->erase(small_key(a.ino)).cost;
  a.big_file = 1;
  stats_.promotions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Result<std::uint32_t> Kvfs::write(Ino ino, std::uint64_t offset,
                                  std::span<const std::byte> src,
                                  nvme::TenantId tenant) {
  Result<std::uint32_t> res = write_impl(ino, offset, src);
  if (qos_ != nullptr && res.ok())
    qos_->count_backend_bytes(tenant, res.value);
  return res;
}

Result<std::uint32_t> Kvfs::write_impl(Ino ino, std::uint64_t offset,
                                       std::span<const std::byte> src) {
  Result<std::uint32_t> res;
  sim::LockGuard lock(inode_lock(ino));
  auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  if (attr->type != FileType::kRegular) {
    res.err = EISDIR;
    return res;
  }
  if (src.empty()) {
    res.value = 0;
    return res;
  }
  const std::uint64_t new_size = std::max<std::uint64_t>(
      attr->size, offset + src.size());

  // Open intent records for this op (0 = none); committed after the final
  // attr store so replay can finish whatever tail a crash cuts off.
  std::uint64_t promote_rec = 0;
  std::uint64_t extent_rec = 0;

  if (!attr->big_file && new_size <= kSmallFileMax) {
    // §3.4: "For small files … when updating the file data, we rewrite the
    // entire KV."
    kv::Bytes buf;
    auto cur = store_->get(small_key(ino));
    res.cost += cur.cost;
    if (!cur.ok()) {
      // Rewriting the whole KV from a failed read would wipe the bytes we
      // couldn't fetch — abort instead.
      res.err = EIO;
      return res;
    }
    if (cur.value) buf = std::move(*cur.value);
    if (buf.size() < new_size) buf.resize(new_size, std::byte{0});
    std::memcpy(buf.data() + offset, src.data(), src.size());
    auto put = store_->put(small_key(ino), buf);
    res.cost += put.cost;
    if (!put.ok()) {
      res.err = EIO;
      return res;
    }
    stats_.small_rewrites.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (!attr->big_file && !promote_to_big(*attr, res.cost, promote_rec)) {
      res.err = EIO;  // small KV still authoritative, nothing lost
      return res;
    }

    auto obj_v = store_->get(big_object_key(ino));
    res.cost += obj_v.cost;
    if (!obj_v.ok() || !obj_v.value.has_value()) {
      res.err = EIO;
      return res;
    }
    FileObject obj = decode_file_object(*obj_v.value);

    // Pre-allocate every block the range is missing, then journal the whole
    // extent update as one intent *before* any data lands. Replay treats
    // the object put below as the commit point: an object referencing the
    // new ids rolls forward, otherwise the ids are reclaimed. (Data writes
    // into pre-existing blocks are in-place and per-8 KB-block atomic — the
    // documented crash granularity for overwrites.)
    const auto n = static_cast<std::uint32_t>(src.size());
    std::vector<std::uint64_t> new_blocks;
    for (std::uint64_t logical = offset / kBigBlock;
         logical <= (offset + n - 1) / kBigBlock; ++logical) {
      if (obj.block_id(logical) != 0) continue;
      const std::uint64_t id = alloc_block(res.cost);
      if (id == 0) {
        res.err = EIO;  // nothing mutated yet; burned ids are harmless
        return res;
      }
      obj.set_block(logical, id);
      new_blocks.push_back(id);
    }
    const bool obj_changed = !new_blocks.empty();
    if (journal_ != nullptr && obj_changed) {
      JournalRecord rec;
      rec.op = JournalOp::kExtent;
      rec.ino = ino;
      rec.blocks = new_blocks;
      extent_rec = journal_->begin(rec, res.cost);
      if (extent_rec == 0) {
        res.err = EIO;
        return res;
      }
    }
    const auto is_new = [&](std::uint64_t id) {
      return std::find(new_blocks.begin(), new_blocks.end(), id) !=
             new_blocks.end();
    };

    std::uint32_t done = 0;
    while (done < n) {
      const std::uint64_t pos = offset + done;
      const std::uint64_t logical = pos / kBigBlock;
      const auto in_block = static_cast<std::uint32_t>(pos % kBigBlock);
      const std::uint32_t chunk =
          std::min<std::uint32_t>(n - done, kBigBlock - in_block);
      const std::uint64_t id = obj.block_id(logical);
      if (in_block != 0 && is_new(id)) {
        // Materialize the leading hole bytes of the fresh block.
        const kv::Bytes zeros(in_block, std::byte{0});
        auto z = store_->write_sub(block_key(id), 0, zeros);
        res.cost += z.cost;
        if (!z.ok()) {
          res.err = EIO;  // extent record stays open; recovery reclaims
          return res;
        }
      }
      // "updates to large files are written in place to large file KVs at a
      // granularity of 8K" — write_sub is the in-place primitive.
      auto w =
          store_->write_sub(block_key(id), in_block, src.subspan(done, chunk));
      res.cost += w.cost;
      if (!w.ok()) {
        // Blocks already written stay (in-place overwrite is idempotent);
        // the size/mtime update below is skipped so a retry redoes the op.
        res.err = EIO;
        return res;
      }
      stats_.big_inplace_writes.fetch_add(1, std::memory_order_relaxed);
      done += chunk;
    }
    fault::crash_point(opts_.fault, "kvfs.write/crash_after_blocks");
    if (obj_changed) {
      auto put = store_->put(big_object_key(ino), encode_file_object(obj));
      res.cost += put.cost;
      if (!put.ok()) {
        res.err = EIO;  // fresh blocks leak until recovery reclaims them
        return res;
      }
    }
  }

  attr->size = new_size;
  attr->mtime = now();
  store_attr(*attr, res.cost);
  if (journal_ != nullptr) {
    if (extent_rec != 0) journal_->commit(extent_rec, res.cost);
    if (promote_rec != 0) journal_->commit(promote_rec, res.cost);
  }
  res.value = static_cast<std::uint32_t>(src.size());
  return res;
}

Result<Unit> Kvfs::truncate(Ino ino, std::uint64_t new_size) {
  Result<Unit> res;
  sim::LockGuard lock(inode_lock(ino));
  auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  if (attr->type != FileType::kRegular) {
    res.err = EISDIR;
    return res;
  }
  if (new_size == attr->size) return res;

  // Truncate itself is not journaled (documented limitation — fsck repair
  // normalizes a torn shrink), but a growth-triggered promotion still is.
  std::uint64_t promote_rec = 0;
  if (!attr->big_file) {
    if (new_size > kSmallFileMax) {
      if (!promote_to_big(*attr, res.cost, promote_rec)) {
        res.err = EIO;
        return res;
      }
      // Growth beyond the old size is a hole; nothing else to write.
    } else {
      kv::Bytes buf;
      auto cur = store_->get(small_key(ino));
      res.cost += cur.cost;
      if (!cur.ok()) {
        res.err = EIO;  // don't rewrite from bytes we couldn't fetch
        return res;
      }
      if (cur.value) buf = std::move(*cur.value);
      buf.resize(new_size, std::byte{0});
      auto put = store_->put(small_key(ino), buf);
      res.cost += put.cost;
      if (!put.ok()) {
        res.err = EIO;
        return res;
      }
    }
  }
  if (attr->big_file && new_size < attr->size) {
    // Drop whole blocks past the new end (a file once big stays big — the
    // paper defines promotion only; we document the asymmetry).
    auto obj_v = store_->get(big_object_key(ino));
    res.cost += obj_v.cost;
    if (!obj_v.ok()) {
      res.err = EIO;  // don't record the shrink without dropping blocks
      return res;
    }
    if (obj_v.value) {
      FileObject obj = decode_file_object(*obj_v.value);
      const std::uint64_t keep_blocks =
          (new_size + kBigBlock - 1) / kBigBlock;
      bool changed = false;
      for (std::uint64_t b = keep_blocks; b < obj.blocks.size(); ++b) {
        if (obj.blocks[b] != 0) {
          res.cost += store_->erase(block_key(obj.blocks[b])).cost;
          obj.blocks[b] = 0;
          changed = true;
        }
      }
      if (changed) {
        obj.blocks.resize(keep_blocks, 0);
        res.cost +=
            store_->put(big_object_key(ino), encode_file_object(obj)).cost;
      }
      // POSIX: the tail of the boundary block must read as zeros if the
      // file grows again later.
      const auto tail = static_cast<std::uint32_t>(new_size % kBigBlock);
      if (tail != 0) {
        const std::uint64_t id = obj.block_id(new_size / kBigBlock);
        if (id != 0) {
          const kv::Bytes zeros(kBigBlock - tail, std::byte{0});
          auto z = store_->write_sub(block_key(id), tail, zeros);
          res.cost += z.cost;
          if (!z.ok()) {
            res.err = EIO;  // retrying the truncate re-zeroes the tail
            return res;
          }
        }
      }
    }
  }

  const std::uint64_t old_size = attr->size;
  attr->size = new_size;
  attr->mtime = now();
  store_attr(*attr, res.cost);
  if (journal_ != nullptr && promote_rec != 0)
    journal_->commit(promote_rec, res.cost);
  if (opts_.wal != nullptr && new_size < old_size) {
    // Shrink marker in the durability spine: replay must not resurrect
    // logged pages this truncate cut off. A failed append is tolerated —
    // replay clamps every page to the (durable) attr size anyway, the
    // marker just unblocks checkpointing and skips dead pages early.
    sim::Nanos c{};
    (void)opts_.wal->append_truncate(ino, new_size, c);
    res.cost += c;
  }
  return res;
}

Result<Kvfs::StatFs> Kvfs::statfs() {
  Result<StatFs> res;
  auto scan = store_->scan_prefix(
      "A", [&](std::string_view, const kv::Bytes& v) {
        ++res.value.inodes;
        res.value.data_bytes += decode_attr(v).size;
        return true;
      });
  res.cost += scan.cost;
  res.value.kv_count = store_->store().size();
  return res;
}

Result<Unit> Kvfs::fsync(Ino ino) {
  Result<Unit> res;
  const auto attr = load_attr(ino, res.cost);
  if (!attr) {
    res.err = ENOENT;
    return res;
  }
  // The KV store is durable on ack; fsync costs one barrier round trip.
  res.cost += kv::RemoteKv::op_cost(false, 0);
  return res;
}

}  // namespace dpc::kvfs
