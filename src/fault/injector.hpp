// Deterministic, centrally-configured fault injection (the failure model's
// single knob — see DESIGN.md "Failure model").
//
// A FaultInjector is keyed by *site name* ("nvme.tgt/drop_cqe",
// "kv.remote/op", …): each subsystem that can fail holds an optional
// injector pointer and asks `should_fail(site)` at the moment the failure
// would physically occur. Sites are armed per run with a probability; an
// unarmed site never fires, and a null injector (the default everywhere)
// costs one pointer compare on the happy path.
//
// Determinism: draw n at site s under master seed S is a pure function
// hash(S, fnv1a(s), n) — the per-site draw counter is the only state — so
// the same seed yields the same per-site fault schedule regardless of how
// threads interleave across *different* sites. (Within one site, concurrent
// callers race for draw indices; the multiset of outcomes is still
// seed-stable, which is what the chaos tests rely on.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace dpc::fault {

/// Thrown by `crash_point()` when an armed crash site fires: models the DPU
/// halting mid-operation. It is caught at the DPU entry boundaries only (the
/// TGT command loop, the cache control-plane passes) — never by the layer
/// that crashed, so no further mutation happens on the crashed path. The
/// host side observes the crash purely as lost completions.
struct CrashException {};

class FaultInjector {
 public:
  /// `registry` (optional) hosts the "fault/injected" and "fault/checks"
  /// counters so injected faults show up in BENCH snapshots.
  explicit FaultInjector(std::uint64_t seed = 0x5eed,
                         obs::Registry* registry = nullptr);

  /// Arms (or re-arms) a site with a Bernoulli fire probability in [0, 1].
  void arm(std::string_view site, double probability);
  /// Removes the site entirely (draw counter included).
  void disarm(std::string_view site);
  /// Keeps the site's configuration and draw counter but gates firing.
  void set_enabled(std::string_view site, bool enabled);

  bool armed(std::string_view site) const;
  double probability(std::string_view site) const;
  /// Draws consumed at the site so far.
  std::uint64_t draws(std::string_view site) const;

  /// One Bernoulli draw at `site`. Unarmed/disabled sites never fire and
  /// consume no draw.
  bool should_fail(std::string_view site);

  /// Like should_fail(), but on a firing draw also fills `*entropy_out`
  /// with 64 deterministic bits derived from the same (seed, site, draw)
  /// tuple. Data-corruption sites use this to pick *which* byte/bit to rot
  /// or where to tear a write, so a given seed reproduces the exact same
  /// damage — not merely the same fault schedule. Untouched when the draw
  /// does not fire.
  bool should_fail(std::string_view site, std::uint64_t* entropy_out);

  // ---- slow outcomes (gray failure / fail-slow) --------------------------
  //
  // A *slow* site never fails an access — it stretches the access's modelled
  // service time, which is how real gray failures present: the peer is up,
  // answers correctly, and quietly drags every op that touches it. Sites are
  // independent of the Bernoulli fault sites above (arm both to model a
  // limping server that also drops requests).

  struct SlowSpec {
    /// Sustained service-time multiplier (1.0 = healthy; 10.0 = the access
    /// takes 10× its healthy latency). Applied on every matching access.
    double multiplier = 1.0;
    /// Additive stall charged when the intermittent draw fires — models GC
    /// pauses / queue spikes rather than a uniformly slow peer.
    sim::Nanos stall{};
    /// Bernoulli probability of `stall` per access (0 = never).
    double stall_probability = 0.0;
    /// Limping-peer mode: only accesses served by this peer index limp;
    /// -1 limps every peer at the site.
    int peer = -1;
  };

  /// Arms (or re-arms) a slow site. Stall draws restart from index 0 on
  /// re-arm, like arm()'s contract for fault draws.
  void arm_slow(std::string_view site, const SlowSpec& spec);
  void disarm_slow(std::string_view site);
  bool slow_armed(std::string_view site) const;

  /// Extra modelled latency of one access at `site` served by `peer`, whose
  /// healthy service time is `base`: (multiplier-1)·base when the peer
  /// matches, plus `stall` when the intermittent draw fires. Deterministic
  /// per (seed, site, draw index) — same machinery as should_fail. Unarmed
  /// sites cost one pointer-ish lookup and return zero.
  sim::Nanos slow_penalty(std::string_view site, int peer, sim::Nanos base);

  // ---- crash outcomes (kCrash) -------------------------------------------
  //
  // Unlike the Bernoulli sites above, a crash site is one-shot: it fires on
  // its (skip+1)-th arrival, marks the whole injector `crashed()`, and
  // disarms itself. Once crashed, every crash point and DPU poller gated on
  // `crashed()` goes quiet until `clear_crash()` — the restart path's job.

  /// Arms `site` to crash on its (skip+1)-th arrival. Re-arming resets the
  /// arrival count.
  void arm_crash(std::string_view site, std::uint64_t skip = 0);
  void disarm_crash(std::string_view site);
  /// One arrival at a crash point. Returns true exactly once per arming —
  /// when the skip count is exhausted — and latches `crashed()`. Arrivals
  /// while already crashed never fire (a halted DPU executes nothing).
  bool at_crash_point(std::string_view site);
  /// True between a crash firing and clear_crash().
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  /// Restart path: the DPU is back; crash points may be re-armed and fire
  /// again.
  void clear_crash() { crashed_.store(false, std::memory_order_release); }
  /// Arrivals recorded at a crash site so far (0 if never armed).
  std::uint64_t crash_arrivals(std::string_view site) const;

  std::uint64_t seed() const { return seed_; }

  /// Seed from the DPC_FAULT_SEED environment variable (decimal), or
  /// `fallback` when unset/unparsable — how the CI chaos stage sweeps seeds.
  static std::uint64_t seed_from_env(std::uint64_t fallback = 0x5eed);

 private:
  struct Site {
    double p = 0.0;
    bool enabled = true;
    std::uint64_t name_hash = 0;
    std::atomic<std::uint64_t> draws{0};
  };

  struct CrashSite {
    std::uint64_t skip = 0;
    std::atomic<std::uint64_t> arrivals{0};
    std::atomic<bool> armed{false};
  };

  struct SlowSite {
    SlowSpec spec;
    bool enabled = true;
    std::uint64_t name_hash = 0;
    std::atomic<std::uint64_t> draws{0};  // intermittent-stall draw counter
  };

  Site* find(std::string_view site) const;
  CrashSite* find_crash(std::string_view site) const;
  SlowSite* find_slow(std::string_view site) const;

  std::uint64_t seed_;
  obs::Counter* injected_ = nullptr;  // null without a registry
  obs::Counter* checks_ = nullptr;
  obs::Counter* crashes_ = nullptr;
  obs::Counter* slow_injected_ = nullptr;

  std::atomic<bool> crashed_{false};

  mutable sim::AnnotatedSharedMutex mu_{"fault.injector",
                                        sim::LockRank::kLeaf};
  // unique_ptr values keep Site addresses (and their atomics) stable across
  // rehashes, so should_fail can drop the map lock before drawing.
  std::unordered_map<std::string, std::unique_ptr<Site>> sites_
      GUARDED_BY(mu_);
  std::unordered_map<std::string, std::unique_ptr<CrashSite>> crash_sites_
      GUARDED_BY(mu_);
  std::unordered_map<std::string, std::unique_ptr<SlowSite>> slow_sites_
      GUARDED_BY(mu_);
};

/// Placed at every named crash point on the DPU side: throws CrashException
/// when the injector says this arrival is the one that crashes. A null
/// injector costs one pointer compare (same contract as should_fail).
inline void crash_point(FaultInjector* fi, std::string_view site) {
  if (fi != nullptr && fi->at_crash_point(site)) throw CrashException{};
}

}  // namespace dpc::fault
