// Deterministic, centrally-configured fault injection (the failure model's
// single knob — see DESIGN.md "Failure model").
//
// A FaultInjector is keyed by *site name* ("nvme.tgt/drop_cqe",
// "kv.remote/op", …): each subsystem that can fail holds an optional
// injector pointer and asks `should_fail(site)` at the moment the failure
// would physically occur. Sites are armed per run with a probability; an
// unarmed site never fires, and a null injector (the default everywhere)
// costs one pointer compare on the happy path.
//
// Determinism: draw n at site s under master seed S is a pure function
// hash(S, fnv1a(s), n) — the per-site draw counter is the only state — so
// the same seed yields the same per-site fault schedule regardless of how
// threads interleave across *different* sites. (Within one site, concurrent
// callers race for draw indices; the multiset of outcomes is still
// seed-stable, which is what the chaos tests rely on.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace dpc::fault {

class FaultInjector {
 public:
  /// `registry` (optional) hosts the "fault/injected" and "fault/checks"
  /// counters so injected faults show up in BENCH snapshots.
  explicit FaultInjector(std::uint64_t seed = 0x5eed,
                         obs::Registry* registry = nullptr);

  /// Arms (or re-arms) a site with a Bernoulli fire probability in [0, 1].
  void arm(std::string_view site, double probability);
  /// Removes the site entirely (draw counter included).
  void disarm(std::string_view site);
  /// Keeps the site's configuration and draw counter but gates firing.
  void set_enabled(std::string_view site, bool enabled);

  bool armed(std::string_view site) const;
  double probability(std::string_view site) const;
  /// Draws consumed at the site so far.
  std::uint64_t draws(std::string_view site) const;

  /// One Bernoulli draw at `site`. Unarmed/disabled sites never fire and
  /// consume no draw.
  bool should_fail(std::string_view site);

  std::uint64_t seed() const { return seed_; }

  /// Seed from the DPC_FAULT_SEED environment variable (decimal), or
  /// `fallback` when unset/unparsable — how the CI chaos stage sweeps seeds.
  static std::uint64_t seed_from_env(std::uint64_t fallback = 0x5eed);

 private:
  struct Site {
    double p = 0.0;
    bool enabled = true;
    std::uint64_t name_hash = 0;
    std::atomic<std::uint64_t> draws{0};
  };

  Site* find(std::string_view site) const;

  std::uint64_t seed_;
  obs::Counter* injected_ = nullptr;  // null without a registry
  obs::Counter* checks_ = nullptr;

  mutable std::shared_mutex mu_;
  // unique_ptr values keep Site addresses (and their atomics) stable across
  // rehashes, so should_fail can drop the map lock before drawing.
  std::unordered_map<std::string, std::unique_ptr<Site>> sites_;
};

}  // namespace dpc::fault
