// Retry policy (exponential backoff + deterministic jitter) and a
// circuit breaker — the two recovery primitives every layer shares.
//
// Both are modelled-time constructs: backoff returns a sim::Nanos charge the
// caller folds into the op's cost, and the breaker probes on a gated-call
// count rather than wall-clock, so recovery behaviour is deterministic and
// testable without sleeping.
#pragma once

#include <cstdint>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace dpc::fault {

/// What kind of transient condition made an op fail (or retry). Carried on
/// results so callers can distinguish "retry later" from hard errors.
enum class Transient : std::uint8_t {
  kNone = 0,     // not a transient failure
  kTimeout,      // deadline expired (possibly after retries)
  kUnavailable,  // backend fast-failed (circuit open)
  kBusy,         // resource contention (e.g. delegation recall refused)
};

constexpr std::string_view to_string(Transient t) {
  switch (t) {
    case Transient::kNone: return "none";
    case Transient::kTimeout: return "timeout";
    case Transient::kUnavailable: return "unavailable";
    case Transient::kBusy: return "busy";
  }
  return "?";
}

/// Deterministic jitter: scales `base` by uniform [1-j/2, 1+j/2] drawn from
/// a pure hash of (step, salt). The one jitter derivation shared by every
/// pacer — RetryPolicy::backoff and the scrubber's inter-pass spacing —
/// instead of each call site re-rolling its own hash.
sim::Nanos jittered(sim::Nanos base, double jitter, int step,
                    std::uint64_t salt);

/// Bounded exponential backoff with deterministic jitter. Stateless: the
/// jitter for (attempt, salt) is a pure hash, so identical runs charge
/// identical backoff costs.
struct RetryPolicy {
  int max_attempts = 4;                      // total tries, not re-tries
  sim::Nanos base_backoff = sim::micros(50.0);
  double multiplier = 2.0;
  double jitter = 0.5;  // backoff scaled by uniform [1-j/2, 1+j/2]

  /// Modelled wait before try `attempt` (1-based count of *failed* tries so
  /// far). `salt` decorrelates concurrent retriers (use a cid, ino, …).
  sim::Nanos backoff(int attempt, std::uint64_t salt) const;
};

/// Per-backend circuit breaker: Closed → (threshold consecutive failures) →
/// Open → (every probe_interval-th gated call probes) → HalfOpen →
/// success closes / failure reopens. Probing is op-count based so the
/// breaker works in modelled time.
///
/// Half-open is *single-probe*: allow() grants exactly one caller the probe
/// and remembers its thread; everyone else fast-fails until that probe's own
/// on_success/on_failure resolves the state. Without the ownership check a
/// straggler's on_failure — a slow attempt admitted before the breaker
/// opened, reporting in mid-probe — would flip HalfOpen back to Open and
/// re-arm the gated-call counter, admitting a second concurrent probe (and a
/// straggler's success could close the breaker on evidence that predates the
/// outage). A probe owner that never reports (crashed mid-attempt) would
/// wedge the breaker half-open forever, so after probe_interval fast-fails
/// with no resolution the next gated call may take the probe over.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Config {
    int failure_threshold = 8;  // consecutive failures before opening
    int probe_interval = 16;    // while open, let every Nth call through
  };

  /// `gauge_name` is the registry gauge mirroring the breaker's state
  /// (0 = closed, 1 = open, 2 = half-open) so BENCH snapshots show where
  /// the breaker sat when the json was cut, not just the open/close edge
  /// counts. Like the counters it is shared by name across instances.
  CircuitBreaker() : CircuitBreaker(Config{}) {}
  explicit CircuitBreaker(Config cfg, obs::Registry* registry = nullptr,
                          std::string_view gauge_name = "breaker/state");

  /// True if the caller may attempt the operation; false = fast-fail.
  bool allow();
  void on_success();
  void on_failure();

  State state() const;
  std::uint64_t consecutive_failures() const;

 private:
  Config cfg_;
  mutable sim::AnnotatedMutex mu_{"fault.breaker", sim::LockRank::kLeaf};
  State state_ GUARDED_BY(mu_) = State::kClosed;
  // consecutive failures (reset on success) / calls gated while open
  std::uint64_t failures_ GUARDED_BY(mu_) = 0;
  std::uint64_t gated_calls_ GUARDED_BY(mu_) = 0;
  // Half-open probe ownership: while a probe is in flight only its owning
  // thread may resolve the half-open state (see class comment).
  bool probe_inflight_ GUARDED_BY(mu_) = false;
  std::thread::id probe_owner_ GUARDED_BY(mu_);
  std::uint64_t halfopen_fast_fails_ GUARDED_BY(mu_) = 0;

  // Registry counters are shared across breaker instances by name — the
  // acceptance criterion reads the aggregate "breaker/opens".
  obs::Counter* opens_ = nullptr;
  obs::Counter* closes_ = nullptr;
  obs::Counter* probes_ = nullptr;
  obs::Counter* fast_fails_ = nullptr;
  obs::Gauge* state_gauge_ = nullptr;
};

}  // namespace dpc::fault
