// Per-peer gray-failure scoreboard (DESIGN.md §5l "Gray-failure model").
//
// A HealthBoard watches one *group* of peers (the data servers, the MDS
// cluster, a remote KV store) and keeps, per peer, an EWMA and a streaming
// quantile of observed service latency. Three consumers hang off it:
//
//   * adaptive deadlines — deadline() scales the healthy cohort's observed
//     p99 (floor/ceiling clamped) and replaces the fixed timeout constants
//     in the retry paths, so "how long to wait before declaring an attempt
//     dead" tracks what the cluster actually delivers;
//   * slow-peer quarantine — the CircuitBreaker generalized from up/down to
//     slow/healthy: a peer whose EWMA stays a configured ratio above the
//     group median (or that keeps timing out) is quarantined, callers route
//     around it, and every Nth suppressed access probes it for reintegration;
//   * hedged reads — hedge_delay() says how long a read may lag the healthy
//     p99 before speculating, and the hedge token budget caps speculation at
//     a fraction of primary reads so the cure cannot become an overload.
//
// Like the rest of src/fault this is a modelled-time construct: latencies
// are sim::Nanos charges, probing is access-count based, and every decision
// is a pure function of the observation stream — deterministic under a
// fixed fault seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace dpc::fault {

struct HealthConfig {
  /// EWMA smoothing factor for per-peer observed latency.
  double ewma_alpha = 0.25;

  /// deadline() = clamp(deadline_scale × healthy-cohort p99, floor, ceiling).
  double deadline_scale = 3.0;
  sim::Nanos deadline_floor = sim::micros(150.0);
  sim::Nanos deadline_ceiling = sim::millis(20.0);

  /// hedge_delay() = clamp(hedge_scale × healthy-cohort p99, floor, the
  /// deadline ceiling). The floor sits far below the deadline floor: hedging
  /// fires on "lagging the cohort", long before "declared dead".
  double hedge_scale = 1.5;
  sim::Nanos hedge_floor = sim::micros(20.0);

  /// Quarantine trigger: a peer strikes when an observation times out, or —
  /// with ≥ 4 peers, where a median is meaningful — when its EWMA exceeds
  /// slow_ratio × the group median EWMA. `slow_strikes` consecutive strikes
  /// quarantine the peer.
  double slow_ratio = 4.0;
  int slow_strikes = 6;
  /// While quarantined, every probe_interval-th suppressed access is let
  /// through as a probe (CircuitBreaker's op-count probing, slow-tier).
  int probe_interval = 8;
  /// Consecutive healthy probes required to reintegrate.
  int reintegrate_successes = 3;

  /// Hedge token budget: each primary read earns `hedge_budget` tokens and
  /// each speculative read spends one, so speculation is capped at this
  /// fraction of primary reads. 0 disables hedging outright.
  double hedge_budget = 0.10;
  /// Token cap — a long healthy stretch must not bank an unbounded burst.
  double hedge_token_cap = 16.0;

  /// Streaming-quantile ring: per-peer window of recent observations, with
  /// the cached p99 recomputed every `quantile_refresh` records.
  int quantile_window = 128;
  int quantile_refresh = 8;
};

class HealthBoard {
 public:
  /// `group` prefixes the board's metrics ("health/<group><peer>/…"); the
  /// registry (optional) hosts per-peer score/EWMA gauges plus quarantine /
  /// reintegration / probe counters.
  HealthBoard(std::string_view group, int peers, HealthConfig cfg = {},
              obs::Registry* registry = nullptr);

  int peers() const { return static_cast<int>(peers_v_.size()); }
  const HealthConfig& config() const { return cfg_; }

  /// Feeds one observed access: `observed` is the modelled service latency
  /// the caller experienced, `ok` false means the attempt timed out at its
  /// deadline (observed is then the censored wait, not true service time).
  /// Integrity failures are NOT timeouts — corrupt-but-timely answers must
  /// be recorded ok=true so bit-rot cannot masquerade as slowness.
  void record(int peer, sim::Nanos observed, bool ok);

  /// Current adaptive deadline: scaled healthy-cohort p99, clamped. Falls
  /// back to the ceiling when nothing has been observed yet (be generous
  /// until measured — a cold start must not fail healthy ops).
  sim::Nanos deadline() const;
  /// Adaptive hedge trigger: how far an in-flight read may lag before
  /// speculative shards launch.
  sim::Nanos hedge_delay() const;

  /// Relative health in (0, 1]: 1 = at or faster than the group median,
  /// approaching 0 the slower the peer, exactly 0 while quarantined.
  double score(int peer) const;
  sim::Nanos ewma(int peer) const;
  sim::Nanos p99(int peer) const;
  bool quarantined(int peer) const;

  /// Routing gate: true = use the peer. While quarantined, every
  /// probe_interval-th call returns true as a reintegration probe.
  bool allow(int peer);

  /// Peer indices ordered healthiest-first (quarantined peers last);
  /// deterministic tie-break by index.
  std::vector<int> ranked() const;

  /// Hedge budget: each primary read earns budget…
  void note_primary(int reads = 1);
  /// …each speculative read spends it. False = budget exhausted (the caller
  /// must wait out the slow peer instead of hedging).
  bool try_hedge(int reads = 1);

  std::uint64_t quarantines() const;
  std::uint64_t reintegrations() const;

 private:
  struct Peer {
    double ewma_ns = -1.0;  // < 0: no data yet
    std::vector<std::int64_t> ring;
    int ring_pos = 0;
    int ring_count = 0;
    int since_refresh = 0;
    std::int64_t cached_p99_ns = 0;  // 0: no data yet
    int strikes = 0;
    bool quarantined = false;
    std::uint64_t suppressed = 0;  // accesses gated since quarantine
    int probe_successes = 0;
  };

  double median_healthy_ewma_locked() const REQUIRES(mu_);
  std::int64_t cohort_p99_locked() const REQUIRES(mu_);
  void refresh_p99_locked(Peer& p) REQUIRES(mu_);
  void publish_peer_locked(int peer) REQUIRES(mu_);

  HealthConfig cfg_;
  std::string group_;
  mutable sim::AnnotatedMutex mu_{"fault.health", sim::LockRank::kLeaf};
  std::vector<Peer> peers_v_ GUARDED_BY(mu_);
  double hedge_tokens_ GUARDED_BY(mu_) = 0.0;
  std::uint64_t quarantines_n_ GUARDED_BY(mu_) = 0;
  std::uint64_t reintegrations_n_ GUARDED_BY(mu_) = 0;

  // Registry metrics (null without a registry). Per-peer gauges resolved
  // once at construction — the resolve-once rule for hot paths.
  std::vector<obs::Gauge*> score_gauges_;
  std::vector<obs::Gauge*> ewma_gauges_;
  obs::Counter* quarantines_ctr_ = nullptr;
  obs::Counter* reintegrations_ctr_ = nullptr;
  obs::Counter* probes_ctr_ = nullptr;
};

}  // namespace dpc::fault
