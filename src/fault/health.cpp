#include "fault/health.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace dpc::fault {

namespace {

std::int64_t clamp_ns(double v, sim::Nanos lo, sim::Nanos hi) {
  const auto n = static_cast<std::int64_t>(v);
  return std::clamp(n, lo.ns, hi.ns);
}

}  // namespace

HealthBoard::HealthBoard(std::string_view group, int peers, HealthConfig cfg,
                         obs::Registry* registry)
    : cfg_(cfg), group_(group) {
  DPC_CHECK(peers >= 1);
  DPC_CHECK(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0);
  DPC_CHECK(cfg_.deadline_floor.ns <= cfg_.deadline_ceiling.ns);
  DPC_CHECK(cfg_.slow_strikes >= 1);
  DPC_CHECK(cfg_.probe_interval >= 1);
  DPC_CHECK(cfg_.reintegrate_successes >= 1);
  DPC_CHECK(cfg_.quantile_window >= 2);
  DPC_CHECK(cfg_.quantile_refresh >= 1);
  peers_v_.resize(static_cast<std::size_t>(peers));
  for (auto& p : peers_v_)
    p.ring.resize(static_cast<std::size_t>(cfg_.quantile_window));
  if (registry != nullptr) {
    score_gauges_.reserve(static_cast<std::size_t>(peers));
    ewma_gauges_.reserve(static_cast<std::size_t>(peers));
    for (int i = 0; i < peers; ++i) {
      const std::string stem =
          "health/" + group_ + std::to_string(i);
      score_gauges_.push_back(&registry->gauge(stem + "/score_milli"));
      score_gauges_.back()->set(1000);  // unmeasured = presumed healthy
      ewma_gauges_.push_back(&registry->gauge(stem + "/ewma_ns"));
    }
    quarantines_ctr_ =
        &registry->counter("health/" + group_ + "/quarantines");
    reintegrations_ctr_ =
        &registry->counter("health/" + group_ + "/reintegrations");
    probes_ctr_ = &registry->counter("health/" + group_ + "/probes");
  }
}

void HealthBoard::refresh_p99_locked(Peer& p) {
  if (p.ring_count == 0) return;
  // "Streaming quantile": bounded ring of recent observations, p99 read by
  // selection. Deterministic and windowed — exactly what an adaptive
  // deadline wants (old regimes age out as the window slides).
  std::vector<std::int64_t> tmp(p.ring.begin(),
                                p.ring.begin() + p.ring_count);
  const auto idx = static_cast<std::size_t>(
      static_cast<double>(p.ring_count - 1) * 0.99);
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(idx),
                   tmp.end());
  p.cached_p99_ns = tmp[idx];
}

double HealthBoard::median_healthy_ewma_locked() const {
  std::vector<double> vals;
  vals.reserve(peers_v_.size());
  for (const Peer& p : peers_v_)
    if (!p.quarantined && p.ewma_ns >= 0.0) vals.push_back(p.ewma_ns);
  if (vals.empty()) return -1.0;
  const auto mid = vals.size() / 2;
  std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(mid),
                   vals.end());
  return vals[mid];
}

std::int64_t HealthBoard::cohort_p99_locked() const {
  // The healthy cohort's p99: median of the non-quarantined peers' cached
  // p99s. The median (not max) keeps one not-yet-quarantined limper from
  // dragging the deadline out to its own tail — the cohort defines what an
  // access "should" take.
  std::vector<std::int64_t> vals;
  vals.reserve(peers_v_.size());
  for (const Peer& p : peers_v_)
    if (!p.quarantined && p.cached_p99_ns > 0) vals.push_back(p.cached_p99_ns);
  if (vals.empty()) {
    for (const Peer& p : peers_v_)
      if (p.cached_p99_ns > 0) vals.push_back(p.cached_p99_ns);
  }
  if (vals.empty()) return 0;
  const auto mid = vals.size() / 2;
  std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(mid),
                   vals.end());
  return vals[mid];
}

void HealthBoard::publish_peer_locked(int peer) {
  if (score_gauges_.empty()) return;
  const Peer& p = peers_v_[static_cast<std::size_t>(peer)];
  double s = 1.0;
  if (p.quarantined) {
    s = 0.0;
  } else if (p.ewma_ns > 0.0) {
    const double med = median_healthy_ewma_locked();
    if (med > 0.0) s = std::min(1.0, med / p.ewma_ns);
  }
  score_gauges_[static_cast<std::size_t>(peer)]->set(
      static_cast<std::int64_t>(s * 1000.0));
  ewma_gauges_[static_cast<std::size_t>(peer)]->set(
      p.ewma_ns < 0.0 ? 0 : static_cast<std::int64_t>(p.ewma_ns));
}

void HealthBoard::record(int peer, sim::Nanos observed, bool ok) {
  sim::LockGuard lock(mu_);
  Peer& p = peers_v_[static_cast<std::size_t>(peer)];
  const auto obs = static_cast<double>(observed.ns);
  // Only *completed* observations feed the latency statistics. A censored
  // timeout is recorded at the deadline that cut it — pushing that into the
  // window would feed the deadline its own output: p99 → deadline →
  // 3×deadline on the next refresh, unbounded, until the very stalls the
  // deadline exists to cut fit under it. Timeouts drive strikes/quarantine
  // below; the latency window keeps describing the healthy regime.
  if (ok) {
    p.ewma_ns = p.ewma_ns < 0.0
                    ? obs
                    : cfg_.ewma_alpha * obs +
                          (1.0 - cfg_.ewma_alpha) * p.ewma_ns;
    p.ring[static_cast<std::size_t>(p.ring_pos)] = observed.ns;
    p.ring_pos = (p.ring_pos + 1) % cfg_.quantile_window;
    p.ring_count = std::min(p.ring_count + 1, cfg_.quantile_window);
    if (++p.since_refresh >= cfg_.quantile_refresh || p.cached_p99_ns == 0) {
      p.since_refresh = 0;
      refresh_p99_locked(p);
    }
  }

  if (p.quarantined) {
    // Only probes reach a quarantined peer, so this observation is the
    // probe's verdict.
    p.probe_successes = ok ? p.probe_successes + 1 : 0;
    if (p.probe_successes >= cfg_.reintegrate_successes) {
      p.quarantined = false;
      p.strikes = 0;
      p.suppressed = 0;
      p.probe_successes = 0;
      // Drop the limp-era window: the reintegrated peer's deadline/score
      // must reflect its probed (healthy) latency, not its quarantined past.
      p.ring[0] = observed.ns;
      p.ring_pos = 1 % cfg_.quantile_window;
      p.ring_count = 1;
      p.since_refresh = 0;
      p.cached_p99_ns = observed.ns;
      p.ewma_ns = obs;
      ++reintegrations_n_;
      if (reintegrations_ctr_ != nullptr) reintegrations_ctr_->add();
    }
  } else {
    bool suspect = !ok;
    if (ok && peers_v_.size() >= 4) {
      // With a cohort to compare against, sustained relative slowness
      // strikes even when every access completes inside the deadline.
      const double med = median_healthy_ewma_locked();
      suspect = med > 0.0 && p.ewma_ns > cfg_.slow_ratio * med;
    }
    p.strikes = suspect ? p.strikes + 1 : 0;
    if (p.strikes >= cfg_.slow_strikes) {
      p.quarantined = true;
      p.suppressed = 0;
      p.probe_successes = 0;
      ++quarantines_n_;
      if (quarantines_ctr_ != nullptr) quarantines_ctr_->add();
    }
  }
  publish_peer_locked(peer);
}

sim::Nanos HealthBoard::deadline() const {
  sim::LockGuard lock(mu_);
  const std::int64_t q = cohort_p99_locked();
  if (q == 0) return cfg_.deadline_ceiling;  // unmeasured: be generous
  return sim::Nanos{clamp_ns(cfg_.deadline_scale * static_cast<double>(q),
                             cfg_.deadline_floor, cfg_.deadline_ceiling)};
}

sim::Nanos HealthBoard::hedge_delay() const {
  sim::LockGuard lock(mu_);
  const std::int64_t q = cohort_p99_locked();
  if (q == 0) return cfg_.deadline_ceiling;
  return sim::Nanos{clamp_ns(cfg_.hedge_scale * static_cast<double>(q),
                             cfg_.hedge_floor, cfg_.deadline_ceiling)};
}

double HealthBoard::score(int peer) const {
  sim::LockGuard lock(mu_);
  const Peer& p = peers_v_[static_cast<std::size_t>(peer)];
  if (p.quarantined) return 0.0;
  if (p.ewma_ns <= 0.0) return 1.0;
  const double med = median_healthy_ewma_locked();
  if (med <= 0.0) return 1.0;
  return std::min(1.0, med / p.ewma_ns);
}

sim::Nanos HealthBoard::ewma(int peer) const {
  sim::LockGuard lock(mu_);
  const Peer& p = peers_v_[static_cast<std::size_t>(peer)];
  return sim::Nanos{p.ewma_ns < 0.0 ? 0
                                    : static_cast<std::int64_t>(p.ewma_ns)};
}

sim::Nanos HealthBoard::p99(int peer) const {
  sim::LockGuard lock(mu_);
  return sim::Nanos{peers_v_[static_cast<std::size_t>(peer)].cached_p99_ns};
}

bool HealthBoard::quarantined(int peer) const {
  sim::LockGuard lock(mu_);
  return peers_v_[static_cast<std::size_t>(peer)].quarantined;
}

bool HealthBoard::allow(int peer) {
  sim::LockGuard lock(mu_);
  Peer& p = peers_v_[static_cast<std::size_t>(peer)];
  if (!p.quarantined) return true;
  const std::uint64_t n = ++p.suppressed;
  if (n % static_cast<std::uint64_t>(cfg_.probe_interval) == 0) {
    if (probes_ctr_ != nullptr) probes_ctr_->add();
    return true;  // reintegration probe
  }
  return false;
}

std::vector<int> HealthBoard::ranked() const {
  sim::LockGuard lock(mu_);
  std::vector<int> order(peers_v_.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const Peer& pa = peers_v_[static_cast<std::size_t>(a)];
    const Peer& pb = peers_v_[static_cast<std::size_t>(b)];
    if (pa.quarantined != pb.quarantined) return !pa.quarantined;
    // Unmeasured peers (ewma < 0) sort as fast — give them traffic so they
    // get measured.
    const double ea = pa.ewma_ns < 0.0 ? 0.0 : pa.ewma_ns;
    const double eb = pb.ewma_ns < 0.0 ? 0.0 : pb.ewma_ns;
    return ea < eb;
  });
  return order;
}

void HealthBoard::note_primary(int reads) {
  sim::LockGuard lock(mu_);
  hedge_tokens_ = std::min(cfg_.hedge_token_cap,
                           hedge_tokens_ + cfg_.hedge_budget * reads);
}

bool HealthBoard::try_hedge(int reads) {
  sim::LockGuard lock(mu_);
  if (hedge_tokens_ < static_cast<double>(reads)) return false;
  hedge_tokens_ -= static_cast<double>(reads);
  return true;
}

std::uint64_t HealthBoard::quarantines() const {
  sim::LockGuard lock(mu_);
  return quarantines_n_;
}

std::uint64_t HealthBoard::reintegrations() const {
  sim::LockGuard lock(mu_);
  return reintegrations_n_;
}

}  // namespace dpc::fault
