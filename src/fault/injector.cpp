#include "fault/injector.hpp"

#include <cstdlib>

#include "sim/check.hpp"
#include "sim/rng.hpp"

namespace dpc::fault {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Uniform double in [0, 1) from (seed, site, draw index) — stateless, so
/// the schedule is a pure function of the three inputs. `entropy_out`
/// (optional) receives a third splitmix round: independent bits from the
/// same tuple, used by corruption sites to choose what to damage.
double draw_uniform(std::uint64_t seed, std::uint64_t site_hash,
                    std::uint64_t idx,
                    std::uint64_t* entropy_out = nullptr) {
  std::uint64_t x = seed ^ site_hash ^ (idx * 0x9e3779b97f4a7c15ULL);
  (void)sim::detail::splitmix64(x);  // two rounds for avalanche
  const std::uint64_t z = sim::detail::splitmix64(x);
  if (entropy_out != nullptr) *entropy_out = sim::detail::splitmix64(x);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed, obs::Registry* registry)
    : seed_(seed) {
  if (registry != nullptr) {
    injected_ = &registry->counter("fault/injected");
    checks_ = &registry->counter("fault/checks");
    crashes_ = &registry->counter("fault/crashes");
    slow_injected_ = &registry->counter("fault/slow_injected");
  }
}

void FaultInjector::arm(std::string_view site, double probability) {
  DPC_CHECK(probability >= 0.0 && probability <= 1.0);
  sim::LockGuard lock(mu_);
  auto& slot = sites_[std::string(site)];
  if (slot == nullptr) {
    slot = std::make_unique<Site>();
    slot->name_hash = fnv1a(site);
  }
  slot->p = probability;
  slot->enabled = true;
}

void FaultInjector::disarm(std::string_view site) {
  sim::LockGuard lock(mu_);
  sites_.erase(std::string(site));
}

void FaultInjector::set_enabled(std::string_view site, bool enabled) {
  sim::LockGuard lock(mu_);
  const auto it = sites_.find(std::string(site));
  if (it != sites_.end()) it->second->enabled = enabled;
}

FaultInjector::Site* FaultInjector::find(std::string_view site) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = sites_.find(std::string(site));
  return it == sites_.end() ? nullptr : it->second.get();
}

bool FaultInjector::armed(std::string_view site) const {
  const Site* s = find(site);
  return s != nullptr && s->enabled;
}

double FaultInjector::probability(std::string_view site) const {
  const Site* s = find(site);
  return s == nullptr ? 0.0 : s->p;
}

std::uint64_t FaultInjector::draws(std::string_view site) const {
  const Site* s = find(site);
  return s == nullptr ? 0 : s->draws.load(std::memory_order_relaxed);
}

bool FaultInjector::should_fail(std::string_view site) {
  return should_fail(site, nullptr);
}

bool FaultInjector::should_fail(std::string_view site,
                                std::uint64_t* entropy_out) {
  Site* s = find(site);
  if (s == nullptr || !s->enabled || s->p <= 0.0) return false;
  const std::uint64_t idx = s->draws.fetch_add(1, std::memory_order_relaxed);
  if (checks_ != nullptr) checks_->add();
  std::uint64_t entropy = 0;
  if (draw_uniform(seed_, s->name_hash, idx, &entropy) >= s->p) return false;
  if (entropy_out != nullptr) *entropy_out = entropy;
  if (injected_ != nullptr) injected_->add();
  return true;
}

void FaultInjector::arm_slow(std::string_view site, const SlowSpec& spec) {
  DPC_CHECK(spec.multiplier >= 1.0);
  DPC_CHECK(spec.stall_probability >= 0.0 && spec.stall_probability <= 1.0);
  DPC_CHECK(spec.stall.ns >= 0);
  sim::LockGuard lock(mu_);
  auto& slot = slow_sites_[std::string(site)];
  if (slot == nullptr) {
    slot = std::make_unique<SlowSite>();
    slot->name_hash = fnv1a(site);
  }
  slot->spec = spec;
  slot->enabled = true;
  slot->draws.store(0, std::memory_order_relaxed);
}

void FaultInjector::disarm_slow(std::string_view site) {
  sim::LockGuard lock(mu_);
  slow_sites_.erase(std::string(site));
}

FaultInjector::SlowSite* FaultInjector::find_slow(
    std::string_view site) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = slow_sites_.find(std::string(site));
  return it == slow_sites_.end() ? nullptr : it->second.get();
}

bool FaultInjector::slow_armed(std::string_view site) const {
  const SlowSite* s = find_slow(site);
  return s != nullptr && s->enabled;
}

sim::Nanos FaultInjector::slow_penalty(std::string_view site, int peer,
                                       sim::Nanos base) {
  SlowSite* s = find_slow(site);
  if (s == nullptr || !s->enabled) return {};
  if (s->spec.peer >= 0 && s->spec.peer != peer) return {};
  sim::Nanos extra{};
  if (s->spec.multiplier > 1.0) {
    extra.ns += static_cast<std::int64_t>((s->spec.multiplier - 1.0) *
                                          static_cast<double>(base.ns));
  }
  if (s->spec.stall.ns > 0 && s->spec.stall_probability > 0.0) {
    const std::uint64_t idx =
        s->draws.fetch_add(1, std::memory_order_relaxed);
    if (draw_uniform(seed_, s->name_hash, idx) < s->spec.stall_probability)
      extra += s->spec.stall;
  }
  if (extra.ns > 0 && slow_injected_ != nullptr) slow_injected_->add();
  return extra;
}

void FaultInjector::arm_crash(std::string_view site, std::uint64_t skip) {
  sim::LockGuard lock(mu_);
  auto& slot = crash_sites_[std::string(site)];
  if (slot == nullptr) slot = std::make_unique<CrashSite>();
  slot->skip = skip;
  slot->arrivals.store(0, std::memory_order_relaxed);
  slot->armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm_crash(std::string_view site) {
  sim::LockGuard lock(mu_);
  crash_sites_.erase(std::string(site));
}

FaultInjector::CrashSite* FaultInjector::find_crash(
    std::string_view site) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = crash_sites_.find(std::string(site));
  return it == crash_sites_.end() ? nullptr : it->second.get();
}

bool FaultInjector::at_crash_point(std::string_view site) {
  if (crashed_.load(std::memory_order_acquire)) return false;
  CrashSite* s = find_crash(site);
  if (s == nullptr || !s->armed.load(std::memory_order_acquire)) return false;
  const std::uint64_t n = s->arrivals.fetch_add(1, std::memory_order_relaxed);
  if (n < s->skip) return false;
  // One-shot: the first arrival past the skip count wins; racers lose.
  bool expected = true;
  if (!s->armed.compare_exchange_strong(expected, false,
                                        std::memory_order_acq_rel))
    return false;
  crashed_.store(true, std::memory_order_release);
  if (crashes_ != nullptr) crashes_->add();
  return true;
}

std::uint64_t FaultInjector::crash_arrivals(std::string_view site) const {
  const CrashSite* s = find_crash(site);
  return s == nullptr ? 0 : s->arrivals.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::seed_from_env(std::uint64_t fallback) {
  const char* v = std::getenv("DPC_FAULT_SEED");
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace dpc::fault
