#include "fault/retry.hpp"

#include "sim/check.hpp"
#include "sim/rng.hpp"

namespace dpc::fault {

sim::Nanos RetryPolicy::backoff(int attempt, std::uint64_t salt) const {
  DPC_CHECK(attempt >= 1);
  double b = static_cast<double>(base_backoff.ns);
  for (int i = 1; i < attempt; ++i) b *= multiplier;
  if (jitter > 0.0) {
    std::uint64_t x = salt ^ (0xa0761d6478bd642fULL * static_cast<std::uint64_t>(attempt));
    const std::uint64_t z = sim::detail::splitmix64(x);
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
    b *= 1.0 + jitter * (u - 0.5);
  }
  return sim::Nanos{static_cast<std::int64_t>(b)};
}

CircuitBreaker::CircuitBreaker(Config cfg, obs::Registry* registry)
    : cfg_(cfg) {
  DPC_CHECK(cfg_.failure_threshold >= 1);
  DPC_CHECK(cfg_.probe_interval >= 1);
  if (registry != nullptr) {
    opens_ = &registry->counter("breaker/opens");
    closes_ = &registry->counter("breaker/closes");
    probes_ = &registry->counter("breaker/probes");
    fast_fails_ = &registry->counter("breaker/fast_fails");
  }
}

bool CircuitBreaker::allow() {
  sim::LockGuard lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      // Let every probe_interval-th gated call through as a probe; the rest
      // fast-fail so a dead backend doesn't eat full timeouts per op.
      const std::uint64_t n = ++gated_calls_;
      if (n % static_cast<std::uint64_t>(cfg_.probe_interval) == 0) {
        state_ = State::kHalfOpen;
        if (probes_ != nullptr) probes_->add();
        return true;
      }
      if (fast_fails_ != nullptr) fast_fails_->add();
      return false;
    }
    case State::kHalfOpen:
      // A probe is already in flight; don't pile on.
      if (fast_fails_ != nullptr) fast_fails_->add();
      return false;
  }
  return true;
}

void CircuitBreaker::on_success() {
  sim::LockGuard lock(mu_);
  if (state_ != State::kClosed) {
    state_ = State::kClosed;
    gated_calls_ = 0;
    if (closes_ != nullptr) closes_->add();
  }
  failures_ = 0;
}

void CircuitBreaker::on_failure() {
  sim::LockGuard lock(mu_);
  ++failures_;
  if (state_ == State::kHalfOpen) {
    state_ = State::kOpen;  // probe failed: stay open, no new open event
    return;
  }
  if (state_ == State::kClosed &&
      failures_ >= static_cast<std::uint64_t>(cfg_.failure_threshold)) {
    state_ = State::kOpen;
    gated_calls_ = 0;
    if (opens_ != nullptr) opens_->add();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  sim::LockGuard lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::consecutive_failures() const {
  sim::LockGuard lock(mu_);
  return failures_;
}

}  // namespace dpc::fault
