#include "fault/retry.hpp"

#include "sim/check.hpp"
#include "sim/rng.hpp"

namespace dpc::fault {

sim::Nanos jittered(sim::Nanos base, double jitter, int step,
                    std::uint64_t salt) {
  if (jitter <= 0.0) return base;
  std::uint64_t x =
      salt ^ (0xa0761d6478bd642fULL * static_cast<std::uint64_t>(step));
  const std::uint64_t z = sim::detail::splitmix64(x);
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
  const double b = static_cast<double>(base.ns) * (1.0 + jitter * (u - 0.5));
  sim::Nanos out{static_cast<std::int64_t>(b)};
  // A positive base must yield a positive wait: a large jitter factor can
  // scale the draw into (-inf, 1) and the truncation rounds it to zero (or
  // below), which would turn a backoff/pacer into a busy spin.
  if (base.ns > 0 && out.ns < 1) out.ns = 1;
  return out;
}

sim::Nanos RetryPolicy::backoff(int attempt, std::uint64_t salt) const {
  DPC_CHECK(attempt >= 1);
  double b = static_cast<double>(base_backoff.ns);
  for (int i = 1; i < attempt; ++i) b *= multiplier;
  return jittered(sim::Nanos{static_cast<std::int64_t>(b)}, jitter, attempt,
                  salt);
}

CircuitBreaker::CircuitBreaker(Config cfg, obs::Registry* registry,
                               std::string_view gauge_name)
    : cfg_(cfg) {
  DPC_CHECK(cfg_.failure_threshold >= 1);
  DPC_CHECK(cfg_.probe_interval >= 1);
  if (registry != nullptr) {
    opens_ = &registry->counter("breaker/opens");
    closes_ = &registry->counter("breaker/closes");
    probes_ = &registry->counter("breaker/probes");
    fast_fails_ = &registry->counter("breaker/fast_fails");
    state_gauge_ = &registry->gauge(gauge_name);
    state_gauge_->set(static_cast<std::int64_t>(State::kClosed));
  }
}

bool CircuitBreaker::allow() {
  sim::LockGuard lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      // Let every probe_interval-th gated call through as a probe; the rest
      // fast-fail so a dead backend doesn't eat full timeouts per op.
      const std::uint64_t n = ++gated_calls_;
      if (n % static_cast<std::uint64_t>(cfg_.probe_interval) == 0) {
        state_ = State::kHalfOpen;
        probe_inflight_ = true;
        probe_owner_ = std::this_thread::get_id();
        halfopen_fast_fails_ = 0;
        if (probes_ != nullptr) probes_->add();
        if (state_gauge_ != nullptr)
          state_gauge_->set(static_cast<std::int64_t>(state_));
        return true;
      }
      if (fast_fails_ != nullptr) fast_fails_->add();
      return false;
    }
    case State::kHalfOpen:
      // A probe is in flight; don't pile on. If its owner has gone quiet
      // for a full probe interval (crashed mid-attempt), take the probe
      // over — the original owner's late report becomes a straggler.
      if (probe_inflight_ &&
          ++halfopen_fast_fails_ >
              static_cast<std::uint64_t>(cfg_.probe_interval)) {
        probe_owner_ = std::this_thread::get_id();
        halfopen_fast_fails_ = 0;
        if (probes_ != nullptr) probes_->add();
        return true;
      }
      if (fast_fails_ != nullptr) fast_fails_->add();
      return false;
  }
  return true;
}

void CircuitBreaker::on_success() {
  sim::LockGuard lock(mu_);
  if (probe_inflight_) {
    if (probe_owner_ != std::this_thread::get_id()) {
      // Straggler: an attempt admitted before the breaker opened, reporting
      // mid-probe. Its evidence predates the outage — it must not close the
      // breaker out from under the probe.
      failures_ = 0;
      return;
    }
    probe_inflight_ = false;
    halfopen_fast_fails_ = 0;
  }
  if (state_ != State::kClosed) {
    state_ = State::kClosed;
    gated_calls_ = 0;
    if (closes_ != nullptr) closes_->add();
    if (state_gauge_ != nullptr)
      state_gauge_->set(static_cast<std::int64_t>(state_));
  }
  failures_ = 0;
}

void CircuitBreaker::on_failure() {
  sim::LockGuard lock(mu_);
  ++failures_;
  if (state_ == State::kHalfOpen) {
    if (probe_inflight_ && probe_owner_ != std::this_thread::get_id())
      return;  // straggler: only the probe's own verdict resolves half-open
    probe_inflight_ = false;
    halfopen_fast_fails_ = 0;
    state_ = State::kOpen;  // probe failed: stay open, no new open event
    if (state_gauge_ != nullptr)
      state_gauge_->set(static_cast<std::int64_t>(state_));
    return;
  }
  if (state_ == State::kClosed &&
      failures_ >= static_cast<std::uint64_t>(cfg_.failure_threshold)) {
    state_ = State::kOpen;
    gated_calls_ = 0;
    if (opens_ != nullptr) opens_->add();
    if (state_gauge_ != nullptr)
      state_gauge_->set(static_cast<std::int64_t>(state_));
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  sim::LockGuard lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::consecutive_failures() const {
  sim::LockGuard lock(mu_);
  return failures_;
}

}  // namespace dpc::fault
