// dpc_check — systematic concurrency model checker for the DPC client's
// core protocols. See src/check/model_sched.hpp for the scheduler and
// src/check/scenarios.cpp for the checked protocols.
//
//   dpc_check                          run every scenario in its default tier
//   dpc_check --list                   list scenarios and their mutations
//   dpc_check --scenario wal_append    run one scenario
//   dpc_check --tier exhaustive|pct    restrict to one tier
//   dpc_check --mutate all|<name>      arm each mutation; FAIL unless the
//                                      paired scenario finds a violation AND
//                                      the printed schedule replays to the
//                                      same violation deterministically
//   dpc_check --replay "0,1,3" --scenario X [--with-mutation]
//                                      replay a printed choice list
//
// Exit codes: 0 = clean; 1 = violation found on unmutated code, an armed
// mutation went uncaught, or a replay diverged; 2 = usage error.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/model_sched.hpp"
#include "check/scenarios.hpp"

namespace dpc::check {
namespace {

struct Cli {
  bool list = false;
  std::string scenario;        // empty = all
  std::string tier = "both";   // exhaustive | pct | both
  std::string mutate;          // empty = off; "all" or a mutation name
  std::string replay;          // comma-separated choice list
  bool with_mutation = false;  // arm the scenario's mutation during --replay
  std::uint64_t max_schedules = 0;  // 0 = per-scenario default
  int max_steps = 0;                // 0 = per-scenario default
  std::uint64_t seeds = 8;
  std::uint64_t seed_base = 1;
  int depth = 3;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: dpc_check [--list] [--scenario NAME] [--tier exhaustive|pct|both]\n"
      "                 [--mutate all|NAME] [--replay CHOICES [--with-mutation]]\n"
      "                 [--max-schedules N] [--max-steps N]\n"
      "                 [--seeds N] [--seed-base N] [--depth N]\n");
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::uint32_t> parse_choices(const std::string& s, bool* ok) {
  std::vector<std::uint32_t> out;
  *ok = true;
  std::size_t pos = 0;
  while (pos < s.size()) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s.c_str() + pos, &end, 10);
    if (end == s.c_str() + pos) {
      *ok = false;
      return out;
    }
    out.push_back(static_cast<std::uint32_t>(v));
    pos = static_cast<std::size_t>(end - s.c_str());
    if (pos < s.size()) {
      if (s[pos] != ',') {
        *ok = false;
        return out;
      }
      ++pos;
    }
  }
  return out;
}

std::string choices_csv(const std::vector<std::uint32_t>& c) {
  std::string out;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(c[i]);
  }
  return out;
}

void print_violation(const Scenario& sc, const Violation& v,
                     std::uint64_t seed, bool pct, bool mutated = false) {
  std::printf("VIOLATION in %s: %s\n", sc.name, v.message.c_str());
  if (pct) std::printf("  found by PCT seed %" PRIu64 "\n", seed);
  std::printf("  schedule (%zu steps):\n%s", v.trace.size(),
              ModelSched::format_trace(v.trace).c_str());
  std::printf("  replay with: dpc_check --scenario %s --replay \"%s\"%s\n",
              sc.name, choices_csv(v.choices).c_str(),
              mutated ? " --with-mutation" : "");
}

/// Runs one scenario in its default (or forced) tier with no mutation.
/// Returns true when clean.
bool run_clean(const Scenario& sc, const Cli& cli) {
  const int steps = cli.max_steps > 0 ? cli.max_steps : sc.max_steps;
  const bool want_exhaustive =
      sc.exhaustive && (cli.tier == "exhaustive" || cli.tier == "both");
  const bool want_pct =
      cli.tier == "pct" || (cli.tier == "both" && !sc.exhaustive);

  if (want_exhaustive) {
    const std::uint64_t cap =
        cli.max_schedules > 0 ? cli.max_schedules : sc.max_schedules;
    const auto r = explore_exhaustive(sc.fn, nullptr, cap, steps);
    if (r.violation) {
      print_violation(sc, *r.violation, 0, false);
      return false;
    }
    const bool complete = r.schedules + r.truncated < cap;
    std::printf("ok  %-18s exhaustive: %" PRIu64 " interleavings%s%s\n",
                sc.name, r.schedules,
                r.truncated ? " (+truncated)" : "",
                complete ? " (complete)" : " (CAP HIT — not exhaustive)");
    if (r.truncated > 0)
      std::printf("    %" PRIu64 " schedules hit the %d-step budget\n",
                  r.truncated, steps);
    if (!complete) return false;
  }
  if (want_pct) {
    const auto r = explore_pct(sc.fn, nullptr, cli.seed_base, cli.seeds,
                               cli.depth, steps);
    if (r.violation) {
      print_violation(sc, *r.violation, r.seed, true);
      return false;
    }
    std::printf("ok  %-18s pct: %" PRIu64 " seeds [%" PRIu64 ", %" PRIu64
                ")%s\n",
                sc.name, cli.seeds, cli.seed_base, cli.seed_base + cli.seeds,
                r.truncated ? " (some truncated)" : "");
  }
  return true;
}

/// Arms the scenario's paired mutation: the run MUST find a violation, and
/// replaying its recorded choice list must reproduce it. Returns true when
/// the mutation was caught and the replay matched.
bool run_mutation(const Scenario& sc, const Cli& cli) {
  const int steps = cli.max_steps > 0 ? cli.max_steps : sc.max_steps;
  ExploreResult r;
  if (sc.exhaustive) {
    const std::uint64_t cap =
        cli.max_schedules > 0 ? cli.max_schedules : sc.max_schedules;
    r = explore_exhaustive(sc.fn, sc.mutation, cap, steps);
  } else {
    r = explore_pct(sc.fn, sc.mutation, cli.seed_base, sc.mutate_seeds,
                    cli.depth, steps);
  }
  if (!r.violation) {
    std::printf("FAIL %-18s mutation %s went UNCAUGHT (%" PRIu64
                " schedules, %" PRIu64 " truncated) — the checker is blind "
                "to this protocol\n",
                sc.name, sc.mutation, r.schedules, r.truncated);
    return false;
  }

  // Deterministic replay: the printed choice list alone must reproduce the
  // violation (same failure, same schedule length).
  const auto rep = replay_run(sc.fn, sc.mutation, r.violation->choices, steps);
  if (!rep.violation) {
    std::printf("FAIL %-18s mutation %s caught but the schedule did NOT "
                "replay: nondeterminism in the scenario\n",
                sc.name, sc.mutation);
    print_violation(sc, *r.violation, r.seed, !sc.exhaustive, true);
    return false;
  }
  if (rep.violation->message != r.violation->message) {
    std::printf("FAIL %-18s mutation %s replayed to a DIFFERENT violation:\n"
                "  first:  %s\n  replay: %s\n",
                sc.name, sc.mutation, r.violation->message.c_str(),
                rep.violation->message.c_str());
    return false;
  }
  std::printf("ok  %-18s mutation %s caught after %" PRIu64
              " schedule(s)%s; replayed deterministically (%zu steps, "
              "choices \"%s\")\n",
              sc.name, sc.mutation, r.schedules + r.truncated,
              sc.exhaustive ? "" : " (pct)", r.violation->trace.size(),
              choices_csv(r.violation->choices).c_str());
  return true;
}

int main_impl(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dpc_check: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--list") {
      cli.list = true;
    } else if (a == "--with-mutation") {
      cli.with_mutation = true;
    } else if (a == "--scenario") {
      const char* v = next("--scenario");
      if (v == nullptr) return 2;
      cli.scenario = v;
    } else if (a == "--tier") {
      const char* v = next("--tier");
      if (v == nullptr) return 2;
      cli.tier = v;
      if (cli.tier != "exhaustive" && cli.tier != "pct" &&
          cli.tier != "both") {
        usage();
        return 2;
      }
    } else if (a == "--mutate") {
      const char* v = next("--mutate");
      if (v == nullptr) return 2;
      cli.mutate = v;
    } else if (a == "--replay") {
      const char* v = next("--replay");
      if (v == nullptr) return 2;
      cli.replay = v;
    } else if (a == "--max-schedules") {
      const char* v = next("--max-schedules");
      if (v == nullptr || !parse_u64(v, &cli.max_schedules)) return 2;
    } else if (a == "--max-steps") {
      const char* v = next("--max-steps");
      std::uint64_t tmp = 0;
      if (v == nullptr || !parse_u64(v, &tmp)) return 2;
      cli.max_steps = static_cast<int>(tmp);
    } else if (a == "--seeds") {
      const char* v = next("--seeds");
      if (v == nullptr || !parse_u64(v, &cli.seeds)) return 2;
    } else if (a == "--seed-base") {
      const char* v = next("--seed-base");
      if (v == nullptr || !parse_u64(v, &cli.seed_base)) return 2;
    } else if (a == "--depth") {
      const char* v = next("--depth");
      std::uint64_t tmp = 0;
      if (v == nullptr || !parse_u64(v, &tmp)) return 2;
      cli.depth = static_cast<int>(tmp);
    } else {
      usage();
      return 2;
    }
  }

  if (cli.list) {
    for (const Scenario& s : scenarios()) {
      std::printf("%-18s tier=%-10s mutation=%-20s %s\n", s.name,
                  s.exhaustive ? "exhaustive" : "pct", s.mutation,
                  s.description);
    }
    return 0;
  }

  // Select scenarios.
  std::vector<const Scenario*> selected;
  if (!cli.scenario.empty()) {
    const Scenario* s = find_scenario(cli.scenario);
    if (s == nullptr) {
      std::fprintf(stderr, "dpc_check: unknown scenario '%s'\n",
                   cli.scenario.c_str());
      return 2;
    }
    selected.push_back(s);
  } else {
    for (const Scenario& s : scenarios()) selected.push_back(&s);
  }

  // --replay: one scenario, one recorded choice list.
  if (!cli.replay.empty()) {
    if (selected.size() != 1) {
      std::fprintf(stderr, "dpc_check: --replay needs --scenario\n");
      return 2;
    }
    bool ok = false;
    const auto choices = parse_choices(cli.replay, &ok);
    if (!ok) {
      std::fprintf(stderr, "dpc_check: bad --replay list\n");
      return 2;
    }
    const Scenario& sc = *selected[0];
    const int steps = cli.max_steps > 0 ? cli.max_steps : sc.max_steps;
    const auto r = replay_run(sc.fn, cli.with_mutation ? sc.mutation : nullptr,
                              choices, steps);
    if (r.violation) {
      print_violation(sc, *r.violation, 0, false);
      return 1;
    }
    std::printf("replay of %s: no violation\n", sc.name);
    return 0;
  }

  // --mutate: every armed mutation must be caught + replay deterministically.
  if (!cli.mutate.empty()) {
    bool all_ok = true;
    bool any = false;
    for (const Scenario* s : selected) {
      if (cli.mutate != "all" && cli.mutate != s->mutation) continue;
      any = true;
      all_ok = run_mutation(*s, cli) && all_ok;
    }
    if (!any) {
      std::fprintf(stderr, "dpc_check: no scenario pairs mutation '%s'\n",
                   cli.mutate.c_str());
      return 2;
    }
    return all_ok ? 0 : 1;
  }

  // Default: clean runs.
  bool all_ok = true;
  for (const Scenario* s : selected) {
    if (cli.tier == "exhaustive" && !s->exhaustive) continue;
    all_ok = run_clean(*s, cli) && all_ok;
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace dpc::check

int main(int argc, char** argv) { return dpc::check::main_impl(argc, argv); }
