#include "check/model_sched.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <sstream>

#include "fault/injector.hpp"
#include "sim/check.hpp"
#include "sim/lockrank.hpp"

namespace dpc::check {

namespace {

/// Unwinds a managed thread when the scheduler stops a run (step budget or
/// a violation elsewhere). Deliberately NOT a std::exception so no product
/// catch block can swallow it — only the thread wrapper's catch(...) does.
struct StopRun {};

thread_local ModelSched* tl_sched = nullptr;
thread_local int tl_id = -1;

}  // namespace

ModelSched::ModelSched(Strategy& strategy, Options opts)
    : strategy_(strategy), opts_(opts) {
  hooks_.ctx = this;
  hooks_.managed = &ModelSched::hook_managed;
  hooks_.point = &ModelSched::hook_point;
  hooks_.spin = &ModelSched::hook_spin;
  hooks_.point_noexcept = &ModelSched::hook_point_noexcept;
  hooks_.mutation = &ModelSched::hook_mutation;
  sim::schedhook::install(&hooks_);
}

ModelSched::~ModelSched() {
  {
    std::lock_guard<std::mutex> lk(mu_);  // dpc-lint: ok(raw-mutex, raw-guard) scheduler-internal: sim locks would recurse via schedhook
    stopping_ = true;
  }
  cv_.notify_all();
  for (ThreadState& t : threads_)
    if (t.th.joinable()) t.th.join();
  sim::schedhook::uninstall();
}

bool ModelSched::hook_managed(void* ctx) { return tl_sched == ctx; }

void ModelSched::hook_point(void* ctx, const char* site) {
  static_cast<ModelSched*>(ctx)->yield_to_scheduler(site, /*spinning=*/false,
                                                    /*can_throw=*/true);
}

void ModelSched::hook_spin(void* ctx, const char* site) {
  static_cast<ModelSched*>(ctx)->yield_to_scheduler(site, /*spinning=*/true,
                                                    /*can_throw=*/true);
}

void ModelSched::hook_point_noexcept(void* ctx, const char* site) {
  static_cast<ModelSched*>(ctx)->yield_to_scheduler(site, /*spinning=*/false,
                                                    /*can_throw=*/false);
}

bool ModelSched::hook_mutation(void* ctx, const char* name) {
  auto* self = static_cast<ModelSched*>(ctx);
  return self->opts_.mutation != nullptr &&
         std::strcmp(self->opts_.mutation, name) == 0;
}

void ModelSched::spawn(std::function<void()> body) {
  DPC_CHECK_MSG(!ran_, "spawn() after run()");
  const int id = static_cast<int>(threads_.size());
  threads_.emplace_back();
  ThreadState& t = threads_.back();
  t.th = std::thread([this, id, fn = std::move(body)] {
    tl_sched = this;
    tl_id = id;
    // Park until first granted (or the run is abandoned).
    bool go = false;
    bool crash_now = false;
    {
      std::unique_lock<std::mutex> lk(mu_);  // dpc-lint: ok(raw-mutex, raw-guard) scheduler-internal: sim locks would recurse via schedhook
      cv_.wait(lk, [&] { return token_ == id || stopping_; });
      go = !stopping_;
      crash_now = crash_pending_;
    }
    if (go) {
      try {
        if (crash_now) throw fault::CrashException{};
        fn();
      } catch (const fault::CrashException&) {
        // Modelled power cut: the thread dies mid-protocol, on purpose.
      } catch (const StopRun&) {
        // Truncation/stop: unwind silently.
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lk(mu_);  // dpc-lint: ok(raw-mutex, raw-guard) scheduler-internal: sim locks would recurse via schedhook
        if (!thread_error_) {
          std::ostringstream os;
          os << "T" << id << " threw: " << e.what();
          thread_error_ = os.str();
        }
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);  // dpc-lint: ok(raw-mutex, raw-guard) scheduler-internal: sim locks would recurse via schedhook
        if (!thread_error_) thread_error_ = "T? threw a non-std exception";
      }
    }
    std::lock_guard<std::mutex> lk(mu_);  // dpc-lint: ok(raw-mutex, raw-guard) scheduler-internal: sim locks would recurse via schedhook
    threads_[static_cast<std::size_t>(id)].st = St::kFinished;
    if (token_ == id) token_ = -1;
    cv_.notify_all();
  });
}

void ModelSched::yield_to_scheduler(const char* site, bool spinning,
                                    bool can_throw) {
  const int id = tl_id;
  std::unique_lock<std::mutex> lk(mu_);  // dpc-lint: ok(raw-mutex, raw-guard) scheduler-internal: sim locks would recurse via schedhook
  if (stopping_) {
    if (can_throw && std::uncaught_exceptions() == 0) {
      lk.unlock();
      throw StopRun{};
    }
    // Unwinding, or inside a noexcept frame (guard destructor): never throw.
    // The thread keeps running to its next throw-safe point, which delivers
    // the stop.
    return;
  }
  // Mid-unwind (a CrashException travelling up through RAII unlocks): pass
  // straight through so the unwind stays atomic and cannot double-throw.
  if (std::uncaught_exceptions() > 0) return;
  ThreadState& t = threads_[static_cast<std::size_t>(id)];
  t.site = site;
  t.at_spin = spinning;
  if (spinning) {
    // Blocked only on a REPEAT spin with nothing changed by other threads
    // since the previous spin here: the first spin's probe may be stale
    // (another thread can act at a yield between the probe and this call),
    // so it stays a decision point and the thread gets one fresh re-probe.
    const std::uint64_t others = progress_ - t.self_contrib;
    if (t.last_spin_site == site && t.last_spin_others == others) {
      t.st = St::kSpinning;
      t.spin_progress = progress_;
    } else {
      t.st = St::kReady;
      t.last_spin_site = site;
      t.last_spin_others = others;
    }
  } else {
    t.st = St::kReady;
  }
  token_ = -1;
  cv_.notify_all();
  cv_.wait(lk, [&] { return token_ == id || stopping_; });
  t.st = St::kRunning;
  if (!can_throw) return;  // crash/stop delivery deferred past the noexcept frame
  if (stopping_) {
    lk.unlock();
    throw StopRun{};
  }
  if (crash_pending_) {
    lk.unlock();
    throw fault::CrashException{};
  }
}

std::vector<int> ModelSched::runnable_locked() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = threads_[i];
    if (t.st == St::kFinished || t.st == St::kRunning) continue;
    if (t.st == St::kSpinning && !crash_pending_ &&
        progress_ <= t.spin_progress)
      continue;  // blocked until someone else makes progress
    out.push_back(static_cast<int>(i));
  }
  return out;
}

void ModelSched::run() {
  ran_ = true;
  std::unique_lock<std::mutex> lk(mu_);  // dpc-lint: ok(raw-mutex, raw-guard) scheduler-internal: sim locks would recurse via schedhook
  auto all_finished = [&] {
    return std::all_of(threads_.begin(), threads_.end(), [](const ThreadState& t) {
      return t.st == St::kFinished;
    });
  };
  auto stop_and_drain = [&] {
    stopping_ = true;
    cv_.notify_all();
    cv_.wait(lk, all_finished);
  };
  for (;;) {
    if (all_finished()) break;
    const std::vector<int> runnable = runnable_locked();
    if (runnable.empty()) {
      std::ostringstream os;
      os << "deadlock: every unfinished thread is blocked (";
      for (std::size_t i = 0; i < threads_.size(); ++i)
        if (threads_[i].st != St::kFinished)
          os << "T" << i << "@" << threads_[i].site << " ";
      os << ")";
      stop_and_drain();
      throw CheckViolation(os.str());
    }
    if (steps_ >= static_cast<std::uint64_t>(opts_.max_steps)) {
      // Scenario budgets are far above any run correct code produces, so
      // exhausting one IS a finding: a livelock or a lost wakeup that keeps
      // threads runnable forever (e.g. a point()-loop that never settles).
      // Reporting it as a violation also keeps exploration honest: a
      // mutation that wedges the protocol is caught, not silently filed
      // under "truncated".
      truncated_ = true;
      std::ostringstream os;
      os << "schedule hit the " << opts_.max_steps
         << "-step budget with threads still runnable: livelock or lost "
            "wakeup (";
      for (std::size_t i = 0; i < threads_.size(); ++i)
        if (threads_[i].st != St::kFinished)
          os << "T" << i << "@" << threads_[i].site << " ";
      os << ")";
      stop_and_drain();
      throw CheckViolation(os.str());
    }
    std::uint32_t idx = 0;
    if (runnable.size() > 1) {
      idx = strategy_.pick(runnable, steps_) %
            static_cast<std::uint32_t>(runnable.size());
      choices_.push_back(idx);
    }
    const int id = runnable[idx];
    trace_.push_back({id, threads_[static_cast<std::size_t>(id)].site});
    ++steps_;
    // A spinner's retry is not progress: it only re-probes state someone
    // else must change. Counting it would let spinners revive each other
    // forever while the (possibly demoted) thread they wait on starves —
    // a false livelock the real kernel cannot exhibit. The self-
    // contribution share lets spin() ask "did anyone ELSE move" — a
    // thread's own probing must not refresh its own spin windows.
    if (!threads_[static_cast<std::size_t>(id)].at_spin) {
      ++progress_;
      ++threads_[static_cast<std::size_t>(id)].self_contrib;
    }
    token_ = id;
    cv_.notify_all();
    cv_.wait(lk, [&] { return token_ == -1; });
    if (thread_error_) {
      const std::string msg = *thread_error_;
      stop_and_drain();
      throw CheckViolation(msg);
    }
  }
  if (thread_error_) throw CheckViolation(*thread_error_);
}

std::uint32_t ModelSched::choose(std::uint32_t n) {
  if (n <= 1) return 0;
  const std::uint32_t v = strategy_.choose(n) % n;
  choices_.push_back(v);
  return v;
}

void ModelSched::require(bool cond, const std::string& msg) {
  if (!cond) throw CheckViolation(msg);
}

void ModelSched::power_cut() {
  std::lock_guard<std::mutex> lk(mu_);  // dpc-lint: ok(raw-mutex, raw-guard) scheduler-internal: sim locks would recurse via schedhook
  crash_pending_ = true;
}

std::string ModelSched::format_trace(const std::vector<Step>& trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.size(); ++i)
    os << "    #" << i << "  T" << trace[i].thread << "  @" << trace[i].site
       << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// DfsStrategy

void DfsStrategy::begin_run() { pos_ = 0; }

std::uint32_t DfsStrategy::next(std::uint32_t n) {
  if (pos_ < stack_.size()) {
    // Replaying the committed prefix. Clamp defensively: a diverging option
    // count means the scenario is nondeterministic, and clamping keeps the
    // walk well-defined while the trace comparison surfaces it.
    const std::uint32_t v = std::min(stack_[pos_].picked, n - 1);
    stack_[pos_].options = n;
    ++pos_;
    return v;
  }
  stack_.push_back({0, n});
  ++pos_;
  return 0;
}

std::uint32_t DfsStrategy::pick(const std::vector<int>& runnable,
                                std::uint64_t) {
  return next(static_cast<std::uint32_t>(runnable.size()));
}

std::uint32_t DfsStrategy::choose(std::uint32_t n) { return next(n); }

bool DfsStrategy::advance() {
  // Anything beyond pos_ belongs to a deeper branch of a previous run that
  // this run never reached — discard before backtracking.
  stack_.resize(pos_);
  while (!stack_.empty() && stack_.back().picked + 1 >= stack_.back().options)
    stack_.pop_back();
  if (stack_.empty()) return false;
  ++stack_.back().picked;
  return true;
}

// ---------------------------------------------------------------------------
// PctStrategy

PctStrategy::PctStrategy(std::uint64_t seed, int depth, int max_steps)
    : rng_(seed * 0x9E3779B97F4A7C15ULL + 1) {
  demote_at_.reserve(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i)
    demote_at_.push_back(rng_() % static_cast<std::uint64_t>(
                                      std::max(max_steps, 1)));
  std::sort(demote_at_.begin(), demote_at_.end());
}

std::uint64_t PctStrategy::priority(int thread_id) {
  const auto id = static_cast<std::size_t>(thread_id);
  while (prio_.size() <= id) prio_.push_back((rng_() >> 8) + (1u << 20));
  return prio_[id];
}

std::uint32_t PctStrategy::pick(const std::vector<int>& runnable,
                                std::uint64_t step) {
  if (demotions_used_ < demote_at_.size() &&
      step >= demote_at_[demotions_used_]) {
    // Demote the currently strongest runnable thread below everyone —
    // the PCT priority-change point.
    std::uint32_t strongest = 0;
    for (std::uint32_t i = 1; i < runnable.size(); ++i)
      if (priority(runnable[i]) > priority(runnable[strongest])) strongest = i;
    prio_[static_cast<std::size_t>(runnable[strongest])] = demotions_used_;
    ++demotions_used_;
  }
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < runnable.size(); ++i)
    if (priority(runnable[i]) > priority(runnable[best])) best = i;
  return best;
}

std::uint32_t PctStrategy::choose(std::uint32_t n) {
  return static_cast<std::uint32_t>(rng_() % n);
}

// ---------------------------------------------------------------------------
// ReplayStrategy

std::uint32_t ReplayStrategy::next(std::uint32_t n) {
  if (pos_ >= choices_.size()) return 0;
  return choices_[pos_++] % n;
}

std::uint32_t ReplayStrategy::pick(const std::vector<int>& runnable,
                                   std::uint64_t) {
  return next(static_cast<std::uint32_t>(runnable.size()));
}

std::uint32_t ReplayStrategy::choose(std::uint32_t n) { return next(n); }

// ---------------------------------------------------------------------------
// Runners

namespace {

std::optional<Violation> one_run(const ScenarioFn& fn, ModelSched& sched) {
  // Scenarios rebuild their fixtures every run, so lock words land at reused
  // heap addresses. The lockrank acquired-before graph keys on addresses;
  // wipe it per run or stale edges from a prior run's fixtures could
  // manufacture cycles that never happened.
  sim::lockrank::reset_for_test();
  try {
    fn(sched);
  } catch (const CheckViolation& e) {
    return Violation{e.what(), sched.trace(), sched.choices()};
  } catch (const std::exception& e) {
    return Violation{std::string("driver threw: ") + e.what(), sched.trace(),
                     sched.choices()};
  }
  return std::nullopt;
}

}  // namespace

ExploreResult explore_exhaustive(const ScenarioFn& fn, const char* mutation,
                                 std::uint64_t max_schedules, int max_steps) {
  ExploreResult out;
  DfsStrategy dfs;
  for (;;) {
    dfs.begin_run();
    std::optional<Violation> v;
    bool truncated = false;
    {
      ModelSched sched(dfs, {max_steps, mutation});
      v = one_run(fn, sched);
      truncated = sched.truncated();
    }
    if (truncated)
      ++out.truncated;
    else
      ++out.schedules;
    if (v) {
      out.violation = std::move(v);
      return out;
    }
    if (out.schedules + out.truncated >= max_schedules) return out;
    if (!dfs.advance()) return out;
  }
}

ExploreResult explore_pct(const ScenarioFn& fn, const char* mutation,
                          std::uint64_t seed_base, std::uint64_t seeds,
                          int depth, int max_steps) {
  ExploreResult out;
  // Adaptive PCT horizon: priority-change points must land *inside* the
  // actual run to matter, and scenarios typically take a few thousand steps
  // against a budget a hundred times larger. Sampling demotions over the
  // budget would make them fire with probability ~0 — so sample over the
  // longest schedule observed so far. The first seed starts from a small
  // floor (underestimating costs one run; from the second seed on the
  // horizon is the real observed length).
  int horizon = 16;
  for (std::uint64_t s = seed_base; s < seed_base + seeds; ++s) {
    PctStrategy pct(s, depth, std::min(max_steps, horizon));
    std::optional<Violation> v;
    bool truncated = false;
    {
      ModelSched sched(pct, {max_steps, mutation});
      v = one_run(fn, sched);
      truncated = sched.truncated();
      horizon = std::max(horizon, static_cast<int>(sched.steps()));
    }
    if (truncated)
      ++out.truncated;
    else
      ++out.schedules;
    if (v) {
      out.violation = std::move(v);
      out.seed = s;
      return out;
    }
  }
  return out;
}

ExploreResult replay_run(const ScenarioFn& fn, const char* mutation,
                         const std::vector<std::uint32_t>& choices,
                         int max_steps) {
  ExploreResult out;
  ReplayStrategy rep(choices);
  ModelSched sched(rep, {max_steps, mutation});
  out.violation = one_run(fn, sched);
  out.schedules = 1;
  return out;
}

}  // namespace dpc::check
