// ModelSched — deterministic cooperative scheduler for systematic
// concurrency model checking (CHESS/PCT style), driving real std::threads
// one at a time through the schedhook seam (sim/schedhook.hpp).
//
// A *scenario* is a function that builds a small system (a cache plane, a
// WAL on an NvmDevice, an INI/TGT queue pair…), spawns 2–3 managed threads
// whose bodies exercise one protocol, runs them to completion under the
// scheduler, and then checks protocol invariants. Every schedhook point()
// reached by a managed thread is a *decision point*: the scheduler picks
// which thread runs next. Exploring all picks explores all interleavings at
// sync-operation granularity — sound here because every shared-state access
// in the instrumented protocols is bracketed by hook points, and because
// the one-runnable-token discipline gives sequential consistency (each
// hand-off is a full happens-before edge).
//
// spin() points are *blocked* points, never decision forks: a spinning
// thread made no progress (failed try-lock, empty queue) and re-enters the
// runnable set only after some other thread has taken a step. All
// unfinished threads spinning at once is a deadlock — reported as a
// violation with the schedule that produced it. A step budget bounds
// livelock; runs that hit it count as truncated, not explored.
//
// Three strategies drive exploration:
//   * DfsStrategy    — exhaustive DFS over the decision tree with chronological
//                      backtracking; used for the small bounded scenarios
//                      where the full interleaving count is reported.
//   * PctStrategy    — PCT-style randomized priorities with d priority-change
//                      points, seeded; probabilistic guarantees for the
//                      scenarios too big to enumerate.
//   * ReplayStrategy — replays a recorded choice list verbatim, so any
//                      violation printed by dpc_check reproduces exactly.
//
// Data nondeterminism (crash subsets of unfenced NVM writes, crash timing)
// goes through the same choice stream via ModelSched::choose(), so DFS and
// replay cover it uniformly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "sim/schedhook.hpp"

namespace dpc::check {

/// One scheduler decision: which managed thread ran, from which site.
struct Step {
  int thread = -1;
  const char* site = "";
};

/// A found violation: what broke plus the exact schedule that broke it.
struct Violation {
  std::string message;
  std::vector<Step> trace;
  std::vector<std::uint32_t> choices;  ///< replayable decision list
};

/// Thrown by scenario invariant checks (ModelSched::require) and by the
/// scheduler when a violation is detected mid-run.
class CheckViolation : public std::runtime_error {
 public:
  explicit CheckViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Decides scheduling picks and data choices. pick/choose see the number of
/// alternatives and return an index < n; ModelSched records the result so
/// every run has a replayable choice list regardless of strategy.
class Strategy {
 public:
  virtual ~Strategy() = default;
  /// `runnable` holds managed-thread ids in ascending order; return an
  /// index into it.
  virtual std::uint32_t pick(const std::vector<int>& runnable,
                             std::uint64_t step) = 0;
  /// Data choice among n alternatives; return a value < n.
  virtual std::uint32_t choose(std::uint32_t n) = 0;
};

class ModelSched {
 public:
  struct Options {
    int max_steps = 20000;       ///< truncation budget per schedule
    const char* mutation = nullptr;  ///< armed DPC_CHECK_MUTATE name
  };

  // (Two overloads, not one defaulted `Options opts = {}` argument: GCC
  // rejects a nested aggregate with member initializers as a default
  // argument of the enclosing class.)
  explicit ModelSched(Strategy& strategy) : ModelSched(strategy, Options{}) {}
  ModelSched(Strategy& strategy, Options opts);
  ~ModelSched();
  ModelSched(const ModelSched&) = delete;
  ModelSched& operator=(const ModelSched&) = delete;

  /// Registers and starts a managed thread (parked until run()). Must be
  /// called before run(), from the driver thread.
  void spawn(std::function<void()> body);

  /// Runs the spawned threads to completion under the scheduler. Throws
  /// CheckViolation on deadlock or a thread failing with an exception
  /// (DPC_CHECK, LockOrderError, scenario require()s inside bodies).
  /// Returns normally when all threads finished or the step budget was hit
  /// (see truncated()).
  void run();

  /// Driver-side data choice among n alternatives (crash subsets, crash
  /// positions). Recorded in the choice list like a scheduling pick.
  std::uint32_t choose(std::uint32_t n);

  /// Scenario invariant: throws CheckViolation carrying the schedule when
  /// `cond` is false.
  void require(bool cond, const std::string& msg);

  /// Arms the modelled power cut: every managed thread throws
  /// fault::CrashException at its next decision point. Callable from a
  /// managed "power" thread body or from the driver between runs.
  void power_cut();
  bool crashed() const { return crash_pending_; }

  bool truncated() const { return truncated_; }
  std::uint64_t steps() const { return steps_; }
  const std::vector<Step>& trace() const { return trace_; }
  const std::vector<std::uint32_t>& choices() const { return choices_; }

  /// Formats the schedule as one line per step for violation reports.
  static std::string format_trace(const std::vector<Step>& trace);

 private:
  enum class St : std::uint8_t { kReady, kRunning, kSpinning, kFinished };
  struct ThreadState {
    std::thread th;
    St st = St::kReady;
    const char* site = "spawn";
    std::uint64_t spin_progress = 0;  ///< progress_ when it last spun
    // First-spin freshness guard: a spin() can be declared on a probe that
    // went stale at an intervening yield (probe → unlock yield → another
    // thread acts → spin). The first spin at a site therefore stays a
    // decision point (one guaranteed re-probe); only a repeat spin with no
    // *other-thread* progress since is treated as truly blocked.
    const char* last_spin_site = nullptr;
    std::uint64_t last_spin_others = 0;  ///< others-progress at that spin
    std::uint64_t self_contrib = 0;      ///< this thread's share of progress_
    /// Parked at a spin() site (even when schedulable as a first-spin
    /// decision point). A granted probe is never progress: counting it
    /// would let two spinners refresh each other's first-spin windows
    /// forever while the thread they both wait on starves.
    bool at_spin = false;
  };

  // schedhook callbacks (static, ctx = this).
  static bool hook_managed(void* ctx);
  static void hook_point(void* ctx, const char* site);
  static void hook_spin(void* ctx, const char* site);
  static void hook_point_noexcept(void* ctx, const char* site);
  static bool hook_mutation(void* ctx, const char* name);

  /// `can_throw` is false for points reached from noexcept frames (guard
  /// destructors): the scheduler still preempts, but crash/stop delivery
  /// is deferred to the thread's next throw-safe point.
  void yield_to_scheduler(const char* site, bool spinning, bool can_throw);
  std::vector<int> runnable_locked() const;

  Strategy& strategy_;
  Options opts_;
  sim::schedhook::Hooks hooks_{};

  std::mutex mu_;  // dpc-lint: ok(raw-mutex) the scheduler IS the instrumentation layer
  std::condition_variable cv_;
  std::vector<ThreadState> threads_;
  int token_ = -1;           ///< thread id holding the run token; -1 = scheduler
  bool stopping_ = false;    ///< truncation/violation: threads unwind, no yields
  bool crash_pending_ = false;
  std::uint64_t progress_ = 0;  ///< total granted steps (spin re-entry gate)
  std::uint64_t steps_ = 0;
  bool truncated_ = false;
  bool ran_ = false;
  std::optional<std::string> thread_error_;
  std::vector<Step> trace_;
  std::vector<std::uint32_t> choices_;
};

// ---------------------------------------------------------------------------
// Strategies

/// Exhaustive DFS with chronological backtracking. Use one instance across
/// runs: run the scenario, then advance(); repeat until advance() is false.
class DfsStrategy : public Strategy {
 public:
  std::uint32_t pick(const std::vector<int>& runnable,
                     std::uint64_t step) override;
  std::uint32_t choose(std::uint32_t n) override;

  /// Prepares the next unexplored branch. False when the tree is exhausted.
  bool advance();
  /// Must be called before each run (resets the replay cursor).
  void begin_run();

 private:
  std::uint32_t next(std::uint32_t n);
  struct Node {
    std::uint32_t picked;
    std::uint32_t options;
  };
  std::vector<Node> stack_;
  std::size_t pos_ = 0;
};

/// PCT-style randomized scheduler: random per-thread priorities, `depth`
/// priority-demotion points drawn over the step budget; highest-priority
/// runnable thread runs. Deterministic per seed.
class PctStrategy : public Strategy {
 public:
  PctStrategy(std::uint64_t seed, int depth, int max_steps);
  std::uint32_t pick(const std::vector<int>& runnable,
                     std::uint64_t step) override;
  std::uint32_t choose(std::uint32_t n) override;

 private:
  std::uint64_t priority(int thread_id);
  std::mt19937_64 rng_;
  std::vector<std::uint64_t> prio_;       // by thread id, lazily extended
  std::vector<std::uint64_t> demote_at_;  // sorted step indices
  std::uint64_t demotions_used_ = 0;
};

/// Replays a recorded choice list; falls back to index 0 past its end (a
/// diverging replay means the scenario is nondeterministic — reported by
/// the runner via trace comparison).
class ReplayStrategy : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<std::uint32_t> choices)
      : choices_(std::move(choices)) {}
  std::uint32_t pick(const std::vector<int>& runnable,
                     std::uint64_t step) override;
  std::uint32_t choose(std::uint32_t n) override;

 private:
  std::uint32_t next(std::uint32_t n);
  std::vector<std::uint32_t> choices_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Runners

using ScenarioFn = std::function<void(ModelSched&)>;

struct ExploreResult {
  std::uint64_t schedules = 0;   ///< fully explored schedules
  std::uint64_t truncated = 0;   ///< schedules cut by the step budget
  std::optional<Violation> violation;
  std::uint64_t seed = 0;        ///< PCT: seed that found the violation
};

/// Exhaustively enumerates the scenario's decision tree (up to
/// max_schedules; hitting that cap is reported via `schedules`).
ExploreResult explore_exhaustive(const ScenarioFn& fn, const char* mutation,
                                 std::uint64_t max_schedules, int max_steps);

/// One PCT run per seed in [seed_base, seed_base + seeds).
ExploreResult explore_pct(const ScenarioFn& fn, const char* mutation,
                          std::uint64_t seed_base, std::uint64_t seeds,
                          int depth, int max_steps);

/// Replays a choice list; returns the violation it reproduces (if any).
ExploreResult replay_run(const ScenarioFn& fn, const char* mutation,
                         const std::vector<std::uint32_t>& choices,
                         int max_steps);

}  // namespace dpc::check
