// The model-checked scenario catalog: each entry builds one small bounded
// system around a protocol the paper's client depends on (the seqlock'd
// cache entry, the NVM write-ahead log, the batched SQ/CQ pair, the DRR
// dispatcher, restart-vs-pump), runs 2–3 managed threads through it under
// ModelSched, and asserts the protocol's invariants over every explored
// interleaving.
//
// Each scenario is paired with exactly one DPC_CHECK_MUTATE site in the
// product code that deletes/reorders the fence or guard the protocol
// depends on. Running the scenario with its mutation armed MUST find a
// violation — that is the evidence the harness actually observes the
// protocol, not just executes it (a checker that passes mutated code is
// vacuous). `dpc_check --mutate` enforces this, and replays the violating
// schedule from its printed choice list to prove the report deterministic.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "check/model_sched.hpp"

namespace dpc::check {

struct Scenario {
  const char* name;
  const char* description;
  /// The paired DPC_CHECK_MUTATE site; armed by `--mutate`.
  const char* mutation;
  /// True: the decision tree is small enough to enumerate completely —
  /// run in the exhaustive tier (and report the full interleaving count).
  /// False: PCT tier only.
  bool exhaustive;
  /// Step budget per schedule (livelock bound).
  int max_steps;
  /// Ceiling for the exhaustive tier (hitting it is reported, not silent).
  std::uint64_t max_schedules;
  /// PCT seeds to sweep when hunting the armed mutation.
  std::uint64_t mutate_seeds;
  ScenarioFn fn;
};

/// All registered scenarios, stable order.
const std::vector<Scenario>& scenarios();

/// nullptr when `name` is unknown.
const Scenario* find_scenario(std::string_view name);

}  // namespace dpc::check
