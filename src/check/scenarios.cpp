#include "check/scenarios.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "cache/host_plane.hpp"
#include "cache/layout.hpp"
#include "core/dpc_system.hpp"
#include "dpu/qos.hpp"
#include "kvfs/kvfs.hpp"
#include "nvm/device.hpp"
#include "nvm/wal.hpp"
#include "nvme/ini.hpp"
#include "nvme/queue_pair.hpp"
#include "nvme/tgt.hpp"
#include "obs/metrics.hpp"
#include "pcie/dma.hpp"
#include "sim/schedhook.hpp"

namespace dpc::check {
namespace {

std::vector<std::byte> fill(std::size_t n, std::uint8_t v) {
  return std::vector<std::byte>(n, static_cast<std::byte>(v));
}

// ---------------------------------------------------------------------------
// seqlock_entry — one writer overwriting a cached page (pattern A → B), one
// lock-free reader. The seqlock contract: the reader either retries or sees
// a fully-A / fully-B page, never a mix. Mutation `cache-seq-publish` moves
// the odd→even sequence publish *before* the page copy, so a reader can
// validate a torn page.

void scenario_seqlock_entry(ModelSched& sched) {
  pcie::MemoryRegion host("host", 1 << 20);
  pcie::RegionAllocator alloc(host);
  cache::CacheLayout layout({4096, cache::CacheMode::kWrite, 8, 2}, alloc);
  cache::HostCachePlane plane(host, layout);

  const auto a = fill(4096, 0xAA);
  const auto b = fill(4096, 0xBB);
  sched.require(plane.write(1, 0, a) == cache::HostCachePlane::WriteResult::kOk,
                "seqlock_entry: seed write failed");

  bool torn = false;
  bool read_ok = false;
  sched.spawn([&] { (void)plane.write(1, 0, b); });
  sched.spawn([&] {
    std::vector<std::byte> out(4096);
    read_ok = plane.read(1, 0, out);
    if (read_ok) {
      const bool all_a =
          std::all_of(out.begin(), out.end(),
                      [](std::byte x) { return x == std::byte{0xAA}; });
      const bool all_b =
          std::all_of(out.begin(), out.end(),
                      [](std::byte x) { return x == std::byte{0xBB}; });
      torn = !all_a && !all_b;
    }
  });
  sched.run();

  sched.require(read_ok, "seqlock_entry: reader missed a resident page");
  sched.require(!torn,
                "seqlock reader observed a torn page: the odd/even sequence "
                "brackets failed to invalidate a mid-copy snapshot");
}

// ---------------------------------------------------------------------------
// wal_append — two appends racing a modelled power cut. After the cut the
// driver enumerates every surviving subset of the unfenced cache-line
// writes (NvmDevice persist tracking) and replays recovery on each.
// Invariants: an acked append is always recovered, and the scan never sees
// a nonzero commit word whose payload mismatches — a power cut lands on the
// commit store *last*, so that state can only exist if the commit word
// became durable before its payload. Mutation `wal-commit-order` deletes
// the payload persist fence, creating exactly that state.

void scenario_wal_append(ModelSched& sched) {
  obs::Registry reg;
  nvm::NvmDevice dev(64 << 10, nullptr, &reg);
  nvm::WriteAheadLog wal(dev, reg);
  dev.set_persist_tracking(true);

  // 128-byte payloads: the frame (20B header + payload + 4B commit) spans
  // three-plus cache lines, so a middle payload line can stay volatile
  // independently of the header and commit lines.
  const auto p1 = fill(128, 0x11);
  const auto p2 = fill(128, 0x22);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> acked;

  sched.spawn([&] {
    sim::Nanos c{};
    if (wal.append_data(7, 1, p1, c) == nvm::AppendStatus::kOk)
      acked.emplace_back(7, 1);
    if (wal.append_data(7, 2, p2, c) == nvm::AppendStatus::kOk)
      acked.emplace_back(7, 2);
  });
  sched.spawn([&] { sched.power_cut(); });
  sched.run();

  // Crash semantics: any subset of the still-volatile line writes may have
  // drained before power died. The subset is a recorded choice, so DFS
  // enumerates them and a replay reproduces the exact one.
  const auto bits =
      static_cast<std::uint32_t>(std::min<std::size_t>(dev.volatile_writes(), 6));
  const std::uint32_t keep = sched.choose(1u << bits);
  dev.drop_volatile(keep);
  dev.set_persist_tracking(false);

  nvm::WriteAheadLog wal2(dev, reg);
  const auto rec = wal2.recover();
  sched.require(rec.report.commit_mismatch_nonzero == 0,
                "WAL commit record became durable before its payload: the "
                "scan found a nonzero commit word over a mismatching frame");
  for (const auto& [ino, lpn] : acked) {
    sched.require(wal2.has_pending(ino, lpn),
                  "acked WAL append lost across the power cut");
  }
}

// ---------------------------------------------------------------------------
// wal_fsync_flush — the fsync fast path (append_data) racing the background
// flusher's checkpoint probe (maybe_checkpoint). The checkpoint must never
// advance the header over a logged-but-undrained page; if it does, a
// restart silently forgets an acked fsync. Mutation `wal-early-checkpoint`
// removes the nothing-live guard.

void scenario_wal_fsync_flush(ModelSched& sched) {
  obs::Registry reg;
  nvm::NvmDevice dev(64 << 10, nullptr, &reg);
  nvm::WriteAheadLog wal(dev, reg);

  const auto page = fill(64, 0x5C);
  bool acked = false;
  sched.spawn([&] {
    sim::Nanos c{};
    acked = wal.append_data(3, 9, page, c) == nvm::AppendStatus::kOk;
  });
  sched.spawn([&] {
    sim::Nanos c{};
    wal.maybe_checkpoint(c);
  });
  sched.run();

  // Power-cycle: a fresh WAL instance over the same device must still
  // replay the acked page in every interleaving of append vs checkpoint.
  nvm::WriteAheadLog wal2(dev, reg);
  (void)wal2.recover();
  sched.require(acked, "wal_fsync_flush: append failed outright");
  sched.require(wal2.has_pending(3, 9),
                "checkpoint advanced over an undrained page: an acked fsync "
                "would be forgotten by the next restart");
}

// ---------------------------------------------------------------------------
// sq_submit_abort — one submitter and one TGT pump over a depth-4 queue
// pair. Phase 1: a single submit must complete with its own payload-derived
// result. Phase 2: a full-width batch, every completion accounted for
// exactly once. Phase 3: abort vs the in-flight CQE — whichever wins, the
// recorded completion for that cid must never be clobbered afterwards, and
// the reclaimed cid must carry the *next* command's result untainted.
// Mutation `doorbell-publish` rings the doorbell before the SQE store, so
// the TGT can fetch a stale SQE — observable as a deadlock (the real
// command is never fetched) or as a completion for a command nobody
// submitted.

void scenario_sq_submit_abort(ModelSched& sched) {
  pcie::MemoryRegion host("host", 8 << 20);
  pcie::RegionAllocator halloc(host);
  pcie::MemoryRegion dpu("dpu", 1 << 20);
  pcie::RegionAllocator dalloc(dpu);
  pcie::DmaEngine dma(host, dpu);

  nvme::QpConfig qc;
  qc.depth = 4;
  qc.max_write = 4096;
  qc.max_read = 4096;
  nvme::QueuePair qp(qc, halloc, dalloc);
  nvme::IniDriver ini(dma, qp);
  // Handler result = offset + 1000: each completion names the command it
  // belongs to, so cross-wiring cids is directly visible.
  nvme::TgtDriver tgt(dma, qp,
                      [](const nvme::NvmeFsCmd& cmd, std::span<const std::byte>,
                         std::span<std::byte>) {
                        nvme::HandlerResult r;
                        r.result = static_cast<std::uint32_t>(cmd.offset + 1000);
                        return r;
                      });

  std::atomic<bool> done{false};
  auto req = [](std::uint64_t off) {
    nvme::IniDriver::Request r;
    r.inode = 42;
    r.offset = off;
    r.tenant = 0;  // deliberately single-tenant scenario
    return r;
  };

  sched.spawn([&] {  // TGT pump
    while (!done.load(std::memory_order_acquire)) {
      // Re-check `done` right before blocking: there is no yield point
      // between the check and spin(), so the submitter cannot finish in
      // the gap and strand this thread in a false deadlock.
      if (tgt.process_available().processed == 0 &&
          !done.load(std::memory_order_acquire)) {
        sim::schedhook::spin("check.tgt_idle");
      }
    }
  });

  sched.spawn([&] {  // submitter
    // Phase 1: single command.
    const auto s0 = ini.submit(req(5));
    const auto c0 = ini.wait(s0.cid);
    sched.require(c0.status == nvme::Status::kSuccess && c0.result == 1005,
                  "single submit completed with the wrong command's result");
    ini.release(s0.cid);

    // Phase 2: full-width batch (3 usable cids on a depth-4 queue), one
    // doorbell for the run.
    std::array<nvme::IniDriver::Request, 3> batch = {req(10), req(11),
                                                     req(12)};
    const auto bs = ini.submit_batch(batch);
    std::vector<std::uint32_t> got;
    for (const std::uint16_t cid : bs.cids) {
      const auto c = ini.wait(cid);
      sched.require(c.status == nvme::Status::kSuccess,
                    "batched submit completed with an error status");
      got.push_back(c.result);
      ini.release(cid);
    }
    std::sort(got.begin(), got.end());
    sched.require(got == std::vector<std::uint32_t>({1010, 1011, 1012}),
                  "batched submit: completions lost, duplicated or "
                  "cross-wired across cids");

    // Phase 3: abort racing the CQE, then cid reuse.
    const auto sp = ini.submit(req(77));
    const auto ab = ini.abort(sp.cid);
    // Quiesce: let any in-flight processing finish and drain the CQ, then
    // the recorded completion must be exactly what abort() returned — a
    // late CQE is counted, never clobbers.
    while (tgt.has_work()) sim::schedhook::spin("check.quiesce");
    (void)ini.poll();
    const auto after = ini.try_take(sp.cid);
    sched.require(after.has_value() && after->status == ab.status &&
                      after->result == ab.result,
                  "a late CQE clobbered an aborted cid's recorded completion");
    ini.release(sp.cid);

    const auto s2 = ini.submit(req(88));
    const auto c2 = ini.wait(s2.cid);
    sched.require(c2.status == nvme::Status::kSuccess && c2.result == 1088,
                  "reclaimed cid delivered a stale command's completion");
    ini.release(s2.cid);

    done.store(true, std::memory_order_release);
  });
  sched.run();

  // Nothing in flight, and no orphan completion recorded for any free cid
  // (a stale-SQE fetch completes a command nobody submitted).
  sched.require(ini.inflight() == 0, "cids leaked across the scenario");
  for (std::uint16_t cid = 0; cid + 1 < qp.depth(); ++cid) {
    sched.require(!ini.try_take(cid).has_value(),
                  "completion recorded for a cid nobody has in flight");
  }
}

// ---------------------------------------------------------------------------
// drr_dispatch — admission/dispatch ordering of the per-tenant QoS
// scheduler. Strict class priority: pop() never returns best-effort work
// while a guaranteed tenant has staged commands, regardless of arrival
// order (a recorded choice). Mutation `drr-class-order` inverts the class
// selection.

void scenario_drr_dispatch(ModelSched& sched) {
  obs::Registry reg;
  dpu::QosConfig cfg;
  cfg.enabled = true;
  cfg.tenants[0].cls = dpu::TenantClass::kGuaranteed;
  cfg.tenants[0].weight = 4;
  cfg.tenants[1].cls = dpu::TenantClass::kBestEffort;
  cfg.tenants[1].weight = 1;
  dpu::QosManager qos(cfg, reg);
  dpu::DrrScheduler drr(&qos);

  auto stage = [&](nvme::TenantId t) {
    dpu::StagedCmd c;
    c.tenant = t;
    c.charge = 4096;
    drr.push(c);
  };
  // Arrival order is the nondeterminism here (the DRR is single-consumer
  // by contract, so there is no thread interleaving to explore).
  const std::uint32_t order = sched.choose(2);
  for (int i = 0; i < 3; ++i) {
    if (order == 0) {
      stage(1);
      stage(0);
    } else {
      stage(0);
      stage(1);
    }
  }

  bool seen_lower_class = false;
  for (int i = 0; i < 6; ++i) {
    const auto cmd = drr.pop();
    sched.require(cmd.has_value(), "DRR lost a staged command");
    const bool guaranteed =
        qos.cls(cmd->tenant) == dpu::TenantClass::kGuaranteed;
    sched.require(!(guaranteed && seen_lower_class),
                  "DRR dispatched best-effort work while guaranteed "
                  "commands were staged");
    if (!guaranteed) seen_lower_class = true;
  }
  sched.require(!drr.pop().has_value(), "DRR queue not drained");
  sched.run();
}

// ---------------------------------------------------------------------------
// restart_vs_pump — a pump-mode client call racing restart_dpu(). The
// restart freezes every pump lock before rewinding the queues, so a caller
// mid-pump either finishes against the old state or blocks until the
// rewound queues are consistent; its in-flight command is synthesize-
// aborted and the retry loop resubmits. Mutation `restart-no-freeze` drops
// the freeze: a pump caller can then interleave with the TGT rewind and
// the KVFS recovery — observable as a stale-SQE re-execution (late-CQE
// counter), a failed op, lost acked data, or — most directly — the
// core/pump_conflicts witness: pump() counting an entry inside the restart
// window, which the real freeze makes impossible.

void scenario_restart_vs_pump(ModelSched& sched) {
  core::DpcOptions o;
  o.queues = 1;
  o.queue_depth = 8;
  o.max_io = 64 * 1024;
  o.cache_geo = {4096, cache::CacheMode::kWrite, 16, 4};
  o.with_dfs = false;
  o.dpu_workers = 0;  // pump mode: callers service the TGT inline
  o.nvme_retry.max_attempts = 8;
  core::DpcSystem sys(o);

  const auto ino = sys.create(kvfs::kRootIno, "f").ino;
  sched.require(ino != 0, "restart_vs_pump: create failed");
  std::vector<std::byte> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>((i * 7 + 1) & 0xFF);

  core::Io wr{};
  sched.spawn([&] { wr = sys.write(ino, 0, data, /*direct=*/true); });
  sched.spawn([&] { (void)sys.restart_dpu(); });
  // A bare pump-mode poller with a short schedule: its pump_mu_ acquisition
  // is a yield point right up against the restart window, so the checker
  // finds the freeze breach without threading it through a full write path.
  sched.spawn([&] {
    for (int i = 0; i < 8; ++i) (void)sys.pump_for_test(0);
  });
  sched.run();

  sched.require(wr.ok(),
                "pump-mode write failed across restart_dpu despite retries");
  std::vector<std::byte> out(data.size());
  const auto rd = sys.read(ino, 0, out, /*direct=*/true);
  sched.require(rd.ok() && out == data,
                "acked direct write lost or corrupted across restart_dpu");
  sched.require(sys.metrics().counter("nvme.ini/late_cqes").value() == 0,
                "a stale SQE was re-executed across the restart (late CQE "
                "posted for an already-recorded cid)");
  // The freeze's own contract, independent of data outcomes: the retry loop
  // is good enough at absorbing aborts that a pump slipping inside the
  // restart window often still converges to correct bytes. The counter sees
  // the mutual-exclusion breach directly.
  sched.require(sys.metrics().counter("core/pump_conflicts").value() == 0,
                "a pump-mode caller ran inside the restart freeze window "
                "(the all-queue pump freeze was not held)");
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"seqlock_entry",
       "lock-free cache read vs writer: seqlock brackets reject torn pages",
       "cache-seq-publish", /*exhaustive=*/true, /*max_steps=*/4000,
       /*max_schedules=*/2'000'000, /*mutate_seeds=*/64,
       scenario_seqlock_entry},
      {"wal_append",
       "WAL appends vs power cut: acked data survives every line subset",
       "wal-commit-order", /*exhaustive=*/true, /*max_steps=*/4000,
       /*max_schedules=*/2'000'000, /*mutate_seeds=*/64, scenario_wal_append},
      {"wal_fsync_flush",
       "fsync fast path vs checkpoint probe: no header advance over live data",
       "wal-early-checkpoint", /*exhaustive=*/true, /*max_steps=*/4000,
       /*max_schedules=*/2'000'000, /*mutate_seeds=*/64,
       scenario_wal_fsync_flush},
      {"sq_submit_abort",
       "batched SQ submit + abort vs TGT pump: no clobbered or orphan cids",
       "doorbell-publish", /*exhaustive=*/false, /*max_steps=*/20000,
       /*max_schedules=*/0, /*mutate_seeds=*/64, scenario_sq_submit_abort},
      {"drr_dispatch",
       "QoS DRR dispatch: strict class priority over every arrival order",
       "drr-class-order", /*exhaustive=*/true, /*max_steps=*/4000,
       /*max_schedules=*/2'000'000, /*mutate_seeds=*/16, scenario_drr_dispatch},
      {"restart_vs_pump",
       "restart_dpu vs pump-mode callers: freeze isolates the queue rewind",
       "restart-no-freeze", /*exhaustive=*/false, /*max_steps=*/200000,
       /*max_schedules=*/0, /*mutate_seeds=*/128, scenario_restart_vs_pump},
  };
  return kScenarios;
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& s : scenarios()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

}  // namespace dpc::check
