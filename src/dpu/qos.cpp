#include "dpu/qos.hpp"

#include <algorithm>
#include <initializer_list>
#include <utility>

#include "sim/schedhook.hpp"

namespace dpc::dpu {

QosManager::QosManager(const QosConfig& cfg, obs::Registry& registry)
    : cfg_(cfg),
      admitted_(&registry.counter("qos/admitted")),
      throttled_(&registry.counter("qos/throttled")),
      shed_(&registry.counter("qos/shed")),
      queued_gauge_(&registry.gauge("qos/queued_cmds")),
      inflight_gauge_(&registry.gauge("qos/inflight_bytes")) {
  for (std::size_t t = 0; t < nvme::kMaxTenants; ++t) {
    const unsigned id = static_cast<unsigned>(t);
    TenantInstruments& ti = tenant_[t];
    ti.admitted = &registry.counter(obs::tenant_metric(id, "admitted"));
    ti.throttled = &registry.counter(obs::tenant_metric(id, "throttled"));
    ti.shed = &registry.counter(obs::tenant_metric(id, "shed"));
    ti.ops = &registry.counter(obs::tenant_metric(id, "ops"));
    ti.dispatched_bytes =
        &registry.counter(obs::tenant_metric(id, "dispatched_bytes"));
    ti.backend_bytes =
        &registry.counter(obs::tenant_metric(id, "backend_bytes"));
    ti.prefetch_pages =
        &registry.counter(obs::tenant_metric(id, "prefetch_pages"));
    ti.latency_ns = &registry.histogram(obs::tenant_metric(id, "latency_ns"));
    // Buckets start full: a tenant's first burst is its configured burst.
    if (cfg_.tenants[t].rate_bytes_per_sec > 0)
      tokens_[t] = static_cast<double>(cfg_.tenants[t].burst_bytes);
  }
}

QosManager::Admit QosManager::admit(nvme::TenantId tenant,
                                    std::uint32_t charge) {
  const std::size_t t = slot(tenant);
  const TenantQosConfig& tc = cfg_.tenants[t];
  sim::LockGuard lock(mu_);
  // Global staging caps. Guaranteed tenants bypass them: the caps exist to
  // bound how far behind *they* can be pushed.
  if (tc.cls != TenantClass::kGuaranteed) {
    if (queued_ >= static_cast<std::int64_t>(cfg_.max_queued_cmds) ||
        inflight_bytes_ + charge >
            static_cast<std::int64_t>(cfg_.max_inflight_bytes)) {
      throttled_->add();
      tenant_[t].throttled->add();
      return {false, cfg_.min_retry_after};
    }
  }
  // Per-tenant token bucket (modelled-time refill via advance()).
  if (tc.rate_bytes_per_sec > 0) {
    if (tokens_[t] < static_cast<double>(charge)) {
      const double deficit = static_cast<double>(charge) - tokens_[t];
      const double hint_ns =
          deficit * 1e9 / static_cast<double>(tc.rate_bytes_per_sec);
      sim::Nanos retry{static_cast<std::int64_t>(hint_ns)};
      if (retry.ns < cfg_.min_retry_after.ns) retry = cfg_.min_retry_after;
      throttled_->add();
      tenant_[t].throttled->add();
      return {false, retry};
    }
    tokens_[t] -= static_cast<double>(charge);
  }
  ++queued_;
  inflight_bytes_ += charge;
  queued_now_.store(queued_, std::memory_order_relaxed);
  queued_gauge_->set(queued_);
  inflight_gauge_->set(inflight_bytes_);
  admitted_->add();
  tenant_[t].admitted->add();
  return {true, sim::Nanos{}};
}

void QosManager::unstage_locked(std::size_t t, std::uint32_t charge) {
  (void)t;
  --queued_;
  inflight_bytes_ -= charge;
  DPC_CHECK(queued_ >= 0 && inflight_bytes_ >= 0);
  queued_now_.store(queued_, std::memory_order_relaxed);
  queued_gauge_->set(queued_);
  inflight_gauge_->set(inflight_bytes_);
}

void QosManager::on_dispatch(nvme::TenantId tenant, std::uint32_t charge) {
  const std::size_t t = slot(tenant);
  sim::LockGuard lock(mu_);
  unstage_locked(t, charge);
  tenant_[t].dispatched_bytes->add(charge);
}

void QosManager::on_shed(nvme::TenantId tenant, std::uint32_t charge) {
  const std::size_t t = slot(tenant);
  sim::LockGuard lock(mu_);
  unstage_locked(t, charge);
  shed_->add();
  tenant_[t].shed->add();
}

void QosManager::on_reset_drop(nvme::TenantId tenant, std::uint32_t charge) {
  const std::size_t t = slot(tenant);
  sim::LockGuard lock(mu_);
  unstage_locked(t, charge);
}

void QosManager::advance(sim::Nanos d) {
  if (d.ns <= 0) return;
  sim::LockGuard lock(mu_);
  vt_.ns += d.ns;
  const double sec = static_cast<double>(d.ns) * 1e-9;
  for (std::size_t t = 0; t < nvme::kMaxTenants; ++t) {
    const TenantQosConfig& tc = cfg_.tenants[t];
    if (tc.rate_bytes_per_sec == 0) continue;
    tokens_[t] = std::min(
        tokens_[t] + sec * static_cast<double>(tc.rate_bytes_per_sec),
        static_cast<double>(tc.burst_bytes));
  }
}

void QosManager::record_latency(nvme::TenantId tenant, sim::Nanos cost) {
  tenant_[slot(tenant)].latency_ns->record(cost);
}

void QosManager::count_op(nvme::TenantId tenant) {
  tenant_[slot(tenant)].ops->add();
}

void QosManager::count_backend_bytes(nvme::TenantId tenant,
                                     std::uint64_t bytes) {
  tenant_[slot(tenant)].backend_bytes->add(bytes);
}

void QosManager::count_prefetch_pages(nvme::TenantId tenant,
                                      std::uint64_t pages) {
  tenant_[slot(tenant)].prefetch_pages->add(pages);
}

// ---------------------------------------------------------------------------
// DrrScheduler
// ---------------------------------------------------------------------------

void DrrScheduler::push(StagedCmd cmd) {
  ++size_;
  if (qos_ == nullptr) {
    fifo_.push_back(std::move(cmd));
    return;
  }
  const auto t = static_cast<std::uint8_t>(QosManager::slot(cmd.tenant));
  TenantQueue& tq = tq_[t];
  tq.q.push_back(std::move(cmd));
  if (!tq.active) {
    tq.active = true;
    ring_.push_back(t);
  }
}

std::optional<StagedCmd> DrrScheduler::pop() {
  if (size_ == 0) return std::nullopt;
  if (qos_ == nullptr) {
    StagedCmd cmd = std::move(fifo_.front());
    fifo_.pop_front();
    --size_;
    return cmd;
  }
  const QosConfig& cfg = qos_->config();
  // Strict class priority: the DRR weights share bandwidth only *within*
  // the strongest class that has staged work — a guaranteed tenant's
  // command never waits behind best-effort or background dispatches, no
  // matter the weights (ring size ≤ kMaxTenants keeps the scan cheap).
  // DPC_CHECK_MUTATE drr-class-order: serve the *weakest* staged class —
  // best-effort dispatches while guaranteed work queues, the exact
  // inversion the strict-priority scan exists to prevent. dpc_check arms
  // this and must see a guaranteed command bypassed.
  const bool mutate_order = sim::schedhook::mutate("drr-class-order");
  TenantClass best =
      mutate_order ? TenantClass::kGuaranteed : TenantClass::kBackground;
  for (const std::uint8_t t : ring_) {
    if (tq_[t].q.empty()) continue;
    const TenantClass c = qos_->cls(static_cast<nvme::TenantId>(t));
    best = mutate_order ? std::max(best, c) : std::min(best, c);
  }
  // Terminates: size_ > 0 guarantees a non-empty best-class queue in the
  // ring, and its deficit strictly grows each rotation until it covers the
  // head's charge.
  while (true) {
    DPC_CHECK(!ring_.empty());
    const std::uint8_t t = ring_.front();
    TenantQueue& tq = tq_[t];
    if (tq.q.empty()) {  // defensive; deactivation keeps the ring tight
      deactivate(t);
      continue;
    }
    if (qos_->cls(static_cast<nvme::TenantId>(t)) != best) {
      // A weaker class is not being served this round: rotate past it
      // without granting deficit, so it earns no credit while blocked.
      ring_.pop_front();
      ring_.push_back(t);
      continue;
    }
    const auto cost = static_cast<std::int64_t>(tq.q.front().charge);
    if (tq.deficit >= cost) {
      tq.deficit -= cost;
      StagedCmd cmd = std::move(tq.q.front());
      tq.q.pop_front();
      --size_;
      if (tq.q.empty()) deactivate(t);
      return cmd;
    }
    tq.deficit += static_cast<std::int64_t>(cfg.quantum_bytes) *
                  qos_->weight(static_cast<nvme::TenantId>(t));
    ring_.pop_front();
    ring_.push_back(t);
  }
}

std::optional<StagedCmd> DrrScheduler::shed_stale(sim::Nanos vt_now,
                                                  sim::Nanos max_delay) {
  if (qos_ == nullptr || size_ == 0) return std::nullopt;
  for (const TenantClass cls :
       {TenantClass::kBackground, TenantClass::kBestEffort}) {
    for (std::size_t t = 0; t < nvme::kMaxTenants; ++t) {
      TenantQueue& tq = tq_[t];
      if (tq.q.empty()) continue;
      if (qos_->cls(static_cast<nvme::TenantId>(t)) != cls) continue;
      if (vt_now.ns - tq.q.front().ingest_vt.ns <= max_delay.ns) continue;
      StagedCmd cmd = std::move(tq.q.front());
      tq.q.pop_front();
      --size_;
      if (tq.q.empty()) deactivate(static_cast<std::uint8_t>(t));
      return cmd;
    }
  }
  return std::nullopt;
}

void DrrScheduler::drain(std::vector<StagedCmd>& out) {
  for (StagedCmd& cmd : fifo_) out.push_back(std::move(cmd));
  fifo_.clear();
  for (TenantQueue& tq : tq_) {
    for (StagedCmd& cmd : tq.q) out.push_back(std::move(cmd));
    tq.q.clear();
    tq.deficit = 0;
    tq.active = false;
  }
  ring_.clear();
  size_ = 0;
}

void DrrScheduler::deactivate(std::uint8_t t) {
  tq_[t].active = false;
  tq_[t].deficit = 0;
  std::erase(ring_, t);
}

}  // namespace dpc::dpu
