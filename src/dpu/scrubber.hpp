// Background data scrubber (§ robustness: end-to-end integrity).
//
// A WorkerPool poller that walks the stored media — SSD blocks, KV values
// (the 8 KB big-file extents among them), and DFS shards — re-verifying
// each item's CRC32C at a configurable rate. Detected corruption is
// repaired from redundancy where redundancy exists: an EC-striped shard is
// reconstructed from the surviving k-of-(k+m) shards of its stripe (a
// replicated shard from any clean replica) and rewritten in place. Media
// with no redundancy behind it (SSD blocks, KV values) cannot be repaired —
// the scrubber counts the damage and leaves it, and the read path returns
// EIO instead of silent data.
//
// Accounting ("scrub/…" in the registry):
//   scanned        items whose checksum was re-verified
//   detected       distinct corrupt items found (each counted once)
//   repaired       detected items rewritten clean from redundancy
//   unrecoverable  detected items with no redundancy / too few survivors
//   pass_ns        modelled latency distribution of scrub passes
// Invariant: detected == repaired + unrecoverable. A corrupt shard whose
// stripe is transiently unreadable (server down, breaker open) is deferred
// — not counted at all — and retried on a later pass, so the invariant
// holds at every instant, not just at quiescence.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "dfs/backend.hpp"
#include "fault/injector.hpp"
#include "kv/kv_store.hpp"
#include "obs/metrics.hpp"
#include "sim/histogram.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"
#include "ssd/ssd.hpp"

namespace dpc::dpu {

class QosManager;

struct ScrubberConfig {
  /// Items (blocks / values / shards) verified per pass — the rate knob.
  std::uint32_t items_per_pass = 64;
  /// Wall-clock spacing between passes; jittered so a fleet of scrubbers
  /// (or one scrubber and the flusher it shares a worker with) don't beat
  /// in lockstep. Pacing only applies to poll(); scrub_pass() is immediate.
  sim::Nanos pace = sim::millis(1.0);
  double pace_jitter = 0.5;
};

class Scrubber {
 public:
  Scrubber(const ScrubberConfig& cfg, obs::Registry& registry,
           fault::FaultInjector* fault = nullptr);

  // Targets are optional and may be attached in any combination; attach
  // before the WorkerPool starts polling. All must outlive the scrubber.
  void attach_ssd(ssd::SsdModel* ssd) { ssd_ = ssd; }
  void attach_kv(kv::KvStore* kv) { kv_ = kv; }
  /// `mds` supplies the stripe geometry (and redundancy scheme) repairs
  /// need; shards whose file the MDS no longer knows are unrecoverable.
  void attach_dfs(dfs::DataServers* ds, dfs::MdsCluster* mds) {
    ds_ = ds;
    mds_ = mds;
  }
  /// Graceful degradation under overload: with a QosManager attached,
  /// poll() surrenders a due pass ("scrub/yields") while the admission
  /// controller reports staged depth above its high-water mark. The yield
  /// does not reschedule — the next poll retries as soon as foreground
  /// pressure drains.
  void attach_qos(const QosManager* qos) { qos_ = qos; }

  /// WorkerPool poller: runs one paced pass (or nothing, between paces /
  /// while the fault injector reports crashed()). Returns items scanned.
  int poll();

  /// One immediate pass over up to `max_items` items (tests / benches —
  /// no pacing, no crash gate). Returns items scanned.
  int scrub_pass(std::uint32_t max_items);

  /// Drives full passes until one walks the whole media set without
  /// deferring any repair. Returns total items scanned.
  int scrub_all();

  struct Totals {
    std::uint64_t scanned = 0;
    std::uint64_t detected = 0;
    std::uint64_t repaired = 0;
    std::uint64_t unrecoverable = 0;
  };
  Totals totals() const;

 private:
  struct PassOutcome {
    int scanned = 0;
    bool deferred = false;  ///< some repair was postponed (transient)
  };
  PassOutcome pass(std::uint32_t max_items) REQUIRES(mu_);
  // Per-media probes: verify one item, count, repair when possible.
  void scrub_ssd_block(std::uint64_t lba, sim::Nanos& cost) REQUIRES(mu_);
  void scrub_kv_value(const std::string& key, sim::Nanos& cost)
      REQUIRES(mu_);
  void scrub_dfs_shard(const dfs::ShardId& id, sim::Nanos& cost,
                       bool* deferred) REQUIRES(mu_);

  ScrubberConfig cfg_;
  fault::FaultInjector* fault_;
  ssd::SsdModel* ssd_ = nullptr;
  kv::KvStore* kv_ = nullptr;
  dfs::DataServers* ds_ = nullptr;
  dfs::MdsCluster* mds_ = nullptr;
  const QosManager* qos_ = nullptr;

  obs::Counter* scanned_;
  obs::Counter* detected_;
  obs::Counter* repaired_;
  obs::Counter* unrecoverable_;
  obs::Counter* yields_;
  sim::Histogram* pass_ns_;

  /// Serializes passes (the poller and a test driving scrub_pass() may
  /// race). Outermost: held across KV/DFS store locks.
  mutable sim::AnnotatedMutex mu_{"scrub.pass", sim::LockRank::kSystem};
  /// Walk cursor into the concatenated (ssd ∥ kv ∥ dfs) snapshot.
  std::uint64_t cursor_ GUARDED_BY(mu_) = 0;
  int pace_step_ GUARDED_BY(mu_) = 0;
  /// Wall-clock deadline (steady_clock nanos) before the next paced pass.
  std::int64_t next_due_ns_ GUARDED_BY(mu_) = 0;
  // Quarantine: unrecoverable items already counted, so a rescan of damage
  // we can't fix doesn't inflate detected/unrecoverable. An item that later
  // verifies clean again (rewritten by the workload) leaves quarantine and
  // is eligible to be counted anew.
  std::unordered_set<std::uint64_t> bad_lbas_ GUARDED_BY(mu_);
  std::unordered_set<std::string> bad_keys_ GUARDED_BY(mu_);
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>>
      bad_shards_ GUARDED_BY(mu_);
};

}  // namespace dpc::dpu
