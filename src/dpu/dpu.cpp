#include "dpu/dpu.hpp"

namespace dpc::dpu {

Dpu::Dpu(const DpuConfig& cfg)
    : cfg_(cfg), bar_("dpu-bar", cfg.bar_size), bar_alloc_(bar_) {
  DPC_CHECK(cfg.cores >= 1);
}

sim::Nanos Dpu::sched_overhead(int client_threads) {
  using namespace sim::calib;
  if (client_threads <= kDpuSchedSweetSpot) return sim::Nanos{0};
  return kDpuSchedPenaltyPerThread *
         (client_threads - kDpuSchedSweetSpot);
}

}  // namespace dpc::dpu
