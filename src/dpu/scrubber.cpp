#include "dpu/scrubber.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "dpu/qos.hpp"
#include "ec/reed_solomon.hpp"
#include "fault/retry.hpp"
#include "sim/check.hpp"

namespace dpc::dpu {
namespace {

/// Modelled media cost of re-reading one item and checking its CRC — the
/// steady-state tax the scrubber pays per scanned block/value/shard.
constexpr sim::Nanos kVerifyCost = sim::micros(2.0);

/// Decorrelates the scrubber's pacing jitter from retriers using the same
/// hash family.
constexpr std::uint64_t kPaceSalt = 0x5c52'5542'4245'5221ULL;  // "SCRUBBER!"

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Scrubber::Scrubber(const ScrubberConfig& cfg, obs::Registry& registry,
                   fault::FaultInjector* fault)
    : cfg_(cfg),
      fault_(fault),
      scanned_(&registry.counter("scrub/scanned")),
      detected_(&registry.counter("scrub/detected")),
      repaired_(&registry.counter("scrub/repaired")),
      unrecoverable_(&registry.counter("scrub/unrecoverable")),
      yields_(&registry.counter("scrub/yields")),
      pass_ns_(&registry.histogram("scrub/pass_ns")) {
  DPC_CHECK(cfg_.items_per_pass >= 1);
}

int Scrubber::poll() {
  if (fault_ != nullptr && fault_->crashed()) return 0;
  sim::LockGuard lock(mu_);
  const std::int64_t now = now_ns();
  if (now < next_due_ns_) return 0;
  // Yield to foreground pressure: while the nvme-fs staging queues sit
  // above the admission high-water mark, surrender this pass without
  // advancing the pace clock, so scrubbing resumes the moment the storm
  // drains instead of a full pace period later.
  if (qos_ != nullptr && qos_->overloaded()) {
    yields_->add();
    return 0;
  }
  const PassOutcome out = pass(cfg_.items_per_pass);
  next_due_ns_ =
      now +
      fault::jittered(cfg_.pace, cfg_.pace_jitter, pace_step_++, kPaceSalt)
          .ns;
  return out.scanned;
}

int Scrubber::scrub_pass(std::uint32_t max_items) {
  sim::LockGuard lock(mu_);
  return pass(max_items).scanned;
}

int Scrubber::scrub_all() {
  int total = 0;
  // A deferred repair (stripe transiently unreadable) leaves the corrupt
  // shard uncounted; keep sweeping until a full pass resolves everything.
  // Bounded: permanent unavailability would otherwise spin forever.
  for (int sweep = 0; sweep < 100; ++sweep) {
    sim::LockGuard lock(mu_);
    cursor_ = 0;
    const PassOutcome out = pass(UINT32_MAX);
    total += out.scanned;
    if (!out.deferred) break;
  }
  return total;
}

Scrubber::Totals Scrubber::totals() const {
  return Totals{scanned_->load(), detected_->load(), repaired_->load(),
                unrecoverable_->load()};
}

Scrubber::PassOutcome Scrubber::pass(std::uint32_t max_items) {
  // Snapshot the walk lists once per pass; items created or deleted while
  // the pass runs are picked up by a later pass.
  std::vector<std::uint64_t> lbas;
  std::vector<std::string> keys;
  std::vector<dfs::ShardId> shards;
  if (ssd_ != nullptr) lbas = ssd_->stored_lbas();
  if (kv_ != nullptr) keys = kv_->keys();
  if (ds_ != nullptr) shards = ds_->stored_shards();
  const std::uint64_t total = lbas.size() + keys.size() + shards.size();

  PassOutcome out;
  if (total == 0) return out;
  const auto budget =
      static_cast<std::uint64_t>(std::min<std::uint64_t>(max_items, total));
  sim::Nanos cost{};
  for (std::uint64_t i = 0; i < budget; ++i) {
    const std::uint64_t pos = (cursor_ + i) % total;
    if (pos < lbas.size()) {
      scrub_ssd_block(lbas[pos], cost);
    } else if (pos < lbas.size() + keys.size()) {
      scrub_kv_value(keys[pos - lbas.size()], cost);
    } else {
      bool deferred = false;
      scrub_dfs_shard(shards[pos - lbas.size() - keys.size()], cost,
                      &deferred);
      out.deferred |= deferred;
    }
    ++out.scanned;
  }
  cursor_ = (cursor_ + budget) % total;
  scanned_->add(static_cast<std::uint64_t>(out.scanned));
  pass_ns_->record(cost);
  return out;
}

void Scrubber::scrub_ssd_block(std::uint64_t lba, sim::Nanos& cost) {
  cost += kVerifyCost;
  if (ssd_->verify_block(lba) != ssd::BlockRead::kCorrupt) {
    // Clean again (deleted, or rewritten by the workload) — eligible to be
    // counted afresh if it rots anew.
    bad_lbas_.erase(lba);
    return;
  }
  // SSD blocks carry no redundancy the scrubber can reach; the damage is
  // detectable (reads return kCorrupt → EIO) but not repairable here.
  if (bad_lbas_.insert(lba).second) {
    detected_->add();
    unrecoverable_->add();
  }
}

void Scrubber::scrub_kv_value(const std::string& key, sim::Nanos& cost) {
  cost += kVerifyCost;
  if (kv_->verify_value(key) != kv::ValueCheck::kCorrupt) {
    bad_keys_.erase(key);
    return;
  }
  // Values in the disaggregated store are single-copy from this client's
  // vantage point: detect, quarantine, let reads surface EIO.
  if (bad_keys_.insert(key).second) {
    detected_->add();
    unrecoverable_->add();
  }
}

void Scrubber::scrub_dfs_shard(const dfs::ShardId& id, sim::Nanos& cost,
                               bool* deferred) {
  cost += kVerifyCost;
  const auto key = std::make_tuple(id.ino, id.stripe, id.role);
  if (ds_->verify_shard(id.ino, id.stripe, id.role) !=
      dfs::ShardState::kCorrupt) {
    bad_shards_.erase(key);
    return;
  }
  if (bad_shards_.contains(key)) return;  // already counted unrecoverable

  const std::optional<dfs::FileMeta> meta =
      mds_ == nullptr ? std::nullopt : mds_->find_meta(id.ino);
  if (!meta.has_value()) {
    // Orphan shard: no geometry to repair with.
    bad_shards_.insert(key);
    detected_->add();
    unrecoverable_->add();
    return;
  }

  dfs::OpProfile prof;
  bool transient = false;  // some peer read failed for a non-rot reason
  bool ok = false;
  std::vector<std::byte> fixed;

  if (meta->redundancy == dfs::Redundancy::kReplication) {
    // Any clean replica is a donor.
    fixed.assign(meta->stripe_unit, std::byte{0});
    for (std::uint32_t r = 0; r < meta->replicas && !ok; ++r) {
      if (r == id.role) continue;
      bool failed = false, corrupt = false;
      ok = ds_->read_shard(id.ino, id.stripe, r, fixed, prof, &failed,
                           &corrupt);
      if (!ok && failed && !corrupt) transient = true;
    }
  } else {
    // Erasure: gather the surviving shards of the stripe and reconstruct
    // the rotted role. Absent shards are treated as missing, exactly like
    // the degraded-read path — never as zero-filled data.
    const int k = meta->k;
    const int total = k + meta->m;
    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(total),
        std::vector<std::byte>(meta->stripe_unit));
    std::vector<std::span<std::byte>> spans;
    std::vector<bool> present(static_cast<std::size_t>(total), false);
    spans.reserve(static_cast<std::size_t>(total));
    for (auto& b : bufs) spans.emplace_back(b);
    int have = 0;
    for (int r = 0; r < total; ++r) {
      if (static_cast<std::uint32_t>(r) == id.role) continue;
      bool failed = false, corrupt = false;
      if (ds_->read_shard(id.ino, id.stripe, static_cast<std::uint32_t>(r),
                          spans[static_cast<std::size_t>(r)], prof, &failed,
                          &corrupt)) {
        present[static_cast<std::size_t>(r)] = true;
        ++have;
      } else if (failed && !corrupt) {
        transient = true;
      }
    }
    if (have >= k) {
      // ReedSolomon::reconstruct takes span<const bool>; std::vector<bool>
      // is bit-packed, so materialize a contiguous bool array.
      std::unique_ptr<bool[]> flags(new bool[static_cast<std::size_t>(total)]);
      for (int r = 0; r < total; ++r)
        flags[static_cast<std::size_t>(r)] =
            present[static_cast<std::size_t>(r)];
      const ec::ReedSolomon rs(k, meta->m);
      rs.reconstruct(spans,
                     std::span<const bool>(flags.get(),
                                           static_cast<std::size_t>(total)));
      fixed = std::move(bufs[id.role]);
      ok = true;
    }
  }

  if (ok) {
    ds_->repair_shard(id.ino, id.stripe, id.role, fixed, prof);
    cost += prof.ds + prof.net;
    if (ds_->verify_shard(id.ino, id.stripe, id.role) ==
        dfs::ShardState::kOk) {
      detected_->add();
      repaired_->add();
    } else {
      // The repair write itself was eaten by a fault (shard invalidated).
      // The rot is gone — the shard is now merely absent, which degraded
      // reads reconstruct — but nothing was resolved to count; retry via
      // the normal walk if it resurfaces.
      *deferred = true;
    }
    return;
  }
  cost += prof.ds + prof.net;
  if (transient) {
    // Too few survivors *right now* (server down / breaker open). Don't
    // guess: leave the shard uncounted and retry on a later pass.
    *deferred = true;
    return;
  }
  // Fewer than k clean shards at rest: genuinely unrecoverable.
  bad_shards_.insert(key);
  detected_->add();
  unrecoverable_->add();
}

}  // namespace dpc::dpu
