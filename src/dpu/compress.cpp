#include "dpu/compress.hpp"

#include <array>
#include <cstring>

#include "sim/check.hpp"

namespace dpc::dpu {

namespace {

constexpr std::byte kLiteral{0x00};
constexpr std::byte kMatch{0x01};
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxDistance = 64 * 1024;

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

/// Returns nullopt on truncated input.
std::optional<std::uint64_t> get_varint(std::span<const std::byte> src,
                                        std::size_t& at) {
  std::uint64_t v = 0;
  int shift = 0;
  while (at < src.size() && shift <= 63) {
    const auto b = static_cast<std::uint8_t>(src[at++]);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 19;  // 13-bit table index
}

}  // namespace

std::size_t lz_compress(std::span<const std::byte> src,
                        std::vector<std::byte>& dst) {
  dst.clear();
  dst.reserve(src.size() / 2 + 16);

  std::array<std::int64_t, 1 << 13> table;
  table.fill(-1);

  std::size_t i = 0;
  std::size_t literal_start = 0;
  auto flush_literals = [&](std::size_t end) {
    if (end == literal_start) return;
    dst.push_back(kLiteral);
    put_varint(dst, end - literal_start);
    dst.insert(dst.end(), src.begin() + static_cast<std::ptrdiff_t>(literal_start),
               src.begin() + static_cast<std::ptrdiff_t>(end));
    literal_start = end;
  };

  while (i + kMinMatch <= src.size()) {
    const std::uint32_t h = hash4(src.data() + i);
    const std::int64_t cand = table[h];
    table[h] = static_cast<std::int64_t>(i);

    std::size_t match_len = 0;
    if (cand >= 0 && i - static_cast<std::size_t>(cand) <= kMaxDistance) {
      const auto c = static_cast<std::size_t>(cand);
      const std::size_t limit = src.size() - i;
      while (match_len < limit && src[c + match_len] == src[i + match_len])
        ++match_len;
    }

    if (match_len >= kMinMatch) {
      flush_literals(i);
      dst.push_back(kMatch);
      put_varint(dst, match_len);
      put_varint(dst, i - static_cast<std::size_t>(cand));
      i += match_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(src.size());
  return dst.size();
}

std::optional<std::size_t> lz_decompress(std::span<const std::byte> src,
                                         std::vector<std::byte>& dst,
                                         std::size_t max_out) {
  dst.clear();
  std::size_t at = 0;
  while (at < src.size()) {
    const std::byte tag = src[at++];
    if (tag == kLiteral) {
      const auto len = get_varint(src, at);
      if (!len || at + *len > src.size() || dst.size() + *len > max_out)
        return std::nullopt;
      dst.insert(dst.end(), src.begin() + static_cast<std::ptrdiff_t>(at),
                 src.begin() + static_cast<std::ptrdiff_t>(at + *len));
      at += *len;
    } else if (tag == kMatch) {
      const auto len = get_varint(src, at);
      const auto dist = get_varint(src, at);
      if (!len || !dist || *dist == 0 || *dist > dst.size() ||
          dst.size() + *len > max_out)
        return std::nullopt;
      // Byte-by-byte copy: overlapping matches (RLE-style) are legal.
      std::size_t from = dst.size() - static_cast<std::size_t>(*dist);
      for (std::uint64_t k = 0; k < *len; ++k) dst.push_back(dst[from + k]);
    } else {
      return std::nullopt;  // unknown token
    }
  }
  return dst.size();
}

sim::Nanos dpu_compress_cost(std::size_t bytes) {
  // Hardware-assisted engine: ~4 GB/s effective.
  return sim::Nanos{static_cast<std::int64_t>(bytes * 0.25)};
}

sim::Nanos host_compress_cost(std::size_t bytes) {
  // Software LZ on a host core: ~0.8 GB/s.
  return sim::Nanos{static_cast<std::int64_t>(bytes * 1.25)};
}

}  // namespace dpc::dpu
