// The DPU device model — Huawei QingTian-class, per Table 1: 24 cores,
// 32 GB DRAM, off-path architecture (a general-purpose CPU beside the NP
// cores; we model the CPU complex the offloaded file stacks run on).
//
// Functionally it owns the DPU MemoryRegion (BAR/doorbell space + scratch)
// and a pool of worker threads that poll the transport queues. For timing,
// it exposes the per-op service demands and the scheduling-overhead rule
// the paper observes (throughput peaks at 32 client threads, §4.1).
#pragma once

#include <cstdint>
#include <memory>

#include "pcie/memory.hpp"
#include "sim/calib.hpp"
#include "sim/time.hpp"

namespace dpc::dpu {

struct DpuConfig {
  int cores = sim::calib::kDpuCores;
  std::size_t bar_size = 16ULL << 20;  ///< doorbell/BAR + scratch region
};

class Dpu {
 public:
  explicit Dpu(const DpuConfig& cfg = {});

  int cores() const { return cfg_.cores; }
  pcie::MemoryRegion& bar() { return bar_; }
  pcie::RegionAllocator& bar_alloc() { return bar_alloc_; }

  /// Extra per-op demand caused by scheduling once the offered concurrency
  /// exceeds the sweet spot ("threads that exceed the number of physical
  /// cores bring extra scheduling overheads", §4.1).
  static sim::Nanos sched_overhead(int client_threads);

 private:
  DpuConfig cfg_;
  pcie::MemoryRegion bar_;
  pcie::RegionAllocator bar_alloc_;
};

}  // namespace dpc::dpu
