// DPU compression engine (§3.3 lists compression among the flush-path
// compute steps; LustreFS-style client-side compression is one of the
// offloads that motivates DPC).
//
// The codec is a real LZ-style byte compressor (greedy hash-chain match +
// literal runs, format documented below) chosen for zero dependencies and
// bounded worst-case expansion; the point is a correct, testable data path
// whose cost the DPU engine model can charge, not competitive ratios.
//
// Format: a sequence of tokens.
//   literal run : 0x00 | varint len | bytes
//   match       : 0x01 | varint len | varint distance   (len ≥ 4)
// Varint = LEB128.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace dpc::dpu {

/// Compresses `src`; output is appended to `dst` (cleared first). Returns
/// the compressed size. Worst case ≈ src.size() + src.size()/255 + 16.
std::size_t lz_compress(std::span<const std::byte> src,
                        std::vector<std::byte>& dst);

/// Decompresses into `dst` (cleared first). Returns nullopt on malformed
/// input (never reads past `src`, never writes unbounded output beyond
/// `max_out`).
std::optional<std::size_t> lz_decompress(std::span<const std::byte> src,
                                         std::vector<std::byte>& dst,
                                         std::size_t max_out);

/// Modelled cost of the DPU's (hardware-assisted) compression engine.
sim::Nanos dpu_compress_cost(std::size_t bytes);
/// Host-side software compression cost, for the offload comparison.
sim::Nanos host_compress_cost(std::size_t bytes);

}  // namespace dpc::dpu
