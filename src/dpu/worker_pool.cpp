#include "dpu/worker_pool.hpp"

#include <chrono>

#include "sim/check.hpp"

namespace dpc::dpu {

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::add_poller(Poller p) {
  DPC_CHECK_MSG(!running(), "add_poller after start");
  DPC_CHECK(p != nullptr);
  pollers_.push_back(std::move(p));
}

void WorkerPool::start(int threads) {
  DPC_CHECK(!running());
  DPC_CHECK(threads >= 1);
  DPC_CHECK_MSG(!pollers_.empty(), "no pollers registered");
  running_.store(true, std::memory_order_release);
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    threads_.emplace_back([this, t, threads] { worker_main(t, threads); });
  }
}

void WorkerPool::stop() {
  running_.store(false, std::memory_order_release);
  threads_.clear();  // jthread joins on destruction
}

void WorkerPool::worker_main(int worker_id, int worker_count) {
  // Static partition: worker t owns pollers t, t+N, t+2N, … so that
  // single-consumer drivers are never run from two threads.
  std::vector<std::size_t> mine;
  for (std::size_t i = static_cast<std::size_t>(worker_id);
       i < pollers_.size(); i += static_cast<std::size_t>(worker_count))
    mine.push_back(i);

  int idle_rounds = 0;
  while (running_.load(std::memory_order_acquire)) {
    int processed = 0;
    for (const std::size_t i : mine) processed += pollers_[i]();
    if (processed > 0) {
      idle_rounds = 0;
    } else if (++idle_rounds < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

}  // namespace dpc::dpu
