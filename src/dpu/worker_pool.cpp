#include "dpu/worker_pool.hpp"

#include <chrono>

#include "sim/check.hpp"

namespace dpc::dpu {

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::add_poller(Poller p, bool background) {
  // Registration is serialized against start()/stop() by the lifecycle
  // lock; checking threads_ (not the running_ flag) closes the window where
  // a concurrent start() had set running_ but not yet spawned workers.
  sim::LockGuard lock(lifecycle_mu_);
  DPC_CHECK_MSG(threads_.empty(), "add_poller after start");
  DPC_CHECK(p != nullptr);
  pollers_.push_back(Entry{std::move(p), background});
}

void WorkerPool::set_background_gate(std::function<bool()> gate) {
  sim::LockGuard lock(lifecycle_mu_);
  DPC_CHECK_MSG(threads_.empty(), "set_background_gate after start");
  gate_ = std::move(gate);
}

void WorkerPool::start(int threads) {
  sim::LockGuard lock(lifecycle_mu_);
  DPC_CHECK_MSG(threads_.empty(), "start on a running pool");
  DPC_CHECK(threads >= 1);
  DPC_CHECK_MSG(!pollers_.empty(), "no pollers registered");
  run_token_ = std::make_shared<std::atomic<bool>>(true);
  running_.store(true, std::memory_order_release);
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    threads_.emplace_back([this, run = run_token_, t, threads] {
      worker_main(std::move(run), t, threads);
    });
  }
}

void WorkerPool::stop() {
  // Claim the thread set under the lock, join outside it: concurrent
  // stop()s (or stop() racing the destructor) each swap at most once, so
  // the jthreads are cleared exactly once and nobody joins while another
  // caller mutates threads_. After stop() the pool is restartable — a
  // restart mints a fresh run token, so workers of this generation exit
  // even if start() wins the lock before our join finishes.
  std::vector<std::jthread> to_join;
  {
    sim::LockGuard lock(lifecycle_mu_);
    if (run_token_ != nullptr)
      run_token_->store(false, std::memory_order_release);
    run_token_.reset();
    running_.store(false, std::memory_order_release);
    to_join.swap(threads_);
  }
  to_join.clear();  // jthread joins on destruction
}

// Lock-free read of pollers_: the vector is frozen between start() (which
// happens-before the spawn of this thread) and the join of this generation,
// and add_poller() refuses to run while threads_ is non-empty.
void WorkerPool::worker_main(std::shared_ptr<const std::atomic<bool>> run,
                             int worker_id,
                             int worker_count) NO_THREAD_SAFETY_ANALYSIS {
  // Static partition: worker t owns pollers t, t+N, t+2N, … so that
  // single-consumer drivers are never run from two threads.
  std::vector<std::size_t> mine;
  for (std::size_t i = static_cast<std::size_t>(worker_id);
       i < pollers_.size(); i += static_cast<std::size_t>(worker_count))
    mine.push_back(i);

  int idle_rounds = 0;
  while (run->load(std::memory_order_acquire)) {
    int processed = 0;
    // The gate is probed once per poller round, not cached for the round's
    // duration: foreground pollers may clear the overload mid-round and
    // background work resumes on the very next visit.
    for (const std::size_t i : mine) {
      const Entry& e = pollers_[i];
      if (e.background && gate_ != nullptr && gate_()) continue;
      processed += e.fn();
    }
    if (processed > 0) {
      idle_rounds = 0;
    } else if (++idle_rounds < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

}  // namespace dpc::dpu
