// Per-tenant QoS for the DPU-side nvme-fs path (ROADMAP item 1: one DPU
// fronting many mounts, where a noisy neighbor must not take down the
// rest — the bbThemis shared-FS interference problem).
//
// Three cooperating mechanisms, all keyed on the tenant id every SQE now
// carries in DW10[31:24]:
//
//   * Admission control (QosManager::admit, called at TGT ingest): a
//     per-tenant token bucket refilled in MODELLED time (the TGT's virtual
//     clock advances by each dispatched command's service cost, so refill
//     is deterministic — no wall clocks), plus global caps on staged
//     command count and staged bytes. Over-budget commands complete
//     immediately with the retryable nvme::Status::kThrottled whose CQE
//     result dword carries a retry-after hint in nanoseconds.
//     kGuaranteed tenants are exempt from the *global* caps (their
//     protection is the point of the caps) but still honor their own
//     bucket when one is configured.
//
//   * Weighted fair scheduling (DrrScheduler, owned by each TgtDriver):
//     deficit round robin across per-tenant staging queues. Each visit
//     grants a tenant quantum_bytes × weight of deficit; commands are
//     charged max(payload bytes, one page) so metadata storms can't ride
//     for free. Work-conserving: an idle tenant's share flows to the
//     active ones (max-min fairness). Classes are strict priorities:
//     weights share bandwidth only within the strongest class that has
//     staged work, so guaranteed commands never queue behind background
//     dispatches.
//
//   * Graceful degradation: when the manager reports overload (staged
//     depth over the high-water mark), stale commands of kBackground
//     tenants are shed first, then kBestEffort — kGuaranteed is never
//     shed. Background pollers (scrubber, cache flush passes) are demoted
//     to surplus bandwidth by the same overload signal (WorkerPool gate +
//     Scrubber::attach_qos).
//
// A null QosManager (config.enabled == false — the default) degrades every
// hook to the pre-QoS behavior: FIFO dispatch, no admission, no shedding,
// zero extra work on the hot path.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "nvme/spec.hpp"
#include "obs/metrics.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace dpc::dpu {

/// Shed/degradation ordering. Lower value = stronger protection.
enum class TenantClass : std::uint8_t {
  kGuaranteed = 0,  ///< never shed, exempt from global admission caps
  kBestEffort = 1,  ///< shed after background when stale under overload
  kBackground = 2,  ///< first to shed; the class for bulk/antagonist work
};

struct TenantQosConfig {
  std::uint32_t weight = 1;  ///< DRR share (≥ 1)
  TenantClass cls = TenantClass::kBestEffort;
  /// Token-bucket rate in bytes of charge per modelled second; 0 = no
  /// bucket (unlimited). Metadata ops charge one page (see qos_charge).
  std::uint64_t rate_bytes_per_sec = 0;
  std::uint32_t burst_bytes = 256 * 1024;  ///< bucket depth
};

struct QosConfig {
  bool enabled = false;
  /// With enabled && !fair_sched, dispatch falls back to FIFO (no DRR, no
  /// shedding) while admission and virtual-time wait accounting stay live —
  /// the "isolation off" arm of the antagonist bench, where queueing delay
  /// is measured but nothing bounds it.
  bool fair_sched = true;
  std::array<TenantQosConfig, nvme::kMaxTenants> tenants{};
  /// Global admission caps over all queues sharing the manager, counted on
  /// staged (admitted, not yet dispatched) commands.
  std::uint32_t max_queued_cmds = 192;
  std::uint64_t max_inflight_bytes = 32ull << 20;
  /// Staged depth at which overloaded() reports true: deadline shedding
  /// arms and background work yields.
  std::uint32_t overload_highwater = 24;
  /// Modelled staging wait beyond which a non-guaranteed command is shed
  /// (only while overloaded).
  sim::Nanos max_queue_delay = sim::millis(2.0);
  /// DRR deficit granted per visit, per weight unit.
  std::uint32_t quantum_bytes = 16 * 1024;
  /// Floor for the retry-after hint carried in kThrottled completions.
  sim::Nanos min_retry_after = sim::micros(100.0);
};

/// Charge-weight of one command: payload bytes with a one-page floor, so a
/// metadata storm is as visible to the bucket/scheduler as a data stream.
inline std::uint32_t qos_charge(std::uint32_t write_len,
                                std::uint32_t read_len) {
  const std::uint32_t bytes = write_len + read_len;
  return bytes < nvme::kPageSize ? nvme::kPageSize : bytes;
}

/// Shared admission + accounting state. One instance per DpcSystem, shared
/// by every TgtDriver (and the scrubber / flush gates). Thread-safe; the
/// overload probe is lock-free.
class QosManager {
 public:
  QosManager(const QosConfig& cfg, obs::Registry& registry);

  struct Admit {
    bool ok = true;
    sim::Nanos retry_after{};  ///< backoff hint when !ok
  };

  /// Admission check at TGT ingest for `charge` bytes (qos_charge of the
  /// command). On success the command counts as staged until on_dispatch /
  /// on_shed / on_reset_drop returns it.
  Admit admit(nvme::TenantId tenant, std::uint32_t charge);

  /// Staged command handed to execution (leaves the staging accounting).
  void on_dispatch(nvme::TenantId tenant, std::uint32_t charge);
  /// Staged command shed (deadline / degradation). Counted per tenant.
  void on_shed(nvme::TenantId tenant, std::uint32_t charge);
  /// Staged command dropped by a controller reset — uncounts staging
  /// without scoring a shed against the tenant.
  void on_reset_drop(nvme::TenantId tenant, std::uint32_t charge);

  /// Advances the modelled clock (each dispatched command's service cost);
  /// refills every configured token bucket deterministically.
  void advance(sim::Nanos d);

  /// Lock-free overload probe: staged depth at/over the high-water mark.
  /// The scrubber and flush-pass gates poll this on every pass.
  bool overloaded() const {
    return queued_now_.load(std::memory_order_relaxed) >=
           static_cast<std::int64_t>(cfg_.overload_highwater);
  }

  // ---- per-tenant metric scoping ("qos/t<i>/…" in the registry) --------
  void record_latency(nvme::TenantId tenant, sim::Nanos cost);
  void count_op(nvme::TenantId tenant);  ///< dispatched op (IO_Dispatch)
  void count_backend_bytes(nvme::TenantId tenant, std::uint64_t bytes);
  void count_prefetch_pages(nvme::TenantId tenant, std::uint64_t pages);

  TenantClass cls(nvme::TenantId tenant) const {
    return cfg_.tenants[slot(tenant)].cls;
  }
  std::uint32_t weight(nvme::TenantId tenant) const {
    const std::uint32_t w = cfg_.tenants[slot(tenant)].weight;
    return w == 0 ? 1 : w;
  }
  const QosConfig& config() const { return cfg_; }
  std::int64_t queued() const {
    return queued_now_.load(std::memory_order_relaxed);
  }

  static std::size_t slot(nvme::TenantId tenant) {
    return tenant % nvme::kMaxTenants;
  }

 private:
  struct TenantInstruments {
    obs::Counter* admitted = nullptr;
    obs::Counter* throttled = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* ops = nullptr;
    obs::Counter* dispatched_bytes = nullptr;
    obs::Counter* backend_bytes = nullptr;
    obs::Counter* prefetch_pages = nullptr;
    sim::Histogram* latency_ns = nullptr;
  };

  void unstage_locked(std::size_t t, std::uint32_t charge) REQUIRES(mu_);

  QosConfig cfg_;

  /// kLeaf: taken under the pump/worker path and under KVFS stripe locks
  /// (count_backend_bytes); never holds anything itself — counters are
  /// plain atomics resolved at construction.
  mutable sim::AnnotatedMutex mu_{"dpu.qos", sim::LockRank::kLeaf};
  sim::Nanos vt_ GUARDED_BY(mu_){};       ///< modelled clock (sum of service)
  std::int64_t queued_ GUARDED_BY(mu_) = 0;
  std::int64_t inflight_bytes_ GUARDED_BY(mu_) = 0;
  std::array<double, nvme::kMaxTenants> tokens_ GUARDED_BY(mu_){};

  /// Mirror of queued_ for the lock-free overload probe.
  std::atomic<std::int64_t> queued_now_{0};

  // Resolved once at construction (hot-path-lookup rule).
  obs::Counter* admitted_;
  obs::Counter* throttled_;
  obs::Counter* shed_;
  obs::Gauge* queued_gauge_;
  obs::Gauge* inflight_gauge_;
  std::array<TenantInstruments, nvme::kMaxTenants> tenant_;
};

/// One command staged between SQE fetch and execution.
struct StagedCmd {
  nvme::Sqe sqe{};
  nvme::TenantId tenant = 0;
  std::uint32_t charge = 0;   ///< qos_charge at ingest
  sim::Nanos ingest_vt{};     ///< TGT virtual time when staged
};

/// Deficit-round-robin scheduler over per-tenant staging queues. Owned by
/// one TgtDriver and driven single-consumer (the driver's worker / pump
/// serialization), so it needs no lock. Without a QosManager it degrades
/// to a plain FIFO — bit-for-bit the pre-QoS dispatch order.
class DrrScheduler {
 public:
  /// `qos` may be null (FIFO mode); must outlive the scheduler.
  explicit DrrScheduler(const QosManager* qos = nullptr) : qos_(qos) {}

  void push(StagedCmd cmd);

  /// Next command under strict class priority + intra-class DRR (plain
  /// FIFO when constructed without a QosManager).
  std::optional<StagedCmd> pop();

  /// Sheds the oldest staged command whose modelled wait exceeds
  /// `max_delay`, scanning kBackground tenants before kBestEffort and
  /// never touching kGuaranteed. FIFO mode never sheds.
  std::optional<StagedCmd> shed_stale(sim::Nanos vt_now,
                                      sim::Nanos max_delay);

  /// Removes every staged command (controller reset), appending them to
  /// `out` so the caller can return their admission accounting.
  void drain(std::vector<StagedCmd>& out);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

 private:
  void deactivate(std::uint8_t t);

  struct TenantQueue {
    std::deque<StagedCmd> q;
    std::int64_t deficit = 0;
    bool active = false;  ///< in the round-robin ring
  };

  const QosManager* qos_;
  std::deque<StagedCmd> fifo_;  ///< used when qos_ == nullptr
  std::array<TenantQueue, nvme::kMaxTenants> tq_{};
  std::deque<std::uint8_t> ring_;  ///< active tenant slots, DRR order
  std::size_t size_ = 0;
};

}  // namespace dpc::dpu
