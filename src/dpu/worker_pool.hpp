// Worker threads standing in for the DPU's cores: each worker repeatedly
// runs the registered pollers (NVME-TGT queues, the DPFS-HAL, the hybrid
// cache flusher) with exponential backoff when idle.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dpc::dpu {

/// A poller drains some work source; it returns how many items it
/// processed so the pool can back off when everything is idle.
using Poller = std::function<int()>;

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Registers a poller. Each poller is owned by exactly one worker thread
  /// (pollers wrap single-consumer drivers like TgtDriver), assigned
  /// round-robin at start(). Only legal while the pool is stopped.
  void add_poller(Poller p);

  /// Spawns `threads` workers. Must be called after all add_poller calls.
  /// A stopped pool can be started again (pollers are retained).
  void start(int threads);

  /// Stops and joins all workers (also run by the destructor). Idempotent
  /// and safe to call concurrently — including a stop() racing the
  /// destructor's — exactly one caller joins the threads.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void worker_main(std::shared_ptr<const std::atomic<bool>> run,
                   int worker_id, int worker_count);

  std::vector<Poller> pollers_;
  /// Guards the thread-set lifecycle (start/stop); never held while joining.
  std::mutex lifecycle_mu_;
  std::vector<std::jthread> threads_;
  /// Per-generation run flag: workers loop on *their* token, so a restart
  /// racing a still-joining stop() can never resurrect the old generation.
  std::shared_ptr<std::atomic<bool>> run_token_;
  std::atomic<bool> running_{false};
};

}  // namespace dpc::dpu
