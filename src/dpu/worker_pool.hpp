// Worker threads standing in for the DPU's cores: each worker repeatedly
// runs the registered pollers (NVME-TGT queues, the DPFS-HAL, the hybrid
// cache flusher) with exponential backoff when idle.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/thread_annotations.hpp"

namespace dpc::dpu {

/// A poller drains some work source; it returns how many items it
/// processed so the pool can back off when everything is idle.
using Poller = std::function<int()>;

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Registers a poller. Each poller is owned by exactly one worker thread
  /// (pollers wrap single-consumer drivers like TgtDriver), assigned
  /// round-robin at start(). Only legal while the pool is stopped.
  /// `background` pollers run on surplus capacity only: they are skipped
  /// while the background gate (if any) reports overload.
  void add_poller(Poller p, bool background = false) EXCLUDES(lifecycle_mu_);

  /// Installs the overload probe consulted before every background poller
  /// run (e.g. QosManager::overloaded). Must be cheap and thread-safe —
  /// workers call it lock-free each round. Only legal while stopped.
  void set_background_gate(std::function<bool()> gate) EXCLUDES(lifecycle_mu_);

  /// Spawns `threads` workers. Must be called after all add_poller calls.
  /// A stopped pool can be started again (pollers are retained).
  void start(int threads) EXCLUDES(lifecycle_mu_);

  /// Stops and joins all workers (also run by the destructor). Idempotent
  /// and safe to call concurrently — including a stop() racing the
  /// destructor's — exactly one caller joins the threads.
  void stop() EXCLUDES(lifecycle_mu_);

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void worker_main(std::shared_ptr<const std::atomic<bool>> run,
                   int worker_id, int worker_count);

  /// Guards the thread-set lifecycle (start/stop) and poller registration;
  /// never held while joining. Workers read pollers_ without it — the
  /// vector is immutable from start() (which publishes it via the thread
  /// spawn) until the last worker of that generation has been joined.
  sim::AnnotatedMutex lifecycle_mu_{"worker_pool.lifecycle",
                                    sim::LockRank::kSystem};
  struct Entry {
    Poller fn;
    bool background = false;  ///< skipped while the gate reports overload
  };
  std::vector<Entry> pollers_ GUARDED_BY(lifecycle_mu_);
  /// Overload probe for background pollers; frozen from start() like
  /// pollers_ (same publication argument).
  std::function<bool()> gate_ GUARDED_BY(lifecycle_mu_);
  std::vector<std::jthread> threads_ GUARDED_BY(lifecycle_mu_);
  /// Per-generation run flag: workers loop on *their* token, so a restart
  /// racing a still-joining stop() can never resurrect the old generation.
  std::shared_ptr<std::atomic<bool>> run_token_ GUARDED_BY(lifecycle_mu_);
  std::atomic<bool> running_{false};
};

}  // namespace dpc::dpu
