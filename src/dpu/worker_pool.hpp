// Worker threads standing in for the DPU's cores: each worker repeatedly
// runs the registered pollers (NVME-TGT queues, the DPFS-HAL, the hybrid
// cache flusher) with exponential backoff when idle.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpc::dpu {

/// A poller drains some work source; it returns how many items it
/// processed so the pool can back off when everything is idle.
using Poller = std::function<int()>;

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Registers a poller. Each poller is owned by exactly one worker thread
  /// (pollers wrap single-consumer drivers like TgtDriver), assigned
  /// round-robin at start().
  void add_poller(Poller p);

  /// Spawns `threads` workers. Must be called after all add_poller calls.
  void start(int threads);

  /// Stops and joins all workers (also run by the destructor).
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void worker_main(int worker_id, int worker_count);

  std::vector<Poller> pollers_;
  std::vector<std::jthread> threads_;
  std::atomic<bool> running_{false};
};

}  // namespace dpc::dpu
