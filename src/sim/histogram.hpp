// Log-bucketed latency histogram with percentile queries.
//
// Thread-safe recording via per-bucket atomics so concurrent simulated
// threads can record without a lock on the hot path.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>

#include "sim/time.hpp"

namespace dpc::sim {

/// Latency histogram with ~4% relative bucket resolution covering
/// [1 ns, ~18 hours]. Buckets are (base-2 exponent, 1/16 sub-bucket) pairs.
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;     // sub-buckets per octave
  static constexpr int kOctaves = 46;            // 2^46 ns ≈ 19.5 hours
  static constexpr int kBuckets = kOctaves * kSub;

  Histogram() = default;
  // Histograms are shared by reference between worker threads; copying a
  // live histogram would tear, so forbid it.
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(Nanos v);
  void record_n(Nanos v, std::uint64_t n);

  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }
  Nanos min() const;
  Nanos max() const;
  /// Arithmetic mean of recorded values (bucket-midpoint approximation).
  Nanos mean() const;
  /// p in [0,100]. Returns the upper edge of the bucket containing the
  /// p-th percentile sample.
  Nanos percentile(double p) const;

  void merge(const Histogram& other);
  void reset();

 private:
  static int bucket_index(std::int64_t ns);
  static std::int64_t bucket_upper(int idx);
  static std::int64_t bucket_mid(int idx);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

}  // namespace dpc::sim
