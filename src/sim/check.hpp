// Lightweight precondition / invariant checking used across the DPC tree.
//
// DPC_CHECK is always on (simulation correctness beats a few branches);
// DPC_DCHECK compiles out in NDEBUG builds and is meant for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dpc {

/// Thrown when a DPC_CHECK fails. Derives from logic_error: a failed check is
/// a programming error in the caller, not an environmental condition.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DPC_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace dpc

#define DPC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::dpc::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define DPC_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream dpc_check_os_;                              \
      dpc_check_os_ << msg;                                          \
      ::dpc::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  dpc_check_os_.str());              \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define DPC_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define DPC_DCHECK(expr) DPC_CHECK(expr)
#endif
