#include "sim/mva.hpp"

#include <algorithm>

#include "sim/calib.hpp"
#include "sim/check.hpp"

namespace dpc::sim {

int ClosedNetwork::add(Station s) {
  DPC_CHECK(s.demand.ns >= 0);
  DPC_CHECK(s.kind == StationKind::kDelay || s.servers >= 1);
  stations_.push_back(std::move(s));
  return static_cast<int>(stations_.size()) - 1;
}

int ClosedNetwork::add_queueing(std::string name, int servers, Nanos demand) {
  return add(Station{std::move(name), StationKind::kQueueing, servers, demand});
}

int ClosedNetwork::add_delay(std::string name, Nanos demand) {
  return add(Station{std::move(name), StationKind::kDelay, 1, demand});
}

int ClosedNetwork::add_nvm(std::string name, std::uint64_t bytes_per_op) {
  return add_queueing(std::move(name), 1,
                      calib::nvm_persist_cost(bytes_per_op));
}

const Station& ClosedNetwork::station(int i) const {
  DPC_CHECK(i >= 0 && i < station_count());
  return stations_[static_cast<std::size_t>(i)];
}

MvaResult ClosedNetwork::solve(int customers) const {
  DPC_CHECK(customers >= 1);
  const auto m = stations_.size();

  // Seidmann decomposition: queueing part demand D/m, delay part D(m-1)/m.
  std::vector<double> dq(m), dd(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& s = stations_[i];
    const double d = static_cast<double>(s.demand.ns);
    if (s.kind == StationKind::kDelay) {
      dq[i] = 0.0;
      dd[i] = d;
    } else {
      dq[i] = d / s.servers;
      dd[i] = d * (s.servers - 1) / s.servers;
    }
  }

  std::vector<double> q(m, 0.0);   // mean queue length at queueing part
  std::vector<double> r(m, 0.0);   // residence (queueing + delay parts)
  double x = 0.0;                  // throughput, ops per ns

  for (int n = 1; n <= customers; ++n) {
    double total_r = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      r[i] = dq[i] * (1.0 + q[i]) + dd[i];
      total_r += r[i];
    }
    x = static_cast<double>(n) /
        (total_r + static_cast<double>(think_.ns));
    for (std::size_t i = 0; i < m; ++i) q[i] = x * (dq[i] * (1.0 + q[i]));
    // Note: q tracks only the queueing part; the delay part's population
    // never queues, so it is excluded from the arrival-theorem term.
  }

  MvaResult res;
  res.customers = customers;
  res.throughput_ops = x * 1e9;
  double total_r = 0.0;
  res.residence.resize(m);
  res.utilization.resize(m);
  res.queue_len.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    res.residence[i] = Nanos{static_cast<std::int64_t>(r[i])};
    total_r += r[i];
    const auto& s = stations_[i];
    const double d = static_cast<double>(s.demand.ns);
    res.utilization[i] =
        s.kind == StationKind::kDelay ? 0.0 : x * d / s.servers;
    res.queue_len[i] = x * r[i];  // Little's law on the whole station
  }
  res.response = Nanos{static_cast<std::int64_t>(total_r)};
  return res;
}

std::vector<MvaResult> ClosedNetwork::solve_sweep(
    const std::vector<int>& populations) const {
  std::vector<MvaResult> out;
  out.reserve(populations.size());
  for (int n : populations) out.push_back(solve(n));
  return out;
}

double cpu_busy_cores(double throughput_ops, Nanos demand_per_op) {
  return throughput_ops * static_cast<double>(demand_per_op.ns) / 1e9;
}

double cpu_usage_fraction(double throughput_ops, Nanos demand_per_op,
                          int cores) {
  DPC_CHECK(cores >= 1);
  return std::min(1.0, cpu_busy_cores(throughput_ops, demand_per_op) / cores);
}

}  // namespace dpc::sim
