#include "sim/schedhook.hpp"

#include "sim/check.hpp"

namespace dpc::sim::schedhook {

void install(const Hooks* hooks) {
  const Hooks* expected = nullptr;
  DPC_CHECK_MSG(detail::g_hooks.compare_exchange_strong(
                    expected, hooks, std::memory_order_acq_rel),
                "schedhook: a checker is already installed");
}

void uninstall() { detail::g_hooks.store(nullptr, std::memory_order_release); }

}  // namespace dpc::sim::schedhook
