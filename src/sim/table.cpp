#include "sim/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/check.hpp"

namespace dpc::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DPC_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DPC_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, table has "
                           << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "" : ",") << cells[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (std::fabs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << scaled << suffix;
  return os.str();
}

}  // namespace dpc::sim
