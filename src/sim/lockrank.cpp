#include "sim/lockrank.hpp"

#include <cstdio>

namespace dpc::sim {

const char* lockrank_name(LockRank r) {
  switch (r) {
    case LockRank::kLeaf:
      return "leaf";
    case LockRank::kDevice:
      return "device";
    case LockRank::kStore:
      return "store";
    case LockRank::kDriver:
      return "driver";
    case LockRank::kShard:
      return "shard";
    case LockRank::kFs:
      return "fs";
    case LockRank::kCacheEntry:
      return "cache-entry";
    case LockRank::kCacheBucket:
      return "cache-bucket";
    case LockRank::kCachePass:
      return "cache-pass";
    case LockRank::kSystem:
      return "system";
    case LockRank::kAdapter:
      return "adapter";
  }
  return "?";
}

}  // namespace dpc::sim

#if DPC_LOCKRANK_ENABLED

#include <cstdint>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dpc::sim::lockrank {

namespace {

struct Held {
  const void* key;
  LockRank rank;
  const char* name;
  bool shared;
};

// The held stack is purely thread-local, so rank checks (the common case:
// every acquisition) never touch shared state.
thread_local std::vector<Held> t_held;

// Same-rank acquired-before edges this thread has already pushed into the
// global graph — lets the hot striped-lock paths (kvfs DualLock, kv
// scan_prefix) skip the graph mutex after the first observation.
thread_local std::unordered_set<std::uint64_t> t_edge_seen;

std::uint64_t edge_id(const void* a, const void* b) {
  const auto ha = reinterpret_cast<std::uintptr_t>(a);
  const auto hb = reinterpret_cast<std::uintptr_t>(b);
  // Splittable mix of both addresses; collisions only cost a redundant
  // graph-mutex round trip, never a missed edge.
  std::uint64_t x = (static_cast<std::uint64_t>(ha) * 0x9E3779B97F4A7C15ull) ^
                    (static_cast<std::uint64_t>(hb) + 0x6A09E667F3BCC909ull);
  x ^= x >> 29;
  return x;
}

// Global acquired-before graph over same-rank lock instances. Edge A->B
// means "some thread held A while acquiring B"; each edge stores the
// holder's lock set at first observation so violations can print both
// sides. Keys are raw addresses — a destroyed-and-reallocated mutex could
// in principle alias an old node, which is acceptable for a debug tool and
// resettable per test via reset_for_test().
struct Graph {
  std::mutex mu;
  struct Edge {
    std::string first_seen_holding;
  };
  std::unordered_map<const void*, std::unordered_map<const void*, Edge>> out;
  std::unordered_map<const void*, const char*> node_name;
};

Graph& graph() {
  static Graph* g = new Graph;  // leaked: outlives all static dtors
  return *g;
}

std::string describe(const std::vector<Held>& held) {
  std::ostringstream os;
  if (held.empty()) return "  (none)\n";
  for (const Held& h : held) {
    os << "  \"" << h.name << "\" rank=" << lockrank_name(h.rank) << '('
       << static_cast<int>(h.rank) << ") key=" << h.key
       << (h.shared ? " [shared]\n" : "\n");
  }
  return os.str();
}

// DFS: is `to` reachable from `from` following acquired-before edges?
// Records the path (as node keys) when found. Caller holds g.mu.
bool find_path(const Graph& g, const void* from, const void* to,
               std::unordered_set<const void*>& visited,
               std::vector<const void*>& path) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  if (!visited.insert(from).second) return false;
  const auto it = g.out.find(from);
  if (it == g.out.end()) return false;
  for (const auto& [next, edge] : it->second) {
    if (find_path(g, next, to, visited, path)) {
      path.push_back(from);
      return true;
    }
  }
  return false;
}

[[noreturn]] void fail(const std::string& msg) {
  std::fputs(msg.c_str(), stderr);
  std::fflush(stderr);
  throw LockOrderError(msg);
}

}  // namespace

void acquire(const void* key, LockRank rank, const char* name, bool shared) {
  // Same-rank held locks whose acquired-before edges to `key` we must
  // record/check. Collected during the rank sweep.
  const Held* same_rank_holder = nullptr;

  for (const Held& h : t_held) {
    if (h.key == key) {
      std::ostringstream os;
      os << "lockrank: recursive acquisition of \"" << name << "\" (key "
         << key << ") — already held by this thread.\nheld locks:\n"
         << describe(t_held);
      fail(os.str());
    }
    if (static_cast<int>(rank) > static_cast<int>(h.rank)) {
      std::ostringstream os;
      os << "lockrank: rank inversion — acquiring \"" << name
         << "\" rank=" << lockrank_name(rank) << '('
         << static_cast<int>(rank) << ") while holding lower-ranked \""
         << h.name << "\" rank=" << lockrank_name(h.rank) << '('
         << static_cast<int>(h.rank)
         << ").\nacquisition order must be descending rank.\nheld locks:\n"
         << describe(t_held);
      fail(os.str());
    }
    if (h.rank == rank) same_rank_holder = &h;
  }

  if (same_rank_holder != nullptr) {
    // Same-rank nesting (striped locks). Record holder->key in the global
    // acquired-before graph unless this thread already did, and reject the
    // edge if the reverse direction is already reachable (a cycle: two
    // orders for the same pair/chain of same-rank locks).
    const void* holder = same_rank_holder->key;
    if (t_edge_seen.insert(edge_id(holder, key)).second) {
      Graph& g = graph();
      std::lock_guard<std::mutex> gl(g.mu);
      g.node_name[holder] = same_rank_holder->name;
      g.node_name[key] = name;
      auto& edges = g.out[holder];
      if (edges.find(key) == edges.end()) {
        std::unordered_set<const void*> visited;
        std::vector<const void*> path;
        if (find_path(g, key, holder, visited, path)) {
          // path is recorded callee-first: holder ... key (reversed).
          std::ostringstream os;
          os << "lockrank: acquired-before cycle — acquiring \"" << name
             << "\" (key " << key << ") while holding \""
             << same_rank_holder->name << "\" (key " << holder
             << "), but the opposite order was already observed:\n  cycle: ";
          for (auto it = path.rbegin(); it != path.rend(); ++it) {
            const auto nit = g.node_name.find(*it);
            os << '"' << (nit != g.node_name.end() ? nit->second : "?")
               << "\"(" << *it << ") -> ";
          }
          os << '"' << name << "\"(" << key << ")\nthis thread holds:\n"
             << describe(t_held);
          // First edge of the recorded reverse path carries the holder set
          // seen when that order was first taken.
          const void* rev_from = path.size() >= 2 ? path[path.size() - 1]
                                                  : key;
          const void* rev_to =
              path.size() >= 2 ? path[path.size() - 2] : holder;
          const auto oit = g.out.find(rev_from);
          if (oit != g.out.end()) {
            const auto eit = oit->second.find(rev_to);
            if (eit != oit->second.end()) {
              os << "opposite order was first taken while holding:\n"
                 << eit->second.first_seen_holding;
            }
          }
          fail(os.str());
        }
        edges.emplace(key, Graph::Edge{describe(t_held)});
      }
    }
  }

  t_held.push_back(Held{key, rank, name, shared});
}

void release(const void* key) {
  // Out-of-LIFO release is legal; search from the top of the stack.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->key == key) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a lock this thread never recorded: tolerated silently so the
  // reset_for_test() path (which wipes the held set under guards that will
  // still run their destructors) stays usable from tests.
}

void reset_for_test() {
  t_held.clear();
  t_edge_seen.clear();
  Graph& g = graph();
  std::lock_guard<std::mutex> gl(g.mu);
  g.out.clear();
  g.node_name.clear();
  // Note: other threads' t_edge_seen caches are NOT cleared — after a reset
  // they may skip re-inserting an edge they already reported. Tests drive
  // the detector from one thread, where this cannot happen.
}

std::size_t held_count() { return t_held.size(); }

}  // namespace dpc::sim::lockrank

#endif  // DPC_LOCKRANK_ENABLED
