// Exact Mean Value Analysis (MVA) for single-class closed queueing networks.
//
// This is the timing backbone of the reproduction: every figure's
// latency/IOPS/CPU-usage-vs-threads curve is produced by building a network
// whose stations are the physical resources of the paper's testbed (host CPU
// cores, DPU cores, the PCIe link, the single virtio HAL thread, SSD
// channels, KV/DFS backends) and whose service demands come from measured op
// counts (e.g. DMA counts from the functional ring implementations) times the
// calibration constants in calib.hpp.
//
// Why MVA: the paper's experiments are all closed-loop (`N` fio/vdbench
// threads, each issuing the next op after the previous completes). For such
// systems exact MVA computes per-station residence times, throughput and
// utilization without simulation noise, and naturally produces the
// saturation knees the paper reports (virtio's single queue, the SSD at
// >32 threads, the DPU at 128 threads).
//
// Multi-server stations use the Seidmann decomposition: an m-server station
// with demand D is modelled as a single-server queueing station with demand
// D/m plus a pure-delay term D·(m-1)/m. This keeps the exact MVA recursion
// applicable and is accurate in both the light-load and saturated regimes —
// exactly the regions the paper's figures live in.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dpc::sim {

enum class StationKind {
  kQueueing,  ///< finite servers; customers queue (CPU, link, device)
  kDelay,     ///< infinite servers; pure latency (network propagation)
};

/// One resource in the closed network.
struct Station {
  std::string name;
  StationKind kind = StationKind::kQueueing;
  /// Number of parallel servers (cores, SSD channels, ...). Ignored for
  /// delay stations.
  int servers = 1;
  /// Total service demand of one op at this station (visit ratio folded in).
  Nanos demand{};
};

/// Solution of the network for one population size.
struct MvaResult {
  int customers = 0;
  /// System throughput, ops per second.
  double throughput_ops = 0.0;
  /// Mean end-to-end response time of one op.
  Nanos response{};
  /// Per-station mean residence time of one op (queueing + service).
  std::vector<Nanos> residence;
  /// Per-station utilization of a *single* server, in [0,1]. For an
  /// m-server station this is X·D/m.
  std::vector<double> utilization;
  /// Per-station mean queue length (jobs present, incl. in service).
  std::vector<double> queue_len;
};

class ClosedNetwork {
 public:
  /// Adds a station, returns its index.
  int add(Station s);

  /// Convenience: add a queueing station.
  int add_queueing(std::string name, int servers, Nanos demand);
  /// Convenience: add a pure-delay station.
  int add_delay(std::string name, Nanos demand);
  /// Convenience: add the PMEM/NVM write-ahead-log station — a single-server
  /// queueing station (the log tail serializes appenders) whose per-op
  /// demand is the calibrated persist cost of one `bytes_per_op` append:
  /// media write + streaming transfer + persistence fence (calib §NVM).
  int add_nvm(std::string name, std::uint64_t bytes_per_op);

  /// Client think time between ops (Z). Zero for the paper's closed-loop
  /// saturation tests.
  void set_think_time(Nanos z) { think_ = z; }

  int station_count() const { return static_cast<int>(stations_.size()); }
  const Station& station(int i) const;

  /// Exact MVA recursion from population 1..n; O(n · stations).
  MvaResult solve(int customers) const;

  /// Solve for each population in `populations` (sorted ascending not
  /// required; the recursion runs once to the max).
  std::vector<MvaResult> solve_sweep(const std::vector<int>& populations) const;

 private:
  std::vector<Station> stations_;
  Nanos think_{};
};

/// CPU-usage helper (utilization law): given system throughput X (ops/sec)
/// and per-op CPU demand D on a pool of `cores` cores, the busy fraction of
/// the whole pool is X·D / cores, and the busy core count is X·D.
double cpu_busy_cores(double throughput_ops, Nanos demand_per_op);
double cpu_usage_fraction(double throughput_ops, Nanos demand_per_op,
                          int cores);

}  // namespace dpc::sim
