#include "sim/histogram.hpp"

#include <bit>
#include <cmath>

#include "sim/check.hpp"

namespace dpc::sim {

int Histogram::bucket_index(std::int64_t ns) {
  if (ns < 1) ns = 1;
  const auto u = static_cast<std::uint64_t>(ns);
  // Values below 2^kSubBits get exact buckets (indices 0..kSub-1 are free:
  // the log-spaced scheme only starts at octave kSubBits).
  if (u < kSub) return static_cast<int>(u);
  const int octave = 63 - std::countl_zero(u);
  if (octave >= kOctaves) return kBuckets - 1;
  // Sub-bucket: top kSubBits bits below the leading one.
  const int sub = static_cast<int>((u >> (octave - kSubBits)) & (kSub - 1));
  return octave * kSub + sub;
}

std::int64_t Histogram::bucket_upper(int idx) {
  if (idx < kSub) return idx;  // exact small-value bucket
  const int octave = idx / kSub;
  const int sub = idx % kSub;
  if (octave >= 62) return INT64_MAX;
  const std::int64_t base = std::int64_t{1} << octave;
  return base + (base >> kSubBits) * (sub + 1) - 1;
}

std::int64_t Histogram::bucket_mid(int idx) {
  if (idx < kSub) return idx;
  const int octave = idx / kSub;
  const int sub = idx % kSub;
  if (octave >= 62) return INT64_MAX / 2;
  const std::int64_t base = std::int64_t{1} << octave;
  const std::int64_t step = base >> kSubBits;
  return base + step * sub + step / 2;
}

void Histogram::record(Nanos v) { record_n(v, 1); }

void Histogram::record_n(Nanos v, std::uint64_t n) {
  if (n == 0) return;
  const int idx = bucket_index(v.ns);
  buckets_[static_cast<std::size_t>(idx)].fetch_add(n,
                                                    std::memory_order_relaxed);
  total_.fetch_add(n, std::memory_order_relaxed);
  // min/max via CAS loops; contention here is cold relative to recording.
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v.ns < cur &&
         !min_.compare_exchange_weak(cur, v.ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v.ns > cur &&
         !max_.compare_exchange_weak(cur, v.ns, std::memory_order_relaxed)) {
  }
}

Nanos Histogram::min() const {
  const auto m = min_.load(std::memory_order_relaxed);
  return Nanos{m == INT64_MAX ? 0 : m};
}

Nanos Histogram::max() const {
  const auto m = max_.load(std::memory_order_relaxed);
  return Nanos{m == INT64_MIN ? 0 : m};
}

Nanos Histogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return Nanos{0};
  unsigned __int128 sum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const auto c = buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (c != 0) sum += static_cast<unsigned __int128>(c) * bucket_mid(i);
  }
  return Nanos{static_cast<std::int64_t>(sum / n)};
}

Nanos Histogram::percentile(double p) const {
  DPC_CHECK(p >= 0.0 && p <= 100.0);
  const std::uint64_t n = count();
  if (n == 0) return Nanos{0};
  // Nearest-rank: the smallest value with at least ceil(p/100·n) samples at
  // or below it.
  auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (target == 0) target = 1;
  if (target > n) target = n;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (seen >= target) return Nanos{bucket_upper(i)};
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const auto c = other.buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (c != 0)
      buckets_[static_cast<std::size_t>(i)].fetch_add(
          c, std::memory_order_relaxed);
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  const auto omin = other.min_.load(std::memory_order_relaxed);
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (omin < cur &&
         !min_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
  }
  const auto omax = other.max_.load(std::memory_order_relaxed);
  cur = max_.load(std::memory_order_relaxed);
  while (omax > cur &&
         !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

}  // namespace dpc::sim
