// Minimal fixed-width table printer used by the figure/table bench binaries
// to emit paper-style rows (and optional CSV for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dpc::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns.
  void print(std::ostream& os) const;
  /// Renders as CSV (for plotting scripts).
  void print_csv(std::ostream& os) const;

  static std::string fmt(double v, int precision = 1);
  /// Engineering formatting: 1234567 -> "1.23M".
  static std::string fmt_si(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpc::sim
