#include "sim/workload.hpp"

#include "sim/check.hpp"

namespace dpc::sim {

const char* to_string(OpType t) {
  switch (t) {
    case OpType::kRead:
      return "read";
    case OpType::kWrite:
      return "write";
    case OpType::kCreate:
      return "create";
  }
  return "?";
}

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kRandRead:
      return "rand-read";
    case Pattern::kRandWrite:
      return "rand-write";
    case Pattern::kSeqRead:
      return "seq-read";
    case Pattern::kSeqWrite:
      return "seq-write";
    case Pattern::kMixed:
      return "mixed";
    case Pattern::kCreate:
      return "create";
  }
  return "?";
}

WorkloadGen::WorkloadGen(const WorkloadSpec& spec, std::uint64_t stream_id)
    : spec_(spec),
      rng_(spec.seed * 0x9e3779b97f4a7c15ULL + stream_id + 1),
      stream_id_(stream_id) {
  DPC_CHECK(spec_.io_size > 0);
  DPC_CHECK(spec_.file_size >= spec_.io_size);
  DPC_CHECK(spec_.file_count >= 1);
  DPC_CHECK(spec_.read_fraction >= 0.0 && spec_.read_fraction <= 1.0);
  DPC_CHECK(spec_.locality >= 0.0 && spec_.locality <= 1.0);
  DPC_CHECK(spec_.hot_fraction > 0.0 && spec_.hot_fraction <= 1.0);
}

std::uint64_t WorkloadGen::aligned_slots() const {
  return spec_.file_size / spec_.io_size;
}

std::uint64_t WorkloadGen::random_offset() {
  const std::uint64_t slots = aligned_slots();
  std::uint64_t slot;
  if (spec_.locality > 0.0 && rng_.next_bool(spec_.locality)) {
    const auto hot =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       static_cast<double>(slots) *
                                       spec_.hot_fraction));
    slot = rng_.next_below(hot);
  } else {
    slot = rng_.next_below(slots);
  }
  return slot * spec_.io_size;
}

IoOp WorkloadGen::next() {
  IoOp op;
  op.length = spec_.io_size;
  op.file_id = spec_.file_count == 1 ? 0 : rng_.next_below(spec_.file_count);
  switch (spec_.pattern) {
    case Pattern::kRandRead:
      op.type = OpType::kRead;
      op.offset = random_offset();
      break;
    case Pattern::kRandWrite:
      op.type = OpType::kWrite;
      op.offset = random_offset();
      break;
    case Pattern::kSeqRead:
    case Pattern::kSeqWrite: {
      op.type = spec_.pattern == Pattern::kSeqRead ? OpType::kRead
                                                   : OpType::kWrite;
      const std::uint64_t slots = aligned_slots();
      op.offset = (seq_cursor_ % slots) * spec_.io_size;
      ++seq_cursor_;
      break;
    }
    case Pattern::kMixed:
      op.type = rng_.next_bool(spec_.read_fraction) ? OpType::kRead
                                                    : OpType::kWrite;
      op.offset = random_offset();
      break;
    case Pattern::kCreate:
      op.type = OpType::kCreate;
      // Each stream creates its own namespace of files so concurrent
      // creators never collide (matches vdbench's per-thread directories).
      op.file_id = (stream_id_ << 40) | create_cursor_++;
      op.offset = 0;
      break;
  }
  return op;
}

std::vector<int> default_thread_sweep(int max_threads) {
  DPC_CHECK(max_threads >= 1);
  std::vector<int> out;
  for (int n = 1; n <= max_threads; n *= 2) out.push_back(n);
  return out;
}

}  // namespace dpc::sim
