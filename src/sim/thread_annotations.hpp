// Clang thread-safety annotation macros and annotated lock wrappers.
//
// Under Clang the macros expand to the capability-analysis attributes so the
// tree builds with -Wthread-safety -Werror; under GCC (which has no such
// analysis) they expand to nothing. The wrappers additionally feed the
// runtime lock-rank detector (lockrank.hpp) in Debug/TSan builds, so every
// AnnotatedMutex declares its deadlock rank exactly once, at construction.
//
// Conventions used across the tree:
//   * members:      Type field GUARDED_BY(mu_);
//   * helpers:      void drain_locked() REQUIRES(mu_);
//   * shared reads: Value load() const REQUIRES_SHARED(mu_);
//   * lock-free:    functions that intentionally bypass a mutex (immutable
//     post-start state, single-consumer rings) carry
//     NO_THREAD_SAFETY_ANALYSIS plus a comment saying why.
//
// Use the LockGuard/UniqueLock/SharedLockGuard/SharedLock RAII types below
// instead of std::lock_guard/std::unique_lock/std::shared_lock: the std
// types are not annotated, so Clang cannot see their acquire/release.
// UniqueLock/SharedLock satisfy BasicLockable and work with
// std::condition_variable_any.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "sim/lockrank.hpp"
#include "sim/schedhook.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DPC_TSA(x) __attribute__((x))
#endif
#endif
#ifndef DPC_TSA
#define DPC_TSA(x)  // no-op: GCC and pre-capability Clang
#endif

#define CAPABILITY(x) DPC_TSA(capability(x))
#define SCOPED_CAPABILITY DPC_TSA(scoped_lockable)
#define GUARDED_BY(x) DPC_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) DPC_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) DPC_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DPC_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) DPC_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) DPC_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) DPC_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) DPC_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DPC_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) DPC_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) DPC_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) DPC_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  DPC_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) DPC_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) DPC_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) DPC_TSA(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) DPC_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS DPC_TSA(no_thread_safety_analysis)

namespace dpc::sim {

/// std::mutex with a thread-safety capability and a declared deadlock rank.
/// Drop-in for std::mutex members; construct with a stable name and the
/// lock's tier from the rank table in lockrank.hpp.
class CAPABILITY("mutex") AnnotatedMutex {
 public:
  explicit AnnotatedMutex(const char* name, LockRank rank)
      : name_(name), rank_(rank) {}
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() ACQUIRE() {
    // Model-checker decision point: a preemption directly before the
    // acquire is the canonical racy interleaving.
    schedhook::point(name_);
    // Rank check first: a violation must throw with the mutex untouched,
    // so the error is reportable instead of wedging later unlocks.
    lockrank::acquire(this, rank_, name_);
    // Under the checker the blocking lock becomes try/spin so the single
    // runnable token keeps moving; plain blocking lock otherwise.
    schedhook::coop_lock(mu_, name_);
  }
  bool try_lock() TRY_ACQUIRE(true) {
    schedhook::point(name_);
    if (!mu_.try_lock()) return false;
    try {
      lockrank::acquire(this, rank_, name_);
    } catch (...) {
      mu_.unlock();
      throw;
    }
    return true;
  }
  void unlock() RELEASE() {
    // point_noexcept: guard destructors land here; a throwing point would
    // escape their noexcept frame and terminate.
    schedhook::point_noexcept(name_);
    lockrank::release(this);
    mu_.unlock();
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

  /// For negative annotations on `this` in const contexts.
  const AnnotatedMutex& operator!() const { return *this; }

 private:
  std::mutex mu_;
  const char* name_;
  LockRank rank_;
};

/// std::shared_mutex analogue. Shared acquisitions participate in the rank
/// and acquired-before checks exactly like exclusive ones.
class CAPABILITY("shared_mutex") AnnotatedSharedMutex {
 public:
  explicit AnnotatedSharedMutex(const char* name, LockRank rank)
      : name_(name), rank_(rank) {}
  AnnotatedSharedMutex(const AnnotatedSharedMutex&) = delete;
  AnnotatedSharedMutex& operator=(const AnnotatedSharedMutex&) = delete;

  void lock() ACQUIRE() {
    schedhook::point(name_);
    // Rank check first: a violation must throw with the mutex untouched,
    // so the error is reportable instead of wedging later unlocks.
    lockrank::acquire(this, rank_, name_);
    schedhook::coop_lock(mu_, name_);
  }
  bool try_lock() TRY_ACQUIRE(true) {
    schedhook::point(name_);
    if (!mu_.try_lock()) return false;
    try {
      lockrank::acquire(this, rank_, name_);
    } catch (...) {
      mu_.unlock();
      throw;
    }
    return true;
  }
  void unlock() RELEASE() {
    // point_noexcept: guard destructors land here; a throwing point would
    // escape their noexcept frame and terminate.
    schedhook::point_noexcept(name_);
    lockrank::release(this);
    mu_.unlock();
  }

  void lock_shared() ACQUIRE_SHARED() {
    schedhook::point(name_);
    lockrank::acquire(this, rank_, name_, /*shared=*/true);
    schedhook::coop_lock_shared(mu_, name_);
  }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    schedhook::point(name_);
    if (!mu_.try_lock_shared()) return false;
    try {
      lockrank::acquire(this, rank_, name_, /*shared=*/true);
    } catch (...) {
      mu_.unlock_shared();
      throw;
    }
    return true;
  }
  void unlock_shared() RELEASE_SHARED() {
    schedhook::point_noexcept(name_);
    lockrank::release(this);
    mu_.unlock_shared();
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

  const AnnotatedSharedMutex& operator!() const { return *this; }

 private:
  std::shared_mutex mu_;
  const char* name_;
  LockRank rank_;
};

/// Annotated std::lock_guard: locks in the constructor, unlocks in the
/// destructor, no release before scope exit.
template <typename Mutex>
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated std::unique_lock: movable-free minimal variant supporting
/// deferred construction, manual lock/unlock, and condition_variable_any
/// (it satisfies BasicLockable).
template <typename Mutex>
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    held_ = true;
  }
  struct defer_t {};
  UniqueLock(Mutex& mu, defer_t) EXCLUDES(mu) : mu_(&mu) {}
  ~UniqueLock() RELEASE() {
    if (held_) mu_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() {
    mu_->lock();
    held_ = true;
  }
  void unlock() RELEASE() {
    mu_->unlock();
    held_ = false;
  }
  bool owns_lock() const { return held_; }

 private:
  Mutex* mu_;
  bool held_ = false;
};

/// Annotated shared (reader) guard over AnnotatedSharedMutex.
template <typename Mutex>
class SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(Mutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLockGuard() RELEASE_GENERIC() { mu_.unlock_shared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated std::shared_lock: manual lock/unlock shared variant (used where
/// reader locks are collected into containers or released early).
template <typename Mutex>
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(Mutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->lock_shared();
    held_ = true;
  }
  SharedLock() = default;
  ~SharedLock() RELEASE_GENERIC() {
    if (held_) mu_->unlock_shared();
  }
  SharedLock(SharedLock&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : mu_(other.mu_), held_(other.held_) {
    other.held_ = false;
    other.mu_ = nullptr;
  }
  SharedLock& operator=(SharedLock&&) = delete;
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

  void unlock() RELEASE_GENERIC() {
    mu_->unlock_shared();
    held_ = false;
  }
  bool owns_lock() const { return held_; }

 private:
  Mutex* mu_ = nullptr;
  bool held_ = false;
};

}  // namespace dpc::sim
