// Deterministic, fast PRNG for workload generation (xoshiro256++).
//
// Workload generators must be reproducible across runs and platforms, so we
// avoid std::mt19937 distribution differences and carry our own generator and
// integer-range reduction.
#pragma once

#include <array>
#include <cstdint>

namespace dpc::sim {

namespace detail {
constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace detail

/// xoshiro256++ — public-domain generator by Blackman & Vigna.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = detail::splitmix64(sm);
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result =
        detail::rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = detail::rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // 128-bit multiply keeps the reduction unbiased enough for workloads.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  constexpr bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dpc::sim
