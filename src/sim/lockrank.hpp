// Runtime lock-rank / lock-order deadlock detector.
//
// Every lock in the DPC tree declares a LockRank. The invariant is a total
// order on ranks: a thread may acquire a lock only if its rank is at or
// below every rank it already holds. Same-rank acquisition is legal (lock
// striping — KVFS inode stripes, KV shards — needs it) but is tracked in a
// global acquired-before graph keyed by lock instance; adding an edge that
// closes a cycle is reported as a potential deadlock even if the bad
// interleaving never fires at runtime. Both violation kinds print the
// current thread's held-lock set and the held-lock set recorded when the
// conflicting (reverse) edge was first observed, then throw LockOrderError
// (a logic_error: lock-order bugs are programming errors, like DPC_CHECK).
//
// The detector is active in Debug and sanitizer builds and compiles out to
// nothing in release builds (see DPC_LOCKRANK_ENABLED below); the chaos/TSan
// CI legs therefore run every test under it. The annotated wrappers in
// thread_annotations.hpp call these hooks automatically; the hybrid cache's
// PCIe-atomic lock *words* (entry/bucket locks, which are not std mutexes)
// call them manually from the host and control planes.
//
// Rank table (descending acquisition order — outermost first). The coarse
// tiers of the design doc are pcie-atomic < cache-entry < shard < system;
// the concrete table refines them so every real nesting in the tree is
// expressible:
//
//   kAdapter      fs-adapter size view (DpcSystem::size_mu_) — outermost
//   kSystem       worker-pool lifecycle, per-queue pump serialization
//   kCachePass    hybrid-cache control-plane pass mutex
//   kCacheBucket  hybrid-cache bucket lock words   (PCIe atomics)
//   kCacheEntry   hybrid-cache entry lock words    (PCIe atomics)
//   kFs           whole-filesystem locks (hostfs meta, dfs client cache)
//   kShard        striped state (kvfs inode stripes + caches, mds/ds maps)
//   kDriver       per-queue transport drivers (nvme-ini, virtqueue, pcache)
//   kStore        disaggregated KV store shards
//   kDevice       device model shards (ssd)
//   kLeaf         may be acquired under anything (fault injector, breaker)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dpc::sim {

enum class LockRank : std::uint8_t {
  kLeaf = 0,
  kDevice = 10,
  kStore = 20,
  kDriver = 30,
  kShard = 40,
  kFs = 50,
  kCacheEntry = 60,   // the "pcie-atomic" tier: entry read/write lock words
  kCacheBucket = 70,  // bucket lock words (also PCIe atomics)
  kCachePass = 80,
  kSystem = 90,
  kAdapter = 100,
};

const char* lockrank_name(LockRank r);

/// Thrown on a rank inversion or an acquired-before cycle. what() carries
/// both threads' lock sets.
class LockOrderError : public std::logic_error {
 public:
  explicit LockOrderError(const std::string& what) : std::logic_error(what) {}
};

// Enabled in Debug builds and under ThreadSanitizer; compiled out (hooks are
// empty inlines, zero code and zero data on the lock path) in plain release
// builds. Force with -DDPC_LOCKRANK=1 / off with -DDPC_LOCKRANK=0.
#if defined(DPC_LOCKRANK)
#define DPC_LOCKRANK_ENABLED DPC_LOCKRANK
#elif !defined(NDEBUG)
#define DPC_LOCKRANK_ENABLED 1
#elif defined(__SANITIZE_THREAD__)
#define DPC_LOCKRANK_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPC_LOCKRANK_ENABLED 1
#else
#define DPC_LOCKRANK_ENABLED 0
#endif
#else
#define DPC_LOCKRANK_ENABLED 0
#endif

constexpr bool lockrank_enabled() { return DPC_LOCKRANK_ENABLED != 0; }

#if DPC_LOCKRANK_ENABLED

namespace lockrank {

/// Records a successful acquisition of `key` (any stable address identifying
/// the lock instance) at `rank`. Throws LockOrderError on a rank inversion
/// or when the same-rank acquired-before graph gains a cycle. `shared`
/// acquisitions participate in rank checks and edges like exclusive ones
/// (reader-holds-A-wants-B deadlocks against writers are real).
void acquire(const void* key, LockRank rank, const char* name,
             bool shared = false);

/// Records the release of `key` on this thread. Out-of-LIFO release is fine
/// (the cache planes release bucket locks before entry locks).
void release(const void* key);

/// Drops all recorded edges and this thread's held set — test isolation.
void reset_for_test();

/// Number of locks the calling thread currently holds (test introspection).
std::size_t held_count();

}  // namespace lockrank

#else  // !DPC_LOCKRANK_ENABLED

namespace lockrank {
inline void acquire(const void*, LockRank, const char*, bool = false) {}
inline void release(const void*) {}
inline void reset_for_test() {}
inline std::size_t held_count() { return 0; }
}  // namespace lockrank

#endif  // DPC_LOCKRANK_ENABLED

}  // namespace dpc::sim
