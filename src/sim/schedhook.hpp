// Scheduler hook seam for the systematic concurrency checker (src/check/).
//
// Every synchronization-relevant site in the tree — AnnotatedMutex acquire/
// release, seqlock generation loads/stores, atomic fences on the lock-free
// cache read path, NvmDevice persist fences, doorbell MMIOs, DMA bursts —
// calls one of the `point()`/`spin()` hooks below. When no checker is
// installed (every production and test run outside dpc_check) the hook is a
// single relaxed load of a null pointer and a predicted-not-taken branch;
// when ModelSched is driving a scenario, the hook hands control to the
// scheduler so it can serialize the managed threads onto one runnable token
// and explore interleavings deterministically.
//
// The seam also hosts the DPC_CHECK_MUTATE registry: protocol code asks
// `mutate("rule")` whether a named fence/ordering mutation is armed and, if
// so, deliberately reorders one step. The checker proves its own teeth by
// arming each mutation and requiring a violation (see DESIGN.md §5k).
//
// Sites are identified by stable string literals; the inventory lives in
// DESIGN.md §5k and is what the exhaustive tier's interleaving counts are
// defined over.
#pragma once

#include <atomic>
#include <cstdint>

namespace dpc::sim::schedhook {

/// Installed by ModelSched for the duration of one scenario run. All
/// callbacks receive `ctx`; they are only invoked from threads the
/// scheduler registered (unmanaged threads pass straight through).
struct Hooks {
  void* ctx = nullptr;
  /// True if the *calling thread* is managed by the checker. The other
  /// callbacks are only invoked when this returns true.
  bool (*managed)(void* ctx) = nullptr;
  /// Decision point: the scheduler may preempt here.
  void (*point)(void* ctx, const char* site) = nullptr;
  /// Spin/blocked point: the thread made no progress (failed try-lock,
  /// queue-full wait). The scheduler must run someone else before this
  /// thread retries; never a decision fork (keeps the DFS tree finite).
  void (*spin)(void* ctx, const char* site) = nullptr;
  /// Decision point reachable from a (noexcept) destructor — mutex unlock
  /// in a guard's dtor. The checker may preempt here but must NOT throw
  /// (crash/stop delivery waits for the thread's next throw-safe point);
  /// a throw would escape the noexcept frame and terminate the process.
  void (*point_noexcept)(void* ctx, const char* site) = nullptr;
  /// True if the named mutation is armed for this run.
  bool (*mutation)(void* ctx, const char* name) = nullptr;
};

namespace detail {
// One global, set only while a scenario runs (dpc_check is single-scenario
// at a time; the gtest harness serializes too).
inline std::atomic<const Hooks*> g_hooks{nullptr};
}  // namespace detail

inline bool active() {
  return detail::g_hooks.load(std::memory_order_acquire) != nullptr;
}

/// Installs/removes the checker hooks. Not reentrant: one checker at a time.
void install(const Hooks* hooks);
void uninstall();

/// Yield/decision point at `site`. No-op unless a checker is installed AND
/// the calling thread is managed by it.
inline void point(const char* site) {
  const Hooks* h = detail::g_hooks.load(std::memory_order_acquire);
  if (h == nullptr) [[likely]]
    return;
  if (h->managed(h->ctx)) h->point(h->ctx, site);
}

/// Spin point at `site`: the calling thread is blocked on another thread's
/// progress (failed try-lock / empty queue). Outside a checker this is a
/// no-op — callers pair it with their own std::this_thread::yield().
inline void spin(const char* site) {
  const Hooks* h = detail::g_hooks.load(std::memory_order_acquire);
  if (h == nullptr) [[likely]]
    return;
  if (h->managed(h->ctx)) h->spin(h->ctx, site);
}

/// Yield point for unlock paths: these run inside noexcept destructors
/// (sim::LockGuard et al.), so the checker schedules but never throws here.
inline void point_noexcept(const char* site) noexcept {
  const Hooks* h = detail::g_hooks.load(std::memory_order_acquire);
  if (h == nullptr) [[likely]]
    return;
  if (h->point_noexcept != nullptr && h->managed(h->ctx))
    h->point_noexcept(h->ctx, site);
}

/// True if the calling thread is managed by an installed checker — used
/// where blocking primitives (condition variables, blocking mutex lock)
/// must be replaced by a cooperative try/spin loop.
inline bool managed_thread() {
  const Hooks* h = detail::g_hooks.load(std::memory_order_acquire);
  return h != nullptr && h->managed(h->ctx);
}

/// True if mutation `name` is armed (DPC_CHECK_MUTATE). Mutations are only
/// ever armed under dpc_check's mutation tier; production code paths ask
/// once per protocol step and reorder exactly one fence when told to.
inline bool mutate(const char* name) {
  const Hooks* h = detail::g_hooks.load(std::memory_order_acquire);
  if (h == nullptr) [[likely]]
    return false;
  return h->mutation != nullptr && h->mutation(h->ctx, name);
}

/// Cooperative lock: under a checker, acquire `mu` (any type with
/// try_lock()) by try/spin so the scheduler keeps the token moving; blocking
/// lock otherwise. `site` names the lock for the trace.
template <typename Mutex>
void coop_lock(Mutex& mu, const char* site) {
  if (managed_thread()) {
    while (!mu.try_lock()) spin(site);
  } else {
    mu.lock();
  }
}

template <typename Mutex>
void coop_lock_shared(Mutex& mu, const char* site) {
  if (managed_thread()) {
    while (!mu.try_lock_shared()) spin(site);
  } else {
    mu.lock_shared();
  }
}

/// Cooperative condition-variable wait: under a checker, poll `pred` with
/// the lock dropped across a spin point (the scheduler runs the thread that
/// will make `pred` true); plain cv wait otherwise. `lock` must satisfy
/// BasicLockable and be held on entry; held on return either way.
template <typename Cv, typename Lock, typename Pred>
void coop_cv_wait(Cv& cv, Lock& lock, Pred pred, const char* site) {
  if (managed_thread()) {
    while (!pred()) {
      lock.unlock();
      spin(site);
      lock.lock();
    }
  } else {
    cv.wait(lock, pred);
  }
}

}  // namespace dpc::sim::schedhook
