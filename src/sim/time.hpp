// Virtual time primitives for the DPC simulation.
//
// All modelled durations are carried in nanoseconds as a strong type so that
// microsecond calibration constants and nanosecond accounting can't be mixed
// up silently.
#pragma once

#include <cstdint>
#include <compare>

namespace dpc::sim {

/// A duration or point on the virtual timeline, in nanoseconds.
struct Nanos {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const Nanos&) const = default;

  constexpr Nanos operator+(Nanos o) const { return {ns + o.ns}; }
  constexpr Nanos operator-(Nanos o) const { return {ns - o.ns}; }
  constexpr Nanos& operator+=(Nanos o) {
    ns += o.ns;
    return *this;
  }
  constexpr Nanos& operator-=(Nanos o) {
    ns -= o.ns;
    return *this;
  }
  constexpr Nanos operator*(std::int64_t k) const { return {ns * k}; }

  constexpr double us() const { return static_cast<double>(ns) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns) / 1e9; }
};

constexpr Nanos nanos(std::int64_t n) { return {n}; }
constexpr Nanos micros(double u) {
  return {static_cast<std::int64_t>(u * 1e3)};
}
constexpr Nanos millis(double m) {
  return {static_cast<std::int64_t>(m * 1e6)};
}

/// Per-simulated-thread virtual clock. Operations advance it by their
/// modelled cost; benches read the final value to compute latency and IOPS.
class VirtualClock {
 public:
  constexpr VirtualClock() = default;
  explicit constexpr VirtualClock(Nanos start) : now_(start) {}

  constexpr Nanos now() const { return now_; }
  constexpr void advance(Nanos d) { now_ += d; }
  /// Jump forward to `t` if it is in the future (used when waiting on a
  /// shared resource that frees up at `t`).
  constexpr void advance_to(Nanos t) {
    if (t > now_) now_ = t;
  }
  constexpr void reset(Nanos t = Nanos{}) { now_ = t; }

 private:
  Nanos now_{};
};

}  // namespace dpc::sim
