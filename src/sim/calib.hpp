// Calibration constants for the DPC reproduction (single source of truth).
//
// These model the testbed in Table 1 of the paper:
//   CPU   : Intel Xeon Gold 6230R — 26 physical cores / 52 threads
//   DPU   : Huawei QingTian — 24 TaiShan cores @ 2.0 GHz, 32 GB DRAM
//   PCIe  : 3.0 x16 (~15.7 GB/s effective)
//   SSD   : Huawei ES3600P V5 — 88 µs read / 14 µs write latency
//
// Every figure/table bench derives its station demands from these constants
// plus op counts *measured* from the functional layer (DMA counts, KV ops,
// MDS hops). Changing a constant here consistently moves every experiment,
// which is the point: the reproduction is one parameterized model, not a
// per-figure curve fit. See DESIGN.md §5.
#pragma once

#include "sim/time.hpp"

namespace dpc::sim::calib {

// ---------------------------------------------------------------- host CPU
inline constexpr int kHostPhysicalCores = 26;
inline constexpr int kHostHwThreads = 52;

/// Host-side cost of one syscall + VFS dispatch (entering the kernel,
/// fdtable/lookup, copying the iovec).
inline constexpr Nanos kSyscallVfs = micros(1.0);

/// fs-adapter per-op cost: hash the <inode,lpn>, build an nvme-fs SQE, ring
/// the doorbell. Deliberately small — the adapter replaces FUSE's queueing.
inline constexpr Nanos kFsAdapterOp = micros(0.9);

/// FUSE layer per-op cost in the DPFS baseline: request transform, FUSE queue
/// insertion, wakeups ("the structure of the FUSE queue is overburdened").
inline constexpr Nanos kFuseLayerOp = micros(10.0);

/// Host-side completion handling of one nvme-fs command (CQE reap, copyout,
/// context wakeup).
inline constexpr Nanos kHostNvmeCompletion = micros(2.0);
/// Completion handling on the virtio path (used-ring reap + eventfd wakeup
/// through the FUSE session loop).
inline constexpr Nanos kVirtioCompletion = micros(8.0);
/// Extra host-side work on virtio read returns (mapping + copy of the
/// returned pages into the user buffer) — why the paper's virtio read
/// latency (36.5 us) exceeds its write latency (34 us).
inline constexpr Nanos kVirtioReadReturnExtra = micros(2.5);

// ------------------------------------------------------------------- PCIe
/// Effective PCIe 3.0 x16 payload bandwidth (paper: "around 15.7GB/s").
inline constexpr double kPcieGBps = 15.7;

/// Fixed cost of one DMA descriptor round (doorbell, TLP setup, completion).
/// Calibrated jointly with the host/DPU demands so that the 4-DMA nvme-fs
/// write lands at ~26.6 µs and the 11-DMA virtio write at ~34 µs (Fig. 6).
inline constexpr Nanos kDmaSetup = micros(1.15);

/// One PCIe atomic (CAS / fetch-add) round trip, used by the hybrid-cache
/// lock protocol.
inline constexpr Nanos kPcieAtomic = micros(0.85);

/// Independent DMA engines able to run setup phases concurrently (payload
/// wire time still serializes on the link itself).
inline constexpr int kPcieDmaEngines = 8;

/// Transfer time of `bytes` over the PCIe link (payload only).
constexpr Nanos pcie_transfer(std::uint64_t bytes) {
  return Nanos{static_cast<std::int64_t>(
      static_cast<double>(bytes) / (kPcieGBps * 1e9) * 1e9)};
}

/// Direction-dependent link efficiency under sustained load (TLP header +
/// flow-control overhead is larger for host→DPU reads-by-the-device than
/// for DPU→host posted writes). Calibrated against the §4.1 bandwidth
/// paragraph (nvme-fs 14.3 GB/s write, 15.1 GB/s read of 15.7 raw).
inline constexpr double kPcieUpEfficiency = 0.911;   // host → DPU
inline constexpr double kPcieDownEfficiency = 0.962; // DPU → host
constexpr Nanos pcie_wire_demand(std::uint64_t bytes, bool host_to_dpu) {
  const double eff = host_to_dpu ? kPcieUpEfficiency : kPcieDownEfficiency;
  return Nanos{static_cast<std::int64_t>(
      static_cast<double>(bytes) / (kPcieGBps * eff * 1e9) * 1e9)};
}

// -------------------------------------------------------------------- DPU
inline constexpr int kDpuCores = 24;
inline constexpr double kDpuDramGB = 32.0;

/// DPU-side per-op cost for the *virtual client* used in the raw transmission
/// test (parse SQE, touch in-memory data, post CQE).
inline constexpr Nanos kDpuVirtualClientOp = micros(11.8);
/// Extra DPU work on the write path (buffer accounting for inbound data).
inline constexpr Nanos kDpuVirtualClientWriteExtra = micros(6.0);

/// DPFS-HAL per-op *CPU* cost (descriptor-chain walk, FUSE decode, reply
/// dispatch). Single HAL thread — this is the virtio single-queue
/// bottleneck that caps DPFS throughput.
inline constexpr Nanos kDpfsHalOp = micros(1.3);
/// The virtio-fs data path stages payloads through bounce buffers; its
/// effective copy bandwidth caps DPFS sequential throughput (§4.1:
/// virtio-fs reaches only 5.1/6.3 GB/s where nvme-fs saturates PCIe).
inline constexpr double kVirtioBounceReadGBps = 6.45;
inline constexpr double kVirtioBounceWriteGBps = 5.17;

/// Scheduling penalty per runnable context beyond the sweet spot: the paper
/// sees peak throughput at 32 threads and attributes the decline to
/// scheduling overhead once threads exceed the DPU's 24 cores.
inline constexpr int kDpuSchedSweetSpot = 32;
inline constexpr Nanos kDpuSchedPenaltyPerThread = micros(0.5);
/// The single DPFS-HAL thread degrades multiplicatively as runnable
/// contexts pile onto the DPU cores (it gets preempted instead of queued).
inline constexpr double kHalSchedFactorPerThread = 0.02;

/// KVFS per-op DPU work for an 8 KB I/O: IO_Dispatch, KVFS mapping lookup,
/// KV request framing, completion. Sized so the DPU saturates near 128
/// client threads (Fig. 7: "CPU usage of DPU reaches 100%" at 128 threads,
/// read latency 363 us and write 410 us at 256 threads).
inline constexpr Nanos kDpuKvfsReadOp = micros(34.0);
inline constexpr Nanos kDpuKvfsWriteOp = micros(38.5);
/// Host-side per-data-op work beyond syscall+adapter+completion: user-buffer
/// copy and submission-slot management on the nvme-fs data path.
inline constexpr Nanos kHostDataPathOp = micros(6.0);

/// DFS-client-on-DPU per-op work (forwarding table, delegation checks,
/// stripe bookkeeping). Reads reassemble the stripe from shard replies on
/// the DPU cores; the write path pushes shards out pipelined with EC on the
/// hardware engine, so its core time is lower.
inline constexpr Nanos kDpuDfsReadOp = micros(55.0);
inline constexpr Nanos kDpuDfsWriteOp = micros(22.0);
/// NFS-compatibility shim the DPC host side still runs per op.
inline constexpr Nanos kNfsCompatShim = micros(2.0);

// -------------------------------------------------------------------- SSD
/// Huawei ES3600P V5 (Table 1).
inline constexpr Nanos kSsdReadLat = micros(88.0);
inline constexpr Nanos kSsdWriteLat = micros(14.0);
/// Channel parallelism: bounds random IOPS (read ~364 K, write ~285 K) so
/// Ext4 stops scaling past 32 threads (Fig. 7) and hits 779/1009 µs @ 256.
inline constexpr int kSsdReadChannels = 32;
inline constexpr int kSsdWriteChannels = 4;
inline constexpr double kSsdSeqReadGBps = 3.05;
inline constexpr double kSsdSeqWriteGBps = 2.05;

// --------------------------------------------------------------- NVM / PMEM
/// Byte-addressable persistent memory on the DPU (Optane-DC/CXL-PM class),
/// used as the write-ahead durability tier in front of the SSD/KV path
/// (NVLog-style). Read/write latencies are DRAM-class; persistence costs an
/// explicit flush+fence (CLWB+SFENCE-class) charged per ordering point, not
/// per store.
inline constexpr Nanos kNvmReadLat = micros(0.30);
inline constexpr Nanos kNvmWriteLat = micros(0.35);
/// One persistence barrier: flush the written lines out of the volatile
/// hierarchy and order them before the next store (CLWB + SFENCE).
inline constexpr Nanos kNvmPersistFence = micros(0.50);
/// Sustained streaming bandwidth of the PMEM DIMMs (write-constrained).
inline constexpr double kNvmGBps = 2.0;
/// Default capacity of the NVM write-ahead log ring.
inline constexpr std::uint64_t kNvmLogBytes = 16ull << 20;

constexpr Nanos nvm_transfer(std::uint64_t bytes) {
  return Nanos{static_cast<std::int64_t>(
      static_cast<double>(bytes) / (kNvmGBps * 1e9) * 1e9)};
}
/// Full modelled cost of persisting `bytes` to the log: media write +
/// streaming transfer + one persistence fence.
constexpr Nanos nvm_persist_cost(std::uint64_t bytes) {
  return kNvmWriteLat + nvm_transfer(bytes) + kNvmPersistFence;
}

// ----------------------------------------------------------- Ext4 baseline
/// Per-op kernel work of the Ext4 + block-layer stack (bio assembly, blk-mq,
/// interrupt handling, extent lookup).
inline constexpr Nanos kExt4KernelOp = micros(5.5);
/// Contention term: lock and run-queue pressure per concurrent sync thread.
/// The paper measures >90% of the whole host busy at 256 threads and blames
/// "disk I/O contention and scheduling"; this reproduces that slope. Reads
/// hold inode/extent locks across the long 88 us device access, so their
/// contention term is steeper than the 14 us write path's.
inline constexpr Nanos kExt4ReadContentionPerThread = micros(0.55);
inline constexpr Nanos kExt4WriteContentionPerThread = micros(0.28);

// ------------------------------------------------------ sequential streams
/// Host kernel cost per 1 MB of sequential Ext4 I/O (bio splitting, page
/// cache copies, readahead bookkeeping). Calibrated against Table 2's
/// single-thread 1.8 / 1.6 GB/s.
inline constexpr Nanos kExt4SeqHostPerMBRead = micros(238.0);
inline constexpr Nanos kExt4SeqHostPerMBWrite = micros(167.0);
/// Host / DPU per-1MB costs of the KVFS sequential path (Table 2: 5.0 /
/// 3.1 GB/s single-thread; the write side packages 8 KB big-file blocks).
inline constexpr Nanos kKvfsSeqHostPerMB = micros(4.0);
inline constexpr Nanos kKvfsSeqDpuPerMBRead = micros(4.0);
inline constexpr Nanos kKvfsSeqDpuPerMBWrite = micros(40.0);

// ------------------------------------------------ disaggregated KV backend
/// One-way network hop to the KV cluster / data servers (RoCE-class).
inline constexpr Nanos kNetHop = micros(8.0);
/// Aggregate caps of the disaggregated KV store (Table 2 discussion: the
/// standalone bandwidth "is limited by the read/write performance of our
/// disaggregated KV store").
inline constexpr double kKvReadGBps = 7.7;
inline constexpr double kKvWriteGBps = 5.1;
/// Server-side cost of one KV op.
inline constexpr Nanos kKvServerOp = micros(9.0);
inline constexpr int kKvServers = 16;
/// End-to-end access latency of the disaggregated KV cluster (network +
/// server-side media), deeply parallel -> modelled as pure delay. This is
/// why KVFS loses to local Ext4 at low concurrency (Fig. 7) but scales past
/// it once the local SSD saturates.
inline constexpr Nanos kKvReadLatency = micros(100.0);
inline constexpr Nanos kKvWriteLatency = micros(80.0);
/// Streaming efficiency of the KV store under many concurrent prefetch
/// streams (readahead requests interleave and partially defeat the
/// server-side sequentiality).
inline constexpr double kPrefetchKvEfficiency = 0.65;
/// DPU work to prefetch one 4K page into the hybrid cache (bucket walk,
/// locks, page push).
inline constexpr Nanos kDpuPrefetchPage = micros(2.5);
/// DPU work to flush one dirty 4K page (scan share, locks, DIF, KV put).
inline constexpr Nanos kDpuFlushPage = micros(6.0);
/// Host-side cost of a cache-hit read / absorbed write (hash, lock, copy).
inline constexpr Nanos kHostCacheHitOp = micros(0.55);

// ------------------------------------------------------------ failure model
/// Modelled deadline charged per KV attempt that times out / fast-fails:
/// the client waits this long before declaring the attempt dead.
inline constexpr Nanos kKvOpTimeout = micros(500.0);
/// Modelled deadline charged for an nvme-fs command the host had to abort
/// (per lost attempt). Real hosts use multi-second NVMe timeouts; the model
/// uses 1 ms so chaos benches stay in a realistic latency regime.
inline constexpr Nanos kNvmeCommandTimeout = millis(1.0);

constexpr Nanos kv_read_transfer(std::uint64_t bytes) {
  return Nanos{static_cast<std::int64_t>(
      static_cast<double>(bytes) / (kKvReadGBps * 1e9) * 1e9)};
}
constexpr Nanos kv_write_transfer(std::uint64_t bytes) {
  return Nanos{static_cast<std::int64_t>(
      static_cast<double>(bytes) / (kKvWriteGBps * 1e9) * 1e9)};
}

// -------------------------------------------------------------- DFS backend
/// MDS request service time (metadata lookup / update at the server).
inline constexpr Nanos kMdsOp = micros(18.0);
/// Extra hop cost when the entry MDS must forward to the home MDS.
inline constexpr Nanos kMdsForward = micros(14.0);
/// Server-side data handling when the MDS proxies the I/O path for a
/// standard client (receive, consolidate, move payload to/from the data
/// servers) — the load the client-side DIO optimization removes.
inline constexpr Nanos kMdsProxyPerOp = micros(35.0);
/// Data-server service time for an 8 KB chunk.
inline constexpr Nanos kDataServerOp = micros(16.0);
inline constexpr int kMdsServers = 4;
inline constexpr int kDataServers = 8;
/// NVMe channels per data server (internal parallelism).
inline constexpr int kDataServerChannels = 8;
/// Aggregate DFS backend bandwidth caps.
inline constexpr double kDfsReadGBps = 9.0;
inline constexpr double kDfsWriteGBps = 6.5;

// ------------------------------------------------------- host client stacks
/// Standard NFS client per-op host CPU: the kernel NFS/RPC/TCP stack for an
/// 8 KB operation.
inline constexpr Nanos kNfsClientOp = micros(55.0);
/// Optimized host client per-op host CPU on top of NFS: EC calculation,
/// metadata-view routing, delegation bookkeeping, DIO path. This is the
/// "datacenter tax" Fig. 1 measures (4–6× more CPU cores than standard NFS).
inline constexpr Nanos kOptClientExtraOp = micros(35.0);
/// EC compute per byte on the host (RS(4,2) over GF(2^8), table-driven).
inline constexpr double kHostEcNsPerByte = 0.45;
/// The DPU's hardware-assisted EC engine per byte.
inline constexpr double kDpuEcNsPerByte = 0.18;

}  // namespace dpc::sim::calib
