// Deterministic workload generators modelled after the fio / vdbench
// configurations in the paper's evaluation (§4): random/sequential read and
// write at 4K/8K/1M, the 70:30 mixed workload of Fig. 1, file-creation
// streams for the small-file tests of Fig. 9, and a locality knob used by
// the hybrid-cache experiment (Fig. 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace dpc::sim {

enum class OpType : std::uint8_t {
  kRead,
  kWrite,
  kCreate,  ///< create + first write of a small file
};

const char* to_string(OpType t);

/// One generated I/O.
struct IoOp {
  OpType type = OpType::kRead;
  std::uint64_t file_id = 0;   ///< which file (inode surrogate)
  std::uint64_t offset = 0;    ///< byte offset within the file
  std::uint32_t length = 0;    ///< bytes
};

enum class Pattern : std::uint8_t {
  kRandRead,
  kRandWrite,
  kSeqRead,
  kSeqWrite,
  kMixed,    ///< read_fraction of reads, rest writes, random offsets
  kCreate,   ///< stream of file creations (small-file workload)
};

const char* to_string(Pattern p);

struct WorkloadSpec {
  Pattern pattern = Pattern::kRandRead;
  std::uint32_t io_size = 8 * 1024;
  std::uint64_t file_size = std::uint64_t{1} << 30;  ///< paper: >1 GB big files
  std::uint64_t file_count = 1;
  double read_fraction = 0.7;  ///< used by kMixed (Fig. 1: 70% read)
  /// Probability that a random access re-touches the hot region (fraction
  /// `hot_fraction` of the file). locality=0 → uniform. Used by Fig. 8.
  double locality = 0.0;
  double hot_fraction = 0.1;
  std::uint64_t seed = 42;
};

/// Stateful generator; one instance per simulated thread keeps streams
/// independent and reproducible (seed is mixed with the stream id).
class WorkloadGen {
 public:
  WorkloadGen(const WorkloadSpec& spec, std::uint64_t stream_id);

  IoOp next();

  const WorkloadSpec& spec() const { return spec_; }

 private:
  std::uint64_t aligned_slots() const;
  std::uint64_t random_offset();

  WorkloadSpec spec_;
  Rng rng_;
  std::uint64_t seq_cursor_ = 0;
  std::uint64_t create_cursor_ = 0;
  std::uint64_t stream_id_ = 0;
};

/// The thread-count sweep used across the paper's figures.
std::vector<int> default_thread_sweep(int max_threads);

}  // namespace dpc::sim
