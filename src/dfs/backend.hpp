// DFS backend substrate: a metadata-server cluster and a group of data
// servers (§2.1's architecture: "metadata server (MDS), data server, and
// fs-client").
//
// Metadata is hash-partitioned across MDSes. A client that has not cached
// the metadata view sends every request to its *entry* MDS, which forwards
// to the *home* MDS — the forwarding the optimized client eliminates with
// client-side routing ("Client-side I/O forwarding", §2.1).
//
// File data is striped RS(k,m) across the data servers; erasure coding is
// computed either by the home MDS (standard path) or by the client /
// DPC-offloaded client (client-side EC + direct I/O path).
#pragma once

#include <atomic>
#include <functional>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ec/reed_solomon.hpp"
#include "fault/health.hpp"
#include "fault/injector.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/calib.hpp"
#include "sim/time.hpp"

namespace dpc::dfs {

/// Fault-injection sites on the data-server wire (see src/fault/): a fired
/// read/write behaves as if the target server did not answer in time.
inline constexpr std::string_view kFaultDsReadShard = "dfs.ds/read_shard";
inline constexpr std::string_view kFaultDsWriteShard = "dfs.ds/write_shard";
/// Fail-slow sites (FaultInjector::arm_slow): the peer answers correctly
/// but its service time stretches — gray failure, not an outage.
inline constexpr std::string_view kFaultDsSlow = "dfs.ds/slow";
inline constexpr std::string_view kFaultMdsSlow = "dfs.mds/slow";

using Ino = std::uint64_t;
using ClientId = std::uint32_t;

class DataServers;

/// Redundancy scheme of a file's data (§2.1: "EC or replication is handled
/// by the fs-client").
enum class Redundancy : std::uint8_t {
  kErasure = 0,      ///< RS(k, m) striping
  kReplication = 1,  ///< `replicas` full copies of each stripe unit
};

struct FileMeta {
  Ino ino = 0;
  std::uint64_t size = 0;
  std::uint32_t stripe_unit = 8 * 1024;
  std::uint8_t k = 4;  ///< data shards (erasure coding)
  std::uint8_t m = 2;  ///< parity shards
  Redundancy redundancy = Redundancy::kErasure;
  std::uint8_t replicas = 3;  ///< used when redundancy == kReplication
  ClientId delegation = 0;  ///< 0 = none; else exclusive write delegation
};

/// Cost profile of one backend interaction, accumulated by clients so the
/// figure benches can build their queueing models from measured hop counts.
struct OpProfile {
  sim::Nanos host_cpu{};   ///< host CPU demand
  sim::Nanos dpu_cpu{};    ///< DPU CPU demand (zero for host-side clients)
  sim::Nanos pcie{};       ///< host↔DPU transport demand (DPC client only)
  sim::Nanos mds{};        ///< MDS service demand
  sim::Nanos ds{};         ///< data-server service demand
  sim::Nanos net{};        ///< pure network delay (propagation)
  /// Critical-path completion latency of fan-out phases (hedged/parallel
  /// shard reads): per stripe the *slowest winning* shard, summed across
  /// stripes. Zero on the serial paths, which model latency as the demand
  /// sums above. The tail-tolerance bench reads its per-op latency here.
  sim::Nanos crit{};
  std::uint32_t mds_ops = 0;
  std::uint32_t ds_ops = 0;
  std::uint32_t forwards = 0;  ///< entry→home forwarding hops

  OpProfile& operator+=(const OpProfile& o);
};

/// One metadata server.
class Mds {
 public:
  std::optional<Ino> lookup(const std::string& path) const;
  /// Creates the name; returns nullopt if it already exists. `templ`
  /// optionally supplies the layout (stripe geometry, redundancy scheme).
  std::optional<FileMeta> create(const std::string& path, Ino ino,
                                 std::uint64_t size,
                                 const FileMeta* templ = nullptr);
  /// Current delegation holder (0 = none / unknown ino).
  ClientId delegation_holder(Ino ino) const;
  std::optional<FileMeta> stat(Ino ino) const;
  bool update_size(Ino ino, std::uint64_t size);
  /// Grants (or confirms) the exclusive write delegation to `client`.
  /// Returns false while another client holds it.
  bool acquire_delegation(Ino ino, ClientId client);
  void release_delegation(Ino ino, ClientId client);
  bool remove(const std::string& path);

 private:
  mutable sim::AnnotatedSharedMutex mu_{"mds.meta", sim::LockRank::kShard};
  std::unordered_map<std::string, Ino> names_ GUARDED_BY(mu_);
  std::unordered_map<Ino, FileMeta> files_ GUARDED_BY(mu_);
};

/// The hash-partitioned MDS cluster. All calls take the caller's entry MDS
/// and whether the caller routes directly (metadata view cached); cost and
/// forwarding accounting goes into `prof`.
class MdsCluster {
 public:
  explicit MdsCluster(int servers = sim::calib::kMdsServers);

  int servers() const { return static_cast<int>(mds_.size()); }
  /// Home MDS of a path (namespace ops) / an ino (file ops).
  int home_of(const std::string& path) const;
  int home_of(Ino ino) const;

  /// A client's promise to give a delegation back when another client
  /// wants it. Return true to release.
  using RecallFn = std::function<bool(Ino)>;
  /// Registers `client`'s recall handler (lease-style delegations).
  void register_recall(ClientId client, RecallFn fn);

  /// Namespace & metadata ops. `entry` is the caller's entry MDS index;
  /// `direct` true = caller routed to the home MDS itself.
  std::optional<FileMeta> create(const std::string& path, std::uint64_t size,
                                 int entry, bool direct, OpProfile& prof,
                                 const FileMeta* templ = nullptr);
  std::optional<Ino> lookup(const std::string& path, int entry, bool direct,
                            OpProfile& prof);
  std::optional<FileMeta> stat(Ino ino, int entry, bool direct,
                               OpProfile& prof);
  bool update_size(Ino ino, std::uint64_t size, int entry, bool direct,
                   OpProfile& prof);
  bool acquire_delegation(Ino ino, ClientId client, int entry, bool direct,
                          OpProfile& prof);
  bool remove(const std::string& path, int entry, bool direct,
              OpProfile& prof);

  /// Server-side EC write: the home MDS receives the data, encodes, and
  /// distributes shards (the non-optimized path). Charged to `prof`.
  bool server_side_write(class DataServers& ds, const ec::ReedSolomon& rs,
                         Ino ino, std::uint64_t offset,
                         std::span<const std::byte> data, int entry,
                         bool direct, OpProfile& prof);
  /// Server-side read through the MDS proxy.
  bool server_side_read(class DataServers& ds, Ino ino, std::uint64_t offset,
                        std::span<std::byte> dst, int entry, bool direct,
                        OpProfile& prof);

  /// Metadata lookup without charging an RPC (internal plumbing).
  std::optional<FileMeta> find_meta(Ino ino) const;

  /// Attaches the fail-slow plumbing: with an injector, each metadata RPC's
  /// MDS service time can stretch at the kFaultMdsSlow site (limping-peer
  /// mode keys on the home MDS index).
  void attach_fault(fault::FaultInjector* fault) { fault_ = fault; }
  /// Creates the per-MDS health scoreboard ("mds" group) feeding the
  /// health/ gauges; every charged RPC records its observed latency.
  void enable_health(obs::Registry* registry,
                     const fault::HealthConfig& cfg = {});
  fault::HealthBoard* health() const { return health_.get(); }

 private:
  /// Adds the cost of one metadata RPC (and the forward if not direct).
  void charge(int home, int entry, bool direct, OpProfile& prof) const;

  std::vector<Mds> mds_;
  fault::FaultInjector* fault_ = nullptr;
  /// mutable: charge() is const but records observations.
  mutable std::unique_ptr<fault::HealthBoard> health_;
  std::atomic<Ino> next_ino_{1};
  mutable sim::AnnotatedMutex recall_mu_{"mds.recall",
                                         sim::LockRank::kShard};
  std::unordered_map<ClientId, RecallFn> recalls_ GUARDED_BY(recall_mu_);
};

// --------------------------------------------------------------- striping
//
// RS(k,m) striped I/O shared by the home-MDS (server-side EC) and the
// client/DPC (client-side EC) paths. Stripe s covers file bytes
// [s·k·unit, (s+1)·k·unit); data shard d of stripe s holds the d-th unit.
// Sub-shard updates use delta-parity (read old data + parities, xor in the
// coefficient-scaled delta) — this is the read-modify-write cost that makes
// small EC writes expensive wherever they run.
//
// These helpers move bytes and charge data-server/network demands into
// `prof`; the *EC compute* cost is charged by the caller (host CPU, DPU, or
// MDS — that locus is exactly what the paper's offloading changes).

/// Returns false if a constituent shard *read* failed (server down /
/// injected) before any write was issued — the stripe is left untouched so
/// the caller can retry. Shard *writes* to a failed server invalidate that
/// shard (see DataServers::write_shard), which degraded reads recover from.
bool striped_write(DataServers& ds, const ec::ReedSolomon& rs,
                   const FileMeta& meta, std::uint64_t offset,
                   std::span<const std::byte> data, OpProfile& prof);
/// Returns false if any shard read *failed* (absent shards still read as
/// zeros and succeed — they are holes, not failures).
bool striped_read(DataServers& ds, const FileMeta& meta, std::uint64_t offset,
                  std::span<std::byte> dst, OpProfile& prof);
/// Degraded read: reconstructs the requested range even when data shards
/// are missing, as long as ≥ k shards of each touched stripe survive.
/// Returns false if a stripe is unrecoverable.
bool striped_read_reconstruct(DataServers& ds, const ec::ReedSolomon& rs,
                              const FileMeta& meta, std::uint64_t offset,
                              std::span<std::byte> dst, OpProfile& prof);

// ------------------------------------------------------------ replication
//
// Replication alternative (§2.1: "EC or replication"): each stripe-unit is
// stored as `replicas` full copies on rotated servers (roles 0..r-1).

/// Returns false if a read-merge of a partial unit failed (see
/// striped_write's contract).
bool replicated_write(DataServers& ds, const FileMeta& meta,
                      std::uint64_t offset, std::span<const std::byte> data,
                      OpProfile& prof);
/// Returns false if the primary copy's read *failed*.
bool replicated_read(DataServers& ds, const FileMeta& meta,
                     std::uint64_t offset, std::span<std::byte> dst,
                     OpProfile& prof);
/// Reads preferring the first *present* replica; false if all copies of a
/// touched unit are gone.
bool replicated_read_any(DataServers& ds, const FileMeta& meta,
                         std::uint64_t offset, std::span<std::byte> dst,
                         OpProfile& prof);

// ------------------------------------------------------------ hedged reads
//
// Tail-tolerant read paths (DESIGN.md §5l). Both require an enabled
// HealthBoard on `ds`. Per stripe, the needed data shards are issued as a
// parallel primary wave; a shard lagging the board's hedge_delay() (or one
// that failed / sits on a quarantined server) triggers extra reads of the
// stripe's remaining shards, healthiest servers first — first k of k+m
// clean shards wins, the stripe is RS-reconstructed if the winners don't
// include every needed data shard, and losers are cancelled before payload
// transfer so they charge nothing. Speculative hedges are capped by the
// board's token budget; recovery of failed shards is not (correctness path,
// accounted as a degraded read). prof.crit accumulates the per-stripe
// completion time — the fan-out-aware latency the serial demand sums can't
// express.

/// `reconstructed` (optional) reports that at least one stripe was served
/// via RS reconstruction — the caller charges the decode compute to its own
/// locus, exactly like the striped_read_reconstruct contract.
bool hedged_striped_read(DataServers& ds, const ec::ReedSolomon& rs,
                         const FileMeta& meta, std::uint64_t offset,
                         std::span<std::byte> dst, OpProfile& prof,
                         bool* reconstructed = nullptr);
/// Replicated flavor: replicas ranked by server health score; the best is
/// the primary, laggards are hedged to the next-best copy. First clean
/// replica wins.
bool hedged_replicated_read(DataServers& ds, const FileMeta& meta,
                            std::uint64_t offset, std::span<std::byte> dst,
                            OpProfile& prof);

/// Identity of one stored shard (scrubber enumeration / targeted repair).
struct ShardId {
  Ino ino = 0;
  std::uint64_t stripe = 0;
  std::uint32_t role = 0;
};

/// Verification state of a stored shard.
enum class ShardState : std::uint8_t { kOk, kAbsent, kCorrupt };

/// The data-server group. Shards are stored per (ino, stripe, role) where
/// role 0..k-1 are data shards and k..k+m-1 parity. Shard `role` of stripe
/// `s` lives on server (s + role) mod N — rotated placement.
///
/// Every shard carries a CRC32C stamped at write time and salted with
/// (ino, stripe, role), so a shard surfacing under the wrong identity is as
/// detectable as rotted bytes. Reads verify before returning: a corrupt
/// shard reads back as *failed* (never as silent data or a hole), which
/// pushes the caller onto the degraded/reconstruct path.
class DataServers {
 public:
  /// With a FaultInjector, shard reads/writes can fail at the
  /// kFaultDsReadShard / kFaultDsWriteShard sites; per-server circuit
  /// breakers (counters in `registry`) fast-fail a server that keeps
  /// timing out. Both optional — defaults behave exactly as before.
  explicit DataServers(int servers = sim::calib::kDataServers,
                       fault::FaultInjector* fault = nullptr,
                       obs::Registry* registry = nullptr,
                       fault::CircuitBreaker::Config breaker_cfg = {});

  int servers() const { return static_cast<int>(servers_.size()); }
  int server_of(Ino ino, std::uint64_t stripe, std::uint32_t role) const;

  /// Reads a whole shard (stripe_unit bytes); absent shards read as zeros
  /// and return false. A *failed* read (server marked down, breaker open,
  /// or injected fault) also zero-fills and returns false, with `*failed`
  /// set — pass `failed` wherever holes and outages must be told apart.
  /// A shard that fails its CRC also zero-fills with `*failed` set (it must
  /// not be mistaken for a hole) and additionally sets `*corrupt` — the
  /// reconstruct path uses that to rewrite the damaged shard in place.
  bool read_shard(Ino ino, std::uint64_t stripe, std::uint32_t role,
                  std::span<std::byte> dst, OpProfile& prof,
                  bool* failed = nullptr, bool* corrupt = nullptr);
  /// Writes a shard. On a failed server (or injected fault) the write is
  /// lost AND the server's stale copy is invalidated — a later degraded
  /// read must reconstruct the new version, never resurrect the old one.
  void write_shard(Ino ino, std::uint64_t stripe, std::uint32_t role,
                   std::span<const std::byte> src, OpProfile& prof);
  /// Deletes every shard of a file (enumeration by stored keys).
  void purge(Ino ino);

  /// Marks a whole data server unreachable (crash / network partition);
  /// reads and writes against it fail until heal_server().
  void fail_server(int server);
  void heal_server(int server);
  bool server_failed(int server) const;

  /// Rewrites a shard that verification proved damaged (reconstruct path /
  /// scrubber). Same motion as write_shard plus a repair counter tick.
  void repair_shard(Ino ino, std::uint64_t stripe, std::uint32_t role,
                    std::span<const std::byte> src, OpProfile& prof);

  /// For tests: drop a shard to simulate a lost disk.
  bool drop_shard(Ino ino, std::uint64_t stripe, std::uint32_t role);
  /// For tests/fault injection: whether the shard exists.
  bool has_shard(Ino ino, std::uint64_t stripe, std::uint32_t role) const;
  /// For tests/chaos: flip one stored bit so the shard's CRC no longer
  /// matches (bit-rot at rest). False if the shard does not exist.
  bool corrupt_shard(Ino ino, std::uint64_t stripe, std::uint32_t role,
                     std::uint32_t bit = 0);
  /// Media-only CRC check of one shard — no network/server cost, no
  /// breaker interaction (the scrubber's primitive).
  ShardState verify_shard(Ino ino, std::uint64_t stripe,
                          std::uint32_t role) const;
  /// Snapshot of every stored shard's identity (scrubber walk order).
  std::vector<ShardId> stored_shards() const;

  // ---- gray-failure tolerance (DESIGN.md §5l) ---------------------------

  /// Creates the per-server health scoreboard ("ds" group). From then on
  /// every shard access records its observed latency, reads time out at the
  /// board's adaptive deadline instead of waiting out a limping server, and
  /// quarantined servers are skipped (every Nth access probes). Uses the
  /// registry passed at construction for the health/ and hedge/ metrics.
  void enable_health(const fault::HealthConfig& cfg = {});
  fault::HealthBoard* health() const { return health_.get(); }

  /// One staged shard-read attempt: nothing is charged to any OpProfile
  /// until commit_attempt(), which is how hedged reads cancel losers
  /// without double-charging DS bytes or DMA accounting. Breaker and
  /// health bookkeeping still happen at probe time (the attempt physically
  /// went to the wire).
  struct ShardAttempt {
    bool ok = false;          ///< clean bytes landed in dst
    bool failed = false;      ///< outage / adaptive-deadline timeout / rot
    bool corrupt = false;     ///< CRC mismatch (subset of failed)
    bool hole = false;        ///< absent shard: dst zero-filled, not failed
    bool fast_failed = false; ///< breaker/quarantine rejected pre-wire
    sim::Nanos latency{};     ///< modelled service+wire time of the attempt
    OpProfile charge;         ///< costs to fold in iff the attempt is used
  };
  /// Stages a read (fills `dst`, charges nothing). The plain read_shard()
  /// below is probe + unconditional commit.
  ShardAttempt probe_read_shard(Ino ino, std::uint64_t stripe,
                                std::uint32_t role, std::span<std::byte> dst);
  /// Folds a used attempt's costs into `prof`.
  static void commit_attempt(const ShardAttempt& a, OpProfile& prof) {
    prof += a.charge;
  }

  /// Hedge counters for the hedged-read paths (null without a registry).
  struct HedgeCounters {
    obs::Counter* issued = nullptr;     ///< speculative shard reads launched
    obs::Counter* won = nullptr;        ///< stripes finished via a hedge
    obs::Counter* wasted = nullptr;     ///< hedges that arrived but lost
    obs::Counter* cancelled = nullptr;  ///< losers cancelled before payload
    obs::Counter* denied = nullptr;     ///< hedges denied by the budget
    obs::Counter* primary = nullptr;    ///< primary-wave shard reads
  };
  const HedgeCounters& hedge_counters() const { return hedge_; }

 private:
  struct Key {
    Ino ino;
    std::uint64_t stripe;
    std::uint32_t role;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.ino * 0x9e3779b97f4a7c15ULL;
      h ^= k.stripe + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= k.role + (h << 3);
      return static_cast<std::size_t>(h);
    }
  };
  struct StoredShard {
    std::vector<std::byte> data;
    std::uint32_t crc = 0;  ///< CRC32C salted with (ino, stripe, role)
  };
  struct Server {
    mutable sim::AnnotatedSharedMutex mu{"dfs.server",
                                         sim::LockRank::kStore};
    std::unordered_map<Key, StoredShard, KeyHash> shards GUARDED_BY(mu);
    std::atomic<bool> failed{false};
  };

  /// True if the failure gate must run for server `s`; false is the
  /// zero-overhead happy path (no injector, no server ever failed, no
  /// health board watching).
  bool gated() const {
    return fault_ != nullptr || health_ != nullptr ||
           any_failed_.load(std::memory_order_relaxed);
  }
  /// Whether this access fails, charging the wasted attempt and driving
  /// the server's breaker. `fast_failed` = breaker rejected it outright.
  bool access_fails(int server, std::string_view site, bool is_read,
                    std::size_t bytes, OpProfile& prof, bool& fast_failed);

  std::vector<Server> servers_;
  fault::FaultInjector* fault_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::vector<std::unique_ptr<fault::CircuitBreaker>> breakers_;
  std::unique_ptr<fault::HealthBoard> health_;
  std::atomic<bool> any_failed_{false};
  obs::Counter* failed_reads_ = nullptr;
  obs::Counter* failed_writes_ = nullptr;
  obs::Counter* corrupt_reads_ = nullptr;
  obs::Counter* shard_repairs_ = nullptr;
  HedgeCounters hedge_;
};

}  // namespace dpc::dfs
