#include "dfs/backend.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

#include "ec/crc32c.hpp"
#include "sim/check.hpp"

namespace dpc::dfs {

OpProfile& OpProfile::operator+=(const OpProfile& o) {
  host_cpu += o.host_cpu;
  dpu_cpu += o.dpu_cpu;
  pcie += o.pcie;
  mds += o.mds;
  ds += o.ds;
  net += o.net;
  mds_ops += o.mds_ops;
  ds_ops += o.ds_ops;
  forwards += o.forwards;
  return *this;
}

// ------------------------------------------------------------------- Mds

std::optional<Ino> Mds::lookup(const std::string& path) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = names_.find(path);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

std::optional<FileMeta> Mds::create(const std::string& path, Ino ino,
                                    std::uint64_t size,
                                    const FileMeta* templ) {
  sim::LockGuard lock(mu_);
  if (!names_.try_emplace(path, ino).second) return std::nullopt;
  FileMeta meta;
  if (templ != nullptr) meta = *templ;
  meta.ino = ino;
  meta.size = size;
  meta.delegation = 0;
  files_[ino] = meta;
  return meta;
}

ClientId Mds::delegation_holder(Ino ino) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = files_.find(ino);
  return it == files_.end() ? 0 : it->second.delegation;
}

std::optional<FileMeta> Mds::stat(Ino ino) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = files_.find(ino);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool Mds::update_size(Ino ino, std::uint64_t size) {
  sim::LockGuard lock(mu_);
  const auto it = files_.find(ino);
  if (it == files_.end()) return false;
  it->second.size = std::max(it->second.size, size);
  return true;
}

bool Mds::acquire_delegation(Ino ino, ClientId client) {
  sim::LockGuard lock(mu_);
  const auto it = files_.find(ino);
  if (it == files_.end()) return false;
  if (it->second.delegation != 0 && it->second.delegation != client)
    return false;
  it->second.delegation = client;
  return true;
}

void Mds::release_delegation(Ino ino, ClientId client) {
  sim::LockGuard lock(mu_);
  const auto it = files_.find(ino);
  if (it != files_.end() && it->second.delegation == client)
    it->second.delegation = 0;
}

bool Mds::remove(const std::string& path) {
  sim::LockGuard lock(mu_);
  const auto it = names_.find(path);
  if (it == names_.end()) return false;
  files_.erase(it->second);
  names_.erase(it);
  return true;
}

// ------------------------------------------------------------ MdsCluster

MdsCluster::MdsCluster(int servers) : mds_(static_cast<std::size_t>(servers)) {
  DPC_CHECK(servers >= 1);
}

int MdsCluster::home_of(const std::string& path) const {
  return static_cast<int>(std::hash<std::string>{}(path) % mds_.size());
}

int MdsCluster::home_of(Ino ino) const {
  return static_cast<int>((ino * 0x9e3779b97f4a7c15ULL >> 32) % mds_.size());
}

void MdsCluster::charge(int home, int entry, bool direct,
                        OpProfile& prof) const {
  using namespace sim::calib;
  prof.net += kNetHop * 2;  // client ↔ MDS round trip
  prof.mds += kMdsOp;
  ++prof.mds_ops;
  if (!direct && home != entry) {
    // Entry-MDS proxying: an extra hop and the forwarding work.
    prof.net += kNetHop * 2;
    prof.mds += kMdsForward;
    ++prof.forwards;
  }
}

void MdsCluster::register_recall(ClientId client, RecallFn fn) {
  sim::LockGuard lock(recall_mu_);
  if (fn) {
    recalls_[client] = std::move(fn);
  } else {
    recalls_.erase(client);
  }
}

std::optional<FileMeta> MdsCluster::create(const std::string& path,
                                           std::uint64_t size, int entry,
                                           bool direct, OpProfile& prof,
                                           const FileMeta* templ) {
  const int home = home_of(path);
  charge(home, entry, direct, prof);
  const Ino ino = next_ino_.fetch_add(1, std::memory_order_relaxed);
  auto meta =
      mds_[static_cast<std::size_t>(home)].create(path, ino, size, templ);
  if (!meta) return std::nullopt;
  // The file's metadata lives with its path's home MDS; ino-keyed requests
  // that land elsewhere locate it with one extra internal hop (handled by
  // the scan fallback in stat/update/acquire).
  if (home_of(ino) != home) prof.net += sim::calib::kNetHop;
  return meta;
}

std::optional<Ino> MdsCluster::lookup(const std::string& path, int entry,
                                      bool direct, OpProfile& prof) {
  const int home = home_of(path);
  charge(home, entry, direct, prof);
  return mds_[static_cast<std::size_t>(home)].lookup(path);
}

std::optional<FileMeta> MdsCluster::stat(Ino ino, int entry, bool direct,
                                         OpProfile& prof) {
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  auto meta = mds_[static_cast<std::size_t>(home)].stat(ino);
  if (meta) return meta;
  // Fall back to scanning (metadata created under the path home).
  for (const auto& m : mds_) {
    if (auto got = m.stat(ino)) return got;
  }
  return std::nullopt;
}

bool MdsCluster::update_size(Ino ino, std::uint64_t size, int entry,
                             bool direct, OpProfile& prof) {
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  if (mds_[static_cast<std::size_t>(home)].update_size(ino, size)) return true;
  for (auto& m : mds_)
    if (m.update_size(ino, size)) return true;
  return false;
}

bool MdsCluster::acquire_delegation(Ino ino, ClientId client, int entry,
                                    bool direct, OpProfile& prof) {
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  auto try_all = [&]() -> std::pair<bool, Mds*> {
    if (mds_[static_cast<std::size_t>(home)].acquire_delegation(ino, client))
      return {true, nullptr};
    for (auto& m : mds_) {
      if (m.acquire_delegation(ino, client)) return {true, nullptr};
      if (m.delegation_holder(ino) != 0) return {false, &m};
    }
    return {false, nullptr};
  };
  auto [ok, owner_mds] = try_all();
  if (ok) return true;
  if (owner_mds == nullptr) return false;  // ino unknown

  // Lease recall: ask the current holder to give the delegation back
  // (NFSv4-style). Costs one extra server→holder round trip.
  const ClientId holder = owner_mds->delegation_holder(ino);
  RecallFn recall;
  {
    sim::LockGuard lock(recall_mu_);
    const auto it = recalls_.find(holder);
    if (it != recalls_.end()) recall = it->second;
  }
  if (!recall || !recall(ino)) return false;  // holder refused / no lease
  owner_mds->release_delegation(ino, holder);
  prof.net += sim::calib::kNetHop * 2;
  prof.mds += sim::calib::kMdsOp;
  ++prof.mds_ops;
  return owner_mds->acquire_delegation(ino, client);
}

bool MdsCluster::remove(const std::string& path, int entry, bool direct,
                        OpProfile& prof) {
  const int home = home_of(path);
  charge(home, entry, direct, prof);
  return mds_[static_cast<std::size_t>(home)].remove(path);
}

std::optional<FileMeta> MdsCluster::find_meta(Ino ino) const {
  const int home = home_of(ino);
  if (auto meta = mds_[static_cast<std::size_t>(home)].stat(ino)) return meta;
  for (const auto& m : mds_)
    if (auto meta = m.stat(ino)) return meta;
  return std::nullopt;
}

bool MdsCluster::server_side_write(DataServers& ds, const ec::ReedSolomon& rs,
                                   Ino ino, std::uint64_t offset,
                                   std::span<const std::byte> data, int entry,
                                   bool direct, OpProfile& prof) {
  using namespace sim::calib;
  // Client sends the data to the MDS (packed small-I/O path, §2.1 DIO):
  // payload rides the metadata message.
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  prof.net += sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(data.size()) / (kDfsWriteGBps * 1e9) * 1e9)};

  auto meta = find_meta(ino);
  if (!meta) return false;
  // The home MDS handles the payload (proxy path) and computes EC — server
  // CPU burns here, not client CPU.
  prof.mds += sim::calib::kMdsProxyPerOp;
  if (meta->redundancy == Redundancy::kReplication) {
    if (!replicated_write(ds, *meta, offset, data, prof)) return false;
  } else {
    prof.mds += ec::ReedSolomon::host_encode_cost(data.size());
    if (!striped_write(ds, rs, *meta, offset, data, prof)) return false;
  }
  // …and lazily updates the size.
  for (auto& m : mds_) {
    if (m.update_size(ino, offset + data.size())) break;
  }
  return true;
}

bool MdsCluster::server_side_read(DataServers& ds, Ino ino,
                                  std::uint64_t offset,
                                  std::span<std::byte> dst, int entry,
                                  bool direct, OpProfile& prof) {
  using namespace sim::calib;
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  prof.net += sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(dst.size()) / (kDfsReadGBps * 1e9) * 1e9)};
  auto meta = find_meta(ino);
  if (!meta) return false;
  prof.mds += sim::calib::kMdsProxyPerOp;  // proxied data path
  if (meta->redundancy == Redundancy::kReplication) {
    if (!replicated_read(ds, *meta, offset, dst, prof) &&
        !replicated_read_any(ds, *meta, offset, dst, prof))
      return false;
  } else if (!striped_read(ds, *meta, offset, dst, prof)) {
    // Degraded path: the MDS reconstructs from surviving shards + parity
    // and burns the decode cost server-side (it proxies this I/O).
    prof.mds += ec::ReedSolomon::host_encode_cost(dst.size());
    if (!striped_read_reconstruct(ds, ec::ReedSolomon(meta->k, meta->m),
                                  *meta, offset, dst, prof))
      return false;
  }
  return true;
}

// ------------------------------------------------------------ DataServers

namespace {
sim::Nanos shard_net_cost(bool is_read, std::size_t bytes) {
  using namespace sim::calib;
  const double gbps = is_read ? kDfsReadGBps : kDfsWriteGBps;
  return kNetHop * 2 + sim::Nanos{static_cast<std::int64_t>(
                           static_cast<double>(bytes) / (gbps * 1e9) * 1e9)};
}

/// The checksum stamp helper: CRC32C over the shard bytes, salted with the
/// shard's full identity so a shard that surfaces under the wrong
/// (ino, stripe, role) — a misdirected or crossed-wire write — fails
/// verification exactly like rotted bytes.
std::uint32_t stamp_shard_crc(Ino ino, std::uint64_t stripe,
                              std::uint32_t role,
                              std::span<const std::byte> data) {
  std::uint32_t seed = ec::crc32c_u64(ino);
  seed = ec::crc32c_u64(stripe, seed);
  seed = ec::crc32c_u64(role, seed);
  return ec::crc32c(data, seed);
}
}  // namespace

DataServers::DataServers(int servers, fault::FaultInjector* fault,
                         obs::Registry* registry,
                         fault::CircuitBreaker::Config breaker_cfg)
    : servers_(static_cast<std::size_t>(servers)), fault_(fault) {
  DPC_CHECK(servers >= 1);
  breakers_.reserve(static_cast<std::size_t>(servers));
  for (int s = 0; s < servers; ++s) {
    breakers_.push_back(
        std::make_unique<fault::CircuitBreaker>(breaker_cfg, registry));
  }
  if (registry != nullptr) {
    failed_reads_ = &registry->counter("dfs.ds/failed_reads");
    failed_writes_ = &registry->counter("dfs.ds/failed_writes");
    corrupt_reads_ = &registry->counter("dfs.ds/corrupt_reads");
    shard_repairs_ = &registry->counter("dfs.ds/shard_repairs");
  }
}

void DataServers::fail_server(int server) {
  servers_[static_cast<std::size_t>(server)].failed.store(
      true, std::memory_order_release);
  any_failed_.store(true, std::memory_order_release);
}

void DataServers::heal_server(int server) {
  // any_failed_ stays set: the gate keeps running (cheap) and the server's
  // breaker closes itself on the first successful probe.
  servers_[static_cast<std::size_t>(server)].failed.store(
      false, std::memory_order_release);
}

bool DataServers::server_failed(int server) const {
  return servers_[static_cast<std::size_t>(server)].failed.load(
      std::memory_order_acquire);
}

bool DataServers::access_fails(int server, std::string_view site,
                               bool is_read, std::size_t bytes,
                               OpProfile& prof, bool& fast_failed) {
  fast_failed = false;
  fault::CircuitBreaker& br = *breakers_[static_cast<std::size_t>(server)];
  if (!br.allow()) {
    // Circuit open: fail immediately without burning a network round trip
    // or server slot — the whole point of the breaker.
    fast_failed = true;
    return true;
  }
  const bool down =
      servers_[static_cast<std::size_t>(server)].failed.load(
          std::memory_order_acquire) ||
      (fault_ != nullptr && fault_->should_fail(site));
  if (down) {
    // The attempt went to the wire and timed out: charge it.
    prof.ds += sim::calib::kDataServerOp;
    prof.net += shard_net_cost(is_read, bytes);
    ++prof.ds_ops;
    br.on_failure();
    return true;
  }
  br.on_success();
  return false;
}

int DataServers::server_of(Ino ino, std::uint64_t stripe,
                           std::uint32_t role) const {
  // Rotated placement spreads parity load across servers.
  return static_cast<int>((ino + stripe + role) % servers_.size());
}

bool DataServers::read_shard(Ino ino, std::uint64_t stripe, std::uint32_t role,
                             std::span<std::byte> dst, OpProfile& prof,
                             bool* failed, bool* corrupt) {
  if (failed != nullptr) *failed = false;
  if (corrupt != nullptr) *corrupt = false;
  const int server = server_of(ino, stripe, role);
  if (gated()) {
    bool fast = false;
    if (access_fails(server, kFaultDsReadShard, /*is_read=*/true, dst.size(),
                     prof, fast)) {
      if (failed_reads_ != nullptr) failed_reads_->add();
      if (failed != nullptr) *failed = true;
      std::memset(dst.data(), 0, dst.size());
      return false;
    }
  }
  prof.ds += sim::calib::kDataServerOp;
  prof.net += shard_net_cost(true, dst.size());
  ++prof.ds_ops;
  Server& sv = servers_[static_cast<std::size_t>(server)];
  sim::SharedLockGuard lock(sv.mu);
  const auto it = sv.shards.find(Key{ino, stripe, role});
  if (it == sv.shards.end()) {
    std::memset(dst.data(), 0, dst.size());
    return false;
  }
  if (stamp_shard_crc(ino, stripe, role, it->second.data) !=
      it->second.crc) {
    // Damaged at rest. Report a *failure*, not a hole: zeros here would be
    // silently wrong data, and "absent" semantics would let a reconstruct
    // treat the rot as an erasure it can't tell from a legitimate hole.
    if (corrupt_reads_ != nullptr) corrupt_reads_->add();
    if (failed != nullptr) *failed = true;
    if (corrupt != nullptr) *corrupt = true;
    std::memset(dst.data(), 0, dst.size());
    return false;
  }
  const auto n = std::min(dst.size(), it->second.data.size());
  std::memcpy(dst.data(), it->second.data.data(), n);
  if (n < dst.size()) std::memset(dst.data() + n, 0, dst.size() - n);
  return true;
}

void DataServers::write_shard(Ino ino, std::uint64_t stripe,
                              std::uint32_t role,
                              std::span<const std::byte> src,
                              OpProfile& prof) {
  const int server = server_of(ino, stripe, role);
  Server& sv = servers_[static_cast<std::size_t>(server)];
  if (gated()) {
    bool fast = false;
    if (access_fails(server, kFaultDsWriteShard, /*is_read=*/false,
                     src.size(), prof, fast)) {
      if (failed_writes_ != nullptr) failed_writes_->add();
      // The new version never reached the server, so its old copy is now a
      // stale version. Invalidate it (models per-shard version checks):
      // a degraded read must reconstruct the new bytes from the surviving
      // shards, never serve the outdated ones.
      sim::LockGuard lock(sv.mu);
      sv.shards.erase(Key{ino, stripe, role});
      return;
    }
  }
  prof.ds += sim::calib::kDataServerOp;
  prof.net += shard_net_cost(false, src.size());
  ++prof.ds_ops;
  sim::LockGuard lock(sv.mu);
  StoredShard& st = sv.shards[Key{ino, stripe, role}];
  st.data.assign(src.begin(), src.end());
  st.crc = stamp_shard_crc(ino, stripe, role, st.data);
}

void DataServers::repair_shard(Ino ino, std::uint64_t stripe,
                               std::uint32_t role,
                               std::span<const std::byte> src,
                               OpProfile& prof) {
  write_shard(ino, stripe, role, src, prof);
  if (shard_repairs_ != nullptr) shard_repairs_->add();
}

void DataServers::purge(Ino ino) {
  for (auto& sv : servers_) {
    sim::LockGuard lock(sv.mu);
    for (auto it = sv.shards.begin(); it != sv.shards.end();) {
      it = it->first.ino == ino ? sv.shards.erase(it) : std::next(it);
    }
  }
}

bool DataServers::drop_shard(Ino ino, std::uint64_t stripe,
                             std::uint32_t role) {
  Server& sv = servers_[static_cast<std::size_t>(server_of(ino, stripe, role))];
  sim::LockGuard lock(sv.mu);
  return sv.shards.erase(Key{ino, stripe, role}) > 0;
}

bool DataServers::has_shard(Ino ino, std::uint64_t stripe,
                            std::uint32_t role) const {
  const Server& sv =
      servers_[static_cast<std::size_t>(server_of(ino, stripe, role))];
  sim::SharedLockGuard lock(sv.mu);
  return sv.shards.contains(Key{ino, stripe, role});
}

bool DataServers::corrupt_shard(Ino ino, std::uint64_t stripe,
                                std::uint32_t role, std::uint32_t bit) {
  Server& sv =
      servers_[static_cast<std::size_t>(server_of(ino, stripe, role))];
  sim::LockGuard lock(sv.mu);
  const auto it = sv.shards.find(Key{ino, stripe, role});
  if (it == sv.shards.end() || it->second.data.empty()) return false;
  bit %= static_cast<std::uint32_t>(it->second.data.size() * 8);
  it->second.data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  return true;
}

ShardState DataServers::verify_shard(Ino ino, std::uint64_t stripe,
                                     std::uint32_t role) const {
  const Server& sv =
      servers_[static_cast<std::size_t>(server_of(ino, stripe, role))];
  sim::SharedLockGuard lock(sv.mu);
  const auto it = sv.shards.find(Key{ino, stripe, role});
  if (it == sv.shards.end()) return ShardState::kAbsent;
  return stamp_shard_crc(ino, stripe, role, it->second.data) ==
                 it->second.crc
             ? ShardState::kOk
             : ShardState::kCorrupt;
}

std::vector<ShardId> DataServers::stored_shards() const {
  std::vector<ShardId> out;
  for (const auto& sv : servers_) {
    sim::SharedLockGuard lock(sv.mu);
    for (const auto& [key, shard] : sv.shards)
      out.push_back({key.ino, key.stripe, key.role});
  }
  return out;
}

// --------------------------------------------------------------- striping

bool striped_write(DataServers& ds, const ec::ReedSolomon& rs,
                   const FileMeta& meta, std::uint64_t offset,
                   std::span<const std::byte> data, OpProfile& prof) {
  const std::uint32_t unit = meta.stripe_unit;
  const int k = meta.k;
  const int m = meta.m;
  DPC_CHECK(rs.data_shards() == k && rs.parity_shards() == m);
  const std::uint64_t stripe_bytes = std::uint64_t{unit} * k;

  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / stripe_bytes;
    const std::uint64_t in_stripe = pos % stripe_bytes;

    // Full-stripe fast path: an aligned write covering the whole stripe
    // encodes parity directly from the new data — k+m writes, zero reads
    // (the classic full-stripe-write optimization; the RMW below is only
    // for sub-stripe updates).
    if (in_stripe == 0 && data.size() - done >= stripe_bytes) {
      std::vector<std::span<const std::byte>> dviews;
      dviews.reserve(static_cast<std::size_t>(k));
      for (int d2 = 0; d2 < k; ++d2) {
        dviews.push_back(data.subspan(done + static_cast<std::size_t>(d2) * unit, unit));
      }
      std::vector<std::vector<std::byte>> parity(
          static_cast<std::size_t>(m), std::vector<std::byte>(unit));
      std::vector<std::span<std::byte>> pviews(parity.begin(), parity.end());
      rs.encode(dviews, pviews);
      for (int d2 = 0; d2 < k; ++d2)
        ds.write_shard(meta.ino, stripe, static_cast<std::uint32_t>(d2),
                       dviews[static_cast<std::size_t>(d2)], prof);
      for (int p = 0; p < m; ++p)
        ds.write_shard(meta.ino, stripe, static_cast<std::uint32_t>(k + p),
                       parity[static_cast<std::size_t>(p)], prof);
      done += stripe_bytes;
      continue;
    }

    const auto d = static_cast<int>(in_stripe / unit);
    const auto in_shard = static_cast<std::uint32_t>(in_stripe % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(data.size() - done, unit - in_shard));

    // Delta-parity read-modify-write of one data shard. All reads happen
    // before any write: computing a delta against zeros from a *failed*
    // read (rather than the true old bytes) would silently corrupt parity,
    // so a read failure aborts the op with the stripe untouched.
    bool rfail = false;
    std::vector<std::byte> old_shard(unit);
    ds.read_shard(meta.ino, stripe, static_cast<std::uint32_t>(d), old_shard,
                  prof, &rfail);
    if (rfail) return false;
    std::vector<std::vector<std::byte>> parity(
        static_cast<std::size_t>(m), std::vector<std::byte>(unit));
    for (int p = 0; p < m; ++p) {
      ds.read_shard(meta.ino, stripe, static_cast<std::uint32_t>(k + p),
                    parity[static_cast<std::size_t>(p)], prof, &rfail);
      if (rfail) return false;
    }

    std::vector<std::byte> new_shard = old_shard;
    std::memcpy(new_shard.data() + in_shard, data.data() + done, chunk);

    std::vector<std::byte> delta(unit);
    for (std::uint32_t i = 0; i < unit; ++i)
      delta[i] = old_shard[i] ^ new_shard[i];

    ds.write_shard(meta.ino, stripe, static_cast<std::uint32_t>(d), new_shard,
                   prof);
    for (int p = 0; p < m; ++p) {
      rs.apply_delta(parity[static_cast<std::size_t>(p)], p, d, delta);
      ds.write_shard(meta.ino, stripe, static_cast<std::uint32_t>(k + p),
                     parity[static_cast<std::size_t>(p)], prof);
    }
    done += chunk;
  }
  return true;
}

bool striped_read(DataServers& ds, const FileMeta& meta, std::uint64_t offset,
                  std::span<std::byte> dst, OpProfile& prof) {
  const std::uint32_t unit = meta.stripe_unit;
  const std::uint64_t stripe_bytes = std::uint64_t{unit} * meta.k;
  std::size_t done = 0;
  std::vector<std::byte> shard(unit);
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / stripe_bytes;
    const std::uint64_t in_stripe = pos % stripe_bytes;
    const auto d = static_cast<std::uint32_t>(in_stripe / unit);
    const auto in_shard = static_cast<std::uint32_t>(in_stripe % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_shard));
    bool rfail = false;
    ds.read_shard(meta.ino, stripe, d, shard, prof, &rfail);
    if (rfail) return false;  // outage — caller falls back to degraded read
    std::memcpy(dst.data() + done, shard.data() + in_shard, chunk);
    done += chunk;
  }
  return true;
}

bool striped_read_reconstruct(DataServers& ds, const ec::ReedSolomon& rs,
                              const FileMeta& meta, std::uint64_t offset,
                              std::span<std::byte> dst, OpProfile& prof) {
  const std::uint32_t unit = meta.stripe_unit;
  const int k = meta.k;
  const int m = meta.m;
  const std::uint64_t stripe_bytes = std::uint64_t{unit} * k;
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / stripe_bytes;
    const std::uint64_t in_stripe = pos % stripe_bytes;
    const auto d = static_cast<int>(in_stripe / unit);
    const auto in_shard = static_cast<std::uint32_t>(in_stripe % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_shard));

    bool rfail = false;
    std::vector<std::byte> shard(unit);
    if (ds.read_shard(meta.ino, stripe, static_cast<std::uint32_t>(d), shard,
                      prof, &rfail)) {
      std::memcpy(dst.data() + done, shard.data() + in_shard, chunk);
    } else {
      // Degraded: the shard is absent, corrupt, or its server is
      // unreachable. Gather every shard that still *reads back clean* (an
      // existing shard on a failed server counts as lost) and reconstruct
      // the stripe.
      const int total = k + m;
      std::vector<std::vector<std::byte>> shards(
          static_cast<std::size_t>(total), std::vector<std::byte>(unit));
      // vector<bool> is not contiguous bools; use a plain buffer for the
      // span<const bool> API.
      std::unique_ptr<bool[]> present =
          std::make_unique<bool[]>(static_cast<std::size_t>(total));
      std::unique_ptr<bool[]> rotted =
          std::make_unique<bool[]>(static_cast<std::size_t>(total));
      int have = 0;
      for (int r = 0; r < total; ++r) {
        bool shard_corrupt = false;
        if (ds.read_shard(meta.ino, stripe, static_cast<std::uint32_t>(r),
                          shards[static_cast<std::size_t>(r)], prof, &rfail,
                          &shard_corrupt)) {
          present[static_cast<std::size_t>(r)] = true;
          ++have;
        }
        rotted[static_cast<std::size_t>(r)] = shard_corrupt;
      }
      if (have < k) return false;
      std::vector<std::span<std::byte>> views;
      views.reserve(static_cast<std::size_t>(total));
      for (auto& s : shards) views.emplace_back(s);
      rs.reconstruct(views,
                     std::span<const bool>(present.get(),
                                           static_cast<std::size_t>(total)));
      // Repair-in-place: only shards that *provably* rotted are rewritten.
      // Absent shards stay absent — materializing them would turn holes
      // (and invalidated stale versions) into data behind the MDS's back.
      for (int r = 0; r < total; ++r) {
        if (rotted[static_cast<std::size_t>(r)]) {
          ds.repair_shard(meta.ino, stripe, static_cast<std::uint32_t>(r),
                          shards[static_cast<std::size_t>(r)], prof);
        }
      }
      std::memcpy(dst.data() + done,
                  shards[static_cast<std::size_t>(d)].data() + in_shard,
                  chunk);
    }
    done += chunk;
  }
  return true;
}

// ------------------------------------------------------------ replication

bool replicated_write(DataServers& ds, const FileMeta& meta,
                      std::uint64_t offset, std::span<const std::byte> data,
                      OpProfile& prof) {
  DPC_CHECK(meta.redundancy == Redundancy::kReplication);
  const std::uint32_t unit = meta.stripe_unit;
  std::size_t done = 0;
  std::vector<std::byte> shard(unit);
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / unit;
    const auto in_unit = static_cast<std::uint32_t>(pos % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(data.size() - done, unit - in_unit));
    std::span<const std::byte> payload;
    if (chunk == unit) {
      payload = data.subspan(done, unit);
    } else {
      // Partial unit: read-merge. Try every replica — merging into zeros
      // from a failed read would wipe the rest of the unit.
      bool merged = false;
      for (std::uint32_t r = 0; r < meta.replicas && !merged; ++r) {
        bool rfail = false;
        if (ds.read_shard(meta.ino, stripe, r, shard, prof, &rfail))
          merged = true;
        else if (!rfail)
          merged = true;  // genuinely absent everywhere ⇒ zeros are right
      }
      if (!merged) return false;
      std::memcpy(shard.data() + in_unit, data.data() + done, chunk);
      payload = shard;
    }
    for (std::uint32_t r = 0; r < meta.replicas; ++r)
      ds.write_shard(meta.ino, stripe, r, payload, prof);
    done += chunk;
  }
  return true;
}

bool replicated_read(DataServers& ds, const FileMeta& meta,
                     std::uint64_t offset, std::span<std::byte> dst,
                     OpProfile& prof) {
  DPC_CHECK(meta.redundancy == Redundancy::kReplication);
  const std::uint32_t unit = meta.stripe_unit;
  std::size_t done = 0;
  std::vector<std::byte> shard(unit);
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / unit;
    const auto in_unit = static_cast<std::uint32_t>(pos % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_unit));
    bool rfail = false;
    ds.read_shard(meta.ino, stripe, 0, shard, prof, &rfail);  // primary copy
    if (rfail) return false;  // caller falls back to replicated_read_any
    std::memcpy(dst.data() + done, shard.data() + in_unit, chunk);
    done += chunk;
  }
  return true;
}

bool replicated_read_any(DataServers& ds, const FileMeta& meta,
                         std::uint64_t offset, std::span<std::byte> dst,
                         OpProfile& prof) {
  DPC_CHECK(meta.redundancy == Redundancy::kReplication);
  const std::uint32_t unit = meta.stripe_unit;
  std::size_t done = 0;
  std::vector<std::byte> shard(unit);
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / unit;
    const auto in_unit = static_cast<std::uint32_t>(pos % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_unit));
    // Prefer the first replica that *reads back* — a copy sitting on a
    // failed server is as good as gone.
    bool got = false;
    for (std::uint32_t r = 0; r < meta.replicas && !got; ++r) {
      bool rfail = false;
      if (ds.read_shard(meta.ino, stripe, r, shard, prof, &rfail)) got = true;
    }
    if (!got) return false;
    std::memcpy(dst.data() + done, shard.data() + in_unit, chunk);
    done += chunk;
  }
  return true;
}

}  // namespace dpc::dfs
