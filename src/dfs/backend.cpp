#include "dfs/backend.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "ec/crc32c.hpp"
#include "sim/check.hpp"

namespace dpc::dfs {

OpProfile& OpProfile::operator+=(const OpProfile& o) {
  host_cpu += o.host_cpu;
  dpu_cpu += o.dpu_cpu;
  pcie += o.pcie;
  mds += o.mds;
  ds += o.ds;
  net += o.net;
  crit += o.crit;
  mds_ops += o.mds_ops;
  ds_ops += o.ds_ops;
  forwards += o.forwards;
  return *this;
}

// ------------------------------------------------------------------- Mds

std::optional<Ino> Mds::lookup(const std::string& path) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = names_.find(path);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

std::optional<FileMeta> Mds::create(const std::string& path, Ino ino,
                                    std::uint64_t size,
                                    const FileMeta* templ) {
  sim::LockGuard lock(mu_);
  if (!names_.try_emplace(path, ino).second) return std::nullopt;
  FileMeta meta;
  if (templ != nullptr) meta = *templ;
  meta.ino = ino;
  meta.size = size;
  meta.delegation = 0;
  files_[ino] = meta;
  return meta;
}

ClientId Mds::delegation_holder(Ino ino) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = files_.find(ino);
  return it == files_.end() ? 0 : it->second.delegation;
}

std::optional<FileMeta> Mds::stat(Ino ino) const {
  sim::SharedLockGuard lock(mu_);
  const auto it = files_.find(ino);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool Mds::update_size(Ino ino, std::uint64_t size) {
  sim::LockGuard lock(mu_);
  const auto it = files_.find(ino);
  if (it == files_.end()) return false;
  it->second.size = std::max(it->second.size, size);
  return true;
}

bool Mds::acquire_delegation(Ino ino, ClientId client) {
  sim::LockGuard lock(mu_);
  const auto it = files_.find(ino);
  if (it == files_.end()) return false;
  if (it->second.delegation != 0 && it->second.delegation != client)
    return false;
  it->second.delegation = client;
  return true;
}

void Mds::release_delegation(Ino ino, ClientId client) {
  sim::LockGuard lock(mu_);
  const auto it = files_.find(ino);
  if (it != files_.end() && it->second.delegation == client)
    it->second.delegation = 0;
}

bool Mds::remove(const std::string& path) {
  sim::LockGuard lock(mu_);
  const auto it = names_.find(path);
  if (it == names_.end()) return false;
  files_.erase(it->second);
  names_.erase(it);
  return true;
}

// ------------------------------------------------------------ MdsCluster

MdsCluster::MdsCluster(int servers) : mds_(static_cast<std::size_t>(servers)) {
  DPC_CHECK(servers >= 1);
}

int MdsCluster::home_of(const std::string& path) const {
  return static_cast<int>(std::hash<std::string>{}(path) % mds_.size());
}

int MdsCluster::home_of(Ino ino) const {
  return static_cast<int>((ino * 0x9e3779b97f4a7c15ULL >> 32) % mds_.size());
}

void MdsCluster::enable_health(obs::Registry* registry,
                               const fault::HealthConfig& cfg) {
  health_ =
      std::make_unique<fault::HealthBoard>("mds", servers(), cfg, registry);
}

void MdsCluster::charge(int home, int entry, bool direct,
                        OpProfile& prof) const {
  using namespace sim::calib;
  sim::Nanos net = kNetHop * 2;  // client ↔ MDS round trip
  sim::Nanos svc = kMdsOp;
  if (!direct && home != entry) {
    // Entry-MDS proxying: an extra hop and the forwarding work.
    net += kNetHop * 2;
    svc += kMdsForward;
    ++prof.forwards;
  }
  // Gray failure: the home MDS may limp (sustained multiplier and/or
  // intermittent stall), stretching this RPC's service time.
  if (fault_ != nullptr) svc += fault_->slow_penalty(kFaultMdsSlow, home, svc);
  prof.net += net;
  prof.mds += svc;
  ++prof.mds_ops;
  if (health_ != nullptr) health_->record(home, net + svc, true);
}

void MdsCluster::register_recall(ClientId client, RecallFn fn) {
  sim::LockGuard lock(recall_mu_);
  if (fn) {
    recalls_[client] = std::move(fn);
  } else {
    recalls_.erase(client);
  }
}

std::optional<FileMeta> MdsCluster::create(const std::string& path,
                                           std::uint64_t size, int entry,
                                           bool direct, OpProfile& prof,
                                           const FileMeta* templ) {
  const int home = home_of(path);
  charge(home, entry, direct, prof);
  const Ino ino = next_ino_.fetch_add(1, std::memory_order_relaxed);
  auto meta =
      mds_[static_cast<std::size_t>(home)].create(path, ino, size, templ);
  if (!meta) return std::nullopt;
  // The file's metadata lives with its path's home MDS; ino-keyed requests
  // that land elsewhere locate it with one extra internal hop (handled by
  // the scan fallback in stat/update/acquire).
  if (home_of(ino) != home) prof.net += sim::calib::kNetHop;
  return meta;
}

std::optional<Ino> MdsCluster::lookup(const std::string& path, int entry,
                                      bool direct, OpProfile& prof) {
  const int home = home_of(path);
  charge(home, entry, direct, prof);
  return mds_[static_cast<std::size_t>(home)].lookup(path);
}

std::optional<FileMeta> MdsCluster::stat(Ino ino, int entry, bool direct,
                                         OpProfile& prof) {
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  auto meta = mds_[static_cast<std::size_t>(home)].stat(ino);
  if (meta) return meta;
  // Fall back to scanning (metadata created under the path home).
  for (const auto& m : mds_) {
    if (auto got = m.stat(ino)) return got;
  }
  return std::nullopt;
}

bool MdsCluster::update_size(Ino ino, std::uint64_t size, int entry,
                             bool direct, OpProfile& prof) {
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  if (mds_[static_cast<std::size_t>(home)].update_size(ino, size)) return true;
  for (auto& m : mds_)
    if (m.update_size(ino, size)) return true;
  return false;
}

bool MdsCluster::acquire_delegation(Ino ino, ClientId client, int entry,
                                    bool direct, OpProfile& prof) {
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  auto try_all = [&]() -> std::pair<bool, Mds*> {
    if (mds_[static_cast<std::size_t>(home)].acquire_delegation(ino, client))
      return {true, nullptr};
    for (auto& m : mds_) {
      if (m.acquire_delegation(ino, client)) return {true, nullptr};
      if (m.delegation_holder(ino) != 0) return {false, &m};
    }
    return {false, nullptr};
  };
  auto [ok, owner_mds] = try_all();
  if (ok) return true;
  if (owner_mds == nullptr) return false;  // ino unknown

  // Lease recall: ask the current holder to give the delegation back
  // (NFSv4-style). Costs one extra server→holder round trip.
  const ClientId holder = owner_mds->delegation_holder(ino);
  RecallFn recall;
  {
    sim::LockGuard lock(recall_mu_);
    const auto it = recalls_.find(holder);
    if (it != recalls_.end()) recall = it->second;
  }
  if (!recall || !recall(ino)) return false;  // holder refused / no lease
  owner_mds->release_delegation(ino, holder);
  prof.net += sim::calib::kNetHop * 2;
  prof.mds += sim::calib::kMdsOp;
  ++prof.mds_ops;
  return owner_mds->acquire_delegation(ino, client);
}

bool MdsCluster::remove(const std::string& path, int entry, bool direct,
                        OpProfile& prof) {
  const int home = home_of(path);
  charge(home, entry, direct, prof);
  return mds_[static_cast<std::size_t>(home)].remove(path);
}

std::optional<FileMeta> MdsCluster::find_meta(Ino ino) const {
  const int home = home_of(ino);
  if (auto meta = mds_[static_cast<std::size_t>(home)].stat(ino)) return meta;
  for (const auto& m : mds_)
    if (auto meta = m.stat(ino)) return meta;
  return std::nullopt;
}

bool MdsCluster::server_side_write(DataServers& ds, const ec::ReedSolomon& rs,
                                   Ino ino, std::uint64_t offset,
                                   std::span<const std::byte> data, int entry,
                                   bool direct, OpProfile& prof) {
  using namespace sim::calib;
  // Client sends the data to the MDS (packed small-I/O path, §2.1 DIO):
  // payload rides the metadata message.
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  prof.net += sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(data.size()) / (kDfsWriteGBps * 1e9) * 1e9)};

  auto meta = find_meta(ino);
  if (!meta) return false;
  // The home MDS handles the payload (proxy path) and computes EC — server
  // CPU burns here, not client CPU.
  prof.mds += sim::calib::kMdsProxyPerOp;
  if (meta->redundancy == Redundancy::kReplication) {
    if (!replicated_write(ds, *meta, offset, data, prof)) return false;
  } else {
    prof.mds += ec::ReedSolomon::host_encode_cost(data.size());
    if (!striped_write(ds, rs, *meta, offset, data, prof)) return false;
  }
  // …and lazily updates the size.
  for (auto& m : mds_) {
    if (m.update_size(ino, offset + data.size())) break;
  }
  return true;
}

bool MdsCluster::server_side_read(DataServers& ds, Ino ino,
                                  std::uint64_t offset,
                                  std::span<std::byte> dst, int entry,
                                  bool direct, OpProfile& prof) {
  using namespace sim::calib;
  const int home = home_of(ino);
  charge(home, entry, direct, prof);
  prof.net += sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(dst.size()) / (kDfsReadGBps * 1e9) * 1e9)};
  auto meta = find_meta(ino);
  if (!meta) return false;
  prof.mds += sim::calib::kMdsProxyPerOp;  // proxied data path
  if (meta->redundancy == Redundancy::kReplication) {
    if (!replicated_read(ds, *meta, offset, dst, prof) &&
        !replicated_read_any(ds, *meta, offset, dst, prof))
      return false;
  } else if (!striped_read(ds, *meta, offset, dst, prof)) {
    // Degraded path: the MDS reconstructs from surviving shards + parity
    // and burns the decode cost server-side (it proxies this I/O).
    prof.mds += ec::ReedSolomon::host_encode_cost(dst.size());
    if (!striped_read_reconstruct(ds, ec::ReedSolomon(meta->k, meta->m),
                                  *meta, offset, dst, prof))
      return false;
  }
  return true;
}

// ------------------------------------------------------------ DataServers

namespace {
sim::Nanos shard_net_cost(bool is_read, std::size_t bytes) {
  using namespace sim::calib;
  const double gbps = is_read ? kDfsReadGBps : kDfsWriteGBps;
  return kNetHop * 2 + sim::Nanos{static_cast<std::int64_t>(
                           static_cast<double>(bytes) / (gbps * 1e9) * 1e9)};
}

/// The checksum stamp helper: CRC32C over the shard bytes, salted with the
/// shard's full identity so a shard that surfaces under the wrong
/// (ino, stripe, role) — a misdirected or crossed-wire write — fails
/// verification exactly like rotted bytes.
std::uint32_t stamp_shard_crc(Ino ino, std::uint64_t stripe,
                              std::uint32_t role,
                              std::span<const std::byte> data) {
  std::uint32_t seed = ec::crc32c_u64(ino);
  seed = ec::crc32c_u64(stripe, seed);
  seed = ec::crc32c_u64(role, seed);
  return ec::crc32c(data, seed);
}
}  // namespace

DataServers::DataServers(int servers, fault::FaultInjector* fault,
                         obs::Registry* registry,
                         fault::CircuitBreaker::Config breaker_cfg)
    : servers_(static_cast<std::size_t>(servers)), fault_(fault) {
  DPC_CHECK(servers >= 1);
  breakers_.reserve(static_cast<std::size_t>(servers));
  for (int s = 0; s < servers; ++s) {
    breakers_.push_back(
        std::make_unique<fault::CircuitBreaker>(breaker_cfg, registry));
  }
  registry_ = registry;
  if (registry != nullptr) {
    failed_reads_ = &registry->counter("dfs.ds/failed_reads");
    failed_writes_ = &registry->counter("dfs.ds/failed_writes");
    corrupt_reads_ = &registry->counter("dfs.ds/corrupt_reads");
    shard_repairs_ = &registry->counter("dfs.ds/shard_repairs");
    hedge_.issued = &registry->counter("hedge/issued");
    hedge_.won = &registry->counter("hedge/won");
    hedge_.wasted = &registry->counter("hedge/wasted");
    hedge_.cancelled = &registry->counter("hedge/cancelled");
    hedge_.denied = &registry->counter("hedge/denied");
    hedge_.primary = &registry->counter("dfs.ds/primary_reads");
  }
}

void DataServers::enable_health(const fault::HealthConfig& cfg) {
  health_ = std::make_unique<fault::HealthBoard>("ds", servers(), cfg,
                                                 registry_);
}

void DataServers::fail_server(int server) {
  servers_[static_cast<std::size_t>(server)].failed.store(
      true, std::memory_order_release);
  any_failed_.store(true, std::memory_order_release);
}

void DataServers::heal_server(int server) {
  // any_failed_ stays set: the gate keeps running (cheap) and the server's
  // breaker closes itself on the first successful probe.
  servers_[static_cast<std::size_t>(server)].failed.store(
      false, std::memory_order_release);
}

bool DataServers::server_failed(int server) const {
  return servers_[static_cast<std::size_t>(server)].failed.load(
      std::memory_order_acquire);
}

bool DataServers::access_fails(int server, std::string_view site,
                               bool is_read, std::size_t bytes,
                               OpProfile& prof, bool& fast_failed) {
  fast_failed = false;
  fault::CircuitBreaker& br = *breakers_[static_cast<std::size_t>(server)];
  if (!br.allow()) {
    // Circuit open: fail immediately without burning a network round trip
    // or server slot — the whole point of the breaker.
    fast_failed = true;
    return true;
  }
  const bool down =
      servers_[static_cast<std::size_t>(server)].failed.load(
          std::memory_order_acquire) ||
      (fault_ != nullptr && fault_->should_fail(site));
  if (down) {
    // The attempt went to the wire and timed out: charge it.
    prof.ds += sim::calib::kDataServerOp;
    prof.net += shard_net_cost(is_read, bytes);
    ++prof.ds_ops;
    br.on_failure();
    return true;
  }
  br.on_success();
  return false;
}

int DataServers::server_of(Ino ino, std::uint64_t stripe,
                           std::uint32_t role) const {
  // Rotated placement spreads parity load across servers.
  return static_cast<int>((ino + stripe + role) % servers_.size());
}

DataServers::ShardAttempt DataServers::probe_read_shard(
    Ino ino, std::uint64_t stripe, std::uint32_t role,
    std::span<std::byte> dst) {
  ShardAttempt a;
  const int server = server_of(ino, stripe, role);
  if (gated()) {
    // Quarantine gate first: a peer the health board has sidelined is
    // skipped before the breaker or the wire (every Nth access slips
    // through as a reintegration probe). Skipping costs nothing.
    if (health_ != nullptr && !health_->allow(server)) {
      a.failed = true;
      a.fast_failed = true;
      if (failed_reads_ != nullptr) failed_reads_->add();
      std::memset(dst.data(), 0, dst.size());
      return a;
    }
    bool fast = false;
    OpProfile down_charge;
    if (access_fails(server, kFaultDsReadShard, /*is_read=*/true, dst.size(),
                     down_charge, fast)) {
      a.failed = true;
      a.fast_failed = fast;
      if (!fast) {
        if (health_ != nullptr) {
          // The attempt went to the wire and died. With a health board the
          // wait is the *adaptive* deadline (recorded as a censored
          // timeout), replacing access_fails' fixed per-op charge.
          const sim::Nanos dl = health_->deadline();
          a.latency = dl;
          a.charge.ds += dl;
          a.charge.net += sim::calib::kNetHop * 2;
          ++a.charge.ds_ops;
          health_->record(server, dl, /*ok=*/false);
        } else {
          a.charge = down_charge;
          a.latency =
              sim::calib::kDataServerOp + shard_net_cost(true, dst.size());
        }
      }
      if (failed_reads_ != nullptr) failed_reads_->add();
      std::memset(dst.data(), 0, dst.size());
      return a;
    }
  }
  sim::Nanos svc = sim::calib::kDataServerOp;
  const sim::Nanos net = shard_net_cost(true, dst.size());
  if (fault_ != nullptr)
    svc += fault_->slow_penalty(kFaultDsSlow, server, svc + net);
  const sim::Nanos total = svc + net;
  if (health_ != nullptr) {
    const sim::Nanos dl = health_->deadline();
    if (total.ns > dl.ns) {
      // Gray failure: the answer exists but won't arrive inside the
      // adaptive deadline — a modelled timeout. It strikes the health board
      // (the slow tier), not the breaker: the server is up, not down, and
      // opening a binary breaker on slowness would conflate the two.
      a.failed = true;
      a.latency = dl;
      a.charge.ds += dl;
      a.charge.net += sim::calib::kNetHop * 2;
      ++a.charge.ds_ops;
      health_->record(server, dl, /*ok=*/false);
      if (failed_reads_ != nullptr) failed_reads_->add();
      std::memset(dst.data(), 0, dst.size());
      return a;
    }
    health_->record(server, total, /*ok=*/true);
  }
  a.latency = total;
  a.charge.ds += svc;
  a.charge.net += net;
  ++a.charge.ds_ops;
  Server& sv = servers_[static_cast<std::size_t>(server)];
  sim::SharedLockGuard lock(sv.mu);
  const auto it = sv.shards.find(Key{ino, stripe, role});
  if (it == sv.shards.end()) {
    a.hole = true;
    std::memset(dst.data(), 0, dst.size());
    return a;
  }
  if (stamp_shard_crc(ino, stripe, role, it->second.data) !=
      it->second.crc) {
    // Damaged at rest. Report a *failure*, not a hole: zeros here would be
    // silently wrong data, and "absent" semantics would let a reconstruct
    // treat the rot as an erasure it can't tell from a legitimate hole.
    // The answer arrived on time, so health records it ok above — corruption
    // is not slowness, and neither the breaker nor quarantine should trip.
    if (corrupt_reads_ != nullptr) corrupt_reads_->add();
    a.failed = true;
    a.corrupt = true;
    std::memset(dst.data(), 0, dst.size());
    return a;
  }
  const auto n = std::min(dst.size(), it->second.data.size());
  std::memcpy(dst.data(), it->second.data.data(), n);
  if (n < dst.size()) std::memset(dst.data() + n, 0, dst.size() - n);
  a.ok = true;
  return a;
}

bool DataServers::read_shard(Ino ino, std::uint64_t stripe, std::uint32_t role,
                             std::span<std::byte> dst, OpProfile& prof,
                             bool* failed, bool* corrupt) {
  ShardAttempt a = probe_read_shard(ino, stripe, role, dst);
  commit_attempt(a, prof);
  if (failed != nullptr) *failed = a.failed;
  if (corrupt != nullptr) *corrupt = a.corrupt;
  return a.ok;
}

void DataServers::write_shard(Ino ino, std::uint64_t stripe,
                              std::uint32_t role,
                              std::span<const std::byte> src,
                              OpProfile& prof) {
  const int server = server_of(ino, stripe, role);
  Server& sv = servers_[static_cast<std::size_t>(server)];
  if (gated()) {
    bool fast = false;
    if (access_fails(server, kFaultDsWriteShard, /*is_read=*/false,
                     src.size(), prof, fast)) {
      if (failed_writes_ != nullptr) failed_writes_->add();
      // The new version never reached the server, so its old copy is now a
      // stale version. Invalidate it (models per-shard version checks):
      // a degraded read must reconstruct the new bytes from the surviving
      // shards, never serve the outdated ones.
      sim::LockGuard lock(sv.mu);
      sv.shards.erase(Key{ino, stripe, role});
      return;
    }
  }
  sim::Nanos svc = sim::calib::kDataServerOp;
  const sim::Nanos net = shard_net_cost(false, src.size());
  if (fault_ != nullptr)
    svc += fault_->slow_penalty(kFaultDsSlow, server, svc + net);
  prof.ds += svc;
  prof.net += net;
  ++prof.ds_ops;
  // Writes have no deadline cut: timing out a write that in fact landed
  // would invalidate the shard and amplify a limp into repair churn.
  // Sustained write slowness still feeds the scoreboard and quarantine.
  if (health_ != nullptr) health_->record(server, svc + net, /*ok=*/true);
  sim::LockGuard lock(sv.mu);
  StoredShard& st = sv.shards[Key{ino, stripe, role}];
  st.data.assign(src.begin(), src.end());
  st.crc = stamp_shard_crc(ino, stripe, role, st.data);
}

void DataServers::repair_shard(Ino ino, std::uint64_t stripe,
                               std::uint32_t role,
                               std::span<const std::byte> src,
                               OpProfile& prof) {
  write_shard(ino, stripe, role, src, prof);
  if (shard_repairs_ != nullptr) shard_repairs_->add();
}

void DataServers::purge(Ino ino) {
  for (auto& sv : servers_) {
    sim::LockGuard lock(sv.mu);
    for (auto it = sv.shards.begin(); it != sv.shards.end();) {
      it = it->first.ino == ino ? sv.shards.erase(it) : std::next(it);
    }
  }
}

bool DataServers::drop_shard(Ino ino, std::uint64_t stripe,
                             std::uint32_t role) {
  Server& sv = servers_[static_cast<std::size_t>(server_of(ino, stripe, role))];
  sim::LockGuard lock(sv.mu);
  return sv.shards.erase(Key{ino, stripe, role}) > 0;
}

bool DataServers::has_shard(Ino ino, std::uint64_t stripe,
                            std::uint32_t role) const {
  const Server& sv =
      servers_[static_cast<std::size_t>(server_of(ino, stripe, role))];
  sim::SharedLockGuard lock(sv.mu);
  return sv.shards.contains(Key{ino, stripe, role});
}

bool DataServers::corrupt_shard(Ino ino, std::uint64_t stripe,
                                std::uint32_t role, std::uint32_t bit) {
  Server& sv =
      servers_[static_cast<std::size_t>(server_of(ino, stripe, role))];
  sim::LockGuard lock(sv.mu);
  const auto it = sv.shards.find(Key{ino, stripe, role});
  if (it == sv.shards.end() || it->second.data.empty()) return false;
  bit %= static_cast<std::uint32_t>(it->second.data.size() * 8);
  it->second.data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  return true;
}

ShardState DataServers::verify_shard(Ino ino, std::uint64_t stripe,
                                     std::uint32_t role) const {
  const Server& sv =
      servers_[static_cast<std::size_t>(server_of(ino, stripe, role))];
  sim::SharedLockGuard lock(sv.mu);
  const auto it = sv.shards.find(Key{ino, stripe, role});
  if (it == sv.shards.end()) return ShardState::kAbsent;
  return stamp_shard_crc(ino, stripe, role, it->second.data) ==
                 it->second.crc
             ? ShardState::kOk
             : ShardState::kCorrupt;
}

std::vector<ShardId> DataServers::stored_shards() const {
  std::vector<ShardId> out;
  for (const auto& sv : servers_) {
    sim::SharedLockGuard lock(sv.mu);
    for (const auto& [key, shard] : sv.shards)
      out.push_back({key.ino, key.stripe, key.role});
  }
  return out;
}

// --------------------------------------------------------------- striping

bool striped_write(DataServers& ds, const ec::ReedSolomon& rs,
                   const FileMeta& meta, std::uint64_t offset,
                   std::span<const std::byte> data, OpProfile& prof) {
  const std::uint32_t unit = meta.stripe_unit;
  const int k = meta.k;
  const int m = meta.m;
  DPC_CHECK(rs.data_shards() == k && rs.parity_shards() == m);
  const std::uint64_t stripe_bytes = std::uint64_t{unit} * k;

  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / stripe_bytes;
    const std::uint64_t in_stripe = pos % stripe_bytes;

    // Full-stripe fast path: an aligned write covering the whole stripe
    // encodes parity directly from the new data — k+m writes, zero reads
    // (the classic full-stripe-write optimization; the RMW below is only
    // for sub-stripe updates).
    if (in_stripe == 0 && data.size() - done >= stripe_bytes) {
      std::vector<std::span<const std::byte>> dviews;
      dviews.reserve(static_cast<std::size_t>(k));
      for (int d2 = 0; d2 < k; ++d2) {
        dviews.push_back(data.subspan(done + static_cast<std::size_t>(d2) * unit, unit));
      }
      std::vector<std::vector<std::byte>> parity(
          static_cast<std::size_t>(m), std::vector<std::byte>(unit));
      std::vector<std::span<std::byte>> pviews(parity.begin(), parity.end());
      rs.encode(dviews, pviews);
      for (int d2 = 0; d2 < k; ++d2)
        ds.write_shard(meta.ino, stripe, static_cast<std::uint32_t>(d2),
                       dviews[static_cast<std::size_t>(d2)], prof);
      for (int p = 0; p < m; ++p)
        ds.write_shard(meta.ino, stripe, static_cast<std::uint32_t>(k + p),
                       parity[static_cast<std::size_t>(p)], prof);
      done += stripe_bytes;
      continue;
    }

    const auto d = static_cast<int>(in_stripe / unit);
    const auto in_shard = static_cast<std::uint32_t>(in_stripe % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(data.size() - done, unit - in_shard));

    // Delta-parity read-modify-write of one data shard. All reads happen
    // before any write: computing a delta against zeros from a *failed*
    // read (rather than the true old bytes) would silently corrupt parity,
    // so a read failure aborts the op with the stripe untouched.
    bool rfail = false;
    std::vector<std::byte> old_shard(unit);
    ds.read_shard(meta.ino, stripe, static_cast<std::uint32_t>(d), old_shard,
                  prof, &rfail);
    if (rfail) return false;
    std::vector<std::vector<std::byte>> parity(
        static_cast<std::size_t>(m), std::vector<std::byte>(unit));
    for (int p = 0; p < m; ++p) {
      ds.read_shard(meta.ino, stripe, static_cast<std::uint32_t>(k + p),
                    parity[static_cast<std::size_t>(p)], prof, &rfail);
      if (rfail) return false;
    }

    std::vector<std::byte> new_shard = old_shard;
    std::memcpy(new_shard.data() + in_shard, data.data() + done, chunk);

    std::vector<std::byte> delta(unit);
    for (std::uint32_t i = 0; i < unit; ++i)
      delta[i] = old_shard[i] ^ new_shard[i];

    ds.write_shard(meta.ino, stripe, static_cast<std::uint32_t>(d), new_shard,
                   prof);
    for (int p = 0; p < m; ++p) {
      rs.apply_delta(parity[static_cast<std::size_t>(p)], p, d, delta);
      ds.write_shard(meta.ino, stripe, static_cast<std::uint32_t>(k + p),
                     parity[static_cast<std::size_t>(p)], prof);
    }
    done += chunk;
  }
  return true;
}

bool striped_read(DataServers& ds, const FileMeta& meta, std::uint64_t offset,
                  std::span<std::byte> dst, OpProfile& prof) {
  const std::uint32_t unit = meta.stripe_unit;
  const std::uint64_t stripe_bytes = std::uint64_t{unit} * meta.k;
  std::size_t done = 0;
  std::vector<std::byte> shard(unit);
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / stripe_bytes;
    const std::uint64_t in_stripe = pos % stripe_bytes;
    const auto d = static_cast<std::uint32_t>(in_stripe / unit);
    const auto in_shard = static_cast<std::uint32_t>(in_stripe % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_shard));
    bool rfail = false;
    ds.read_shard(meta.ino, stripe, d, shard, prof, &rfail);
    if (rfail) return false;  // outage — caller falls back to degraded read
    std::memcpy(dst.data() + done, shard.data() + in_shard, chunk);
    done += chunk;
  }
  return true;
}

bool striped_read_reconstruct(DataServers& ds, const ec::ReedSolomon& rs,
                              const FileMeta& meta, std::uint64_t offset,
                              std::span<std::byte> dst, OpProfile& prof) {
  const std::uint32_t unit = meta.stripe_unit;
  const int k = meta.k;
  const int m = meta.m;
  const std::uint64_t stripe_bytes = std::uint64_t{unit} * k;
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / stripe_bytes;
    const std::uint64_t in_stripe = pos % stripe_bytes;
    const auto d = static_cast<int>(in_stripe / unit);
    const auto in_shard = static_cast<std::uint32_t>(in_stripe % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_shard));

    bool rfail = false;
    std::vector<std::byte> shard(unit);
    if (ds.read_shard(meta.ino, stripe, static_cast<std::uint32_t>(d), shard,
                      prof, &rfail)) {
      std::memcpy(dst.data() + done, shard.data() + in_shard, chunk);
    } else {
      // Degraded: the shard is absent, corrupt, or its server is
      // unreachable. Gather every shard that still *reads back clean* (an
      // existing shard on a failed server counts as lost) and reconstruct
      // the stripe.
      const int total = k + m;
      std::vector<std::vector<std::byte>> shards(
          static_cast<std::size_t>(total), std::vector<std::byte>(unit));
      // vector<bool> is not contiguous bools; use a plain buffer for the
      // span<const bool> API.
      std::unique_ptr<bool[]> present =
          std::make_unique<bool[]>(static_cast<std::size_t>(total));
      std::unique_ptr<bool[]> rotted =
          std::make_unique<bool[]>(static_cast<std::size_t>(total));
      int have = 0;
      for (int r = 0; r < total; ++r) {
        bool shard_corrupt = false;
        if (ds.read_shard(meta.ino, stripe, static_cast<std::uint32_t>(r),
                          shards[static_cast<std::size_t>(r)], prof, &rfail,
                          &shard_corrupt)) {
          present[static_cast<std::size_t>(r)] = true;
          ++have;
        }
        rotted[static_cast<std::size_t>(r)] = shard_corrupt;
      }
      if (have < k) return false;
      std::vector<std::span<std::byte>> views;
      views.reserve(static_cast<std::size_t>(total));
      for (auto& s : shards) views.emplace_back(s);
      rs.reconstruct(views,
                     std::span<const bool>(present.get(),
                                           static_cast<std::size_t>(total)));
      // Repair-in-place: only shards that *provably* rotted are rewritten.
      // Absent shards stay absent — materializing them would turn holes
      // (and invalidated stale versions) into data behind the MDS's back.
      for (int r = 0; r < total; ++r) {
        if (rotted[static_cast<std::size_t>(r)]) {
          ds.repair_shard(meta.ino, stripe, static_cast<std::uint32_t>(r),
                          shards[static_cast<std::size_t>(r)], prof);
        }
      }
      std::memcpy(dst.data() + done,
                  shards[static_cast<std::size_t>(d)].data() + in_shard,
                  chunk);
    }
    done += chunk;
  }
  return true;
}

// ------------------------------------------------------------ replication

bool replicated_write(DataServers& ds, const FileMeta& meta,
                      std::uint64_t offset, std::span<const std::byte> data,
                      OpProfile& prof) {
  DPC_CHECK(meta.redundancy == Redundancy::kReplication);
  const std::uint32_t unit = meta.stripe_unit;
  std::size_t done = 0;
  std::vector<std::byte> shard(unit);
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / unit;
    const auto in_unit = static_cast<std::uint32_t>(pos % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(data.size() - done, unit - in_unit));
    std::span<const std::byte> payload;
    if (chunk == unit) {
      payload = data.subspan(done, unit);
    } else {
      // Partial unit: read-merge. Try every replica — merging into zeros
      // from a failed read would wipe the rest of the unit.
      bool merged = false;
      for (std::uint32_t r = 0; r < meta.replicas && !merged; ++r) {
        bool rfail = false;
        if (ds.read_shard(meta.ino, stripe, r, shard, prof, &rfail))
          merged = true;
        else if (!rfail)
          merged = true;  // genuinely absent everywhere ⇒ zeros are right
      }
      if (!merged) return false;
      std::memcpy(shard.data() + in_unit, data.data() + done, chunk);
      payload = shard;
    }
    for (std::uint32_t r = 0; r < meta.replicas; ++r)
      ds.write_shard(meta.ino, stripe, r, payload, prof);
    done += chunk;
  }
  return true;
}

bool replicated_read(DataServers& ds, const FileMeta& meta,
                     std::uint64_t offset, std::span<std::byte> dst,
                     OpProfile& prof) {
  DPC_CHECK(meta.redundancy == Redundancy::kReplication);
  const std::uint32_t unit = meta.stripe_unit;
  std::size_t done = 0;
  std::vector<std::byte> shard(unit);
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / unit;
    const auto in_unit = static_cast<std::uint32_t>(pos % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_unit));
    bool rfail = false;
    ds.read_shard(meta.ino, stripe, 0, shard, prof, &rfail);  // primary copy
    if (rfail) return false;  // caller falls back to replicated_read_any
    std::memcpy(dst.data() + done, shard.data() + in_unit, chunk);
    done += chunk;
  }
  return true;
}

bool replicated_read_any(DataServers& ds, const FileMeta& meta,
                         std::uint64_t offset, std::span<std::byte> dst,
                         OpProfile& prof) {
  DPC_CHECK(meta.redundancy == Redundancy::kReplication);
  const std::uint32_t unit = meta.stripe_unit;
  std::size_t done = 0;
  std::vector<std::byte> shard(unit);
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / unit;
    const auto in_unit = static_cast<std::uint32_t>(pos % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_unit));
    // Prefer the first replica that *reads back* — a copy sitting on a
    // failed server is as good as gone.
    bool got = false;
    for (std::uint32_t r = 0; r < meta.replicas && !got; ++r) {
      bool rfail = false;
      if (ds.read_shard(meta.ino, stripe, r, shard, prof, &rfail)) got = true;
    }
    if (!got) return false;
    std::memcpy(dst.data() + done, shard.data() + in_unit, chunk);
    done += chunk;
  }
  return true;
}

// ---------------------------------------------------------- hedged reads
//
// The hedged engines model each stripe (or replica group) as a fan-out on a
// local timeline: every attempt is *staged* via probe_read_shard (outcome
// and cost known, nothing charged), completion events are ordered, and only
// the attempts that finished by the winning time commit their costs. An
// attempt still in flight when the op completes is a cancelled loser — it
// charges nothing, exactly like a real cancellation releasing the slot.

namespace {

constexpr std::int64_t kInfNs = std::numeric_limits<std::int64_t>::max();

/// A shard attempt staged on the fan-out timeline.
struct HedgedAttempt {
  bool issued = false;
  bool speculative = false;  ///< budgeted hedge (vs primary / mandatory)
  sim::Nanos start{};        ///< when the attempt launched
  DataServers::ShardAttempt a;
  std::vector<std::byte> buf;
};

/// When the attempt's outcome is known: answers (clean, hole, corrupt) and
/// deadline timeouts at start+latency; breaker/quarantine fast-fails
/// immediately (latency is zero).
std::int64_t done_at(const HedgedAttempt& at) {
  return at.start.ns + at.a.latency.ns;
}

/// Maps server → position in the board's healthiest-first ranking.
std::vector<int> rank_by_health(const fault::HealthBoard& board, int servers) {
  std::vector<int> rank(static_cast<std::size_t>(servers), 0);
  const std::vector<int> order = board.ranked();
  for (std::size_t i = 0; i < order.size(); ++i)
    rank[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  return rank;
}

}  // namespace

bool hedged_striped_read(DataServers& ds, const ec::ReedSolomon& rs,
                         const FileMeta& meta, std::uint64_t offset,
                         std::span<std::byte> dst, OpProfile& prof,
                         bool* reconstructed) {
  DPC_CHECK(meta.redundancy == Redundancy::kErasure);
  fault::HealthBoard* board = ds.health();
  DPC_CHECK(board != nullptr);  // callers enable health before hedging
  const DataServers::HedgeCounters& hc = ds.hedge_counters();
  const std::uint32_t unit = meta.stripe_unit;
  const int k = meta.k;
  const int m = meta.m;
  const int total = k + m;
  DPC_CHECK(rs.data_shards() == k && rs.parity_shards() == m);
  const std::uint64_t stripe_bytes = std::uint64_t{unit} * k;
  if (reconstructed != nullptr) *reconstructed = false;

  std::size_t done = 0;
  while (done < dst.size()) {
    const std::uint64_t stripe = (offset + done) / stripe_bytes;

    // Which data roles this stripe contributes, and where each chunk lands.
    std::vector<bool> needed(static_cast<std::size_t>(total), false);
    std::vector<std::uint32_t> r_in(static_cast<std::size_t>(total), 0);
    std::vector<std::uint32_t> r_chunk(static_cast<std::size_t>(total), 0);
    std::vector<std::size_t> r_dst(static_cast<std::size_t>(total), 0);
    std::size_t local = done;
    while (local < dst.size() && (offset + local) / stripe_bytes == stripe) {
      const std::uint64_t in_stripe = (offset + local) % stripe_bytes;
      const auto d = static_cast<std::size_t>(in_stripe / unit);
      const auto in_shard = static_cast<std::uint32_t>(in_stripe % unit);
      const auto chunk = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(dst.size() - local, unit - in_shard));
      needed[d] = true;
      r_in[d] = in_shard;
      r_chunk[d] = chunk;
      r_dst[d] = local;
      local += chunk;
    }

    // Primary wave: the needed data shards, fanned out at t = 0. A primary
    // on an already-quarantined server is *known suspect before issue* —
    // whether the gate skips it or lets a reintegration probe through, the
    // covering extras launch immediately (t = 0) and race the probe instead
    // of waiting out its deadline.
    std::vector<HedgedAttempt> atts(static_cast<std::size_t>(total));
    bool any_primary_failed = false;
    bool any_suspect = false;
    sim::Nanos t1{};  // all-primaries completion: slowest usable arrival
    std::uint64_t primaries = 0;
    for (int d = 0; d < k; ++d) {
      const auto di = static_cast<std::size_t>(d);
      if (!needed[di]) continue;
      HedgedAttempt& at = atts[di];
      at.buf.resize(unit);
      if (board->quarantined(
              ds.server_of(meta.ino, stripe, static_cast<std::uint32_t>(d))))
        any_suspect = true;
      at.a = ds.probe_read_shard(meta.ino, stripe,
                                 static_cast<std::uint32_t>(d), at.buf);
      at.issued = true;
      ++primaries;
      if (at.a.failed)
        any_primary_failed = true;
      else
        t1 = std::max(t1, at.a.latency);
    }
    board->note_primary(static_cast<int>(primaries));
    if (hc.primary != nullptr) hc.primary->add(primaries);

    const sim::Nanos hedge_delay = board->hedge_delay();

    // Hedge wave. Mandatory when a primary failed — degraded recovery needs
    // parity regardless of budget. Speculative when every primary is alive
    // but the slowest lags past the hedge delay: reconstruction from the
    // healthiest k shards races the straggler, gated by the token budget.
    int extra_target = 0;
    bool speculative = false;
    sim::Nanos extra_start{};
    if (any_primary_failed) {
      int clean = 0;
      sim::Nanos known{kInfNs};  // first failure-known time starts recovery
      for (const HedgedAttempt& at : atts) {
        if (!at.issued) continue;
        if (at.a.ok) ++clean;
        if (at.a.failed) known = std::min(known, at.a.latency);
      }
      extra_target = std::max(0, k - clean);
      extra_start = any_suspect ? sim::Nanos{} : known;
    } else if (t1 > hedge_delay) {
      int clean_fast = 0;
      for (const HedgedAttempt& at : atts)
        if (at.issued && at.a.ok && at.a.latency <= hedge_delay) ++clean_fast;
      const int want = k - clean_fast;
      if (want > 0 && board->try_hedge(want)) {
        extra_target = want;
        speculative = true;
        extra_start = hedge_delay;
      } else if (want > 0 && hc.denied != nullptr) {
        hc.denied->add(static_cast<std::uint64_t>(want));
      }
    }

    if (extra_target > 0) {
      const std::vector<int> rank = rank_by_health(*board, ds.servers());
      std::vector<int> cands;
      for (int r = 0; r < total; ++r)
        if (!atts[static_cast<std::size_t>(r)].issued) cands.push_back(r);
      std::stable_sort(cands.begin(), cands.end(), [&](int x, int y) {
        return rank[static_cast<std::size_t>(ds.server_of(
                   meta.ino, stripe, static_cast<std::uint32_t>(x)))] <
               rank[static_cast<std::size_t>(ds.server_of(
                   meta.ino, stripe, static_cast<std::uint32_t>(y)))];
      });
      int issued_extra = 0;
      for (std::size_t ci = 0;
           ci < cands.size() && issued_extra < extra_target; ++ci) {
        HedgedAttempt& at = atts[static_cast<std::size_t>(cands[ci])];
        at.buf.resize(unit);
        at.start = extra_start;
        at.speculative = speculative;
        at.a = ds.probe_read_shard(meta.ino, stripe,
                                   static_cast<std::uint32_t>(cands[ci]),
                                   at.buf);
        at.issued = true;
        ++issued_extra;
        if (speculative && hc.issued != nullptr) hc.issued->add();
        // Mandatory recovery replaces a dead/hole extra with the next
        // candidate — it needs k clean shards, not k attempts.
        if (!speculative && !at.a.ok) ++extra_target;
      }
    }

    // Completion: T1 = all primaries arrive; T2 = k-th clean shard arrives
    // (reconstruction possible). First to happen wins.
    std::vector<std::pair<std::int64_t, int>> clean_arrivals;
    for (int r = 0; r < total; ++r) {
      const HedgedAttempt& at = atts[static_cast<std::size_t>(r)];
      if (at.issued && at.a.ok) clean_arrivals.emplace_back(done_at(at), r);
    }
    std::sort(clean_arrivals.begin(), clean_arrivals.end());
    const std::int64_t t1_eff = any_primary_failed ? kInfNs : t1.ns;
    const std::int64_t t2 =
        static_cast<int>(clean_arrivals.size()) >= k
            ? clean_arrivals[static_cast<std::size_t>(k) - 1].first
            : kInfNs;
    const std::int64_t finish = std::min(t1_eff, t2);
    if (finish == kInfNs) {
      // Unrecoverable this pass: every attempt ran to completion, nothing
      // won. Charge them all and let the caller fall back / fail the op.
      for (const HedgedAttempt& at : atts)
        if (at.issued) DataServers::commit_attempt(at.a, prof);
      return false;
    }

    const bool via_t2 = t2 < t1_eff;
    std::vector<bool> winner(static_cast<std::size_t>(total), false);
    if (via_t2) {
      for (int i = 0; i < k; ++i)
        winner[static_cast<std::size_t>(clean_arrivals
                                            [static_cast<std::size_t>(i)]
                                                .second)] = true;
    } else {
      for (int d = 0; d < k; ++d)
        if (needed[static_cast<std::size_t>(d)])
          winner[static_cast<std::size_t>(d)] = true;
    }

    bool hedge_won = false;
    for (int r = 0; r < total; ++r) {
      const HedgedAttempt& at = atts[static_cast<std::size_t>(r)];
      if (!at.issued) continue;
      if (winner[static_cast<std::size_t>(r)]) {
        DataServers::commit_attempt(at.a, prof);
        if (via_t2 && at.speculative) hedge_won = true;
      } else if (done_at(at) <= finish) {
        // Completed (or failed) before the op finished: its cost is real.
        DataServers::commit_attempt(at.a, prof);
        if (at.speculative && hc.wasted != nullptr) hc.wasted->add();
      } else {
        // Still in flight at completion: cancelled, charges nothing.
        if (hc.cancelled != nullptr) hc.cancelled->add();
      }
    }
    if (hedge_won && hc.won != nullptr) hc.won->add();

    if (!via_t2) {
      for (int d = 0; d < k; ++d) {
        const auto di = static_cast<std::size_t>(d);
        if (needed[di])
          std::memcpy(dst.data() + r_dst[di], atts[di].buf.data() + r_in[di],
                      r_chunk[di]);
      }
    } else {
      // Reconstruct the stripe from exactly the k winning clean shards.
      std::vector<std::vector<std::byte>> shards(
          static_cast<std::size_t>(total), std::vector<std::byte>(unit));
      std::unique_ptr<bool[]> present =
          std::make_unique<bool[]>(static_cast<std::size_t>(total));
      for (int r = 0; r < total; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        if (winner[ri]) {
          shards[ri] = std::move(atts[ri].buf);
          present[ri] = true;
        }
      }
      std::vector<std::span<std::byte>> views;
      views.reserve(static_cast<std::size_t>(total));
      for (auto& s : shards) views.emplace_back(s);
      rs.reconstruct(views,
                     std::span<const bool>(present.get(),
                                           static_cast<std::size_t>(total)));
      if (reconstructed != nullptr) *reconstructed = true;
      // Repair-in-place only shards that provably rotted *and* whose read
      // completed before the op did (a cancelled read never saw the rot) —
      // same policy as striped_read_reconstruct.
      for (int r = 0; r < total; ++r) {
        const HedgedAttempt& at = atts[static_cast<std::size_t>(r)];
        if (at.issued && at.a.corrupt && done_at(at) <= finish)
          ds.repair_shard(meta.ino, stripe, static_cast<std::uint32_t>(r),
                          shards[static_cast<std::size_t>(r)], prof);
      }
      for (int d = 0; d < k; ++d) {
        const auto di = static_cast<std::size_t>(d);
        if (needed[di])
          std::memcpy(dst.data() + r_dst[di], shards[di].data() + r_in[di],
                      r_chunk[di]);
      }
    }
    prof.crit += sim::Nanos{finish};
    done = local;
  }
  return true;
}

bool hedged_replicated_read(DataServers& ds, const FileMeta& meta,
                            std::uint64_t offset, std::span<std::byte> dst,
                            OpProfile& prof) {
  DPC_CHECK(meta.redundancy == Redundancy::kReplication);
  fault::HealthBoard* board = ds.health();
  DPC_CHECK(board != nullptr);
  const DataServers::HedgeCounters& hc = ds.hedge_counters();
  const std::uint32_t unit = meta.stripe_unit;
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t stripe = pos / unit;
    const auto in_unit = static_cast<std::uint32_t>(pos % unit);
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dst.size() - done, unit - in_unit));

    // Replica copies ordered healthiest-first; the best one is the primary.
    const std::vector<int> rank = rank_by_health(*board, ds.servers());
    std::vector<std::uint32_t> order(meta.replicas);
    for (std::uint32_t r = 0; r < meta.replicas; ++r) order[r] = r;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       return rank[static_cast<std::size_t>(
                                  ds.server_of(meta.ino, stripe, x))] <
                              rank[static_cast<std::size_t>(
                                  ds.server_of(meta.ino, stripe, y))];
                     });

    const sim::Nanos hedge_delay = board->hedge_delay();
    std::vector<HedgedAttempt> atts;
    atts.reserve(order.size());
    sim::Nanos now{};
    bool next_speculative = false;
    for (std::size_t i = 0; i < order.size(); ++i) {
      HedgedAttempt at;
      at.buf.resize(unit);
      at.start = now;
      at.speculative = next_speculative;
      if (i == 0) {
        board->note_primary(1);
        if (hc.primary != nullptr) hc.primary->add();
      } else if (next_speculative && hc.issued != nullptr) {
        hc.issued->add();
      }
      at.a = ds.probe_read_shard(meta.ino, stripe, order[i], at.buf);
      atts.push_back(std::move(at));
      const HedgedAttempt& cur = atts.back();
      // A hole is usable here: the primary-copy semantics serve zeros for
      // genuinely absent units (matching replicated_read).
      const bool usable = cur.a.ok || cur.a.hole;
      if (usable && cur.a.latency <= hedge_delay) break;  // fast enough
      if (i + 1 >= order.size()) break;
      if (!usable) {
        // Failure known: the next replica is mandatory, not budgeted.
        now = cur.start + cur.a.latency;
        next_speculative = false;
        continue;
      }
      // Alive but lagging: hedge to the next-best replica if budget allows.
      if (board->try_hedge(1)) {
        now = cur.start + hedge_delay;
        next_speculative = true;
        continue;
      }
      if (hc.denied != nullptr) hc.denied->add();
      break;  // budget exhausted — wait out the slow replica
    }

    std::int64_t finish = kInfNs;
    int win = -1;
    for (std::size_t i = 0; i < atts.size(); ++i) {
      const HedgedAttempt& at = atts[i];
      if (!(at.a.ok || at.a.hole)) continue;
      const std::int64_t t = done_at(at);
      if (t < finish) {
        finish = t;
        win = static_cast<int>(i);
      }
    }
    if (win < 0) {
      for (const HedgedAttempt& at : atts)
        DataServers::commit_attempt(at.a, prof);
      return false;  // no replica readable
    }
    for (std::size_t i = 0; i < atts.size(); ++i) {
      const HedgedAttempt& at = atts[i];
      if (static_cast<int>(i) == win) {
        DataServers::commit_attempt(at.a, prof);
        if (at.speculative && hc.won != nullptr) hc.won->add();
      } else if (done_at(at) <= finish) {
        DataServers::commit_attempt(at.a, prof);
        if (at.speculative && hc.wasted != nullptr) hc.wasted->add();
      } else {
        if (hc.cancelled != nullptr) hc.cancelled->add();
      }
    }
    prof.crit += sim::Nanos{finish};
    std::memcpy(dst.data() + done, atts[static_cast<std::size_t>(win)].buf.data() + in_unit,
                chunk);
    done += chunk;
  }
  return true;
}

}  // namespace dpc::dfs
