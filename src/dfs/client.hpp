// The three fs-client flavors the paper evaluates against each other
// (Figs. 1 and 9):
//
//   * standard NFS client — thin host client; every metadata op goes through
//     its entry MDS (forwarded to the home MDS), data rides the MDS proxy
//     path, locks are acquired per operation. Low CPU, low performance.
//   * optimized host client — caches the metadata view (direct routing),
//     computes EC on the host CPU, writes data directly to the data servers
//     (DIO), and caches file delegations. High performance, high CPU — the
//     "datacenter tax" of Fig. 1.
//   * DPC-offloaded client — the optimized client's logic, executed on the
//     DPU: the host pays only syscall + fs-adapter + nvme-fs transport; EC
//     runs on the DPU's engine. High performance, host CPU back to ~NFS
//     levels (Fig. 9).
//
// One class, three configurations — the feature flags are exactly the
// paper's list of client-side optimizations, so ablations fall out for free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "dfs/backend.hpp"
#include "ec/reed_solomon.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "sim/thread_annotations.hpp"

namespace dpc::dfs {

struct ClientConfig {
  bool view_routing = false;     ///< client-cached metadata view (no forward)
  bool client_ec = false;        ///< EC computed at the client
  bool direct_io = false;        ///< data straight to data servers
  bool delegation_cache = false; ///< cache write delegations
  bool on_dpu = false;           ///< client logic runs on the DPU (DPC)
  /// Store new files replicated instead of erasure-coded (§2.1: "EC or
  /// replication is handled by the fs-client").
  bool use_replication = false;
  std::uint8_t replicas = 3;
  /// Participate in lease-style delegation recall: give delegations back
  /// when another client asks, instead of forcing it to fail with EAGAIN.
  bool delegation_recall = false;
  /// Retry budget for transient failures (delegation contention, failed
  /// shard reads); backoff is folded into the op's modelled net cost.
  fault::RetryPolicy retry{};
  /// Tail-tolerant reads: route direct-IO reads through the hedged engines
  /// (health-ranked replica choice, speculative parity reads racing slow
  /// shards). Requires DataServers::enable_health(); ignored without it.
  bool hedged_reads = false;

  static ClientConfig standard_nfs() { return {}; }
  static ClientConfig optimized() {
    ClientConfig c;
    c.view_routing = c.client_ec = c.direct_io = c.delegation_cache = true;
    return c;
  }
  static ClientConfig dpc_offloaded() {
    ClientConfig c = optimized();
    c.on_dpu = true;
    return c;
  }
};

struct IoResult {
  int err = 0;  ///< 0 or positive errno
  Ino ino = 0;
  std::uint32_t bytes = 0;
  OpProfile prof;
  /// Failure class for err != 0: transient errors are worth retrying at the
  /// caller (the client already spent its own bounded retry budget).
  fault::Transient transient = fault::Transient::kNone;
  bool ok() const { return err == 0; }
  bool retryable() const {
    return err != 0 && transient != fault::Transient::kNone;
  }
};

/// DFS client counters, registry-backed ("dfs.client/…"); mds/ds/forward
/// totals mirror the OpProfile fields the figure benches sum by hand.
struct DfsClientStats {
  explicit DfsClientStats(obs::Registry& reg)
      : meta_ops(reg.counter("dfs.client/meta_ops")),
        reads(reg.counter("dfs.client/reads")),
        writes(reg.counter("dfs.client/writes")),
        errors(reg.counter("dfs.client/errors")),
        mds_ops(reg.counter("dfs.client/mds_ops")),
        ds_ops(reg.counter("dfs.client/ds_ops")),
        forwards(reg.counter("dfs.client/forwards")),
        degraded_reads(reg.counter("ec/degraded_reads")),
        delegation_retries(reg.counter("dfs.client/delegation_retries")) {}

  obs::Counter& meta_ops;  ///< create/open/stat/remove
  obs::Counter& reads;
  obs::Counter& writes;
  obs::Counter& errors;
  obs::Counter& mds_ops;
  obs::Counter& ds_ops;
  obs::Counter& forwards;  ///< entry→home MDS forwarding hops
  obs::Counter& degraded_reads;      ///< reads served via EC reconstruction
  obs::Counter& delegation_retries;  ///< delegation acquire retries
};

class DfsClient {
 public:
  /// `registry` hosts the client counters and the per-op backend-cost
  /// histogram; when null a private registry is created.
  DfsClient(ClientId id, MdsCluster& mds, DataServers& ds,
            const ClientConfig& cfg, obs::Registry* registry = nullptr);
  ~DfsClient();
  DfsClient(const DfsClient&) = delete;
  DfsClient& operator=(const DfsClient&) = delete;

  const ClientConfig& config() const { return cfg_; }
  ClientId id() const { return id_; }
  /// True while this client holds the write delegation for `ino`.
  bool holds_delegation(Ino ino) const;

  /// Creates a file; `prealloc_size` mimics the benchmark's pre-sized big
  /// files (size known up front → no per-write size updates).
  IoResult create(const std::string& path, std::uint64_t prealloc_size = 0);
  IoResult open(const std::string& path);
  IoResult stat(Ino ino);
  IoResult read(Ino ino, std::uint64_t offset, std::span<std::byte> dst);
  IoResult write(Ino ino, std::uint64_t offset,
                 std::span<const std::byte> src);
  IoResult remove(const std::string& path);

  /// Degraded read for fault-injection tests (client-side reconstruct).
  IoResult read_degraded(Ino ino, std::uint64_t offset,
                         std::span<std::byte> dst);

  const DfsClientStats& stats() const { return stats_; }

 private:
  /// Folds one finished op into the registry (op counter + OpProfile sums +
  /// backend-cost histogram).
  void account(obs::Counter& op_counter, const IoResult& io);
  /// Scope guard running account() on every exit path of a public op.
  struct OpAccount {
    DfsClient* c;
    obs::Counter* ctr;
    const IoResult* io;
    ~OpAccount() { c->account(*ctr, *io); }
  };
  /// Charges the per-op client-stack CPU to the right place.
  void charge_client_cpu(OpProfile& prof, bool data_op,
                         std::uint32_t payload_bytes,
                         bool is_write = false) const;
  /// Cached metadata (optimized/DPC keep a meta cache; standard re-stats).
  std::optional<FileMeta> meta_of(Ino ino, OpProfile& prof);
  bool ensure_delegation(Ino ino, OpProfile& prof);

  ClientId id_;
  MdsCluster* mds_;
  DataServers* ds_;
  ClientConfig cfg_;
  int entry_mds_;
  ec::ReedSolomon rs_;
  std::unique_ptr<obs::Registry> owned_registry_;  // when none was supplied
  DfsClientStats stats_;
  /// Modelled backend (mds+ds+net) cost per finished op.
  sim::Histogram* backend_ns_;
  /// Per-op sequence number: deterministic backoff-jitter salt.
  std::atomic<std::uint64_t> op_seq_{0};

  mutable sim::AnnotatedMutex mu_{"dfs.client", sim::LockRank::kFs};
  std::unordered_map<Ino, FileMeta> meta_cache_ GUARDED_BY(mu_);
  std::unordered_set<Ino> delegations_ GUARDED_BY(mu_);
};

}  // namespace dpc::dfs
