#include "dfs/client.hpp"

#include <cerrno>

#include "sim/calib.hpp"

namespace dpc::dfs {

namespace {
/// nvme-fs transport demand for one offloaded op moving `payload` bytes:
/// the Fig. 4 walk — SQE fetch + PRP-list fetch + one payload DMA + CQE,
/// plus the doorbell.
sim::Nanos nvme_fs_transport(std::uint32_t payload) {
  using namespace sim::calib;
  return kDmaSetup * 5 + pcie_transfer(payload);
}
}  // namespace

DfsClient::DfsClient(ClientId id, MdsCluster& mds, DataServers& ds,
                     const ClientConfig& cfg, obs::Registry* registry)
    : id_(id),
      mds_(&mds),
      ds_(&ds),
      cfg_(cfg),
      entry_mds_(static_cast<int>(id) % mds.servers()),
      rs_(4, 2),
      owned_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                          : nullptr),
      stats_(registry != nullptr ? *registry : *owned_registry_),
      backend_ns_(registry != nullptr
                      ? &registry->histogram("dfs.client/backend_ns")
                      : &owned_registry_->histogram("dfs.client/backend_ns")) {
  if (cfg_.delegation_recall && cfg_.delegation_cache) {
    mds_->register_recall(id_, [this](Ino ino) {
      sim::LockGuard lock(mu_);
      delegations_.erase(ino);
      return true;  // lease-abiding client: always give it back
    });
  }
}

DfsClient::~DfsClient() {
  if (cfg_.delegation_recall && cfg_.delegation_cache)
    mds_->register_recall(id_, nullptr);
}

bool DfsClient::holds_delegation(Ino ino) const {
  sim::LockGuard lock(mu_);
  return delegations_.contains(ino);
}

void DfsClient::charge_client_cpu(OpProfile& prof, bool data_op,
                                  std::uint32_t payload_bytes,
                                  bool is_write) const {
  using namespace sim::calib;
  if (cfg_.on_dpu) {
    // DPC: host pays syscall + fs-adapter + data copy + completion + the
    // NFS-compat shim; the client stack runs on the DPU.
    prof.host_cpu += kSyscallVfs + kFsAdapterOp + kHostNvmeCompletion;
    if (data_op) prof.host_cpu += kHostDataPathOp + kNfsCompatShim;
    prof.pcie += nvme_fs_transport(data_op ? payload_bytes : 64);
    prof.dpu_cpu += (data_op && is_write) ? kDpuDfsWriteOp : kDpuDfsReadOp;
    if (data_op && cfg_.client_ec)
      prof.dpu_cpu += ec::ReedSolomon::dpu_encode_cost(payload_bytes);
  } else if (cfg_.client_ec || cfg_.view_routing || cfg_.direct_io ||
             cfg_.delegation_cache) {
    // Optimized host client: the "datacenter tax".
    prof.host_cpu += kSyscallVfs + kNfsClientOp + kOptClientExtraOp;
    if (data_op && cfg_.client_ec)
      prof.host_cpu += ec::ReedSolomon::host_encode_cost(payload_bytes);
  } else {
    prof.host_cpu += kSyscallVfs + kNfsClientOp;
  }
}

std::optional<FileMeta> DfsClient::meta_of(Ino ino, OpProfile& prof) {
  if (cfg_.view_routing) {
    sim::LockGuard lock(mu_);
    const auto it = meta_cache_.find(ino);
    if (it != meta_cache_.end()) return it->second;
  }
  auto meta = mds_->stat(ino, entry_mds_, cfg_.view_routing, prof);
  if (meta && cfg_.view_routing) {
    sim::LockGuard lock(mu_);
    meta_cache_[ino] = *meta;
  }
  return meta;
}

bool DfsClient::ensure_delegation(Ino ino, OpProfile& prof) {
  if (cfg_.delegation_cache) {
    {
      sim::LockGuard lock(mu_);
      if (delegations_.contains(ino)) return true;  // cached grant: free
    }
    if (!mds_->acquire_delegation(ino, id_, entry_mds_, cfg_.view_routing,
                                  prof))
      return false;
    sim::LockGuard lock(mu_);
    delegations_.insert(ino);
    return true;
  }
  // Standard client: lock round trip on every write.
  return mds_->acquire_delegation(ino, id_, entry_mds_, cfg_.view_routing,
                                  prof);
}

void DfsClient::account(obs::Counter& op_counter, const IoResult& io) {
  op_counter.add();
  if (io.err != 0) stats_.errors.add();
  stats_.mds_ops.add(io.prof.mds_ops);
  stats_.ds_ops.add(io.prof.ds_ops);
  stats_.forwards.add(io.prof.forwards);
  backend_ns_->record(io.prof.mds + io.prof.ds + io.prof.net);
}

IoResult DfsClient::create(const std::string& path,
                           std::uint64_t prealloc_size) {
  IoResult res;
  OpAccount acct{this, &stats_.meta_ops, &res};
  charge_client_cpu(res.prof, false, 0);
  FileMeta templ;
  if (cfg_.use_replication) {
    templ.redundancy = Redundancy::kReplication;
    templ.replicas = cfg_.replicas;
  }
  auto meta = mds_->create(path, prealloc_size, entry_mds_,
                           cfg_.view_routing, res.prof,
                           cfg_.use_replication ? &templ : nullptr);
  if (!meta) {
    res.err = EEXIST;
    return res;
  }
  if (cfg_.view_routing) {
    sim::LockGuard lock(mu_);
    meta_cache_[meta->ino] = *meta;
  }
  if (cfg_.on_dpu && cfg_.delegation_cache) {
    // DPC packs the create and the creator's write delegation into one
    // metadata message (§2.1's small-I/O packing, applied to metadata), so
    // the grant costs no extra MDS round trip.
    OpProfile free_grant;
    if (mds_->acquire_delegation(meta->ino, id_, entry_mds_,
                                 cfg_.view_routing, free_grant)) {
      sim::LockGuard lock(mu_);
      delegations_.insert(meta->ino);
    }
  }
  res.ino = meta->ino;
  return res;
}

IoResult DfsClient::open(const std::string& path) {
  IoResult res;
  OpAccount acct{this, &stats_.meta_ops, &res};
  charge_client_cpu(res.prof, false, 0);
  const auto ino = mds_->lookup(path, entry_mds_, cfg_.view_routing, res.prof);
  if (!ino) {
    res.err = ENOENT;
    return res;
  }
  res.ino = *ino;
  return res;
}

IoResult DfsClient::stat(Ino ino) {
  IoResult res;
  OpAccount acct{this, &stats_.meta_ops, &res};
  charge_client_cpu(res.prof, false, 0);
  const auto meta = meta_of(ino, res.prof);
  if (!meta) {
    res.err = ENOENT;
    return res;
  }
  res.ino = ino;
  res.bytes = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(meta->size, UINT32_MAX));
  return res;
}

IoResult DfsClient::read(Ino ino, std::uint64_t offset,
                         std::span<std::byte> dst) {
  IoResult res;
  OpAccount acct{this, &stats_.reads, &res};
  res.ino = ino;
  charge_client_cpu(res.prof, true, static_cast<std::uint32_t>(dst.size()));
  if (cfg_.direct_io) {
    const auto meta = meta_of(ino, res.prof);
    if (!meta) {
      res.err = ENOENT;
      return res;
    }
    bool done;
    const bool hedge = cfg_.hedged_reads && ds_->health() != nullptr;
    if (meta->redundancy == Redundancy::kReplication) {
      done = hedge ? hedged_replicated_read(*ds_, *meta, offset, dst, res.prof)
                   : (replicated_read(*ds_, *meta, offset, dst, res.prof) ||
                      replicated_read_any(*ds_, *meta, offset, dst, res.prof));
    } else {
      if (hedge) {
        bool reconstructed = false;
        done = hedged_striped_read(*ds_, rs_, *meta, offset, dst, res.prof,
                                   &reconstructed);
        if (done && reconstructed) {
          // The hedge won via degraded decode — charge it where the client
          // runs, same as the serial reconstruct path below.
          stats_.degraded_reads.add();
          if (cfg_.on_dpu)
            res.prof.dpu_cpu += ec::ReedSolomon::dpu_encode_cost(dst.size());
          else
            res.prof.host_cpu += ec::ReedSolomon::host_encode_cost(dst.size());
        }
      } else {
        done = striped_read(*ds_, *meta, offset, dst, res.prof);
      }
      if (!done) {
        // Degraded read: a data shard is unreachable — reconstruct it from
        // the survivors (k of k+m shards) with a bounded retry budget.
        stats_.degraded_reads.add();
        const std::uint64_t salt =
            op_seq_.fetch_add(1, std::memory_order_relaxed);
        for (int attempt = 1; attempt <= cfg_.retry.max_attempts; ++attempt) {
          done = striped_read_reconstruct(*ds_, rs_, *meta, offset, dst,
                                          res.prof);
          if (done) {
            // Decode compute lands where the client runs.
            if (cfg_.on_dpu)
              res.prof.dpu_cpu += ec::ReedSolomon::dpu_encode_cost(dst.size());
            else
              res.prof.host_cpu +=
                  ec::ReedSolomon::host_encode_cost(dst.size());
            break;
          }
          res.prof.net += cfg_.retry.backoff(attempt, salt);
        }
      }
    }
    if (!done) {
      res.err = EIO;
      res.transient = fault::Transient::kTimeout;
      return res;
    }
  } else {
    if (!mds_->server_side_read(*ds_, ino, offset, dst, entry_mds_,
                                cfg_.view_routing, res.prof)) {
      res.err = ENOENT;
      return res;
    }
  }
  res.bytes = static_cast<std::uint32_t>(dst.size());
  return res;
}

IoResult DfsClient::write(Ino ino, std::uint64_t offset,
                          std::span<const std::byte> src) {
  IoResult res;
  OpAccount acct{this, &stats_.writes, &res};
  res.ino = ino;
  charge_client_cpu(res.prof, true, static_cast<std::uint32_t>(src.size()),
                    /*is_write=*/true);
  // Delegation contention is transient by nature: the holder may release
  // (or be recalled) any moment. Retry with backoff instead of bouncing a
  // hard EAGAIN straight to the application.
  if (!ensure_delegation(ino, res.prof)) {
    bool granted = false;
    const std::uint64_t salt = op_seq_.fetch_add(1, std::memory_order_relaxed);
    for (int attempt = 1; attempt < cfg_.retry.max_attempts; ++attempt) {
      stats_.delegation_retries.add();
      res.prof.net += cfg_.retry.backoff(attempt, salt);
      if (ensure_delegation(ino, res.prof)) {
        granted = true;
        break;
      }
    }
    if (!granted) {
      res.err = EAGAIN;
      res.transient = fault::Transient::kBusy;
      return res;
    }
  }
  if (cfg_.direct_io && cfg_.client_ec) {
    const auto meta = meta_of(ino, res.prof);
    if (!meta) {
      res.err = ENOENT;
      return res;
    }
    // EC / replication handled here (compute already charged to the right
    // CPU), data straight to the data servers.
    const bool stored =
        meta->redundancy == Redundancy::kReplication
            ? replicated_write(*ds_, *meta, offset, src, res.prof)
            : striped_write(*ds_, rs_, *meta, offset, src, res.prof);
    if (!stored) {
      res.err = EIO;
      res.transient = fault::Transient::kTimeout;
      return res;
    }
    // Size updates are lazy/batched: only needed when the file grows past
    // the preallocated size.
    if (offset + src.size() > meta->size) {
      mds_->update_size(ino, offset + src.size(), entry_mds_,
                        cfg_.view_routing, res.prof);
      sim::LockGuard lock(mu_);
      auto it = meta_cache_.find(ino);
      if (it != meta_cache_.end())
        it->second.size = offset + src.size();
    }
  } else {
    if (!mds_->server_side_write(*ds_, rs_, ino, offset, src, entry_mds_,
                                 cfg_.view_routing, res.prof)) {
      res.err = ENOENT;
      return res;
    }
  }
  res.bytes = static_cast<std::uint32_t>(src.size());
  return res;
}

IoResult DfsClient::remove(const std::string& path) {
  IoResult res;
  OpAccount acct{this, &stats_.meta_ops, &res};
  charge_client_cpu(res.prof, false, 0);
  auto opened = mds_->lookup(path, entry_mds_, cfg_.view_routing, res.prof);
  if (!opened) {
    res.err = ENOENT;
    return res;
  }
  mds_->remove(path, entry_mds_, cfg_.view_routing, res.prof);
  ds_->purge(*opened);
  {
    sim::LockGuard lock(mu_);
    meta_cache_.erase(*opened);
    delegations_.erase(*opened);
  }
  return res;
}

IoResult DfsClient::read_degraded(Ino ino, std::uint64_t offset,
                                  std::span<std::byte> dst) {
  IoResult res;
  res.ino = ino;
  charge_client_cpu(res.prof, true, static_cast<std::uint32_t>(dst.size()));
  const auto meta = meta_of(ino, res.prof);
  if (!meta) {
    res.err = ENOENT;
    return res;
  }
  if (meta->redundancy != Redundancy::kReplication)
    stats_.degraded_reads.add();
  const bool recovered =
      meta->redundancy == Redundancy::kReplication
          ? replicated_read_any(*ds_, *meta, offset, dst, res.prof)
          : striped_read_reconstruct(*ds_, rs_, *meta, offset, dst,
                                     res.prof);
  if (!recovered) {
    res.err = EIO;
    res.transient = fault::Transient::kTimeout;
    return res;
  }
  // Reconstruction compute lands where the client runs.
  if (cfg_.on_dpu)
    res.prof.dpu_cpu += ec::ReedSolomon::dpu_encode_cost(dst.size());
  else
    res.prof.host_cpu += ec::ReedSolomon::host_encode_cost(dst.size());
  res.bytes = static_cast<std::uint32_t>(dst.size());
  return res;
}

}  // namespace dpc::dfs
