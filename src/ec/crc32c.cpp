#include "ec/crc32c.hpp"

#include <array>

namespace dpc::ec {

namespace {
constexpr std::uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();
}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t crc) {
  crc = ~crc;
  for (const std::byte b : data) {
    crc = kTable[(crc ^ static_cast<std::uint8_t>(b)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dpc::ec
