#include "ec/crc32c.hpp"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DPC_CRC32C_HW 1
#include <nmmintrin.h>
#endif

namespace dpc::ec {

namespace {
constexpr std::uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli

// kTables[0] is the classic byte-at-a-time table; kTables[k] advances a
// byte k positions further through the shift register, so eight lookups
// (one per table) consume eight input bytes at once.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFF] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

constexpr auto kTables = make_tables();

inline std::uint32_t step(std::uint32_t crc, std::byte b) {
  return kTables[0][(crc ^ static_cast<std::uint8_t>(b)) & 0xFF] ^
         (crc >> 8);
}

#ifdef DPC_CRC32C_HW
// Hardware fast path: the SSE4.2 crc32 instruction implements exactly this
// reflected-Castagnoli shift register, 8 bytes per ~3-cycle instruction.
// Compiled with a per-function target attribute so the translation unit
// itself stays baseline; only runtime detection may select it.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::span<const std::byte> data, std::uint32_t crc) {
  std::uint64_t c = ~crc;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // memcpy load: payload spans carry no alignment guarantee.
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    c = _mm_crc32_u64(c, v);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) {
    c32 = _mm_crc32_u8(c32, static_cast<std::uint8_t>(*p++));
  }
  return ~c32;
}
#endif

using CrcFn = std::uint32_t (*)(std::span<const std::byte>, std::uint32_t);

struct Backend {
  CrcFn fn;
  const char* name;
};

Backend detect_backend() {
#ifdef DPC_CRC32C_HW
  if (__builtin_cpu_supports("sse4.2")) return {&crc32c_hw, "sse4.2"};
#endif
  return {&crc32c_slice8, "slice8"};
}

const Backend& backend() {
  // Magic-static: detected once, race-free, before first checksum.
  static const Backend b = detect_backend();
  return b;
}
}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t crc) {
  return backend().fn(data, crc);
}

const char* crc32c_backend() { return backend().name; }

std::uint32_t crc32c_slice8(std::span<const std::byte> data,
                            std::uint32_t crc) {
  crc = ~crc;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Byte-wise loads keep the fold endian-independent (the simulation has
    // no alignment guarantee on payload spans either).
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[0]) |
               static_cast<std::uint32_t>(p[1]) << 8 |
               static_cast<std::uint32_t>(p[2]) << 16 |
               static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
          kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
          kTables[3][static_cast<std::uint8_t>(p[4])] ^
          kTables[2][static_cast<std::uint8_t>(p[5])] ^
          kTables[1][static_cast<std::uint8_t>(p[6])] ^
          kTables[0][static_cast<std::uint8_t>(p[7])];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = step(crc, *p++);
  return ~crc;
}

std::uint32_t crc32c_bytewise(std::span<const std::byte> data,
                              std::uint32_t crc) {
  crc = ~crc;
  for (const std::byte b : data) crc = step(crc, b);
  return ~crc;
}

std::uint32_t crc32c_u64(std::uint64_t v, std::uint32_t crc) {
  std::byte b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::byte>(v >> (8 * i));
  }
  return crc32c(std::span<const std::byte>(b, 8), crc);
}

}  // namespace dpc::ec
