// CRC32C (Castagnoli) — the integrity checksum of the whole stack: the DIF
// computed on the cache flush path ("performs relevant computing operations
// (e.g., compression, DIF, EC, etc.)", §3.3), the per-block / per-value /
// per-shard stamps of the SSD, KV and DFS stores, the nvme-fs payload
// trailer, and the KVFS intent journal's record checksum.
//
// Lives in src/ec/ for historical reasons but builds as its own tiny
// library (`dpc_crc`) so stores that need a checksum do not have to link
// the Reed–Solomon codec.
#pragma once

#include <cstdint>
#include <span>

namespace dpc::ec {

/// Computes CRC32C over `data`, seeded by `crc` (pass 0 to start; chain
/// calls with the previous return value to checksum in pieces).
/// Runtime-dispatched: uses the SSE4.2 `crc32` instruction when the CPU has
/// it (detected once, at first use), else the slice-by-8 table fold. All
/// backends produce bit-identical results.
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t crc = 0);

/// Name of the backend crc32c() dispatched to: "sse4.2" (hardware) or
/// "slice8" (portable table fold). For logs, benches, and tests that want
/// to know whether the hardware path is actually under test.
const char* crc32c_backend();

/// The portable slice-by-8 table fold — eight lookups consume eight input
/// bytes per iteration. Always available regardless of dispatch; exposed so
/// tests and benches can compare it against the hardware path directly.
std::uint32_t crc32c_slice8(std::span<const std::byte> data,
                            std::uint32_t crc = 0);

/// Reference byte-at-a-time implementation. Same result as crc32c(); kept
/// for the micro-bench (quantifies the slice-by-8/SIMD speedup that bounds
/// scrub overhead) and for cross-checking in tests.
std::uint32_t crc32c_bytewise(std::span<const std::byte> data,
                              std::uint32_t crc = 0);

/// Folds a 64-bit value (little-endian byte order) into the checksum.
/// Used as a location salt: seeding a block/value/shard checksum with its
/// own address (LBA, key hash, shard identity) makes a *misdirected* write
/// — right data, wrong location — fail verification at the aliased slot.
std::uint32_t crc32c_u64(std::uint64_t v, std::uint32_t crc = 0);

}  // namespace dpc::ec
