// CRC32C (Castagnoli) — the DIF/checksum computed during the DPU's cache
// flush path ("performs relevant computing operations (e.g., compression,
// DIF, EC, etc.)", §3.3).
#pragma once

#include <cstdint>
#include <span>

namespace dpc::ec {

/// Computes CRC32C over `data`, seeded by `crc` (pass 0 to start; chain
/// calls with the previous return value to checksum in pieces).
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t crc = 0);

}  // namespace dpc::ec
