#include "ec/reed_solomon.hpp"

#include "sim/check.hpp"

namespace dpc::ec {

ReedSolomon::ReedSolomon(int k, int m)
    : k_(k),
      m_(m),
      encode_matrix_(GfMatrix::rs_encode_matrix(static_cast<std::size_t>(k),
                                                static_cast<std::size_t>(m))) {
  DPC_CHECK(k >= 1 && m >= 1 && k + m <= 255);
}

void ReedSolomon::encode(
    std::span<const std::span<const std::byte>> data,
    std::span<const std::span<std::byte>> parity) const {
  DPC_CHECK(data.size() == static_cast<std::size_t>(k_));
  DPC_CHECK(parity.size() == static_cast<std::size_t>(m_));
  const std::size_t len = data[0].size();
  for (const auto& s : data) DPC_CHECK(s.size() == len);
  for (const auto& s : parity) DPC_CHECK(s.size() == len);

  const auto& gf = Gf256::instance();
  for (int p = 0; p < m_; ++p) {
    const std::size_t row = static_cast<std::size_t>(k_ + p);
    gf.mul_set(parity[static_cast<std::size_t>(p)], data[0],
               encode_matrix_.at(row, 0));
    for (int d = 1; d < k_; ++d) {
      gf.mul_acc(parity[static_cast<std::size_t>(p)],
                 data[static_cast<std::size_t>(d)],
                 encode_matrix_.at(row, static_cast<std::size_t>(d)));
    }
  }
}

void ReedSolomon::reconstruct(std::span<const std::span<std::byte>> shards,
                              std::span<const bool> present) const {
  const auto total = static_cast<std::size_t>(k_ + m_);
  DPC_CHECK(shards.size() == total && present.size() == total);
  const std::size_t len = shards[0].size();
  for (const auto& s : shards) DPC_CHECK(s.size() == len);

  std::size_t have = 0;
  for (bool p : present) have += p ? 1 : 0;
  DPC_CHECK_MSG(have >= static_cast<std::size_t>(k_),
                "need " << k_ << " shards, only " << have << " present");
  if (have == total) return;

  // Pick the first k present shards; their encode-matrix rows form a k x k
  // submatrix whose inverse maps them back to the data shards.
  std::vector<std::size_t> rows;
  rows.reserve(static_cast<std::size_t>(k_));
  for (std::size_t i = 0; i < total && rows.size() < static_cast<std::size_t>(k_);
       ++i)
    if (present[i]) rows.push_back(i);

  GfMatrix sub(static_cast<std::size_t>(k_), static_cast<std::size_t>(k_));
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (std::size_t c = 0; c < static_cast<std::size_t>(k_); ++c)
      sub.at(r, c) = encode_matrix_.at(rows[r], c);
  const GfMatrix decode = sub.inverted();

  const auto& gf = Gf256::instance();
  // Rebuild missing *data* shards first.
  std::vector<std::vector<std::byte>> rebuilt(
      static_cast<std::size_t>(k_));
  for (int d = 0; d < k_; ++d) {
    const auto di = static_cast<std::size_t>(d);
    if (present[di]) continue;
    rebuilt[di].assign(len, std::byte{0});
    for (std::size_t j = 0; j < static_cast<std::size_t>(k_); ++j) {
      gf.mul_acc(rebuilt[di], shards[rows[j]], decode.at(di, j));
    }
  }
  for (int d = 0; d < k_; ++d) {
    const auto di = static_cast<std::size_t>(d);
    if (!rebuilt[di].empty())
      std::copy(rebuilt[di].begin(), rebuilt[di].end(), shards[di].begin());
  }

  // Then re-encode any missing parity from the (now complete) data shards.
  for (int p = 0; p < m_; ++p) {
    const auto pi = static_cast<std::size_t>(k_ + p);
    if (present[pi]) continue;
    const std::size_t row = pi;
    gf.mul_set(shards[pi], shards[0], encode_matrix_.at(row, 0));
    for (int d = 1; d < k_; ++d)
      gf.mul_acc(shards[pi], shards[static_cast<std::size_t>(d)],
                 encode_matrix_.at(row, static_cast<std::size_t>(d)));
  }
}

bool ReedSolomon::verify(
    std::span<const std::span<const std::byte>> shards) const {
  const auto total = static_cast<std::size_t>(k_ + m_);
  DPC_CHECK(shards.size() == total);
  const std::size_t len = shards[0].size();

  const auto& gf = Gf256::instance();
  std::vector<std::byte> expect(len);
  for (int p = 0; p < m_; ++p) {
    const std::size_t row = static_cast<std::size_t>(k_ + p);
    gf.mul_set(expect, shards[0], encode_matrix_.at(row, 0));
    for (int d = 1; d < k_; ++d)
      gf.mul_acc(expect, shards[static_cast<std::size_t>(d)],
                 encode_matrix_.at(row, static_cast<std::size_t>(d)));
    if (!std::equal(expect.begin(), expect.end(),
                    shards[row].begin()))
      return false;
  }
  return true;
}

std::uint8_t ReedSolomon::coeff(int p, int d) const {
  DPC_CHECK(p >= 0 && p < m_ && d >= 0 && d < k_);
  return encode_matrix_.at(static_cast<std::size_t>(k_ + p),
                           static_cast<std::size_t>(d));
}

void ReedSolomon::apply_delta(std::span<std::byte> parity, int p, int d,
                              std::span<const std::byte> delta) const {
  Gf256::instance().mul_acc(parity, delta, coeff(p, d));
}

sim::Nanos ReedSolomon::host_encode_cost(std::uint64_t stripe_bytes) {
  return sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(stripe_bytes) * sim::calib::kHostEcNsPerByte)};
}

sim::Nanos ReedSolomon::dpu_encode_cost(std::uint64_t stripe_bytes) {
  return sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(stripe_bytes) * sim::calib::kDpuEcNsPerByte)};
}

}  // namespace dpc::ec
