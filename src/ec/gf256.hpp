// GF(2^8) arithmetic with the AES/Rijndael-compatible polynomial 0x11D,
// table-driven (exp/log), used by the Reed–Solomon codec.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace dpc::ec {

class Gf256 {
 public:
  /// Tables are process-wide constants; access through the singleton.
  static const Gf256& instance();

  std::uint8_t add(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;  // addition in GF(2^8) is xor
  }
  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[(log_[a] + log_[b]) % 255];
  }
  std::uint8_t div(std::uint8_t a, std::uint8_t b) const;
  std::uint8_t inv(std::uint8_t a) const;
  /// a^n for n >= 0.
  std::uint8_t pow(std::uint8_t a, unsigned n) const;
  /// Generator element (2) raised to the i-th power.
  std::uint8_t exp(unsigned i) const { return exp_[i % 255]; }

  /// dst[i] ^= c * src[i] — the workhorse of RS encoding, written over raw
  /// byte spans so it vectorizes.
  void mul_acc(std::span<std::byte> dst, std::span<const std::byte> src,
               std::uint8_t c) const;
  /// dst[i] = c * src[i].
  void mul_set(std::span<std::byte> dst, std::span<const std::byte> src,
               std::uint8_t c) const;

 private:
  Gf256();
  std::array<std::uint8_t, 256> exp_{};  // exp_[i] = 2^i (exp_[255]=exp_[0])
  std::array<std::uint8_t, 256> log_{};  // log_[exp_[i]] = i
  // Per-coefficient 256-entry product tables: mul_table_[c][x] = c*x.
  std::array<std::array<std::uint8_t, 256>, 256> mul_table_{};
};

/// Square matrix over GF(2^8) with Gauss-Jordan inversion — used to build
/// the decode matrix when reconstructing from erasures.
class GfMatrix {
 public:
  GfMatrix(std::size_t rows, std::size_t cols);

  std::uint8_t& at(std::size_t r, std::size_t c);
  std::uint8_t at(std::size_t r, std::size_t c) const;
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Returns the inverse; DPC_CHECKs the matrix is square and non-singular.
  GfMatrix inverted() const;
  GfMatrix multiplied(const GfMatrix& other) const;
  static GfMatrix identity(std::size_t n);
  /// Vandermonde-derived systematic encode matrix ((k+m) x k): the top k
  /// rows are the identity, the bottom m rows generate parity.
  static GfMatrix rs_encode_matrix(std::size_t k, std::size_t m);

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> data_;
};

}  // namespace dpc::ec
