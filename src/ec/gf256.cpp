#include "ec/gf256.hpp"

#include "sim/check.hpp"

namespace dpc::ec {

namespace {
constexpr unsigned kPoly = 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1
}

const Gf256& Gf256::instance() {
  static const Gf256 g;
  return g;
}

Gf256::Gf256() {
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  exp_[255] = exp_[0];
  log_[0] = 0;  // log(0) undefined; callers guard

  for (unsigned c = 0; c < 256; ++c)
    for (unsigned v = 0; v < 256; ++v)
      mul_table_[c][v] =
          (c == 0 || v == 0)
              ? 0
              : exp_[(log_[c] + log_[v]) % 255];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) const {
  DPC_CHECK_MSG(b != 0, "GF(256) division by zero");
  if (a == 0) return 0;
  return exp_[(log_[a] + 255 - log_[b]) % 255];
}

std::uint8_t Gf256::inv(std::uint8_t a) const {
  DPC_CHECK_MSG(a != 0, "GF(256) inverse of zero");
  return exp_[(255 - log_[a]) % 255];
}

std::uint8_t Gf256::pow(std::uint8_t a, unsigned n) const {
  if (n == 0) return 1;
  if (a == 0) return 0;
  return exp_[(static_cast<unsigned>(log_[a]) * n) % 255];
}

void Gf256::mul_acc(std::span<std::byte> dst, std::span<const std::byte> src,
                    std::uint8_t c) const {
  DPC_CHECK(dst.size() == src.size());
  if (c == 0) return;
  const auto& tbl = mul_table_[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] ^= static_cast<std::byte>(
        tbl[static_cast<std::uint8_t>(src[i])]);
  }
}

void Gf256::mul_set(std::span<std::byte> dst, std::span<const std::byte> src,
                    std::uint8_t c) const {
  DPC_CHECK(dst.size() == src.size());
  const auto& tbl = mul_table_[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::byte>(tbl[static_cast<std::uint8_t>(src[i])]);
  }
}

GfMatrix::GfMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {
  DPC_CHECK(rows >= 1 && cols >= 1);
}

std::uint8_t& GfMatrix::at(std::size_t r, std::size_t c) {
  DPC_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::uint8_t GfMatrix::at(std::size_t r, std::size_t c) const {
  DPC_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

GfMatrix GfMatrix::identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::inverted() const {
  DPC_CHECK_MSG(rows_ == cols_, "inverse of non-square matrix");
  const auto& gf = Gf256::instance();
  const std::size_t n = rows_;
  GfMatrix work(*this);
  GfMatrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot row.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    DPC_CHECK_MSG(pivot < n, "singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Scale pivot row to 1.
    const std::uint8_t d = gf.inv(work.at(col, col));
    for (std::size_t c = 0; c < n; ++c) {
      work.at(col, c) = gf.mul(work.at(col, c), d);
      inv.at(col, c) = gf.mul(inv.at(col, c), d);
    }
    // Eliminate the column from other rows.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t f = work.at(r, col);
      if (f == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.at(r, c) ^= gf.mul(f, work.at(col, c));
        inv.at(r, c) ^= gf.mul(f, inv.at(col, c));
      }
    }
  }
  return inv;
}

GfMatrix GfMatrix::multiplied(const GfMatrix& other) const {
  DPC_CHECK(cols_ == other.rows_);
  const auto& gf = Gf256::instance();
  GfMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(r, k);
      if (a == 0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out.at(r, c) ^= gf.mul(a, other.at(k, c));
    }
  return out;
}

GfMatrix GfMatrix::rs_encode_matrix(std::size_t k, std::size_t m) {
  DPC_CHECK(k >= 1 && m >= 1 && k + m <= 255);
  const auto& gf = Gf256::instance();
  // Build a (k+m) x k Vandermonde matrix, then normalize the top k x k block
  // to the identity so the code is systematic (data shards pass through).
  GfMatrix vand(k + m, k);
  for (std::size_t r = 0; r < k + m; ++r)
    for (std::size_t c = 0; c < k; ++c)
      vand.at(r, c) = gf.pow(gf.exp(static_cast<unsigned>(r)),
                             static_cast<unsigned>(c));
  // Extract top block and right-multiply by its inverse.
  GfMatrix top(k, k);
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c) top.at(r, c) = vand.at(r, c);
  return vand.multiplied(top.inverted());
}

}  // namespace dpc::ec
