// Systematic Reed–Solomon erasure coding over GF(2^8).
//
// This is the client-side EC calculation the paper offloads from the host
// fs-client to the DPU (§2.1 "Client-side EC calculation", §4.3). A stripe
// of k data shards gains m parity shards; any k of the k+m survive.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ec/gf256.hpp"
#include "sim/calib.hpp"
#include "sim/time.hpp"

namespace dpc::ec {

class ReedSolomon {
 public:
  /// k data shards + m parity shards (paper's DFS default: RS(4,2)).
  ReedSolomon(int k, int m);

  int data_shards() const { return k_; }
  int parity_shards() const { return m_; }
  int total_shards() const { return k_ + m_; }

  /// Computes the m parity shards from the k data shards. All spans must
  /// have equal size.
  void encode(std::span<const std::span<const std::byte>> data,
              std::span<const std::span<std::byte>> parity) const;

  /// Reconstructs the missing shards in place. `shards` has k+m entries;
  /// `present[i]` says whether shards[i] currently holds valid bytes. At
  /// least k must be present. On return every shard is valid.
  void reconstruct(std::span<const std::span<std::byte>> shards,
                   std::span<const bool> present) const;

  /// True if `shards` (all present) are parity-consistent.
  bool verify(std::span<const std::span<const std::byte>> shards) const;

  /// Encode-matrix coefficient linking parity shard `p` (0..m-1) to data
  /// shard `d` (0..k-1). Used for delta-parity updates: when data shard d
  /// changes by Δ, parity p changes by coeff(p,d)·Δ.
  std::uint8_t coeff(int p, int d) const;
  /// dst ^= coeff(p,d) · delta — the delta-parity primitive.
  void apply_delta(std::span<std::byte> parity, int p, int d,
                   std::span<const std::byte> delta) const;

  /// Modelled compute cost of encoding `stripe_bytes` of data (k shards
  /// worth) on the host CPU vs. the DPU's EC engine — used by the Fig. 1 /
  /// Fig. 9 CPU accounting.
  static sim::Nanos host_encode_cost(std::uint64_t stripe_bytes);
  static sim::Nanos dpu_encode_cost(std::uint64_t stripe_bytes);

 private:
  int k_, m_;
  GfMatrix encode_matrix_;  // (k+m) x k systematic
};

}  // namespace dpc::ec
