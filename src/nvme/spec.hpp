// NVMe command structures and the nvme-fs vendor command encoding of §3.2.
//
// The paper augments the NVMe protocol with a bidirectional vendor command:
//
//   * Opcode (DW0[7:0]) = 0xA3 — bits[1:0] = 11b (bidirectional transfer),
//     bits[6:2] = 01000b (function), bit 7 = 1b (vendor/customized).
//   * DW0[10]   — request type for IO_Dispatch: 0 = standalone (KVFS),
//                 1 = distributed (DFS client).
//   * DW0[14]   — PSDT for the *write* direction: 0 = PRP, 1 = SGL.
//   * DW0[15]   — PSDT for the *read* direction:  0 = PRP, 1 = SGL.
//   * DW2–5     — PRP Write entries (locates the host write buffer).
//   * DW6–9     — PRP Read entries (locates the host read buffer).
//   * DW10      — bits[23:0] Write_len: payload bytes host → DPU;
//                 bits[31:24] tenant id (reproduction extension, see below).
//   * DW11      — Read_len:  payload bytes DPU → host.
//   * DW13      — WH_len (low 16) and RH_len (high 16): bytes taken by the
//                 write-side and read-side file headers inside the buffers.
//
// Reproduction extension (in the same spirit — §3.2 is explicit that DPC
// modifies the SQE structure): simple data-path operations on an already
// open inode (read / write / fsync / truncate) are carried *inline* in
// otherwise-unused SQE fields — op in DW0[13:11], inode in NSID+DW12,
// offset in DW14+DW15 — so that neither direction needs a header in the
// payload buffers. This is what makes an 8 KB file *read* cost the same
// 4 DMA operations as the paper's 8 KB write (Fig. 4): SQE fetch, PRP-list
// fetch, one payload DMA, CQE. Metadata operations (open/create/stat/...)
// put a serialized header in the write buffer and flag WH_len.
//
// PRP is the default (PSDT bits 0); this reproduction implements the PRP
// path and rejects SGL.
//
// Tenancy extension (ROADMAP item 1 — one DPU fronting many mounts): every
// nvme-fs command carries the issuing tenant's id in DW10[31:24] so the
// DPU-side QoS layer (src/dpu/qos.*) can schedule, rate-limit, and shed per
// tenant. Write_len shrinks to 24 bits — the per-command payload cap is
// ~1 MB + one header page, far below the 16 MB the field still addresses
// (encode_nvme_fs enforces it). Over-budget commands complete with the
// retryable Status::kThrottled whose CQE result dword carries a modelled
// retry-after hint in nanoseconds.
#pragma once

#include <cstdint>
#include <span>

#include "sim/check.hpp"

namespace dpc::nvme {

inline constexpr std::uint8_t kNvmeFsOpcode = 0xA3;
inline constexpr std::uint32_t kPageSize = 4096;

/// Tenant identity carried on the wire in DW10[31:24]. Tenant 0 is the
/// default ("the host kernel") so a stack that never configures QoS is
/// single-tenant with zero ceremony.
using TenantId = std::uint8_t;
/// Tenants the QoS layer tracks individually; wire ids are taken modulo
/// this, so an id outside the table aliases onto a tracked slot instead of
/// escaping accounting.
inline constexpr std::uint32_t kMaxTenants = 16;
/// DW10 bits available to Write_len once the tenant byte is carved out.
inline constexpr std::uint32_t kMaxWriteLen = (1u << 24) - 1;

/// Submission queue entry — 16 dwords / 64 bytes, as on the wire.
struct Sqe {
  std::uint32_t dw0 = 0;        // opcode | req-type | psdt | cid
  std::uint32_t nsid = 0;       // DW1  (inline inode low 32 bits)
  std::uint64_t prp_write1 = 0; // DW2-3
  std::uint64_t prp_write2 = 0; // DW4-5
  std::uint64_t prp_read1 = 0;  // DW6-7
  std::uint64_t prp_read2 = 0;  // DW8-9
  std::uint32_t write_len = 0;  // DW10
  std::uint32_t read_len = 0;   // DW11
  std::uint32_t dw12 = 0;       // inline inode high 32 bits
  std::uint32_t dw13 = 0;       // WH_len | RH_len << 16
  std::uint32_t dw14 = 0;       // inline offset low 32 bits
  std::uint32_t dw15 = 0;       // inline offset high 32 bits
};
static_assert(sizeof(Sqe) == 64, "SQE must be 64 bytes");

/// Completion queue entry — 4 dwords / 16 bytes.
struct Cqe {
  std::uint32_t result = 0;     // DW0: command-specific (bytes produced)
  std::uint32_t dw1 = 0;
  std::uint16_t sq_head = 0;    // DW2
  std::uint16_t sq_id = 0;
  std::uint16_t cid = 0;        // DW3
  std::uint16_t status = 0;     // bit0 = phase tag, bits[15:1] = status code
};
static_assert(sizeof(Cqe) == 16, "CQE must be 16 bytes");

enum class Status : std::uint16_t {
  kSuccess = 0,
  kInvalidOpcode = 1,
  kInvalidField = 2,
  kDataTransferError = 4,   ///< transient transfer fault — retryable
  kInternalError = 6,
  kAbortedByRequest = 7,    ///< host-initiated abort (timeout) — retryable
  /// Payload failed its end-to-end CRC32C (the 4-byte trailer the INI
  /// appends inside the data DMA). Deliberately NOT retryable: the bytes
  /// are provably damaged at rest or in the buffers, so resubmitting reads
  /// the same damage — recovery goes through redundancy (EC reconstruct)
  /// or surfaces EIO.
  kDataIntegrityError = 8,
  /// Admission control rejected the command (tenant over its token-bucket
  /// budget, or the DPU over its global queue/in-flight caps). Retryable:
  /// nothing was applied and the condition is transient by construction.
  /// The CQE result dword carries a modelled retry-after hint in
  /// nanoseconds that RetryPolicy-driven resubmitters honor as a backoff
  /// floor.
  kThrottled = 9,
  kFsError = 0x80,  ///< file-level error; CQE result carries -errno
};

/// True for statuses that indicate a transient transport/device condition
/// where resubmitting the same command is safe and may succeed.
/// kDataIntegrityError is excluded by design — see its comment.
constexpr bool is_retryable(Status st) {
  return st == Status::kDataTransferError ||
         st == Status::kAbortedByRequest || st == Status::kThrottled;
}

/// Bytes of the CRC32C trailer the INI appends to the write payload and the
/// TGT appends to the read payload — rides inside the same data DMA, so the
/// Fig. 4 DMA count is unchanged by the integrity envelope.
inline constexpr std::uint32_t kPayloadCrcBytes = 4;

/// Which offloaded stack IO_Dispatch should route the request to (DW0[10]).
enum class DispatchTarget : std::uint8_t {
  kStandalone = 0,  ///< KVFS
  kDistributed = 1, ///< DFS client
};

enum class Psdt : std::uint8_t { kPrp = 0, kSgl = 1 };

/// Inline data-path op carried in DW0[13:11] (reproduction extension).
enum class InlineOp : std::uint8_t {
  kNone = 0,      ///< header-carrying command: look at WH_len
  kRead = 1,
  kWrite = 2,
  kFsync = 3,
  kTruncate = 4,  ///< inline offset = new size
};

/// Decoded view of the nvme-fs vendor command.
struct NvmeFsCmd {
  DispatchTarget target = DispatchTarget::kStandalone;
  Psdt write_psdt = Psdt::kPrp;
  Psdt read_psdt = Psdt::kPrp;
  InlineOp inline_op = InlineOp::kNone;
  std::uint16_t cid = 0;
  TenantId tenant = 0;         ///< issuing tenant (DW10[31:24])
  std::uint64_t inode = 0;     ///< inline inode (data-path ops)
  std::uint64_t offset = 0;    ///< inline file offset (data-path ops)
  std::uint64_t prp_write1 = 0;
  std::uint64_t prp_write2 = 0;
  std::uint64_t prp_read1 = 0;
  std::uint64_t prp_read2 = 0;
  std::uint32_t write_len = 0;
  std::uint32_t read_len = 0;
  std::uint16_t write_hdr_len = 0;  ///< WH_len
  std::uint16_t read_hdr_len = 0;   ///< RH_len
};

/// Builds the on-wire SQE for an nvme-fs command.
Sqe encode_nvme_fs(const NvmeFsCmd& cmd);

/// Parses an SQE; DPC_CHECKs the opcode is 0xA3 with the bidirectional and
/// vendor bits set as §3.2 specifies.
NvmeFsCmd decode_nvme_fs(const Sqe& sqe);

/// True if the SQE carries the nvme-fs vendor opcode.
bool is_nvme_fs(const Sqe& sqe);

std::uint8_t opcode_of(const Sqe& sqe);
std::uint16_t cid_of(const Sqe& sqe);

/// Tenant id carried in DW10[31:24] — valid for nvme-fs SQEs; cheap enough
/// for the TGT ingest path to classify without a full decode.
inline TenantId tenant_of(const Sqe& sqe) {
  return static_cast<TenantId>(sqe.write_len >> 24);
}

/// Builds a completion for command `cid` with phase tag `phase`.
Cqe make_cqe(std::uint16_t cid, Status st, bool phase, std::uint32_t result,
             std::uint16_t sq_head, std::uint16_t sq_id);

inline Status status_of(const Cqe& cqe) {
  return static_cast<Status>(cqe.status >> 1);
}
inline bool phase_of(const Cqe& cqe) { return (cqe.status & 1u) != 0; }

}  // namespace dpc::nvme
