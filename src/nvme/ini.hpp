// NVME-INI — the host-side nvme-fs driver (§3.2).
//
// Produces SQEs at the tail of the SQ, copies payloads into the command
// slot's write buffer, materializes PRP lists, rings the SQ doorbell, and
// consumes CQEs at the head of the CQ (phase-tag protocol). Thread-safe per
// queue; DPC gives each host thread its own queue pair for the multi-queue
// scaling the paper contrasts with virtio-fs's single queue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "nvme/queue_pair.hpp"
#include "nvme/spec.hpp"
#include "obs/trace.hpp"
#include "pcie/dma.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace dpc::nvme {

/// Result of one completed command.
struct Completion {
  std::uint16_t cid = 0;
  Status status = Status::kSuccess;
  std::uint32_t result = 0;  ///< command-specific (bytes produced / -errno)
  std::uint32_t service_ns = 0;  ///< device-reported service time (dw1)
};

class IniDriver {
 public:
  /// `traces` (optional) attaches per-op latency tracing + driver counters;
  /// share the same QueueTraces with this queue's TgtDriver so DPU-side
  /// stages land in the same per-cid slot.
  IniDriver(pcie::DmaEngine& dma, const QueuePair& qp,
            obs::QueueTraces* traces = nullptr);

  /// Everything needed to issue one nvme-fs command. Payload spans may be
  /// empty. `write_hdr` and `write_data` are copied back-to-back into the
  /// slot's write buffer (WH_len = write_hdr.size()).
  struct Request {
    DispatchTarget target = DispatchTarget::kStandalone;
    InlineOp inline_op = InlineOp::kNone;
    TenantId tenant = 0;  ///< issuing tenant, carried in DW10[31:24]
    std::uint64_t inode = 0;
    std::uint64_t offset = 0;
    std::span<const std::byte> write_hdr{};
    std::span<const std::byte> write_data{};
    std::uint16_t read_hdr_cap = 0;   ///< RH_len
    std::uint32_t read_data_cap = 0;  ///< expected data bytes back
  };

  struct Submitted {
    std::uint16_t cid = 0;
    sim::Nanos cost{};  ///< modelled host-side submission cost (doorbell DMA)
  };

  /// Enqueues a command. Blocks on a condition variable (signalled by
  /// release()) only if all cids are in flight.
  Submitted submit(const Request& req);

  struct BatchSubmitted {
    std::vector<std::uint16_t> cids;  ///< one per request, submission order
    sim::Nanos cost{};                ///< host-side cost (doorbell DMAs)
  };
  /// Enqueues a run of commands and rings the SQ tail doorbell ONCE for the
  /// whole run — one posted MMIO per drain cycle instead of one per
  /// command, the producer-side twin of drain_locked()'s CQ-head
  /// coalescing. If the queue fills mid-batch, the enqueued prefix is
  /// published (doorbell) before blocking on a free cid, so the TGT can
  /// drain it and liveness is preserved even for batches wider than the
  /// queue.
  BatchSubmitted submit_batch(std::span<const Request> reqs);

  /// Non-blocking completion reap. Drains every ready CQE into the per-cid
  /// completion buffer and rings the CQ-head doorbell once per drained
  /// batch; returns the first reaped completion, or std::nullopt if the CQ
  /// was empty.
  std::optional<Completion> poll();

  /// Spins until command `cid` completes (reaping others along the way).
  Completion wait(std::uint16_t cid);

  /// Non-blocking: reaps ready CQEs, then reports `cid`'s completion if it
  /// has been recorded (by this or any other caller's poll).
  std::optional<Completion> try_take(std::uint16_t cid);

  /// View of the read buffer payload after completion (`n` bytes).
  std::span<const std::byte> read_payload(std::uint16_t cid,
                                          std::size_t n) const;

  /// Host-side abort of a command that never completed (deadline expired).
  /// If a completion raced in, it is returned unchanged; otherwise a
  /// synthetic kAbortedByRequest completion is recorded for the cid so the
  /// normal release() path reclaims the slot. In this reproduction the TGT
  /// either posts a CQE or drops it permanently — a dropped command's CQE
  /// can never arrive later — so reclaiming the cid here is safe; the
  /// "nvme.ini/late_cqes" counter guards that invariant.
  Completion abort(std::uint16_t cid);

  /// Returns the cid's slot to the free pool and wakes one queue-full
  /// waiter. Must be called once per completed command before the cid can
  /// be reused.
  void release(std::uint16_t cid);

  /// Host-side half of a controller reset after a DPU crash. Every cid
  /// still in flight (allocated, no completion recorded) gets a synthetic
  /// kAbortedByRequest completion so its waiter unblocks and requeues
  /// through the normal retry path; the CQ ring's phase tags are zeroed so
  /// stale entries can't read as valid once the phase wraps back to 1; the
  /// SQ/CQ indices, phase, and both doorbells return to their power-on
  /// state. Run *after* TgtDriver::reset() and only while the DPU pollers
  /// are quiesced. Returns the number of commands aborted.
  std::uint16_t reset();

  std::uint16_t inflight() const;

 private:
  std::uint16_t alloc_cid_locked() REQUIRES(mu_);
  void build_prp(std::uint64_t buf_off, std::uint32_t len,
                 std::uint64_t list_off, std::uint64_t& prp1,
                 std::uint64_t& prp2);
  /// Produces one SQE at the SQ tail (cid allocation, payload copy, CRC
  /// trailer, PRP lists) WITHOUT ringing the doorbell — submit() and
  /// submit_batch() own doorbell policy.
  std::uint16_t enqueue_locked(const Request& req, sim::Nanos& cost)
      REQUIRES(mu_);
  std::optional<Completion> drain_locked() REQUIRES(mu_);

  pcie::DmaEngine* dma_;
  const QueuePair* qp_;
  obs::QueueTraces* traces_;

  // Registry instruments (null when no traces attached).
  obs::Counter* submits_ = nullptr;
  obs::Counter* queue_full_waits_ = nullptr;
  obs::Counter* sq_doorbells_ = nullptr;
  obs::Counter* cq_doorbells_ = nullptr;
  obs::Counter* reaps_ = nullptr;
  obs::Counter* timeouts_ = nullptr;
  obs::Counter* late_cqes_ = nullptr;
  obs::Counter* resets_ = nullptr;

  mutable sim::AnnotatedMutex mu_{"nvme.ini", sim::LockRank::kDriver};
  // condition_variable_any: the annotated UniqueLock is BasicLockable but
  // not std::unique_lock<std::mutex>.
  std::condition_variable_any free_cv_;  // signalled by release()
  std::vector<std::uint16_t> free_cids_ GUARDED_BY(mu_);
  /// Per-cid completion buffer.
  std::vector<std::optional<Completion>> done_ GUARDED_BY(mu_);
  std::uint16_t sq_tail_ GUARDED_BY(mu_) = 0;
  std::uint16_t cq_head_ GUARDED_BY(mu_) = 0;
  /// Expected phase tag of the next valid CQE.
  bool cq_phase_ GUARDED_BY(mu_) = true;
};

}  // namespace dpc::nvme
