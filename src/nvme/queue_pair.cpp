#include "nvme/queue_pair.hpp"

namespace dpc::nvme {

namespace {
constexpr std::uint64_t page_round(std::uint64_t n) {
  return (n + kPageSize - 1) / kPageSize * kPageSize;
}
}  // namespace

QueuePair::QueuePair(const QpConfig& cfg, pcie::RegionAllocator& host,
                     pcie::RegionAllocator& dpu)
    : cfg_(cfg) {
  DPC_CHECK(cfg.depth >= 2);
  DPC_CHECK(cfg.max_write >= 1 && cfg.max_read >= 1);

  sq_base_ = host.alloc(std::uint64_t{cfg_.depth} * sizeof(Sqe), kPageSize);
  cq_base_ = host.alloc(std::uint64_t{cfg_.depth} * sizeof(Cqe), kPageSize);
  sq_db_ = dpu.alloc(sizeof(std::uint32_t), 64);
  cq_db_ = dpu.alloc(sizeof(std::uint32_t), 64);

  // +kPayloadCrcBytes: a full-size payload still has room for the CRC32C
  // trailer the integrity envelope appends inside the same data DMA.
  wbuf_cap_ = static_cast<std::uint32_t>(
      page_round(cfg_.max_write + kPayloadCrcBytes));
  rbuf_cap_ = static_cast<std::uint32_t>(
      page_round(cfg_.max_read + kPayloadCrcBytes));
  // Slot: [write buf | read buf | write PRP list page | read PRP list page]
  slot_stride_ = std::uint64_t{wbuf_cap_} + rbuf_cap_ + 2 * kPageSize;
  slots_base_ = host.alloc(slot_stride_ * cfg_.depth, kPageSize);
}

std::uint64_t QueuePair::sqe_off(std::uint16_t slot) const {
  DPC_CHECK(slot < cfg_.depth);
  return sq_base_ + std::uint64_t{slot} * sizeof(Sqe);
}

std::uint64_t QueuePair::cqe_off(std::uint16_t slot) const {
  DPC_CHECK(slot < cfg_.depth);
  return cq_base_ + std::uint64_t{slot} * sizeof(Cqe);
}

std::uint64_t QueuePair::write_buf_off(std::uint16_t cid) const {
  DPC_CHECK(cid < cfg_.depth);
  return slots_base_ + std::uint64_t{cid} * slot_stride_;
}

std::uint64_t QueuePair::read_buf_off(std::uint16_t cid) const {
  return write_buf_off(cid) + wbuf_cap_;
}

std::uint64_t QueuePair::write_prp_list_off(std::uint16_t cid) const {
  return read_buf_off(cid) + rbuf_cap_;
}

std::uint64_t QueuePair::read_prp_list_off(std::uint16_t cid) const {
  return write_prp_list_off(cid) + kPageSize;
}

std::uint32_t QueuePair::pages_for(std::uint32_t len) {
  return (len + kPageSize - 1) / kPageSize;
}

}  // namespace dpc::nvme
