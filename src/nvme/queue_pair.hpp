// NVMe queue-pair layout shared by the host (NVME-INI) and DPU (NVME-TGT)
// drivers.
//
// Following the real protocol: the SQ and CQ rings live in *host* memory;
// the DPU fetches SQEs and posts CQEs by DMA. Doorbells are registers in
// DPU BAR space (the DPU MemoryRegion) written by the host via MMIO.
//
// Each command slot (one per cid, `depth` of them) owns:
//   * a write buffer  (host → DPU payload: file header and/or data),
//   * a read buffer   (DPU → host payload),
//   * one PRP list page per direction. The INI always materializes the PRP
//     list so the TGT's buffer-locate step is exactly one DMA — this is the
//     ② "locate the data buffer indicated by the PRP field" operation in
//     the paper's Fig. 4 four-DMA walk.
#pragma once

#include <cstdint>

#include "nvme/spec.hpp"
#include "pcie/memory.hpp"

namespace dpc::nvme {

struct QpConfig {
  std::uint16_t qid = 0;
  std::uint16_t depth = 64;
  /// Max payload bytes per direction per command.
  std::uint32_t max_write = 64 * 1024;
  std::uint32_t max_read = 64 * 1024;
};

/// Pure layout: computed once at "admin" time, then shared read-only by both
/// drivers. All offsets are region-local addresses.
class QueuePair {
 public:
  QueuePair(const QpConfig& cfg, pcie::RegionAllocator& host,
            pcie::RegionAllocator& dpu);

  const QpConfig& config() const { return cfg_; }
  std::uint16_t depth() const { return cfg_.depth; }
  std::uint16_t qid() const { return cfg_.qid; }

  // Ring entries (host region).
  std::uint64_t sqe_off(std::uint16_t slot) const;
  std::uint64_t cqe_off(std::uint16_t slot) const;

  // Doorbell registers (DPU region).
  std::uint64_t sq_tail_db_off() const { return sq_db_; }
  std::uint64_t cq_head_db_off() const { return cq_db_; }

  // Per-cid command-slot buffers (host region).
  std::uint64_t write_buf_off(std::uint16_t cid) const;
  std::uint64_t read_buf_off(std::uint16_t cid) const;
  std::uint64_t write_prp_list_off(std::uint16_t cid) const;
  std::uint64_t read_prp_list_off(std::uint16_t cid) const;

  /// Number of 4 KB pages covering `len` bytes starting at a page-aligned
  /// buffer.
  static std::uint32_t pages_for(std::uint32_t len);

 private:
  QpConfig cfg_;
  std::uint64_t sq_base_ = 0;
  std::uint64_t cq_base_ = 0;
  std::uint64_t sq_db_ = 0;
  std::uint64_t cq_db_ = 0;
  std::uint64_t slots_base_ = 0;
  std::uint64_t slot_stride_ = 0;
  std::uint32_t wbuf_cap_ = 0;  // page-rounded write buffer capacity
  std::uint32_t rbuf_cap_ = 0;
};

}  // namespace dpc::nvme
