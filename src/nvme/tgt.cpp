#include "nvme/tgt.hpp"

#include <cstring>

#include "ec/crc32c.hpp"

namespace dpc::nvme {

namespace {
/// Flips one deterministically chosen bit inside `buf` (entropy comes from
/// the fault injector's firing draw, so the damaged bit is seed-stable).
void flip_bit(std::span<std::byte> buf, std::uint64_t entropy) {
  if (buf.empty()) return;
  const std::uint64_t bit = entropy % (buf.size() * 8);
  buf[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
}
}  // namespace

/// Modelled DPU compute to reject a command at admission (no DMA beyond the
/// batched SQE fetch, no handler) — advances the virtual clock so a pure
/// throttle storm still refills token buckets.
constexpr sim::Nanos kThrottleCost{500};

TgtDriver::TgtDriver(pcie::DmaEngine& dma, const QueuePair& qp,
                     CommandHandler handler, obs::QueueTraces* traces,
                     fault::FaultInjector* fault, dpu::QosManager* qos)
    : dma_(&dma),
      qp_(&qp),
      handler_(std::move(handler)),
      traces_(traces),
      fault_(fault),
      qos_(qos),
      wscratch_(qp.config().max_write + kPayloadCrcBytes),
      rscratch_(qp.config().max_read + kPayloadCrcBytes),
      // fair_sched off: the scheduler runs FIFO (no DRR, no shedding)
      // while qos_ keeps admission + wait accounting live.
      sched_(qos != nullptr && qos->config().fair_sched ? qos : nullptr) {
  DPC_CHECK(handler_ != nullptr);
  if (traces_ != nullptr) {
    auto& reg = traces_->registry();
    cmds_ = &reg.counter("nvme.tgt/cmds");
    cqe_posts_ = &reg.counter("nvme.tgt/cqe_posts");
    rejects_ = &reg.counter("nvme.tgt/rejects");
    dropped_cqes_ = &reg.counter("nvme.tgt/dropped_cqes");
    error_cqes_ = &reg.counter("nvme.tgt/error_cqes");
    integrity_errors_ = &reg.counter("nvme.tgt/integrity_errors");
    sqe_fetch_bursts_ = &reg.counter("nvme.tgt/sqe_fetch_bursts");
    cqe_post_bursts_ = &reg.counter("nvme.tgt/cqe_post_bursts");
  }
}

bool TgtDriver::has_work() const {
  if (!sched_.empty() || !throttled_.empty()) return true;
  const std::uint32_t tail =
      dma_->dpu().atomic_u32(qp_->sq_tail_db_off()).load(
          std::memory_order_acquire);
  return tail != sq_head_;
}

void TgtDriver::reset() {
  sq_head_ = 0;
  cq_tail_ = 0;
  cq_phase_ = true;
  // Staged commands die with the controller — return their admission
  // accounting without scoring sheds against their tenants.
  std::vector<dpu::StagedCmd> dropped;
  sched_.drain(dropped);
  if (qos_ != nullptr)
    for (const dpu::StagedCmd& cmd : dropped)
      qos_->on_reset_drop(cmd.tenant, cmd.charge);
  throttled_.clear();
  vt_now_ = sim::Nanos{};
}

TgtDriver::ProcessStats TgtDriver::process_available(int max) {
  ProcessStats total;
  auto& dpu = dma_->dpu();
  const std::uint16_t depth = qp_->depth();
  while (total.processed < max) {
    // A crashed DPU executes nothing until the restart path clears the
    // latch — commands sit in the SQ and the host times out on them.
    if (fault_ != nullptr && fault_->crashed()) break;
    bool progressed = false;

    // ---- INGEST: stage the doorbell-delimited backlog --------------------
    // ① Each contiguous run is fetched with ONE descriptor DMA (a wrapped
    // run drains as two bursts, one per ring edge). Admission happens here,
    // at ingest, so a rejected command never occupies scheduler state.
    const std::uint32_t sq_tail =
        dpu.atomic_u32(qp_->sq_tail_db_off()).load(std::memory_order_acquire);
    int pending = static_cast<int>((sq_tail + depth - sq_head_) % depth);
    while (pending > 0) {
      const int run =
          std::min(pending, static_cast<int>(depth) - sq_head_);
      sqe_batch_.resize(static_cast<std::size_t>(run));
      total.cost += dma_->read_host(
          qp_->sqe_off(sq_head_),
          std::as_writable_bytes(
              std::span{sqe_batch_.data(), sqe_batch_.size()}),
          pcie::DmaClass::kDescriptor);
      if (sqe_fetch_bursts_ != nullptr) sqe_fetch_bursts_->add();
      for (int i = 0; i < run; ++i) ingest_one(sqe_batch_[i]);
      sq_head_ = static_cast<std::uint16_t>((sq_head_ + run) % depth);
      pending -= run;
      progressed = true;
    }

    // ---- DISPATCH: drain throttle completions, shed, execute -------------
    int posted = 0;
    while (total.processed < max) {
      // The DPU can die mid-batch (crash point / handler crash): staged
      // commands are abandoned where they sit, exactly as if the controller
      // lost power with them in its on-chip fetch buffer (reset() drops
      // them, like the SQ rewind drops unfetched ones).
      if (fault_ != nullptr && fault_->crashed()) break;
      // Don't overrun CQ slots the host hasn't consumed yet.
      const std::uint32_t cq_head = dpu.atomic_u32(qp_->cq_head_db_off())
                                        .load(std::memory_order_acquire);
      const int cq_free =
          static_cast<int>((cq_head + depth - cq_tail_ - 1) % depth);
      if (cq_free == 0) break;  // CQ full

      // Throttle completions first: they are cheap and unblock the host's
      // retry timers.
      if (!throttled_.empty()) {
        const ThrottleCqe tc = throttled_.front();
        throttled_.pop_front();
        post_cqe(tc.cid, Status::kThrottled, tc.retry_after_ns,
                 /*dw1=*/static_cast<std::uint32_t>(kThrottleCost.ns),
                 posted);
        vt_now_.ns += kThrottleCost.ns;
        if (qos_ != nullptr) qos_->advance(kThrottleCost);
        ++total.processed;
        progressed = true;
        continue;
      }

      // Graceful degradation: over the high-water mark, commands of
      // best-effort/background tenants that have waited past the deadline
      // are shed with a retryable throttle completion instead of consuming
      // device time ahead of guaranteed work.
      if (qos_ != nullptr && qos_->overloaded()) {
        if (auto stale = sched_.shed_stale(vt_now_,
                                           qos_->config().max_queue_delay)) {
          qos_->on_shed(stale->tenant, stale->charge);
          const auto hint = static_cast<std::uint32_t>(std::min<std::int64_t>(
              qos_->config().min_retry_after.ns, UINT32_MAX));
          post_cqe(cid_of(stale->sqe), Status::kThrottled, hint,
                   /*dw1=*/static_cast<std::uint32_t>(kThrottleCost.ns),
                   posted);
          vt_now_.ns += kThrottleCost.ns;
          qos_->advance(kThrottleCost);
          ++total.processed;
          progressed = true;
          continue;
        }
      }

      auto staged = sched_.pop();
      if (!staged) break;
      const ProcessStats one = execute_one(*staged, posted);
      total.processed += one.processed;
      total.cost += one.cost;
      progressed = true;
    }
    // ④ (wire accounting) the pass's CQE posts ride back as ONE coalesced
    // descriptor transaction — the CQ twin of the batched fetch above.
    // Each CQE's phase dword is still release-stored individually in
    // post_cqe; only the modelled PCIe cost batches.
    if (posted > 0) {
      total.cost += dma_->note_transaction(
          pcie::DmaClass::kDescriptor,
          static_cast<std::size_t>(posted) * sizeof(Cqe));
      if (cqe_post_bursts_ != nullptr) cqe_post_bursts_->add();
    }

    if (!progressed) break;
  }
  return total;
}

void TgtDriver::ingest_one(const Sqe& sqe) {
  // ① happened in process_available (batched fetch).
  if (traces_ != nullptr) traces_->stamp(cid_of(sqe), obs::Stage::kTgtFetch);
  if (cmds_ != nullptr) cmds_->add();

  dpu::StagedCmd staged;
  staged.sqe = sqe;
  staged.ingest_vt = vt_now_;
  if (is_nvme_fs(sqe)) {
    staged.tenant = tenant_of(sqe);
    staged.charge =
        dpu::qos_charge(sqe.write_len & kMaxWriteLen, sqe.read_len);
  } else {
    // Invalid opcodes still flow through admission (charge: one page) so
    // staging accounting stays symmetric; they reject at execute.
    staged.charge = kPageSize;
  }
  if (qos_ != nullptr) {
    const dpu::QosManager::Admit adm = qos_->admit(staged.tenant,
                                                   staged.charge);
    if (!adm.ok) {
      throttled_.push_back(
          {cid_of(sqe), static_cast<std::uint32_t>(std::min<std::int64_t>(
                            adm.retry_after.ns, UINT32_MAX))});
      return;
    }
  }
  sched_.push(std::move(staged));
}

TgtDriver::ProcessStats TgtDriver::execute_one(const dpu::StagedCmd& staged,
                                               int& cqes_posted) {
  ProcessStats st;
  const Sqe& sqe = staged.sqe;
  // Modelled staging wait: virtual time that passed while commands ahead
  // of this one dispatched. Live whenever a QosManager is attached (DRR
  // and fair_sched=false FIFO alike); identically 0 with QoS disabled,
  // keeping dw1's pre-QoS meaning.
  const sim::Nanos wait{vt_now_.ns - staged.ingest_vt.ns};
  // The command leaves staging accounting now, on every exit path below
  // (including drop/crash — the device consumed it either way).
  if (qos_ != nullptr) qos_->on_dispatch(staged.tenant, staged.charge);

  // Injection: lose the command after the SQE fetch. The handler never
  // runs and no CQE is ever posted for this cid, so the host's only way
  // out is a timeout + abort — exactly the failure a dead link produces.
  // Because the handler is skipped, a host resubmit cannot double-apply.
  if (fault_ != nullptr && fault_->should_fail(kFaultTgtDropCqe)) {
    if (dropped_cqes_ != nullptr) dropped_cqes_->add();
    st.processed = 1;
    return st;
  }

  HandlerResult hres;
  if (!is_nvme_fs(sqe)) {
    hres.status = Status::kInvalidOpcode;
    if (rejects_ != nullptr) rejects_->add();
  } else {
    const NvmeFsCmd cmd = decode_nvme_fs(sqe);
    if (cmd.write_psdt == Psdt::kSgl || cmd.read_psdt == Psdt::kSgl) {
      // This reproduction implements the PRP default only (§3.2).
      hres.status = Status::kInvalidField;
      if (rejects_ != nullptr) rejects_->add();
    } else if (fault_ != nullptr && fault_->should_fail(kFaultTgtErrorCqe)) {
      // Injection: transient transfer fault before any payload moves or the
      // handler runs — completes with a retryable error, nothing applied.
      hres.status = Status::kDataTransferError;
      if (error_cqes_ != nullptr) error_cqes_->add();
    } else {
      std::span<const std::byte> wpayload{};
      bool envelope_ok = true;
      if (cmd.write_len > 0) {
        // ② Fetch the write-side PRP list to locate the buffer. The pulled
        //    extent is payload + CRC32C trailer (same data DMA).
        const std::uint32_t wire_len = cmd.write_len + kPayloadCrcBytes;
        const std::uint32_t pages = QueuePair::pages_for(wire_len);
        std::vector<std::uint64_t> prps(pages);
        st.cost += dma_->read_host(
            cmd.prp_write2,
            std::as_writable_bytes(std::span{prps.data(), pages}),
            pcie::DmaClass::kDescriptor);
        DPC_CHECK_MSG(prps[0] == cmd.prp_write1,
                      "PRP list disagrees with PRP1");
        // ③ Pull the payload into DPU scratch with one data DMA (the
        //    engine models the multi-page burst as a single transaction,
        //    as the paper's Fig. 4 does).
        st.cost += dma_->read_host(
            cmd.prp_write1,
            std::span{wscratch_.data(), wire_len},
            pcie::DmaClass::kData);
        // Injection: a bit flips somewhere in the host→DPU transfer.
        std::uint64_t entropy = 0;
        if (fault_ != nullptr &&
            fault_->should_fail(kFaultTgtCorruptWrite, &entropy)) {
          flip_bit(std::span{wscratch_.data(), wire_len}, entropy);
        }
        // Verify the trailer BEFORE the handler sees a byte: a damaged
        // payload must never be applied to the store. Not retryable — the
        // host cannot tell in-flight damage from a rotted source buffer, so
        // recovery is the application's (or scrubber's) job.
        std::uint32_t want = 0;
        std::memcpy(&want, wscratch_.data() + cmd.write_len,
                    kPayloadCrcBytes);
        const std::uint32_t got =
            ec::crc32c(std::span{wscratch_.data(), cmd.write_len});
        if (got != want) {
          envelope_ok = false;
          hres = HandlerResult{};
          hres.status = Status::kDataIntegrityError;
          if (integrity_errors_ != nullptr) integrity_errors_->add();
        }
        wpayload = std::span{wscratch_.data(), cmd.write_len};
      }

      if (envelope_ok) {
        std::span<std::byte> rpayload{rscratch_.data(), cmd.read_len};
        if (traces_ != nullptr)
          traces_->stamp(cmd.cid, obs::Stage::kDispatch);
        try {
          hres = handler_(cmd, wpayload, rpayload);
        } catch (const fault::CrashException&) {
          // The DPU died inside the backend (a kvfs/cache crash point).
          // Whatever the handler durably applied before the crash point
          // stays applied; no CQE is ever posted, so the host sees only a
          // lost completion. Recovery (journal replay + fsck) squares the
          // keyspace when the DPU restarts.
          st.processed = 1;
          return st;
        }
        if (traces_ != nullptr)
          traces_->stamp(cmd.cid, obs::Stage::kBackendDone);
      }

      if (envelope_ok && cmd.read_len > 0 && hres.read_bytes > 0) {
        DPC_CHECK(hres.read_bytes <= cmd.read_len);
        // Stamp the read-payload trailer right behind the produced bytes;
        // it rides back in the same data DMA and the host verifies it in
        // DpcSystem::call before trusting the payload.
        const std::uint32_t crc =
            ec::crc32c(std::span{rscratch_.data(), hres.read_bytes});
        std::memcpy(rscratch_.data() + hres.read_bytes, &crc,
                    kPayloadCrcBytes);
        const std::uint32_t wire_len = hres.read_bytes + kPayloadCrcBytes;
        // Injection: a bit flips somewhere in the DPU→host transfer.
        std::uint64_t entropy = 0;
        if (fault_ != nullptr &&
            fault_->should_fail(kFaultTgtCorruptRead, &entropy)) {
          flip_bit(std::span{rscratch_.data(), wire_len}, entropy);
        }
        // ② (read direction) locate the read buffer…
        const std::uint32_t pages =
            QueuePair::pages_for(cmd.read_len + kPayloadCrcBytes);
        std::vector<std::uint64_t> prps(pages);
        st.cost += dma_->read_host(
            cmd.prp_read2,
            std::as_writable_bytes(std::span{prps.data(), pages}),
            pcie::DmaClass::kDescriptor);
        DPC_CHECK_MSG(prps[0] == cmd.prp_read1,
                      "PRP list disagrees with PRP1");
        // ③ …and push the produced bytes back with one data DMA.
        st.cost += dma_->write_host(
            cmd.prp_read1,
            std::span{rscratch_.data(), wire_len},
            pcie::DmaClass::kData);
      }
    }
  }

  // Crash point: the DPU dies after the handler fully applied the
  // operation (and any read payload went back over PCIe) but before the
  // CQE is posted. The op is durable yet unacked — the strictest
  // "present but never acknowledged" case the chaos harness exercises.
  try {
    fault::crash_point(fault_, kFaultTgtCrashBeforeCqe);
  } catch (const fault::CrashException&) {
    st.processed = 1;
    return st;
  }

  // ④ Post the CQE. The spare dword reports device-side latency — service
  // (transport DMAs + backend) plus, under QoS, the modelled staging wait —
  // saturated to u32 nanoseconds.
  const std::int64_t service_ns = st.cost.ns + hres.backend_cost.ns;
  if (qos_ != nullptr) {
    vt_now_.ns += service_ns;
    qos_->advance(sim::Nanos{service_ns});
  }
  const auto dw1 = static_cast<std::uint32_t>(
      std::min<std::int64_t>(service_ns + wait.ns, UINT32_MAX));
  post_cqe(cid_of(sqe), hres.status, hres.result, dw1, cqes_posted);

  st.processed = 1;
  return st;
}

void TgtDriver::post_cqe(std::uint16_t cid, Status st, std::uint32_t result,
                         std::uint32_t dw1, int& cqes_posted) {
  // The final dword carries the phase tag the INI polls on, so it is
  // stored atomically (release) after the rest of the entry; the wire cost
  // of the drain batch's CQEs is settled as one coalesced transaction by
  // process_available.
  Cqe cqe = make_cqe(cid, st, cq_phase_, result, sq_head_, qp_->qid());
  cqe.dw1 = dw1;
  const std::uint64_t cqe_off = qp_->cqe_off(cq_tail_);
  auto& host = dma_->host();
  host.write(cqe_off, std::as_bytes(std::span{&cqe, 1}).first(12));
  const std::uint32_t last_dword =
      static_cast<std::uint32_t>(cqe.cid) |
      (static_cast<std::uint32_t>(cqe.status) << 16);
  // Stamp CQE-post before the release store: the INI reads the slot only
  // after acquiring the phase tag, so the stamp is ordered-visible at reap.
  if (traces_ != nullptr) traces_->stamp(cqe.cid, obs::Stage::kCqePost);
  host.atomic_u32(cqe_off + 12).store(last_dword, std::memory_order_release);
  if (cqe_posts_ != nullptr) cqe_posts_->add();
  ++cqes_posted;  // wire cost settles once per drain batch (caller)
  cq_tail_ = static_cast<std::uint16_t>((cq_tail_ + 1) % qp_->depth());
  if (cq_tail_ == 0) cq_phase_ = !cq_phase_;
}

}  // namespace dpc::nvme
