#include "nvme/tgt.hpp"

#include <cstring>

#include "ec/crc32c.hpp"

namespace dpc::nvme {

namespace {
/// Flips one deterministically chosen bit inside `buf` (entropy comes from
/// the fault injector's firing draw, so the damaged bit is seed-stable).
void flip_bit(std::span<std::byte> buf, std::uint64_t entropy) {
  if (buf.empty()) return;
  const std::uint64_t bit = entropy % (buf.size() * 8);
  buf[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
}
}  // namespace

TgtDriver::TgtDriver(pcie::DmaEngine& dma, const QueuePair& qp,
                     CommandHandler handler, obs::QueueTraces* traces,
                     fault::FaultInjector* fault)
    : dma_(&dma),
      qp_(&qp),
      handler_(std::move(handler)),
      traces_(traces),
      fault_(fault),
      wscratch_(qp.config().max_write + kPayloadCrcBytes),
      rscratch_(qp.config().max_read + kPayloadCrcBytes) {
  DPC_CHECK(handler_ != nullptr);
  if (traces_ != nullptr) {
    auto& reg = traces_->registry();
    cmds_ = &reg.counter("nvme.tgt/cmds");
    cqe_posts_ = &reg.counter("nvme.tgt/cqe_posts");
    rejects_ = &reg.counter("nvme.tgt/rejects");
    dropped_cqes_ = &reg.counter("nvme.tgt/dropped_cqes");
    error_cqes_ = &reg.counter("nvme.tgt/error_cqes");
    integrity_errors_ = &reg.counter("nvme.tgt/integrity_errors");
    sqe_fetch_bursts_ = &reg.counter("nvme.tgt/sqe_fetch_bursts");
    cqe_post_bursts_ = &reg.counter("nvme.tgt/cqe_post_bursts");
  }
}

bool TgtDriver::has_work() const {
  const std::uint32_t tail =
      dma_->dpu().atomic_u32(qp_->sq_tail_db_off()).load(
          std::memory_order_acquire);
  return tail != sq_head_;
}

void TgtDriver::reset() {
  sq_head_ = 0;
  cq_tail_ = 0;
  cq_phase_ = true;
}

TgtDriver::ProcessStats TgtDriver::process_available(int max) {
  ProcessStats total;
  auto& dpu = dma_->dpu();
  const std::uint16_t depth = qp_->depth();
  while (total.processed < max) {
    // A crashed DPU executes nothing until the restart path clears the
    // latch — commands sit in the SQ and the host times out on them.
    if (fault_ != nullptr && fault_->crashed()) break;
    // Don't overrun CQ slots the host hasn't consumed yet.
    const std::uint32_t cq_head =
        dpu.atomic_u32(qp_->cq_head_db_off()).load(std::memory_order_acquire);
    const int cq_free =
        static_cast<int>((cq_head + depth - cq_tail_ - 1) % depth);
    if (cq_free == 0) break;  // CQ full
    const std::uint32_t sq_tail =
        dpu.atomic_u32(qp_->sq_tail_db_off()).load(std::memory_order_acquire);
    const int pending = static_cast<int>((sq_tail + depth - sq_head_) % depth);
    if (pending == 0) break;  // SQ drained

    // ① Fetch the whole doorbell-delimited run with ONE descriptor DMA —
    // capped by CQ space, the caller's budget, and the ring edge (a
    // wrapped run drains as two contiguous bursts, one per loop pass).
    const int run = std::min(std::min(pending, cq_free),
                             std::min(max - total.processed,
                                      static_cast<int>(depth) - sq_head_));
    sqe_batch_.resize(static_cast<std::size_t>(run));
    total.cost += dma_->read_host(
        qp_->sqe_off(sq_head_),
        std::as_writable_bytes(
            std::span{sqe_batch_.data(), sqe_batch_.size()}),
        pcie::DmaClass::kDescriptor);
    if (sqe_fetch_bursts_ != nullptr) sqe_fetch_bursts_->add();

    int posted = 0;
    for (int i = 0; i < run; ++i) {
      // The DPU can die mid-batch (crash point / handler crash): already-
      // fetched but unexecuted SQEs are abandoned, exactly as if the
      // controller lost power with them in its on-chip fetch buffer.
      if (fault_ != nullptr && fault_->crashed()) break;
      const ProcessStats one = process_one(sqe_batch_[i], posted);
      total.processed += one.processed;
      total.cost += one.cost;
    }
    // ④ (wire accounting) the run's CQE posts ride back as ONE coalesced
    // descriptor transaction — the CQ twin of the batched fetch above.
    // Each CQE's phase dword is still release-stored individually in
    // process_one; only the modelled PCIe cost batches.
    if (posted > 0) {
      total.cost += dma_->note_transaction(
          pcie::DmaClass::kDescriptor,
          static_cast<std::size_t>(posted) * sizeof(Cqe));
      if (cqe_post_bursts_ != nullptr) cqe_post_bursts_->add();
    }
  }
  return total;
}

TgtDriver::ProcessStats TgtDriver::process_one(const Sqe& sqe,
                                               int& cqes_posted) {
  ProcessStats st;

  // ① happened in process_available (batched fetch); consume the slot.
  sq_head_ = static_cast<std::uint16_t>((sq_head_ + 1) % qp_->depth());
  if (traces_ != nullptr) traces_->stamp(cid_of(sqe), obs::Stage::kTgtFetch);
  if (cmds_ != nullptr) cmds_->add();

  // Injection: lose the command after the SQE fetch. The handler never
  // runs and no CQE is ever posted for this cid, so the host's only way
  // out is a timeout + abort — exactly the failure a dead link produces.
  // Because the handler is skipped, a host resubmit cannot double-apply.
  if (fault_ != nullptr && fault_->should_fail(kFaultTgtDropCqe)) {
    if (dropped_cqes_ != nullptr) dropped_cqes_->add();
    st.processed = 1;
    return st;
  }

  HandlerResult hres;
  if (!is_nvme_fs(sqe)) {
    hres.status = Status::kInvalidOpcode;
    if (rejects_ != nullptr) rejects_->add();
  } else {
    const NvmeFsCmd cmd = decode_nvme_fs(sqe);
    if (cmd.write_psdt == Psdt::kSgl || cmd.read_psdt == Psdt::kSgl) {
      // This reproduction implements the PRP default only (§3.2).
      hres.status = Status::kInvalidField;
      if (rejects_ != nullptr) rejects_->add();
    } else if (fault_ != nullptr && fault_->should_fail(kFaultTgtErrorCqe)) {
      // Injection: transient transfer fault before any payload moves or the
      // handler runs — completes with a retryable error, nothing applied.
      hres.status = Status::kDataTransferError;
      if (error_cqes_ != nullptr) error_cqes_->add();
    } else {
      std::span<const std::byte> wpayload{};
      bool envelope_ok = true;
      if (cmd.write_len > 0) {
        // ② Fetch the write-side PRP list to locate the buffer. The pulled
        //    extent is payload + CRC32C trailer (same data DMA).
        const std::uint32_t wire_len = cmd.write_len + kPayloadCrcBytes;
        const std::uint32_t pages = QueuePair::pages_for(wire_len);
        std::vector<std::uint64_t> prps(pages);
        st.cost += dma_->read_host(
            cmd.prp_write2,
            std::as_writable_bytes(std::span{prps.data(), pages}),
            pcie::DmaClass::kDescriptor);
        DPC_CHECK_MSG(prps[0] == cmd.prp_write1,
                      "PRP list disagrees with PRP1");
        // ③ Pull the payload into DPU scratch with one data DMA (the
        //    engine models the multi-page burst as a single transaction,
        //    as the paper's Fig. 4 does).
        st.cost += dma_->read_host(
            cmd.prp_write1,
            std::span{wscratch_.data(), wire_len},
            pcie::DmaClass::kData);
        // Injection: a bit flips somewhere in the host→DPU transfer.
        std::uint64_t entropy = 0;
        if (fault_ != nullptr &&
            fault_->should_fail(kFaultTgtCorruptWrite, &entropy)) {
          flip_bit(std::span{wscratch_.data(), wire_len}, entropy);
        }
        // Verify the trailer BEFORE the handler sees a byte: a damaged
        // payload must never be applied to the store. Not retryable — the
        // host cannot tell in-flight damage from a rotted source buffer, so
        // recovery is the application's (or scrubber's) job.
        std::uint32_t want = 0;
        std::memcpy(&want, wscratch_.data() + cmd.write_len,
                    kPayloadCrcBytes);
        const std::uint32_t got =
            ec::crc32c(std::span{wscratch_.data(), cmd.write_len});
        if (got != want) {
          envelope_ok = false;
          hres = HandlerResult{};
          hres.status = Status::kDataIntegrityError;
          if (integrity_errors_ != nullptr) integrity_errors_->add();
        }
        wpayload = std::span{wscratch_.data(), cmd.write_len};
      }

      if (envelope_ok) {
        std::span<std::byte> rpayload{rscratch_.data(), cmd.read_len};
        if (traces_ != nullptr)
          traces_->stamp(cmd.cid, obs::Stage::kDispatch);
        try {
          hres = handler_(cmd, wpayload, rpayload);
        } catch (const fault::CrashException&) {
          // The DPU died inside the backend (a kvfs/cache crash point).
          // Whatever the handler durably applied before the crash point
          // stays applied; no CQE is ever posted, so the host sees only a
          // lost completion. Recovery (journal replay + fsck) squares the
          // keyspace when the DPU restarts.
          st.processed = 1;
          return st;
        }
        if (traces_ != nullptr)
          traces_->stamp(cmd.cid, obs::Stage::kBackendDone);
      }

      if (envelope_ok && cmd.read_len > 0 && hres.read_bytes > 0) {
        DPC_CHECK(hres.read_bytes <= cmd.read_len);
        // Stamp the read-payload trailer right behind the produced bytes;
        // it rides back in the same data DMA and the host verifies it in
        // DpcSystem::call before trusting the payload.
        const std::uint32_t crc =
            ec::crc32c(std::span{rscratch_.data(), hres.read_bytes});
        std::memcpy(rscratch_.data() + hres.read_bytes, &crc,
                    kPayloadCrcBytes);
        const std::uint32_t wire_len = hres.read_bytes + kPayloadCrcBytes;
        // Injection: a bit flips somewhere in the DPU→host transfer.
        std::uint64_t entropy = 0;
        if (fault_ != nullptr &&
            fault_->should_fail(kFaultTgtCorruptRead, &entropy)) {
          flip_bit(std::span{rscratch_.data(), wire_len}, entropy);
        }
        // ② (read direction) locate the read buffer…
        const std::uint32_t pages =
            QueuePair::pages_for(cmd.read_len + kPayloadCrcBytes);
        std::vector<std::uint64_t> prps(pages);
        st.cost += dma_->read_host(
            cmd.prp_read2,
            std::as_writable_bytes(std::span{prps.data(), pages}),
            pcie::DmaClass::kDescriptor);
        DPC_CHECK_MSG(prps[0] == cmd.prp_read1,
                      "PRP list disagrees with PRP1");
        // ③ …and push the produced bytes back with one data DMA.
        st.cost += dma_->write_host(
            cmd.prp_read1,
            std::span{rscratch_.data(), wire_len},
            pcie::DmaClass::kData);
      }
    }
  }

  // Crash point: the DPU dies after the handler fully applied the
  // operation (and any read payload went back over PCIe) but before the
  // CQE is posted. The op is durable yet unacked — the strictest
  // "present but never acknowledged" case the chaos harness exercises.
  try {
    fault::crash_point(fault_, kFaultTgtCrashBeforeCqe);
  } catch (const fault::CrashException&) {
    st.processed = 1;
    return st;
  }

  // ④ Post the CQE at the CQ tail. The final dword carries the phase tag
  // that the INI polls on, so it is stored atomically (release) after the
  // rest of the entry; the wire cost of the drain batch's CQEs is settled
  // as one coalesced transaction by process_available. The spare dword
  // reports the device-side service time (transport DMAs + backend),
  // saturated to u32 nanoseconds.
  Cqe cqe = make_cqe(cid_of(sqe), hres.status, cq_phase_, hres.result,
                     sq_head_, qp_->qid());
  const std::int64_t service_ns = st.cost.ns + hres.backend_cost.ns;
  cqe.dw1 = static_cast<std::uint32_t>(
      std::min<std::int64_t>(service_ns, UINT32_MAX));
  const std::uint64_t cqe_off = qp_->cqe_off(cq_tail_);
  auto& host = dma_->host();
  host.write(cqe_off, std::as_bytes(std::span{&cqe, 1}).first(12));
  const std::uint32_t last_dword =
      static_cast<std::uint32_t>(cqe.cid) |
      (static_cast<std::uint32_t>(cqe.status) << 16);
  // Stamp CQE-post before the release store: the INI reads the slot only
  // after acquiring the phase tag, so the stamp is ordered-visible at reap.
  if (traces_ != nullptr) traces_->stamp(cqe.cid, obs::Stage::kCqePost);
  host.atomic_u32(cqe_off + 12).store(last_dword, std::memory_order_release);
  if (cqe_posts_ != nullptr) cqe_posts_->add();
  ++cqes_posted;  // wire cost settles once per drain batch (caller)
  cq_tail_ = static_cast<std::uint16_t>((cq_tail_ + 1) % qp_->depth());
  if (cq_tail_ == 0) cq_phase_ = !cq_phase_;

  st.processed = 1;
  return st;
}

}  // namespace dpc::nvme
