#include "nvme/spec.hpp"

namespace dpc::nvme {

namespace {
constexpr std::uint32_t kReqTypeBit = 1u << 10;
constexpr std::uint32_t kInlineOpShift = 11;
constexpr std::uint32_t kInlineOpMask = 0x7u << kInlineOpShift;
constexpr std::uint32_t kPsdtWriteBit = 1u << 14;
constexpr std::uint32_t kPsdtReadBit = 1u << 15;
constexpr std::uint32_t kTenantShift = 24;  // DW10[31:24]

constexpr std::uint64_t join64(std::uint32_t lo, std::uint32_t hi) {
  return static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
}
}  // namespace

Sqe encode_nvme_fs(const NvmeFsCmd& cmd) {
  Sqe sqe;
  sqe.dw0 = kNvmeFsOpcode;
  if (cmd.target == DispatchTarget::kDistributed) sqe.dw0 |= kReqTypeBit;
  sqe.dw0 |= (static_cast<std::uint32_t>(cmd.inline_op) << kInlineOpShift) &
             kInlineOpMask;
  if (cmd.write_psdt == Psdt::kSgl) sqe.dw0 |= kPsdtWriteBit;
  if (cmd.read_psdt == Psdt::kSgl) sqe.dw0 |= kPsdtReadBit;
  sqe.dw0 |= static_cast<std::uint32_t>(cmd.cid) << 16;
  sqe.nsid = static_cast<std::uint32_t>(cmd.inode);
  sqe.dw12 = static_cast<std::uint32_t>(cmd.inode >> 32);
  sqe.dw14 = static_cast<std::uint32_t>(cmd.offset);
  sqe.dw15 = static_cast<std::uint32_t>(cmd.offset >> 32);
  sqe.prp_write1 = cmd.prp_write1;
  sqe.prp_write2 = cmd.prp_write2;
  sqe.prp_read1 = cmd.prp_read1;
  sqe.prp_read2 = cmd.prp_read2;
  DPC_CHECK_MSG(cmd.write_len <= kMaxWriteLen,
                "write_len " << cmd.write_len
                             << " exceeds the 24-bit DW10 field");
  sqe.write_len =
      cmd.write_len | (static_cast<std::uint32_t>(cmd.tenant) << kTenantShift);
  sqe.read_len = cmd.read_len;
  sqe.dw13 = static_cast<std::uint32_t>(cmd.write_hdr_len) |
             (static_cast<std::uint32_t>(cmd.read_hdr_len) << 16);
  return sqe;
}

NvmeFsCmd decode_nvme_fs(const Sqe& sqe) {
  DPC_CHECK_MSG(is_nvme_fs(sqe), "not an nvme-fs SQE (opcode "
                                     << +opcode_of(sqe) << ")");
  NvmeFsCmd cmd;
  cmd.target = (sqe.dw0 & kReqTypeBit) ? DispatchTarget::kDistributed
                                       : DispatchTarget::kStandalone;
  cmd.inline_op =
      static_cast<InlineOp>((sqe.dw0 & kInlineOpMask) >> kInlineOpShift);
  cmd.write_psdt = (sqe.dw0 & kPsdtWriteBit) ? Psdt::kSgl : Psdt::kPrp;
  cmd.read_psdt = (sqe.dw0 & kPsdtReadBit) ? Psdt::kSgl : Psdt::kPrp;
  cmd.cid = static_cast<std::uint16_t>(sqe.dw0 >> 16);
  cmd.inode = join64(sqe.nsid, sqe.dw12);
  cmd.offset = join64(sqe.dw14, sqe.dw15);
  cmd.prp_write1 = sqe.prp_write1;
  cmd.prp_write2 = sqe.prp_write2;
  cmd.prp_read1 = sqe.prp_read1;
  cmd.prp_read2 = sqe.prp_read2;
  cmd.write_len = sqe.write_len & kMaxWriteLen;
  cmd.tenant = static_cast<TenantId>(sqe.write_len >> kTenantShift);
  cmd.read_len = sqe.read_len;
  cmd.write_hdr_len = static_cast<std::uint16_t>(sqe.dw13 & 0xFFFF);
  cmd.read_hdr_len = static_cast<std::uint16_t>(sqe.dw13 >> 16);
  return cmd;
}

bool is_nvme_fs(const Sqe& sqe) { return opcode_of(sqe) == kNvmeFsOpcode; }

std::uint8_t opcode_of(const Sqe& sqe) {
  return static_cast<std::uint8_t>(sqe.dw0 & 0xFF);
}

std::uint16_t cid_of(const Sqe& sqe) {
  return static_cast<std::uint16_t>(sqe.dw0 >> 16);
}

Cqe make_cqe(std::uint16_t cid, Status st, bool phase, std::uint32_t result,
             std::uint16_t sq_head, std::uint16_t sq_id) {
  Cqe cqe;
  cqe.result = result;
  cqe.sq_head = sq_head;
  cqe.sq_id = sq_id;
  cqe.cid = cid;
  cqe.status = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(st) << 1) | (phase ? 1u : 0u));
  return cqe;
}

}  // namespace dpc::nvme
