#include "nvme/ini.hpp"

#include <thread>

#include "ec/crc32c.hpp"
#include "sim/schedhook.hpp"

namespace dpc::nvme {

IniDriver::IniDriver(pcie::DmaEngine& dma, const QueuePair& qp,
                     obs::QueueTraces* traces)
    : dma_(&dma), qp_(&qp), traces_(traces), done_(qp.depth()) {
  free_cids_.reserve(qp.depth());
  // NVMe convention: at most depth-1 entries may be in flight so that
  // head == tail unambiguously means "empty".
  for (std::uint16_t cid = 0; cid + 1 < qp.depth(); ++cid)
    free_cids_.push_back(cid);
  if (traces_ != nullptr) {
    auto& reg = traces_->registry();
    submits_ = &reg.counter("nvme.ini/submits");
    queue_full_waits_ = &reg.counter("nvme.ini/queue_full_waits");
    sq_doorbells_ = &reg.counter("nvme.ini/sq_doorbells");
    cq_doorbells_ = &reg.counter("nvme.ini/cq_doorbells");
    reaps_ = &reg.counter("nvme.ini/reaps");
    timeouts_ = &reg.counter("nvme.ini/timeouts");
    late_cqes_ = &reg.counter("nvme.ini/late_cqes");
    resets_ = &reg.counter("nvme.ini/resets");
  }
}

std::uint16_t IniDriver::alloc_cid_locked() {
  DPC_CHECK(!free_cids_.empty());
  const std::uint16_t cid = free_cids_.back();
  free_cids_.pop_back();
  return cid;
}

void IniDriver::build_prp(std::uint64_t buf_off, std::uint32_t len,
                          std::uint64_t list_off, std::uint64_t& prp1,
                          std::uint64_t& prp2) {
  // PRP1 = first page; PRP2 = address of the PRP list page enumerating all
  // pages (always materialized — see queue_pair.hpp).
  const std::uint32_t pages = QueuePair::pages_for(len);
  DPC_CHECK(pages >= 1 && pages <= kPageSize / sizeof(std::uint64_t));
  prp1 = buf_off;
  prp2 = list_off;
  auto& host = dma_->host();
  for (std::uint32_t p = 0; p < pages; ++p) {
    host.store<std::uint64_t>(list_off + p * sizeof(std::uint64_t),
                              buf_off + std::uint64_t{p} * kPageSize);
  }
}

std::uint16_t IniDriver::enqueue_locked(const Request& req,
                                        sim::Nanos& cost) {
  const std::uint32_t wlen = static_cast<std::uint32_t>(
      req.write_hdr.size() + req.write_data.size());
  const std::uint32_t rlen = req.read_hdr_cap + req.read_data_cap;
  DPC_CHECK(wlen <= qp_->config().max_write);
  DPC_CHECK(rlen <= qp_->config().max_read);
  DPC_CHECK(req.write_hdr.size() <= 0xFFFF);

  const std::uint16_t cid = alloc_cid_locked();
  if (traces_ != nullptr) traces_->stamp(cid, obs::Stage::kHostSubmit);
  if (submits_ != nullptr) submits_->add();

  NvmeFsCmd cmd;
  cmd.target = req.target;
  cmd.inline_op = req.inline_op;
  cmd.tenant = req.tenant;
  cmd.cid = cid;
  cmd.inode = req.inode;
  cmd.offset = req.offset;
  cmd.write_len = wlen;
  cmd.read_len = rlen;
  cmd.write_hdr_len = static_cast<std::uint16_t>(req.write_hdr.size());
  cmd.read_hdr_len = req.read_hdr_cap;

  auto& host = dma_->host();
  if (wlen > 0) {
    const std::uint64_t wbuf = qp_->write_buf_off(cid);
    if (!req.write_hdr.empty()) host.write(wbuf, req.write_hdr);
    if (!req.write_data.empty())
      host.write(wbuf + req.write_hdr.size(), req.write_data);
    // Integrity envelope: stamp a CRC32C trailer right after the payload.
    // It rides inside the same data DMA (the PRP list below covers it), so
    // the TGT can verify the bytes it pulled without extra transactions.
    const std::uint32_t crc =
        ec::crc32c(req.write_data, ec::crc32c(req.write_hdr));
    host.store<std::uint32_t>(wbuf + wlen, crc);
    build_prp(wbuf, wlen + kPayloadCrcBytes, qp_->write_prp_list_off(cid),
              cmd.prp_write1, cmd.prp_write2);
  }
  if (rlen > 0) {
    // +kPayloadCrcBytes: the TGT appends the read-payload trailer.
    build_prp(qp_->read_buf_off(cid), rlen + kPayloadCrcBytes,
              qp_->read_prp_list_off(cid), cmd.prp_read1, cmd.prp_read2);
  }

  // Produce the SQE at the SQ tail (host-local store, no PCIe traffic).
  // Doorbell policy belongs to the caller.
  host.store(qp_->sqe_off(sq_tail_), encode_nvme_fs(cmd));
  sq_tail_ = static_cast<std::uint16_t>((sq_tail_ + 1) % qp_->depth());
  (void)cost;
  return cid;
}

IniDriver::Submitted IniDriver::submit(const Request& req) {
  sim::Nanos cost{};
  sim::UniqueLock lock(mu_);
  if (free_cids_.empty()) {
    // Queue full: completed-but-unreleased cids belong to other threads.
    // Sleep on the cv until release() frees a slot — deterministic wakeup,
    // and no yield() spin that could starve pollers of the core.
    if (queue_full_waits_ != nullptr) queue_full_waits_->add();
    sim::schedhook::coop_cv_wait(free_cv_, lock,
                                 [this] { return !free_cids_.empty(); },
                                 "nvme.ini.cv");
  }
  // DPC_CHECK_MUTATE doorbell-publish: ring the doorbell *before* the SQE
  // store — the TGT may then fetch a stale descriptor from the slot. The
  // checker arms this and must observe the stale fetch.
  const bool mutate_db = sim::schedhook::mutate("doorbell-publish");
  if (mutate_db) {
    cost += dma_->doorbell(  // dpc-lint: ok(doorbell-fence) armed mutation: rings before the publish on purpose
        qp_->sq_tail_db_off(),
        static_cast<std::uint16_t>((sq_tail_ + 1) % qp_->depth()));
    if (sq_doorbells_ != nullptr) sq_doorbells_->add();
    sim::schedhook::point("nvme.sqe_store");
  }
  const std::uint16_t cid = enqueue_locked(req, cost);
  if (!mutate_db) {
    // Ring the doorbell (one posted MMIO write). The SQE publish (release
    // store of the encoded descriptor) happened inside enqueue_locked.
    // dpc-lint: ok(doorbell-fence) SQE release-stored in enqueue_locked
    cost += dma_->doorbell(qp_->sq_tail_db_off(), sq_tail_);
    if (sq_doorbells_ != nullptr) sq_doorbells_->add();
  }
  return {cid, cost};
}

IniDriver::BatchSubmitted IniDriver::submit_batch(
    std::span<const Request> reqs) {
  BatchSubmitted out;
  out.cids.reserve(reqs.size());
  sim::UniqueLock lock(mu_);
  std::size_t unpublished = 0;  // SQEs produced since the last doorbell
  for (const Request& req : reqs) {
    if (free_cids_.empty()) {
      // Publish what is enqueued so the TGT can drain while we block —
      // otherwise a batch wider than the queue deadlocks against itself.
      if (unpublished > 0) {
        // dpc-lint: ok(doorbell-fence) SQEs release-stored in enqueue_locked
        out.cost += dma_->doorbell(qp_->sq_tail_db_off(), sq_tail_);
        if (sq_doorbells_ != nullptr) sq_doorbells_->add();
        unpublished = 0;
      }
      if (queue_full_waits_ != nullptr) queue_full_waits_->add();
      sim::schedhook::coop_cv_wait(free_cv_, lock,
                                   [this] { return !free_cids_.empty(); },
                                   "nvme.ini.cv");
    }
    out.cids.push_back(enqueue_locked(req, out.cost));
    ++unpublished;
  }
  if (unpublished > 0) {
    // One posted MMIO publishes the whole run of SQEs release-stored in
    // enqueue_locked above.
    // dpc-lint: ok(doorbell-fence) SQEs release-stored in enqueue_locked
    out.cost += dma_->doorbell(qp_->sq_tail_db_off(), sq_tail_);
    if (sq_doorbells_ != nullptr) sq_doorbells_->add();
  }
  return out;
}

std::optional<Completion> IniDriver::drain_locked() {
  auto& host = dma_->host();
  std::optional<Completion> first;
  int consumed = 0;
  for (;;) {
    const std::uint64_t cqe_off = qp_->cqe_off(cq_head_);
    // The phase tag lives in the CQE's final dword, which the TGT stores
    // with release ordering; acquire here makes the rest of the entry
    // visible.
    const std::uint32_t last_dword =
        host.atomic_u32(cqe_off + 12).load(std::memory_order_acquire);
    const auto status = static_cast<std::uint16_t>(last_dword >> 16);
    if (((status & 1u) != 0) != cq_phase_) break;  // not ready
    Cqe cqe = host.load<Cqe>(cqe_off);
    cqe.cid = static_cast<std::uint16_t>(last_dword & 0xFFFF);
    cqe.status = status;
    cq_head_ = static_cast<std::uint16_t>((cq_head_ + 1) % qp_->depth());
    if (cq_head_ == 0) cq_phase_ = !cq_phase_;
    Completion c{cqe.cid, status_of(cqe), cqe.result, cqe.dw1};
    DPC_CHECK(c.cid < qp_->depth());
    if (done_[c.cid].has_value()) {
      // A CQE arrived for a cid that already holds an unconsumed completion
      // (e.g. an abort() raced a slow CQE). Never clobber the recorded one —
      // the slot may already belong to a resubmitted command. Count it so
      // the "aborted cids are permanently dead" invariant is auditable.
      if (late_cqes_ != nullptr) late_cqes_->add();
      ++consumed;
      continue;
    }
    done_[c.cid] = c;
    if (traces_ != nullptr) {
      traces_->stamp(c.cid, obs::Stage::kHostReap);
      traces_->finish(c.cid);
    }
    if (!first.has_value()) first = c;
    ++consumed;
  }
  if (consumed > 0) {
    // Publish the new head to the DPU so the TGT can reuse CQ slots — one
    // doorbell (one modelled MMIO) per drained batch, not per CQE, matching
    // how real NVMe drivers coalesce the CQ-head update. Consumer-side:
    // nothing to publish before it, the head only frees slots.
    // dpc-lint: ok(doorbell-fence) consumer-side CQ head update
    dma_->doorbell(qp_->cq_head_db_off(), cq_head_);
    if (cq_doorbells_ != nullptr) cq_doorbells_->add();
    if (reaps_ != nullptr)
      reaps_->add(static_cast<std::uint64_t>(consumed));
  }
  return first;
}

std::optional<Completion> IniDriver::poll() {
  sim::LockGuard lock(mu_);
  return drain_locked();
}

Completion IniDriver::wait(std::uint16_t cid) {
  DPC_CHECK(cid < qp_->depth());
  for (;;) {
    {
      sim::LockGuard lock(mu_);
      if (done_[cid].has_value()) {
        const Completion c = *done_[cid];
        return c;
      }
    }
    if (!poll().has_value()) {
      sim::schedhook::spin("nvme.ini.wait");
      std::this_thread::yield();
    }
  }
}

std::optional<Completion> IniDriver::try_take(std::uint16_t cid) {
  DPC_CHECK(cid < qp_->depth());
  sim::LockGuard lock(mu_);
  drain_locked();
  return done_[cid];
}

std::span<const std::byte> IniDriver::read_payload(std::uint16_t cid,
                                                   std::size_t n) const {
  const pcie::MemoryRegion& host = dma_->host();
  return host.bytes(qp_->read_buf_off(cid), n);
}

Completion IniDriver::abort(std::uint16_t cid) {
  DPC_CHECK(cid < qp_->depth());
  sim::LockGuard lock(mu_);
  drain_locked();  // last chance: the completion may have just landed
  if (done_[cid].has_value()) return *done_[cid];
  const Completion c{cid, Status::kAbortedByRequest, 0, 0};
  done_[cid] = c;
  if (timeouts_ != nullptr) timeouts_->add();
  // Clear any half-recorded trace stamps so the cid's next command starts
  // from a clean slot (finish() only records spans with both endpoints).
  if (traces_ != nullptr) traces_->finish(cid);
  return c;
}

void IniDriver::release(std::uint16_t cid) {
  {
    sim::LockGuard lock(mu_);
    DPC_CHECK_MSG(done_[cid].has_value(),
                  "release of incomplete cid " << cid);
    done_[cid].reset();
    free_cids_.push_back(cid);
  }
  // One slot freed → one waiter can make progress.
  free_cv_.notify_one();
}

std::uint16_t IniDriver::reset() {
  std::uint16_t aborted = 0;
  {
    sim::LockGuard lock(mu_);
    // The TGT has already been rewound, so no CQE will ever arrive for the
    // commands currently in flight. Synthesize aborts for them; the normal
    // try_take → release path reclaims each slot and the retry loop
    // resubmits onto the freshly reset queue.
    std::vector<bool> is_free(qp_->depth(), false);
    for (const std::uint16_t cid : free_cids_) is_free[cid] = true;
    for (std::uint16_t cid = 0; cid + 1 < qp_->depth(); ++cid) {
      if (is_free[cid] || done_[cid].has_value()) continue;
      done_[cid] = Completion{cid, Status::kAbortedByRequest, 0, 0};
      if (traces_ != nullptr) traces_->finish(cid);
      ++aborted;
    }
    // Zero every CQE's phase-carrying dword. The ring restarts at phase 1,
    // so a stale entry left with its phase bit set would otherwise read as
    // a fresh completion the first time the head sweeps past it.
    auto& host = dma_->host();
    for (std::uint16_t i = 0; i < qp_->depth(); ++i) {
      host.atomic_u32(qp_->cqe_off(i) + 12).store(0,
                                                  std::memory_order_release);
    }
    sq_tail_ = 0;
    cq_head_ = 0;
    cq_phase_ = true;
    dma_->doorbell(qp_->sq_tail_db_off(), 0);
    dma_->doorbell(qp_->cq_head_db_off(), 0);
    if (resets_ != nullptr) resets_->add();
    if (timeouts_ != nullptr && aborted > 0)
      timeouts_->add(static_cast<std::uint64_t>(aborted));
  }
  // Aborted completions unblock wait()/try_take() callers, whose release()
  // will signal free_cv_ — but wake queue-full waiters now in case the
  // reset itself is what frees the queue for them.
  free_cv_.notify_all();
  return aborted;
}

std::uint16_t IniDriver::inflight() const {
  sim::LockGuard lock(mu_);
  return static_cast<std::uint16_t>(qp_->depth() - 1 - free_cids_.size());
}

}  // namespace dpc::nvme
