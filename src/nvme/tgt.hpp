// NVME-TGT — the DPU-side nvme-fs driver (§3.2).
//
// Consumes SQEs at the head of each SQ and produces CQEs at the tail of the
// CQ. Per command, the DMA walk is exactly the paper's Fig. 4:
//   ① fetch the SQE from host memory,
//   ② fetch the PRP list to locate the payload buffer,
//   ③ one payload DMA (host→DPU for writes, DPU→host for reads),
//   ④ post the CQE.
// A bidirectional command (write payload out + read payload back) performs
// the ②③ pair once per direction.
//
// Batching: a drain cycle fetches the whole doorbell-delimited run of SQEs
// with ONE descriptor DMA (①×N coalesced) and accounts the run's CQE posts
// as ONE descriptor transaction (④×N coalesced) — the DPU-side twin of the
// INI's one-doorbell-per-batch submit. A single-command drain therefore
// costs exactly the same four DMAs as before.
//
// QoS (optional, src/dpu/qos.*): with a QosManager attached, the drain
// splits into INGEST (batched SQE fetch → admission check → per-tenant
// staging) and DISPATCH (deficit-round-robin pop → execute). Rejected
// commands complete immediately with kThrottled + a retry-after hint;
// stale best-effort/background commands are shed under overload. Without a
// manager the scheduler degrades to FIFO and the flow — order, DMA count,
// CQE contents — is bit-identical to the pre-QoS driver.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "dpu/qos.hpp"
#include "fault/injector.hpp"
#include "nvme/queue_pair.hpp"
#include "nvme/spec.hpp"
#include "obs/trace.hpp"
#include "pcie/dma.hpp"
#include "sim/time.hpp"

namespace dpc::nvme {

/// Fault-injection sites in the TGT command path (see src/fault/).
/// drop_cqe: command vanishes after SQE fetch — no handler run, no CQE ever
/// posted; the host must time out and abort. error_cqe: command fails before
/// the handler with a retryable kDataTransferError completion.
inline constexpr std::string_view kFaultTgtDropCqe = "nvme.tgt/drop_cqe";
inline constexpr std::string_view kFaultTgtErrorCqe = "nvme.tgt/error_cqe";
/// Crash point between the handler finishing (op applied, payload DMA'd
/// back) and the CQE post: the one window where a crashed DPU leaves an
/// *applied but unacknowledged* command — the "present" arm of the chaos
/// harness's all-or-nothing check.
inline constexpr std::string_view kFaultTgtCrashBeforeCqe =
    "nvme.tgt/crash_before_cqe";
/// Data-corruption sites on the transport itself: a bit flips inside the
/// payload DMA (write direction: host→DPU before the TGT verifies the
/// trailer; read direction: DPU→host after the TGT stamps it). Both are
/// caught by the CRC32C envelope — the write side completes with
/// kDataIntegrityError before the handler runs, the read side fails the
/// host's trailer check in DpcSystem::call.
inline constexpr std::string_view kFaultTgtCorruptWrite =
    "nvme.transport/corrupt_write";
inline constexpr std::string_view kFaultTgtCorruptRead =
    "nvme.transport/corrupt_read";

/// What a command handler produced.
struct HandlerResult {
  Status status = Status::kSuccess;
  std::uint32_t result = 0;        ///< CQE result dword
  std::uint32_t read_bytes = 0;    ///< bytes filled into the read payload
  /// Modelled backend service time the handler spent (KV/DFS round trips,
  /// DPU compute). Reported back to the host in the CQE's spare dword, as
  /// device latency telemetry.
  sim::Nanos backend_cost{};
};

/// Invoked on the DPU for each fetched command. `write_payload` is the
/// host→DPU payload (header + data); `read_payload` is scratch the handler
/// fills for the DPU→host direction (capacity = cmd.read_len).
using CommandHandler = std::function<HandlerResult(
    const NvmeFsCmd& cmd, std::span<const std::byte> write_payload,
    std::span<std::byte> read_payload)>;

class TgtDriver {
 public:
  /// `traces` (optional) must be the same QueueTraces handed to this
  /// queue's IniDriver so the DPU-side stage stamps join the host's.
  /// `qos` (optional) enables admission control + weighted fair dispatch;
  /// it must outlive the driver and is shared across queues.
  TgtDriver(pcie::DmaEngine& dma, const QueuePair& qp, CommandHandler handler,
            obs::QueueTraces* traces = nullptr,
            fault::FaultInjector* fault = nullptr,
            dpu::QosManager* qos = nullptr);

  struct ProcessStats {
    int processed = 0;
    sim::Nanos cost{};  ///< modelled DMA cost of everything moved
  };

  /// Drains up to `max` pending SQEs (doorbell-delimited). Non-blocking.
  /// Inert while the fault injector reports `crashed()` — a halted DPU
  /// executes nothing. A CrashException escaping the handler (or the
  /// crash-before-CQE site) is absorbed here: the in-progress command dies
  /// without a CQE, exactly like a controller losing power mid-op.
  ProcessStats process_available(int max = 1 << 30);

  /// True if the SQ doorbell indicates pending work, or commands are
  /// staged/awaiting a throttle completion from an earlier ingest.
  bool has_work() const;

  /// Controller-reset half of the DPU restart sequence: rewinds the SQ
  /// consumer and CQ producer to slot 0 / phase 1. Run before
  /// IniDriver::reset() (which zeroes the doorbells this side reads) and
  /// only while the DPU pollers are quiesced.
  void reset();

 private:
  /// Ingest half: admission-checks one already-fetched SQE and either
  /// stages it on the scheduler or queues a throttle completion.
  void ingest_one(const Sqe& sqe);
  /// Executes one staged command (②③④ of Fig. 4). Bumps `cqes_posted`
  /// if a CQE landed — the caller settles the batch's coalesced CQE wire
  /// cost once per drain run.
  ProcessStats execute_one(const dpu::StagedCmd& staged, int& cqes_posted);
  /// Posts one CQE (entry write + release-store of the phase dword).
  void post_cqe(std::uint16_t cid, Status st, std::uint32_t result,
                std::uint32_t dw1, int& cqes_posted);

  pcie::DmaEngine* dma_;
  const QueuePair* qp_;
  CommandHandler handler_;
  obs::QueueTraces* traces_;
  fault::FaultInjector* fault_;
  dpu::QosManager* qos_;
  obs::Counter* cmds_ = nullptr;        // registry instruments (null when
  obs::Counter* cqe_posts_ = nullptr;   // no traces attached)
  obs::Counter* rejects_ = nullptr;
  obs::Counter* dropped_cqes_ = nullptr;
  obs::Counter* error_cqes_ = nullptr;
  obs::Counter* integrity_errors_ = nullptr;
  obs::Counter* sqe_fetch_bursts_ = nullptr;
  obs::Counter* cqe_post_bursts_ = nullptr;

  std::uint16_t sq_head_ = 0;
  std::uint16_t cq_tail_ = 0;
  bool cq_phase_ = true;
  std::vector<std::byte> wscratch_;
  std::vector<std::byte> rscratch_;
  std::vector<Sqe> sqe_batch_;  ///< scratch for the contiguous-run fetch

  /// Staged-but-not-executed commands (FIFO without a QosManager).
  dpu::DrrScheduler sched_;
  /// Modelled device time: sum of dispatched service costs. Stays 0 in
  /// FIFO mode so CQE dw1 keeps its pre-QoS meaning (service only).
  sim::Nanos vt_now_{};
  /// Admission rejections awaiting their kThrottled completion.
  struct ThrottleCqe {
    std::uint16_t cid = 0;
    std::uint32_t retry_after_ns = 0;
  };
  std::deque<ThrottleCqe> throttled_;
};

}  // namespace dpc::nvme
