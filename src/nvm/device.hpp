// Simulated byte-addressable NVM/PMEM device on the DPU (Optane-DC /
// CXL-PM class) — the durable medium under the write-ahead log.
//
// The medium itself is one flat byte array that survives DPU crashes and
// power cycles (DpcSystem owns the device and never resets it), mirroring a
// PMEM DIMM that keeps its contents across the DPU SoC rebooting. What does
// NOT survive a crash is anything the writer had not yet persisted: the
// store→flush→fence discipline is modelled by (a) the calibrated
// `persist_fence()` cost charged at every ordering point, (b) the
// `nvm.dev/write_fail` fault site (media error → the write never lands) and
// (c) the WAL-level torn-append site that cuts a write short exactly where
// an untimely power cut would. The lint rule `wal-commit-order` enforces
// the ordering discipline statically (commit-word store must be preceded by
// a fence on the payload).
//
// All latencies are modelled time from calib §NVM — DRAM-class read/write
// plus an explicit CLWB+SFENCE-class persistence fence — accumulated into
// the caller's `sim::Nanos` cost like every other station in the tree.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace dpc::nvm {

/// Fault-injection site: one draw per device write; a hit models a media
/// error — no byte lands, the caller sees a failed (io-error) write.
inline constexpr std::string_view kFaultNvmWriteFail = "nvm.dev/write_fail";

class NvmDevice {
 public:
  /// `registry` (optional) hosts the "nvm.dev/…" counters; `fault`
  /// (optional) arms the media-error site.
  explicit NvmDevice(std::uint64_t bytes, fault::FaultInjector* fault = nullptr,
                     obs::Registry* registry = nullptr);

  std::uint64_t size() const { return media_.size(); }

  /// Writes `src` at `off`, charging media-write latency + streaming
  /// transfer. Returns false on an injected media error (nothing written).
  /// The write is NOT persistent until a `persist_fence()` orders it.
  bool write(std::uint64_t off, std::span<const std::byte> src,
             sim::Nanos& cost);

  /// Writes only the first `n` bytes of `src` — the torn-append helper the
  /// WAL uses to model a power cut mid-write (same cost as a full write up
  /// to the tear: the cut happens at the media, not before it).
  void write_torn(std::uint64_t off, std::span<const std::byte> src,
                  std::uint64_t n, sim::Nanos& cost);

  /// Reads `dst.size()` bytes at `off`, charging read latency + transfer.
  void read(std::uint64_t off, std::span<std::byte> dst, sim::Nanos& cost);

  /// One persistence barrier (CLWB+SFENCE class): everything written before
  /// it is durable before anything written after it.
  void persist_fence(sim::Nanos& cost);

  /// Direct view for deterministic damage placement (tests and the WAL's
  /// rot-in-log site flip bits in place, bypassing cost accounting the way
  /// real bit-rot does).
  std::span<std::byte> raw() { return media_; }

  // ---- Volatile-persistence model (dpc_check crash exploration) ----------
  //
  // With tracking on the device keeps a second, *durable* image: writes land
  // in `media_` immediately (readers see them) but are queued as pending
  // until a `persist_fence()` copies them into `durable_`. A modelled power
  // cut then picks an arbitrary subset of the still-pending writes — any
  // subset can have drained from the CPU write pending queue before the cut —
  // and rolls `media_` back to durable+subset. This is what turns "the
  // payload fence was skipped" into an observable lost/torn frame instead of
  // an invisible ordering nit.

  /// Enables/disables tracking. Enabling snapshots the current media as the
  /// durable image; disabling drops the durable image and pending queue.
  void set_persist_tracking(bool on);
  bool persist_tracking() const { return tracking_; }

  /// Number of writes applied to `media_` but not yet fenced durable.
  std::size_t volatile_writes() const { return pending_.size(); }

  /// Models the power cut: pending write `i` reaches the media iff bit `i`
  /// of `keep_mask` is set; every other pending write is undone. `media_`
  /// becomes the durable image plus the kept subset; the pending queue is
  /// cleared. No-op unless tracking is on.
  void drop_volatile(std::uint64_t keep_mask);

 private:
  struct PendingWrite {
    std::uint64_t off;
    std::vector<std::byte> bytes;
  };
  void track_write(std::uint64_t off, std::uint64_t len);

  std::vector<std::byte> media_;
  fault::FaultInjector* fault_;
  bool tracking_ = false;
  std::vector<std::byte> durable_;       // empty unless tracking_
  std::vector<PendingWrite> pending_;    // unfenced writes, oldest first
  obs::Counter* writes_ = nullptr;  // null without a registry
  obs::Counter* reads_ = nullptr;
  obs::Counter* fences_ = nullptr;
  obs::Counter* write_fails_ = nullptr;
};

}  // namespace dpc::nvm
