// Simulated byte-addressable NVM/PMEM device on the DPU (Optane-DC /
// CXL-PM class) — the durable medium under the write-ahead log.
//
// The medium itself is one flat byte array that survives DPU crashes and
// power cycles (DpcSystem owns the device and never resets it), mirroring a
// PMEM DIMM that keeps its contents across the DPU SoC rebooting. What does
// NOT survive a crash is anything the writer had not yet persisted: the
// store→flush→fence discipline is modelled by (a) the calibrated
// `persist_fence()` cost charged at every ordering point, (b) the
// `nvm.dev/write_fail` fault site (media error → the write never lands) and
// (c) the WAL-level torn-append site that cuts a write short exactly where
// an untimely power cut would. The lint rule `wal-commit-order` enforces
// the ordering discipline statically (commit-word store must be preceded by
// a fence on the payload).
//
// All latencies are modelled time from calib §NVM — DRAM-class read/write
// plus an explicit CLWB+SFENCE-class persistence fence — accumulated into
// the caller's `sim::Nanos` cost like every other station in the tree.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace dpc::nvm {

/// Fault-injection site: one draw per device write; a hit models a media
/// error — no byte lands, the caller sees a failed (io-error) write.
inline constexpr std::string_view kFaultNvmWriteFail = "nvm.dev/write_fail";

class NvmDevice {
 public:
  /// `registry` (optional) hosts the "nvm.dev/…" counters; `fault`
  /// (optional) arms the media-error site.
  explicit NvmDevice(std::uint64_t bytes, fault::FaultInjector* fault = nullptr,
                     obs::Registry* registry = nullptr);

  std::uint64_t size() const { return media_.size(); }

  /// Writes `src` at `off`, charging media-write latency + streaming
  /// transfer. Returns false on an injected media error (nothing written).
  /// The write is NOT persistent until a `persist_fence()` orders it.
  bool write(std::uint64_t off, std::span<const std::byte> src,
             sim::Nanos& cost);

  /// Writes only the first `n` bytes of `src` — the torn-append helper the
  /// WAL uses to model a power cut mid-write (same cost as a full write up
  /// to the tear: the cut happens at the media, not before it).
  void write_torn(std::uint64_t off, std::span<const std::byte> src,
                  std::uint64_t n, sim::Nanos& cost);

  /// Reads `dst.size()` bytes at `off`, charging read latency + transfer.
  void read(std::uint64_t off, std::span<std::byte> dst, sim::Nanos& cost);

  /// One persistence barrier (CLWB+SFENCE class): everything written before
  /// it is durable before anything written after it.
  void persist_fence(sim::Nanos& cost);

  /// Direct view for deterministic damage placement (tests and the WAL's
  /// rot-in-log site flip bits in place, bypassing cost accounting the way
  /// real bit-rot does).
  std::span<std::byte> raw() { return media_; }

 private:
  std::vector<std::byte> media_;
  fault::FaultInjector* fault_;
  obs::Counter* writes_ = nullptr;  // null without a registry
  obs::Counter* reads_ = nullptr;
  obs::Counter* fences_ = nullptr;
  obs::Counter* write_fails_ = nullptr;
};

}  // namespace dpc::nvm
