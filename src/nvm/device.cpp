#include "nvm/device.hpp"

#include <algorithm>
#include <cstring>

#include "sim/calib.hpp"
#include "sim/check.hpp"
#include "sim/schedhook.hpp"

namespace dpc::nvm {

NvmDevice::NvmDevice(std::uint64_t bytes, fault::FaultInjector* fault,
                     obs::Registry* registry)
    : media_(bytes), fault_(fault) {
  DPC_CHECK(bytes > 0);
  if (registry != nullptr) {
    writes_ = &registry->counter("nvm.dev/writes");
    reads_ = &registry->counter("nvm.dev/reads");
    fences_ = &registry->counter("nvm.dev/fences");
    write_fails_ = &registry->counter("nvm.dev/write_fails");
  }
}

bool NvmDevice::write(std::uint64_t off, std::span<const std::byte> src,
                      sim::Nanos& cost) {
  DPC_CHECK(off + src.size() <= media_.size());
  sim::schedhook::point("nvm.write");
  cost += sim::calib::kNvmWriteLat + sim::calib::nvm_transfer(src.size());
  if (fault_ != nullptr && fault_->should_fail(kFaultNvmWriteFail)) {
    if (write_fails_ != nullptr) write_fails_->add();
    return false;
  }
  if (!src.empty()) std::memcpy(media_.data() + off, src.data(), src.size());
  track_write(off, src.size());
  if (writes_ != nullptr) writes_->add();
  return true;
}

void NvmDevice::write_torn(std::uint64_t off, std::span<const std::byte> src,
                           std::uint64_t n, sim::Nanos& cost) {
  const std::uint64_t take = std::min<std::uint64_t>(n, src.size());
  DPC_CHECK(off + take <= media_.size());
  sim::schedhook::point("nvm.write");
  cost += sim::calib::kNvmWriteLat + sim::calib::nvm_transfer(take);
  if (take > 0) std::memcpy(media_.data() + off, src.data(), take);
  track_write(off, take);
  if (writes_ != nullptr) writes_->add();
}

void NvmDevice::read(std::uint64_t off, std::span<std::byte> dst,
                     sim::Nanos& cost) {
  DPC_CHECK(off + dst.size() <= media_.size());
  cost += sim::calib::kNvmReadLat + sim::calib::nvm_transfer(dst.size());
  if (!dst.empty()) std::memcpy(dst.data(), media_.data() + off, dst.size());
  if (reads_ != nullptr) reads_->add();
}

void NvmDevice::persist_fence(sim::Nanos& cost) {
  sim::schedhook::point("nvm.fence");
  cost += sim::calib::kNvmPersistFence;
  if (tracking_) {
    // Everything pending becomes durable, in order.
    for (const PendingWrite& w : pending_) {
      if (!w.bytes.empty())
        std::memcpy(durable_.data() + w.off, w.bytes.data(), w.bytes.size());
    }
    pending_.clear();
  }
  if (fences_ != nullptr) fences_->add();
}

void NvmDevice::set_persist_tracking(bool on) {
  tracking_ = on;
  pending_.clear();
  if (on) {
    durable_ = media_;
  } else {
    durable_.clear();
    durable_.shrink_to_fit();
  }
}

void NvmDevice::track_write(std::uint64_t off, std::uint64_t len) {
  if (!tracking_ || len == 0) return;
  // One pending entry per touched 64-byte cache line: lines drain to the
  // media independently, so a crash can keep any line subset of one logical
  // write — that independence is exactly what persist fences exist to tame.
  constexpr std::uint64_t kLine = 64;
  std::uint64_t pos = off;
  const std::uint64_t end = off + len;
  while (pos < end) {
    const std::uint64_t chunk = std::min(end, (pos / kLine + 1) * kLine) - pos;
    PendingWrite w;
    w.off = pos;
    w.bytes.assign(media_.begin() + static_cast<std::ptrdiff_t>(pos),
                   media_.begin() + static_cast<std::ptrdiff_t>(pos + chunk));
    pending_.push_back(std::move(w));
    pos += chunk;
  }
}

void NvmDevice::drop_volatile(std::uint64_t keep_mask) {
  if (!tracking_) return;
  // Kept writes replay onto the durable image in original order — a later
  // overlapping write that drained still wins, like real store ordering.
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (i < 64 && ((keep_mask >> i) & 1u) == 0) continue;
    const PendingWrite& w = pending_[i];
    if (!w.bytes.empty())
      std::memcpy(durable_.data() + w.off, w.bytes.data(), w.bytes.size());
  }
  pending_.clear();
  media_ = durable_;
}

}  // namespace dpc::nvm
