#include "nvm/device.hpp"

#include <algorithm>
#include <cstring>

#include "sim/calib.hpp"
#include "sim/check.hpp"

namespace dpc::nvm {

NvmDevice::NvmDevice(std::uint64_t bytes, fault::FaultInjector* fault,
                     obs::Registry* registry)
    : media_(bytes), fault_(fault) {
  DPC_CHECK(bytes > 0);
  if (registry != nullptr) {
    writes_ = &registry->counter("nvm.dev/writes");
    reads_ = &registry->counter("nvm.dev/reads");
    fences_ = &registry->counter("nvm.dev/fences");
    write_fails_ = &registry->counter("nvm.dev/write_fails");
  }
}

bool NvmDevice::write(std::uint64_t off, std::span<const std::byte> src,
                      sim::Nanos& cost) {
  DPC_CHECK(off + src.size() <= media_.size());
  cost += sim::calib::kNvmWriteLat + sim::calib::nvm_transfer(src.size());
  if (fault_ != nullptr && fault_->should_fail(kFaultNvmWriteFail)) {
    if (write_fails_ != nullptr) write_fails_->add();
    return false;
  }
  if (!src.empty()) std::memcpy(media_.data() + off, src.data(), src.size());
  if (writes_ != nullptr) writes_->add();
  return true;
}

void NvmDevice::write_torn(std::uint64_t off, std::span<const std::byte> src,
                           std::uint64_t n, sim::Nanos& cost) {
  const std::uint64_t take = std::min<std::uint64_t>(n, src.size());
  DPC_CHECK(off + take <= media_.size());
  cost += sim::calib::kNvmWriteLat + sim::calib::nvm_transfer(take);
  if (take > 0) std::memcpy(media_.data() + off, src.data(), take);
  if (writes_ != nullptr) writes_->add();
}

void NvmDevice::read(std::uint64_t off, std::span<std::byte> dst,
                     sim::Nanos& cost) {
  DPC_CHECK(off + dst.size() <= media_.size());
  cost += sim::calib::kNvmReadLat + sim::calib::nvm_transfer(dst.size());
  if (!dst.empty()) std::memcpy(dst.data(), media_.data() + off, dst.size());
  if (reads_ != nullptr) reads_->add();
}

void NvmDevice::persist_fence(sim::Nanos& cost) {
  cost += sim::calib::kNvmPersistFence;
  if (fences_ != nullptr) fences_->add();
}

}  // namespace dpc::nvm
