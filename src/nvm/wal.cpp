#include "nvm/wal.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "ec/crc32c.hpp"
#include "sim/check.hpp"
#include "sim/schedhook.hpp"

namespace dpc::nvm {
namespace {

// "DPCWAL01" — a blank (zeroed) device has neither slot carrying this, so
// a fresh medium is distinguishable from a corrupted header pair.
constexpr std::uint64_t kHeaderMagic = 0x4450'4357'414c'3031ull;

// kData payloads are whole cache pages; truncate records clear pending
// entries at page granularity.
constexpr std::uint64_t kPageBytes = 4096;

void put_u32(std::span<std::byte> dst, std::size_t off, std::uint32_t v) {
  std::memcpy(dst.data() + off, &v, sizeof(v));
}

void put_u64(std::span<std::byte> dst, std::size_t off, std::uint64_t v) {
  std::memcpy(dst.data() + off, &v, sizeof(v));
}

std::uint32_t get_u32(std::span<const std::byte> src, std::size_t off) {
  std::uint32_t v = 0;
  std::memcpy(&v, src.data() + off, sizeof(v));
  return v;
}

std::uint64_t get_u64(std::span<const std::byte> src, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, src.data() + off, sizeof(v));
  return v;
}

}  // namespace

WriteAheadLog::WriteAheadLog(NvmDevice& dev, obs::Registry& registry,
                             fault::FaultInjector* fault)
    : dev_(&dev),
      fault_(fault),
      appends_(registry.counter("wal/appends")),
      data_records_(registry.counter("wal/data_records")),
      intent_records_(registry.counter("wal/intent_records")),
      drain_markers_(registry.counter("wal/drain_markers")),
      ring_full_(registry.counter("wal/ring_full")),
      append_io_errors_(registry.counter("wal/append_io_errors")),
      torn_tails_(registry.counter("wal/torn_tails")),
      corrupt_records_(registry.counter("wal/corrupt_records")),
      checkpoints_(registry.counter("wal/checkpoints")),
      recoveries_(registry.counter("wal/recoveries")),
      degraded_gauge_(registry.gauge("wal/degraded")) {
  DPC_CHECK(dev_->size() >=
            kDataStart + kReserveBytes +
                2 * (kFrameHeaderBytes + kPageBytes + kCommitBytes));
  sim::LockGuard lock(mu_);
  (void)recover_locked();
}

AppendStatus WriteAheadLog::append_data(std::uint64_t ino, std::uint64_t lpn,
                                        std::span<const std::byte> page,
                                        sim::Nanos& cost) {
  std::array<std::byte, 16> head{};
  put_u64(head, 0, ino);
  put_u64(head, 8, lpn);
  sim::LockGuard lock(mu_);
  const auto st = append_locked(RecordKind::kData, head, page, cost);
  if (st == AppendStatus::kOk) {
    pending_[{ino, lpn}] = next_seq_ - 1;
    data_records_.add();
  }
  return st;
}

AppendStatus WriteAheadLog::append_intent(std::uint64_t id,
                                          std::span<const std::byte> payload,
                                          sim::Nanos& cost) {
  std::array<std::byte, 8> head{};
  put_u64(head, 0, id);
  sim::LockGuard lock(mu_);
  const auto st = append_locked(RecordKind::kIntent, head, payload, cost);
  if (st == AppendStatus::kOk) {
    open_intents_.insert(id);
    intent_records_.add();
  }
  return st;
}

AppendStatus WriteAheadLog::append_intent_commit(std::uint64_t id,
                                                 sim::Nanos& cost) {
  std::array<std::byte, 8> head{};
  put_u64(head, 0, id);
  sim::LockGuard lock(mu_);
  const auto st = append_locked(RecordKind::kIntentCommit, head, {}, cost);
  if (st == AppendStatus::kOk) open_intents_.erase(id);
  return st;
}

AppendStatus WriteAheadLog::append_truncate(std::uint64_t ino,
                                            std::uint64_t new_size,
                                            sim::Nanos& cost) {
  std::array<std::byte, 16> head{};
  put_u64(head, 0, ino);
  put_u64(head, 8, new_size);
  sim::LockGuard lock(mu_);
  const auto st = append_locked(RecordKind::kTruncate, head, {}, cost);
  if (st == AppendStatus::kOk) {
    // Pages wholly beyond the new size can never be replayed (the marker
    // supersedes them), so they stop blocking checkpoint. The boundary page
    // keeps its pending entry: its low bytes are still acked data.
    const std::uint64_t first_gone = (new_size + kPageBytes - 1) / kPageBytes;
    pending_.erase(pending_.lower_bound({ino, first_gone}),
                   pending_.lower_bound({ino + 1, 0}));
  }
  return st;
}

void WriteAheadLog::note_drained(std::uint64_t ino, std::uint64_t lpn,
                                 sim::Nanos& cost) {
  std::array<std::byte, 16> head{};
  put_u64(head, 0, ino);
  put_u64(head, 8, lpn);
  sim::LockGuard lock(mu_);
  if (pending_.find({ino, lpn}) == pending_.end()) return;
  if (append_locked(RecordKind::kDrained, head, {}, cost) ==
      AppendStatus::kOk) {
    pending_.erase({ino, lpn});
    drain_markers_.add();
  }
  // On failure the page stays pending — checkpoint stays blocked and
  // degraded is latched (by append_locked), so replay will re-apply the
  // logged copy rather than trust a drain that may not have been marked.
}

void WriteAheadLog::maybe_checkpoint(sim::Nanos& cost) {
  sim::LockGuard lock(mu_);
  // DPC_CHECK_MUTATE wal-early-checkpoint: drop the pending/intent guard.
  // A checkpoint then discards acked-but-undrained records — after a crash
  // the replay has nothing to re-apply and the ack was a lie. dpc_check
  // arms this and must see an acked write missing from recovery.
  if (!sim::schedhook::mutate("wal-early-checkpoint")) {
    if (!pending_.empty() || !open_intents_.empty()) return;
  }
  if (tail_ == kDataStart && !degraded_.load(std::memory_order_acquire))
    return;
  (void)checkpoint_locked(cost);
}

WalRecovery WriteAheadLog::recover() {
  sim::LockGuard lock(mu_);
  auto out = recover_locked();
  recoveries_.add();
  return out;
}

void WriteAheadLog::mark_replayed(sim::Nanos& cost) {
  sim::LockGuard lock(mu_);
  pending_.clear();
  open_intents_.clear();
  if (tail_ == kDataStart && !degraded_.load(std::memory_order_acquire))
    return;
  (void)checkpoint_locked(cost);
}

bool WriteAheadLog::has_pending(std::uint64_t ino, std::uint64_t lpn) const {
  sim::LockGuard lock(mu_);
  return pending_.find({ino, lpn}) != pending_.end();
}

bool WriteAheadLog::intent_open(std::uint64_t id) const {
  sim::LockGuard lock(mu_);
  return open_intents_.find(id) != open_intents_.end();
}

std::size_t WriteAheadLog::pending_pages() const {
  sim::LockGuard lock(mu_);
  return pending_.size();
}

std::size_t WriteAheadLog::open_intents() const {
  sim::LockGuard lock(mu_);
  return open_intents_.size();
}

std::uint64_t WriteAheadLog::live_bytes() const {
  sim::LockGuard lock(mu_);
  return tail_ - kDataStart;
}

AppendStatus WriteAheadLog::append_locked(RecordKind kind,
                                          std::span<const std::byte> a,
                                          std::span<const std::byte> b,
                                          sim::Nanos& cost) {
  const std::uint64_t len = a.size() + b.size();
  const std::uint64_t frame = kFrameHeaderBytes + len + kCommitBytes;
  // Bulky records keep out of the reserve headroom so the tiny bookkeeping
  // records that UNBLOCK checkpointing (drain markers, intent commits)
  // cannot be starved into kFull by the records they supersede.
  const bool bulky =
      kind == RecordKind::kData || kind == RecordKind::kIntent;
  const std::uint64_t limit = dev_->size() - (bulky ? kReserveBytes : 0);
  if (tail_ + frame > limit) {
    ring_full_.add();
    set_degraded(true);
    return AppendStatus::kFull;
  }

  const std::uint64_t seq = next_seq_;
  std::vector<std::byte> buf(kFrameHeaderBytes + len);
  put_u32(buf, 4, static_cast<std::uint32_t>(len));
  put_u64(buf, 8, seq);
  buf[16] = static_cast<std::byte>(kind);
  put_u32(buf, 0,
          ec::crc32c(std::span<const std::byte>(buf).subspan(
              4, kFrameHeaderBytes - 4)));
  std::copy(a.begin(), a.end(), buf.begin() + kFrameHeaderBytes);
  std::copy(b.begin(), b.end(), buf.begin() + kFrameHeaderBytes + a.size());

  std::uint64_t entropy = 0;
  if (fault_ != nullptr && fault_->should_fail(kFaultWalTornAppend, &entropy)) {
    // Power-cut mid-append: a prefix lands, the tail is torn. The tail_ is
    // NOT advanced, so the next append overwrites the torn bytes; until
    // then a scan reports them as a torn tail.
    dev_->write_torn(tail_, buf, entropy % buf.size(), cost);
    append_io_errors_.add();
    set_degraded(true);
    return AppendStatus::kIoError;
  }
  if (!dev_->write(tail_, buf, cost)) {
    append_io_errors_.add();
    set_degraded(true);
    return AppendStatus::kIoError;
  }
  fault::crash_point(fault_, kCrashWalMidAppend);
  // Write-ahead ordering: the payload must be persistent before the commit
  // record that makes it scannable. DPC_CHECK_MUTATE wal-commit-order drops
  // this fence — a crash may then keep the commit word without the payload,
  // which dpc_check's crash exploration must surface as a corrupt record.
  if (!sim::schedhook::mutate("wal-commit-order")) dev_->persist_fence(cost);
  std::uint32_t commit = ec::crc32c_u64(seq);
  commit = ec::crc32c(a, commit);
  commit = ec::crc32c(b, commit);
  if (!publish_commit_word(tail_ + kFrameHeaderBytes + len, commit, cost)) {
    append_io_errors_.add();
    set_degraded(true);
    return AppendStatus::kIoError;
  }
  dev_->persist_fence(cost);

  if (fault_ != nullptr && len > 0 &&
      fault_->should_fail(kFaultWalRot, &entropy)) {
    // Rot at rest: flip one payload bit after the record is durable. The
    // scan detects it via the commit CRC and drops the record (typed).
    const std::uint64_t bit = entropy % (len * 8);
    dev_->raw()[tail_ + kFrameHeaderBytes + bit / 8] ^=
        std::byte{static_cast<unsigned char>(1u << (bit % 8))};
  }

  tail_ += frame;
  next_seq_ = seq + 1;
  appends_.add();
  return AppendStatus::kOk;
}

WalRecovery WriteAheadLog::recover_locked() {
  WalRecovery out;
  std::uint64_t epoch = 0;
  std::uint64_t start = 0;
  if (read_header(&epoch, &start, out.cost)) {
    epoch_ = epoch;
    start_seq_ = start;
  } else {
    // Fresh (all-zero) medium: format it.
    epoch_ = 1;
    start_seq_ = 1;
    (void)write_header(epoch_, start_seq_, out.cost);
  }
  pending_.clear();
  open_intents_.clear();

  const std::uint64_t size = dev_->size();
  std::uint64_t pos = kDataStart;
  std::uint64_t expect = start_seq_;
  // True while the most recent parseable frame(s) failed their commit CRC
  // with nothing good after them — i.e. the log ends in an uncommitted or
  // torn append, which scans as a torn tail.
  bool trailing_bad = false;
  std::array<std::byte, kFrameHeaderBytes> hdr{};
  while (pos + kFrameHeaderBytes + kCommitBytes <= size) {
    dev_->read(pos, hdr, out.cost);
    const bool blank = std::all_of(hdr.begin(), hdr.end(), [](std::byte x) {
      return x == std::byte{0};
    });
    if (blank) break;  // never-written tail — clean end
    if (get_u32(hdr, 0) !=
        ec::crc32c(std::span<const std::byte>(hdr).subspan(
            4, kFrameHeaderBytes - 4))) {
      out.report.torn_tail = true;
      torn_tails_.add();
      trailing_bad = false;
      break;  // unparseable header: a torn frame header ends the log
    }
    const std::uint32_t len = get_u32(hdr, 4);
    const std::uint64_t seq = get_u64(hdr, 8);
    const auto kind_raw = std::to_integer<std::uint8_t>(hdr[16]);
    if (len > size - kCommitBytes - kFrameHeaderBytes - pos) {
      out.report.torn_tail = true;
      torn_tails_.add();
      trailing_bad = false;
      break;  // frame claims to run past the device — torn length field
    }
    // A valid-looking frame with the wrong seq (or an unknown kind) is
    // residue from before the last checkpoint: clean end of log.
    if (seq != expect || kind_raw < 1 || kind_raw > 5) break;

    std::vector<std::byte> payload(len);
    dev_->read(pos + kFrameHeaderBytes, payload, out.cost);
    std::array<std::byte, kCommitBytes> cw{};
    dev_->read(pos + kFrameHeaderBytes + len, cw, out.cost);
    const std::uint64_t frame = kFrameHeaderBytes + len + kCommitBytes;
    if (get_u32(cw, 0) !=
        ec::crc32c(payload, ec::crc32c_u64(seq))) {
      // Commit mismatch: the payload rotted, or the append never reached
      // its commit store. Skip the frame (its length still walks) and keep
      // scanning — a good frame beyond it proves it was rot, not a tear.
      if (get_u32(cw, 0) != 0) out.report.commit_mismatch_nonzero++;
      out.report.corrupt++;
      corrupt_records_.add();
      trailing_bad = true;
      pos += frame;
      expect = seq + 1;
      continue;
    }

    WalRecord rec;
    rec.kind = static_cast<RecordKind>(kind_raw);
    rec.seq = seq;
    switch (rec.kind) {
      case RecordKind::kData:
        if (len < 16) break;  // defensive; append_data always writes ≥16
        rec.a = get_u64(payload, 0);
        rec.b = get_u64(payload, 8);
        rec.data.assign(payload.begin() + 16, payload.end());
        break;
      case RecordKind::kIntent:
        if (len < 8) break;
        rec.a = get_u64(payload, 0);
        rec.data.assign(payload.begin() + 8, payload.end());
        break;
      case RecordKind::kIntentCommit:
        // Defensive (like kData): a commit-verified frame can still carry a
        // shorter payload than its kind implies — e.g. a crafted or
        // bit-rotted zero-length marker. Parse what is there; never read
        // past the payload.
        if (len < 8) break;
        rec.a = get_u64(payload, 0);
        break;
      case RecordKind::kDrained:
      case RecordKind::kTruncate:
        if (len < 16) break;
        rec.a = get_u64(payload, 0);
        rec.b = get_u64(payload, 8);
        break;
    }
    out.records.push_back(std::move(rec));
    out.report.scanned++;
    trailing_bad = false;
    pos += frame;
    expect = seq + 1;
  }
  if (trailing_bad) {
    out.report.torn_tail = true;
    torn_tails_.add();
  }

  // Resume appending AFTER every parseable frame (good or corrupt): a
  // corrupt-at-tail frame must not be overwritten, because replay-side
  // appends land before mark_replayed() and a crash mid-replay re-scans
  // everything beyond it.
  tail_ = pos;
  next_seq_ = expect;
  out.report.live_bytes = tail_ - kDataStart;

  for (const auto& rec : out.records) {
    switch (rec.kind) {
      case RecordKind::kData:
        pending_[{rec.a, rec.b}] = rec.seq;
        break;
      case RecordKind::kDrained:
        pending_.erase({rec.a, rec.b});
        break;
      case RecordKind::kTruncate: {
        const std::uint64_t first_gone =
            (rec.b + kPageBytes - 1) / kPageBytes;
        pending_.erase(pending_.lower_bound({rec.a, first_gone}),
                       pending_.lower_bound({rec.a + 1, 0}));
        break;
      }
      case RecordKind::kIntent:
        open_intents_.insert(rec.a);
        break;
      case RecordKind::kIntentCommit:
        open_intents_.erase(rec.a);
        break;
    }
  }
  return out;
}

bool WriteAheadLog::checkpoint_locked(sim::Nanos& cost) {
  if (!write_header(epoch_ + 1, next_seq_, cost)) {
    // The header write doubles as the device probe: failure keeps (or
    // puts) the log in degraded mode and leaves the old header replayable.
    set_degraded(true);
    return false;
  }
  ++epoch_;
  start_seq_ = next_seq_;
  tail_ = kDataStart;
  checkpoints_.add();
  set_degraded(false);
  return true;
}

bool WriteAheadLog::publish_commit_word(std::uint64_t off, std::uint32_t commit,
                                        sim::Nanos& cost) {
  std::array<std::byte, kCommitBytes> w{};
  put_u32(w, 0, commit);
  return dev_->write(off, w, cost);
}

bool WriteAheadLog::write_header(std::uint64_t epoch, std::uint64_t start_seq,
                                 sim::Nanos& cost) {
  std::array<std::byte, kHeaderSlotBytes> slot{};
  put_u64(slot, 0, kHeaderMagic);
  put_u64(slot, 8, epoch);
  put_u64(slot, 16, start_seq);
  put_u32(slot, 24, ec::crc32c(std::span<const std::byte>(slot).first(24)));
  // Double-buffered: even epochs in slot 0, odd in slot 1, so the old
  // header stays intact until the new one is fenced — a crash mid-write
  // leaves a valid (older) header either way.
  const std::uint64_t off = (epoch % 2) * kHeaderSlotBytes;
  if (!dev_->write(off, slot, cost)) return false;
  dev_->persist_fence(cost);
  return true;
}

bool WriteAheadLog::read_header(std::uint64_t* epoch, std::uint64_t* start_seq,
                                sim::Nanos& cost) {
  bool found = false;
  for (std::uint64_t s = 0; s < 2; ++s) {
    std::array<std::byte, kHeaderSlotBytes> slot{};
    dev_->read(s * kHeaderSlotBytes, slot, cost);
    if (get_u64(slot, 0) != kHeaderMagic) continue;
    if (get_u32(slot, 24) !=
        ec::crc32c(std::span<const std::byte>(slot).first(24)))
      continue;
    const std::uint64_t e = get_u64(slot, 8);
    if (!found || e > *epoch) {
      *epoch = e;
      *start_seq = get_u64(slot, 16);
      found = true;
    }
  }
  return found;
}

void WriteAheadLog::set_degraded(bool on) {
  degraded_.store(on, std::memory_order_release);
  degraded_gauge_.set(on ? 1 : 0);
}

}  // namespace dpc::nvm
