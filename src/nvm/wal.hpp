// NVM write-ahead log — the one crash-proof durability spine in front of
// the SSD/KV path (ROADMAP item 4; NVLog-style).
//
// KVFS fsync acks at NVM persistence: the fsync path logs the inode's dirty
// cache pages here (CRC32C-framed, data-before-commit-record ordering) and
// acks as soon as the log is persistent; the cache flusher — a background-
// QoS WorkerPool poller — drains the pages to the SSD/KV path afterwards
// and appends drain markers that supersede the logged copies. The KVFS
// intent journal's records ride the same log (kIntent/kIntentCommit), so
// replay-on-mount reads ONE spine instead of two mechanisms that must both
// be right.
//
// Frame format (all little-endian, `len` = payload bytes):
//
//   [hdr_crc u32 | len u32 | seq u64 | kind u8 | pad u8×3 |
//    payload … | commit u32]
//
// `hdr_crc` covers len/seq/kind/pad, so the scan can parse a frame whose
// *payload* rotted (skip it, count wal/corrupt_records, keep walking by
// `len`) while a frame whose *header* is unreadable ends the log. `commit`
// is CRC32C(payload) salted with the frame's seq (crc32c_u64): it is the
// commit record, stored only after a persistence fence on the payload — an
// append cut anywhere before the commit store scans as a torn tail and is
// dropped whole, never half-applied. Seq numbers are globally monotonic and
// must run contiguously from the header's start_seq; a valid-looking frame
// with the wrong seq is pre-checkpoint residue and ends the scan cleanly.
//
// The log region is bounded: appends that would overflow return kFull
// (typed backpressure — the fsync path falls back to the synchronous flush
// and the client keeps serving). Truncation is checkpoint-based rather than
// a wrapping ring: once every logged page is drained and every intent
// committed, the double-buffered device header advances (epoch+1, start_seq
// = next_seq) and the tail rewinds — crash-atomic, because until the new
// header is persistent the old header still replays the old frames.
//
// Degradation ladder (never lose an acked fsync):
//   healthy   → fsync acks at NVM persist cost, drain is asynchronous;
//   ring full → kFull, this fsync takes the synchronous SSD path, degraded
//               latches so following fsyncs skip the attempt;
//   NVM fault → kIoError (media error / torn append), same fallback;
//   recovery  → the drain catching up (or mount replay) empties the log,
//               the checkpoint header write probes the device, and success
//               clears the `wal/degraded` gauge.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "nvm/device.hpp"
#include "obs/metrics.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace dpc::nvm {

/// Fault-injection site: one draw per append; a hit cuts the frame write
/// short at an entropy-chosen byte (power cut mid-append). The torn bytes
/// stay in the log for the next scan to detect as a torn tail.
inline constexpr std::string_view kFaultWalTornAppend = "nvm.wal/torn_append";
/// Data-corruption site: one draw per append; a hit flips one payload bit
/// *after* the commit record is persistent — rot at rest. The scan detects
/// it (commit CRC mismatch), counts wal/corrupt_records and skips the frame.
inline constexpr std::string_view kFaultWalRot = "nvm.wal/rot";

/// Crash point between the payload persist and the commit-record store: the
/// DPU dies holding a torn frame. Scan drops it; the op was never acked.
inline constexpr std::string_view kCrashWalMidAppend =
    "nvm.wal/crash_mid_append";
/// Crash point right after the flusher's drain marker lands: the page is
/// durable in the backend AND superseded in the log, but the meta area
/// still says dirty. Replay skips the superseded copy; the re-flush after
/// rebuild() writes the same bytes again (idempotent).
inline constexpr std::string_view kCrashWalAfterDrain =
    "nvm.wal/crash_after_drain";
/// Crash point inside WAL replay (fired per record from the KVFS replay
/// loop): a second replay of the partially-applied log must converge.
inline constexpr std::string_view kCrashWalMidReplay =
    "nvm.wal/crash_mid_replay";

enum class AppendStatus : std::uint8_t {
  kOk = 0,
  kFull,     ///< bounded log out of space — typed backpressure, not an error
  kIoError,  ///< NVM media error or torn append; nothing durable
};

enum class RecordKind : std::uint8_t {
  kData = 1,          ///< one page: a=ino, b=lpn, data=page bytes
  kIntent = 2,        ///< KVFS intent: a=record id, data=encoded record
  kIntentCommit = 3,  ///< intent committed: a=record id
  kDrained = 4,       ///< page drained to backend: a=ino, b=lpn (supersedes
                      ///< every kData for that page with a lower seq)
  kTruncate = 5,      ///< a=ino, b=new_size (stops replay resurrecting
                      ///< pre-truncate page bytes)
};

/// One decoded, commit-verified record from a scan.
struct WalRecord {
  RecordKind kind = RecordKind::kData;
  std::uint64_t seq = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::vector<std::byte> data;
};

struct WalScanReport {
  std::uint64_t scanned = 0;   ///< commit-verified records
  std::uint64_t corrupt = 0;   ///< parseable frames whose payload failed CRC
  bool torn_tail = false;      ///< log ended in an uncommitted/torn frame
  std::uint64_t live_bytes = 0;
  /// Corrupt frames whose commit word was present (nonzero) yet mismatched
  /// the payload. A power cut mid-append leaves the commit word *zero* (it
  /// is the last store), so absent rot-at-rest a nonzero mismatch is
  /// evidence the commit word became durable before its payload — a
  /// write-ahead ordering violation. dpc_check's crash scenarios key on it.
  std::uint64_t commit_mismatch_nonzero = 0;
};

struct WalRecovery {
  std::vector<WalRecord> records;  ///< in seq order, corrupt frames dropped
  WalScanReport report;
  sim::Nanos cost{};
};

class WriteAheadLog {
 public:
  /// `registry` hosts the "wal/…" instruments (required — the degraded
  /// gauge is the observable half of the degradation ladder). `fault`
  /// (optional) arms the torn-append/rot sites and the crash points.
  WriteAheadLog(NvmDevice& dev, obs::Registry& registry,
                fault::FaultInjector* fault = nullptr);

  // ---- append side (write-ahead: callers ack only on kOk) ---------------
  AppendStatus append_data(std::uint64_t ino, std::uint64_t lpn,
                           std::span<const std::byte> page, sim::Nanos& cost);
  AppendStatus append_intent(std::uint64_t id,
                             std::span<const std::byte> payload,
                             sim::Nanos& cost);
  AppendStatus append_intent_commit(std::uint64_t id, sim::Nanos& cost);
  AppendStatus append_truncate(std::uint64_t ino, std::uint64_t new_size,
                               sim::Nanos& cost);

  /// The drain side: the flusher pushed (ino, lpn) to the backend. Appends
  /// a kDrained marker superseding the logged copies and drops the page
  /// from the pending set; when the marker append fails the page stays
  /// pending (blocking checkpoint) and degraded latches — see DESIGN.md §5j
  /// for the (documented) stale-replay window this closes off.
  void note_drained(std::uint64_t ino, std::uint64_t lpn, sim::Nanos& cost);

  /// Checkpoint-truncates when nothing in the log is still needed (no
  /// pending page, no open intent): advances the double-buffered header and
  /// rewinds the tail. The header write doubles as a device probe — success
  /// clears the degraded latch. No-op otherwise.
  void maybe_checkpoint(sim::Nanos& cost);

  // ---- recovery side ----------------------------------------------------
  /// Scans the device (torn-tail detection, per-frame CRC verification),
  /// resets the in-memory state — tail, seq, pending pages, open intents —
  /// to what the medium actually holds, and returns the surviving records
  /// in seq order for the KVFS replay loop. Idempotent: recover() twice
  /// returns the same records.
  WalRecovery recover();

  /// Replay applied every surviving record durably to the backend: drop the
  /// pending/intent state and checkpoint-truncate. Called at the END of a
  /// successful replay only — a crash mid-replay leaves the log intact for
  /// the (idempotent) second pass.
  void mark_replayed(sim::Nanos& cost);

  // ---- state probes -----------------------------------------------------
  /// True while the fast fsync path should not be attempted (ring full or
  /// NVM faulting). Mirrors the "wal/degraded" gauge.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  bool has_pending(std::uint64_t ino, std::uint64_t lpn) const;
  /// True while intent `id` was logged here and its commit marker has not
  /// landed yet (the journal commits through the WAL iff this holds).
  bool intent_open(std::uint64_t id) const;
  std::size_t pending_pages() const;
  std::size_t open_intents() const;
  std::uint64_t live_bytes() const;
  NvmDevice& device() { return *dev_; }

  // ---- on-media format --------------------------------------------------
  // Public so tests can craft and corrupt frames at exact offsets; nothing
  // outside the log writes through these.
  static constexpr std::uint64_t kHeaderSlotBytes = 64;
  static constexpr std::uint64_t kDataStart = 2 * kHeaderSlotBytes;
  static constexpr std::uint64_t kFrameHeaderBytes = 20;
  static constexpr std::uint64_t kCommitBytes = 4;
  /// Headroom kept out of reach of data/intent appends so the tiny
  /// bookkeeping records (drain markers, intent commits, truncates) that
  /// *unblock* checkpointing never hit kFull themselves.
  static constexpr std::uint64_t kReserveBytes = 4096;

 private:
  AppendStatus append_locked(RecordKind kind, std::span<const std::byte> a,
                             std::span<const std::byte> b, sim::Nanos& cost)
      REQUIRES(mu_);
  WalRecovery recover_locked() REQUIRES(mu_);
  /// Advances the header and rewinds the tail; clears degraded on success,
  /// latches it on a failed header write. Pre-condition: nothing live.
  bool checkpoint_locked(sim::Nanos& cost) REQUIRES(mu_);
  /// Stores the frame's commit record (the payload CRC). Must be preceded
  /// by a persistence fence on the payload — enforced by the
  /// `wal-commit-order` lint rule.
  bool publish_commit_word(std::uint64_t off, std::uint32_t commit,
                           sim::Nanos& cost);
  bool write_header(std::uint64_t epoch, std::uint64_t start_seq,
                    sim::Nanos& cost);
  /// Reads the newer valid header slot; false on a fresh/blank device.
  bool read_header(std::uint64_t* epoch, std::uint64_t* start_seq,
                   sim::Nanos& cost);
  void set_degraded(bool on);

  NvmDevice* dev_;
  fault::FaultInjector* fault_;

  mutable sim::AnnotatedMutex mu_{"nvm.wal", sim::LockRank::kDevice};
  std::uint64_t tail_ GUARDED_BY(mu_) = kDataStart;
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::uint64_t start_seq_ GUARDED_BY(mu_) = 1;
  std::uint64_t epoch_ GUARDED_BY(mu_) = 1;
  /// (ino, lpn) → seq of the latest logged copy not yet superseded by a
  /// drain marker. Non-empty pending blocks checkpointing.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> pending_
      GUARDED_BY(mu_);
  std::set<std::uint64_t> open_intents_ GUARDED_BY(mu_);

  std::atomic<bool> degraded_{false};

  obs::Counter& appends_;
  obs::Counter& data_records_;
  obs::Counter& intent_records_;
  obs::Counter& drain_markers_;
  obs::Counter& ring_full_;
  obs::Counter& append_io_errors_;
  obs::Counter& torn_tails_;
  obs::Counter& corrupt_records_;
  obs::Counter& checkpoints_;
  obs::Counter& recoveries_;
  obs::Gauge& degraded_gauge_;
};

}  // namespace dpc::nvm
