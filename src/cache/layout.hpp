// Hybrid-cache memory layout (§3.3, Fig. 5).
//
// The cache is one contiguous block of *host* memory, registered with the
// DPU at mount time:
//
//   [ header | bucket locks | meta area (cache entries) | data area ]
//
// header     — pagesize, mode (0 = read cache, 1 = write cache), total page
//              count, free page count.
//   meta area — a hash table of fixed-size cache entries; entries are
//              grouped into equal-sized buckets and linked by `next`.
//              Each entry i describes data page i:
//                lock   : 0 none, 1 write lock, 2 read lock, 3 invalid
//                status : 0 free, 1 clean, 2 dirty, 3 invalid
//                next   : next entry in the bucket's list
//                lpn    : logical page number within the file
//                inode  : owning file
//   data area — `total` pages; entry i ↔ page i, so locating the entry
//              locates the page.
//
// Engineering addition (documented in DESIGN.md): a per-bucket lock word
// between the header and the meta area serializes *structural* bucket
// changes (insert / evict) between concurrent host threads and the DPU.
// The paper's per-entry read/write locks (taken with PCIe atomics from the
// DPU side) still guard page data against concurrent flush/modification
// exactly as §3.3 describes; the bucket lock closes the insert/insert race
// the paper does not discuss.
#pragma once

#include <cstdint>

#include "pcie/memory.hpp"

namespace dpc::cache {

enum class LockState : std::uint32_t {
  kNone = 0,
  kWrite = 1,
  kRead = 2,
  kInvalid = 3,
};

enum class PageStatus : std::uint32_t {
  kFree = 0,
  kClean = 1,
  kDirty = 2,
  kInvalid = 3,
};

enum class CacheMode : std::uint32_t { kRead = 0, kWrite = 1 };

/// On-"wire" cache entry — one 64-byte cache line in the meta area.
///
/// Grown from 32 to 64 bytes for the lock-free read path: `seq` is the
/// entry's seqlock generation word (even = stable, odd = writer in flight;
/// see DESIGN.md §"Hot paths & perf gate"), and padding the entry out to a
/// full line keeps adjacent entries' hot lock/seq words off each other's
/// cache lines (no false sharing between neighbouring buckets).
struct CacheEntry {
  std::uint32_t lock = 0;    ///< LockState; read-lock holders in bits ≥2
  std::uint32_t status = 0;  ///< PageStatus
  std::uint32_t next = 0;    ///< next entry index in bucket list (kEndOfList)
  std::uint32_t fill = 0;    ///< prefetch fill-sequence stamp (age hint)
  std::uint64_t lpn = 0;     ///< logical page number within the file
  std::uint64_t inode = 0;   ///< owning file
  std::uint32_t seq = 0;     ///< seqlock generation (even=stable, odd=writing)
  std::uint32_t pad[7] = {}; ///< line padding; reserved for future fields
};
static_assert(sizeof(CacheEntry) == 64);

inline constexpr std::uint32_t kEndOfList = 0xFFFFFFFFu;

struct CacheGeometry {
  std::uint32_t page_size = 4096;
  CacheMode mode = CacheMode::kWrite;
  std::uint32_t total_pages = 1024;
  std::uint32_t buckets = 64;
};

/// Field offsets inside the header block.
struct HeaderOffsets {
  static constexpr std::uint64_t kPageSize = 0;
  static constexpr std::uint64_t kMode = 4;
  static constexpr std::uint64_t kTotal = 8;
  static constexpr std::uint64_t kFree = 12;      // atomic
  static constexpr std::uint64_t kBuckets = 16;
  static constexpr std::uint64_t kNeedEvict = 20; // atomic flag host → DPU
  /// Dirty-page count, maintained by the host data plane; the DPU polls it
  /// as a shadow register (modelled as a host-pushed MMIO hint, so reading
  /// it costs the DPU nothing) to avoid scanning a clean meta area.
  static constexpr std::uint64_t kDirty = 24;     // atomic
  /// Readahead hint: on cache-hit reads the host posts the consumed
  /// <inode, lpn> here (three plain stores — cheap posted writes). The DPU
  /// control plane uses it to extend active prefetch streams *before* the
  /// reader runs off the end of the prefetched window — the asynchronous
  /// readahead that makes sequential buffered reads ~all hits.
  static constexpr std::uint64_t kRaSeq = 28;     // atomic, bumped last
  static constexpr std::uint64_t kRaInode = 32;   // u64
  static constexpr std::uint64_t kRaLpn = 40;     // u64
  static constexpr std::uint64_t kSize = 64;
};

/// Computes and initializes the layout inside the host region. Shared
/// read-only by the host plane and the DPU control plane afterwards.
class CacheLayout {
 public:
  CacheLayout(const CacheGeometry& geo, pcie::RegionAllocator& host_alloc);

  const CacheGeometry& geometry() const { return geo_; }
  std::uint32_t entries_per_bucket() const { return epb_; }

  std::uint64_t header_off() const { return base_; }
  std::uint64_t header_field(std::uint64_t field) const {
    return base_ + field;
  }
  std::uint64_t bucket_lock_off(std::uint32_t bucket) const;
  std::uint64_t entry_off(std::uint32_t index) const;
  std::uint64_t entry_field_off(std::uint32_t index,
                                std::uint64_t field) const {
    return entry_off(index) + field;
  }
  std::uint64_t page_off(std::uint32_t index) const;

  /// Entry-field byte offsets within a CacheEntry.
  struct EntryField {
    static constexpr std::uint64_t kLock = 0;
    static constexpr std::uint64_t kStatus = 4;
    static constexpr std::uint64_t kNext = 8;
    static constexpr std::uint64_t kFill = 12;
    static constexpr std::uint64_t kLpn = 16;
    static constexpr std::uint64_t kInode = 24;
    static constexpr std::uint64_t kSeq = 32;
  };

  std::uint32_t bucket_of(std::uint64_t inode, std::uint64_t lpn) const;
  std::uint32_t bucket_head_entry(std::uint32_t bucket) const;

  /// Total bytes the cache occupies in the host region.
  std::uint64_t footprint() const { return total_bytes_; }

  /// (Re-)initializes the region to an empty cache: header rewritten,
  /// bucket locks zeroed, every entry free and relinked into its bucket
  /// list. The constructor calls this once; tests call it again to model a
  /// host power loss (all cached pages gone). Callers must quiesce both
  /// planes first.
  void format(pcie::MemoryRegion& region) const;

 private:
  CacheGeometry geo_;
  std::uint32_t epb_ = 0;
  std::uint64_t base_ = 0;
  std::uint64_t bucket_locks_ = 0;
  std::uint64_t meta_ = 0;
  std::uint64_t data_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Read-lock encoding helpers: kRead with N holders is (N << 2) | kRead.
constexpr std::uint32_t read_lock_word(std::uint32_t holders) {
  return (holders << 2) | static_cast<std::uint32_t>(LockState::kRead);
}
constexpr bool is_read_locked(std::uint32_t word) {
  return (word & 3u) == static_cast<std::uint32_t>(LockState::kRead);
}
constexpr std::uint32_t read_lock_holders(std::uint32_t word) {
  return word >> 2;
}

}  // namespace dpc::cache
