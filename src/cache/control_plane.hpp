// DPU-side control plane of the hybrid cache (§3.3).
//
// Runs on the DPU: every touch of the cache (which lives in host memory)
// goes through the DmaEngine — meta-area scans are chunked DMA reads, page
// pulls are data DMAs, and all lock manipulation uses PCIe atomics. Duties:
//
//   * flushing — periodically scan the meta hash table, read-lock dirty
//     pages, pull them to DPU DRAM, run the compute hooks (DIF checksum —
//     the paper lists "compression, DIF, EC, etc."), write them to the
//     backend, then release the locks and mark the entries clean;
//   * replacement — reclaim clean pages when the host raises the
//     need-evict flag (or free falls below the low-water mark), victim
//     selection delegated to the EvictionPolicy;
//   * prefetch — populate pages the SequentialPrefetcher predicts, claiming
//     free entries through the same bucket/entry lock protocol the host
//     uses (bucket locks taken with PCIe atomics from this side).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/backend.hpp"
#include "cache/layout.hpp"
#include "cache/policy.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "pcie/dma.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace dpc::dpu {
class QosManager;
}

namespace dpc::nvm {
class WriteAheadLog;
}  // namespace dpc::nvm

namespace dpc::cache {

/// Fault-injection site: one draw per flushed page; a hit makes the backend
/// write fail, leaving the page dirty for a later pass.
inline constexpr std::string_view kFaultFlushWritePage =
    "cache.flush/write_page";
/// Crash point between a successful backend write and the clean-status
/// update: the DPU dies still holding the entry's read lock, with the page
/// durable in the backend but dirty in the meta area. rebuild() clears the
/// orphaned lock on restart; the post-restart flush re-writes the page
/// (idempotent).
inline constexpr std::string_view kFaultFlushCrashBeforeClean =
    "cache.flush/crash_before_clean";
/// Data-corruption site: one draw per flushed page; a hit flips one bit in
/// the DPU-DRAM copy after the pull — damage in the DMA or in DPU DRAM.
/// With dif_enabled the stamp-then-verify pair catches it and the page
/// stays dirty (a later pass re-pulls the intact host copy); with DIF off
/// the damage would reach the backend, which is exactly the exposure the
/// DIF step exists to close.
inline constexpr std::string_view kFaultFlushCorruptPage =
    "cache.flush/corrupt_page";

struct ControlPlaneConfig {
  /// Refill eviction until at least this many pages are free.
  std::uint32_t evict_low_water = 16;
  std::uint32_t evict_batch = 32;
  /// Verify flushed pages with CRC32C (the DIF step).
  bool dif_enabled = true;
  /// Compress pages on the flush path before they cross the network to the
  /// disaggregated store (§3.3 lists compression among the flush compute).
  bool compress_enabled = false;
  /// Maximum readahead window in 4K pages (kernel-readahead scale).
  std::uint32_t prefetch_max_window = 256;
};

/// DPU control-plane counters, registry-backed ("cache.ctl/…") so every
/// flush/evict/prefetch shows up in metrics JSON snapshots.
struct ControlPlaneStats {
  explicit ControlPlaneStats(obs::Registry& reg)
      : pages_flushed(reg.counter("cache.ctl/pages_flushed")),
        pages_evicted(reg.counter("cache.ctl/pages_evicted")),
        pages_prefetched(reg.counter("cache.ctl/pages_prefetched")),
        flush_lock_conflicts(reg.counter("cache.ctl/flush_lock_conflicts")),
        dif_checksums(reg.counter("cache.ctl/dif_checksums")),
        compress_in_bytes(reg.counter("cache.ctl/compress_in_bytes")),
        compress_out_bytes(reg.counter("cache.ctl/compress_out_bytes")),
        flush_fails(reg.counter("cache.ctl/flush_fails")),
        flush_integrity_fails(
            reg.counter("cache.ctl/flush_integrity_fails")),
        rebuild_pages(reg.counter("cache.ctl/rebuild_pages")),
        wal_pages_logged(reg.counter("cache.ctl/wal_pages_logged")) {}

  obs::Counter& pages_flushed;
  obs::Counter& pages_evicted;
  obs::Counter& pages_prefetched;
  obs::Counter& flush_lock_conflicts;
  obs::Counter& dif_checksums;
  /// Flush-path compression accounting (bytes before/after).
  obs::Counter& compress_in_bytes;
  obs::Counter& compress_out_bytes;
  /// Backend write_page failures — the page stays dirty and is re-queued.
  obs::Counter& flush_fails;
  /// DIF verification failures on the flush path: the DPU-DRAM copy no
  /// longer matches the checksum stamped at the pull, so the page is NOT
  /// written to the backend and stays dirty for a clean re-pull.
  obs::Counter& flush_integrity_fails;
  /// Pages adopted from the surviving host data plane during rebuild().
  obs::Counter& rebuild_pages;
  /// Dirty pages persisted to the NVM write-ahead log by wal_log_pass()
  /// (the fsync fast path; the pages stay dirty for the drain).
  obs::Counter& wal_pages_logged;
};

class DpuCacheControl {
 public:
  /// `registry` hosts the control-plane counters and the flush/prefetch
  /// pass-cost histograms; when null a private registry is created.
  DpuCacheControl(pcie::DmaEngine& dma, const CacheLayout& layout,
                  CacheBackend& backend,
                  std::unique_ptr<EvictionPolicy> policy,
                  const ControlPlaneConfig& cfg = {},
                  obs::Registry* registry = nullptr,
                  fault::FaultInjector* fault = nullptr);

  /// One flusher iteration: flush up to `max_pages` dirty pages.
  struct PassResult {
    int pages = 0;
    sim::Nanos cost{};
  };
  PassResult flush_pass(int max_pages = 1 << 30);

  /// Evicts clean pages until `target_free` are free (or candidates run
  /// out). Dirty candidates are skipped — flush first.
  PassResult evict(std::uint32_t target_free);

  /// Prefetches `pages` pages of `inode` starting at `start_lpn` from the
  /// backend into the cache (clean). Pages already cached are skipped.
  PassResult prefetch(std::uint64_t inode, std::uint64_t start_lpn,
                      std::uint32_t pages);

  /// Reports a host read miss (one request spanning `span` cache pages) so
  /// the prefetcher can learn the stream; runs any advised prefetch
  /// immediately. Returns its cost. `tenant` attributes the triggered
  /// prefetch pages when a QoS manager is attached.
  PassResult on_read_miss(std::uint64_t inode, std::uint64_t lpn,
                          std::uint32_t span = 1, std::uint8_t tenant = 0);

  /// Attaches the DPU QoS manager for per-tenant prefetch attribution
  /// ("qos/t<i>/prefetch_pages"). Set during system wiring, before traffic.
  void attach_qos(dpu::QosManager* qos) { qos_ = qos; }

  /// Attaches the NVM write-ahead log: flush_pass() appends a drain marker
  /// for every page it pushes to the backend (superseding the logged
  /// copies) and checkpoint-truncates the log when it goes empty, and
  /// wal_log_pass() becomes available to the fsync fast path. Set during
  /// system wiring, before traffic.
  void attach_wal(nvm::WriteAheadLog* wal) { wal_ = wal; }

  /// Fsync fast path: persists every dirty page of `inode` to the NVM
  /// write-ahead log. The pages STAY dirty — the background flusher drains
  /// them to the backend later; durability is the log's job from here.
  struct WalLogResult {
    int pages = 0;        ///< pages appended this pass
    bool complete = false;  ///< every dirty page of the inode is in the log
    sim::Nanos cost{};
  };
  /// `complete` is the ack gate: false (lock conflict with a host writer,
  /// ring full, NVM fault) means the caller must fall back to the
  /// synchronous flush path for this fsync.
  WalLogResult wal_log_pass(std::uint64_t inode);

  /// Counts the dirty pages of `inode` still in the cache. The fsync path
  /// uses this to refuse success while flush-failed (re-queued) pages
  /// remain dirty.
  int dirty_pages(std::uint64_t inode, sim::Nanos& cost);

  /// WorkerPool poller: services the need-evict flag and flushes a batch.
  /// Returns the number of pages it acted on. Inert while the fault
  /// injector reports `crashed()`; a CrashException from a crash point in
  /// the flush path (or the KVFS backend underneath it) is absorbed here —
  /// the DPU core dies mid-pass and the poller goes quiet until restart.
  int poll();

  /// Crash-recovery: rebuilds the DPU-side view of the cache by scanning
  /// the surviving host-DRAM meta area. Clears every entry and bucket lock
  /// word the dead DPU may still hold, recomputes the header's free/dirty
  /// counts from entry status, drops a pending need-evict request, and
  /// resyncs the readahead-hint cursor. Returns the number of non-free
  /// pages adopted ("cache.ctl/rebuild_pages"). Run only while both planes
  /// are quiesced (DPU pollers stopped, host threads blocked on aborted
  /// NVMe commands); the caller re-flushes dirty pages afterwards with
  /// flush_pass().
  PassResult rebuild();

  const ControlPlaneStats& stats() const { return stats_; }
  std::uint32_t free_pages_seen() const;

 private:
  int poll_impl();

  /// DMA-reads the status word of every entry (chunked) for policy input.
  std::vector<PageStatus> snapshot_status(sim::Nanos& cost);

  /// DMA-reads the whole meta area (chunked): full entries, not just
  /// status. Lets ino-filtered passes (wal_log_pass) skip the per-entry
  /// probe DMA — one setup per chunk instead of one per dirty page.
  std::vector<CacheEntry> snapshot_meta(sim::Nanos& cost);

  CacheEntry fetch_entry(std::uint32_t index, sim::Nanos& cost);
  // Entry/bucket lock words are PCIe atomics, not mutexes; successful
  // acquisitions still feed the lock-rank detector (ranks kCacheEntry /
  // kCacheBucket) via manual hooks keyed by the word's backing address.
  bool try_read_lock(std::uint32_t index, sim::Nanos& cost);
  void read_unlock(std::uint32_t index, sim::Nanos& cost);
  bool try_write_lock(std::uint32_t index, sim::Nanos& cost);
  void write_unlock(std::uint32_t index, sim::Nanos& cost);
  void set_status(std::uint32_t index, PageStatus s, sim::Nanos& cost);
  // Seqlock window around entry mutations (identity/page/status→free), so
  // the host's lock-free read path can detect DPU-side rewrites. Posted
  // 4-byte writes to the entry's seq word, counted as kAtomic traffic.
  void seq_write_begin(std::uint32_t index, sim::Nanos& cost);
  void seq_write_end(std::uint32_t index, sim::Nanos& cost);
  bool lock_bucket(std::uint32_t bucket, sim::Nanos& cost);
  void unlock_bucket(std::uint32_t bucket, sim::Nanos& cost);
  void bump_free(std::int32_t delta, sim::Nanos& cost);

  pcie::DmaEngine* dma_;
  const CacheLayout* layout_;
  CacheBackend* backend_;
  fault::FaultInjector* fault_;
  dpu::QosManager* qos_ = nullptr;  ///< per-tenant prefetch attribution
  nvm::WriteAheadLog* wal_ = nullptr;  ///< durability spine (may be null)
  /// Consulted only inside an eviction pass (replacement is single-flight).
  std::unique_ptr<EvictionPolicy> policy_ PT_GUARDED_BY(pass_mu_);
  ControlPlaneConfig cfg_;
  std::unique_ptr<obs::Registry> owned_registry_;  // when none was supplied
  obs::Registry* registry_;
  ControlPlaneStats stats_;
  /// Modelled cost distributions of flush and prefetch passes.
  sim::Histogram* flush_pass_ns_;
  sim::Histogram* prefetch_pass_ns_;
  /// Serializes control-plane passes: the flusher poller and fsync-driven
  /// flushes may come from different DPU workers.
  sim::AnnotatedMutex pass_mu_{"cache.pass", sim::LockRank::kCachePass};
  SequentialPrefetcher prefetcher_ GUARDED_BY(pass_mu_);
  /// One page of DPU DRAM, used only inside a pass.
  std::vector<std::byte> scratch_ GUARDED_BY(pass_mu_);
  /// Last readahead-hint sequence consumed (hint loss is benign).
  std::atomic<std::uint32_t> last_ra_seq_{0};
  /// Monotonic fill counter stamped into prefetched entries so replacement
  /// can prefer the oldest fill.
  std::atomic<std::uint32_t> fill_seq_{1};
};

}  // namespace dpc::cache
