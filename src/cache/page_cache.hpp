// Conventional host page cache (the VFS page cache the Ext4 baseline uses
// in Figs. 7–8). Sharded LRU with dirty tracking and explicit writeback —
// deliberately simple: the point of the baseline is that *all* of this
// work burns host CPU, which the calibrated Ext4 demands account for.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/thread_annotations.hpp"

namespace dpc::cache {

class PageCache {
 public:
  /// `capacity_pages` across all shards; `page_size` typically 4096.
  PageCache(std::uint32_t capacity_pages, std::uint32_t page_size,
            int shards = 16);

  using WritebackFn = std::function<void(
      std::uint64_t inode, std::uint64_t lpn, std::span<const std::byte>)>;

  /// Copies the page into `dst` if cached. LRU-promotes on hit.
  bool read(std::uint64_t inode, std::uint64_t lpn, std::span<std::byte> dst);

  /// Inserts/overwrites the page; marks dirty. May evict (clean pages are
  /// dropped, dirty pages go through `writeback`).
  void write(std::uint64_t inode, std::uint64_t lpn,
             std::span<const std::byte> src, const WritebackFn& writeback);

  /// Inserts a clean page (read fill).
  void fill(std::uint64_t inode, std::uint64_t lpn,
            std::span<const std::byte> src, const WritebackFn& writeback);

  /// Writes back all dirty pages.
  std::size_t flush(const WritebackFn& writeback);

  /// Drops all pages of `inode` (dirty ones are written back first).
  void invalidate_inode(std::uint64_t inode, const WritebackFn& writeback);

  std::size_t resident_pages() const;
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    std::uint64_t inode;
    std::uint64_t lpn;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.inode * 0x9e3779b97f4a7c15ULL;
      h ^= k.lpn + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Page {
    std::vector<std::byte> data;
    bool dirty = false;
    std::list<Key>::iterator lru_it;
  };
  struct Shard {
    mutable sim::AnnotatedMutex mu{"pcache.shard", sim::LockRank::kDriver};
    std::unordered_map<Key, Page, KeyHash> pages GUARDED_BY(mu);
    std::list<Key> lru GUARDED_BY(mu);  // front = most recent
  };

  Shard& shard_for(const Key& k) {
    return shards_[KeyHash{}(k) % shards_.size()];
  }
  void insert_locked(Shard& sh, const Key& k, std::span<const std::byte> src,
                     bool dirty, const WritebackFn& writeback)
      REQUIRES(sh.mu);
  void evict_locked(Shard& sh, const WritebackFn& writeback) REQUIRES(sh.mu);

  std::uint32_t per_shard_capacity_;
  std::uint32_t page_size_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace dpc::cache
