// Pluggable cache-management policies for the DPU control plane.
//
// §3.3 argues that offloading the control plane "enables the flexibility of
// customized cache replacement and prefetching algorithms"; this header is
// that extension point. Two eviction policies (clock-sweep and
// bucket-pressure) and a sequential prefetcher ship with the repo.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/layout.hpp"

namespace dpc::cache {

/// Chooses which clean entries to reclaim. The control plane feeds it the
/// candidate view of the meta area; implementations must not block.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Given the per-entry statuses, appends up to `want` victim entry
  /// indices (clean pages only) to `out`.
  virtual void pick_victims(const std::vector<PageStatus>& status,
                            std::uint32_t want,
                            std::vector<std::uint32_t>& out) = 0;
  virtual const char* name() const = 0;
};

/// Clock sweep: a rotating cursor over the meta area, reclaiming clean
/// pages in scan order — approximates LRU without per-hit bookkeeping,
/// which matters because hits happen on the host without DPU involvement.
class ClockEviction final : public EvictionPolicy {
 public:
  void pick_victims(const std::vector<PageStatus>& status, std::uint32_t want,
                    std::vector<std::uint32_t>& out) override;
  const char* name() const override { return "clock"; }

 private:
  std::uint32_t hand_ = 0;
};

/// Bucket-pressure: reclaims from the buckets with the fewest free entries
/// first, so hash-skewed workloads don't stall on one hot bucket while the
/// rest of the cache is idle.
class BucketPressureEviction final : public EvictionPolicy {
 public:
  explicit BucketPressureEviction(std::uint32_t entries_per_bucket)
      : epb_(entries_per_bucket) {}
  void pick_victims(const std::vector<PageStatus>& status, std::uint32_t want,
                    std::vector<std::uint32_t>& out) override;
  const char* name() const override { return "bucket-pressure"; }

 private:
  std::uint32_t epb_;
};

/// Detects per-inode sequential read streams from the misses the DPU sees
/// and recommends a readahead window (Fig. 8's "actively prefetch data for
/// sequential reads").
class SequentialPrefetcher {
 public:
  explicit SequentialPrefetcher(std::uint32_t max_window = 64,
                                std::size_t tracked_streams = 256);

  struct Advice {
    std::uint64_t start_lpn = 0;
    std::uint32_t pages = 0;  ///< 0 = don't prefetch
  };

  /// Reports a read miss covering `span` pages starting at `lpn` (a single
  /// request is one miss event, however many cache pages it covers).
  /// Returns the pages to prefetch beyond the request.
  Advice on_miss(std::uint64_t inode, std::uint64_t lpn,
                 std::uint32_t span = 1);

  /// Reports a cache-hit consumption (from the host's readahead hint).
  /// When the reader crosses the second half of the prefetched range, the
  /// stream is extended asynchronously — returns the extension window.
  Advice on_hit(std::uint64_t inode, std::uint64_t lpn);

  void reset();

 private:
  struct Stream {
    std::uint64_t next_lpn = 0;
    std::uint32_t run = 0;
    std::uint64_t ahead_end = 0;  ///< exclusive end of the prefetched range
    std::uint32_t window = 0;     ///< last window size
  };
  std::uint32_t max_window_;
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Stream> streams_;
  std::list<std::uint64_t> lru_;  // front = most recent inode
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> pos_;

  void touch(std::uint64_t inode);
};

}  // namespace dpc::cache
