#include "cache/host_plane.hpp"

#include <algorithm>
#include <thread>

#include "sim/check.hpp"
#include "sim/lockrank.hpp"
#include "sim/schedhook.hpp"

namespace {
// Lock-rank key for a PCIe lock word: the word's stable backing address in
// host DRAM — shared with the DPU control plane's hooks.
const void* word_key(dpc::pcie::MemoryRegion& host, std::uint64_t off) {
  return host.bytes(off, sizeof(std::uint32_t)).data();
}
}  // namespace

namespace dpc::cache {

namespace {
constexpr auto kLockNone = static_cast<std::uint32_t>(LockState::kNone);
constexpr auto kLockWrite = static_cast<std::uint32_t>(LockState::kWrite);

// Lock-free read probes before giving up and taking the locks. Retries are
// cheap (a few loads); a small budget rides out a single in-flight writer
// without ever spinning unboundedly against a writer storm.
constexpr int kLockFreeReadAttempts = 4;

// Model-checker aid: under a managed scenario thread the page copy runs in
// two halves with a yield point between them so the checker can schedule a
// concurrent reader/writer into the half-copied window; a single burst copy
// otherwise (the production path is untouched).
void copy_page_in(dpc::pcie::MemoryRegion& host, std::uint64_t off,
                  std::span<const std::byte> src) {
  namespace sh = dpc::sim::schedhook;
  if (sh::managed_thread() && src.size() > 1) {
    const std::size_t half = src.size() / 2;
    host.write(off, src.first(half));
    sh::point("cache.page_copy");
    host.write(off + half, src.subspan(half));
  } else {
    host.write(off, src);
  }
}

void copy_page_out(dpc::pcie::MemoryRegion& host, std::uint64_t off,
                   std::span<std::byte> dst) {
  namespace sh = dpc::sim::schedhook;
  if (sh::managed_thread() && dst.size() > 1) {
    const std::size_t half = dst.size() / 2;
    host.read(off, dst.first(half));
    sh::point("cache.page_copy");
    host.read(off + half, dst.subspan(half));
  } else {
    host.read(off, dst);
  }
}
}  // namespace

HostCachePlane::HostCachePlane(pcie::MemoryRegion& host,
                               const CacheLayout& layout,
                               obs::Registry* registry)
    : host_(&host),
      layout_(&layout),
      owned_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                          : nullptr),
      stats_(registry != nullptr ? *registry : *owned_registry_) {}

void HostCachePlane::lock_bucket(std::uint32_t bucket) {
  sim::schedhook::point("cache.bucket_lock");
  auto word = host_->atomic_u32(layout_->bucket_lock_off(bucket));
  for (;;) {
    std::uint32_t expected = 0;
    if (word.compare_exchange_weak(expected, 1, std::memory_order_acquire)) {
      sim::lockrank::acquire(
          word_key(*host_, layout_->bucket_lock_off(bucket)),
          sim::LockRank::kCacheBucket, "cache.bucket");
      return;
    }
    sim::schedhook::spin("cache.bucket_lock");
    std::this_thread::yield();
  }
}

void HostCachePlane::unlock_bucket(std::uint32_t bucket) {
  sim::schedhook::point("cache.bucket_unlock");
  sim::lockrank::release(word_key(*host_, layout_->bucket_lock_off(bucket)));
  host_->atomic_u32(layout_->bucket_lock_off(bucket))
      .store(0, std::memory_order_release);
}

bool HostCachePlane::try_write_lock(std::uint32_t entry) {
  sim::schedhook::point("cache.entry_write_lock");
  const std::uint64_t off =
      layout_->entry_field_off(entry, CacheLayout::EntryField::kLock);
  auto word = host_->atomic_u32(off);
  std::uint32_t expected = kLockNone;
  if (!word.compare_exchange_strong(expected, kLockWrite,
                                    std::memory_order_acquire)) {
    return false;
  }
  sim::lockrank::acquire(word_key(*host_, off), sim::LockRank::kCacheEntry,
                         "cache.entry");
  return true;
}

void HostCachePlane::write_lock(std::uint32_t entry) {
  while (!try_write_lock(entry)) {
    sim::schedhook::spin("cache.entry_write_lock");
    std::this_thread::yield();
  }
}

void HostCachePlane::write_unlock(std::uint32_t entry) {
  sim::schedhook::point("cache.entry_write_unlock");
  sim::lockrank::release(word_key(
      *host_, layout_->entry_field_off(entry, CacheLayout::EntryField::kLock)));
  host_->atomic_u32(
           layout_->entry_field_off(entry, CacheLayout::EntryField::kLock))
      .store(kLockNone, std::memory_order_release);
}

void HostCachePlane::read_lock(std::uint32_t entry) {
  sim::schedhook::point("cache.entry_read_lock");
  const std::uint64_t off =
      layout_->entry_field_off(entry, CacheLayout::EntryField::kLock);
  auto word = host_->atomic_u32(off);
  for (;;) {
    std::uint32_t cur = word.load(std::memory_order_relaxed);
    bool locked = false;
    if (cur == kLockNone) {
      locked = word.compare_exchange_weak(cur, read_lock_word(1),
                                          std::memory_order_acquire);
    } else if (is_read_locked(cur)) {
      locked = word.compare_exchange_weak(
          cur, read_lock_word(read_lock_holders(cur) + 1),
          std::memory_order_acquire);
    } else {
      sim::schedhook::spin("cache.entry_read_lock");
      std::this_thread::yield();  // write-locked or invalid; wait
    }
    if (locked) {
      sim::lockrank::acquire(word_key(*host_, off),
                             sim::LockRank::kCacheEntry, "cache.entry",
                             /*shared=*/true);
      return;
    }
  }
}

void HostCachePlane::read_unlock(std::uint32_t entry) {
  auto word = host_->atomic_u32(
      layout_->entry_field_off(entry, CacheLayout::EntryField::kLock));
  for (;;) {
    std::uint32_t cur = word.load(std::memory_order_relaxed);
    DPC_CHECK_MSG(is_read_locked(cur), "read_unlock of non-read-locked entry");
    const std::uint32_t holders = read_lock_holders(cur);
    const std::uint32_t next =
        holders <= 1 ? kLockNone : read_lock_word(holders - 1);
    if (word.compare_exchange_weak(cur, next, std::memory_order_release)) {
      sim::lockrank::release(word_key(
          *host_,
          layout_->entry_field_off(entry, CacheLayout::EntryField::kLock)));
      return;
    }
  }
}

void HostCachePlane::seq_write_begin(std::uint32_t entry) {
  sim::schedhook::point("cache.seq_begin");
  auto seq = host_->atomic_u32(
      layout_->entry_field_off(entry, CacheLayout::EntryField::kSeq));
  // Exclusive writer (entry write lock held): a plain bump to odd, then a
  // release fence so no mutation is ordered before the odd mark.
  seq.store(seq.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

void HostCachePlane::seq_write_end(std::uint32_t entry) {
  sim::schedhook::point("cache.seq_end");
  auto seq = host_->atomic_u32(
      layout_->entry_field_off(entry, CacheLayout::EntryField::kSeq));
  // Release store back to even publishes every mutation before it.
  seq.store(seq.load(std::memory_order_relaxed) + 1,
            std::memory_order_release);
}

PageStatus HostCachePlane::status_of(std::uint32_t entry) const {
  return static_cast<PageStatus>(
      host_->atomic_u32(
               layout_->entry_field_off(entry, CacheLayout::EntryField::kStatus))
          .load(std::memory_order_acquire));
}

void HostCachePlane::set_status(std::uint32_t entry, PageStatus s) {
  host_->atomic_u32(
           layout_->entry_field_off(entry, CacheLayout::EntryField::kStatus))
      .store(static_cast<std::uint32_t>(s), std::memory_order_release);
}

std::optional<std::uint32_t> HostCachePlane::find_locked(
    std::uint32_t bucket, std::uint64_t inode, std::uint64_t lpn) const {
  std::uint32_t idx = layout_->bucket_head_entry(bucket);
  while (idx != kEndOfList) {
    if (status_of(idx) != PageStatus::kFree) {
      const auto e_inode = host_->load<std::uint64_t>(
          layout_->entry_field_off(idx, CacheLayout::EntryField::kInode));
      const auto e_lpn = host_->load<std::uint64_t>(
          layout_->entry_field_off(idx, CacheLayout::EntryField::kLpn));
      if (e_inode == inode && e_lpn == lpn) return idx;
    }
    idx = host_->load<std::uint32_t>(
        layout_->entry_field_off(idx, CacheLayout::EntryField::kNext));
  }
  return std::nullopt;
}

std::optional<std::uint32_t> HostCachePlane::find_free_locked(
    std::uint32_t bucket) const {
  std::uint32_t idx = layout_->bucket_head_entry(bucket);
  while (idx != kEndOfList) {
    if (status_of(idx) == PageStatus::kFree) return idx;
    idx = host_->load<std::uint32_t>(
        layout_->entry_field_off(idx, CacheLayout::EntryField::kNext));
  }
  return std::nullopt;
}

void HostCachePlane::post_readahead_hint(std::uint64_t inode,
                                         std::uint64_t lpn) {
  // Relaxed word stores — concurrent readers may interleave pairs; seq
  // bumped last with release so the DPU reads a consistent pair often
  // enough — it is only a hint.
  host_->atomic_u64(layout_->header_field(HeaderOffsets::kRaInode))
      .store(inode, std::memory_order_relaxed);
  host_->atomic_u64(layout_->header_field(HeaderOffsets::kRaLpn))
      .store(lpn, std::memory_order_relaxed);
  host_->atomic_u32(layout_->header_field(HeaderOffsets::kRaSeq))
      .fetch_add(1, std::memory_order_release);
}

HostCachePlane::FastRead HostCachePlane::try_read_lockfree(
    std::uint32_t bucket, std::uint64_t inode, std::uint64_t lpn,
    std::span<std::byte> dst) {
  // The bucket chain is structurally immutable after CacheLayout init
  // (entry i ↔ page i, `next` links set once), so the walk itself needs no
  // bucket lock; only per-entry *contents* can change, and every mutator
  // wraps its changes in the entry's seqlock window.
  std::uint32_t idx = layout_->bucket_head_entry(bucket);
  while (idx != kEndOfList) {
    const auto seq_off =
        layout_->entry_field_off(idx, CacheLayout::EntryField::kSeq);
    sim::schedhook::point("cache.seq_load");
    const std::uint32_t s1 =
        host_->atomic_u32(seq_off).load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) return FastRead::kRetryBlocked;  // writer mid-flight
    const auto st = static_cast<PageStatus>(
        host_->atomic_u32(layout_->entry_field_off(
                              idx, CacheLayout::EntryField::kStatus))
            .load(std::memory_order_acquire));
    const auto e_inode =
        host_->atomic_u64(layout_->entry_field_off(
                              idx, CacheLayout::EntryField::kInode))
            .load(std::memory_order_relaxed);
    const auto e_lpn =
        host_->atomic_u64(layout_->entry_field_off(
                              idx, CacheLayout::EntryField::kLpn))
            .load(std::memory_order_relaxed);
    if (st != PageStatus::kFree && e_inode == inode && e_lpn == lpn) {
      if (st != PageStatus::kClean && st != PageStatus::kDirty) {
        // Claimed but data not yet valid (host write or DPU prefetch is
        // filling it). The locked fallback waits for the fill to finish.
        return FastRead::kRetryBlocked;
      }
      copy_page_out(*host_, layout_->page_off(idx), dst);
      std::atomic_thread_fence(std::memory_order_acquire);
      sim::schedhook::point("cache.seq_recheck");
      const std::uint32_t s2 =
          host_->atomic_u32(seq_off).load(std::memory_order_relaxed);
      if (s2 != s1) return FastRead::kRetry;  // torn copy — discard
      return FastRead::kHit;
    }
    // Non-matching entry: the identity words may themselves have torn
    // under a concurrent claim; trust the no-match verdict only if the
    // entry stayed stable across the reads.
    std::atomic_thread_fence(std::memory_order_acquire);
    sim::schedhook::point("cache.seq_recheck");
    if (host_->atomic_u32(seq_off).load(std::memory_order_relaxed) != s1)
      return FastRead::kRetry;
    idx = host_->load<std::uint32_t>(
        layout_->entry_field_off(idx, CacheLayout::EntryField::kNext));
  }
  return FastRead::kMiss;
}

bool HostCachePlane::read(std::uint64_t inode, std::uint64_t lpn,
                          std::span<std::byte> dst) {
  DPC_CHECK(dst.size() <= layout_->geometry().page_size);
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  // dpc-lint: lockfree-begin(cache-read)
  for (int attempt = 0; attempt < kLockFreeReadAttempts; ++attempt) {
    const FastRead r = try_read_lockfree(bucket, inode, lpn, dst);
    if (r == FastRead::kHit) {
      stats_.read_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.lockfree_hits.fetch_add(1, std::memory_order_relaxed);
      post_readahead_hint(inode, lpn);
      return true;
    }
    if (r == FastRead::kMiss) {
      stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stats_.seqlock_retries.fetch_add(1, std::memory_order_relaxed);
    if (r == FastRead::kRetryBlocked) {
      // Futile until the mid-flight writer or filler moves: a blocked
      // point, so the checker runs someone else before the re-probe.
      sim::schedhook::spin("cache.read_wait");
    } else {
      // The seq word moved under the probe; the writer may already be
      // done, so the immediate re-probe can succeed — a decision point.
      sim::schedhook::point("cache.read_retry");
    }
    std::this_thread::yield();
  }
  // dpc-lint: lockfree-end(cache-read)
  // Writer churn kept the probe unstable — take the locks and wait it out.
  stats_.locked_fallbacks.fetch_add(1, std::memory_order_relaxed);
  lock_bucket(bucket);
  const auto found = find_locked(bucket, inode, lpn);
  if (!found) {
    unlock_bucket(bucket);
    stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint32_t entry = *found;
  // Take the page lock before dropping the bucket lock so an evictor can't
  // free the entry between the find and the copy.
  read_lock(entry);
  unlock_bucket(bucket);
  const PageStatus st = status_of(entry);
  if (st != PageStatus::kClean && st != PageStatus::kDirty) {
    read_unlock(entry);
    stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  host_->read(layout_->page_off(entry), dst);
  read_unlock(entry);
  stats_.read_hits.fetch_add(1, std::memory_order_relaxed);
  post_readahead_hint(inode, lpn);
  return true;
}

HostCachePlane::WriteResult HostCachePlane::write(
    std::uint64_t inode, std::uint64_t lpn, std::span<const std::byte> src) {
  DPC_CHECK(src.size() <= layout_->geometry().page_size);
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);

  std::uint32_t entry;
  bool fresh = false;
  if (const auto found = find_locked(bucket, inode, lpn)) {
    entry = *found;
    write_lock(entry);  // §3.3: lock atomically before touching the page
    seq_write_begin(entry);
  } else if (const auto free_entry = find_free_locked(bucket)) {
    entry = *free_entry;
    write_lock(entry);
    if (status_of(entry) != PageStatus::kFree) {
      // Lost a race with a DPU prefetch that claimed the entry; retry via
      // the normal miss path.
      write_unlock(entry);
      unlock_bucket(bucket);
      return write(inode, lpn, src);
    }
    fresh = true;
    seq_write_begin(entry);
    host_->atomic_u64(
             layout_->entry_field_off(entry, CacheLayout::EntryField::kInode))
        .store(inode, std::memory_order_relaxed);
    host_->atomic_u64(
             layout_->entry_field_off(entry, CacheLayout::EntryField::kLpn))
        .store(lpn, std::memory_order_relaxed);
    set_status(entry, PageStatus::kInvalid);  // claimed, data not yet valid
  } else {
    // No free entry in this bucket: raise the need-evict flag for the DPU
    // ("host notifies the DPU to perform cache replacement").
    host_->atomic_u32(layout_->header_field(HeaderOffsets::kNeedEvict))
        .store(1, std::memory_order_release);
    unlock_bucket(bucket);
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    return WriteResult::kNoFreeEntry;
  }
  unlock_bucket(bucket);

  // DPC_CHECK_MUTATE cache-seq-publish: publish the even (stable) sequence
  // *before* copying the page — the torn window the seqlock exists to close.
  // dpc_check arms this and must observe a reader with inconsistent halves.
  const bool mutate_publish = sim::schedhook::mutate("cache-seq-publish");
  if (mutate_publish) seq_write_end(entry);
  copy_page_in(*host_, layout_->page_off(entry), src);
  // Pad the remainder of a partial page write with zeros so flushes are
  // whole-page.
  if (src.size() < layout_->geometry().page_size) {
    host_->fill_bytes(layout_->page_off(entry) + src.size(),
                      layout_->geometry().page_size - src.size(),
                      std::byte{0});
  }
  const PageStatus prev = status_of(entry);  // stable: we hold the lock
  set_status(entry, PageStatus::kDirty);
  if (prev != PageStatus::kDirty) {
    host_->atomic_u32(layout_->header_field(HeaderOffsets::kDirty))
        .fetch_add(1, std::memory_order_acq_rel);
  }
  if (!mutate_publish) seq_write_end(entry);
  write_unlock(entry);
  if (fresh) {
    host_->atomic_u32(layout_->header_field(HeaderOffsets::kFree))
        .fetch_sub(1, std::memory_order_acq_rel);
  }
  stats_.writes_cached.fetch_add(1, std::memory_order_relaxed);
  return WriteResult::kOk;
}

void HostCachePlane::fill_clean(std::uint64_t inode, std::uint64_t lpn,
                                std::span<const std::byte> src) {
  DPC_CHECK(src.size() <= layout_->geometry().page_size);
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);
  if (find_locked(bucket, inode, lpn)) {
    unlock_bucket(bucket);  // already cached (maybe dirtier) — keep it
    return;
  }
  const auto free_entry = find_free_locked(bucket);
  if (!free_entry) {
    unlock_bucket(bucket);
    return;  // opportunistic: no eviction pressure for clean fills
  }
  const std::uint32_t entry = *free_entry;
  write_lock(entry);
  if (status_of(entry) != PageStatus::kFree) {
    write_unlock(entry);
    unlock_bucket(bucket);
    return;
  }
  seq_write_begin(entry);
  host_->atomic_u64(
           layout_->entry_field_off(entry, CacheLayout::EntryField::kInode))
      .store(inode, std::memory_order_relaxed);
  host_->atomic_u64(
           layout_->entry_field_off(entry, CacheLayout::EntryField::kLpn))
      .store(lpn, std::memory_order_relaxed);
  set_status(entry, PageStatus::kInvalid);
  unlock_bucket(bucket);

  copy_page_in(*host_, layout_->page_off(entry), src);
  if (src.size() < layout_->geometry().page_size) {
    host_->fill_bytes(layout_->page_off(entry) + src.size(),
                      layout_->geometry().page_size - src.size(),
                      std::byte{0});
  }
  set_status(entry, PageStatus::kClean);
  seq_write_end(entry);
  write_unlock(entry);
  host_->atomic_u32(layout_->header_field(HeaderOffsets::kFree))
      .fetch_sub(1, std::memory_order_acq_rel);
}

bool HostCachePlane::invalidate(std::uint64_t inode, std::uint64_t lpn) {
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);
  const auto found = find_locked(bucket, inode, lpn);
  if (!found) {
    unlock_bucket(bucket);
    return false;
  }
  const std::uint32_t entry = *found;
  write_lock(entry);
  unlock_bucket(bucket);
  const PageStatus prev = status_of(entry);
  seq_write_begin(entry);
  set_status(entry, PageStatus::kFree);
  seq_write_end(entry);
  write_unlock(entry);
  host_->atomic_u32(layout_->header_field(HeaderOffsets::kFree))
      .fetch_add(1, std::memory_order_acq_rel);
  if (prev == PageStatus::kDirty) {
    host_->atomic_u32(layout_->header_field(HeaderOffsets::kDirty))
        .fetch_sub(1, std::memory_order_acq_rel);
  }
  return true;
}

void HostCachePlane::zero_tail(std::uint64_t inode, std::uint64_t lpn,
                               std::uint32_t from) {
  const std::uint32_t page = layout_->geometry().page_size;
  DPC_CHECK(from < page);
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);
  const auto found = find_locked(bucket, inode, lpn);
  if (!found) {
    unlock_bucket(bucket);
    return;
  }
  const std::uint32_t entry = *found;
  write_lock(entry);
  unlock_bucket(bucket);
  const PageStatus st = status_of(entry);
  if (st == PageStatus::kClean || st == PageStatus::kDirty) {
    seq_write_begin(entry);
    host_->fill_bytes(layout_->page_off(entry) + from, page - from,
                      std::byte{0});
    seq_write_end(entry);
  }
  write_unlock(entry);
}

std::uint32_t HostCachePlane::invalidate_above(std::uint64_t inode,
                                               std::uint64_t first_lpn) {
  std::uint32_t freed = 0;
  const std::uint32_t total = layout_->geometry().total_pages;
  for (std::uint32_t i = 0; i < total; ++i) {
    if (status_of(i) == PageStatus::kFree) continue;
    const auto e_inode = host_->load<std::uint64_t>(
        layout_->entry_field_off(i, CacheLayout::EntryField::kInode));
    if (e_inode != inode) continue;
    const auto e_lpn = host_->load<std::uint64_t>(
        layout_->entry_field_off(i, CacheLayout::EntryField::kLpn));
    if (e_lpn < first_lpn) continue;
    if (invalidate(inode, e_lpn)) ++freed;
  }
  return freed;
}

std::uint32_t HostCachePlane::free_pages() const {
  return host_->atomic_u32(layout_->header_field(HeaderOffsets::kFree))
      .load(std::memory_order_acquire);
}

}  // namespace dpc::cache
