#include "cache/host_plane.hpp"

#include <algorithm>
#include <thread>

#include "sim/check.hpp"
#include "sim/lockrank.hpp"

namespace {
// Lock-rank key for a PCIe lock word: the word's stable backing address in
// host DRAM — shared with the DPU control plane's hooks.
const void* word_key(dpc::pcie::MemoryRegion& host, std::uint64_t off) {
  return host.bytes(off, sizeof(std::uint32_t)).data();
}
}  // namespace

namespace dpc::cache {

namespace {
constexpr auto kLockNone = static_cast<std::uint32_t>(LockState::kNone);
constexpr auto kLockWrite = static_cast<std::uint32_t>(LockState::kWrite);
}  // namespace

HostCachePlane::HostCachePlane(pcie::MemoryRegion& host,
                               const CacheLayout& layout,
                               obs::Registry* registry)
    : host_(&host),
      layout_(&layout),
      owned_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                          : nullptr),
      stats_(registry != nullptr ? *registry : *owned_registry_) {}

void HostCachePlane::lock_bucket(std::uint32_t bucket) {
  auto word = host_->atomic_u32(layout_->bucket_lock_off(bucket));
  for (;;) {
    std::uint32_t expected = 0;
    if (word.compare_exchange_weak(expected, 1, std::memory_order_acquire)) {
      sim::lockrank::acquire(
          word_key(*host_, layout_->bucket_lock_off(bucket)),
          sim::LockRank::kCacheBucket, "cache.bucket");
      return;
    }
    std::this_thread::yield();
  }
}

void HostCachePlane::unlock_bucket(std::uint32_t bucket) {
  sim::lockrank::release(word_key(*host_, layout_->bucket_lock_off(bucket)));
  host_->atomic_u32(layout_->bucket_lock_off(bucket))
      .store(0, std::memory_order_release);
}

bool HostCachePlane::try_write_lock(std::uint32_t entry) {
  const std::uint64_t off =
      layout_->entry_field_off(entry, CacheLayout::EntryField::kLock);
  auto word = host_->atomic_u32(off);
  std::uint32_t expected = kLockNone;
  if (!word.compare_exchange_strong(expected, kLockWrite,
                                    std::memory_order_acquire)) {
    return false;
  }
  sim::lockrank::acquire(word_key(*host_, off), sim::LockRank::kCacheEntry,
                         "cache.entry");
  return true;
}

void HostCachePlane::write_lock(std::uint32_t entry) {
  while (!try_write_lock(entry)) std::this_thread::yield();
}

void HostCachePlane::write_unlock(std::uint32_t entry) {
  sim::lockrank::release(word_key(
      *host_, layout_->entry_field_off(entry, CacheLayout::EntryField::kLock)));
  host_->atomic_u32(
           layout_->entry_field_off(entry, CacheLayout::EntryField::kLock))
      .store(kLockNone, std::memory_order_release);
}

void HostCachePlane::read_lock(std::uint32_t entry) {
  const std::uint64_t off =
      layout_->entry_field_off(entry, CacheLayout::EntryField::kLock);
  auto word = host_->atomic_u32(off);
  for (;;) {
    std::uint32_t cur = word.load(std::memory_order_relaxed);
    bool locked = false;
    if (cur == kLockNone) {
      locked = word.compare_exchange_weak(cur, read_lock_word(1),
                                          std::memory_order_acquire);
    } else if (is_read_locked(cur)) {
      locked = word.compare_exchange_weak(
          cur, read_lock_word(read_lock_holders(cur) + 1),
          std::memory_order_acquire);
    } else {
      std::this_thread::yield();  // write-locked or invalid; wait
    }
    if (locked) {
      sim::lockrank::acquire(word_key(*host_, off),
                             sim::LockRank::kCacheEntry, "cache.entry",
                             /*shared=*/true);
      return;
    }
  }
}

void HostCachePlane::read_unlock(std::uint32_t entry) {
  auto word = host_->atomic_u32(
      layout_->entry_field_off(entry, CacheLayout::EntryField::kLock));
  for (;;) {
    std::uint32_t cur = word.load(std::memory_order_relaxed);
    DPC_CHECK_MSG(is_read_locked(cur), "read_unlock of non-read-locked entry");
    const std::uint32_t holders = read_lock_holders(cur);
    const std::uint32_t next =
        holders <= 1 ? kLockNone : read_lock_word(holders - 1);
    if (word.compare_exchange_weak(cur, next, std::memory_order_release)) {
      sim::lockrank::release(word_key(
          *host_,
          layout_->entry_field_off(entry, CacheLayout::EntryField::kLock)));
      return;
    }
  }
}

PageStatus HostCachePlane::status_of(std::uint32_t entry) const {
  return static_cast<PageStatus>(
      host_->atomic_u32(
               layout_->entry_field_off(entry, CacheLayout::EntryField::kStatus))
          .load(std::memory_order_acquire));
}

void HostCachePlane::set_status(std::uint32_t entry, PageStatus s) {
  host_->atomic_u32(
           layout_->entry_field_off(entry, CacheLayout::EntryField::kStatus))
      .store(static_cast<std::uint32_t>(s), std::memory_order_release);
}

std::optional<std::uint32_t> HostCachePlane::find_locked(
    std::uint32_t bucket, std::uint64_t inode, std::uint64_t lpn) const {
  std::uint32_t idx = layout_->bucket_head_entry(bucket);
  while (idx != kEndOfList) {
    if (status_of(idx) != PageStatus::kFree) {
      const auto e_inode = host_->load<std::uint64_t>(
          layout_->entry_field_off(idx, CacheLayout::EntryField::kInode));
      const auto e_lpn = host_->load<std::uint64_t>(
          layout_->entry_field_off(idx, CacheLayout::EntryField::kLpn));
      if (e_inode == inode && e_lpn == lpn) return idx;
    }
    idx = host_->load<std::uint32_t>(
        layout_->entry_field_off(idx, CacheLayout::EntryField::kNext));
  }
  return std::nullopt;
}

std::optional<std::uint32_t> HostCachePlane::find_free_locked(
    std::uint32_t bucket) const {
  std::uint32_t idx = layout_->bucket_head_entry(bucket);
  while (idx != kEndOfList) {
    if (status_of(idx) == PageStatus::kFree) return idx;
    idx = host_->load<std::uint32_t>(
        layout_->entry_field_off(idx, CacheLayout::EntryField::kNext));
  }
  return std::nullopt;
}

bool HostCachePlane::read(std::uint64_t inode, std::uint64_t lpn,
                          std::span<std::byte> dst) {
  DPC_CHECK(dst.size() <= layout_->geometry().page_size);
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);
  const auto found = find_locked(bucket, inode, lpn);
  if (!found) {
    unlock_bucket(bucket);
    stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint32_t entry = *found;
  // Take the page lock before dropping the bucket lock so an evictor can't
  // free the entry between the find and the copy.
  read_lock(entry);
  unlock_bucket(bucket);
  const PageStatus st = status_of(entry);
  if (st != PageStatus::kClean && st != PageStatus::kDirty) {
    read_unlock(entry);
    stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  host_->read(layout_->page_off(entry), dst);
  read_unlock(entry);
  stats_.read_hits.fetch_add(1, std::memory_order_relaxed);
  // Post the readahead hint (relaxed word stores — concurrent readers may
  // interleave pairs; seq bumped last with release so the DPU reads a
  // consistent pair often enough — it is only a hint).
  host_->atomic_u64(layout_->header_field(HeaderOffsets::kRaInode))
      .store(inode, std::memory_order_relaxed);
  host_->atomic_u64(layout_->header_field(HeaderOffsets::kRaLpn))
      .store(lpn, std::memory_order_relaxed);
  host_->atomic_u32(layout_->header_field(HeaderOffsets::kRaSeq))
      .fetch_add(1, std::memory_order_release);
  return true;
}

HostCachePlane::WriteResult HostCachePlane::write(
    std::uint64_t inode, std::uint64_t lpn, std::span<const std::byte> src) {
  DPC_CHECK(src.size() <= layout_->geometry().page_size);
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);

  std::uint32_t entry;
  bool fresh = false;
  if (const auto found = find_locked(bucket, inode, lpn)) {
    entry = *found;
    write_lock(entry);  // §3.3: lock atomically before touching the page
  } else if (const auto free_entry = find_free_locked(bucket)) {
    entry = *free_entry;
    write_lock(entry);
    if (status_of(entry) != PageStatus::kFree) {
      // Lost a race with a DPU prefetch that claimed the entry; retry via
      // the normal miss path.
      write_unlock(entry);
      unlock_bucket(bucket);
      return write(inode, lpn, src);
    }
    fresh = true;
    host_->store<std::uint64_t>(
        layout_->entry_field_off(entry, CacheLayout::EntryField::kInode),
        inode);
    host_->store<std::uint64_t>(
        layout_->entry_field_off(entry, CacheLayout::EntryField::kLpn), lpn);
    set_status(entry, PageStatus::kInvalid);  // claimed, data not yet valid
  } else {
    // No free entry in this bucket: raise the need-evict flag for the DPU
    // ("host notifies the DPU to perform cache replacement").
    host_->atomic_u32(layout_->header_field(HeaderOffsets::kNeedEvict))
        .store(1, std::memory_order_release);
    unlock_bucket(bucket);
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    return WriteResult::kNoFreeEntry;
  }
  unlock_bucket(bucket);

  host_->write(layout_->page_off(entry), src);
  // Pad the remainder of a partial page write with zeros so flushes are
  // whole-page.
  if (src.size() < layout_->geometry().page_size) {
    auto rest = host_->bytes(layout_->page_off(entry) + src.size(),
                             layout_->geometry().page_size - src.size());
    std::fill(rest.begin(), rest.end(), std::byte{0});
  }
  const PageStatus prev = status_of(entry);  // stable: we hold the lock
  set_status(entry, PageStatus::kDirty);
  if (prev != PageStatus::kDirty) {
    host_->atomic_u32(layout_->header_field(HeaderOffsets::kDirty))
        .fetch_add(1, std::memory_order_acq_rel);
  }
  write_unlock(entry);
  if (fresh) {
    host_->atomic_u32(layout_->header_field(HeaderOffsets::kFree))
        .fetch_sub(1, std::memory_order_acq_rel);
  }
  stats_.writes_cached.fetch_add(1, std::memory_order_relaxed);
  return WriteResult::kOk;
}

void HostCachePlane::fill_clean(std::uint64_t inode, std::uint64_t lpn,
                                std::span<const std::byte> src) {
  DPC_CHECK(src.size() <= layout_->geometry().page_size);
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);
  if (find_locked(bucket, inode, lpn)) {
    unlock_bucket(bucket);  // already cached (maybe dirtier) — keep it
    return;
  }
  const auto free_entry = find_free_locked(bucket);
  if (!free_entry) {
    unlock_bucket(bucket);
    return;  // opportunistic: no eviction pressure for clean fills
  }
  const std::uint32_t entry = *free_entry;
  write_lock(entry);
  if (status_of(entry) != PageStatus::kFree) {
    write_unlock(entry);
    unlock_bucket(bucket);
    return;
  }
  host_->store<std::uint64_t>(
      layout_->entry_field_off(entry, CacheLayout::EntryField::kInode), inode);
  host_->store<std::uint64_t>(
      layout_->entry_field_off(entry, CacheLayout::EntryField::kLpn), lpn);
  set_status(entry, PageStatus::kInvalid);
  unlock_bucket(bucket);

  host_->write(layout_->page_off(entry), src);
  if (src.size() < layout_->geometry().page_size) {
    auto rest = host_->bytes(layout_->page_off(entry) + src.size(),
                             layout_->geometry().page_size - src.size());
    std::fill(rest.begin(), rest.end(), std::byte{0});
  }
  set_status(entry, PageStatus::kClean);
  write_unlock(entry);
  host_->atomic_u32(layout_->header_field(HeaderOffsets::kFree))
      .fetch_sub(1, std::memory_order_acq_rel);
}

bool HostCachePlane::invalidate(std::uint64_t inode, std::uint64_t lpn) {
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);
  const auto found = find_locked(bucket, inode, lpn);
  if (!found) {
    unlock_bucket(bucket);
    return false;
  }
  const std::uint32_t entry = *found;
  write_lock(entry);
  unlock_bucket(bucket);
  const PageStatus prev = status_of(entry);
  set_status(entry, PageStatus::kFree);
  write_unlock(entry);
  host_->atomic_u32(layout_->header_field(HeaderOffsets::kFree))
      .fetch_add(1, std::memory_order_acq_rel);
  if (prev == PageStatus::kDirty) {
    host_->atomic_u32(layout_->header_field(HeaderOffsets::kDirty))
        .fetch_sub(1, std::memory_order_acq_rel);
  }
  return true;
}

void HostCachePlane::zero_tail(std::uint64_t inode, std::uint64_t lpn,
                               std::uint32_t from) {
  const std::uint32_t page = layout_->geometry().page_size;
  DPC_CHECK(from < page);
  const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
  lock_bucket(bucket);
  const auto found = find_locked(bucket, inode, lpn);
  if (!found) {
    unlock_bucket(bucket);
    return;
  }
  const std::uint32_t entry = *found;
  write_lock(entry);
  unlock_bucket(bucket);
  const PageStatus st = status_of(entry);
  if (st == PageStatus::kClean || st == PageStatus::kDirty) {
    auto tail = host_->bytes(layout_->page_off(entry) + from, page - from);
    std::fill(tail.begin(), tail.end(), std::byte{0});
  }
  write_unlock(entry);
}

std::uint32_t HostCachePlane::invalidate_above(std::uint64_t inode,
                                               std::uint64_t first_lpn) {
  std::uint32_t freed = 0;
  const std::uint32_t total = layout_->geometry().total_pages;
  for (std::uint32_t i = 0; i < total; ++i) {
    if (status_of(i) == PageStatus::kFree) continue;
    const auto e_inode = host_->load<std::uint64_t>(
        layout_->entry_field_off(i, CacheLayout::EntryField::kInode));
    if (e_inode != inode) continue;
    const auto e_lpn = host_->load<std::uint64_t>(
        layout_->entry_field_off(i, CacheLayout::EntryField::kLpn));
    if (e_lpn < first_lpn) continue;
    if (invalidate(inode, e_lpn)) ++freed;
  }
  return freed;
}

std::uint32_t HostCachePlane::free_pages() const {
  return host_->atomic_u32(layout_->header_field(HeaderOffsets::kFree))
      .load(std::memory_order_acquire);
}

}  // namespace dpc::cache
