#include "cache/page_cache.hpp"

#include <algorithm>
#include <cstring>

#include "sim/check.hpp"

namespace dpc::cache {

PageCache::PageCache(std::uint32_t capacity_pages, std::uint32_t page_size,
                     int shards)
    : per_shard_capacity_(
          std::max(1u, capacity_pages / static_cast<std::uint32_t>(shards))),
      page_size_(page_size),
      shards_(static_cast<std::size_t>(shards)) {
  DPC_CHECK(capacity_pages >= 1 && page_size >= 512 && shards >= 1);
}

bool PageCache::read(std::uint64_t inode, std::uint64_t lpn,
                     std::span<std::byte> dst) {
  DPC_CHECK(dst.size() <= page_size_);
  const Key k{inode, lpn};
  Shard& sh = shard_for(k);
  sim::LockGuard lock(sh.mu);
  const auto it = sh.pages.find(k);
  if (it == sh.pages.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::memcpy(dst.data(), it->second.data.data(), dst.size());
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second.lru_it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PageCache::insert_locked(Shard& sh, const Key& k,
                              std::span<const std::byte> src, bool dirty,
                              const WritebackFn& writeback) {
  auto it = sh.pages.find(k);
  if (it == sh.pages.end()) {
    while (sh.pages.size() >= per_shard_capacity_)
      evict_locked(sh, writeback);
    sh.lru.push_front(k);
    Page p;
    p.data.assign(page_size_, std::byte{0});
    p.lru_it = sh.lru.begin();
    it = sh.pages.emplace(k, std::move(p)).first;
  } else {
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second.lru_it);
  }
  std::memcpy(it->second.data.data(), src.data(), src.size());
  it->second.dirty = it->second.dirty || dirty;
}

void PageCache::evict_locked(Shard& sh, const WritebackFn& writeback) {
  DPC_CHECK(!sh.lru.empty());
  const Key victim = sh.lru.back();
  auto it = sh.pages.find(victim);
  DPC_CHECK(it != sh.pages.end());
  if (it->second.dirty) {
    DPC_CHECK_MSG(writeback != nullptr, "evicting dirty page needs writeback");
    writeback(victim.inode, victim.lpn, it->second.data);
  }
  sh.lru.pop_back();
  sh.pages.erase(it);
}

void PageCache::write(std::uint64_t inode, std::uint64_t lpn,
                      std::span<const std::byte> src,
                      const WritebackFn& writeback) {
  DPC_CHECK(src.size() <= page_size_);
  const Key k{inode, lpn};
  Shard& sh = shard_for(k);
  sim::LockGuard lock(sh.mu);
  insert_locked(sh, k, src, /*dirty=*/true, writeback);
}

void PageCache::fill(std::uint64_t inode, std::uint64_t lpn,
                     std::span<const std::byte> src,
                     const WritebackFn& writeback) {
  DPC_CHECK(src.size() <= page_size_);
  const Key k{inode, lpn};
  Shard& sh = shard_for(k);
  sim::LockGuard lock(sh.mu);
  if (sh.pages.contains(k)) return;  // don't clobber a dirtier copy
  insert_locked(sh, k, src, /*dirty=*/false, writeback);
}

std::size_t PageCache::flush(const WritebackFn& writeback) {
  DPC_CHECK(writeback != nullptr);
  std::size_t flushed = 0;
  for (auto& sh : shards_) {
    sim::LockGuard lock(sh.mu);
    for (auto& [k, p] : sh.pages) {
      if (!p.dirty) continue;
      writeback(k.inode, k.lpn, p.data);
      p.dirty = false;
      ++flushed;
    }
  }
  return flushed;
}

void PageCache::invalidate_inode(std::uint64_t inode,
                                 const WritebackFn& writeback) {
  for (auto& sh : shards_) {
    sim::LockGuard lock(sh.mu);
    for (auto it = sh.pages.begin(); it != sh.pages.end();) {
      if (it->first.inode != inode) {
        ++it;
        continue;
      }
      if (it->second.dirty) {
        DPC_CHECK(writeback != nullptr);
        writeback(it->first.inode, it->first.lpn, it->second.data);
      }
      sh.lru.erase(it->second.lru_it);
      it = sh.pages.erase(it);
    }
  }
}

std::size_t PageCache::resident_pages() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    sim::LockGuard lock(sh.mu);
    n += sh.pages.size();
  }
  return n;
}

}  // namespace dpc::cache
