#include "cache/policy.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace dpc::cache {

void ClockEviction::pick_victims(const std::vector<PageStatus>& status,
                                 std::uint32_t want,
                                 std::vector<std::uint32_t>& out) {
  const auto n = static_cast<std::uint32_t>(status.size());
  if (n == 0) return;
  if (hand_ >= n) hand_ = 0;
  std::uint32_t scanned = 0;
  while (want > 0 && scanned < n) {
    if (status[hand_] == PageStatus::kClean) {
      out.push_back(hand_);
      --want;
    }
    hand_ = (hand_ + 1) % n;
    ++scanned;
  }
}

void BucketPressureEviction::pick_victims(
    const std::vector<PageStatus>& status, std::uint32_t want,
    std::vector<std::uint32_t>& out) {
  DPC_CHECK(epb_ >= 1);
  const auto n = static_cast<std::uint32_t>(status.size());
  const std::uint32_t buckets = n / epb_;
  // Score each bucket by its free-entry count (ascending = most pressured).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> score;  // (free, b)
  score.reserve(buckets);
  for (std::uint32_t b = 0; b < buckets; ++b) {
    std::uint32_t free = 0;
    for (std::uint32_t i = b * epb_; i < (b + 1) * epb_; ++i)
      if (status[i] == PageStatus::kFree) ++free;
    score.emplace_back(free, b);
  }
  std::sort(score.begin(), score.end());
  for (const auto& [free, b] : score) {
    if (want == 0) break;
    for (std::uint32_t i = b * epb_; i < (b + 1) * epb_ && want > 0; ++i) {
      if (status[i] == PageStatus::kClean) {
        out.push_back(i);
        --want;
      }
    }
  }
}

SequentialPrefetcher::SequentialPrefetcher(std::uint32_t max_window,
                                           std::size_t tracked_streams)
    : max_window_(max_window), capacity_(tracked_streams) {
  DPC_CHECK(max_window >= 1 && tracked_streams >= 1);
}

void SequentialPrefetcher::touch(std::uint64_t inode) {
  if (const auto it = pos_.find(inode); it != pos_.end()) {
    lru_.erase(it->second);
  } else if (lru_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    pos_.erase(victim);
    streams_.erase(victim);
  }
  lru_.push_front(inode);
  pos_[inode] = lru_.begin();
}

SequentialPrefetcher::Advice SequentialPrefetcher::on_miss(
    std::uint64_t inode, std::uint64_t lpn, std::uint32_t span) {
  if (span == 0) span = 1;
  touch(inode);
  Stream& s = streams_[inode];
  // Pages at or before the stream's expected position were already covered
  // by earlier advice (e.g. a straggling miss inside an advised window) —
  // ignore them instead of resetting the run.
  if (s.run > 0 && lpn < s.next_lpn &&
      s.next_lpn - lpn <= 2ull * max_window_) {
    return {};
  }
  if (s.run > 0 && lpn == s.next_lpn) {
    ++s.run;
  } else {
    s.run = 1;
  }

  if (s.run < 2) {
    s.next_lpn = lpn + span;
    return {};  // not yet sequential
  }
  // Exponential ramp-up capped at the window, like the kernel's readahead.
  const std::uint32_t window =
      std::min<std::uint32_t>(max_window_, 1u << std::min(s.run, 24u));
  // The advised pages will be *hits* (they never reach the prefetcher), so
  // the stream's next expected miss is the first page past the window.
  s.next_lpn = lpn + span + window;
  s.ahead_end = s.next_lpn;
  s.window = window;
  return {lpn + span, window};
}

SequentialPrefetcher::Advice SequentialPrefetcher::on_hit(
    std::uint64_t inode, std::uint64_t lpn) {
  const auto it = streams_.find(inode);
  if (it == streams_.end()) return {};
  Stream& s = it->second;
  if (s.window == 0 || lpn >= s.ahead_end) return {};
  // Async extension once the reader enters the trailing half of the
  // prefetched range (the kernel-readahead "marker page" rule).
  if (s.ahead_end - lpn > s.window / 2 + 1) return {};
  const std::uint32_t window = std::min(max_window_, s.window * 2);
  const Advice advice{s.ahead_end, window};
  s.ahead_end += window;
  s.next_lpn = s.ahead_end;
  s.window = window;
  return advice;
}

void SequentialPrefetcher::reset() {
  streams_.clear();
  lru_.clear();
  pos_.clear();
}

}  // namespace dpc::cache
