// Backing store interface for the hybrid cache's DPU control plane: where
// flushed dirty pages go and where prefetched pages come from. Implemented
// by KVFS (big-file KV pages), the DFS client (data servers), and by test
// fakes.
#pragma once

#include <cstdint>
#include <span>

#include "sim/time.hpp"

namespace dpc::cache {

class CacheBackend {
 public:
  virtual ~CacheBackend() = default;

  /// Fills `dst` with the page's bytes; returns false if the page does not
  /// exist in the backend (prefetch then skips it). Adds the backend's
  /// modelled latency to `cost` — the caller charges it to whichever op
  /// (or background pass) waited on the fetch.
  virtual bool read_page(std::uint64_t inode, std::uint64_t lpn,
                         std::span<std::byte> dst, sim::Nanos& cost) = 0;

  /// Persists one page (called by the flusher with the page read-locked, so
  /// the content is stable for the duration). Returns false on a transient
  /// backend failure — the flusher keeps the page dirty and retries on a
  /// later pass instead of dropping the data. Adds the backend's modelled
  /// write latency to `cost`: a synchronous flush (fsync's fallback rung)
  /// genuinely waits for this write, so under-charging it here would make
  /// the sync path look artificially close to the NVM-log fast path.
  virtual bool write_page(std::uint64_t inode, std::uint64_t lpn,
                          std::span<const std::byte> src,
                          sim::Nanos& cost) = 0;
};

}  // namespace dpc::cache
