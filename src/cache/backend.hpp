// Backing store interface for the hybrid cache's DPU control plane: where
// flushed dirty pages go and where prefetched pages come from. Implemented
// by KVFS (big-file KV pages), the DFS client (data servers), and by test
// fakes.
#pragma once

#include <cstdint>
#include <span>

namespace dpc::cache {

class CacheBackend {
 public:
  virtual ~CacheBackend() = default;

  /// Fills `dst` with the page's bytes; returns false if the page does not
  /// exist in the backend (prefetch then skips it).
  virtual bool read_page(std::uint64_t inode, std::uint64_t lpn,
                         std::span<std::byte> dst) = 0;

  /// Persists one page (called by the flusher with the page read-locked, so
  /// the content is stable for the duration). Returns false on a transient
  /// backend failure — the flusher keeps the page dirty and retries on a
  /// later pass instead of dropping the data.
  virtual bool write_page(std::uint64_t inode, std::uint64_t lpn,
                          std::span<const std::byte> src) = 0;
};

}  // namespace dpc::cache
