#include "cache/control_plane.hpp"

#include "dpu/compress.hpp"
#include "dpu/qos.hpp"
#include "ec/crc32c.hpp"
#include "nvm/wal.hpp"
#include "sim/check.hpp"
#include "sim/lockrank.hpp"

namespace {
// Lock-rank key for a PCIe lock word: the word's stable backing address in
// host DRAM — shared with the host plane's hooks, so cross-plane ordering
// bugs land in one graph.
const void* word_key(dpc::pcie::MemoryRegion& host, std::uint64_t off) {
  return host.bytes(off, sizeof(std::uint32_t)).data();
}

// Drops the thread's lock-rank record for a PCIe lock word if the pass
// unwinds on a CrashException: the lock *word* deliberately stays set in
// host DRAM (rebuild() clears it after the restart), but the surviving
// thread no longer logically holds it and must not be blamed for the dead
// DPU core's lock on its next acquisition. On the normal path the unlock
// helper has already released the record, making the destructor's second
// release a tolerated no-op.
struct ReleaseRecordOnUnwind {
  const void* key;
  ~ReleaseRecordOnUnwind() { dpc::sim::lockrank::release(key); }
};
}  // namespace

namespace dpc::cache {

namespace {
constexpr auto kLockNone = static_cast<std::uint32_t>(LockState::kNone);
constexpr auto kLockWrite = static_cast<std::uint32_t>(LockState::kWrite);
}  // namespace

DpuCacheControl::DpuCacheControl(pcie::DmaEngine& dma,
                                 const CacheLayout& layout,
                                 CacheBackend& backend,
                                 std::unique_ptr<EvictionPolicy> policy,
                                 const ControlPlaneConfig& cfg,
                                 obs::Registry* registry,
                                 fault::FaultInjector* fault)
    : dma_(&dma),
      layout_(&layout),
      backend_(&backend),
      fault_(fault),
      policy_(std::move(policy)),
      cfg_(cfg),
      owned_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                          : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      stats_(*registry_),
      flush_pass_ns_(&registry_->histogram("cache.ctl/flush_pass_ns")),
      prefetch_pass_ns_(&registry_->histogram("cache.ctl/prefetch_pass_ns")),
      prefetcher_(cfg.prefetch_max_window),
      scratch_(layout.geometry().page_size) {
  DPC_CHECK(policy_ != nullptr);
}

CacheEntry DpuCacheControl::fetch_entry(std::uint32_t index,
                                        sim::Nanos& cost) {
  CacheEntry e;
  cost += dma_->read_host(layout_->entry_off(index),
                          std::as_writable_bytes(std::span{&e, 1}),
                          pcie::DmaClass::kDescriptor);
  return e;
}

bool DpuCacheControl::try_read_lock(std::uint32_t index, sim::Nanos& cost) {
  // Read locks are shared: pile onto host readers, fail only against a
  // write lock (§3.3's read/write lock semantics).
  const std::uint64_t off =
      layout_->entry_field_off(index, CacheLayout::EntryField::kLock);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto cur =
        dma_->host().atomic_u32(off).load(std::memory_order_acquire);
    std::uint32_t next;
    if (cur == kLockNone) {
      next = read_lock_word(1);
    } else if (is_read_locked(cur)) {
      next = read_lock_word(read_lock_holders(cur) + 1);
    } else {
      return false;  // write-locked or invalid
    }
    const auto res = dma_->atomic_cas_host(off, cur, next);
    cost += res.cost;
    if (res.success) {
      sim::lockrank::acquire(word_key(dma_->host(), off),
                             sim::LockRank::kCacheEntry, "cache.entry",
                             /*shared=*/true);
      return true;
    }
  }
  return false;
}

void DpuCacheControl::read_unlock(std::uint32_t index, sim::Nanos& cost) {
  // The flusher is the only DPU-side read-locker and it took holders=1;
  // host readers may have piled on meanwhile, so decrement via CAS.
  for (;;) {
    const auto cur = dma_->host()
                         .atomic_u32(layout_->entry_field_off(
                             index, CacheLayout::EntryField::kLock))
                         .load(std::memory_order_acquire);
    DPC_CHECK(is_read_locked(cur));
    const std::uint32_t holders = read_lock_holders(cur);
    const std::uint32_t next =
        holders <= 1 ? kLockNone : read_lock_word(holders - 1);
    const auto res = dma_->atomic_cas_host(
        layout_->entry_field_off(index, CacheLayout::EntryField::kLock), cur,
        next);
    cost += res.cost;
    if (res.success) {
      sim::lockrank::release(word_key(
          dma_->host(),
          layout_->entry_field_off(index, CacheLayout::EntryField::kLock)));
      return;
    }
  }
}

bool DpuCacheControl::try_write_lock(std::uint32_t index, sim::Nanos& cost) {
  const std::uint64_t off =
      layout_->entry_field_off(index, CacheLayout::EntryField::kLock);
  const auto res = dma_->atomic_cas_host(off, kLockNone, kLockWrite);
  cost += res.cost;
  if (res.success) {
    sim::lockrank::acquire(word_key(dma_->host(), off),
                           sim::LockRank::kCacheEntry, "cache.entry");
  }
  return res.success;
}

void DpuCacheControl::write_unlock(std::uint32_t index, sim::Nanos& cost) {
  const std::uint64_t off =
      layout_->entry_field_off(index, CacheLayout::EntryField::kLock);
  sim::lockrank::release(word_key(dma_->host(), off));
  const auto res = dma_->atomic_swap_host(off, kLockNone);
  cost += res.cost;
  DPC_CHECK(res.observed == kLockWrite);
}

void DpuCacheControl::set_status(std::uint32_t index, PageStatus s,
                                 sim::Nanos& cost) {
  const auto res = dma_->atomic_swap_host(
      layout_->entry_field_off(index, CacheLayout::EntryField::kStatus),
      static_cast<std::uint32_t>(s));
  cost += res.cost;
}

void DpuCacheControl::seq_write_begin(std::uint32_t index, sim::Nanos& cost) {
  auto seq = dma_->host().atomic_u32(
      layout_->entry_field_off(index, CacheLayout::EntryField::kSeq));
  // Exclusive writer (entry write lock held via PCIe atomics): bump to odd,
  // release-fence so no mutation is ordered before the odd mark.
  seq.store(seq.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  cost += dma_->note_transaction(pcie::DmaClass::kAtomic,
                                 sizeof(std::uint32_t));
}

void DpuCacheControl::seq_write_end(std::uint32_t index, sim::Nanos& cost) {
  auto seq = dma_->host().atomic_u32(
      layout_->entry_field_off(index, CacheLayout::EntryField::kSeq));
  seq.store(seq.load(std::memory_order_relaxed) + 1,
            std::memory_order_release);
  cost += dma_->note_transaction(pcie::DmaClass::kAtomic,
                                 sizeof(std::uint32_t));
}

bool DpuCacheControl::lock_bucket(std::uint32_t bucket, sim::Nanos& cost) {
  const auto res =
      dma_->atomic_cas_host(layout_->bucket_lock_off(bucket), 0, 1);
  cost += res.cost;
  if (res.success) {
    sim::lockrank::acquire(
        word_key(dma_->host(), layout_->bucket_lock_off(bucket)),
        sim::LockRank::kCacheBucket, "cache.bucket");
  }
  return res.success;
}

void DpuCacheControl::unlock_bucket(std::uint32_t bucket, sim::Nanos& cost) {
  sim::lockrank::release(
      word_key(dma_->host(), layout_->bucket_lock_off(bucket)));
  const auto res = dma_->atomic_swap_host(layout_->bucket_lock_off(bucket), 0);
  cost += res.cost;
  DPC_CHECK(res.observed == 1);
}

void DpuCacheControl::bump_free(std::int32_t delta, sim::Nanos& cost) {
  dma_->atomic_fadd_host(layout_->header_field(HeaderOffsets::kFree),
                         static_cast<std::uint32_t>(delta));
  cost += sim::calib::kPcieAtomic;
}

std::vector<PageStatus> DpuCacheControl::snapshot_status(sim::Nanos& cost) {
  const auto entries = snapshot_meta(cost);
  std::vector<PageStatus> status(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i)
    status[i] = static_cast<PageStatus>(entries[i].status);
  return status;
}

std::vector<CacheEntry> DpuCacheControl::snapshot_meta(sim::Nanos& cost) {
  const std::uint32_t total = layout_->geometry().total_pages;
  // Chunked DMA of the whole meta area (entries are contiguous).
  std::vector<CacheEntry> entries(total);
  constexpr std::uint32_t kChunk = 128;  // entries per DMA
  for (std::uint32_t at = 0; at < total; at += kChunk) {
    const std::uint32_t n = std::min(kChunk, total - at);
    cost += dma_->read_host(
        layout_->entry_off(at),
        std::as_writable_bytes(std::span{entries.data() + at, n}),
        pcie::DmaClass::kDescriptor);
  }
  return entries;
}

DpuCacheControl::PassResult DpuCacheControl::flush_pass(int max_pages) {
  if (fault_ != nullptr && fault_->crashed()) return {};
  sim::LockGuard lock(pass_mu_);
  PassResult res;
  auto status = snapshot_status(res.cost);
  for (std::uint32_t i = 0; i < status.size() && res.pages < max_pages; ++i) {
    if (status[i] != PageStatus::kDirty) continue;
    // §3.3: "safely flush the selected dirty pages by adding the read locks
    // for them" — a host writer holding the write lock makes us skip.
    if (!try_read_lock(i, res.cost)) {
      ++stats_.flush_lock_conflicts;
      continue;
    }
    // The backend write below and the crash point after it may throw
    // CrashException while this entry's read lock is held.
    ReleaseRecordOnUnwind rank_record{word_key(
        dma_->host(),
        layout_->entry_field_off(i, CacheLayout::EntryField::kLock))};
    const CacheEntry e = fetch_entry(i, res.cost);
    if (static_cast<PageStatus>(e.status) != PageStatus::kDirty) {
      read_unlock(i, res.cost);  // raced with an invalidate
      continue;
    }
    // "DPU temporarily pulls the data to its DRAM by DMA transmission".
    res.cost += dma_->read_host(layout_->page_off(i), scratch_,  // dpc-lint: ok(lock-across-wait) pass_mu_ exists to cover the whole DMA pass
                                pcie::DmaClass::kData);
    // "…and performs relevant computing operations (e.g., compression,
    // DIF, EC, etc.)". The DIF stamp is taken at the pull — it is the
    // checksum of the host-DRAM truth the DMA engine carried over.
    std::uint32_t dif_stamp = 0;
    if (cfg_.dif_enabled) {
      dif_stamp = ec::crc32c(scratch_);
      ++stats_.dif_checksums;
    }
    // Injection: the DPU-DRAM copy is damaged after the pull (DMA glitch
    // or DRAM bit flip) — the window the DIF verify below closes.
    if (fault_ != nullptr) {
      std::uint64_t entropy = 0;
      if (fault_->should_fail(kFaultFlushCorruptPage, &entropy) &&
          !scratch_.empty()) {
        const std::uint64_t bit = entropy % (scratch_.size() * 8);
        scratch_[bit / 8] ^=
            std::byte{static_cast<unsigned char>(1u << (bit % 8))};
      }
    }
    if (cfg_.dif_enabled && ec::crc32c(scratch_) != dif_stamp) {
      // The copy about to hit the backend is provably not what the host
      // wrote. Never flush it: leave the page dirty — the next pass pulls
      // a fresh (intact) copy from host DRAM, so recovery is free.
      ++stats_.flush_integrity_fails;
      read_unlock(i, res.cost);
      continue;
    }
    if (cfg_.compress_enabled) {
      // Compress for the network hop to the disaggregated store, verify
      // the round trip, and account the wire savings.
      std::vector<std::byte> packed;
      const auto packed_size = dpu::lz_compress(scratch_, packed);
      std::vector<std::byte> unpacked;
      const auto back =
          dpu::lz_decompress(packed, unpacked, scratch_.size());
      DPC_CHECK_MSG(back.has_value() && unpacked == scratch_,
                    "flush compression round trip failed");
      stats_.compress_in_bytes += scratch_.size();
      stats_.compress_out_bytes += packed_size;
      res.cost += dpu::dpu_compress_cost(scratch_.size());
    }
    const bool flushed =
        !(fault_ != nullptr && fault_->should_fail(kFaultFlushWritePage)) &&
        backend_->write_page(e.inode, e.lpn, scratch_, res.cost);
    if (!flushed) {
      // Transient backend failure: drop the read lock but leave the page
      // dirty — it is re-queued, never lost, and a later pass retries it.
      ++stats_.flush_fails;
      read_unlock(i, res.cost);
      continue;
    }
    // Crash window: the backend write is durable but the meta still says
    // dirty and this side still holds the read lock. Propagates — the TGT
    // absorbs it on the fsync path, poll() absorbs it on the flusher path.
    fault::crash_point(fault_, kFaultFlushCrashBeforeClean);
    // "After completing flushing, DPU releases the read locks … and updates
    // their status to clean".
    set_status(i, PageStatus::kClean, res.cost);
    dma_->atomic_fadd_host(layout_->header_field(HeaderOffsets::kDirty),
                           static_cast<std::uint32_t>(-1));
    res.cost += sim::calib::kPcieAtomic;
    if (wal_ != nullptr && wal_->has_pending(e.inode, e.lpn)) {
      // This is the WAL drain: the backend now holds the bytes, so a
      // marker supersedes the logged copies. A crash in between (or right
      // after — the crash point below) replays the logged copy over the
      // identical backend bytes: idempotent, never lost.
      wal_->note_drained(e.inode, e.lpn, res.cost);
      fault::crash_point(fault_, nvm::kCrashWalAfterDrain);
    }
    read_unlock(i, res.cost);
    ++res.pages;
    ++stats_.pages_flushed;
  }
  if (wal_ != nullptr && (res.pages > 0 || wal_->degraded())) {
    // The pass may have drained the last pending page: checkpoint-truncate
    // (which doubles as the degraded-mode recovery probe).
    wal_->maybe_checkpoint(res.cost);
  }
  // Idle poller passes that flushed nothing would drown the distribution in
  // snapshot-scan costs; record only passes that moved pages.
  if (res.pages > 0) flush_pass_ns_->record(res.cost);
  return res;
}

DpuCacheControl::WalLogResult DpuCacheControl::wal_log_pass(
    std::uint64_t inode) {
  WalLogResult res;
  if (wal_ == nullptr || (fault_ != nullptr && fault_->crashed())) return res;
  sim::LockGuard lock(pass_mu_);
  res.complete = true;
  // Full-entry snapshot: the ino filter below reads inode/status straight
  // from the chunked meta DMA instead of paying a probe DMA per dirty
  // page, so this pass stays O(snapshot) + O(this ino's pages) even when
  // the cache is full of other tenants' dirt. The under-lock re-fetch
  // below still validates against the live entry.
  const auto meta = snapshot_meta(res.cost);
  for (std::uint32_t i = 0; i < meta.size(); ++i) {
    if (static_cast<PageStatus>(meta[i].status) != PageStatus::kDirty ||
        meta[i].inode != inode)
      continue;
    // Same read-lock discipline as the flush: a host writer mid-update
    // means the page bytes are not provably stable — no WAL ack for it.
    if (!try_read_lock(i, res.cost)) {
      ++stats_.flush_lock_conflicts;
      res.complete = false;
      continue;
    }
    ReleaseRecordOnUnwind rank_record{word_key(
        dma_->host(),
        layout_->entry_field_off(i, CacheLayout::EntryField::kLock))};
    const CacheEntry e = fetch_entry(i, res.cost);
    if (e.inode != inode ||
        static_cast<PageStatus>(e.status) != PageStatus::kDirty) {
      read_unlock(i, res.cost);  // raced with an invalidate/flush
      continue;
    }
    res.cost += dma_->read_host(layout_->page_off(i), scratch_,
                                pcie::DmaClass::kData);
    const auto st = wal_->append_data(e.inode, e.lpn, scratch_, res.cost);
    read_unlock(i, res.cost);
    if (st != nvm::AppendStatus::kOk) {
      // kFull / kIoError: the WAL latched degraded; every remaining page
      // would fail the same way, so report incomplete and stop.
      res.complete = false;
      break;
    }
    ++res.pages;
    ++stats_.wal_pages_logged;
  }
  return res;
}

int DpuCacheControl::dirty_pages(std::uint64_t inode, sim::Nanos& cost) {
  if (fault_ != nullptr && fault_->crashed()) return 0;
  sim::LockGuard lock(pass_mu_);
  const auto meta = snapshot_meta(cost);
  int n = 0;
  for (const auto& e : meta) {
    if (e.inode == inode &&
        static_cast<PageStatus>(e.status) == PageStatus::kDirty)
      ++n;
  }
  return n;
}

DpuCacheControl::PassResult DpuCacheControl::evict(std::uint32_t target_free) {
  if (fault_ != nullptr && fault_->crashed()) return {};
  sim::LockGuard lock(pass_mu_);
  PassResult res;
  const std::uint32_t free_now = free_pages_seen();
  res.cost += sim::calib::kDmaSetup;  // header read
  if (free_now >= target_free) return res;

  auto status = snapshot_status(res.cost);
  std::vector<std::uint32_t> victims;
  policy_->pick_victims(status, target_free - free_now, victims);
  for (const std::uint32_t i : victims) {
    if (!try_write_lock(i, res.cost)) continue;  // in use; skip
    const CacheEntry e = fetch_entry(i, res.cost);
    if (static_cast<PageStatus>(e.status) == PageStatus::kClean) {
      seq_write_begin(i, res.cost);
      set_status(i, PageStatus::kFree, res.cost);
      seq_write_end(i, res.cost);
      bump_free(1, res.cost);
      ++res.pages;
      ++stats_.pages_evicted;
    }
    write_unlock(i, res.cost);
  }
  // Acknowledge the host's request once space exists.
  if (res.pages > 0) {
    dma_->atomic_swap_host(layout_->header_field(HeaderOffsets::kNeedEvict),
                           0);
    res.cost += sim::calib::kPcieAtomic;
  }
  return res;
}

DpuCacheControl::PassResult DpuCacheControl::prefetch(std::uint64_t inode,
                                                      std::uint64_t start_lpn,
                                                      std::uint32_t pages) {
  if (fault_ != nullptr && fault_->crashed()) return {};
  sim::LockGuard lock(pass_mu_);
  PassResult res;
  const std::uint32_t epb = layout_->entries_per_bucket();
  for (std::uint32_t k = 0; k < pages; ++k) {
    const std::uint64_t lpn = start_lpn + k;
    const std::uint32_t bucket = layout_->bucket_of(inode, lpn);
    if (!lock_bucket(bucket, res.cost)) continue;  // busy; skip this page

    // Walk the bucket (one chunked DMA): skip if present, find a free slot.
    std::vector<CacheEntry> entries(epb);
    res.cost += dma_->read_host(  // dpc-lint: ok(lock-across-wait) pass_mu_ exists to cover the whole DMA pass
        layout_->entry_off(layout_->bucket_head_entry(bucket)),
        std::as_writable_bytes(std::span{entries.data(), epb}),
        pcie::DmaClass::kDescriptor);
    bool present = false;
    std::uint32_t free_slot = kEndOfList;
    std::uint32_t clean_victim = kEndOfList;
    for (std::uint32_t j = 0; j < epb; ++j) {
      const auto st = static_cast<PageStatus>(entries[j].status);
      const std::uint32_t abs = layout_->bucket_head_entry(bucket) + j;
      if (st == PageStatus::kFree) {
        if (free_slot == kEndOfList) free_slot = abs;
      } else if (entries[j].inode == inode && entries[j].lpn == lpn) {
        present = true;
        break;
      } else if (st == PageStatus::kClean) {
        // Prefer the oldest fill (entries the control plane stamped with
        // its fill sequence; host-filled entries read 0 → evicted first).
        if (clean_victim == kEndOfList ||
            entries[j].fill <
                entries[clean_victim - layout_->bucket_head_entry(bucket)]
                    .fill) {
          clean_victim = abs;
        }
      }
    }
    if (present) {
      unlock_bucket(bucket, res.cost);
      continue;
    }
    // Prefetch drives its own replacement: with no free entry, reuse a
    // clean one in the same bucket (the flexibility §3.3 gives the
    // offloaded control plane).
    bool reused = false;
    if (free_slot == kEndOfList) {
      if (clean_victim == kEndOfList ||
          !try_write_lock(clean_victim, res.cost)) {
        unlock_bucket(bucket, res.cost);
        continue;
      }
      CacheEntry v = fetch_entry(clean_victim, res.cost);
      if (static_cast<PageStatus>(v.status) != PageStatus::kClean) {
        write_unlock(clean_victim, res.cost);
        unlock_bucket(bucket, res.cost);
        continue;
      }
      free_slot = clean_victim;
      reused = true;
      ++stats_.pages_evicted;
    } else if (!try_write_lock(free_slot, res.cost)) {
      unlock_bucket(bucket, res.cost);
      continue;
    }

    if (!backend_->read_page(inode, lpn, scratch_, res.cost)) {
      write_unlock(free_slot, res.cost);
      unlock_bucket(bucket, res.cost);
      continue;  // past EOF / hole
    }
    // Fill the identity fields, push the page, publish as clean — all
    // inside the entry's seqlock window so a concurrent lock-free host
    // reader discards any half-filled view.
    CacheEntry e = entries[free_slot - layout_->bucket_head_entry(bucket)];
    e.inode = inode;
    e.lpn = lpn;
    e.fill = fill_seq_.fetch_add(1, std::memory_order_relaxed);
    seq_write_begin(free_slot, res.cost);
    res.cost += dma_->write_host(
        layout_->entry_field_off(free_slot, CacheLayout::EntryField::kLpn),
        std::as_bytes(std::span{&e.lpn, 1}), pcie::DmaClass::kDescriptor);
    res.cost += dma_->write_host(
        layout_->entry_field_off(free_slot, CacheLayout::EntryField::kInode),
        std::as_bytes(std::span{&e.inode, 1}), pcie::DmaClass::kDescriptor);
    res.cost += dma_->write_host(
        layout_->entry_field_off(free_slot, CacheLayout::EntryField::kFill),
        std::as_bytes(std::span{&e.fill, 1}), pcie::DmaClass::kDescriptor);
    res.cost +=
        dma_->write_host(layout_->page_off(free_slot), scratch_,
                         pcie::DmaClass::kData);
    set_status(free_slot, PageStatus::kClean, res.cost);
    seq_write_end(free_slot, res.cost);
    if (!reused) bump_free(-1, res.cost);
    write_unlock(free_slot, res.cost);
    unlock_bucket(bucket, res.cost);
    ++res.pages;
    ++stats_.pages_prefetched;
  }
  if (res.pages > 0) prefetch_pass_ns_->record(res.cost);
  return res;
}

DpuCacheControl::PassResult DpuCacheControl::on_read_miss(std::uint64_t inode,
                                                          std::uint64_t lpn,
                                                          std::uint32_t span,
                                                          std::uint8_t tenant) {
  SequentialPrefetcher::Advice advice;
  {
    sim::LockGuard lock(pass_mu_);
    advice = prefetcher_.on_miss(inode, lpn, span);
  }
  if (advice.pages == 0) return {};
  const PassResult res = prefetch(inode, advice.start_lpn, advice.pages);
  // Speculative backend work is charged to the tenant whose miss caused it.
  if (qos_ != nullptr && res.pages > 0)
    qos_->count_prefetch_pages(tenant,
                               static_cast<std::uint64_t>(res.pages));
  return res;
}

int DpuCacheControl::poll() {
  if (fault_ != nullptr && fault_->crashed()) return 0;
  try {
    return poll_impl();
  } catch (const fault::CrashException&) {
    // The DPU core died mid-pass (flush crash point, or a KVFS crash point
    // under the cache backend). The crashed() latch is set; every poller
    // goes inert until DpcSystem::restart_dpu() clears it.
    return 0;
  }
}

int DpuCacheControl::poll_impl() {
  int acted = 0;
  // Control hints (need-evict flag, dirty count, free count) are modelled
  // as shadow registers the host pushes with posted MMIO writes, so the
  // DPU's idle poll costs no link transactions.
  const auto need_evict =
      dma_->host()
          .atomic_u32(layout_->header_field(HeaderOffsets::kNeedEvict))
          .load(std::memory_order_acquire);
  const auto dirty =
      dma_->host()
          .atomic_u32(layout_->header_field(HeaderOffsets::kDirty))
          .load(std::memory_order_acquire);

  // Consume the host's readahead hint and extend active streams before the
  // reader runs off the prefetched window (async readahead).
  const auto ra_seq =
      dma_->host()
          .atomic_u32(layout_->header_field(HeaderOffsets::kRaSeq))
          .load(std::memory_order_acquire);
  if (ra_seq != last_ra_seq_.exchange(ra_seq, std::memory_order_acq_rel)) {
    const auto hint_ino =
        dma_->host()
            .atomic_u64(layout_->header_field(HeaderOffsets::kRaInode))
            .load(std::memory_order_relaxed);
    const auto hint_lpn =
        dma_->host()
            .atomic_u64(layout_->header_field(HeaderOffsets::kRaLpn))
            .load(std::memory_order_relaxed);
    SequentialPrefetcher::Advice advice;
    {
      sim::LockGuard lock(pass_mu_);
      advice = prefetcher_.on_hit(hint_ino, hint_lpn);
    }
    if (advice.pages > 0)
      acted += prefetch(hint_ino, advice.start_lpn, advice.pages).pages;
  }

  if (need_evict == 0 && dirty == 0 &&
      free_pages_seen() >= cfg_.evict_low_water) {
    return acted;  // nothing else to do
  }
  if (need_evict != 0 || free_pages_seen() < cfg_.evict_low_water) {
    // Make eviction possible by cleaning first, then reclaim. The host's
    // stall can be bucket-local (one full bucket with plenty free
    // globally), so when the flag is raised we always reclaim a batch on
    // top of the current free count rather than testing a global target.
    acted += flush_pass(static_cast<int>(cfg_.evict_batch)).pages;
    const std::uint32_t target =
        need_evict != 0 ? free_pages_seen() + cfg_.evict_batch
                        : cfg_.evict_low_water + cfg_.evict_batch;
    acted += evict(target).pages;
  } else {
    acted += flush_pass(static_cast<int>(cfg_.evict_batch)).pages;
  }
  return acted;
}

DpuCacheControl::PassResult DpuCacheControl::rebuild() {
  sim::LockGuard lock(pass_mu_);
  PassResult res;
  const std::uint32_t total = layout_->geometry().total_pages;
  // The data plane (meta + pages) lives in host DRAM and survives the DPU
  // dying; everything DPU-side (lock holdings, cached counts, prefetch
  // cursor) is gone. Scan the surviving meta area and rebuild from it.
  std::vector<CacheEntry> entries(total);
  constexpr std::uint32_t kChunk = 128;  // entries per DMA
  for (std::uint32_t at = 0; at < total; at += kChunk) {
    const std::uint32_t n = std::min(kChunk, total - at);
    res.cost += dma_->read_host(  // dpc-lint: ok(lock-across-wait) pass_mu_ exists to cover the whole DMA pass
        layout_->entry_off(at),
        std::as_writable_bytes(std::span{entries.data() + at, n}),
        pcie::DmaClass::kDescriptor);
  }
  auto& host = dma_->host();
  std::uint32_t free_count = 0;
  std::uint32_t dirty_count = 0;
  std::uint32_t survivors = 0;
  for (std::uint32_t i = 0; i < total; ++i) {
    // The dead DPU (or a host thread it stranded) may still hold this
    // entry's lock; both planes are quiesced now, so force it open.
    if (entries[i].lock != kLockNone) {
      host.atomic_u32(layout_->entry_field_off(i,
                                               CacheLayout::EntryField::kLock))
          .store(kLockNone, std::memory_order_release);
      res.cost += sim::calib::kPcieAtomic;
    }
    // A writer that died mid-mutation leaves the seqlock word odd, which
    // would make lock-free readers retry forever; round it up to even (the
    // entry's contents were re-derived above, so the generation is stable).
    if ((entries[i].seq & 1u) != 0) {
      host.atomic_u32(layout_->entry_field_off(i,
                                               CacheLayout::EntryField::kSeq))
          .store(entries[i].seq + 1, std::memory_order_release);
      res.cost += sim::calib::kPcieAtomic;
    }
    switch (static_cast<PageStatus>(entries[i].status)) {
      case PageStatus::kFree:
        ++free_count;
        break;
      case PageStatus::kDirty:
        ++dirty_count;
        ++survivors;
        break;
      default:
        ++survivors;
        break;
    }
  }
  for (std::uint32_t b = 0; b < layout_->geometry().buckets; ++b) {
    host.atomic_u32(layout_->bucket_lock_off(b))
        .store(0, std::memory_order_release);
  }
  res.cost += sim::calib::kPcieAtomic;  // bucket sweep, one posted batch
  // Recompute the header's shadow registers from ground truth and drop any
  // pre-crash eviction request (poll() re-derives it from the counts).
  host.atomic_u32(layout_->header_field(HeaderOffsets::kFree))
      .store(free_count, std::memory_order_release);
  host.atomic_u32(layout_->header_field(HeaderOffsets::kDirty))
      .store(dirty_count, std::memory_order_release);
  host.atomic_u32(layout_->header_field(HeaderOffsets::kNeedEvict))
      .store(0, std::memory_order_release);
  res.cost += sim::calib::kPcieAtomic * 3;
  // Resync the readahead cursor so a stale pre-crash hint isn't replayed.
  last_ra_seq_.store(
      host.atomic_u32(layout_->header_field(HeaderOffsets::kRaSeq))
          .load(std::memory_order_acquire),
      std::memory_order_release);
  res.pages = static_cast<int>(survivors);
  stats_.rebuild_pages += survivors;
  return res;
}

std::uint32_t DpuCacheControl::free_pages_seen() const {
  return dma_->host()
      .atomic_u32(layout_->header_field(HeaderOffsets::kFree))
      .load(std::memory_order_acquire);
}

}  // namespace dpc::cache
