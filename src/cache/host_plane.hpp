// Host-side data plane of the hybrid cache (§3.3).
//
// Runs inside the fs-adapter on the host: all accesses here touch *host*
// memory, so cache hits cost zero PCIe traffic — the core benefit of
// keeping the data plane on the host. Entry lock words are the same words
// the DPU manipulates with PCIe atomics; from this side they are plain
// (local) atomics.
//
// Front-end write (paper §3.3): hash <inode,lpn> → bucket, find/claim an
// entry, write-lock it atomically, copy the data into the corresponding
// page, release the lock and mark the entry dirty. If no free entry can be
// claimed, the host "notifies the DPU to perform cache replacement" — here
// by raising the header's need-evict flag and reporting kNoFreeEntry.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "cache/layout.hpp"
#include "obs/metrics.hpp"
#include "pcie/memory.hpp"

namespace dpc::cache {

/// Host data-plane counters, registry-backed ("cache.host/…") so they land
/// in metrics JSON snapshots; the atomic-style accessors (.load()) are kept.
struct HostCacheStats {
  explicit HostCacheStats(obs::Registry& reg)
      : read_hits(reg.counter("cache.host/read_hits")),
        read_misses(reg.counter("cache.host/read_misses")),
        writes_cached(reg.counter("cache.host/writes_cached")),
        write_stalls(reg.counter("cache.host/write_stalls")),
        lockfree_hits(reg.counter("cache.host/lockfree_hits")),
        seqlock_retries(reg.counter("cache.host/seqlock_retries")),
        locked_fallbacks(reg.counter("cache.host/locked_fallbacks")) {}

  obs::Counter& read_hits;
  obs::Counter& read_misses;
  obs::Counter& writes_cached;
  obs::Counter& write_stalls;  ///< kNoFreeEntry occurrences
  obs::Counter& lockfree_hits;     ///< hits served without any lock word
  obs::Counter& seqlock_retries;   ///< unstable-seq observations (retried)
  obs::Counter& locked_fallbacks;  ///< reads that fell back to the locks

  void reset() {
    read_hits = 0;
    read_misses = 0;
    writes_cached = 0;
    write_stalls = 0;
    lockfree_hits = 0;
    seqlock_retries = 0;
    locked_fallbacks = 0;
  }
};

class HostCachePlane {
 public:
  /// `registry` hosts the data-plane counters; when null a private registry
  /// is created (standalone/unit-test construction).
  HostCachePlane(pcie::MemoryRegion& host, const CacheLayout& layout,
                 obs::Registry* registry = nullptr);

  /// Cache-hit read. Fast path: a lock-free seqlock-validated copy that
  /// touches no lock word at all; falls back to the bucket/entry-lock path
  /// after repeated seq instability (writer storm on the bucket).
  /// Returns false on miss (caller then issues the nvme-fs read to the DPU).
  bool read(std::uint64_t inode, std::uint64_t lpn, std::span<std::byte> dst);

  enum class WriteResult {
    kOk,
    kNoFreeEntry,  ///< eviction requested; caller retries or falls through
  };
  /// Buffered write: caches the page and marks it dirty.
  WriteResult write(std::uint64_t inode, std::uint64_t lpn,
                    std::span<const std::byte> src);

  /// Inserts a *clean* copy after a read miss was served by the DPU. Never
  /// clobbers an existing (possibly dirty) entry; silently does nothing if
  /// the bucket has no free slot (clean fills are opportunistic).
  void fill_clean(std::uint64_t inode, std::uint64_t lpn,
                  std::span<const std::byte> src);

  /// Drops the page if present and clean/dirty-unlocked (used by truncate
  /// and DIRECT_IO invalidation). Returns true if an entry was freed.
  bool invalidate(std::uint64_t inode, std::uint64_t lpn);

  /// Drops every cached page of `inode` with lpn >= first_lpn (truncate
  /// coherence). Scans the whole meta area; truncate is rare.
  std::uint32_t invalidate_above(std::uint64_t inode, std::uint64_t first_lpn);

  /// Zeroes bytes [from, page_size) of the cached page, if present —
  /// truncate's boundary-page coherence (the backend zeroes its copy too,
  /// so the entry's clean/dirty status is preserved).
  void zero_tail(std::uint64_t inode, std::uint64_t lpn, std::uint32_t from);

  std::uint32_t free_pages() const;
  const HostCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  // Bucket lock: host-local spin acquire.
  void lock_bucket(std::uint32_t bucket);
  void unlock_bucket(std::uint32_t bucket);
  // Entry locks.
  bool try_write_lock(std::uint32_t entry);
  void write_lock(std::uint32_t entry);  // spins
  void write_unlock(std::uint32_t entry);
  void read_lock(std::uint32_t entry);   // spins; shared
  void read_unlock(std::uint32_t entry);

  // Seqlock generation word (CacheEntry::seq). Writers — always under the
  // entry write lock — wrap every entry mutation in begin/end; readers
  // validate the word around lock-free copies (see DESIGN.md §"Hot paths").
  void seq_write_begin(std::uint32_t entry);  // even → odd, release-fenced
  void seq_write_end(std::uint32_t entry);    // odd → even, release store

  /// One lock-free probe of the bucket chain for <inode,lpn>. The two
  /// retry verdicts differ for the concurrency checker: kRetry means the
  /// seq word moved *under* this probe, so an immediate re-probe can
  /// succeed with no other thread running (a decision point); kRetryBlocked
  /// means the entry is mid-write or mid-fill and re-probing is futile
  /// until the writer/filler makes progress (a blocked point).
  enum class FastRead { kHit, kMiss, kRetry, kRetryBlocked };
  FastRead try_read_lockfree(std::uint32_t bucket, std::uint64_t inode,
                             std::uint64_t lpn, std::span<std::byte> dst);

  /// Posts the consumed <inode,lpn> readahead hint for the DPU poller.
  void post_readahead_hint(std::uint64_t inode, std::uint64_t lpn);

  /// Walks the bucket list; returns the entry index holding <inode,lpn>
  /// (any non-free status), or nullopt. Caller holds the bucket lock.
  std::optional<std::uint32_t> find_locked(std::uint32_t bucket,
                                           std::uint64_t inode,
                                           std::uint64_t lpn) const;
  /// Finds a free entry in the bucket. Caller holds the bucket lock.
  std::optional<std::uint32_t> find_free_locked(std::uint32_t bucket) const;

  PageStatus status_of(std::uint32_t entry) const;
  void set_status(std::uint32_t entry, PageStatus s);

  pcie::MemoryRegion* host_;
  const CacheLayout* layout_;
  std::unique_ptr<obs::Registry> owned_registry_;  // when none was supplied
  HostCacheStats stats_;
};

}  // namespace dpc::cache
