#include "cache/layout.hpp"

#include <cstddef>

#include "sim/check.hpp"

namespace dpc::cache {

// The EntryField offsets are the wire contract both planes (and the torn-
// read tests) poke at directly — pin them to the struct layout.
static_assert(offsetof(CacheEntry, lock) == CacheLayout::EntryField::kLock);
static_assert(offsetof(CacheEntry, status) == CacheLayout::EntryField::kStatus);
static_assert(offsetof(CacheEntry, next) == CacheLayout::EntryField::kNext);
static_assert(offsetof(CacheEntry, fill) == CacheLayout::EntryField::kFill);
static_assert(offsetof(CacheEntry, lpn) == CacheLayout::EntryField::kLpn);
static_assert(offsetof(CacheEntry, inode) == CacheLayout::EntryField::kInode);
static_assert(offsetof(CacheEntry, seq) == CacheLayout::EntryField::kSeq);

CacheLayout::CacheLayout(const CacheGeometry& geo,
                         pcie::RegionAllocator& host_alloc)
    : geo_(geo) {
  DPC_CHECK(geo.page_size >= 512 && (geo.page_size & (geo.page_size - 1)) == 0);
  DPC_CHECK(geo.total_pages >= 1 && geo.buckets >= 1);
  DPC_CHECK_MSG(geo.total_pages % geo.buckets == 0,
                "each bucket must own the same number of entries (§3.3)");
  epb_ = geo.total_pages / geo.buckets;

  base_ = host_alloc.alloc(HeaderOffsets::kSize, 64);
  bucket_locks_ = host_alloc.alloc(std::uint64_t{geo.buckets} * 4, 64);
  meta_ = host_alloc.alloc(std::uint64_t{geo.total_pages} * sizeof(CacheEntry),
                           64);
  data_ = host_alloc.alloc(
      std::uint64_t{geo.total_pages} * geo.page_size, geo.page_size);
  total_bytes_ = data_ + std::uint64_t{geo.total_pages} * geo.page_size - base_;

  format(host_alloc.region());
}

void CacheLayout::format(pcie::MemoryRegion& region) const {
  // Initialize header.
  region.store<std::uint32_t>(header_field(HeaderOffsets::kPageSize),
                              geo_.page_size);
  region.store<std::uint32_t>(header_field(HeaderOffsets::kMode),
                              static_cast<std::uint32_t>(geo_.mode));
  region.store<std::uint32_t>(header_field(HeaderOffsets::kTotal),
                              geo_.total_pages);
  region.store<std::uint32_t>(header_field(HeaderOffsets::kFree),
                              geo_.total_pages);
  region.store<std::uint32_t>(header_field(HeaderOffsets::kBuckets),
                              geo_.buckets);
  region.store<std::uint32_t>(header_field(HeaderOffsets::kNeedEvict), 0);
  region.store<std::uint32_t>(header_field(HeaderOffsets::kDirty), 0);
  region.store<std::uint32_t>(header_field(HeaderOffsets::kRaSeq), 0);
  region.store<std::uint64_t>(header_field(HeaderOffsets::kRaInode), 0);
  region.store<std::uint64_t>(header_field(HeaderOffsets::kRaLpn), 0);

  // Zero bucket locks; link each bucket's entries into its list.
  for (std::uint32_t b = 0; b < geo_.buckets; ++b)
    region.store<std::uint32_t>(bucket_lock_off(b), 0);
  for (std::uint32_t i = 0; i < geo_.total_pages; ++i) {
    CacheEntry e;
    const std::uint32_t in_bucket = i % epb_;
    e.next = (in_bucket + 1 == epb_) ? kEndOfList : i + 1;
    region.store(entry_off(i), e);
  }
}

std::uint64_t CacheLayout::bucket_lock_off(std::uint32_t bucket) const {
  DPC_CHECK(bucket < geo_.buckets);
  return bucket_locks_ + std::uint64_t{bucket} * 4;
}

std::uint64_t CacheLayout::entry_off(std::uint32_t index) const {
  DPC_CHECK(index < geo_.total_pages);
  return meta_ + std::uint64_t{index} * sizeof(CacheEntry);
}

std::uint64_t CacheLayout::page_off(std::uint32_t index) const {
  DPC_CHECK(index < geo_.total_pages);
  return data_ + std::uint64_t{index} * geo_.page_size;
}

std::uint32_t CacheLayout::bucket_of(std::uint64_t inode,
                                     std::uint64_t lpn) const {
  // Fibonacci-style mix of <inode, lpn> — the §3.3 hash that maps a page
  // identity to its bucket.
  std::uint64_t h = inode * 0x9e3779b97f4a7c15ULL;
  h ^= lpn + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return static_cast<std::uint32_t>(h % geo_.buckets);
}

std::uint32_t CacheLayout::bucket_head_entry(std::uint32_t bucket) const {
  DPC_CHECK(bucket < geo_.buckets);
  return bucket * epb_;
}

}  // namespace dpc::cache
