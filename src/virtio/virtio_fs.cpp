#include "virtio/virtio_fs.hpp"

#include <thread>

namespace dpc::virtio {

namespace {
constexpr std::uint32_t kMaxArg = 64;  // op-arg structs are ≤ 40 bytes
constexpr std::uint64_t page_round(std::uint64_t n) {
  return (n + 4095) / 4096 * 4096;
}
}  // namespace

VirtioFsGuest::VirtioFsGuest(pcie::DmaEngine& dma,
                             const VirtqueueLayout& layout,
                             pcie::RegionAllocator& host_alloc,
                             const VirtioFsConfig& cfg)
    : dma_(&dma), queue_(dma, layout), cfg_(cfg) {
  DPC_CHECK(cfg.request_slots >= 1);
  slots_.resize(cfg.request_slots);
  free_slots_.reserve(cfg.request_slots);
  for (std::uint16_t s = 0; s < cfg.request_slots; ++s) {
    Slot& slot = slots_[s];
    // in_header and the op arg are allocated back-to-back: they form two
    // chain descriptors but one contiguous DMA burst on the device side.
    slot.hdr_off = host_alloc.alloc(sizeof(FuseInHeader) + kMaxArg, 64);
    slot.data_in_off = host_alloc.alloc(page_round(cfg.max_data), 4096);
    slot.out_hdr_off =
        host_alloc.alloc(sizeof(FuseOutHeader) + kInlineReplyMax, 64);
    slot.data_out_off = host_alloc.alloc(page_round(cfg.max_data), 4096);
    free_slots_.push_back(s);
  }
}

VirtioFsGuest::Submitted VirtioFsGuest::submit(
    FuseOpcode op, std::uint64_t nodeid, std::span<const std::byte> arg,
    std::span<const std::byte> data_in, std::uint32_t data_out_cap) {
  DPC_CHECK(arg.size() <= kMaxArg);
  DPC_CHECK(data_in.size() <= cfg_.max_data);
  DPC_CHECK(data_out_cap <= cfg_.max_data);

  sim::UniqueLock lock(mu_);
  while (free_slots_.empty()) {
    lock.unlock();
    std::this_thread::yield();
    lock.lock();
  }
  const std::uint16_t s = free_slots_.back();
  free_slots_.pop_back();
  Slot& slot = slots_[s];
  slot.busy = true;
  slot.done = false;
  slot.head_set = false;
  slot.unique = next_unique_++;

  FuseInHeader hdr;
  hdr.len = static_cast<std::uint32_t>(sizeof(FuseInHeader) + arg.size() +
                                       data_in.size());
  hdr.opcode = static_cast<std::uint32_t>(op);
  hdr.unique = slot.unique;
  hdr.nodeid = nodeid;

  auto& host = dma_->host();
  host.store(slot.hdr_off, hdr);
  if (!arg.empty()) host.write(slot.hdr_off + sizeof(FuseInHeader), arg);
  if (!data_in.empty()) host.write(slot.data_in_off, data_in);

  // The canonical 4-descriptor FUSE chain (Fig. 2(b)): header, arg,
  // data (as present), then the device-writable reply buffers. Small
  // op-specific out structs share the out-header descriptor (as in real
  // FUSE); only read data gets its own device-writable buffer.
  slot.inline_reply = data_out_cap <= kInlineReplyMax;
  std::vector<ChainSegment> chain;
  chain.push_back({slot.hdr_off, sizeof(FuseInHeader), false});
  if (!arg.empty())
    chain.push_back({slot.hdr_off + sizeof(FuseInHeader),
                     static_cast<std::uint32_t>(arg.size()), false});
  if (!data_in.empty())
    chain.push_back({slot.data_in_off,
                     static_cast<std::uint32_t>(data_in.size()), false});
  chain.push_back({slot.out_hdr_off,
                   static_cast<std::uint32_t>(sizeof(FuseOutHeader)) +
                       (slot.inline_reply ? data_out_cap : 0),
                   true});
  if (!slot.inline_reply)
    chain.push_back({slot.data_out_off, data_out_cap, true});

  lock.unlock();
  const auto added = queue_.add_chain(chain);
  lock.lock();
  slot.chain_head = added.head;
  slot.head_set = true;

  return {{s, slot.unique}, added.cost};
}

std::optional<FuseTicket> VirtioFsGuest::poll() {
  const auto used = queue_.poll_used();
  sim::LockGuard lock(mu_);
  if (used) stashed_used_.push_back(*used);
  for (std::size_t k = 0; k < stashed_used_.size(); ++k) {
    const auto id = static_cast<std::uint16_t>(stashed_used_[k].id);
    for (std::uint16_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (slot.busy && !slot.done && slot.head_set && slot.chain_head == id) {
        slot.done = true;
        stashed_used_.erase(stashed_used_.begin() +
                            static_cast<std::ptrdiff_t>(k));
        return FuseTicket{s, slot.unique};
      }
    }
  }
  return std::nullopt;
}

bool VirtioFsGuest::try_wait(const FuseTicket& ticket, FuseReplyView* out) {
  poll();
  sim::LockGuard lock(mu_);
  const Slot& slot = slots_[ticket.slot];
  DPC_CHECK(slot.busy && slot.unique == ticket.unique);
  if (!slot.done) return false;
  const auto hdr = dma_->host().load<FuseOutHeader>(slot.out_hdr_off);
  DPC_CHECK_MSG(hdr.unique == ticket.unique,
                "reply unique mismatch: " << hdr.unique << " vs "
                                          << ticket.unique);
  const std::uint32_t payload =
      hdr.len >= sizeof(FuseOutHeader)
          ? hdr.len - static_cast<std::uint32_t>(sizeof(FuseOutHeader))
          : 0;
  const pcie::MemoryRegion& host = dma_->host();
  const std::uint64_t payload_off = slot.inline_reply
                                        ? slot.out_hdr_off + sizeof(FuseOutHeader)
                                        : slot.data_out_off;
  if (out) *out = {hdr.error, hdr.unique, host.bytes(payload_off, payload)};
  return true;
}

FuseReplyView VirtioFsGuest::wait(const FuseTicket& ticket) {
  FuseReplyView view;
  while (!try_wait(ticket, &view)) std::this_thread::yield();
  return view;
}

void VirtioFsGuest::release(const FuseTicket& ticket) {
  sim::LockGuard lock(mu_);
  Slot& slot = slots_[ticket.slot];
  DPC_CHECK(slot.busy && slot.done && slot.unique == ticket.unique);
  queue_.recycle(slot.chain_head);
  slot.busy = false;
  slot.done = false;
  free_slots_.push_back(ticket.slot);
}

// ------------------------------------------------------------------ device

DpfsHal::DpfsHal(pcie::DmaEngine& dma, const VirtqueueLayout& layout,
                 FuseHandler handler, std::uint32_t max_data)
    : dma_(&dma),
      device_(dma, layout),
      handler_(std::move(handler)),
      request_buf_(),
      reply_buf_(sizeof(FuseOutHeader) + max_data) {
  DPC_CHECK(handler_ != nullptr);
  request_buf_.reserve(sizeof(FuseInHeader) + 64 + max_data);
}

DpfsHal::ProcessStats DpfsHal::process_available(int max) {
  ProcessStats total;
  while (total.processed < max) {
    sim::Nanos cost{};
    auto chain = device_.pop(&cost);
    total.cost += cost;
    if (!chain) break;

    // ⑦⑧ Pull the request payload (coalesced per contiguous run).
    total.cost += device_.read_payload(*chain, request_buf_);
    const auto hdr = read_pod<FuseInHeader>(request_buf_);
    DPC_CHECK(hdr.len == request_buf_.size());
    const std::span<const std::byte> payload =
        std::span<const std::byte>(request_buf_).subspan(sizeof(FuseInHeader));

    // Writable capacity after the out header.
    std::uint32_t writable = 0;
    for (const auto& seg : chain->segments)
      if (seg.device_writable) writable += seg.len;
    DPC_CHECK(writable >= sizeof(FuseOutHeader));
    const std::uint32_t payload_cap =
        writable - static_cast<std::uint32_t>(sizeof(FuseOutHeader));

    const FuseHandlerResult hres = handler_(
        hdr, payload,
        std::span{reply_buf_.data() + sizeof(FuseOutHeader), payload_cap});
    DPC_CHECK(hres.payload_bytes <= payload_cap);

    FuseOutHeader out;
    out.len = static_cast<std::uint32_t>(sizeof(FuseOutHeader)) +
              hres.payload_bytes;
    out.error = hres.error;
    out.unique = hdr.unique;
    std::memcpy(reply_buf_.data(), &out, sizeof(out));

    // ⑨ Reply, ⑩⑪ publish to the used ring.
    const auto wres = device_.write_payload(
        *chain, std::span<const std::byte>(reply_buf_.data(), out.len));
    total.cost += wres.cost;
    total.cost += device_.push_used(chain->head, wres.written);
    ++total.processed;
  }
  return total;
}

}  // namespace dpc::virtio
