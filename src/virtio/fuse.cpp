#include "virtio/fuse.hpp"

namespace dpc::virtio {

const char* to_string(FuseOpcode op) {
  switch (op) {
    case FuseOpcode::kLookup:
      return "LOOKUP";
    case FuseOpcode::kGetattr:
      return "GETATTR";
    case FuseOpcode::kSetattr:
      return "SETATTR";
    case FuseOpcode::kMkdir:
      return "MKDIR";
    case FuseOpcode::kUnlink:
      return "UNLINK";
    case FuseOpcode::kRmdir:
      return "RMDIR";
    case FuseOpcode::kRename:
      return "RENAME";
    case FuseOpcode::kOpen:
      return "OPEN";
    case FuseOpcode::kRead:
      return "READ";
    case FuseOpcode::kWrite:
      return "WRITE";
    case FuseOpcode::kRelease:
      return "RELEASE";
    case FuseOpcode::kFsync:
      return "FSYNC";
    case FuseOpcode::kFlush:
      return "FLUSH";
    case FuseOpcode::kReaddir:
      return "READDIR";
    case FuseOpcode::kCreate:
      return "CREATE";
    case FuseOpcode::kDestroy:
      return "DESTROY";
  }
  return "?";
}

}  // namespace dpc::virtio
