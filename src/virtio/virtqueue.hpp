// Split virtqueue (descriptor table + avail ring + used ring) as used by
// virtio-fs, laid out in host memory and accessed from the device side
// exclusively through the counting DmaEngine.
//
// This is the data path the paper's Fig. 2(b) dissects: processing one
// request costs the device
//   ① read avail->idx, ② read avail->ring[i], ③…⑥ read each descriptor of
//   the buffer chain, ⑦⑧ read the readable buffer contents, ⑨ write the
//   response, ⑩ write used->ring[j], ⑪ write used->idx
// — 11 DMA operations for an 8 KB FUSE write, which the unit tests assert
// against the DmaEngine counters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pcie/dma.hpp"
#include "pcie/memory.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace dpc::virtio {

inline constexpr std::uint16_t kDescFlagNext = 1;
inline constexpr std::uint16_t kDescFlagWrite = 2;  // device-writable

/// On-"wire" descriptor table entry (virtio 1.x split ring).
struct VringDesc {
  std::uint64_t addr = 0;  ///< host-region offset of the buffer
  std::uint32_t len = 0;
  std::uint16_t flags = 0;
  std::uint16_t next = 0;
};
static_assert(sizeof(VringDesc) == 16);

struct VringUsedElem {
  std::uint32_t id = 0;   ///< head descriptor index of the consumed chain
  std::uint32_t len = 0;  ///< bytes written into device-writable buffers
};
static_assert(sizeof(VringUsedElem) == 8);

/// One buffer of a popped chain, device-side view.
struct ChainSegment {
  std::uint64_t addr = 0;
  std::uint32_t len = 0;
  bool device_writable = false;
};

/// Layout of one virtqueue inside the host region, with its notify register
/// in DPU BAR space. Computed once, shared by both sides.
class VirtqueueLayout {
 public:
  VirtqueueLayout(std::uint16_t size, pcie::RegionAllocator& host,
                  pcie::RegionAllocator& dpu);

  std::uint16_t size() const { return size_; }
  std::uint64_t desc_off(std::uint16_t i) const;
  std::uint64_t avail_flags_off() const { return avail_base_; }
  std::uint64_t avail_idx_off() const { return avail_base_ + 2; }
  std::uint64_t avail_ring_off(std::uint16_t i) const;
  std::uint64_t used_flags_off() const { return used_base_; }
  std::uint64_t used_idx_off() const { return used_base_ + 2; }
  std::uint64_t used_ring_off(std::uint16_t i) const;
  std::uint64_t notify_off() const { return notify_; }

 private:
  std::uint16_t size_;
  std::uint64_t desc_base_ = 0;
  std::uint64_t avail_base_ = 0;
  std::uint64_t used_base_ = 0;
  std::uint64_t notify_ = 0;
};

/// Guest (host/driver) side: owns descriptor allocation and the avail ring.
/// All its ring accesses are host-local (no PCIe cost) except the notify
/// doorbell; completions are reaped from the used ring, also host-local.
class VirtqueueGuest {
 public:
  VirtqueueGuest(pcie::DmaEngine& dma, const VirtqueueLayout& layout);

  /// Exposes a chain of buffers to the device. Returns the head descriptor
  /// index, plus the modelled cost (notify doorbell).
  struct AddResult {
    std::uint16_t head = 0;
    sim::Nanos cost{};
  };
  AddResult add_chain(const std::vector<ChainSegment>& segments,
                      bool notify = true);

  /// Reaps one used element if available (head id + written length).
  std::optional<VringUsedElem> poll_used();

  /// Frees the chain rooted at `head` for reuse.
  void recycle(std::uint16_t head);

  std::uint16_t free_descriptors() const;

 private:
  pcie::DmaEngine* dma_;
  const VirtqueueLayout* layout_;

  mutable sim::AnnotatedMutex mu_{"virtio.queue", sim::LockRank::kDriver};
  std::vector<std::uint16_t> free_ GUARDED_BY(mu_);       // free desc idx
  std::vector<std::uint16_t> chain_len_ GUARDED_BY(mu_);  // per-head len
  std::uint16_t avail_idx_ GUARDED_BY(mu_) = 0;  // next avail (mod 2^16)
  std::uint16_t last_used_ GUARDED_BY(mu_) = 0;  // next used to reap
  std::atomic<std::uint32_t> kicks_{0};      // notify doorbell sequence
};

/// Device (DPU) side: every access to the rings or the buffers goes through
/// the DmaEngine and is therefore counted.
class VirtqueueDevice {
 public:
  VirtqueueDevice(pcie::DmaEngine& dma, const VirtqueueLayout& layout);

  /// Checks avail->idx (one descriptor-class DMA when polled). Returns true
  /// if a chain is pending. Cheap local check of the notify doorbell first.
  bool kicked() const;

  struct PoppedChain {
    std::uint16_t head = 0;
    std::vector<ChainSegment> segments;
    sim::Nanos cost{};
  };
  /// Pops the next pending chain, paying DMA ①② plus one descriptor read
  /// per chain element. Returns nullopt if none pending.
  std::optional<PoppedChain> pop(sim::Nanos* cost_out);

  /// Reads the readable segments' contents into `dst`, coalescing
  /// physically-contiguous segments into single DMA transactions.
  sim::Nanos read_payload(const PoppedChain& chain, std::vector<std::byte>& dst);

  /// Writes `src` into the chain's device-writable segments in order (one
  /// DMA per segment touched). Returns bytes written and cost.
  struct WriteResult {
    std::uint32_t written = 0;
    sim::Nanos cost{};
  };
  WriteResult write_payload(const PoppedChain& chain,
                            std::span<const std::byte> src);

  /// Publishes the chain to the used ring: writes used->ring[j] (⑩) and
  /// used->idx (⑪).
  sim::Nanos push_used(std::uint16_t head, std::uint32_t written);

 private:
  pcie::DmaEngine* dma_;
  const VirtqueueLayout* layout_;
  std::uint16_t last_avail_ = 0;
  std::uint16_t used_idx_ = 0;
  /// Kick gating: the avail-idx DMA happens only after a fresh doorbell or
  /// while known-published chains remain — an idle poll costs nothing, as
  /// on real hardware where the device sleeps until kicked.
  std::uint32_t kicks_seen_ = 0;
  std::uint16_t cached_avail_ = 0;
};

}  // namespace dpc::virtio
