// Minimal FUSE wire protocol, shaped after <linux/fuse.h>, for the DPFS
// baseline (§2 M2 / Fig. 2): requests travel as
//   [fuse_in_header][op-specific arg][data?]           (driver → device)
//   [fuse_out_header][op-specific out / data?]         (device → driver)
// over a virtio-fs queue.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/check.hpp"

namespace dpc::virtio {

enum class FuseOpcode : std::uint32_t {
  kLookup = 1,
  kGetattr = 3,
  kSetattr = 4,
  kMkdir = 9,
  kUnlink = 10,
  kRmdir = 11,
  kRename = 12,
  kOpen = 14,
  kRead = 15,
  kWrite = 16,
  kRelease = 18,
  kFsync = 20,
  kFlush = 25,
  kReaddir = 28,
  kCreate = 35,
  kDestroy = 38,
};

const char* to_string(FuseOpcode op);

struct FuseInHeader {
  std::uint32_t len = 0;       ///< total request bytes incl. this header
  std::uint32_t opcode = 0;
  std::uint64_t unique = 0;    ///< request id, echoed in the reply
  std::uint64_t nodeid = 0;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint32_t pid = 0;
  std::uint32_t padding = 0;
};
static_assert(sizeof(FuseInHeader) == 40);

struct FuseOutHeader {
  std::uint32_t len = 0;  ///< total reply bytes incl. this header
  std::int32_t error = 0; ///< 0 or -errno
  std::uint64_t unique = 0;
};
static_assert(sizeof(FuseOutHeader) == 16);

struct FuseWriteIn {
  std::uint64_t fh = 0;
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  std::uint32_t write_flags = 0;
  std::uint64_t lock_owner = 0;
  std::uint32_t flags = 0;
  std::uint32_t padding = 0;
};
static_assert(sizeof(FuseWriteIn) == 40);

struct FuseReadIn {
  std::uint64_t fh = 0;
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  std::uint32_t read_flags = 0;
  std::uint64_t lock_owner = 0;
  std::uint32_t flags = 0;
  std::uint32_t padding = 0;
};
static_assert(sizeof(FuseReadIn) == 40);

struct FuseWriteOut {
  std::uint32_t size = 0;
  std::uint32_t padding = 0;
};

/// Serialization helper: append a trivially-copyable struct to a buffer.
template <typename T>
void append_pod(std::vector<std::byte>& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &v, sizeof(T));
}

/// Deserialization helper: read a struct at `off`, checking bounds.
template <typename T>
T read_pod(std::span<const std::byte> buf, std::size_t off = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  DPC_CHECK_MSG(off + sizeof(T) <= buf.size(),
                "short FUSE message: need " << off + sizeof(T) << ", have "
                                            << buf.size());
  T v;
  std::memcpy(&v, buf.data() + off, sizeof(T));
  return v;
}

}  // namespace dpc::virtio
