// virtio-fs transport for the DPFS baseline.
//
// Guest side (VirtioFsGuest): builds the 4-descriptor FUSE chain
//   [in_header][op arg][data?]  →  [out_header][data out?]
// in per-request slots and exposes it over a single virtqueue (the paper:
// "current kernel implementations of DPFS do not support multiple queues").
//
// Device side (DpfsHal): the single DPFS-HAL thread loop — pop the chain,
// pull the request payload, hand it to the registered FUSE handler, push
// the reply, publish the used element. All transfers flow through the
// counting DmaEngine; an 8 KB write costs exactly the 11 DMA operations of
// the paper's Fig. 2(b), which the tests assert.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "virtio/fuse.hpp"
#include "virtio/virtqueue.hpp"
#include "sim/thread_annotations.hpp"

namespace dpc::virtio {

struct VirtioFsConfig {
  std::uint16_t queue_size = 256;
  std::uint16_t request_slots = 32;
  std::uint32_t max_data = 64 * 1024;  ///< per direction, per request
};

/// Reply payloads up to this size share the out-header descriptor.
inline constexpr std::uint32_t kInlineReplyMax = 64;

/// Handle for an in-flight request.
struct FuseTicket {
  std::uint16_t slot = 0;
  std::uint64_t unique = 0;
};

/// A completed reply, viewed in the guest's slot buffers.
struct FuseReplyView {
  std::int32_t error = 0;
  std::uint64_t unique = 0;
  std::span<const std::byte> payload;  ///< bytes after the out header
};

class VirtioFsGuest {
 public:
  VirtioFsGuest(pcie::DmaEngine& dma, const VirtqueueLayout& layout,
                pcie::RegionAllocator& host_alloc, const VirtioFsConfig& cfg);

  /// Submits one FUSE request. `arg` is the op-specific struct bytes,
  /// `data_in` optional payload (writes), `data_out_cap` expected reply
  /// payload bytes (reads / readdir). Blocks (yielding) while all request
  /// slots are busy.
  struct Submitted {
    FuseTicket ticket;
    sim::Nanos cost{};
  };
  Submitted submit(FuseOpcode op, std::uint64_t nodeid,
                   std::span<const std::byte> arg,
                   std::span<const std::byte> data_in,
                   std::uint32_t data_out_cap);

  /// Reaps one completion if available.
  std::optional<FuseTicket> poll();

  /// Spins until `ticket` completes; returns a view of the reply.
  FuseReplyView wait(const FuseTicket& ticket);

  /// Non-blocking: reaps at most one used element, then reports whether
  /// `ticket` is complete (filling `out` if so).
  bool try_wait(const FuseTicket& ticket, FuseReplyView* out);

  /// Returns the slot to the pool (invalidates the reply view).
  void release(const FuseTicket& ticket);

 private:
  struct Slot {
    std::uint64_t hdr_off = 0;       // in_header + arg, contiguous
    std::uint64_t data_in_off = 0;   // page-aligned
    std::uint64_t out_hdr_off = 0;
    std::uint64_t data_out_off = 0;  // page-aligned
    std::uint16_t chain_head = 0;
    std::uint64_t unique = 0;
    bool busy = false;
    bool done = false;
    /// Small replies (op-specific out structs ≤ kInlineReplyMax) ride in
    /// the out-header descriptor, as real FUSE lays out [out_header|arg]
    /// contiguously; large replies (read data) use the data_out buffer.
    bool inline_reply = false;
    /// True once chain_head is valid — submit() publishes the chain before
    /// it can re-acquire the lock to record the head, so completions seen
    /// in that window are stashed until the head is known.
    bool head_set = false;
  };

  pcie::DmaEngine* dma_;
  VirtqueueGuest queue_;
  VirtioFsConfig cfg_;

  mutable sim::AnnotatedMutex mu_{"virtio.fs", sim::LockRank::kDriver};
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  std::vector<std::uint16_t> free_slots_ GUARDED_BY(mu_);
  std::vector<VringUsedElem> stashed_used_ GUARDED_BY(mu_);
  std::uint64_t next_unique_ GUARDED_BY(mu_) = 1;
};

/// Result a FUSE handler returns to the HAL.
struct FuseHandlerResult {
  std::int32_t error = 0;
  std::uint32_t payload_bytes = 0;  ///< bytes it produced in `reply_payload`
};

/// Invoked by the HAL per request: header + request payload (arg ⧺ data),
/// fills `reply_payload` (capacity = writable chain bytes − out header).
using FuseHandler = std::function<FuseHandlerResult(
    const FuseInHeader& hdr, std::span<const std::byte> request_payload,
    std::span<std::byte> reply_payload)>;

class DpfsHal {
 public:
  DpfsHal(pcie::DmaEngine& dma, const VirtqueueLayout& layout,
          FuseHandler handler, std::uint32_t max_data = 64 * 1024);

  struct ProcessStats {
    int processed = 0;
    sim::Nanos cost{};
  };
  /// Drains up to `max` pending requests. Single-threaded by construction —
  /// the DPFS limitation the paper calls out.
  ProcessStats process_available(int max = 1 << 30);

 private:
  pcie::DmaEngine* dma_;
  VirtqueueDevice device_;
  FuseHandler handler_;
  std::vector<std::byte> request_buf_;
  std::vector<std::byte> reply_buf_;
};

}  // namespace dpc::virtio
