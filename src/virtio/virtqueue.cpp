#include "virtio/virtqueue.hpp"

#include "sim/check.hpp"

namespace dpc::virtio {

VirtqueueLayout::VirtqueueLayout(std::uint16_t size,
                                 pcie::RegionAllocator& host,
                                 pcie::RegionAllocator& dpu)
    : size_(size) {
  DPC_CHECK(size >= 2);
  desc_base_ = host.alloc(std::uint64_t{size} * sizeof(VringDesc), 16);
  // avail: flags u16 + idx u16 + ring[size] u16
  avail_base_ = host.alloc(4 + std::uint64_t{size} * 2, 4);
  // used: flags u16 + idx u16 + ring[size] elems (align elems to 4)
  used_base_ = host.alloc(4 + std::uint64_t{size} * sizeof(VringUsedElem), 4);
  notify_ = dpu.alloc(sizeof(std::uint32_t), 64);
}

std::uint64_t VirtqueueLayout::desc_off(std::uint16_t i) const {
  DPC_CHECK(i < size_);
  return desc_base_ + std::uint64_t{i} * sizeof(VringDesc);
}

std::uint64_t VirtqueueLayout::avail_ring_off(std::uint16_t i) const {
  DPC_CHECK(i < size_);
  return avail_base_ + 4 + std::uint64_t{i} * 2;
}

std::uint64_t VirtqueueLayout::used_ring_off(std::uint16_t i) const {
  DPC_CHECK(i < size_);
  return used_base_ + 4 + std::uint64_t{i} * sizeof(VringUsedElem);
}

// --------------------------------------------------------------- guest side

VirtqueueGuest::VirtqueueGuest(pcie::DmaEngine& dma,
                               const VirtqueueLayout& layout)
    : dma_(&dma), layout_(&layout), chain_len_(layout.size(), 0) {
  free_.reserve(layout.size());
  for (std::uint16_t i = layout.size(); i > 0; --i)
    free_.push_back(static_cast<std::uint16_t>(i - 1));
  // Initialize ring indices.
  auto& host = dma_->host();
  host.store<std::uint16_t>(layout_->avail_idx_off(), 0);
  host.store<std::uint16_t>(layout_->used_idx_off(), 0);
}

VirtqueueGuest::AddResult VirtqueueGuest::add_chain(
    const std::vector<ChainSegment>& segments, bool notify) {
  DPC_CHECK(!segments.empty());
  sim::LockGuard lock(mu_);
  DPC_CHECK_MSG(free_.size() >= segments.size(), "virtqueue out of descriptors");

  auto& host = dma_->host();
  // Build the chain back-to-front so each entry knows its successor.
  std::uint16_t next = 0;
  std::uint16_t head = 0;
  for (std::size_t k = segments.size(); k > 0; --k) {
    const auto& seg = segments[k - 1];
    const std::uint16_t idx = free_.back();
    free_.pop_back();
    VringDesc d;
    d.addr = seg.addr;
    d.len = seg.len;
    d.flags = static_cast<std::uint16_t>(
        (seg.device_writable ? kDescFlagWrite : 0) |
        (k < segments.size() ? kDescFlagNext : 0));
    d.next = next;
    host.store(layout_->desc_off(idx), d);
    next = idx;
    head = idx;
  }
  chain_len_[head] = static_cast<std::uint16_t>(segments.size());

  // Publish in the avail ring, then bump idx (release ordering is provided
  // by the atomic store below).
  const std::uint16_t slot = avail_idx_ % layout_->size();
  host.store<std::uint16_t>(layout_->avail_ring_off(slot), head);
  ++avail_idx_;
  host.atomic_u32(layout_->avail_idx_off() & ~3ULL)
      .store(static_cast<std::uint32_t>(avail_idx_) << 16 |
                 host.load<std::uint16_t>(layout_->avail_flags_off()),
             std::memory_order_release);

  AddResult res;
  res.head = head;
  if (notify) {
    const std::uint32_t kick =
        kicks_.fetch_add(1, std::memory_order_relaxed) + 1;
    res.cost = dma_->doorbell(layout_->notify_off(), kick);
  }
  return res;
}

std::optional<VringUsedElem> VirtqueueGuest::poll_used() {
  sim::LockGuard lock(mu_);
  auto& host = dma_->host();
  const auto used_idx = static_cast<std::uint16_t>(
      host.atomic_u32(layout_->used_idx_off() & ~3ULL)
          .load(std::memory_order_acquire) >>
      16);
  if (used_idx == last_used_) return std::nullopt;
  const std::uint16_t slot = last_used_ % layout_->size();
  const auto elem = host.load<VringUsedElem>(layout_->used_ring_off(slot));
  ++last_used_;
  return elem;
}

void VirtqueueGuest::recycle(std::uint16_t head) {
  sim::LockGuard lock(mu_);
  auto& host = dma_->host();
  std::uint16_t idx = head;
  std::uint16_t remaining = chain_len_[head];
  DPC_CHECK_MSG(remaining > 0, "recycle of unknown chain head " << head);
  chain_len_[head] = 0;
  while (remaining-- > 0) {
    const auto d = host.load<VringDesc>(layout_->desc_off(idx));
    free_.push_back(idx);
    if ((d.flags & kDescFlagNext) == 0) break;
    idx = d.next;
  }
}

std::uint16_t VirtqueueGuest::free_descriptors() const {
  sim::LockGuard lock(mu_);
  return static_cast<std::uint16_t>(free_.size());
}

// -------------------------------------------------------------- device side

VirtqueueDevice::VirtqueueDevice(pcie::DmaEngine& dma,
                                 const VirtqueueLayout& layout)
    : dma_(&dma), layout_(&layout) {}

bool VirtqueueDevice::kicked() const {
  return dma_->dpu().atomic_u32(layout_->notify_off())
             .load(std::memory_order_acquire) != 0;
}

std::optional<VirtqueueDevice::PoppedChain> VirtqueueDevice::pop(
    sim::Nanos* cost_out) {
  sim::Nanos cost{};
  if (last_avail_ == cached_avail_) {
    // Kick gate: no fresh doorbell and no known-published work → idle,
    // zero host-memory traffic (the device sleeps until kicked).
    const std::uint32_t kicks =
        dma_->dpu().atomic_u32(layout_->notify_off())
            .load(std::memory_order_acquire);
    if (kicks == kicks_seen_) return std::nullopt;
    kicks_seen_ = kicks;
    // ① Read avail->idx from host memory (atomic acquire: it is the
    // guest's publication word for the whole chain).
    const std::uint32_t flags_idx =
        dma_->host()
            .atomic_u32(layout_->avail_idx_off() & ~3ULL)
            .load(std::memory_order_acquire);
    cached_avail_ = static_cast<std::uint16_t>(flags_idx >> 16);
    cost += dma_->note_transaction(pcie::DmaClass::kDescriptor,
                                   sizeof(std::uint16_t));
    if (cached_avail_ == last_avail_) {
      if (cost_out) *cost_out += cost;
      return std::nullopt;
    }
  }

  PoppedChain chain;
  // ② Read the ring entry that names the chain head.
  std::uint16_t head = 0;
  const std::uint16_t slot = last_avail_ % layout_->size();
  cost += dma_->read_host(layout_->avail_ring_off(slot),
                          std::as_writable_bytes(std::span{&head, 1}),
                          pcie::DmaClass::kDescriptor);
  ++last_avail_;
  chain.head = head;

  // ③… Walk the descriptor chain, one DMA per entry ("the thread starts to
  // read the entries of the data buffer chain one by one").
  std::uint16_t idx = head;
  for (;;) {
    VringDesc d;
    cost += dma_->read_host(layout_->desc_off(idx),
                            std::as_writable_bytes(std::span{&d, 1}),
                            pcie::DmaClass::kDescriptor);
    chain.segments.push_back(
        {d.addr, d.len, (d.flags & kDescFlagWrite) != 0});
    if ((d.flags & kDescFlagNext) == 0) break;
    idx = d.next;
    DPC_CHECK_MSG(chain.segments.size() <= layout_->size(),
                  "descriptor chain loop");
  }

  chain.cost = cost;
  if (cost_out) *cost_out += cost;
  return chain;
}

sim::Nanos VirtqueueDevice::read_payload(const PoppedChain& chain,
                                         std::vector<std::byte>& dst) {
  sim::Nanos cost{};
  dst.clear();
  // Coalesce physically-contiguous readable segments into one transaction —
  // real DMA engines burst contiguous ranges (the FUSE in-header and its
  // argument struct are allocated back-to-back and move as one DMA).
  std::uint64_t run_addr = 0;
  std::uint32_t run_len = 0;
  auto flush = [&] {
    if (run_len == 0) return;
    const std::size_t at = dst.size();
    dst.resize(at + run_len);
    cost += dma_->read_host(run_addr, std::span{dst.data() + at, run_len},
                            pcie::DmaClass::kData);
    run_len = 0;
  };
  for (const auto& seg : chain.segments) {
    if (seg.device_writable) continue;
    if (run_len > 0 && run_addr + run_len == seg.addr) {
      run_len += seg.len;
    } else {
      flush();
      run_addr = seg.addr;
      run_len = seg.len;
    }
  }
  flush();
  return cost;
}

VirtqueueDevice::WriteResult VirtqueueDevice::write_payload(
    const PoppedChain& chain, std::span<const std::byte> src) {
  WriteResult res;
  std::size_t cursor = 0;
  for (const auto& seg : chain.segments) {
    if (!seg.device_writable || cursor >= src.size()) continue;
    const auto n = std::min<std::size_t>(seg.len, src.size() - cursor);
    res.cost += dma_->write_host(seg.addr, src.subspan(cursor, n),
                                 pcie::DmaClass::kData);
    cursor += n;
    res.written += static_cast<std::uint32_t>(n);
  }
  DPC_CHECK_MSG(cursor == src.size(),
                "chain too small: " << src.size() - cursor << " bytes left");
  return res;
}

sim::Nanos VirtqueueDevice::push_used(std::uint16_t head,
                                      std::uint32_t written) {
  sim::Nanos cost{};
  // ⑩ Write the used element…
  const VringUsedElem elem{head, written};
  const std::uint16_t slot = used_idx_ % layout_->size();
  cost += dma_->write_host(layout_->used_ring_off(slot),
                           std::as_bytes(std::span{&elem, 1}),
                           pcie::DmaClass::kDescriptor);
  // ⑪ …then bump used->idx (atomic release: publication word the guest's
  // poll_used() acquires on).
  ++used_idx_;
  auto& host = dma_->host();
  const auto flags =
      host.load<std::uint16_t>(layout_->used_flags_off());
  host.atomic_u32(layout_->used_idx_off() & ~3ULL)
      .store(static_cast<std::uint32_t>(used_idx_) << 16 | flags,
             std::memory_order_release);
  cost += dma_->note_transaction(pcie::DmaClass::kDescriptor,
                                 sizeof(std::uint16_t));
  return cost;
}

}  // namespace dpc::virtio
