// DpfsSystem — the DPFS baseline (§2 M2): host FUSE layer → single
// virtio-fs queue → single DPFS-HAL thread on the DPU → the same KVFS
// backend DPC uses. Functionally equivalent to DpcSystem's standalone
// service, but every request pays the FUSE framing and the 11-DMA virtio
// data path, and all requests serialize behind one HAL thread — the
// comparison of Fig. 6.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dpu/dpu.hpp"
#include "dpu/worker_pool.hpp"
#include "kv/kv_store.hpp"
#include "kv/remote.hpp"
#include "kvfs/kvfs.hpp"
#include "pcie/dma.hpp"
#include "sim/thread_annotations.hpp"
#include "virtio/virtio_fs.hpp"

namespace dpc::core {

struct DpfsOptions {
  std::uint16_t queue_size = 512;
  std::uint16_t request_slots = 64;
  std::uint32_t max_io = 1 << 20;
  int kv_shards = 0;  // 0 = per-core (see KvStore)
};

/// Result of one DPFS call (mirrors core::Io for easy comparison).
struct DpfsIo {
  int err = 0;
  std::uint64_t ino = 0;
  std::uint32_t bytes = 0;
  bool ok() const { return err == 0; }
};

class DpfsSystem {
 public:
  explicit DpfsSystem(const DpfsOptions& opts = {});
  ~DpfsSystem();
  DpfsSystem(const DpfsSystem&) = delete;
  DpfsSystem& operator=(const DpfsSystem&) = delete;

  /// Starts the single DPFS-HAL thread; without it host calls pump inline.
  void start_hal();
  void stop_hal();

  DpfsIo lookup(std::uint64_t parent, const std::string& name);
  DpfsIo create(std::uint64_t parent, const std::string& name,
                std::uint32_t mode = 0644);
  DpfsIo mkdir(std::uint64_t parent, const std::string& name,
               std::uint32_t mode = 0755);
  DpfsIo unlink(std::uint64_t parent, const std::string& name);
  DpfsIo getattr(std::uint64_t ino, kvfs::Attr* attr_out = nullptr);
  DpfsIo readdir(std::uint64_t dir, std::vector<kvfs::DirEntry>* out);
  DpfsIo rename(std::uint64_t old_parent, const std::string& old_name,
                std::uint64_t new_parent, const std::string& new_name);
  DpfsIo read(std::uint64_t ino, std::uint64_t offset,
              std::span<std::byte> dst);
  DpfsIo write(std::uint64_t ino, std::uint64_t offset,
               std::span<const std::byte> src);
  DpfsIo fsync(std::uint64_t ino);

  const pcie::DmaCounters& dma_counters() const { return dma_->counters(); }
  pcie::DmaCounters& dma_counters() { return dma_->counters(); }
  kvfs::Kvfs& kvfs() { return *kvfs_; }

 private:
  struct Reply {
    std::int32_t error = 0;
    std::vector<std::byte> payload;
  };
  Reply call(virtio::FuseOpcode op, std::uint64_t nodeid,
             std::span<const std::byte> arg, std::span<const std::byte> data,
             std::uint32_t data_out_cap);
  int pump();

  DpfsOptions opts_;
  std::unique_ptr<pcie::MemoryRegion> host_mem_;
  std::unique_ptr<pcie::RegionAllocator> host_alloc_;
  std::unique_ptr<dpu::Dpu> dpu_;
  std::unique_ptr<pcie::DmaEngine> dma_;
  std::unique_ptr<virtio::VirtqueueLayout> layout_;
  std::unique_ptr<virtio::VirtioFsGuest> guest_;
  std::unique_ptr<virtio::DpfsHal> hal_;
  sim::AnnotatedMutex pump_mu_{"dpfs.pump", sim::LockRank::kSystem};

  std::unique_ptr<kv::KvStore> kv_store_;
  std::unique_ptr<kv::RemoteKv> remote_kv_;
  std::unique_ptr<kvfs::Kvfs> kvfs_;

  std::unique_ptr<dpu::WorkerPool> hal_thread_;
  std::atomic<bool> hal_running_{false};
};

}  // namespace dpc::core
