#include "core/dpfs_system.hpp"

#include "core/fileproto.hpp"

#include <cerrno>
#include <cstring>
#include <thread>

#include "sim/check.hpp"

namespace dpc::core {

namespace {
constexpr std::uint64_t page_round(std::uint64_t n) {
  return (n + 4095) / 4096 * 4096;
}

std::string_view name_view(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}
}  // namespace

DpfsSystem::DpfsSystem(const DpfsOptions& opts) : opts_(opts) {
  const std::size_t host_size =
      static_cast<std::size_t>(opts.request_slots) *
          (page_round(opts.max_io) * 2 + 4096) +
      (8 << 20);
  host_mem_ = std::make_unique<pcie::MemoryRegion>("host-dpfs", host_size);
  host_alloc_ = std::make_unique<pcie::RegionAllocator>(*host_mem_);
  dpu_ = std::make_unique<dpu::Dpu>();
  dma_ = std::make_unique<pcie::DmaEngine>(*host_mem_, dpu_->bar());

  kv_store_ = std::make_unique<kv::KvStore>(opts.kv_shards);
  remote_kv_ = std::make_unique<kv::RemoteKv>(*kv_store_);
  kvfs_ = std::make_unique<kvfs::Kvfs>(*remote_kv_);

  layout_ = std::make_unique<virtio::VirtqueueLayout>(
      opts.queue_size, *host_alloc_, dpu_->bar_alloc());
  virtio::VirtioFsConfig cfg;
  cfg.queue_size = opts.queue_size;
  cfg.request_slots = opts.request_slots;
  cfg.max_data = opts.max_io;
  guest_ = std::make_unique<virtio::VirtioFsGuest>(*dma_, *layout_,
                                                   *host_alloc_, cfg);

  // DPFS-FUSE: translate FUSE requests onto KVFS (the "file system
  // backend" role of DPFS-FUSE in Fig. 2(a)).
  auto handler = [this](const virtio::FuseInHeader& hdr,
                        std::span<const std::byte> payload,
                        std::span<std::byte> reply) {
    virtio::FuseHandlerResult r;
    const auto op = static_cast<virtio::FuseOpcode>(hdr.opcode);
    switch (op) {
      case virtio::FuseOpcode::kLookup: {
        auto res = kvfs_->lookup(hdr.nodeid, name_view(payload));
        if (!res.ok()) {
          r.error = -res.err;
          return r;
        }
        std::memcpy(reply.data(), &res.value, sizeof(res.value));
        r.payload_bytes = sizeof(res.value);
        return r;
      }
      case virtio::FuseOpcode::kCreate:
      case virtio::FuseOpcode::kMkdir: {
        const auto mode = virtio::read_pod<std::uint32_t>(payload);
        const auto name = name_view(payload.subspan(sizeof(mode)));
        auto res = op == virtio::FuseOpcode::kCreate
                       ? kvfs_->create(hdr.nodeid, name, mode)
                       : kvfs_->mkdir(hdr.nodeid, name, mode);
        if (!res.ok()) {
          r.error = -res.err;
          return r;
        }
        std::memcpy(reply.data(), &res.value, sizeof(res.value));
        r.payload_bytes = sizeof(res.value);
        return r;
      }
      case virtio::FuseOpcode::kUnlink: {
        auto res = kvfs_->unlink(hdr.nodeid, name_view(payload));
        r.error = -res.err;
        return r;
      }
      case virtio::FuseOpcode::kGetattr: {
        auto res = kvfs_->getattr(hdr.nodeid);
        if (!res.ok()) {
          r.error = -res.err;
          return r;
        }
        std::memcpy(reply.data(), &res.value, sizeof(res.value));
        r.payload_bytes = sizeof(res.value);
        return r;
      }
      case virtio::FuseOpcode::kRead: {
        const auto rin = virtio::read_pod<virtio::FuseReadIn>(payload);
        DPC_CHECK(rin.size <= reply.size());
        auto res = kvfs_->read(hdr.nodeid, rin.offset,
                               reply.first(rin.size));
        if (!res.ok()) {
          r.error = -res.err;
          return r;
        }
        r.payload_bytes = res.value;
        return r;
      }
      case virtio::FuseOpcode::kWrite: {
        const auto win = virtio::read_pod<virtio::FuseWriteIn>(payload);
        const auto data = payload.subspan(sizeof(win), win.size);
        auto res = kvfs_->write(hdr.nodeid, win.offset, data);
        if (!res.ok()) {
          r.error = -res.err;
          return r;
        }
        virtio::FuseWriteOut out{res.value, 0};
        std::memcpy(reply.data(), &out, sizeof(out));
        r.payload_bytes = sizeof(out);
        return r;
      }
      case virtio::FuseOpcode::kFsync: {
        auto res = kvfs_->fsync(hdr.nodeid);
        r.error = -res.err;
        return r;
      }
      case virtio::FuseOpcode::kReaddir: {
        auto res = kvfs_->readdir(hdr.nodeid);
        if (!res.ok()) {
          r.error = -res.err;
          return r;
        }
        FileResponse resp;
        resp.entries = std::move(res.value);
        const auto enc = resp.encode();
        DPC_CHECK(enc.size() <= reply.size());
        std::memcpy(reply.data(), enc.data(), enc.size());
        r.payload_bytes = static_cast<std::uint32_t>(enc.size());
        return r;
      }
      case virtio::FuseOpcode::kRename: {
        // arg = new-parent nodeid; data = oldname '\0' newname.
        const auto new_parent = virtio::read_pod<std::uint64_t>(payload);
        const auto names = payload.subspan(sizeof(new_parent));
        const auto* base = reinterpret_cast<const char*>(names.data());
        const std::string_view joined(base, names.size());
        const auto nul = joined.find('\0');
        if (nul == std::string_view::npos) {
          r.error = -EINVAL;
          return r;
        }
        auto res = kvfs_->rename(hdr.nodeid, joined.substr(0, nul),
                                 new_parent, joined.substr(nul + 1));
        r.error = -res.err;
        return r;
      }
      default:
        r.error = -ENOSYS;
        return r;
    }
  };
  hal_ = std::make_unique<virtio::DpfsHal>(*dma_, *layout_, handler,
                                           opts.max_io);
}

DpfsSystem::~DpfsSystem() { stop_hal(); }

void DpfsSystem::start_hal() {
  if (hal_running_.load(std::memory_order_acquire)) return;
  hal_thread_ = std::make_unique<dpu::WorkerPool>();
  hal_thread_->add_poller([this] {
    sim::LockGuard lock(pump_mu_);
    return hal_->process_available(64).processed;
  });
  // "DPFS can only employ a single DPFS-HAL thread" — exactly one worker.
  hal_thread_->start(1);
  hal_running_.store(true, std::memory_order_release);
}

void DpfsSystem::stop_hal() {
  if (!hal_running_.load(std::memory_order_acquire)) return;
  hal_running_.store(false, std::memory_order_release);
  hal_thread_.reset();
}

int DpfsSystem::pump() {
  sim::LockGuard lock(pump_mu_);
  return hal_->process_available(64).processed;
}

DpfsSystem::Reply DpfsSystem::call(virtio::FuseOpcode op, std::uint64_t nodeid,
                                   std::span<const std::byte> arg,
                                   std::span<const std::byte> data,
                                   std::uint32_t data_out_cap) {
  const auto sub = guest_->submit(op, nodeid, arg, data, data_out_cap);
  const bool hal = hal_running_.load(std::memory_order_acquire);
  virtio::FuseReplyView view;
  while (!guest_->try_wait(sub.ticket, &view)) {
    if (!hal)
      pump();
    else
      std::this_thread::yield();
  }
  Reply reply;
  reply.error = view.error;
  reply.payload.assign(view.payload.begin(), view.payload.end());
  guest_->release(sub.ticket);
  return reply;
}

DpfsIo DpfsSystem::lookup(std::uint64_t parent, const std::string& name) {
  const auto reply =
      call(virtio::FuseOpcode::kLookup, parent, {},
           std::as_bytes(std::span{name.data(), name.size()}), 16);
  DpfsIo io;
  if (reply.error != 0) {
    io.err = -reply.error;
    return io;
  }
  DPC_CHECK(reply.payload.size() >= sizeof(std::uint64_t));
  std::memcpy(&io.ino, reply.payload.data(), sizeof(io.ino));
  return io;
}

DpfsIo DpfsSystem::create(std::uint64_t parent, const std::string& name,
                          std::uint32_t mode) {
  std::vector<std::byte> arg(sizeof(mode));
  std::memcpy(arg.data(), &mode, sizeof(mode));
  const auto reply =
      call(virtio::FuseOpcode::kCreate, parent, arg,
           std::as_bytes(std::span{name.data(), name.size()}), 16);
  DpfsIo io;
  if (reply.error != 0) {
    io.err = -reply.error;
    return io;
  }
  std::memcpy(&io.ino, reply.payload.data(), sizeof(io.ino));
  return io;
}

DpfsIo DpfsSystem::mkdir(std::uint64_t parent, const std::string& name,
                         std::uint32_t mode) {
  std::vector<std::byte> arg(sizeof(mode));
  std::memcpy(arg.data(), &mode, sizeof(mode));
  const auto reply =
      call(virtio::FuseOpcode::kMkdir, parent, arg,
           std::as_bytes(std::span{name.data(), name.size()}), 16);
  DpfsIo io;
  if (reply.error != 0) {
    io.err = -reply.error;
    return io;
  }
  std::memcpy(&io.ino, reply.payload.data(), sizeof(io.ino));
  return io;
}

DpfsIo DpfsSystem::unlink(std::uint64_t parent, const std::string& name) {
  const auto reply =
      call(virtio::FuseOpcode::kUnlink, parent, {},
           std::as_bytes(std::span{name.data(), name.size()}), 0);
  DpfsIo io;
  io.err = -reply.error;
  return io;
}

DpfsIo DpfsSystem::getattr(std::uint64_t ino, kvfs::Attr* attr_out) {
  const auto reply = call(virtio::FuseOpcode::kGetattr, ino, {}, {},
                          sizeof(kvfs::Attr));
  DpfsIo io;
  io.ino = ino;
  if (reply.error != 0) {
    io.err = -reply.error;
    return io;
  }
  if (attr_out) {
    DPC_CHECK(reply.payload.size() >= sizeof(kvfs::Attr));
    std::memcpy(attr_out, reply.payload.data(), sizeof(kvfs::Attr));
  }
  return io;
}

DpfsIo DpfsSystem::readdir(std::uint64_t dir,
                           std::vector<kvfs::DirEntry>* out) {
  DPC_CHECK(out != nullptr);
  const auto reply =
      call(virtio::FuseOpcode::kReaddir, dir, {}, {}, opts_.max_io);
  DpfsIo io;
  io.ino = dir;
  if (reply.error != 0) {
    io.err = -reply.error;
    return io;
  }
  *out = FileResponse::decode(reply.payload).entries;
  return io;
}

DpfsIo DpfsSystem::rename(std::uint64_t old_parent,
                          const std::string& old_name,
                          std::uint64_t new_parent,
                          const std::string& new_name) {
  std::vector<std::byte> arg(sizeof(new_parent));
  std::memcpy(arg.data(), &new_parent, sizeof(new_parent));
  std::string names = old_name;
  names.push_back('\0');
  names += new_name;
  const auto reply =
      call(virtio::FuseOpcode::kRename, old_parent, arg,
           std::as_bytes(std::span{names.data(), names.size()}), 0);
  DpfsIo io;
  io.err = -reply.error;
  return io;
}

DpfsIo DpfsSystem::read(std::uint64_t ino, std::uint64_t offset,
                        std::span<std::byte> dst) {
  virtio::FuseReadIn rin;
  rin.offset = offset;
  rin.size = static_cast<std::uint32_t>(dst.size());
  const auto reply = call(virtio::FuseOpcode::kRead, ino,
                          std::as_bytes(std::span{&rin, 1}), {},
                          static_cast<std::uint32_t>(dst.size()));
  DpfsIo io;
  io.ino = ino;
  if (reply.error != 0) {
    io.err = -reply.error;
    return io;
  }
  io.bytes = static_cast<std::uint32_t>(reply.payload.size());
  std::memcpy(dst.data(), reply.payload.data(),
              std::min(dst.size(), reply.payload.size()));
  if (io.bytes < dst.size())
    std::memset(dst.data() + io.bytes, 0, dst.size() - io.bytes);
  return io;
}

DpfsIo DpfsSystem::write(std::uint64_t ino, std::uint64_t offset,
                         std::span<const std::byte> src) {
  virtio::FuseWriteIn win;
  win.offset = offset;
  win.size = static_cast<std::uint32_t>(src.size());
  const auto reply =
      call(virtio::FuseOpcode::kWrite, ino,
           std::as_bytes(std::span{&win, 1}), src,
           sizeof(virtio::FuseWriteOut));
  DpfsIo io;
  io.ino = ino;
  if (reply.error != 0) {
    io.err = -reply.error;
    return io;
  }
  virtio::FuseWriteOut out{};
  DPC_CHECK(reply.payload.size() >= sizeof(out));
  std::memcpy(&out, reply.payload.data(), sizeof(out));
  io.bytes = out.size;
  return io;
}

DpfsIo DpfsSystem::fsync(std::uint64_t ino) {
  const auto reply = call(virtio::FuseOpcode::kFsync, ino, {}, {}, 0);
  DpfsIo io;
  io.ino = ino;
  io.err = -reply.error;
  return io;
}

}  // namespace dpc::core
