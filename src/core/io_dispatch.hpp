// IO_Dispatch — the DPU-side module that routes nvme-fs commands to the
// offloaded stacks (Fig. 3): request-type bit 0 → KVFS (standalone file
// service), bit 1 → the offloaded DFS client.
//
// Data-path commands arrive inline in the SQE (read/write/fsync/truncate);
// metadata commands carry a FileRequest header in the write payload and
// return a FileResponse header in the read payload. Read misses are
// reported to the hybrid-cache control plane so its prefetcher can learn
// sequential streams (Fig. 8).
#pragma once

#include <atomic>
#include <cstdint>

#include "cache/control_plane.hpp"
#include "core/fileproto.hpp"
#include "dfs/client.hpp"
#include "kvfs/kvfs.hpp"
#include "nvme/tgt.hpp"

namespace dpc::core {

struct DispatchStats {
  std::atomic<std::uint64_t> inline_reads{0};
  std::atomic<std::uint64_t> inline_writes{0};
  std::atomic<std::uint64_t> inline_other{0};
  std::atomic<std::uint64_t> header_ops{0};
  std::atomic<std::uint64_t> dfs_ops{0};
  std::atomic<std::uint64_t> errors{0};
  /// Accumulated modelled backend cost (KV / DFS round trips), for the
  /// figure benches' demand estimation.
  std::atomic<std::int64_t> backend_ns{0};
  std::atomic<std::uint64_t> ops{0};
};

class IoDispatch {
 public:
  /// `dfs_client` and `cache_ctl` may be null (standalone-only setups).
  IoDispatch(kvfs::Kvfs& fs, dfs::DfsClient* dfs_client,
             cache::DpuCacheControl* cache_ctl);

  /// The nvme-fs command handler to register with the TGT driver.
  nvme::CommandHandler handler();

  const DispatchStats& stats() const { return stats_; }
  /// Mean modelled backend cost per dispatched op.
  sim::Nanos mean_backend_cost() const;

 private:
  nvme::HandlerResult handle(const nvme::NvmeFsCmd& cmd,
                             std::span<const std::byte> wpayload,
                             std::span<std::byte> rpayload);
  nvme::HandlerResult handle_standalone_inline(
      const nvme::NvmeFsCmd& cmd, std::span<const std::byte> wpayload,
      std::span<std::byte> rpayload);
  nvme::HandlerResult handle_header(const nvme::NvmeFsCmd& cmd,
                                    std::span<const std::byte> wpayload,
                                    std::span<std::byte> rpayload);
  nvme::HandlerResult handle_dfs_inline(const nvme::NvmeFsCmd& cmd,
                                        std::span<const std::byte> wpayload,
                                        std::span<std::byte> rpayload);

  void charge(sim::Nanos backend_cost);

  kvfs::Kvfs* fs_;
  dfs::DfsClient* dfs_;
  cache::DpuCacheControl* cache_ctl_;
  DispatchStats stats_;
};

}  // namespace dpc::core
