// IO_Dispatch — the DPU-side module that routes nvme-fs commands to the
// offloaded stacks (Fig. 3): request-type bit 0 → KVFS (standalone file
// service), bit 1 → the offloaded DFS client.
//
// Data-path commands arrive inline in the SQE (read/write/fsync/truncate);
// metadata commands carry a FileRequest header in the write payload and
// return a FileResponse header in the read payload. Read misses are
// reported to the hybrid-cache control plane so its prefetcher can learn
// sequential streams (Fig. 8).
#pragma once

#include <cstdint>
#include <memory>

#include "cache/control_plane.hpp"
#include "core/fileproto.hpp"
#include "dfs/client.hpp"
#include "kvfs/kvfs.hpp"
#include "nvme/tgt.hpp"
#include "obs/metrics.hpp"

namespace dpc::core {

/// Dispatch counters, registry-backed: the members are named counters in
/// the owning obs::Registry ("dispatch/…"), so they appear in every metrics
/// JSON snapshot while keeping the legacy accessor API (.load()).
struct DispatchStats {
  explicit DispatchStats(obs::Registry& reg)
      : inline_reads(reg.counter("dispatch/inline_reads")),
        inline_writes(reg.counter("dispatch/inline_writes")),
        inline_other(reg.counter("dispatch/inline_other")),
        header_ops(reg.counter("dispatch/header_ops")),
        dfs_ops(reg.counter("dispatch/dfs_ops")),
        errors(reg.counter("dispatch/errors")),
        backend_ns(reg.counter("dispatch/backend_ns")),
        ops(reg.counter("dispatch/ops")),
        wal_fast_acks(reg.counter("dispatch/wal_fast_acks")),
        wal_fallbacks(reg.counter("dispatch/wal_fallbacks")) {}

  obs::Counter& inline_reads;
  obs::Counter& inline_writes;
  obs::Counter& inline_other;
  obs::Counter& header_ops;
  obs::Counter& dfs_ops;
  obs::Counter& errors;
  /// Accumulated modelled backend cost (KV / DFS round trips), for the
  /// figure benches' demand estimation.
  obs::Counter& backend_ns;
  obs::Counter& ops;
  /// Fsyncs acked at NVM persistence (WAL fast path) vs. fsyncs that fell
  /// back to the synchronous flush (degraded log / unloggable page).
  obs::Counter& wal_fast_acks;
  obs::Counter& wal_fallbacks;
};

class IoDispatch {
 public:
  /// `dfs_client` and `cache_ctl` may be null (standalone-only setups).
  /// `registry` hosts the dispatch counters and per-op-class backend
  /// histograms; when null, a private registry is created. `qos` (optional)
  /// scopes per-op counters to the command's tenant. `wal` (optional, with
  /// `cache_ctl`) enables the fsync fast path: ack at NVM persistence and
  /// let the background flusher drain — falling back to the synchronous
  /// flush whenever the log is degraded or a page could not be logged.
  IoDispatch(kvfs::Kvfs& fs, dfs::DfsClient* dfs_client,
             cache::DpuCacheControl* cache_ctl,
             obs::Registry* registry = nullptr,
             dpu::QosManager* qos = nullptr,
             nvm::WriteAheadLog* wal = nullptr);

  /// The nvme-fs command handler to register with the TGT driver.
  nvme::CommandHandler handler();

  const DispatchStats& stats() const { return stats_; }
  /// Mean modelled backend cost per dispatched op.
  sim::Nanos mean_backend_cost() const;

 private:
  nvme::HandlerResult handle(const nvme::NvmeFsCmd& cmd,
                             std::span<const std::byte> wpayload,
                             std::span<std::byte> rpayload);
  nvme::HandlerResult handle_standalone_inline(
      const nvme::NvmeFsCmd& cmd, std::span<const std::byte> wpayload,
      std::span<std::byte> rpayload);
  nvme::HandlerResult handle_header(const nvme::NvmeFsCmd& cmd,
                                    std::span<const std::byte> wpayload,
                                    std::span<std::byte> rpayload);
  nvme::HandlerResult handle_dfs_inline(const nvme::NvmeFsCmd& cmd,
                                        std::span<const std::byte> wpayload,
                                        std::span<std::byte> rpayload);

  void charge(sim::Nanos backend_cost);

  kvfs::Kvfs* fs_;
  dfs::DfsClient* dfs_;
  cache::DpuCacheControl* cache_ctl_;
  dpu::QosManager* qos_;
  nvm::WriteAheadLog* wal_;
  std::unique_ptr<obs::Registry> owned_registry_;  // when none was supplied
  obs::Registry* registry_;
  DispatchStats stats_;
  /// Modelled backend cost distribution per dispatched op.
  sim::Histogram* backend_cost_hist_;
};

}  // namespace dpc::core
