// File-semantic message protocol carried over nvme-fs (and, for the DPFS
// baseline, over FUSE): the header-carrying metadata operations. Data-path
// operations (read/write/fsync/truncate) ride inline in the SQE (§3.2 and
// nvme/spec.hpp); everything with a name travels as a serialized
// FileRequest in the write buffer's header area (WH_len bytes), and the
// reply comes back as a FileResponse in the read buffer's header area
// (RH_len bytes).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kvfs/types.hpp"

namespace dpc::core {

enum class FileOp : std::uint8_t {
  kLookup = 1,
  kCreate,
  kMkdir,
  kUnlink,
  kRmdir,
  kRename,
  kGetattr,
  kReaddir,
  kResolve,  ///< full-path resolution
  kOpen,     ///< path-based open (DFS)
  kLink,     ///< hard link: parent=target ino, aux=new parent, name=new name
  kSymlink,  ///< parent=dir, name=link name, name2=target text
  kReadlink, ///< parent=ino; reply entries[0].name carries the target
};

const char* to_string(FileOp op);

struct FileRequest {
  FileOp op = FileOp::kLookup;
  std::uint64_t parent = 0;
  std::uint64_t aux = 0;        ///< second parent (rename), flags, …
  std::uint32_t mode = 0;
  std::string name;             ///< or full path for kResolve/kOpen
  std::string name2;            ///< rename target name

  std::vector<std::byte> encode() const;
  static FileRequest decode(std::span<const std::byte> buf);
};

struct FileResponse {
  std::int32_t err = 0;         ///< 0 or positive errno
  std::uint64_t ino = 0;
  std::optional<kvfs::Attr> attr;
  /// kReaddir: serialized entries.
  std::vector<kvfs::DirEntry> entries;

  std::vector<std::byte> encode() const;
  static FileResponse decode(std::span<const std::byte> buf);
};

/// Upper bound on an encoded response for sizing read-header capacity.
std::uint32_t response_capacity(std::uint32_t max_dirents);

}  // namespace dpc::core
