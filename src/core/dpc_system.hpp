// DpcSystem — the full DPC stack of Fig. 3, assembled:
//
//   host side:  fs-adapter (this class's public API) + hybrid-cache data
//               plane + NVME-INI drivers over per-thread nvme-fs queues
//   link:       counting DmaEngine (PCIe model)
//   DPU side:   NVME-TGT drivers + IO_Dispatch + KVFS (standalone service)
//               + offloaded DFS client + hybrid-cache control plane, all
//               driven by a WorkerPool standing in for the DPU cores
//   backend:    disaggregated KV store (KVFS) and the DFS cluster
//
// The public file API is what the host kernel's fs-adapter exposes to the
// VFS: reads check the hybrid cache first and only reach the DPU on a miss;
// non-direct writes land in the hybrid cache and are flushed by the DPU
// control plane; DIRECT_IO bypasses the cache both ways (§3.1).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/control_plane.hpp"
#include "cache/host_plane.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/histogram.hpp"
#include "core/io_dispatch.hpp"
#include "dfs/backend.hpp"
#include "dfs/client.hpp"
#include "dpu/dpu.hpp"
#include "dpu/qos.hpp"
#include "fault/injector.hpp"
#include "fault/retry.hpp"
#include "dpu/scrubber.hpp"
#include "dpu/worker_pool.hpp"
#include "kv/kv_store.hpp"
#include "kv/remote.hpp"
#include "kvfs/kvfs.hpp"
#include "nvm/device.hpp"
#include "nvm/wal.hpp"
#include "nvme/ini.hpp"
#include "nvme/queue_pair.hpp"
#include "nvme/tgt.hpp"
#include "pcie/dma.hpp"
#include "sim/calib.hpp"
#include "sim/thread_annotations.hpp"

namespace dpc::core {

struct DpcOptions {
  int queues = 4;                   ///< nvme-fs queue pairs (multi-queue)
  std::uint16_t queue_depth = 16;
  std::uint32_t max_io = 1 << 20;   ///< per-command payload cap (1 MB)
  bool enable_cache = true;
  cache::CacheGeometry cache_geo{4096, cache::CacheMode::kWrite, 4096, 256};
  cache::ControlPlaneConfig cache_ctl{};
  kvfs::KvfsOptions kvfs{};
  int kv_shards = 0;  // 0 = per-core (see KvStore)
  bool with_dfs = true;
  int dpu_workers = 2;
  /// Mount against an existing disaggregated KV store instead of creating
  /// a private one — several DPC mounts (application servers) sharing one
  /// backend, as in the paper's diskless-architecture deployment.
  kv::KvStore* shared_store = nullptr;

  // ---- failure model (all off by default: null injector = zero overhead)
  /// Central fault injector threaded through every layer (TGT CQE
  /// drop/error, remote-KV timeouts, data-server shard faults, cache-flush
  /// failures). Must outlive the system.
  fault::FaultInjector* fault = nullptr;
  /// Retry budget for NVMe commands that time out or complete with a
  /// retryable status (kAbortedByRequest / kDataTransferError).
  fault::RetryPolicy nvme_retry{};
  /// Wall-clock deadline per NVMe command when DPU workers run (the pump
  /// path detects loss deterministically and ignores this).
  int nvme_timeout_ms = 100;
  /// Retry/backoff policy for remote-KV ops and the KV circuit breaker.
  fault::RetryPolicy kv_retry{};
  fault::CircuitBreaker::Config kv_breaker{};

  // ---- background integrity scrub
  /// Runs the DPU-side scrubber as a WorkerPool poller: walks the KV store
  /// (and the DFS shards when with_dfs), re-verifying checksums at
  /// `scrub.items_per_pass` per paced pass and repairing EC shards from
  /// parity. Off by default — zero overhead.
  bool enable_scrubber = false;
  dpu::ScrubberConfig scrub{};

  // ---- NVM write-ahead durability tier (§ robustness)
  /// Stages every fsync'd dirty page (and the KVFS intent records) in a
  /// byte-addressable on-DPU PMEM log before acking: fsync returns at NVM
  /// persistence (~µs) instead of the synchronous KV flush (~100 µs), and
  /// a DPU power-cycle replays the log. Off by default: the pre-WAL
  /// behavior is bit-identical (no device, no log, no fast path).
  bool enable_nvm_wal = false;
  /// Capacity of the PMEM log ring (default: calibrated 16 MiB).
  std::uint64_t nvm_log_bytes = sim::calib::kNvmLogBytes;

  // ---- per-tenant QoS (overload robustness)
  /// DPU-side admission control, weighted fair scheduling and graceful
  /// degradation, keyed on the tenant id each SQE carries in DW10[31:24].
  /// Off by default: a null manager keeps every hook at the pre-QoS
  /// behavior (FIFO dispatch, no admission, no shedding).
  dpu::QosConfig qos{};
};

/// Result of one fs-adapter call.
struct Io {
  int err = 0;  ///< 0 or positive errno
  std::uint64_t ino = 0;
  std::uint32_t bytes = 0;
  bool cache_hit = false;
  /// Modelled host-visible latency of this op (transport + backend).
  sim::Nanos cost{};
  bool ok() const { return err == 0; }
};

class DpcSystem {
 public:
  explicit DpcSystem(const DpcOptions& opts = {});
  ~DpcSystem();
  DpcSystem(const DpcSystem&) = delete;
  DpcSystem& operator=(const DpcSystem&) = delete;

  /// Spawns the DPU worker threads (TGT pollers + cache control plane).
  /// Without this, host calls pump the DPU inline — deterministic mode for
  /// unit tests.
  void start_dpu();
  void stop_dpu();

  /// What a DPU power-cycle recovered.
  struct RestartReport {
    int queues_reset = 0;           ///< nvme-fs queue pairs re-initialized
    std::uint16_t aborted_cids = 0; ///< in-flight commands aborted to host
    kvfs::Kvfs::RecoveryReport fs;  ///< journal replay + fsck repair
    std::uint32_t rebuilt_pages = 0;  ///< cache pages adopted from host DRAM
    int reflushed_pages = 0;          ///< dirty pages pushed down post-crash
    /// A crash point fired *during* recovery (e.g. mid WAL replay): the
    /// crash latch is set again and this report is partial. Power-cycle
    /// again — replay is idempotent, so the retry converges.
    bool interrupted = false;
    sim::Nanos cost{};  ///< modelled recovery time (also "recovery/restart_ns")
    bool clean() const { return fs.clean() && !interrupted; }
  };

  /// Models a DPU power-cycle after a fault-injected crash (§ robustness):
  /// quiesces the workers, resets every nvme-fs controller pair (TGT rings
  /// rewound, in-flight host commands aborted so their waiters requeue),
  /// clears the crash latch, rolls the KVFS keyspace forward (intent-journal
  /// replay + fsck repair), rebuilds the DPU-side cache control state from
  /// the surviving host-DRAM data plane and re-flushes dirty pages, then
  /// restarts the workers if they were running. The fs-adapter's size view
  /// survives deliberately — the host never crashed.
  RestartReport restart_dpu();

  /// Test helper: models a simultaneous *host* power loss — wipes the
  /// host-DRAM cache region (re-formats it empty) and the fs-adapter's
  /// size view, so the only recovery sources left are the KV store and the
  /// NVM log. Call while the DPU is quiesced (before restart_dpu()).
  void wipe_host_cache();

  // ------------------------- standalone (KVFS) file service -------------
  Io create(std::uint64_t parent, const std::string& name,
            std::uint32_t mode = 0644);
  Io mkdir(std::uint64_t parent, const std::string& name,
           std::uint32_t mode = 0755);
  Io lookup(std::uint64_t parent, const std::string& name);
  Io resolve(const std::string& path);
  Io unlink(std::uint64_t parent, const std::string& name);
  Io rmdir(std::uint64_t parent, const std::string& name);
  Io rename(std::uint64_t old_parent, const std::string& old_name,
            std::uint64_t new_parent, const std::string& new_name);
  /// Hard link `ino` as `new_parent`/`name`.
  Io link(std::uint64_t ino, std::uint64_t new_parent,
          const std::string& name);
  Io symlink(const std::string& target, std::uint64_t parent,
             const std::string& name);
  Io readlink(std::uint64_t ino, std::string* target_out);
  Io getattr(std::uint64_t ino, kvfs::Attr* attr_out = nullptr);
  Io readdir(std::uint64_t ino, std::vector<kvfs::DirEntry>* out);

  /// Buffered by default; `direct` = DIRECT_IO (bypass the hybrid cache).
  Io read(std::uint64_t ino, std::uint64_t offset, std::span<std::byte> dst,
          bool direct = false);
  Io write(std::uint64_t ino, std::uint64_t offset,
           std::span<const std::byte> src, bool direct = false);
  Io truncate(std::uint64_t ino, std::uint64_t new_size);
  Io fsync(std::uint64_t ino);

  // --------------------------- distributed (DFS) service ----------------
  /// Only valid when options.with_dfs; these flow through nvme-fs with the
  /// dispatch bit set to "distributed".
  Io dfs_create(const std::string& path, std::uint64_t prealloc = 0);
  Io dfs_open(const std::string& path);
  Io dfs_read(std::uint64_t ino, std::uint64_t offset,
              std::span<std::byte> dst);
  Io dfs_write(std::uint64_t ino, std::uint64_t offset,
               std::span<const std::byte> src);

  // ------------------------------ introspection -------------------------
  const pcie::DmaCounters& dma_counters() const { return dma_->counters(); }
  pcie::DmaCounters& dma_counters() { return dma_->counters(); }
  const cache::HostCacheStats* cache_stats() const;
  const cache::ControlPlaneStats* control_stats() const;
  const kvfs::KvfsStats& kvfs_stats() const { return kvfs_->stats(); }
  const DispatchStats& dispatch_stats() const { return dispatch_->stats(); }
  sim::Nanos mean_backend_cost() const {
    return dispatch_->mean_backend_cost();
  }
  kvfs::Kvfs& kvfs() { return *kvfs_; }
  kv::KvStore& kv_store() { return remote_kv_->store(); }
  dfs::MdsCluster* mds() { return mds_.get(); }
  dfs::DataServers* data_servers() { return data_servers_.get(); }
  cache::DpuCacheControl* cache_control() { return cache_ctl_.get(); }
  /// Null unless options.enable_scrubber.
  dpu::Scrubber* scrubber() { return scrubber_.get(); }
  /// Null unless options.qos.enabled.
  dpu::QosManager* qos_manager() { return qos_.get(); }
  /// Null unless options.enable_nvm_wal.
  nvm::WriteAheadLog* wal() { return wal_.get(); }
  nvm::NvmDevice* nvm_device() { return nvm_dev_.get(); }

  /// Pump-mode internals exposed for the lockrank/model-check harnesses:
  /// the per-queue pump lock (tests acquire them out of order to prove the
  /// detector fires) and the queue count they index over.
  sim::AnnotatedMutex& pump_lock_for_test(int q) { return *pump_mu_.at(q); }
  int pump_queue_count() const { return static_cast<int>(pump_mu_.size()); }
  /// One bare pump pass, as a pump-mode caller would issue inline — lets
  /// the model checker drive a poller straight at the restart freeze.
  int pump_for_test(int q) { return pump(q); }

  /// Tenant identity stamped into every nvme-fs command this thread issues
  /// (SQE DW10[31:24]); sticky until changed, default 0. Workload threads
  /// set it once before their first call.
  static void set_thread_tenant(nvme::TenantId tenant);
  static nvme::TenantId thread_tenant();
  cache::HostCachePlane* host_cache() { return host_cache_.get(); }
  const DpcOptions& options() const { return opts_; }

  /// The system-wide metrics registry: every subsystem's counters and
  /// histograms (dispatch/…, cache.*/…, kvfs/…, nvme.*/…, trace/…) live
  /// here; snapshot with metrics().to_json().
  obs::Registry& metrics() { return registry_; }
  const obs::Registry& metrics() const { return registry_; }

  /// Modelled-latency distributions by op class, recorded per call.
  enum class OpClass : std::uint8_t { kMeta = 0, kRead, kWrite, kCount_ };
  const sim::Histogram& latency(OpClass c) const {
    return *latency_[static_cast<std::size_t>(c)];
  }
  /// One-line human-readable summary (mean/p50/p99 per class).
  std::string latency_summary() const;

 private:
  // One synchronous nvme-fs round trip on this thread's queue.
  struct CallResult {
    nvme::Status status = nvme::Status::kSuccess;
    std::uint32_t result = 0;
    std::vector<std::byte> read_payload;
    sim::Nanos cost{};
  };
  CallResult call(const nvme::IniDriver::Request& req,
                  std::uint32_t read_copy_bytes);
  int queue_for_this_thread();
  int pump(int q);  // inline DPU processing; returns TGT commands processed

  Io header_call(nvme::DispatchTarget target, const FileRequest& req,
                 FileResponse* out);

  DpcOptions opts_;

  /// System-wide metrics registry. Declared before every subsystem so the
  /// counters/histograms they resolve at construction outlive them.
  obs::Registry registry_;

  /// Per-tenant admission/fair-share state shared by every TgtDriver (and
  /// the scrubber / flusher gates); null unless opts_.qos.enabled.
  /// Declared right after the registry: everything below may hold a
  /// pointer to it.
  std::unique_ptr<dpu::QosManager> qos_;

  // Device complex.
  std::unique_ptr<pcie::MemoryRegion> host_mem_;
  std::unique_ptr<pcie::RegionAllocator> host_alloc_;
  std::unique_ptr<dpu::Dpu> dpu_;
  std::unique_ptr<pcie::DmaEngine> dma_;

  /// On-DPU PMEM log device + write-ahead log (null unless
  /// opts_.enable_nvm_wal). Declared before the backends / cache / dispatch
  /// that hold raw pointers into it, and NEVER reset across restart_dpu():
  /// the NVM media is exactly what survives the power cycle.
  std::unique_ptr<nvm::NvmDevice> nvm_dev_;
  std::unique_ptr<nvm::WriteAheadLog> wal_;

  // Transport. Each queue pair shares one QueueTraces between its INI and
  // TGT drivers so per-op stage stamps line up across the "link".
  std::vector<std::unique_ptr<nvme::QueuePair>> qps_;
  std::vector<std::unique_ptr<obs::QueueTraces>> qtraces_;
  std::vector<std::unique_ptr<nvme::IniDriver>> inis_;
  std::vector<std::unique_ptr<nvme::TgtDriver>> tgts_;
  /// Per-queue pump locks (pump-mode only): serialize inline TGT servicing
  /// for one queue. restart_dpu() holds all of them, in index order, for
  /// the whole power cycle (same rank, consistent order — acyclic).
  std::vector<std::unique_ptr<sim::AnnotatedMutex>> pump_mu_;

  // Backends.
  std::unique_ptr<kv::KvStore> kv_store_;
  std::unique_ptr<kv::RemoteKv> remote_kv_;
  std::unique_ptr<kvfs::Kvfs> kvfs_;
  std::unique_ptr<dfs::MdsCluster> mds_;
  std::unique_ptr<dfs::DataServers> data_servers_;
  std::unique_ptr<dfs::DfsClient> dfs_client_;

  // Hybrid cache.
  std::unique_ptr<cache::CacheLayout> cache_layout_;
  std::unique_ptr<cache::HostCachePlane> host_cache_;
  std::unique_ptr<cache::CacheBackend> cache_backend_;
  std::unique_ptr<cache::DpuCacheControl> cache_ctl_;

  // DPU execution.
  std::unique_ptr<dpu::Scrubber> scrubber_;
  std::unique_ptr<IoDispatch> dispatch_;
  std::unique_ptr<dpu::WorkerPool> workers_;
  std::atomic<bool> workers_running_{false};
  std::atomic<int> next_queue_{0};

  // fs-adapter's size view: lets buffered writes grow the file without a
  // DPU round trip per op (one truncate when the size actually grows).
  // Outranks everything: writers hold it across call() (pump locks, INI).
  sim::AnnotatedMutex size_mu_{"dpc.size", sim::LockRank::kAdapter};
  std::unordered_map<std::uint64_t, std::uint64_t> size_cache_
      GUARDED_BY(size_mu_);

  // Per-class modelled-latency distributions ("latency/…" in the registry;
  // thread-safe recording) plus the cache hit/miss host-path split.
  std::array<sim::Histogram*, static_cast<std::size_t>(OpClass::kCount_)>
      latency_;
  sim::Histogram* cache_hit_path_ns_;
  sim::Histogram* cache_miss_path_ns_;
  /// Resolved at construction — restart_dpu() must not do registry name
  /// lookups (shared-lock + hash) while the whole transport is frozen.
  sim::Histogram* restart_ns_;

  // NVMe command retry accounting + deterministic backoff-jitter salt.
  obs::Counter* nvme_retries_;
  obs::Counter* nvme_retry_exhausted_;
  /// kThrottled completions taken through the retry path (admission
  /// rejections honored with the device's retry-after hint).
  obs::Counter* nvme_throttled_;
  obs::Counter* host_integrity_errors_;
  /// Witness for the restart pump-freeze's mutual-exclusion contract: set
  /// while restart_dpu() is inside the power cycle (where it holds — or,
  /// under DPC_CHECK_MUTATE restart-no-freeze, should hold — every pump
  /// lock). pump() bumps "core/pump_conflicts" if it runs with this set;
  /// the real freeze makes that impossible, so any nonzero count proves the
  /// freeze was lost.
  std::atomic<bool> restart_active_{false};
  obs::Counter* pump_conflicts_;
  std::atomic<std::uint64_t> call_seq_{0};
};

}  // namespace dpc::core
