// Raw host↔DPU transmission harnesses for the §4.1 evaluation.
//
// The paper measures nvme-fs vs virtio-fs with "a virtual client in DPU
// that responds to the requests from I/O dispatch with in-memory data", so
// the measured latency is pure transport. These two harnesses build that
// setup over the counting DmaEngine: an NVMe queue-pair path with an echo
// handler, and a single-queue virtio-fs path with an echo FUSE handler.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dpu/dpu.hpp"
#include "nvme/ini.hpp"
#include "nvme/queue_pair.hpp"
#include "nvme/tgt.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pcie/dma.hpp"
#include "sim/thread_annotations.hpp"
#include "virtio/virtio_fs.hpp"

namespace dpc::core {

/// nvme-fs raw harness: N queue pairs, each with its own INI/TGT, handler =
/// virtual client (reads are served from a DPU-resident pattern buffer,
/// writes are swallowed after the payload DMA).
class NvmeRawHarness {
 public:
  struct Options {
    int queues = 8;
    std::uint16_t depth = 32;
    std::uint32_t max_io = 1 << 20;
  };
  NvmeRawHarness();  // default Options
  explicit NvmeRawHarness(const Options& opts);

  /// One synchronous raw write of `len` bytes on queue `q`; returns the
  /// DPU-visible payload echo correctness and accumulates DMA counters.
  bool do_write(int q, std::span<const std::byte> payload);
  /// One synchronous raw read of `len` bytes on queue `q` into `dst`.
  bool do_read(int q, std::span<std::byte> dst);
  /// Submits `n` copies of `payload` as ONE batch (single SQ doorbell via
  /// IniDriver::submit_batch), drains, and waits for every completion.
  /// The batched-hot-path entry benches and doorbell-coalescing tests use.
  bool do_write_batch(int q, int n, std::span<const std::byte> payload);

  /// Drains queue `q` on the "DPU" (call from a DPU worker or inline).
  int pump(int q);

  int queues() const { return static_cast<int>(qps_.size()); }
  pcie::DmaCounters& counters() { return dma_->counters(); }
  nvme::IniDriver& ini(int q) { return *inis_[static_cast<std::size_t>(q)]; }
  nvme::TgtDriver& tgt(int q) { return *tgts_[static_cast<std::size_t>(q)]; }
  /// Harness-wide metrics: nvme.ini/tgt counters + trace/… histograms.
  obs::Registry& metrics() { return registry_; }

 private:
  Options opts_;
  obs::Registry registry_;  // before the drivers that resolve instruments
  std::vector<std::unique_ptr<obs::QueueTraces>> qtraces_;
  std::unique_ptr<pcie::MemoryRegion> host_mem_;
  std::unique_ptr<pcie::RegionAllocator> host_alloc_;
  std::unique_ptr<dpu::Dpu> dpu_;
  std::unique_ptr<pcie::DmaEngine> dma_;
  std::vector<std::unique_ptr<nvme::QueuePair>> qps_;
  std::vector<std::unique_ptr<nvme::IniDriver>> inis_;
  std::vector<std::unique_ptr<nvme::TgtDriver>> tgts_;
  std::vector<std::unique_ptr<sim::AnnotatedMutex>> pump_mu_;  // TGT is 1-consumer
  std::vector<std::byte> pattern_;  // DPU-resident data served to reads
};

/// virtio-fs raw harness: one queue, one DPFS-HAL (the single-thread,
/// single-queue limitation the paper describes), echo FUSE handler.
class VirtioRawHarness {
 public:
  struct Options {
    std::uint16_t queue_size = 512;
    std::uint16_t request_slots = 64;
    std::uint32_t max_io = 1 << 20;
  };
  VirtioRawHarness();  // default Options
  explicit VirtioRawHarness(const Options& opts);

  bool do_write(std::span<const std::byte> payload);
  bool do_read(std::span<std::byte> dst);
  int pump();

  pcie::DmaCounters& counters() { return dma_->counters(); }
  virtio::VirtioFsGuest& guest() { return *guest_; }
  virtio::DpfsHal& hal() { return *hal_; }

 private:
  Options opts_;
  std::unique_ptr<pcie::MemoryRegion> host_mem_;
  std::unique_ptr<pcie::RegionAllocator> host_alloc_;
  std::unique_ptr<dpu::Dpu> dpu_;
  std::unique_ptr<pcie::DmaEngine> dma_;
  std::unique_ptr<virtio::VirtqueueLayout> layout_;
  std::unique_ptr<virtio::VirtioFsGuest> guest_;
  std::unique_ptr<virtio::DpfsHal> hal_;
  sim::AnnotatedMutex pump_mu_{"virtio.pump",
                               sim::LockRank::kSystem};  // 1-thread HAL
  std::vector<std::byte> pattern_;
};

}  // namespace dpc::core
