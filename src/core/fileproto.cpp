#include "core/fileproto.hpp"

#include <cstring>

#include "sim/check.hpp"

namespace dpc::core {

namespace {

class Writer {
 public:
  explicit Writer(std::vector<std::byte>& buf) : buf_(&buf) {}
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto at = buf_->size();
    buf_->resize(at + sizeof(T));
    std::memcpy(buf_->data() + at, &v, sizeof(T));
  }
  void str(const std::string& s) {
    DPC_CHECK(s.size() <= UINT16_MAX);
    pod(static_cast<std::uint16_t>(s.size()));
    const auto at = buf_->size();
    buf_->resize(at + s.size());
    std::memcpy(buf_->data() + at, s.data(), s.size());
  }

 private:
  std::vector<std::byte>* buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> buf) : buf_(buf) {}
  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    DPC_CHECK_MSG(at_ + sizeof(T) <= buf_.size(), "short file message");
    T v;
    std::memcpy(&v, buf_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return v;
  }
  std::string str() {
    const auto n = pod<std::uint16_t>();
    DPC_CHECK_MSG(at_ + n <= buf_.size(), "short file message (string)");
    std::string s(reinterpret_cast<const char*>(buf_.data() + at_), n);
    at_ += n;
    return s;
  }

 private:
  std::span<const std::byte> buf_;
  std::size_t at_ = 0;
};

constexpr std::uint8_t kHasAttr = 1;
}  // namespace

const char* to_string(FileOp op) {
  switch (op) {
    case FileOp::kLookup:
      return "lookup";
    case FileOp::kCreate:
      return "create";
    case FileOp::kMkdir:
      return "mkdir";
    case FileOp::kUnlink:
      return "unlink";
    case FileOp::kRmdir:
      return "rmdir";
    case FileOp::kRename:
      return "rename";
    case FileOp::kGetattr:
      return "getattr";
    case FileOp::kReaddir:
      return "readdir";
    case FileOp::kResolve:
      return "resolve";
    case FileOp::kOpen:
      return "open";
    case FileOp::kLink:
      return "link";
    case FileOp::kSymlink:
      return "symlink";
    case FileOp::kReadlink:
      return "readlink";
  }
  return "?";
}

std::vector<std::byte> FileRequest::encode() const {
  std::vector<std::byte> buf;
  buf.reserve(32 + name.size() + name2.size());
  Writer w(buf);
  w.pod(static_cast<std::uint8_t>(op));
  w.pod(parent);
  w.pod(aux);
  w.pod(mode);
  w.str(name);
  w.str(name2);
  return buf;
}

FileRequest FileRequest::decode(std::span<const std::byte> buf) {
  Reader r(buf);
  FileRequest req;
  req.op = static_cast<FileOp>(r.pod<std::uint8_t>());
  req.parent = r.pod<std::uint64_t>();
  req.aux = r.pod<std::uint64_t>();
  req.mode = r.pod<std::uint32_t>();
  req.name = r.str();
  req.name2 = r.str();
  return req;
}

std::vector<std::byte> FileResponse::encode() const {
  std::vector<std::byte> buf;
  Writer w(buf);
  w.pod(err);
  w.pod(ino);
  w.pod(static_cast<std::uint8_t>(attr ? kHasAttr : 0));
  if (attr) w.pod(*attr);
  w.pod(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.str(e.name);
    w.pod(e.ino);
  }
  return buf;
}

FileResponse FileResponse::decode(std::span<const std::byte> buf) {
  Reader r(buf);
  FileResponse res;
  res.err = r.pod<std::int32_t>();
  res.ino = r.pod<std::uint64_t>();
  if (r.pod<std::uint8_t>() & kHasAttr) res.attr = r.pod<kvfs::Attr>();
  const auto n = r.pod<std::uint32_t>();
  res.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    kvfs::DirEntry e;
    e.name = r.str();
    e.ino = r.pod<std::uint64_t>();
    res.entries.push_back(std::move(e));
  }
  return res;
}

std::uint32_t response_capacity(std::uint32_t max_dirents) {
  // err + ino + flag + attr + count + per-entry (len + 1024 name + ino).
  return 4 + 8 + 1 + static_cast<std::uint32_t>(sizeof(kvfs::Attr)) + 4 +
         max_dirents * (2 + 1024 + 8);
}

}  // namespace dpc::core
