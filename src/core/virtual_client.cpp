#include "core/virtual_client.hpp"

#include <cstring>
#include <thread>

#include "sim/check.hpp"

namespace dpc::core {

namespace {
constexpr std::uint64_t page_round(std::uint64_t n) {
  return (n + 4095) / 4096 * 4096;
}

std::vector<std::byte> make_pattern(std::size_t n) {
  std::vector<std::byte> p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::byte>((i * 131) & 0xFF);
  return p;
}
}  // namespace

NvmeRawHarness::NvmeRawHarness() : NvmeRawHarness(Options{}) {}

NvmeRawHarness::NvmeRawHarness(const Options& opts)
    : opts_(opts), pattern_(make_pattern(opts.max_io)) {
  const std::uint64_t slot = page_round(opts.max_io) * 2 + 2 * 4096;
  const std::size_t host_size =
      static_cast<std::size_t>(opts.queues) * opts.depth * slot +
      static_cast<std::size_t>(opts.queues) * opts.depth * 96 + (4 << 20);
  host_mem_ = std::make_unique<pcie::MemoryRegion>("host-raw", host_size);
  host_alloc_ = std::make_unique<pcie::RegionAllocator>(*host_mem_);
  dpu_ = std::make_unique<dpu::Dpu>();
  dma_ = std::make_unique<pcie::DmaEngine>(*host_mem_, dpu_->bar());

  // Virtual client: "responds to the requests from I/O dispatch with
  // in-memory data" (§4.1).
  auto handler = [this](const nvme::NvmeFsCmd& cmd,
                        std::span<const std::byte> wpayload,
                        std::span<std::byte> rpayload) {
    nvme::HandlerResult r;
    if (cmd.write_len > 0) {
      // Touch the payload so the compiler can't elide the DMA'd bytes.
      volatile std::uint8_t sink = 0;
      sink = static_cast<std::uint8_t>(wpayload[0]);
      (void)sink;
      r.result = cmd.write_len;
    }
    if (cmd.read_len > 0) {
      DPC_CHECK(cmd.read_len <= pattern_.size());
      std::memcpy(rpayload.data(), pattern_.data(), cmd.read_len);
      r.read_bytes = cmd.read_len;
      r.result = cmd.read_len;
    }
    return r;
  };

  for (int q = 0; q < opts.queues; ++q) {
    nvme::QpConfig qc;
    qc.qid = static_cast<std::uint16_t>(q);
    qc.depth = opts.depth;
    qc.max_write = opts.max_io;
    qc.max_read = opts.max_io;
    qps_.push_back(std::make_unique<nvme::QueuePair>(qc, *host_alloc_,
                                                     dpu_->bar_alloc()));
    qtraces_.push_back(
        std::make_unique<obs::QueueTraces>(registry_, opts.depth));
    inis_.push_back(std::make_unique<nvme::IniDriver>(*dma_, *qps_.back(),
                                                      qtraces_.back().get()));
    tgts_.push_back(std::make_unique<nvme::TgtDriver>(
        *dma_, *qps_.back(), handler, qtraces_.back().get()));
    pump_mu_.push_back(std::make_unique<sim::AnnotatedMutex>(
        "virtual.pump", sim::LockRank::kSystem));
  }
}

bool NvmeRawHarness::do_write(int q, std::span<const std::byte> payload) {
  nvme::IniDriver& ini = *inis_[static_cast<std::size_t>(q)];
  nvme::IniDriver::Request r;
  r.tenant = 0;  // raw harness is single-tenant
  r.inline_op = nvme::InlineOp::kWrite;
  r.write_data = payload;
  const auto sub = ini.submit(r);
  for (;;) {
    if (auto c = ini.try_take(sub.cid)) {
      const bool ok = c->status == nvme::Status::kSuccess &&
                      c->result == payload.size();
      ini.release(sub.cid);
      return ok;
    }
    pump(q);
    std::this_thread::yield();
  }
}

bool NvmeRawHarness::do_read(int q, std::span<std::byte> dst) {
  nvme::IniDriver& ini = *inis_[static_cast<std::size_t>(q)];
  nvme::IniDriver::Request r;
  r.tenant = 0;  // raw harness is single-tenant
  r.inline_op = nvme::InlineOp::kRead;
  r.read_data_cap = static_cast<std::uint32_t>(dst.size());
  const auto sub = ini.submit(r);
  for (;;) {
    if (auto c = ini.try_take(sub.cid)) {
      bool ok = c->status == nvme::Status::kSuccess &&
                c->result == dst.size();
      if (ok) {
        auto payload = ini.read_payload(sub.cid, dst.size());
        std::memcpy(dst.data(), payload.data(), dst.size());
      }
      ini.release(sub.cid);
      return ok;
    }
    pump(q);
    std::this_thread::yield();
  }
}

bool NvmeRawHarness::do_write_batch(int q, int n,
                                    std::span<const std::byte> payload) {
  nvme::IniDriver& ini = *inis_[static_cast<std::size_t>(q)];
  // This helper submits then drains on one thread: a batch wider than the
  // queue's depth-1 cid pool would park submit_batch on free_cv_ with
  // nobody left to pump.
  DPC_CHECK(n < static_cast<int>(opts_.depth));
  nvme::IniDriver::Request r;
  r.tenant = 0;  // raw harness is single-tenant
  r.inline_op = nvme::InlineOp::kWrite;
  r.write_data = payload;
  const std::vector<nvme::IniDriver::Request> reqs(
      static_cast<std::size_t>(n), r);
  const auto sub = ini.submit_batch(reqs);
  bool ok = true;
  for (const std::uint16_t cid : sub.cids) {
    for (;;) {
      if (auto c = ini.try_take(cid)) {
        ok = ok && c->status == nvme::Status::kSuccess &&
             c->result == payload.size();
        ini.release(cid);
        break;
      }
      pump(q);
      std::this_thread::yield();
    }
  }
  return ok;
}

int NvmeRawHarness::pump(int q) {
  sim::LockGuard lock(*pump_mu_[static_cast<std::size_t>(q)]);
  return tgts_[static_cast<std::size_t>(q)]->process_available(64).processed;
}

// ----------------------------------------------------------------- virtio

VirtioRawHarness::VirtioRawHarness() : VirtioRawHarness(Options{}) {}

VirtioRawHarness::VirtioRawHarness(const Options& opts)
    : opts_(opts), pattern_(make_pattern(opts.max_io)) {
  const std::size_t host_size =
      static_cast<std::size_t>(opts.request_slots) *
          (page_round(opts.max_io) * 2 + 4096) +
      (4 << 20);
  host_mem_ = std::make_unique<pcie::MemoryRegion>("host-virtio", host_size);
  host_alloc_ = std::make_unique<pcie::RegionAllocator>(*host_mem_);
  dpu_ = std::make_unique<dpu::Dpu>();
  dma_ = std::make_unique<pcie::DmaEngine>(*host_mem_, dpu_->bar());

  layout_ = std::make_unique<virtio::VirtqueueLayout>(
      opts.queue_size, *host_alloc_, dpu_->bar_alloc());
  virtio::VirtioFsConfig cfg;
  cfg.queue_size = opts.queue_size;
  cfg.request_slots = opts.request_slots;
  cfg.max_data = opts.max_io;
  guest_ = std::make_unique<virtio::VirtioFsGuest>(*dma_, *layout_,
                                                   *host_alloc_, cfg);

  auto handler = [this](const virtio::FuseInHeader& hdr,
                        std::span<const std::byte> payload,
                        std::span<std::byte> reply) {
    virtio::FuseHandlerResult r;
    switch (static_cast<virtio::FuseOpcode>(hdr.opcode)) {
      case virtio::FuseOpcode::kWrite: {
        const auto win =
            virtio::read_pod<virtio::FuseWriteIn>(payload);
        virtio::FuseWriteOut out{win.size, 0};
        std::memcpy(reply.data(), &out, sizeof(out));
        r.payload_bytes = sizeof(out);
        return r;
      }
      case virtio::FuseOpcode::kRead: {
        const auto rin = virtio::read_pod<virtio::FuseReadIn>(payload);
        DPC_CHECK(rin.size <= pattern_.size());
        DPC_CHECK(rin.size <= reply.size());
        std::memcpy(reply.data(), pattern_.data(), rin.size);
        r.payload_bytes = rin.size;
        return r;
      }
      default:
        r.error = -38;  // ENOSYS
        return r;
    }
  };
  hal_ = std::make_unique<virtio::DpfsHal>(*dma_, *layout_, handler,
                                           opts.max_io);
}

bool VirtioRawHarness::do_write(std::span<const std::byte> payload) {
  virtio::FuseWriteIn win;
  win.size = static_cast<std::uint32_t>(payload.size());
  const auto sub = guest_->submit(virtio::FuseOpcode::kWrite, 1,
                                  std::as_bytes(std::span{&win, 1}), payload,
                                  sizeof(virtio::FuseWriteOut));
  virtio::FuseReplyView reply;
  while (!guest_->try_wait(sub.ticket, &reply)) {
    pump();
    std::this_thread::yield();
  }
  const bool ok = reply.error == 0;
  guest_->release(sub.ticket);
  return ok;
}

bool VirtioRawHarness::do_read(std::span<std::byte> dst) {
  virtio::FuseReadIn rin;
  rin.size = static_cast<std::uint32_t>(dst.size());
  const auto sub =
      guest_->submit(virtio::FuseOpcode::kRead, 1,
                     std::as_bytes(std::span{&rin, 1}), {},
                     static_cast<std::uint32_t>(dst.size()));
  virtio::FuseReplyView reply;
  while (!guest_->try_wait(sub.ticket, &reply)) {
    pump();
    std::this_thread::yield();
  }
  bool ok = reply.error == 0 && reply.payload.size() >= dst.size();
  if (ok) std::memcpy(dst.data(), reply.payload.data(), dst.size());
  guest_->release(sub.ticket);
  return ok;
}

int VirtioRawHarness::pump() {
  sim::LockGuard lock(pump_mu_);
  return hal_->process_available(64).processed;
}

}  // namespace dpc::core
