#include "core/dpc_system.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "ec/crc32c.hpp"
#include "sim/calib.hpp"
#include "sim/check.hpp"

namespace dpc::core {

namespace {

constexpr std::uint32_t kCachePage = 4096;

/// Tenant identity of this host thread, stamped into every Request it
/// builds. Thread-local (not per-call) so the fs-adapter API stays
/// unchanged for the common single-tenant case.
thread_local nvme::TenantId tl_tenant = 0;

std::uint64_t page_round(std::uint64_t n) { return (n + 4095) / 4096 * 4096; }

/// Host memory needed for the queue slots, rings and the hybrid cache.
std::size_t host_region_size(const DpcOptions& o) {
  // wbuf + rbuf (each max_write/max_read = max_io + header page, plus the
  // integrity trailer, page-rounded) + 2 PRP list pages — mirrors
  // QueuePair's slot layout.
  const std::uint64_t slot =
      page_round(o.max_io + 4096 + nvme::kPayloadCrcBytes) * 2 + 2 * 4096;
  std::uint64_t total = std::uint64_t{static_cast<std::uint64_t>(o.queues)} *
                        o.queue_depth * slot;
  total += std::uint64_t{static_cast<std::uint64_t>(o.queues)} *
           (o.queue_depth * 64ULL + o.queue_depth * 16ULL + 8192);
  if (o.enable_cache) {
    total += 64 + std::uint64_t{o.cache_geo.buckets} * 4 +
             std::uint64_t{o.cache_geo.total_pages} *
                 (sizeof(cache::CacheEntry) + o.cache_geo.page_size);
  }
  return total + (8 << 20);  // slack
}

/// Hybrid-cache backend → KVFS pages.
class KvfsCacheBackend final : public cache::CacheBackend {
 public:
  explicit KvfsCacheBackend(kvfs::Kvfs& fs) : fs_(&fs) {}

  bool read_page(std::uint64_t inode, std::uint64_t lpn,
                 std::span<std::byte> dst, sim::Nanos& cost) override {
    auto res = fs_->read(inode, lpn * kCachePage, dst);
    cost += res.cost;
    return res.ok() && res.value > 0;
  }
  bool write_page(std::uint64_t inode, std::uint64_t lpn,
                  std::span<const std::byte> src,
                  sim::Nanos& cost) override {
    // Note on ordering: a flush may land before the adapter's async size
    // update and transiently grow the file to the page boundary; the
    // in-flight truncate/size RPC serializes after it on the inode lock
    // and restores the exact size (and zeroes the boundary tail). The
    // adapter also drops/zeroes cached pages *before* issuing a truncate,
    // so no stale page can regrow the file afterwards.
    auto res = fs_->write(inode, lpn * kCachePage, src);
    cost += res.cost;
    if (res.err == ENOENT) return true;  // racing unlink: drop the page
    // Transient KVFS failure (injected or real): report it so the flusher
    // keeps the page dirty and retries on a later pass.
    return res.ok();
  }

 private:
  kvfs::Kvfs* fs_;
};

}  // namespace

DpcSystem::DpcSystem(const DpcOptions& opts)
    : opts_(opts),
      latency_{&registry_.histogram("latency/meta_ns"),
               &registry_.histogram("latency/read_ns"),
               &registry_.histogram("latency/write_ns")},
      cache_hit_path_ns_(&registry_.histogram("cache/hit_path_ns")),
      cache_miss_path_ns_(&registry_.histogram("cache/miss_path_ns")),
      restart_ns_(&registry_.histogram("recovery/restart_ns")),
      nvme_retries_(&registry_.counter("retry/attempts")),
      nvme_retry_exhausted_(&registry_.counter("retry/exhausted")),
      nvme_throttled_(&registry_.counter("retry/throttled")),
      host_integrity_errors_(
          &registry_.counter("nvme.host/integrity_errors")),
      pump_conflicts_(&registry_.counter("core/pump_conflicts")) {
  DPC_CHECK(opts.queues >= 1 && opts.queue_depth >= 2);

  if (opts.qos.enabled)
    qos_ = std::make_unique<dpu::QosManager>(opts.qos, registry_);

  host_mem_ = std::make_unique<pcie::MemoryRegion>("host-dram",
                                                   host_region_size(opts));
  host_alloc_ = std::make_unique<pcie::RegionAllocator>(*host_mem_);
  dpu_ = std::make_unique<dpu::Dpu>();
  dma_ = std::make_unique<pcie::DmaEngine>(*host_mem_, dpu_->bar());

  // NVM write-ahead durability tier: on-DPU PMEM log device + WAL. The
  // media lives outside every restart path — restart_dpu() recovers *from*
  // it, so these are constructed once and never reset.
  if (opts.enable_nvm_wal) {
    nvm_dev_ = std::make_unique<nvm::NvmDevice>(opts.nvm_log_bytes,
                                                opts.fault, &registry_);
    wal_ =
        std::make_unique<nvm::WriteAheadLog>(*nvm_dev_, registry_, opts.fault);
  }

  // Backends.
  if (opts.shared_store == nullptr) {
    kv_store_ = std::make_unique<kv::KvStore>(opts.kv_shards);
  }
  kv::KvStore& store =
      opts.shared_store != nullptr ? *opts.shared_store : *kv_store_;
  // Corruption sites (bit-rot / torn writes) fire inside the store we own;
  // a shared store's owner decides its own injector.
  if (kv_store_ != nullptr && opts.fault != nullptr)
    kv_store_->attach_fault(opts.fault);
  remote_kv_ = std::make_unique<kv::RemoteKv>(store, opts.fault, &registry_,
                                              opts.kv_retry, opts.kv_breaker);
  kvfs::KvfsOptions kvfs_opts = opts.kvfs;
  if (kvfs_opts.fault == nullptr) kvfs_opts.fault = opts.fault;
  if (wal_) kvfs_opts.wal = wal_.get();
  kvfs_ = std::make_unique<kvfs::Kvfs>(*remote_kv_, kvfs_opts, &registry_);
  if (qos_) kvfs_->attach_qos(qos_.get());
  if (opts.with_dfs) {
    mds_ = std::make_unique<dfs::MdsCluster>();
    data_servers_ = std::make_unique<dfs::DataServers>(
        sim::calib::kDataServers, opts.fault, &registry_);
    dfs_client_ = std::make_unique<dfs::DfsClient>(
        1, *mds_, *data_servers_, dfs::ClientConfig::dpc_offloaded(),
        &registry_);
  }

  // Hybrid cache.
  if (opts.enable_cache) {
    cache_layout_ =
        std::make_unique<cache::CacheLayout>(opts.cache_geo, *host_alloc_);
    host_cache_ = std::make_unique<cache::HostCachePlane>(
        *host_mem_, *cache_layout_, &registry_);
    cache_backend_ = std::make_unique<KvfsCacheBackend>(*kvfs_);
    cache_ctl_ = std::make_unique<cache::DpuCacheControl>(
        *dma_, *cache_layout_, *cache_backend_,
        std::make_unique<cache::ClockEviction>(), opts.cache_ctl, &registry_,
        opts.fault);
    if (qos_) cache_ctl_->attach_qos(qos_.get());
    if (wal_) cache_ctl_->attach_wal(wal_.get());
  }

  // Background integrity scrubber (DPU-side poller once start_dpu runs).
  if (opts.enable_scrubber) {
    scrubber_ =
        std::make_unique<dpu::Scrubber>(opts.scrub, registry_, opts.fault);
    scrubber_->attach_kv(&store);
    if (opts.with_dfs) scrubber_->attach_dfs(data_servers_.get(), mds_.get());
    if (qos_) scrubber_->attach_qos(qos_.get());
  }

  // Dispatch + transport.
  dispatch_ = std::make_unique<IoDispatch>(*kvfs_, dfs_client_.get(),
                                           cache_ctl_.get(), &registry_,
                                           qos_.get(), wal_.get());
  for (int q = 0; q < opts.queues; ++q) {
    nvme::QpConfig qc;
    qc.qid = static_cast<std::uint16_t>(q);
    qc.depth = opts.queue_depth;
    qc.max_write = opts.max_io + 4096;
    qc.max_read = opts.max_io + 4096;
    qps_.push_back(std::make_unique<nvme::QueuePair>(qc, *host_alloc_,
                                                     dpu_->bar_alloc()));
    qtraces_.push_back(
        std::make_unique<obs::QueueTraces>(registry_, opts.queue_depth));
    inis_.push_back(std::make_unique<nvme::IniDriver>(*dma_, *qps_.back(),
                                                      qtraces_.back().get()));
    tgts_.push_back(std::make_unique<nvme::TgtDriver>(
        *dma_, *qps_.back(), dispatch_->handler(), qtraces_.back().get(),
        opts.fault, qos_.get()));
    pump_mu_.push_back(std::make_unique<sim::AnnotatedMutex>(
        "dpc.pump", sim::LockRank::kSystem));
  }
}

DpcSystem::~DpcSystem() { stop_dpu(); }

void DpcSystem::start_dpu() {
  if (workers_running_.load(std::memory_order_acquire)) return;
  workers_ = std::make_unique<dpu::WorkerPool>();
  // Graceful degradation: with QoS on, background pollers (flusher,
  // scrubber) run on surplus capacity only — the pool skips them while the
  // staging queues sit above the admission high-water mark.
  if (qos_) {
    dpu::QosManager* q = qos_.get();
    workers_->set_background_gate([q] { return q->overloaded(); });
  }
  for (auto& tgt : tgts_) {
    nvme::TgtDriver* t = tgt.get();
    workers_->add_poller([t] { return t->process_available(64).processed; });
  }
  if (cache_ctl_) {
    cache::DpuCacheControl* ctl = cache_ctl_.get();
    workers_->add_poller([ctl] { return ctl->poll(); }, /*background=*/true);
  }
  if (scrubber_) {
    dpu::Scrubber* s = scrubber_.get();
    workers_->add_poller([s] { return s->poll(); }, /*background=*/true);
  }
  workers_->start(opts_.dpu_workers);
  workers_running_.store(true, std::memory_order_release);
}

void DpcSystem::stop_dpu() {
  if (!workers_running_.load(std::memory_order_acquire)) return;
  workers_running_.store(false, std::memory_order_release);
  workers_.reset();
}

namespace {

/// Holds every pump lock, in index order (same rank, consistent order —
/// acyclic), releasing in reverse on every exit path — including a
/// CrashException unwinding out of a recovery step.
struct PumpFreeze {
  explicit PumpFreeze(std::vector<std::unique_ptr<sim::AnnotatedMutex>>& mus)
      NO_THREAD_SAFETY_ANALYSIS : mus(&mus) {
    for (auto& mu : mus) mu->lock();
  }
  ~PumpFreeze() NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = mus->rbegin(); it != mus->rend(); ++it) (*it)->unlock();
  }
  PumpFreeze(const PumpFreeze&) = delete;
  PumpFreeze& operator=(const PumpFreeze&) = delete;
  std::vector<std::unique_ptr<sim::AnnotatedMutex>>* mus;
};

/// Scope flag for the restart window. Declared *after* the PumpFreeze so it
/// clears before the freeze releases — pump() can never observe it set on
/// any exit path, including a CrashException unwinding a recovery step.
struct RestartWindow {
  explicit RestartWindow(std::atomic<bool>& f) : flag(&f) {
    flag->store(true, std::memory_order_release);
  }
  ~RestartWindow() { flag->store(false, std::memory_order_release); }
  RestartWindow(const RestartWindow&) = delete;
  RestartWindow& operator=(const RestartWindow&) = delete;
  std::atomic<bool>* flag;
};

}  // namespace

// Pointer-loop locking over pump_mu_ — opt the definition out of the
// static analysis; the runtime lock-rank detector still covers it.
DpcSystem::RestartReport DpcSystem::restart_dpu() NO_THREAD_SAFETY_ANALYSIS {
  RestartReport rep;
  const bool was_running = workers_running_.load(std::memory_order_acquire);
  stop_dpu();
  {
    // Freeze pump-mode callers for the whole power cycle. Without this, a
    // pump-mode caller could drive its TgtDriver mid-reset and replay
    // stale SQEs against a half-rewound ring. DPC_CHECK_MUTATE
    // restart-no-freeze skips the freeze so dpc_check can prove the race
    // is real (a pump caller observes a half-rewound ring).
    std::optional<PumpFreeze> freeze;
    if (!sim::schedhook::mutate("restart-no-freeze")) freeze.emplace(pump_mu_);
    RestartWindow window(restart_active_);
    sim::schedhook::point("core.restart_begin");
    // ① Controller reset, per queue pair — TGT side only for now. It rewinds
    // the ring indices the INI's doorbell zeroing would otherwise
    // desynchronize. The INI aborts come *last* (step ⑤): aborted waiters
    // retry immediately, and they must wake into a recovered controller, not
    // one whose keyspace repair is still in flight.
    for (std::size_t q = 0; q < tgts_.size(); ++q) {
      tgts_[q]->reset();
      ++rep.queues_reset;
    }
    // ② Lift the crash latch so the recovery passes below can run.
    if (opts_.fault != nullptr) opts_.fault->clear_crash();
    // ③④ may themselves hit an armed crash point (crash *during* WAL/journal
    // replay or during the post-recovery drain). The latch is set again;
    // report the cycle as interrupted and let the caller power-cycle once
    // more — replay is idempotent, so the retry converges.
    try {
      // ③ Square the keyspace: NVM-log replay (data pages + journal
      // intents), then the KV-resident intent journal, then fsck repair as
      // the backstop for anything neither log could see.
      rep.fs = kvfs_->recover();
      rep.cost += rep.fs.cost;
      // ④ Rebuild the DPU-side cache control state from the surviving
      // host-DRAM data plane, then push down whatever was dirty at the
      // crash.
      if (cache_ctl_) {
        const auto rebuilt = cache_ctl_->rebuild();
        rep.rebuilt_pages = static_cast<std::uint32_t>(rebuilt.pages);
        rep.cost += rebuilt.cost;
        const auto flushed = cache_ctl_->flush_pass();
        rep.reflushed_pages = flushed.pages;
        rep.cost += flushed.cost;
      }
    } catch (const fault::CrashException&) {
      rep.interrupted = true;
    }
    // ⑤ Host-side controller reset: every in-flight cid gets a synthetic
    // abort so blocked callers requeue through the normal retry path.
    for (auto& ini : inis_)
      rep.aborted_cids =
          static_cast<std::uint16_t>(rep.aborted_cids + ini->reset());
    restart_ns_->record(rep.cost);
    // Bracket the window with a second decision point: the checker gets a
    // preemption opportunity at both edges of the frozen region, which is
    // what lets it drive a pump-mode caller into the gap when the freeze
    // mutation is armed.
    sim::schedhook::point("core.restart_end");
  }
  if (was_running && !rep.interrupted) start_dpu();
  return rep;
}

void DpcSystem::wipe_host_cache() {
  {
    sim::LockGuard lock(size_mu_);
    size_cache_.clear();
  }
  if (cache_layout_) cache_layout_->format(*host_mem_);
}

void DpcSystem::set_thread_tenant(nvme::TenantId tenant) {
  tl_tenant = tenant;
}

nvme::TenantId DpcSystem::thread_tenant() { return tl_tenant; }

int DpcSystem::queue_for_this_thread() {
  thread_local int tl_queue = -1;
  if (tl_queue < 0)
    tl_queue = next_queue_.fetch_add(1, std::memory_order_relaxed) %
               opts_.queues;
  return tl_queue;
}

int DpcSystem::pump(int q) {
  sim::LockGuard lock(*pump_mu_[static_cast<std::size_t>(q)]);
  // Under the real freeze this load can never see true: restart_dpu() holds
  // every pump lock for the whole window. A nonzero counter is therefore a
  // hard protocol violation (the dpc_check restart_vs_pump invariant).
  if (restart_active_.load(std::memory_order_acquire)) pump_conflicts_->add();
  const int n =
      tgts_[static_cast<std::size_t>(q)]->process_available(64).processed;
  if (cache_ctl_) cache_ctl_->poll();
  return n;
}

DpcSystem::CallResult DpcSystem::call(const nvme::IniDriver::Request& req,
                                      std::uint32_t read_copy_bytes) {
  const int q = queue_for_this_thread();
  nvme::IniDriver& ini = *inis_[static_cast<std::size_t>(q)];

  CallResult out;
  out.cost += sim::calib::kSyscallVfs + sim::calib::kFsAdapterOp;
  const std::uint64_t salt = call_seq_.fetch_add(1, std::memory_order_relaxed);

  for (int attempt = 1;; ++attempt) {
    const auto submitted = ini.submit(req);
    out.cost += submitted.cost;

    // Synchronous completion: poll with a deadline; pump the DPU inline
    // when no workers run.
    const bool workers = workers_running_.load(std::memory_order_acquire);
    std::optional<nvme::Completion> got;
    if (!workers) {
      // Inline pump: this thread services the TGT itself. Once the SQ
      // drains with the completion still absent, the CQE was dropped on
      // the device — deterministic loss detection, no wall clock needed.
      int idle = 0;
      while (idle < 2) {
        if ((got = ini.try_take(submitted.cid))) break;
        idle = pump(q) == 0 ? idle + 1 : 0;
      }
      if (!got) got = ini.try_take(submitted.cid);
    } else {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(opts_.nvme_timeout_ms);
      for (;;) {
        if ((got = ini.try_take(submitted.cid))) break;
        if (std::chrono::steady_clock::now() >= deadline) break;
        std::this_thread::yield();
      }
    }

    // Timed out / lost: reclaim the CID. abort() returns a completion that
    // raced in, else synthesizes kAbortedByRequest; any CQE landing after
    // that is discarded by the driver's late-CQE guard, so releasing the
    // CID below cannot mis-deliver a stale completion (the sim TGT either
    // posts promptly or drops permanently).
    const nvme::Completion done = got ? *got : ini.abort(submitted.cid);
    if (!got) out.cost += sim::calib::kNvmeCommandTimeout;

    if (nvme::is_retryable(done.status)) {
      if (attempt < opts_.nvme_retry.max_attempts) {
        ini.release(submitted.cid);
        nvme_retries_->add();
        sim::Nanos backoff = opts_.nvme_retry.backoff(attempt, salt);
        if (done.status == nvme::Status::kThrottled) {
          // Admission rejection: the CQE result dword carries the device's
          // retry-after hint (ns). Honor it as a floor under the policy's
          // own backoff so a throttled tenant never hammers the doorbell
          // faster than the DPU asked.
          nvme_throttled_->add();
          backoff = std::max(
              backoff, sim::Nanos{static_cast<std::int64_t>(done.result)});
        }
        out.cost += backoff;
        continue;
      }
      nvme_retry_exhausted_->add();
    }

    out.status = done.status;
    out.result = done.result;
    // Device-reported service time (transport DMAs + backend) + host-side
    // completion handling complete the op's modelled latency.
    out.cost += sim::Nanos{done.service_ns} + sim::calib::kHostNvmeCompletion;
    if (read_copy_bytes > 0 && done.status == nvme::Status::kSuccess) {
      const std::uint32_t n = std::min(read_copy_bytes, done.result);
      if (n > 0) {
        // Host half of the integrity envelope: the TGT stamped a CRC32C
        // trailer right behind the payload (same data DMA). Verify it
        // before a single payload byte escapes; a mismatch is surfaced as
        // the typed integrity status, which is never retried — transport
        // bit-rot is indistinguishable from damage at rest, so recovery is
        // pushed up to redundancy (EC reconstruct) or the caller's EIO.
        auto wire = ini.read_payload(submitted.cid,
                                     done.result + nvme::kPayloadCrcBytes);
        std::uint32_t want = 0;
        std::memcpy(&want, wire.data() + done.result,
                    nvme::kPayloadCrcBytes);
        if (ec::crc32c(wire.first(done.result)) != want) {
          host_integrity_errors_->add();
          out.status = nvme::Status::kDataIntegrityError;
          out.result = 0;
        } else {
          out.read_payload.assign(wire.begin(),
                                  wire.begin() + std::ptrdiff_t{n});
        }
      }
    }
    ini.release(submitted.cid);
    if (qos_) qos_->record_latency(thread_tenant(), out.cost);
    return out;
  }
}

std::string DpcSystem::latency_summary() const {
  static const char* names[] = {"meta", "read", "write"};
  std::string out;
  for (std::size_t c = 0; c < latency_.size(); ++c) {
    const auto& h = *latency_[c];
    if (h.count() == 0) continue;
    out += std::string(names[c]) + ": n=" + std::to_string(h.count()) +
           " mean=" + std::to_string(h.mean().us()) +
           "us p50=" + std::to_string(h.percentile(50).us()) +
           "us p99=" + std::to_string(h.percentile(99).us()) + "us  ";
  }
  return out;
}

// ------------------------------------------------------- header-op helper

Io DpcSystem::header_call(nvme::DispatchTarget target, const FileRequest& req,
                          FileResponse* out) {
  const auto enc = req.encode();
  nvme::IniDriver::Request r;
  r.target = target;
  r.tenant = thread_tenant();
  r.inline_op = nvme::InlineOp::kNone;
  r.write_hdr = enc;
  r.read_hdr_cap = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(0xFFFF, response_capacity(0)));
  // readdir replies can be large; give them data capacity too.
  r.read_data_cap = req.op == FileOp::kReaddir ? opts_.max_io : 0;

  const auto call_res = call(r, r.read_hdr_cap + r.read_data_cap);
  Io io;
  io.cost = call_res.cost;
  if (call_res.status != nvme::Status::kSuccess &&
      call_res.status != nvme::Status::kFsError) {
    io.err = EIO;
    return io;
  }
  if (call_res.read_payload.empty()) {
    io.err = EIO;
    return io;
  }
  FileResponse resp = FileResponse::decode(call_res.read_payload);
  io.err = resp.err;
  io.ino = resp.ino;
  if (out) *out = std::move(resp);
  latency_[static_cast<std::size_t>(OpClass::kMeta)]->record(io.cost);
  return io;
}

// ------------------------------------------------- standalone namespace

Io DpcSystem::create(std::uint64_t parent, const std::string& name,
                     std::uint32_t mode) {
  FileRequest req;
  req.op = FileOp::kCreate;
  req.parent = parent;
  req.name = name;
  req.mode = mode;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::mkdir(std::uint64_t parent, const std::string& name,
                    std::uint32_t mode) {
  FileRequest req;
  req.op = FileOp::kMkdir;
  req.parent = parent;
  req.name = name;
  req.mode = mode;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::lookup(std::uint64_t parent, const std::string& name) {
  FileRequest req;
  req.op = FileOp::kLookup;
  req.parent = parent;
  req.name = name;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::resolve(const std::string& path) {
  FileRequest req;
  req.op = FileOp::kResolve;
  req.name = path;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::unlink(std::uint64_t parent, const std::string& name) {
  // Drop any cached pages of the victim before the namespace disappears.
  if (host_cache_) {
    if (Io found = lookup(parent, name); found.ok()) {
      host_cache_->invalidate_above(found.ino, 0);
      sim::LockGuard lock(size_mu_);
      size_cache_.erase(found.ino);
    }
  }
  FileRequest req;
  req.op = FileOp::kUnlink;
  req.parent = parent;
  req.name = name;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::rmdir(std::uint64_t parent, const std::string& name) {
  FileRequest req;
  req.op = FileOp::kRmdir;
  req.parent = parent;
  req.name = name;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::rename(std::uint64_t old_parent, const std::string& old_name,
                     std::uint64_t new_parent, const std::string& new_name) {
  FileRequest req;
  req.op = FileOp::kRename;
  req.parent = old_parent;
  req.aux = new_parent;
  req.name = old_name;
  req.name2 = new_name;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::link(std::uint64_t ino, std::uint64_t new_parent,
                   const std::string& name) {
  FileRequest req;
  req.op = FileOp::kLink;
  req.parent = ino;
  req.aux = new_parent;
  req.name = name;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::symlink(const std::string& target, std::uint64_t parent,
                      const std::string& name) {
  FileRequest req;
  req.op = FileOp::kSymlink;
  req.parent = parent;
  req.name = name;
  req.name2 = target;
  return header_call(nvme::DispatchTarget::kStandalone, req, nullptr);
}

Io DpcSystem::readlink(std::uint64_t ino, std::string* target_out) {
  DPC_CHECK(target_out != nullptr);
  FileRequest req;
  req.op = FileOp::kReadlink;
  req.parent = ino;
  FileResponse resp;
  Io io = header_call(nvme::DispatchTarget::kStandalone, req, &resp);
  if (io.ok()) {
    if (resp.entries.empty()) {
      io.err = EIO;
      return io;
    }
    *target_out = std::move(resp.entries[0].name);
  }
  return io;
}

Io DpcSystem::getattr(std::uint64_t ino, kvfs::Attr* attr_out) {
  FileRequest req;
  req.op = FileOp::kGetattr;
  req.parent = ino;
  FileResponse resp;
  Io io = header_call(nvme::DispatchTarget::kStandalone, req, &resp);
  if (io.ok() && attr_out) {
    if (!resp.attr) {
      io.err = EIO;
      return io;
    }
    *attr_out = *resp.attr;
  }
  return io;
}

Io DpcSystem::readdir(std::uint64_t ino, std::vector<kvfs::DirEntry>* out) {
  DPC_CHECK(out != nullptr);
  FileRequest req;
  req.op = FileOp::kReaddir;
  req.parent = ino;
  FileResponse resp;
  Io io = header_call(nvme::DispatchTarget::kStandalone, req, &resp);
  if (io.ok()) *out = std::move(resp.entries);
  return io;
}

// ------------------------------------------------------ standalone data

Io DpcSystem::read(std::uint64_t ino, std::uint64_t offset,
                   std::span<std::byte> dst, bool direct) {
  // The fs-adapter segments I/O larger than one nvme-fs command.
  if (dst.size() > opts_.max_io) {
    Io total;
    total.ino = ino;
    total.cache_hit = true;
    for (std::uint64_t at = 0; at < dst.size(); at += opts_.max_io) {
      const auto n = std::min<std::uint64_t>(opts_.max_io, dst.size() - at);
      Io part = read(ino, offset + at, dst.subspan(at, n), direct);
      total.cost += part.cost;
      total.cache_hit = total.cache_hit && part.cache_hit;
      if (!part.ok()) {
        total.err = part.err;
        return total;
      }
      total.bytes += part.bytes;
      if (part.bytes < n) break;  // EOF
    }
    return total;
  }
  Io io;
  io.ino = ino;
  const bool page_aligned =
      offset % kCachePage == 0 && dst.size() % kCachePage == 0;

  // fs-adapter: "For file read requests, fs-adapter will first search the
  // hybrid cache space and then issue the requests to DPU if the cache is
  // not hit" (§3.1). Hits are clamped to the adapter's size view so reads
  // past EOF come back short, exactly as the DPU path would return them.
  if (!direct && host_cache_ && page_aligned && !dst.empty()) {
    std::uint64_t known_size = 0;
    bool size_known = false;
    {
      sim::LockGuard lock(size_mu_);
      const auto it = size_cache_.find(ino);
      if (it != size_cache_.end()) {
        known_size = it->second;
        size_known = true;
      }
    }
    if (!size_known) {
      kvfs::Attr attr;
      if (getattr(ino, &attr).ok()) {
        known_size = attr.size;
        size_known = true;
        sim::LockGuard lock(size_mu_);
        auto& slot = size_cache_[ino];
        slot = std::max(slot, known_size);
      }
    }
    if (!size_known) {
      // Unknown file: let the DPU path produce the proper errno.
      known_size = 0;
    }
    const std::uint64_t readable =
        offset >= known_size ? 0 : known_size - offset;
    const auto want =
        static_cast<std::uint64_t>(std::min<std::uint64_t>(dst.size(),
                                                           readable));
    bool all_hit = size_known && (want > 0 || readable == 0);
    for (std::uint64_t at = 0; at < want; at += kCachePage) {
      const auto span = std::min<std::uint64_t>(kCachePage, want - at);
      if (span < kCachePage) {
        // Boundary page: read it whole from the cache, take the prefix.
        std::vector<std::byte> page(kCachePage);
        if (!host_cache_->read(ino, (offset + at) / kCachePage, page)) {
          all_hit = false;
          break;
        }
        std::memcpy(dst.data() + at, page.data(), span);
      } else if (!host_cache_->read(ino, (offset + at) / kCachePage,
                                    dst.subspan(at, kCachePage))) {
        all_hit = false;
        break;
      }
    }
    if (all_hit) {
      io.bytes = static_cast<std::uint32_t>(want);
      io.cache_hit = true;
      io.cost = sim::calib::kSyscallVfs + sim::calib::kFsAdapterOp;
      latency_[static_cast<std::size_t>(OpClass::kRead)]->record(io.cost);
      cache_hit_path_ns_->record(io.cost);
      return io;
    }
  }

  nvme::IniDriver::Request r;
  r.target = nvme::DispatchTarget::kStandalone;
  r.tenant = thread_tenant();
  r.inline_op = nvme::InlineOp::kRead;
  r.inode = ino;
  r.offset = offset;
  r.read_data_cap = static_cast<std::uint32_t>(dst.size());
  const auto res = call(r, r.read_data_cap);
  io.cost += res.cost;
  if (res.status == nvme::Status::kFsError) {
    io.err = static_cast<int>(res.result);
    return io;
  }
  if (res.status != nvme::Status::kSuccess) {
    io.err = EIO;
    return io;
  }
  io.bytes = res.result;
  // A read at/past EOF completes with an empty payload whose data() is
  // null; memcpy's nonnull contract forbids that even at length zero.
  if (const std::size_t got =
          std::min<std::size_t>(dst.size(), res.read_payload.size());
      got > 0)
    std::memcpy(dst.data(), res.read_payload.data(), got);
  if (io.bytes < dst.size())
    std::memset(dst.data() + io.bytes, 0, dst.size() - io.bytes);

  // Opportunistic clean fill so re-reads hit host memory.
  if (!direct && host_cache_ && page_aligned) {
    for (std::uint64_t at = 0; at + kCachePage <= io.bytes; at += kCachePage) {
      host_cache_->fill_clean(ino, (offset + at) / kCachePage,
                              dst.subspan(at, kCachePage));
    }
    cache_miss_path_ns_->record(io.cost);
  }
  latency_[static_cast<std::size_t>(OpClass::kRead)]->record(io.cost);
  return io;
}

Io DpcSystem::write(std::uint64_t ino, std::uint64_t offset,
                    std::span<const std::byte> src, bool direct) {
  if (src.size() > opts_.max_io) {
    Io total;
    total.ino = ino;
    total.cache_hit = true;
    for (std::uint64_t at = 0; at < src.size(); at += opts_.max_io) {
      const auto n = std::min<std::uint64_t>(opts_.max_io, src.size() - at);
      Io part = write(ino, offset + at, src.subspan(at, n), direct);
      total.cost += part.cost;
      total.cache_hit = total.cache_hit && part.cache_hit;
      if (!part.ok()) {
        total.err = part.err;
        return total;
      }
      total.bytes += part.bytes;
    }
    return total;
  }
  Io io;
  io.ino = ino;
  const bool page_aligned =
      offset % kCachePage == 0 && src.size() % kCachePage == 0;

  // §3.1: "For write requests, the data will be cached in the hybrid cache
  // space directly if the DIRECT_IO flag is not specified."
  if (!direct && host_cache_ && page_aligned && !src.empty()) {
    bool all_cached = true;
    for (std::uint64_t at = 0; at < src.size(); at += kCachePage) {
      const auto wres = host_cache_->write(ino, (offset + at) / kCachePage,
                                           src.subspan(at, kCachePage));
      if (wres != cache::HostCachePlane::WriteResult::kOk) {
        all_cached = false;
        break;
      }
    }
    if (all_cached) {
      io.bytes = static_cast<std::uint32_t>(src.size());
      io.cache_hit = true;
      io.cost = sim::calib::kSyscallVfs + sim::calib::kFsAdapterOp;
      // Writes absorbed by host memory still need the file size to grow so
      // getattr/read bounds stay correct before the flush lands. The
      // fs-adapter tracks the size it has already published and issues one
      // truncate only on actual growth.
      const std::uint64_t end = offset + src.size();
      bool grow = false;
      {
        sim::LockGuard lock(size_mu_);
        auto [it, fresh] = size_cache_.try_emplace(ino, 0);
        if (fresh) {
          kvfs::Attr attr;
          if (getattr(ino, &attr).ok()) it->second = attr.size;
        }
        if (end > it->second) {
          it->second = end;
          grow = true;
        }
      }
      if (grow) (void)truncate(ino, end);
      latency_[static_cast<std::size_t>(OpClass::kWrite)]->record(io.cost);
      cache_hit_path_ns_->record(io.cost);
      return io;
    }
    // Cache full — the DPU is evicting; fall through to write-through.
  }

  nvme::IniDriver::Request r;
  r.target = nvme::DispatchTarget::kStandalone;
  r.tenant = thread_tenant();
  r.inline_op = nvme::InlineOp::kWrite;
  r.inode = ino;
  r.offset = offset;
  r.write_data = src;
  const auto res = call(r, 0);
  io.cost += res.cost;
  if (res.status == nvme::Status::kFsError) {
    io.err = static_cast<int>(res.result);
    return io;
  }
  if (res.status != nvme::Status::kSuccess) {
    io.err = EIO;
    return io;
  }
  io.bytes = res.result;
  {
    // Write-through grew the file in KVFS directly; keep our size view in
    // sync so a later cached write can't issue a shrinking truncate.
    sim::LockGuard lock(size_mu_);
    auto& known = size_cache_[ino];
    known = std::max(known, offset + src.size());
  }
  if (direct && host_cache_ && page_aligned) {
    // Keep the cache coherent with direct writes.
    for (std::uint64_t at = 0; at < src.size(); at += kCachePage)
      host_cache_->invalidate(ino, (offset + at) / kCachePage);
  }
  latency_[static_cast<std::size_t>(OpClass::kWrite)]->record(io.cost);
  return io;
}

Io DpcSystem::truncate(std::uint64_t ino, std::uint64_t new_size) {
  // Keep the hybrid cache and the adapter's size view coherent: drop pages
  // fully past the new end and zero the cached boundary page's tail (the
  // DPU-side truncate zeroes the backend copy).
  if (host_cache_) {
    host_cache_->invalidate_above(ino, (new_size + kCachePage - 1) /
                                           kCachePage);
    const auto tail = static_cast<std::uint32_t>(new_size % kCachePage);
    if (tail != 0) host_cache_->zero_tail(ino, new_size / kCachePage, tail);
  }
  {
    sim::LockGuard lock(size_mu_);
    size_cache_[ino] = new_size;
  }
  nvme::IniDriver::Request r;
  r.target = nvme::DispatchTarget::kStandalone;
  r.tenant = thread_tenant();
  r.inline_op = nvme::InlineOp::kTruncate;
  r.inode = ino;
  r.offset = new_size;
  const auto res = call(r, 0);
  Io io;
  io.ino = ino;
  io.cost = res.cost;
  if (res.status == nvme::Status::kFsError)
    io.err = static_cast<int>(res.result);
  else if (res.status != nvme::Status::kSuccess)
    io.err = EIO;
  return io;
}

Io DpcSystem::fsync(std::uint64_t ino) {
  nvme::IniDriver::Request r;
  r.target = nvme::DispatchTarget::kStandalone;
  r.tenant = thread_tenant();
  r.inline_op = nvme::InlineOp::kFsync;
  r.inode = ino;
  const auto res = call(r, 0);
  Io io;
  io.ino = ino;
  io.cost = res.cost;
  if (res.status == nvme::Status::kFsError)
    io.err = static_cast<int>(res.result);
  else if (res.status != nvme::Status::kSuccess)
    io.err = EIO;
  return io;
}

// --------------------------------------------------------------- DFS ops

Io DpcSystem::dfs_create(const std::string& path, std::uint64_t prealloc) {
  DPC_CHECK_MSG(dfs_client_ != nullptr, "DpcSystem built without DFS");
  FileRequest req;
  req.op = FileOp::kCreate;
  req.name = path;
  req.aux = prealloc;
  return header_call(nvme::DispatchTarget::kDistributed, req, nullptr);
}

Io DpcSystem::dfs_open(const std::string& path) {
  DPC_CHECK_MSG(dfs_client_ != nullptr, "DpcSystem built without DFS");
  FileRequest req;
  req.op = FileOp::kOpen;
  req.name = path;
  return header_call(nvme::DispatchTarget::kDistributed, req, nullptr);
}

Io DpcSystem::dfs_read(std::uint64_t ino, std::uint64_t offset,
                       std::span<std::byte> dst) {
  nvme::IniDriver::Request r;
  r.target = nvme::DispatchTarget::kDistributed;
  r.tenant = thread_tenant();
  r.inline_op = nvme::InlineOp::kRead;
  r.inode = ino;
  r.offset = offset;
  r.read_data_cap = static_cast<std::uint32_t>(dst.size());
  const auto res = call(r, r.read_data_cap);
  Io io;
  io.ino = ino;
  io.cost = res.cost;
  if (res.status == nvme::Status::kFsError) {
    io.err = static_cast<int>(res.result);
    return io;
  }
  if (res.status != nvme::Status::kSuccess) {
    io.err = EIO;
    return io;
  }
  io.bytes = res.result;
  // A read at/past EOF completes with an empty payload whose data() is
  // null; memcpy's nonnull contract forbids that even at length zero.
  if (const std::size_t got =
          std::min<std::size_t>(dst.size(), res.read_payload.size());
      got > 0)
    std::memcpy(dst.data(), res.read_payload.data(), got);
  return io;
}

Io DpcSystem::dfs_write(std::uint64_t ino, std::uint64_t offset,
                        std::span<const std::byte> src) {
  nvme::IniDriver::Request r;
  r.target = nvme::DispatchTarget::kDistributed;
  r.tenant = thread_tenant();
  r.inline_op = nvme::InlineOp::kWrite;
  r.inode = ino;
  r.offset = offset;
  r.write_data = src;
  const auto res = call(r, 0);
  Io io;
  io.ino = ino;
  io.cost = res.cost;
  if (res.status == nvme::Status::kFsError) {
    io.err = static_cast<int>(res.result);
    return io;
  }
  if (res.status != nvme::Status::kSuccess) {
    io.err = EIO;
    return io;
  }
  io.bytes = res.result;
  return io;
}

// ---------------------------------------------------------- introspection

const cache::HostCacheStats* DpcSystem::cache_stats() const {
  return host_cache_ ? &host_cache_->stats() : nullptr;
}

const cache::ControlPlaneStats* DpcSystem::control_stats() const {
  return cache_ctl_ ? &cache_ctl_->stats() : nullptr;
}

}  // namespace dpc::core
