#include "core/io_dispatch.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "nvm/wal.hpp"
#include "sim/check.hpp"

namespace dpc::core {

namespace {
nvme::HandlerResult fs_error(int err) {
  nvme::HandlerResult r;
  r.status = nvme::Status::kFsError;
  r.result = static_cast<std::uint32_t>(err);
  return r;
}
}  // namespace

IoDispatch::IoDispatch(kvfs::Kvfs& fs, dfs::DfsClient* dfs_client,
                       cache::DpuCacheControl* cache_ctl,
                       obs::Registry* registry, dpu::QosManager* qos,
                       nvm::WriteAheadLog* wal)
    : fs_(&fs),
      dfs_(dfs_client),
      cache_ctl_(cache_ctl),
      qos_(qos),
      wal_(wal),
      owned_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                          : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      stats_(*registry_),
      backend_cost_hist_(&registry_->histogram("dispatch/backend_cost_ns")) {}

nvme::CommandHandler IoDispatch::handler() {
  return [this](const nvme::NvmeFsCmd& cmd,
                std::span<const std::byte> wpayload,
                std::span<std::byte> rpayload) {
    return handle(cmd, wpayload, rpayload);
  };
}

void IoDispatch::charge(sim::Nanos backend_cost) {
  stats_.backend_ns.fetch_add(static_cast<std::uint64_t>(backend_cost.ns),
                              std::memory_order_relaxed);
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  backend_cost_hist_->record(backend_cost);
}

sim::Nanos IoDispatch::mean_backend_cost() const {
  const auto ops = stats_.ops.load(std::memory_order_relaxed);
  if (ops == 0) return sim::Nanos{0};
  return sim::Nanos{static_cast<std::int64_t>(
      stats_.backend_ns.load(std::memory_order_relaxed) / ops)};
}

nvme::HandlerResult IoDispatch::handle(const nvme::NvmeFsCmd& cmd,
                                       std::span<const std::byte> wpayload,
                                       std::span<std::byte> rpayload) {
  if (qos_ != nullptr) qos_->count_op(cmd.tenant);
  if (cmd.target == nvme::DispatchTarget::kDistributed) {
    stats_.dfs_ops.fetch_add(1, std::memory_order_relaxed);
    if (dfs_ == nullptr) return fs_error(ENOSYS);
    if (cmd.inline_op == nvme::InlineOp::kNone)
      return handle_header(cmd, wpayload, rpayload);
    return handle_dfs_inline(cmd, wpayload, rpayload);
  }
  if (cmd.inline_op == nvme::InlineOp::kNone)
    return handle_header(cmd, wpayload, rpayload);
  return handle_standalone_inline(cmd, wpayload, rpayload);
}

nvme::HandlerResult IoDispatch::handle_standalone_inline(
    const nvme::NvmeFsCmd& cmd, std::span<const std::byte> wpayload,
    std::span<std::byte> rpayload) {
  nvme::HandlerResult r;
  switch (cmd.inline_op) {
    case nvme::InlineOp::kRead: {
      stats_.inline_reads.fetch_add(1, std::memory_order_relaxed);
      auto res = fs_->read(cmd.inode, cmd.offset, rpayload, cmd.tenant);
      charge(res.cost);
      if (!res.ok()) return fs_error(res.err);
      r.result = res.value;
      r.read_bytes = res.value;
      r.backend_cost = res.cost + sim::calib::kDpuKvfsReadOp;
      // Teach the prefetcher about this miss as ONE event spanning the
      // request's cache pages (per-page reporting would make every 8K
      // random read look like a 2-page sequential stream).
      if (cache_ctl_ != nullptr) {
        const std::uint64_t first = cmd.offset / 4096;
        const std::uint64_t last =
            (cmd.offset + std::max(1u, res.value) - 1) / 4096;
        cache_ctl_->on_read_miss(cmd.inode, first,
                                 static_cast<std::uint32_t>(last - first + 1),
                                 cmd.tenant);
      }
      return r;
    }
    case nvme::InlineOp::kWrite: {
      stats_.inline_writes.fetch_add(1, std::memory_order_relaxed);
      auto res = fs_->write(cmd.inode, cmd.offset, wpayload, cmd.tenant);
      charge(res.cost);
      if (!res.ok()) return fs_error(res.err);
      r.result = res.value;
      r.backend_cost = res.cost + sim::calib::kDpuKvfsWriteOp;
      return r;
    }
    case nvme::InlineOp::kFsync: {
      stats_.inline_other.fetch_add(1, std::memory_order_relaxed);
      // Fast path: persist the inode's dirty pages to the NVM write-ahead
      // log and ack at NVM persistence — the background flusher drains them
      // to the KV/SSD path afterwards. Any hiccup (degraded log, host
      // writer holding a page lock, NVM fault mid-pass) falls through to
      // the synchronous flush below; an acked fsync is durable either way.
      if (wal_ != nullptr && cache_ctl_ != nullptr) {
        if (!wal_->degraded()) {
          auto logres = cache_ctl_->wal_log_pass(cmd.inode);
          if (logres.complete) {
            // Existence check (attr-cache cheap): fsync of a deleted ino
            // must still say ENOENT, fast path or not.
            auto at = fs_->getattr(cmd.inode);
            const sim::Nanos total = logres.cost + at.cost;
            if (at.err == ENOENT) {
              charge(total);
              return fs_error(ENOENT);
            }
            if (at.ok()) {
              charge(total);
              r.backend_cost = total;
              stats_.wal_fast_acks.fetch_add(1, std::memory_order_relaxed);
              return r;
            }
            // Transient attr failure: fall through to the synchronous path.
          }
        }
        // Degraded log, unloggable page, or attr hiccup: this fsync takes
        // the synchronous rung of the ladder.
        stats_.wal_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
      // Push dirty hybrid-cache pages down first, then barrier the store.
      sim::Nanos sync_cost{};
      if (cache_ctl_ != nullptr) {
        const auto& cstats = cache_ctl_->stats();
        const std::uint64_t fails_before =
            cstats.flush_fails.load() + cstats.flush_integrity_fails.load();
        sync_cost += cache_ctl_->flush_pass().cost;
        // A failed flush re-queues the page dirty; fsync must NOT report
        // success while such pages of this inode remain dirty — the bytes
        // are not durable yet. (Pages re-dirtied by a concurrent writer
        // after the pass are the *next* fsync's problem; only a pass that
        // actually failed writes turns leftover dirt into EIO.)
        const std::uint64_t fails_after =
            cstats.flush_fails.load() + cstats.flush_integrity_fails.load();
        if (fails_after != fails_before &&
            cache_ctl_->dirty_pages(cmd.inode, sync_cost) > 0) {
          charge(sync_cost);
          return fs_error(EIO);
        }
      }
      auto res = fs_->fsync(cmd.inode);
      charge(sync_cost + res.cost);
      if (!res.ok()) return fs_error(res.err);
      r.backend_cost = sync_cost + res.cost;
      return r;
    }
    case nvme::InlineOp::kTruncate: {
      stats_.inline_other.fetch_add(1, std::memory_order_relaxed);
      auto res = fs_->truncate(cmd.inode, cmd.offset);
      charge(res.cost);
      if (!res.ok()) return fs_error(res.err);
      return r;
    }
    case nvme::InlineOp::kNone:
      break;
  }
  return fs_error(EINVAL);
}

nvme::HandlerResult IoDispatch::handle_header(
    const nvme::NvmeFsCmd& cmd, std::span<const std::byte> wpayload,
    std::span<std::byte> rpayload) {
  stats_.header_ops.fetch_add(1, std::memory_order_relaxed);
  DPC_CHECK(cmd.write_hdr_len > 0 && cmd.write_hdr_len <= wpayload.size());
  const FileRequest req = FileRequest::decode(wpayload.first(cmd.write_hdr_len));

  FileResponse resp;
  sim::Nanos backend{};
  if (cmd.target == nvme::DispatchTarget::kDistributed) {
    // Path-based DFS namespace ops.
    dfs::IoResult io;
    switch (req.op) {
      case FileOp::kCreate:
        io = dfs_->create(req.name, req.aux);
        break;
      case FileOp::kOpen:
      case FileOp::kResolve:
      case FileOp::kLookup:
        io = dfs_->open(req.name);
        break;
      case FileOp::kUnlink:
        io = dfs_->remove(req.name);
        break;
      case FileOp::kGetattr:
        io = dfs_->stat(req.parent);
        break;
      default:
        return fs_error(ENOSYS);
    }
    backend = io.prof.mds + io.prof.ds + io.prof.net;
    resp.err = io.err;
    resp.ino = io.ino;
  } else {
    switch (req.op) {
      case FileOp::kLookup: {
        auto res = fs_->lookup(req.parent, req.name);
        backend = res.cost;
        resp.err = res.err;
        resp.ino = res.value;
        break;
      }
      case FileOp::kCreate: {
        auto res = fs_->create(req.parent, req.name, req.mode);
        backend = res.cost;
        resp.err = res.err;
        resp.ino = res.value;
        break;
      }
      case FileOp::kMkdir: {
        auto res = fs_->mkdir(req.parent, req.name, req.mode);
        backend = res.cost;
        resp.err = res.err;
        resp.ino = res.value;
        break;
      }
      case FileOp::kUnlink: {
        auto res = fs_->unlink(req.parent, req.name);
        backend = res.cost;
        resp.err = res.err;
        break;
      }
      case FileOp::kRmdir: {
        auto res = fs_->rmdir(req.parent, req.name);
        backend = res.cost;
        resp.err = res.err;
        break;
      }
      case FileOp::kRename: {
        auto res = fs_->rename(req.parent, req.name, req.aux, req.name2);
        backend = res.cost;
        resp.err = res.err;
        break;
      }
      case FileOp::kGetattr: {
        auto res = fs_->getattr(req.parent);
        backend = res.cost;
        resp.err = res.err;
        if (res.ok()) {
          resp.attr = res.value;
          resp.ino = res.value.ino;
        }
        break;
      }
      case FileOp::kReaddir: {
        auto res = fs_->readdir(req.parent);
        backend = res.cost;
        resp.err = res.err;
        resp.entries = std::move(res.value);
        break;
      }
      case FileOp::kResolve: {
        auto res = fs_->resolve(req.name);
        backend = res.cost;
        resp.err = res.err;
        resp.ino = res.value;
        break;
      }
      case FileOp::kLink: {
        auto res = fs_->link(req.parent, req.aux, req.name);
        backend = res.cost;
        resp.err = res.err;
        break;
      }
      case FileOp::kSymlink: {
        auto res = fs_->symlink(req.name2, req.parent, req.name);
        backend = res.cost;
        resp.err = res.err;
        resp.ino = res.value;
        break;
      }
      case FileOp::kReadlink: {
        auto res = fs_->readlink(req.parent);
        backend = res.cost;
        resp.err = res.err;
        if (res.ok()) resp.entries.push_back({std::move(res.value), 0});
        break;
      }
      case FileOp::kOpen:
        return fs_error(ENOSYS);
    }
  }
  charge(backend);
  if (resp.err != 0)
    stats_.errors.fetch_add(1, std::memory_order_relaxed);

  const auto enc = resp.encode();
  DPC_CHECK_MSG(enc.size() <= rpayload.size(),
                "FileResponse (" << enc.size()
                                 << "B) exceeds read buffer capacity "
                                 << rpayload.size());
  std::memcpy(rpayload.data(), enc.data(), enc.size());
  nvme::HandlerResult r;
  r.read_bytes = static_cast<std::uint32_t>(enc.size());
  r.result = static_cast<std::uint32_t>(enc.size());
  r.backend_cost = backend;
  return r;
}

nvme::HandlerResult IoDispatch::handle_dfs_inline(
    const nvme::NvmeFsCmd& cmd, std::span<const std::byte> wpayload,
    std::span<std::byte> rpayload) {
  nvme::HandlerResult r;
  switch (cmd.inline_op) {
    case nvme::InlineOp::kRead: {
      auto io = dfs_->read(cmd.inode, cmd.offset, rpayload);
      charge(io.prof.mds + io.prof.ds + io.prof.net);
      if (!io.ok()) return fs_error(io.err);
      r.result = io.bytes;
      r.read_bytes = io.bytes;
      r.backend_cost =
          io.prof.dpu_cpu + io.prof.mds + io.prof.ds + io.prof.net;
      return r;
    }
    case nvme::InlineOp::kWrite: {
      auto io = dfs_->write(cmd.inode, cmd.offset, wpayload);
      charge(io.prof.mds + io.prof.ds + io.prof.net);
      if (!io.ok()) return fs_error(io.err);
      r.result = io.bytes;
      r.backend_cost =
          io.prof.dpu_cpu + io.prof.mds + io.prof.ds + io.prof.net;
      return r;
    }
    default:
      return fs_error(ENOSYS);
  }
}

}  // namespace dpc::core
