#include "kv/remote.hpp"

namespace dpc::kv {

RemoteKv::RemoteKv(KvStore& store, fault::FaultInjector* fault,
                   obs::Registry* registry, const fault::RetryPolicy& retry,
                   const fault::CircuitBreaker::Config& breaker)
    : store_(&store), fault_(fault), registry_(registry), retry_(retry),
      breaker_(breaker, registry) {
  if (registry != nullptr) {
    retry_attempts_ = &registry->counter("retry/attempts");
    retry_exhausted_ = &registry->counter("retry/exhausted");
    corrupt_reads_ = &registry->counter("kv.remote/corrupt_reads");
  }
}

void RemoteKv::enable_health(const fault::HealthConfig& cfg) {
  health_ = std::make_unique<fault::HealthBoard>("kv", 1, cfg, registry_);
}

sim::Nanos RemoteKv::op_cost(bool is_read, std::uint64_t payload) {
  using namespace sim::calib;
  const sim::Nanos transfer =
      is_read ? kv_read_transfer(payload) : kv_write_transfer(payload);
  return kNetHop * 2 + kKvServerOp + transfer;
}

RemoteErr RemoteKv::begin_op(bool is_read, sim::Nanos& cost) const {
  if (fault_ == nullptr) return RemoteErr::kOk;  // failure path disabled
  // Quarantine gate: a backend the health board has sidelined fast-fails
  // without touching the wire (every Nth op slips through as a
  // reintegration probe).
  if (health_ != nullptr && !health_->allow(0)) return RemoteErr::kUnavailable;
  if (!breaker_.allow()) return RemoteErr::kUnavailable;  // fast-fail

  const std::uint64_t salt =
      op_seq_.fetch_add(1, std::memory_order_relaxed);
  for (int attempt = 1;; ++attempt) {
    if (!fault_->should_fail(kFaultSite)) {
      // The wire answers. It may still answer *slowly* (fail-slow site):
      // with a health board the attempt is cut at the adaptive deadline and
      // retried — the breaker is untouched, because a slow backend is up,
      // not down, and opening a binary breaker on slowness conflates the
      // two failure modes.
      const sim::Nanos base = op_cost(is_read, 0);
      const sim::Nanos penalty = fault_->slow_penalty(kSlowSite, 0, base);
      if (health_ != nullptr) {
        const sim::Nanos deadline = health_->deadline();
        if (base + penalty > deadline) {
          cost += deadline;
          health_->record(0, deadline, /*ok=*/false);
        } else {
          health_->record(0, base + penalty, /*ok=*/true);
          cost += penalty;  // the caller charges the base op_cost itself
          breaker_.on_success();
          return RemoteErr::kOk;
        }
      } else {
        cost += penalty;
        breaker_.on_success();
        return RemoteErr::kOk;
      }
    } else {
      // Attempt timed out hard: charge the wire round trip plus the
      // deadline the client waited before giving up on it. The deadline is
      // adaptive (scaled from the healthy-regime p99) when a health board
      // is attached; the fixed constant is only the no-board fallback.
      const sim::Nanos waited =
          health_ != nullptr
              ? health_->deadline()
              : sim::calib::kKvOpTimeout;  // dpc-lint: ok(fixed-deadline)
      cost += op_cost(is_read, 0) + waited;
      if (health_ != nullptr) health_->record(0, waited, /*ok=*/false);
      breaker_.on_failure();
    }
    if (attempt >= retry_.max_attempts) {
      if (retry_exhausted_ != nullptr) retry_exhausted_->add();
      return RemoteErr::kTimeout;
    }
    if (!breaker_.allow()) {
      // Our own failures (plus concurrent ones) opened the circuit
      // mid-retry; don't keep hammering a declared-dead backend.
      if (retry_exhausted_ != nullptr) retry_exhausted_->add();
      return RemoteErr::kUnavailable;
    }
    if (retry_attempts_ != nullptr) retry_attempts_->add();
    cost += retry_.backoff(attempt, salt);
  }
}

Timed<std::optional<Bytes>> RemoteKv::get(std::string_view key) const {
  Timed<std::optional<Bytes>> out{std::nullopt};
  out.err = begin_op(true, out.cost);
  if (!out.ok()) return out;
  // Server-side verification before the value crosses the wire: a value
  // that fails its CRC is withheld as a typed integrity error, which is
  // not retryable (re-reading rotted cells returns the same bytes).
  // Invariant: kCorrupt never touches the circuit breaker. The wire and
  // server answered on time — begin_op already recorded the success — so a
  // rot burst must not open the breaker and mask a *liveness* signal with
  // an *integrity* one (test_tail_tolerance.TailKvCorrupt guards this).
  ValueCheck check = ValueCheck::kOk;
  out.value = store_->get_checked(key, &check);
  if (check == ValueCheck::kCorrupt) {
    out.err = RemoteErr::kCorrupt;
    if (corrupt_reads_ != nullptr) corrupt_reads_->add();
  }
  out.cost += op_cost(true, out.value ? out.value->size() : 0);
  return out;
}

Timed<bool> RemoteKv::put(std::string_view key,
                          std::span<const std::byte> value) {
  Timed<bool> out{false};
  out.err = begin_op(false, out.cost);
  if (!out.ok()) return out;
  store_->put(key, value);
  out.value = true;
  out.cost += op_cost(false, value.size());
  return out;
}

Timed<bool> RemoteKv::put_if_absent(std::string_view key,
                                    std::span<const std::byte> value) {
  Timed<bool> out{false};
  out.err = begin_op(false, out.cost);
  if (!out.ok()) return out;
  out.value = store_->put_if_absent(key, value);
  out.cost += op_cost(false, value.size());
  return out;
}

Timed<bool> RemoteKv::erase(std::string_view key) {
  Timed<bool> out{false};
  out.err = begin_op(false, out.cost);
  if (!out.ok()) return out;
  out.value = store_->erase(key);
  out.cost += op_cost(false, 0);
  return out;
}

Timed<std::optional<std::size_t>> RemoteKv::read_sub(
    std::string_view key, std::uint64_t offset,
    std::span<std::byte> dst) const {
  Timed<std::optional<std::size_t>> out{std::nullopt};
  out.err = begin_op(true, out.cost);
  if (!out.ok()) return out;
  ValueCheck check = ValueCheck::kOk;
  out.value = store_->read_sub_checked(key, offset, dst, &check);
  if (check == ValueCheck::kCorrupt) {
    out.err = RemoteErr::kCorrupt;
    if (corrupt_reads_ != nullptr) corrupt_reads_->add();
  }
  out.cost += op_cost(true, out.value.value_or(0));
  return out;
}

Timed<bool> RemoteKv::write_sub(std::string_view key, std::uint64_t offset,
                                std::span<const std::byte> src) {
  Timed<bool> out{false};
  out.err = begin_op(false, out.cost);
  if (!out.ok()) return out;
  store_->write_sub(key, offset, src);
  out.value = true;
  out.cost += op_cost(false, src.size());
  return out;
}

Timed<std::uint64_t> RemoteKv::increment(std::string_view key,
                                         std::uint64_t delta) {
  Timed<std::uint64_t> out{0};
  out.err = begin_op(false, out.cost);
  if (!out.ok()) return out;
  out.value = store_->increment(key, delta);
  out.cost += op_cost(false, 8);
  return out;
}

Timed<std::optional<std::uint64_t>> RemoteKv::value_size(
    std::string_view key) const {
  Timed<std::optional<std::uint64_t>> out{std::nullopt};
  out.err = begin_op(true, out.cost);
  if (!out.ok()) return out;
  out.value = store_->value_size(key);
  out.cost += op_cost(true, 0);
  return out;
}

Timed<std::size_t> RemoteKv::scan_prefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, const Bytes&)>& fn) const {
  Timed<std::size_t> out{0};
  out.err = begin_op(true, out.cost);
  if (!out.ok()) return out;
  std::uint64_t payload = 0;
  out.value = store_->scan_prefix(
      prefix, [&](std::string_view k, const Bytes& v) {
        payload += k.size() + v.size();
        return fn(k, v);
      });
  out.cost += op_cost(true, payload);
  return out;
}

}  // namespace dpc::kv
