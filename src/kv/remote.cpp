#include "kv/remote.hpp"

namespace dpc::kv {

sim::Nanos RemoteKv::op_cost(bool is_read, std::uint64_t payload) {
  using namespace sim::calib;
  const sim::Nanos transfer =
      is_read ? kv_read_transfer(payload) : kv_write_transfer(payload);
  return kNetHop * 2 + kKvServerOp + transfer;
}

Timed<std::optional<Bytes>> RemoteKv::get(std::string_view key) const {
  auto v = store_->get(key);
  const std::uint64_t payload = v ? v->size() : 0;
  return {std::move(v), op_cost(true, payload)};
}

Timed<bool> RemoteKv::put(std::string_view key,
                          std::span<const std::byte> value) {
  store_->put(key, value);
  return {true, op_cost(false, value.size())};
}

Timed<bool> RemoteKv::put_if_absent(std::string_view key,
                                    std::span<const std::byte> value) {
  const bool ok = store_->put_if_absent(key, value);
  return {ok, op_cost(false, value.size())};
}

Timed<bool> RemoteKv::erase(std::string_view key) {
  const bool ok = store_->erase(key);
  return {ok, op_cost(false, 0)};
}

Timed<std::optional<std::size_t>> RemoteKv::read_sub(
    std::string_view key, std::uint64_t offset,
    std::span<std::byte> dst) const {
  auto n = store_->read_sub(key, offset, dst);
  return {n, op_cost(true, n.value_or(0))};
}

Timed<bool> RemoteKv::write_sub(std::string_view key, std::uint64_t offset,
                                std::span<const std::byte> src) {
  store_->write_sub(key, offset, src);
  return {true, op_cost(false, src.size())};
}

Timed<std::uint64_t> RemoteKv::increment(std::string_view key,
                                         std::uint64_t delta) {
  return {store_->increment(key, delta), op_cost(false, 8)};
}

Timed<std::optional<std::uint64_t>> RemoteKv::value_size(
    std::string_view key) const {
  return {store_->value_size(key), op_cost(true, 0)};
}

Timed<std::size_t> RemoteKv::scan_prefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, const Bytes&)>& fn) const {
  std::uint64_t payload = 0;
  const std::size_t n = store_->scan_prefix(
      prefix, [&](std::string_view k, const Bytes& v) {
        payload += k.size() + v.size();
        return fn(k, v);
      });
  return {n, op_cost(true, payload)};
}

}  // namespace dpc::kv
