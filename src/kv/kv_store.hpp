// Disaggregated KV store substrate (§3.4).
//
// The paper deliberately treats the disaggregated KV cluster as a given
// ("this paper does not focus on the design of disaggregated storage") and
// uses it through four KV types. This module provides that substrate: a
// sharded, ordered, binary-safe KV store with
//   * point get/put/delete,
//   * prefix scans (inode-KV directory listing uses the p_ino key prefix),
//   * sub-object reads/writes (the 8 KB-granularity in-place updates the
//     big-file KV needs),
//   * compare-and-put (used by KVFS for atomic inode allocation).
// Every value carries a key-salted CRC32C stamped on mutation; checked
// reads and the scrubber verify it so bit-rot and torn sub-writes surface
// as typed corruption. Thread-safe; shards are hash-partitioned like a
// real KV cluster's partitions, and scans merge across shards in key order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "sim/thread_annotations.hpp"

namespace dpc::kv {

using Bytes = std::vector<std::byte>;

Bytes to_bytes(std::string_view s);
Bytes to_bytes(std::span<const std::byte> s);

/// Data-corruption injection sites: one draw per mutating op; the entropy
/// picks the rotted bit / tear point deterministically per seed.
inline constexpr std::string_view kFaultKvBitRot = "kv.store/bit_rot";
inline constexpr std::string_view kFaultKvTornWrite = "kv.store/torn_write";

/// Verification outcome of a checked value access.
enum class ValueCheck : std::uint8_t { kOk, kAbsent, kCorrupt };

class KvStore {
 public:
  /// `shards` ≤ 0 sizes the shard array per-core (hardware_concurrency
  /// rounded up to a power of two, min 16) so independent client threads
  /// land on distinct shard locks; explicit counts are rounded up to the
  /// next power of two so shard selection is a mask, not a division.
  explicit KvStore(int shards = 0);

  /// Attaches the corruption injector (null = pristine store). Must outlive
  /// the store.
  void attach_fault(fault::FaultInjector* fi) { fault_ = fi; }

  /// Inserts or overwrites.
  void put(std::string_view key, std::span<const std::byte> value);

  /// Inserts only if absent; returns false (leaving the old value) if the
  /// key exists.
  bool put_if_absent(std::string_view key, std::span<const std::byte> value);

  std::optional<Bytes> get(std::string_view key) const;
  bool contains(std::string_view key) const;
  bool erase(std::string_view key);

  /// Reads `dst.size()` bytes at `offset` within the value. Returns bytes
  /// copied (short if the value ends early), or nullopt if the key is
  /// missing.
  std::optional<std::size_t> read_sub(std::string_view key,
                                      std::uint64_t offset,
                                      std::span<std::byte> dst) const;

  /// In-place sub-range write; grows the value if needed. Creates the key
  /// if absent. This is the primitive behind big-file KV updates.
  void write_sub(std::string_view key, std::uint64_t offset,
                 std::span<const std::byte> src);

  // ---- integrity ----------------------------------------------------
  /// get() + CRC verification under one lock. nullopt with
  /// `*check == kCorrupt` means the value exists but fails its checksum —
  /// corrupt bytes never leave the store.
  std::optional<Bytes> get_checked(std::string_view key,
                                   ValueCheck* check) const;
  /// read_sub() + CRC verification of the whole value under one lock.
  std::optional<std::size_t> read_sub_checked(std::string_view key,
                                              std::uint64_t offset,
                                              std::span<std::byte> dst,
                                              ValueCheck* check) const;
  /// Re-verifies one stored value in place — the scrubber's probe.
  ValueCheck verify_value(std::string_view key) const;
  /// Flips one bit of a stored value without restamping (deterministic
  /// corruption hook for tests/benches). False if absent or empty.
  bool corrupt_value(std::string_view key, std::uint64_t bit = 0);
  /// Snapshot of every stored key, unordered — the scrubber's walk list.
  std::vector<std::string> keys() const;

  /// Returns the value size, or nullopt.
  std::optional<std::uint64_t> value_size(std::string_view key) const;

  /// Atomically adds `delta` to a little-endian u64 counter value (created
  /// at zero if absent) and returns the *new* value. The allocation
  /// primitive shared mounts use for inode/block ids.
  std::uint64_t increment(std::string_view key, std::uint64_t delta);

  /// Visits all keys with `prefix` in ascending key order. Return false
  /// from `fn` to stop early. Returns the number of entries visited.
  std::size_t scan_prefix(
      std::string_view prefix,
      const std::function<bool(std::string_view key, const Bytes& value)>& fn)
      const;

  std::size_t size() const;
  std::uint64_t bytes_stored() const;

 private:
  struct Value {
    Bytes data;
    std::uint32_t crc = 0;  ///< CRC32C of data, seeded with the key's CRC
  };
  // Cache-line aligned so neighbouring shards' mutexes and map headers
  // never share a line (false sharing on the hot shard locks).
  struct alignas(64) Shard {
    mutable sim::AnnotatedSharedMutex mu{"kv.shard",
                                         sim::LockRank::kStore};
    std::map<std::string, Value, std::less<>> data GUARDED_BY(mu);
  };
  Shard& shard_for(std::string_view key) const;

  std::vector<Shard> shards_storage_;
  std::size_t shard_mask_ = 0;  ///< shards_storage_.size() - 1 (pow2 count)
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace dpc::kv
