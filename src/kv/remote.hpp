// Remote access wrapper for the disaggregated KV store: same operations as
// KvStore, with each call also reporting its modelled network + server cost
// (request hop, server service, payload transfer, response hop). The DPU's
// KVFS talks to the cluster through this wrapper, so every figure that
// involves KVFS automatically includes realistic backend latency.
#pragma once

#include <optional>

#include "kv/kv_store.hpp"
#include "sim/calib.hpp"
#include "sim/time.hpp"

namespace dpc::kv {

/// A value + the modelled time the remote op took.
template <typename T>
struct Timed {
  T value;
  sim::Nanos cost{};
};

class RemoteKv {
 public:
  explicit RemoteKv(KvStore& store) : store_(&store) {}

  Timed<std::optional<Bytes>> get(std::string_view key) const;
  Timed<bool> put(std::string_view key, std::span<const std::byte> value);
  Timed<bool> put_if_absent(std::string_view key,
                            std::span<const std::byte> value);
  Timed<bool> erase(std::string_view key);
  Timed<std::optional<std::size_t>> read_sub(std::string_view key,
                                             std::uint64_t offset,
                                             std::span<std::byte> dst) const;
  Timed<bool> write_sub(std::string_view key, std::uint64_t offset,
                        std::span<const std::byte> src);
  Timed<std::optional<std::uint64_t>> value_size(std::string_view key) const;
  Timed<std::uint64_t> increment(std::string_view key, std::uint64_t delta);
  Timed<std::size_t> scan_prefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, const Bytes&)>& fn) const;

  KvStore& store() { return *store_; }

  /// Round-trip cost of a KV op moving `payload` bytes in the given
  /// direction (read = server→client).
  static sim::Nanos op_cost(bool is_read, std::uint64_t payload);

 private:
  KvStore* store_;
};

}  // namespace dpc::kv
