// Remote access wrapper for the disaggregated KV store: same operations as
// KvStore, with each call also reporting its modelled network + server cost
// (request hop, server service, payload transfer, response hop). The DPU's
// KVFS talks to the cluster through this wrapper, so every figure that
// involves KVFS automatically includes realistic backend latency.
//
// Failure model (see DESIGN.md "Failure model"): with a FaultInjector
// attached, each op may suffer injectable transient failures at the
// "kv.remote/op" site. Failed attempts are retried internally with
// exponential backoff (cost folded into the op's Timed cost); a run of
// consecutive failures opens a circuit breaker that fast-fails subsequent
// ops until a probe succeeds. Ops that exhaust the budget (or hit an open
// breaker) report RemoteErr — callers must check Timed::ok() before
// trusting the value.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string_view>

#include "fault/health.hpp"
#include "fault/injector.hpp"
#include "fault/retry.hpp"
#include "kv/kv_store.hpp"
#include "obs/metrics.hpp"
#include "sim/calib.hpp"
#include "sim/time.hpp"

namespace dpc::kv {

/// Transient failure class of a remote KV op.
enum class RemoteErr : std::uint8_t {
  kOk = 0,
  kTimeout,      ///< retry budget exhausted, every attempt timed out
  kUnavailable,  ///< circuit open — fast-failed without touching the wire
  kCorrupt,      ///< value failed its CRC — not transient, never retried
};

/// A value + the modelled time the remote op took (including any retries).
template <typename T>
struct Timed {
  T value;
  sim::Nanos cost{};
  RemoteErr err = RemoteErr::kOk;

  bool ok() const { return err == RemoteErr::kOk; }
};

class RemoteKv {
 public:
  /// `fault` == nullptr (the default) disables the entire failure path —
  /// ops cannot fail and the happy path costs one pointer compare.
  explicit RemoteKv(KvStore& store, fault::FaultInjector* fault = nullptr,
                    obs::Registry* registry = nullptr,
                    const fault::RetryPolicy& retry = {},
                    const fault::CircuitBreaker::Config& breaker = {});

  /// Fault-injection site for every remote op's wire round trip.
  static constexpr std::string_view kFaultSite = "kv.remote/op";
  /// Fail-slow site (FaultInjector::arm_slow): the backend answers
  /// correctly but its service time stretches — gray failure.
  static constexpr std::string_view kSlowSite = "kv.remote/slow";

  /// Attaches a single-peer health board ("kv"): observed op latencies feed
  /// an adaptive deadline that replaces the fixed kKvOpTimeout in the retry
  /// loop, and a sustained-timeout quarantine fast-fails ops between
  /// reintegration probes. Gauges/counters land in the ctor's registry.
  void enable_health(const fault::HealthConfig& cfg = {});
  fault::HealthBoard* health() const { return health_.get(); }

  Timed<std::optional<Bytes>> get(std::string_view key) const;
  Timed<bool> put(std::string_view key, std::span<const std::byte> value);
  Timed<bool> put_if_absent(std::string_view key,
                            std::span<const std::byte> value);
  Timed<bool> erase(std::string_view key);
  Timed<std::optional<std::size_t>> read_sub(std::string_view key,
                                             std::uint64_t offset,
                                             std::span<std::byte> dst) const;
  Timed<bool> write_sub(std::string_view key, std::uint64_t offset,
                        std::span<const std::byte> src);
  Timed<std::optional<std::uint64_t>> value_size(std::string_view key) const;
  Timed<std::uint64_t> increment(std::string_view key, std::uint64_t delta);
  Timed<std::size_t> scan_prefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, const Bytes&)>& fn) const;

  KvStore& store() { return *store_; }
  const KvStore& store() const { return *store_; }
  fault::CircuitBreaker::State breaker_state() const {
    return breaker_.state();
  }

  /// Round-trip cost of a KV op moving `payload` bytes in the given
  /// direction (read = server→client).
  static sim::Nanos op_cost(bool is_read, std::uint64_t payload);

 private:
  /// Runs the injectable pre-flight of one op: breaker gate + failed
  /// attempts + backoff. On kOk the caller performs the real store access;
  /// on error the op's value is meaningless. Accumulates all modelled retry
  /// latency into `cost`.
  RemoteErr begin_op(bool is_read, sim::Nanos& cost) const;

  KvStore* store_;
  fault::FaultInjector* fault_;
  obs::Registry* registry_;
  fault::RetryPolicy retry_;
  mutable fault::CircuitBreaker breaker_;
  // mutable: begin_op is const (reads are const ops) but records latencies.
  mutable std::unique_ptr<fault::HealthBoard> health_;
  mutable std::atomic<std::uint64_t> op_seq_{0};  // jitter salt
  obs::Counter* retry_attempts_ = nullptr;
  obs::Counter* retry_exhausted_ = nullptr;
  obs::Counter* corrupt_reads_ = nullptr;
};

}  // namespace dpc::kv
