#include "kv/kv_store.hpp"

#include <algorithm>
#include <cstring>

#include "sim/check.hpp"

namespace dpc::kv {

Bytes to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return Bytes(p, p + s.size());
}

Bytes to_bytes(std::span<const std::byte> s) {
  return Bytes(s.begin(), s.end());
}

KvStore::KvStore(int shards) : shards_storage_(static_cast<std::size_t>(shards)) {
  DPC_CHECK(shards >= 1);
}

KvStore::Shard& KvStore::shard_for(std::string_view key) const {
  const std::size_t h = std::hash<std::string_view>{}(key);
  return const_cast<Shard&>(
      shards_storage_[h % shards_storage_.size()]);
}

void KvStore::put(std::string_view key, std::span<const std::byte> value) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  sh.data.insert_or_assign(std::string(key), to_bytes(value));
}

bool KvStore::put_if_absent(std::string_view key,
                            std::span<const std::byte> value) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  return sh.data.try_emplace(std::string(key), to_bytes(value)).second;
}

std::optional<Bytes> KvStore::get(std::string_view key) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) return std::nullopt;
  return it->second;
}

bool KvStore::contains(std::string_view key) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  return sh.data.find(key) != sh.data.end();
}

bool KvStore::erase(std::string_view key) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  return sh.data.erase(std::string(key)) > 0;
}

std::optional<std::size_t> KvStore::read_sub(std::string_view key,
                                             std::uint64_t offset,
                                             std::span<std::byte> dst) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) return std::nullopt;
  const Bytes& v = it->second;
  if (offset >= v.size()) return 0;
  const std::size_t n = std::min<std::size_t>(dst.size(), v.size() - offset);
  std::memcpy(dst.data(), v.data() + offset, n);
  return n;
}

void KvStore::write_sub(std::string_view key, std::uint64_t offset,
                        std::span<const std::byte> src) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  Bytes& v = sh.data[std::string(key)];
  if (v.size() < offset + src.size()) v.resize(offset + src.size());
  std::memcpy(v.data() + offset, src.data(), src.size());
}

std::uint64_t KvStore::increment(std::string_view key, std::uint64_t delta) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  Bytes& v = sh.data[std::string(key)];
  if (v.size() != sizeof(std::uint64_t)) v.assign(sizeof(std::uint64_t), std::byte{0});
  std::uint64_t cur;
  std::memcpy(&cur, v.data(), sizeof(cur));
  cur += delta;
  std::memcpy(v.data(), &cur, sizeof(cur));
  return cur;
}

std::optional<std::uint64_t> KvStore::value_size(std::string_view key) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) return std::nullopt;
  return it->second.size();
}

std::size_t KvStore::scan_prefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, const Bytes&)>& fn) const {
  // Gather matching (key, value) pairs per shard, then merge in key order —
  // the client-side merge a partitioned KV cluster's scan performs.
  std::vector<std::pair<std::string, const Bytes*>> hits;
  std::vector<sim::SharedLock<sim::AnnotatedSharedMutex>> locks;
  locks.reserve(shards_storage_.size());
  for (const auto& sh : shards_storage_) {
    locks.emplace_back(sh.mu);
    auto it = sh.data.lower_bound(prefix);
    for (; it != sh.data.end(); ++it) {
      const std::string_view k = it->first;
      if (k.substr(0, prefix.size()) != prefix) break;
      hits.emplace_back(it->first, &it->second);
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t visited = 0;
  for (const auto& [k, v] : hits) {
    ++visited;
    if (!fn(k, *v)) break;
  }
  return visited;
}

std::size_t KvStore::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_storage_) {
    sim::SharedLockGuard lock(sh.mu);
    n += sh.data.size();
  }
  return n;
}

std::uint64_t KvStore::bytes_stored() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_storage_) {
    sim::SharedLockGuard lock(sh.mu);
    for (const auto& [k, v] : sh.data) n += k.size() + v.size();
  }
  return n;
}

}  // namespace dpc::kv
