#include "kv/kv_store.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <thread>

#include "ec/crc32c.hpp"
#include "sim/check.hpp"

namespace dpc::kv {

namespace {
/// The checksum stamp helper: CRC32C over the value, seeded with the CRC of
/// the key, so a value that migrates to the wrong key (misdirected put)
/// fails verification there.
std::uint32_t stamp_value_crc(std::string_view key,
                              std::span<const std::byte> value) {
  const auto* kp = reinterpret_cast<const std::byte*>(key.data());
  const std::uint32_t salt =
      ec::crc32c(std::span<const std::byte>(kp, key.size()));
  return ec::crc32c(value, salt);
}
}  // namespace

Bytes to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return Bytes(p, p + s.size());
}

Bytes to_bytes(std::span<const std::byte> s) {
  return Bytes(s.begin(), s.end());
}

namespace {
std::size_t pick_shard_count(int shards) {
  std::size_t want;
  if (shards <= 0) {
    // Per-core sharding: one shard per hardware thread keeps independent
    // client threads on distinct locks; min 16 preserves spread on small
    // machines and matches the pre-sharded default.
    const unsigned hw = std::thread::hardware_concurrency();
    want = std::max<std::size_t>(16, hw == 0 ? 16 : hw);
  } else {
    want = static_cast<std::size_t>(shards);
  }
  return std::bit_ceil(want);  // pow2 so shard_for is a mask, not a div
}
}  // namespace

KvStore::KvStore(int shards) : shards_storage_(pick_shard_count(shards)) {
  shard_mask_ = shards_storage_.size() - 1;
}

KvStore::Shard& KvStore::shard_for(std::string_view key) const {
  const std::size_t h = std::hash<std::string_view>{}(key);
  // Fibonacci remix before masking: std::hash for short strings can be
  // low-entropy in the bottom bits, and the mask only sees those.
  return const_cast<Shard&>(
      shards_storage_[(h * 0x9E3779B97F4A7C15ull >> 32) & shard_mask_]);
}

void KvStore::put(std::string_view key, std::span<const std::byte> value) {
  std::uint64_t rot = 0;
  const bool rotted =
      fault_ != nullptr && fault_->should_fail(kFaultKvBitRot, &rot);
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  Value& v = sh.data[std::string(key)];
  v.data = to_bytes(value);
  v.crc = stamp_value_crc(key, v.data);
  if (rotted && !v.data.empty()) {
    const std::uint64_t bit = rot % (v.data.size() * 8);
    v.data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
}

bool KvStore::put_if_absent(std::string_view key,
                            std::span<const std::byte> value) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  Value v;
  v.data = to_bytes(value);
  v.crc = stamp_value_crc(key, v.data);
  return sh.data.try_emplace(std::string(key), std::move(v)).second;
}

std::optional<Bytes> KvStore::get(std::string_view key) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) return std::nullopt;
  return it->second.data;
}

std::optional<Bytes> KvStore::get_checked(std::string_view key,
                                          ValueCheck* check) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) {
    if (check != nullptr) *check = ValueCheck::kAbsent;
    return std::nullopt;
  }
  const Value& v = it->second;
  if (stamp_value_crc(key, v.data) != v.crc) {
    if (check != nullptr) *check = ValueCheck::kCorrupt;
    return std::nullopt;
  }
  if (check != nullptr) *check = ValueCheck::kOk;
  return v.data;
}

bool KvStore::contains(std::string_view key) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  return sh.data.find(key) != sh.data.end();
}

bool KvStore::erase(std::string_view key) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  return sh.data.erase(std::string(key)) > 0;
}

std::optional<std::size_t> KvStore::read_sub(std::string_view key,
                                             std::uint64_t offset,
                                             std::span<std::byte> dst) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) return std::nullopt;
  const Bytes& v = it->second.data;
  if (offset >= v.size()) return 0;
  const std::size_t n = std::min<std::size_t>(dst.size(), v.size() - offset);
  std::memcpy(dst.data(), v.data() + offset, n);
  return n;
}

std::optional<std::size_t> KvStore::read_sub_checked(std::string_view key,
                                                     std::uint64_t offset,
                                                     std::span<std::byte> dst,
                                                     ValueCheck* check) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) {
    if (check != nullptr) *check = ValueCheck::kAbsent;
    return std::nullopt;
  }
  const Value& v = it->second;
  if (stamp_value_crc(key, v.data) != v.crc) {
    if (check != nullptr) *check = ValueCheck::kCorrupt;
    return std::nullopt;
  }
  if (check != nullptr) *check = ValueCheck::kOk;
  if (offset >= v.data.size()) return 0;
  const std::size_t n =
      std::min<std::size_t>(dst.size(), v.data.size() - offset);
  std::memcpy(dst.data(), v.data.data() + offset, n);
  return n;
}

void KvStore::write_sub(std::string_view key, std::uint64_t offset,
                        std::span<const std::byte> src) {
  std::uint64_t tear = 0;
  std::size_t persisted = src.size();
  if (fault_ != nullptr && !src.empty() &&
      fault_->should_fail(kFaultKvTornWrite, &tear)) {
    persisted = tear % src.size();  // prefix lands, tail is lost
  }
  std::uint64_t rot = 0;
  const bool rotted =
      fault_ != nullptr && fault_->should_fail(kFaultKvBitRot, &rot);
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  Value& v = sh.data[std::string(key)];
  if (v.data.size() < offset + src.size()) v.data.resize(offset + src.size());
  // The stamp covers the *intended* value; a torn write persists only a
  // prefix of the payload after the CRC was cut, so verification fails.
  std::memcpy(v.data.data() + offset, src.data(), src.size());
  v.crc = stamp_value_crc(key, v.data);
  if (persisted < src.size()) {
    // The lost tail reads back as zeroed cells, not the intended bytes.
    std::memset(v.data.data() + offset + persisted, 0,
                src.size() - persisted);
  }
  if (rotted && !v.data.empty()) {
    const std::uint64_t bit = rot % (v.data.size() * 8);
    v.data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
}

ValueCheck KvStore::verify_value(std::string_view key) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) return ValueCheck::kAbsent;
  const Value& v = it->second;
  return stamp_value_crc(key, v.data) == v.crc ? ValueCheck::kOk
                                               : ValueCheck::kCorrupt;
}

bool KvStore::corrupt_value(std::string_view key, std::uint64_t bit) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end() || it->second.data.empty()) return false;
  Bytes& d = it->second.data;
  bit %= d.size() * 8;
  d[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  return true;
}

std::vector<std::string> KvStore::keys() const {
  std::vector<std::string> out;
  for (const auto& sh : shards_storage_) {
    sim::SharedLockGuard lock(sh.mu);
    for (const auto& [k, v] : sh.data) out.push_back(k);
  }
  return out;
}

std::uint64_t KvStore::increment(std::string_view key, std::uint64_t delta) {
  Shard& sh = shard_for(key);
  sim::LockGuard lock(sh.mu);
  Value& v = sh.data[std::string(key)];
  if (v.data.size() != sizeof(std::uint64_t))
    v.data.assign(sizeof(std::uint64_t), std::byte{0});
  std::uint64_t cur;
  std::memcpy(&cur, v.data.data(), sizeof(cur));
  cur += delta;
  std::memcpy(v.data.data(), &cur, sizeof(cur));
  v.crc = stamp_value_crc(key, v.data);
  return cur;
}

std::optional<std::uint64_t> KvStore::value_size(std::string_view key) const {
  const Shard& sh = shard_for(key);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.data.find(key);
  if (it == sh.data.end()) return std::nullopt;
  return it->second.data.size();
}

std::size_t KvStore::scan_prefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, const Bytes&)>& fn) const {
  // Gather matching (key, value) pairs per shard, then merge in key order —
  // the client-side merge a partitioned KV cluster's scan performs.
  std::vector<std::pair<std::string, const Bytes*>> hits;
  std::vector<sim::SharedLock<sim::AnnotatedSharedMutex>> locks;
  locks.reserve(shards_storage_.size());
  for (const auto& sh : shards_storage_) {
    locks.emplace_back(sh.mu);
    auto it = sh.data.lower_bound(prefix);
    for (; it != sh.data.end(); ++it) {
      const std::string_view k = it->first;
      if (k.substr(0, prefix.size()) != prefix) break;
      hits.emplace_back(it->first, &it->second.data);
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t visited = 0;
  for (const auto& [k, v] : hits) {
    ++visited;
    if (!fn(k, *v)) break;
  }
  return visited;
}

std::size_t KvStore::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_storage_) {
    sim::SharedLockGuard lock(sh.mu);
    n += sh.data.size();
  }
  return n;
}

std::uint64_t KvStore::bytes_stored() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_storage_) {
    sim::SharedLockGuard lock(sh.mu);
    for (const auto& [k, v] : sh.data) n += k.size() + v.data.size();
  }
  return n;
}

}  // namespace dpc::kv
