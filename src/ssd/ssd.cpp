#include "ssd/ssd.hpp"

#include <cstring>

#include "sim/check.hpp"

namespace dpc::ssd {

void SsdModel::read_block(std::uint64_t lba, std::span<std::byte> dst) const {
  DPC_CHECK(dst.size() <= kBlockSize);
  const Shard& sh = shard_for(lba);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.blocks.find(lba);
  if (it == sh.blocks.end()) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  std::memcpy(dst.data(), it->second.data.data(), dst.size());
}

void SsdModel::write_block(std::uint64_t lba, std::span<const std::byte> src) {
  DPC_CHECK(src.size() <= kBlockSize);
  Shard& sh = shard_for(lba);
  sim::LockGuard lock(sh.mu);
  Block& b = sh.blocks[lba];
  if (b.data.size() != kBlockSize) b.data.assign(kBlockSize, std::byte{0});
  std::memcpy(b.data.data(), src.data(), src.size());
}

void SsdModel::trim_block(std::uint64_t lba) {
  Shard& sh = shard_for(lba);
  sim::LockGuard lock(sh.mu);
  sh.blocks.erase(lba);
}

std::uint64_t SsdModel::blocks_written() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    sim::SharedLockGuard lock(sh.mu);
    n += sh.blocks.size();
  }
  return n;
}

sim::Nanos SsdModel::random_service(bool is_read, std::uint32_t bytes) {
  const auto base =
      is_read ? sim::calib::kSsdReadLat : sim::calib::kSsdWriteLat;
  const std::uint32_t blocks = (bytes + kBlockSize - 1) / kBlockSize;
  // First block costs the full access latency; further blocks of the same
  // request stream at the drive's internal rate.
  return base + sequential_transfer(is_read,
                                    std::uint64_t{blocks - 1} * kBlockSize);
}

sim::Nanos SsdModel::sequential_transfer(bool is_read, std::uint64_t bytes) {
  const double gbps = is_read ? sim::calib::kSsdSeqReadGBps
                              : sim::calib::kSsdSeqWriteGBps;
  return sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(bytes) / (gbps * 1e9) * 1e9)};
}

}  // namespace dpc::ssd
