#include "ssd/ssd.hpp"

#include <cstring>

#include "ec/crc32c.hpp"
#include "sim/check.hpp"

namespace dpc::ssd {

namespace {
/// The checksum stamp helper: CRC32C over the full 4 KB image, seeded with
/// the block's LBA so a block that lands at the wrong address (misdirected
/// write) fails verification at the address it aliased.
std::uint32_t stamp_block_crc(std::uint64_t lba,
                              std::span<const std::byte> image) {
  return ec::crc32c(image, ec::crc32c_u64(lba));
}
}  // namespace

void SsdModel::read_block(std::uint64_t lba, std::span<std::byte> dst) const {
  DPC_CHECK(dst.size() <= kBlockSize);
  const Shard& sh = shard_for(lba);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.blocks.find(lba);
  if (it == sh.blocks.end()) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  std::memcpy(dst.data(), it->second.data.data(), dst.size());
}

BlockRead SsdModel::read_block_checked(std::uint64_t lba,
                                       std::span<std::byte> dst) const {
  DPC_CHECK(dst.size() <= kBlockSize);
  const Shard& sh = shard_for(lba);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.blocks.find(lba);
  if (it == sh.blocks.end()) {
    std::memset(dst.data(), 0, dst.size());
    return BlockRead::kAbsent;
  }
  const Block& b = it->second;
  if (stamp_block_crc(lba, b.data) != b.crc) {
    std::memset(dst.data(), 0, dst.size());
    return BlockRead::kCorrupt;
  }
  std::memcpy(dst.data(), b.data.data(), dst.size());
  return BlockRead::kOk;
}

void SsdModel::write_block(std::uint64_t lba, std::span<const std::byte> src) {
  DPC_CHECK(src.size() <= kBlockSize);
  // The FTL acks the *intended* write: CRC over the full 4 KB image at the
  // intended LBA. A sub-block write is read-modify-write — the image keeps
  // the block's existing tail. Injected damage below diverges the stored
  // state from that ack, which is exactly what verification must catch.
  std::vector<std::byte> image(kBlockSize, std::byte{0});
  if (src.size() < kBlockSize) {
    const Shard& sh = shard_for(lba);
    sim::SharedLockGuard lock(sh.mu);
    const auto it = sh.blocks.find(lba);
    if (it != sh.blocks.end())
      std::memcpy(image.data(), it->second.data.data(), kBlockSize);
  }
  std::memcpy(image.data(), src.data(), src.size());
  const std::uint32_t crc = stamp_block_crc(lba, image);

  std::size_t persisted = kBlockSize;
  std::uint32_t rot_bit = 0;
  bool rot = false;
  if (fault_ != nullptr) {
    std::uint64_t e = 0;
    if (fault_->should_fail(kFaultSsdMisdirectedWrite, &e)) {
      // The flash program lands on a nearby aliased block while the FTL
      // map records the intended address: the victim holds data stamped
      // for the wrong LBA (salt mismatch) and the intended slot's mapping
      // points at data that never arrived (CRC of the new image over the
      // old bytes). Both sides fail verification — no stale-read escape.
      const std::uint64_t victim = lba ^ (1 + e % 7);
      {
        Shard& vs = shard_for(victim);
        sim::LockGuard vlock(vs.mu);
        Block& vb = vs.blocks[victim];
        vb.data = image;
        vb.crc = crc;
      }
      Shard& sh = shard_for(lba);
      sim::LockGuard lock(sh.mu);
      Block& b = sh.blocks[lba];
      if (b.data.size() != kBlockSize) b.data.assign(kBlockSize, std::byte{0});
      b.crc = crc;
      return;
    }
    if (fault_->should_fail(kFaultSsdTornWrite, &e)) {
      persisted = e % kBlockSize;  // prefix persists, tail is lost
    }
    if (fault_->should_fail(kFaultSsdBitRot, &e)) {
      rot = true;
      rot_bit = static_cast<std::uint32_t>(e % (kBlockSize * 8));
    }
  }

  Shard& sh = shard_for(lba);
  sim::LockGuard lock(sh.mu);
  Block& b = sh.blocks[lba];
  if (b.data.size() != kBlockSize) b.data.assign(kBlockSize, std::byte{0});
  // Torn write (persisted < kBlockSize): the ack'd CRC covers the intended
  // image, but only a prefix reaches the media — the tail keeps old bytes.
  std::memcpy(b.data.data(), image.data(), persisted);
  b.crc = crc;
  if (rot) {
    b.data[rot_bit / 8] ^= static_cast<std::byte>(1u << (rot_bit % 8));
  }
}

void SsdModel::trim_block(std::uint64_t lba) {
  Shard& sh = shard_for(lba);
  sim::LockGuard lock(sh.mu);
  sh.blocks.erase(lba);
}

BlockRead SsdModel::verify_block(std::uint64_t lba) const {
  const Shard& sh = shard_for(lba);
  sim::SharedLockGuard lock(sh.mu);
  const auto it = sh.blocks.find(lba);
  if (it == sh.blocks.end()) return BlockRead::kAbsent;
  const Block& b = it->second;
  return stamp_block_crc(lba, b.data) == b.crc ? BlockRead::kOk
                                               : BlockRead::kCorrupt;
}

bool SsdModel::corrupt_block(std::uint64_t lba, std::uint32_t bit) {
  Shard& sh = shard_for(lba);
  sim::LockGuard lock(sh.mu);
  const auto it = sh.blocks.find(lba);
  if (it == sh.blocks.end()) return false;
  bit %= kBlockSize * 8;
  it->second.data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  return true;
}

std::vector<std::uint64_t> SsdModel::stored_lbas() const {
  std::vector<std::uint64_t> out;
  for (const auto& sh : shards_) {
    sim::SharedLockGuard lock(sh.mu);
    for (const auto& [lba, b] : sh.blocks) out.push_back(lba);
  }
  return out;
}

std::uint64_t SsdModel::blocks_written() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    sim::SharedLockGuard lock(sh.mu);
    n += sh.blocks.size();
  }
  return n;
}

sim::Nanos SsdModel::random_service(bool is_read, std::uint32_t bytes) {
  const auto base =
      is_read ? sim::calib::kSsdReadLat : sim::calib::kSsdWriteLat;
  const std::uint32_t blocks = (bytes + kBlockSize - 1) / kBlockSize;
  // First block costs the full access latency; further blocks of the same
  // request stream at the drive's internal rate.
  return base + sequential_transfer(is_read,
                                    std::uint64_t{blocks - 1} * kBlockSize);
}

sim::Nanos SsdModel::sequential_transfer(bool is_read, std::uint64_t bytes) {
  const double gbps = is_read ? sim::calib::kSsdSeqReadGBps
                              : sim::calib::kSsdSeqWriteGBps;
  return sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(bytes) / (gbps * 1e9) * 1e9)};
}

}  // namespace dpc::ssd
